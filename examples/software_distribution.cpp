// Software distribution over AXML — the application of the paper's full
// version (the eDos project: distributing package metadata and updates
// across mirrors and clients).
//
// The scenario:
//   - a master repository publishes package metadata,
//   - three mirrors replicate it; the replicas form the generic
//     document epackages@any (§2.3),
//   - clients resolve the generic document (definition (9)) — the pick
//     policy routes each client to a good mirror,
//   - dependency closure is computed *on the mirror* via delegation
//     (rule (10)), so only the client's install plan crosses the WAN,
//   - update notifications flow through a continuous service whose sc
//     carries a forward list (§2.3) delivering straight to subscribers,
//   - a roaming client pulls the package tree from two different
//     mirrors; its transfer cache content-addresses the copies, so the
//     identical trees share one cached blob (src/replica/).
//
// Run: ./build/examples/software_distribution

#include <cstdio>

#include "algebra/evaluator.h"
#include "common/str_util.h"
#include "peer/system.h"
#include "replica/replica_manager.h"
#include "xml/xml_serializer.h"

using namespace axml;

int main() {
  AxmlSystem sys(Topology(LinkParams{0.120, 2.5e5}));  // slow WAN
  PeerId master = sys.AddPeer("master");
  PeerId mirror_eu = sys.AddPeer("mirror-eu");
  PeerId mirror_us = sys.AddPeer("mirror-us");
  PeerId mirror_asia = sys.AddPeer("mirror-asia");
  PeerId client = sys.AddPeer("client-paris");
  // Regional links are much better than the WAN default.
  sys.network().mutable_topology()->SetLinkSymmetric(
      client, mirror_eu, LinkParams{0.008, 4.0e6});
  sys.network().mutable_topology()->SetLinkSymmetric(
      client, mirror_us, LinkParams{0.090, 1.0e6});

  // --- Package metadata: 120 packages with dependency edges.
  NodeIdGen tmp;
  TreePtr packages = TreeNode::Element("packages", &tmp);
  for (int i = 0; i < 120; ++i) {
    TreePtr pkg = TreeNode::Element("pkg", &tmp);
    pkg->AddChild(MakeTextElement("name", StrCat("pkg", i), &tmp));
    pkg->AddChild(
        MakeTextElement("version", StrCat(1 + i % 4, ".", i % 10), &tmp));
    pkg->AddChild(MakeTextElement("size", std::to_string(40 + i), &tmp));
    pkg->AddChild(
        MakeTextElement("depends", StrCat("pkg", (i * 7 + 1) % 120), &tmp));
    packages->AddChild(std::move(pkg));
  }
  Status s = sys.InstallReplicatedDocument(
      "epackages", "packages", packages,
      {master, mirror_eu, mirror_us, mirror_asia});
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // --- Step 1: the client resolves epackages@any and asks for one
  // package's record. The nearest mirror answers.
  Evaluator ev(&sys);
  Query lookup = Query::Parse(
                     "for $p in input(0)/packages/pkg "
                     "where $p/name = \"pkg42\" return $p")
                     .value();
  sys.network().mutable_stats()->Reset();
  auto rec = ev.Eval(client, Expr::Apply(lookup, client,
                                         {Expr::GenericDoc("epackages")}));
  if (!rec.ok()) {
    std::fprintf(stderr, "%s\n", rec.status().ToString().c_str());
    return 1;
  }
  std::printf("pkg42 record (served by the generic pick):\n  %s\n",
              SerializeCompact(*rec->results[0]).c_str());
  std::printf("  eu->client %.1f KB, us->client %.1f KB (nearest won)\n\n",
              sys.network().stats().Pair(mirror_eu, client).bytes / 1024.0,
              sys.network().stats().Pair(mirror_us, client).bytes / 1024.0);

  // --- Step 2: dependency resolution, delegated to the mirror
  // (rule (10)): a self-join computing each selected package's direct
  // dependency record. Only the plan ships back.
  Query resolve = Query::Parse(
                      "for $p in input(0)/packages/pkg "
                      "for $d in input(0)/packages/pkg "
                      "where $p/size < 50 and $d/name = $p/depends "
                      "return <install>{ $p/name, $d/name, $d/version "
                      "}</install>")
                      .value();
  sys.network().mutable_stats()->Reset();
  auto naive = ev.Eval(
      client,
      Expr::Apply(resolve, client, {Expr::Doc("packages", mirror_eu)}));
  double naive_kb = sys.network().stats().remote_bytes() / 1024.0;
  sys.network().mutable_stats()->Reset();
  auto delegated = ev.Eval(
      client,
      Expr::EvalAt(mirror_eu,
                   Expr::Apply(resolve, mirror_eu,
                               {Expr::Doc("packages", mirror_eu)})));
  double delegated_kb = sys.network().stats().remote_bytes() / 1024.0;
  std::printf(
      "dependency resolution: %zu install steps\n"
      "  naive (pull metadata twice): %.1f KB\n"
      "  delegated to the mirror:     %.1f KB\n\n",
      delegated->results.size(), naive_kb, delegated_kb);

  // --- Step 3: update subscription. The master's announce service is
  // declarative and continuous; the sc's forward list points into the
  // client's updates document, so announcements skip any broker.
  Query announce = Query::Parse(
                       "for $p in doc(\"packages\")/packages/pkg "
                       "for $k in input(0) "
                       "where $p/version = $k/want return "
                       "<update>{ $p/name, $p/version }</update>")
                       .value();
  (void)sys.InstallService(master,
                           Service::Declarative("announce", announce));
  TreePtr updates = TreeNode::Element("updates", sys.peer(client)->gen());
  NodeId updates_node = updates->id();
  (void)sys.InstallDocument(client, "updates", updates);
  TreePtr want = TreeNode::Element("k", sys.peer(client)->gen());
  want->AddChild(MakeTextElement("want", "1.0", sys.peer(client)->gen()));
  auto sub = ev.Eval(
      client, Expr::Call(master, "announce",
                         {Expr::Tree(want, client)},
                         {NodeLocation{updates_node, client}}));
  if (!sub.ok()) {
    std::fprintf(stderr, "%s\n", sub.status().ToString().c_str());
    return 1;
  }
  std::printf("subscription delivered %zu updates into updates@client:\n",
              static_cast<size_t>(updates->child_count()));
  for (size_t i = 0; i < updates->child_count() && i < 3; ++i) {
    std::printf("  %s\n",
                SerializeCompact(*updates->child(i)).c_str());
  }

  // --- Step 4: content-addressed replica dedup. A roaming client pulls
  // the full package tree once from the US mirror and once from the
  // Asian mirror (mirror names differ, content does not). The transfer
  // cache keys copies by content digest, so both reads share ONE stored
  // blob — and every later read is served locally for 0 wire bytes.
  PeerId roaming = sys.AddPeer("client-roaming");
  EvalOptions copts;
  copts.use_replica_cache = true;
  Evaluator cev(&sys, copts);
  Query all = Query::Parse(
                  "for $p in input(0)/packages/pkg return $p")
                  .value();
  auto pull_us = cev.Eval(
      roaming,
      Expr::Apply(all, roaming, {Expr::Doc("packages", mirror_us)}));
  auto pull_asia = cev.Eval(
      roaming,
      Expr::Apply(all, roaming, {Expr::Doc("packages", mirror_asia)}));
  if (!pull_us.ok() || !pull_asia.ok()) {
    std::fprintf(stderr, "replica pulls failed\n");
    return 1;
  }
  const TransferCache* cache = sys.replicas().FindCache(roaming);
  std::printf(
      "\nreplica dedup at client-roaming (two mirrors, one tree):\n"
      "  cached copies: %zu   stored blobs: %zu   resident: %.1f KB\n"
      "  bytes deduped: %.1f KB (the second mirror's copy cost no "
      "budget)\n",
      cache->entry_count(), cache->blob_count(),
      cache->resident_bytes() / 1024.0,
      cache->stats().bytes_deduped / 1024.0);

  // A repeated read now resolves against the cached copy: no data bytes
  // cross the WAN.
  sys.network().mutable_stats()->Reset();
  auto again = cev.Eval(
      roaming,
      Expr::Apply(all, roaming, {Expr::Doc("packages", mirror_us)}));
  if (!again.ok()) {
    std::fprintf(stderr, "%s\n", again.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "  repeated read: %.1f KB on the wire, %llu cache hits, %.1f KB "
      "saved so far\n",
      sys.network().stats().remote_bytes() / 1024.0,
      static_cast<unsigned long long>(cache->stats().hits),
      cache->stats().bytes_saved / 1024.0);
  return 0;
}
