// Continuous news syndication with AXML documents.
//
// Demonstrates the §2.2 machinery end to end:
//   - an AXML document on the reader peer embeds sc nodes calling a
//     publisher's continuous feed service,
//   - one call activates immediately on install, one lazily (first
//     query), one chained after another call (@after),
//   - responses accumulate as siblings of the sc nodes, turning the
//     reader's document into a self-updating newspaper,
//   - a final query over the enclosing document reads the merged state.
//
// Run: ./build/examples/news_syndication

#include <cstdio>

#include "algebra/evaluator.h"
#include "peer/axml_doc.h"
#include "peer/system.h"
#include "xml/xml_parser.h"
#include "xml/xml_serializer.h"

using namespace axml;

int main() {
  AxmlSystem sys(Topology(LinkParams{0.025, 1.0e6}));
  PeerId reader = sys.AddPeer("reader");
  PeerId wire = sys.AddPeer("wire-service");

  // --- The publisher's story archive and its topic feed.
  (void)sys.InstallDocumentXml(
      wire, "stories",
      "<stories>"
      "<story><topic>tech</topic><head>Edge routers get cheaper</head>"
      "</story>"
      "<story><topic>tech</topic><head>P2P networks back in fashion"
      "</head></story>"
      "<story><topic>markets</topic><head>Coffee futures climb</head>"
      "</story>"
      "<story><topic>science</topic><head>Unordered trees considered "
      "useful</head></story>"
      "</stories>");
  Query feed = Query::Parse(
                   "for $s in doc(\"stories\")/stories/story "
                   "for $k in input(0) "
                   "where $s/topic = $k/topic return $s")
                   .value();
  (void)sys.InstallService(wire, Service::Declarative("feed", feed));

  // --- The reader's newspaper: an AXML document with three embedded
  // calls. The tech section loads immediately; the markets section
  // only when first read (lazy); the science section after the tech
  // one has been handled (@after, wired below).
  TreePtr paper = ParseXml(
                      "<newspaper>"
                      "<section name=\"tech\">"
                      "<sc mode=\"immediate\"><peer>wire-service</peer>"
                      "<service>feed</service>"
                      "<param1><k><topic>tech</topic></k></param1></sc>"
                      "</section>"
                      "<section name=\"markets\">"
                      "<sc mode=\"lazy\"><peer>wire-service</peer>"
                      "<service>feed</service>"
                      "<param1><k><topic>markets</topic></k></param1></sc>"
                      "</section>"
                      "<section name=\"science\">"
                      "<sc><peer>wire-service</peer>"
                      "<service>feed</service>"
                      "<param1><k><topic>science</topic></k></param1></sc>"
                      "</section>"
                      "</newspaper>",
                      sys.peer(reader)->gen())
                      .value();
  // Chain the science call after the tech call.
  std::vector<TreePtr> calls;
  FindServiceCalls(paper, &calls);
  calls[2]->AddChild(MakeTextElement(
      "@after", std::to_string(calls[0]->id().bits()),
      sys.peer(reader)->gen()));

  Evaluator ev(&sys);
  if (Status s = ev.InstallAxmlDocument(reader, "paper", paper); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  ev.RunToQuiescence();

  auto count_stories = [&](const char* name) {
    Query q = Query::Parse(
                  std::string("for $s in input(0)//section ") +
                  "for $st in $s/story where $s/@name = \"" + name +
                  "\" return $st")
                  .value();
    auto out = q.Eval({{paper}}, nullptr, sys.peer(reader)->gen());
    return out.ok() ? out.value().size() : size_t{0};
  };

  std::printf("after install (immediate + chained calls fired):\n");
  std::printf("  tech: %zu stories, markets: %zu, science: %zu\n",
              count_stories("tech"), count_stories("markets"),
              count_stories("science"));

  // Reading the paper triggers the lazy markets call (§2.2: "activated
  // only when the call result is needed to evaluate some query over the
  // enclosing document").
  Query read = Query::Parse("for $h in input(0)//story/head return $h")
                   .value();
  auto headlines =
      ev.Eval(reader, Expr::Apply(read, reader, {Expr::Doc("paper", reader)}));
  if (!headlines.ok()) {
    std::fprintf(stderr, "%s\n", headlines.status().ToString().c_str());
    return 1;
  }
  std::printf("\nafter the first read (lazy call fired):\n");
  std::printf("  tech: %zu stories, markets: %zu, science: %zu\n",
              count_stories("tech"), count_stories("markets"),
              count_stories("science"));
  std::printf("\nheadlines seen by the reader:\n");
  for (const auto& h : headlines->results) {
    std::printf("  - %s\n", h->StringValue().c_str());
  }
  return 0;
}
