// Hot-path replica placement and cost-aware eviction — a regional
// content-distribution scenario.
//
// The setup:
//   - a headquarters peer publishes product catalogs behind a slow WAN,
//   - three regional stores resolve catalog@any repeatedly; the
//     GenericCatalog records who keeps asking (the demand signal),
//   - a placement round (ReplicaManager::RunPlacement) reads that demand
//     and proactively ships the hot catalog to its top-picking stores —
//     budget-checked, advertised on landing — so later picks ride the
//     free loopback link,
//   - one store's transfer cache runs the cost-aware eviction policy:
//     when a burst of cheap same-region traffic fills the cache, the
//     expensive-to-refetch HQ copy survives where LRU would drop it.
//
// Run: ./build/examples/hot_path_placement

#include <cstdio>

#include "algebra/evaluator.h"
#include "common/str_util.h"
#include "peer/system.h"
#include "replica/replica_manager.h"

using namespace axml;

namespace {

TreePtr MakeCatalogDoc(const char* label, int items, NodeIdGen* gen) {
  TreePtr root = TreeNode::Element("catalog", gen);
  for (int i = 0; i < items; ++i) {
    TreePtr item = TreeNode::Element("item", gen);
    item->AddChild(MakeTextElement("name", StrCat(label, i), gen));
    item->AddChild(MakeTextElement("stock", std::to_string(10 + i), gen));
    root->AddChild(std::move(item));
  }
  return root;
}

}  // namespace

int main() {
  AxmlSystem sys(Topology(LinkParams{0.150, 3.0e5}));  // slow WAN default
  PeerId hq = sys.AddPeer("hq");
  PeerId east = sys.AddPeer("store-east");
  PeerId west = sys.AddPeer("store-west");
  PeerId north = sys.AddPeer("store-north");
  // Stores share a fast regional backbone.
  for (PeerId a : {east, west, north}) {
    for (PeerId b : {east, west, north}) {
      if (a != b) {
        sys.network().mutable_topology()->SetLink(a, b,
                                                  LinkParams{0.004, 6.0e6});
      }
    }
  }

  // HQ publishes the master catalog as the generic class ecatalog.
  (void)sys.InstallDocument(hq, "catalog",
                            MakeCatalogDoc("sku", 160, sys.peer(hq)->gen()));
  sys.generics().AddDocumentMember("ecatalog", ClassMember{"catalog", hq});

  // --- Phase 1: stores resolve ecatalog@any; every pick goes to HQ
  // (the only member) and the demand table fills up.
  Evaluator ev(&sys, EvalOptions{.pick_policy = PickPolicy::kCacheAware});
  sys.network().mutable_stats()->Reset();
  for (int round = 0; round < 4; ++round) {
    for (PeerId store : {east, west}) {
      auto out = ev.Eval(store, Expr::GenericDoc("ecatalog"));
      if (!out.ok()) {
        std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
        return 1;
      }
    }
  }
  std::printf("before placement: %.1f KB over the WAN for 8 reads\n",
              sys.network().stats().remote_bytes() / 1024.0);
  std::printf("demand: east=%llu west=%llu north=%llu picks\n\n",
              (unsigned long long)sys.generics().DocumentPickDemand(
                  "ecatalog", east),
              (unsigned long long)sys.generics().DocumentPickDemand(
                  "ecatalog", west),
              (unsigned long long)sys.generics().DocumentPickDemand(
                  "ecatalog", north));

  // --- Phase 2: one placement round seeds the hot catalog at its top
  // pickers; the copies land, install, and advertise as class members.
  PlacementConfig config;
  config.enabled = true;
  config.min_picks = 3;
  config.max_targets_per_class = 2;
  sys.replicas().placement().set_config(config);
  size_t started = sys.replicas().RunPlacement();
  sys.RunToQuiescence();
  std::printf("placement round: %zu shipments, stats: %s\n\n", started,
              sys.replicas().placement_stats().ToString().c_str());

  // --- Phase 3: the same reads again — seeded stores pick their own
  // advertised copy and read it for free.
  sys.network().mutable_stats()->Reset();
  for (int round = 0; round < 4; ++round) {
    for (PeerId store : {east, west}) {
      (void)ev.Eval(store, Expr::GenericDoc("ecatalog"));
    }
  }
  std::printf("after placement: %.1f KB over the WAN for 8 reads\n\n",
              sys.network().stats().remote_bytes() / 1024.0);

  // --- Phase 4: cost-aware eviction. East's cache also absorbs regional
  // documents; with a tight budget, LRU would shed the HQ copy on the
  // next burst — the cost-aware policy sheds cheap-to-refetch regional
  // copies instead.
  sys.replicas().set_default_eviction_policy(EvictionPolicy::kCostAware);
  const TransferCache* cache = sys.replicas().FindCache(east);
  if (cache != nullptr) {
    uint64_t hq_bytes = cache->resident_bytes();
    TransferCache* east_cache = sys.replicas().CacheFor(east);
    east_cache->set_byte_budget(hq_bytes + 3000);
    for (int i = 0; i < 6; ++i) {
      DocName name = StrCat("regional", i);
      // Distinct content per document — identical trees would dedup into
      // one shared blob and never pressure the budget.
      (void)sys.InstallDocument(
          west, name,
          MakeCatalogDoc(StrCat("loc", i, "-").c_str(), 12,
                         sys.peer(west)->gen()));
      Evaluator reader(&sys, EvalOptions{.use_replica_cache = true});
      (void)reader.Eval(east, Expr::Doc(name, west));
    }
    std::printf("east cache after the regional burst: %s\n",
                east_cache->stats().ToString().c_str());
    std::printf("HQ copy still resident at east: %s\n",
                sys.replicas().HasFresh(east, hq, "catalog") ? "yes"
                                                             : "no");
  }
  return 0;
}
