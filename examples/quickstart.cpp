// Quickstart: the 60-second tour of the axml library.
//
// Builds a two-peer system, installs a document and a declarative
// service, and evaluates the same query three ways:
//   1. the direct strategy (ship the document, query locally),
//   2. a hand-written rewrite (push the selection to the data),
//   3. whatever the cost-based optimizer picks.
// Prints the answers and what each strategy cost on the simulated
// network.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "algebra/evaluator.h"
#include "opt/optimizer.h"
#include "peer/system.h"
#include "xml/xml_serializer.h"

using namespace axml;

namespace {

void Report(const char* label, AxmlSystem& sys, const EvalOutcome& out) {
  std::printf("%-12s %2zu results   %6.1f KB shipped   %.3f virtual s\n",
              label, out.results.size(),
              sys.network().stats().remote_bytes() / 1024.0,
              out.Duration());
}

}  // namespace

int main() {
  // --- A tiny distributed system: a laptop and a data server, 20 ms
  // apart at 1 MB/s.
  AxmlSystem sys(Topology(LinkParams{0.020, 1.0e6}));
  PeerId laptop = sys.AddPeer("laptop");
  PeerId server = sys.AddPeer("server");

  // --- A bookstore catalog lives on the server.
  std::string catalog = "<catalog>";
  for (int i = 0; i < 2000; ++i) {
    catalog += "<book><title>Book " + std::to_string(i) + "</title>" +
               "<price>" + std::to_string((i * 37) % 120) + "</price>" +
               "<topic>" + (i % 3 ? "databases" : "networks") +
               "</topic></book>";
  }
  catalog += "</catalog>";
  if (Status s = sys.InstallDocumentXml(server, "books", catalog);
      !s.ok()) {
    std::fprintf(stderr, "install failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- The question: cheap database books.
  Query q = Query::Parse(
                "for $b in input(0)/catalog/book "
                "where $b/price < 25 and $b/topic = \"databases\" "
                "return <cheap>{ $b/title, $b/price }</cheap>")
                .value();

  // 1. Direct strategy (original AXML): the whole catalog crosses the
  //    network, the laptop filters it.
  {
    sys.network().mutable_stats()->Reset();
    Evaluator ev(&sys);
    auto out =
        ev.Eval(laptop, Expr::Apply(q, laptop, {Expr::Doc("books", server)}));
    Report("direct:", sys, out.value());
  }

  // 2. Hand-rewritten (paper §3.3, Example 1): delegate the selection to
  //    the server; only matches travel.
  {
    sys.network().mutable_stats()->Reset();
    Evaluator ev(&sys);
    auto out = ev.Eval(
        laptop,
        Expr::EvalAt(server, Expr::Apply(q, server,
                                         {Expr::Doc("books", server)})));
    Report("rewritten:", sys, out.value());
  }

  // 3. Let the optimizer decide.
  {
    Optimizer opt(&sys);
    OptimizedPlan plan = opt.Optimize(
        laptop, Expr::Apply(q, laptop, {Expr::Doc("books", server)}));
    std::printf("\noptimizer chose: %s\n", plan.expr->ToString().c_str());
    for (const auto& rule : plan.rules_applied) {
      std::printf("  applied %s\n", rule.c_str());
    }
    sys.network().mutable_stats()->Reset();
    Evaluator ev(&sys);
    auto out = ev.Eval(laptop, plan.expr);
    Report("optimized:", sys, out.value());

    std::printf("\nfirst answers:\n");
    size_t shown = 0;
    for (const auto& r : out.value().results) {
      if (shown++ == 3) break;
      std::printf("  %s\n", SerializeCompact(*r).c_str());
    }
  }
  return 0;
}
