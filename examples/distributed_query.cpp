// Distributed query optimization walkthrough: one query, five
// strategies, full cost accounting — the paper's §3.3 toolbox applied
// by hand, then by the optimizer.
//
// Setup: three peers. The client asks for a join between a supplier
// catalog on peer A and an inventory on peer B, keeping only cheap,
// in-stock items. Strategies:
//   S1 direct        — both documents ship to the client (def. (7)).
//   S2 push-left     — the price filter runs on A (Example 1).
//   S3 push-both     — each side filtered at its owner.
//   S4 ship-to-data  — the whole join is delegated to B (rule (10)),
//                      A's filtered half ships to B.
//   S5 optimizer     — cost-based choice from the same rule set.
//
// Run: ./build/examples/distributed_query

#include <cstdio>

#include "algebra/evaluator.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "opt/optimizer.h"
#include "peer/system.h"
#include "query/decompose.h"

using namespace axml;

namespace {

TreePtr MakeSuppliers(int n, NodeIdGen* gen, Rng* rng) {
  TreePtr root = TreeNode::Element("suppliers", gen);
  for (int i = 0; i < n; ++i) {
    TreePtr it = TreeNode::Element("item", gen);
    it->AddChild(MakeTextElement("sku", StrCat("sku", i), gen));
    it->AddChild(MakeTextElement(
        "price", std::to_string(rng->Uniform(500)), gen));
    it->AddChild(MakeTextElement("maker", rng->Identifier(10), gen));
    root->AddChild(std::move(it));
  }
  return root;
}

TreePtr MakeInventory(int n, NodeIdGen* gen, Rng* rng) {
  TreePtr root = TreeNode::Element("inventory", gen);
  for (int i = 0; i < n; ++i) {
    TreePtr it = TreeNode::Element("stock", gen);
    it->AddChild(MakeTextElement("sku", StrCat("sku", i * 2), gen));
    it->AddChild(MakeTextElement(
        "qty", std::to_string(rng->Uniform(100)), gen));
    root->AddChild(std::move(it));
  }
  return root;
}

struct Strategy {
  const char* name;
  ExprPtr expr;
};

}  // namespace

int main() {
  AxmlSystem sys(Topology(LinkParams{0.030, 8.0e5}));
  PeerId client = sys.AddPeer("client");
  PeerId pa = sys.AddPeer("supplier-peer");
  PeerId pb = sys.AddPeer("inventory-peer");
  Rng rng(7);
  (void)sys.InstallDocument(
      pa, "suppliers", MakeSuppliers(600, sys.peer(pa)->gen(), &rng));
  (void)sys.InstallDocument(
      pb, "inventory", MakeInventory(300, sys.peer(pb)->gen(), &rng));

  Query q = Query::Parse(
                "for $i in input(0)/suppliers/item "
                "for $s in input(1)/inventory/stock "
                "where $i/price < 60 and $s/qty > 20 and "
                "$i/sku = $s/sku "
                "return <offer>{ $i/sku, $i/price, $s/qty }</offer>")
                .value();
  ExprPtr docA = Expr::Doc("suppliers", pa);
  ExprPtr docB = Expr::Doc("inventory", pb);

  // Hand-built strategies from the rule set.
  auto splitA = SplitSelection(q, 0).value();
  auto splitB = SplitSelection(splitA.remainder, 1).value();
  ExprPtr filtA = Expr::EvalAt(
      pa, Expr::Apply(splitA.filter, pa, {docA}));
  ExprPtr filtB = Expr::EvalAt(
      pb, Expr::Apply(splitB.filter, pb, {docB}));

  std::vector<Strategy> strategies;
  strategies.push_back({"S1 direct", Expr::Apply(q, client, {docA, docB})});
  strategies.push_back(
      {"S2 push-left", Expr::Apply(splitA.remainder, client,
                                   {filtA, docB})});
  strategies.push_back(
      {"S3 push-both", Expr::Apply(splitB.remainder, client,
                                   {filtA, filtB})});
  strategies.push_back(
      {"S4 ship-to-data",
       Expr::EvalAt(pb, Expr::Apply(splitB.remainder, pb,
                                    {filtA, filtB}))});
  Optimizer opt(&sys);
  OptimizedPlan plan =
      opt.Optimize(client, Expr::Apply(q, client, {docA, docB}));
  strategies.push_back({"S5 optimizer", plan.expr});

  std::printf("%-16s %9s %12s %12s\n", "strategy", "results",
              "shipped KB", "virtual s");
  size_t reference = 0;
  for (const Strategy& s : strategies) {
    sys.network().mutable_stats()->Reset();
    Evaluator ev(&sys);
    auto out = ev.Eval(client, s.expr);
    if (!out.ok()) {
      std::printf("%-16s failed: %s\n", s.name,
                  out.status().ToString().c_str());
      continue;
    }
    if (reference == 0) reference = out->results.size();
    std::printf("%-16s %9zu %12.1f %12.3f%s\n", s.name,
                out->results.size(),
                sys.network().stats().remote_bytes() / 1024.0,
                out->Duration(),
                out->results.size() == reference ? "" : "  (MISMATCH!)");
  }
  std::printf("\noptimizer plan: %s\n", plan.expr->ToString().c_str());
  for (const auto& r : plan.rules_applied) {
    std::printf("  applied %s\n", r.c_str());
  }
  return 0;
}
