// Push-based replica refresh on a write-heavy workload.
//
// Claim under test: lazy invalidation (drop-on-lookup) leaves stale
// advertisements live between a mutation and the next read and puts the
// whole re-transfer on the read path; push-based refresh retracts at
// mutation time for the price of one small notification per holder, and
// eager refresh additionally moves the re-transfer off the read path
// entirely — reads stay local no matter how often the origin writes.
//
// Workload: one origin, several reader peers, all holding cached copies.
// Each round mutates the document at the origin, then every reader runs
// the query again. Sweep: document size.
//
// Strategies (RefreshPolicy):
//   Lazy         — PR 1 baseline: stale copies dropped on their next
//                  lookup; every post-write read pays the transfer.
//   PushDrop     — holders retract at mutation time (coherent catalog);
//                  reads still re-pull on demand.
//   EagerRefresh — the origin ships the new version on mutation; reads
//                  hit the re-materialized copy locally.
//
// Beyond the standard counters, each benchmark reports notify traffic
// (notify_msgs / notify_KB), push shipments (refresh_KB), and cache
// hits, so the lazy-vs-push cost split is visible: Lazy and PushDrop
// move the same data bytes, PushDrop adds notify_KB but never serves a
// stale advertisement, EagerRefresh converts read-path misses into
// cache_hits at the same wire volume.

#include "bench_common.h"

namespace axml {
namespace {

constexpr int kReaders = 3;
constexpr int kWriteRounds = 6;

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId origin;
  std::vector<PeerId> readers;
  Query q;
};

Setup Build(int64_t n_products) {
  Setup s;
  s.sys = std::make_unique<AxmlSystem>(Topology(LinkParams{0.040, 2.0e6}));
  s.origin = s.sys->AddPeer("origin");
  for (int i = 0; i < kReaders; ++i) {
    s.readers.push_back(s.sys->AddPeer(StrCat("r", i)));
  }
  Rng rng(13);
  TreePtr t = bench::MakeCatalog(static_cast<size_t>(n_products),
                                 s.sys->peer(s.origin)->gen(), &rng);
  (void)s.sys->InstallDocument(s.origin, "d", t);
  s.q = Query::Parse(
            "for $p in input(0)/catalog/product "
            "where $p/price < 900 return <r>{ $p/name }</r>")
            .value();
  return s;
}

void RunWriteHeavy(benchmark::State& state, RefreshPolicy policy) {
  Setup s = Build(state.range(0));
  s.sys->replicas().set_refresh_policy(policy);
  // $AXML_TRACE_OUT: record causal spans (mutation -> notify -> shipment
  // -> install share one trace id) and export Chrome-trace JSON after
  // the run. Whichever benchmark runs last wins the file.
  if (bench::TraceExportRequested()) s.sys->tracer().set_enabled(true);
  EvalOptions opts;
  opts.use_replica_cache = true;
  Evaluator ev(s.sys.get(), opts);
  Rng mut_rng(99);

  for (auto _ : state) {
    s.sys->replicas().DropAllCopies();
    s.sys->replicas().ResetStats();
    s.sys->network().mutable_stats()->Reset();
    const SimTime t0 = s.sys->loop().now();
    size_t results = 0;

    auto read_all = [&] {
      for (PeerId r : s.readers) {
        auto out =
            ev.Eval(r, Expr::Apply(s.q, r, {Expr::Doc("d", s.origin)}));
        if (!out.ok()) {
          state.SkipWithError(out.status().ToString().c_str());
          return false;
        }
        results += out->results.size();
      }
      return true;
    };

    if (!read_all()) return;  // warm: every reader holds a copy
    for (int round = 0; round < kWriteRounds; ++round) {
      Peer* origin = s.sys->peer(s.origin);
      origin->PutDocument(
          "d", bench::MakeCatalog(static_cast<size_t>(state.range(0)),
                                  origin->gen(), &mut_rng));
      // Push shipments (and pending notifies) land before the reads —
      // the write-path cost the push policies pay so reads stay local.
      s.sys->RunToQuiescence();
      if (!read_all()) return;
    }

    bench::RecordStandardCounters(state, s.sys.get(), t0, results);
    const TransferCacheStats cs = s.sys->replicas().TotalStats();
    const SubscriptionStats& ss = s.sys->replicas().subscription_stats();
    const NetStats& ns = s.sys->network().stats();
    state.counters["cache_hits"] = static_cast<double>(cs.hits);
    state.counters["notify_msgs"] = static_cast<double>(ns.notify_messages());
    state.counters["notify_KB"] =
        static_cast<double>(ns.notify_bytes()) / 1024.0;
    state.counters["refresh_KB"] =
        static_cast<double>(ss.refresh_bytes) / 1024.0;
  }
  bench::MaybeExportTrace(*s.sys);
}

void BM_PushRefresh_Lazy(benchmark::State& state) {
  RunWriteHeavy(state, RefreshPolicy::kLazy);
}

void BM_PushRefresh_PushDrop(benchmark::State& state) {
  RunWriteHeavy(state, RefreshPolicy::kDrop);
}

void BM_PushRefresh_EagerRefresh(benchmark::State& state) {
  RunWriteHeavy(state, RefreshPolicy::kEagerRefresh);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t n : {8, 64, 512}) {
    b->Args({n});
  }
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_PushRefresh_Lazy)->Apply(Sweep);
BENCHMARK(BM_PushRefresh_PushDrop)->Apply(Sweep);
BENCHMARK(BM_PushRefresh_EagerRefresh)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
