// EXP-5: intermediary stops (rule (12), both directions).
//
// Claim under test: "Read from right to left, [rule (12)] shows that
// data in transit from p0 to p2 may make an intermediary stop at
// another peer p1. Read from left to right, it shows that such an
// intermediary halt may be avoided. While it may seem that rule (12)
// should always be applied left to right, this is not always true!"
//
// Two topologies:
//   FastRelay — the direct p0→p2 link is terrible, both relay legs are
//               excellent (e.g. a transcontinental link vs two good
//               regional hops): the stop wins.
//   SlowRelay — uniform links: the stop only adds latency and loses.
// Sweep: payload size.

#include "bench_common.h"

namespace axml {
namespace {

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId src, relay, dst;
};

Setup Build(bool fast_relay, int64_t n) {
  Setup s;
  LinkParams direct =
      fast_relay ? LinkParams{0.400, 5.0e4} : LinkParams{0.020, 1.0e6};
  s.sys = std::make_unique<AxmlSystem>(Topology(direct));
  s.src = s.sys->AddPeer("src");
  s.relay = s.sys->AddPeer("relay");
  s.dst = s.sys->AddPeer("dst");
  if (fast_relay) {
    LinkParams good{0.005, 1.0e7};
    s.sys->network().mutable_topology()->SetLinkSymmetric(s.src, s.relay,
                                                          good);
    s.sys->network().mutable_topology()->SetLinkSymmetric(s.relay, s.dst,
                                                          good);
  }
  Rng rng(12);
  TreePtr t = bench::MakeCatalog(static_cast<size_t>(n),
                                 s.sys->peer(s.src)->gen(), &rng);
  (void)s.sys->InstallDocument(s.src, "t", t);
  return s;
}

void RunDirect(benchmark::State& state, bool fast_relay) {
  Setup s = Build(fast_relay, state.range(0));
  ExprPtr e = Expr::Doc("t", s.src);
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.dst, e);
  }
}

void RunViaRelay(benchmark::State& state, bool fast_relay) {
  Setup s = Build(fast_relay, state.range(0));
  // Right-to-left (12): the tree stops at the relay on its way.
  ExprPtr e = Expr::EvalAt(s.relay, Expr::Doc("t", s.src));
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.dst, e);
  }
}

void BM_Intermediary_FastRelay_Direct(benchmark::State& state) {
  RunDirect(state, true);
}
void BM_Intermediary_FastRelay_ViaRelay(benchmark::State& state) {
  RunViaRelay(state, true);
}
void BM_Intermediary_SlowRelay_Direct(benchmark::State& state) {
  RunDirect(state, false);
}
void BM_Intermediary_SlowRelay_ViaRelay(benchmark::State& state) {
  RunViaRelay(state, false);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t n : {32, 256, 1024}) b->Args({n});
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Intermediary_FastRelay_Direct)->Apply(Sweep);
BENCHMARK(BM_Intermediary_FastRelay_ViaRelay)->Apply(Sweep);
BENCHMARK(BM_Intermediary_SlowRelay_Direct)->Apply(Sweep);
BENCHMARK(BM_Intermediary_SlowRelay_ViaRelay)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
