// EXP-6: generic documents and pick policies (§2.3 + definition (9)).
//
// Claim under test: "The implementation of an actual pick function at p
// depends on p's knowledge of the existing documents and services, p's
// preferences etc." — i.e. the policy matters. We replicate a document
// on k mirrors at random distances and fetch it from a client under
// each policy.
//
// Sweep: replica count k x policy. Expected shape: nearest beats
// random/first on fetch time, the gap widening with k (more chances of
// a close replica); least-loaded sacrifices latency for balance
// (reported as max_picks over the mirrors after 20 fetches).

#include <algorithm>

#include "bench_common.h"

namespace axml {
namespace {

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId client;
  std::vector<PeerId> mirrors;
};

Setup Build(int64_t k) {
  Setup s;
  Rng topo_rng(k * 7 + 1);
  Topology topo = Topology::RandomUniform(
      static_cast<uint32_t>(k + 1), LinkParams{0.002, 5.0e5},
      LinkParams{0.200, 5.0e6}, &topo_rng);
  s.sys = std::make_unique<AxmlSystem>(std::move(topo));
  s.client = s.sys->AddPeer("client");
  Rng rng(6);
  NodeIdGen tmp;
  TreePtr content = bench::MakeCatalog(200, &tmp, &rng);
  std::vector<PeerId> replicas;
  for (int64_t i = 0; i < k; ++i) {
    PeerId m = s.sys->AddPeer(StrCat("mirror", i));
    replicas.push_back(m);
  }
  (void)s.sys->InstallReplicatedDocument("ecat", "cat", content, replicas);
  s.mirrors = replicas;
  return s;
}

void RunPolicy(benchmark::State& state, PickPolicy policy) {
  Setup s = Build(state.range(0));
  EvalOptions opts;
  opts.pick_policy = policy;
  for (auto _ : state) {
    s.sys->network().mutable_stats()->Reset();
    s.sys->generics().ResetPickCounts();
    s.sys->generics().SeedRandom(99);
    Evaluator ev(s.sys.get(), opts);
    const SimTime t0 = s.sys->loop().now();
    double total = 0;
    const int kFetches = 20;
    for (int i = 0; i < kFetches; ++i) {
      auto out = ev.Eval(s.client, Expr::GenericDoc("ecat"));
      if (!out.ok()) {
        state.SkipWithError(out.status().ToString().c_str());
        return;
      }
      total += out->Duration();
    }
    state.counters["avg_fetch_s"] = total / kFetches;
    state.counters["remote_KB"] =
        static_cast<double>(s.sys->network().stats().remote_bytes()) /
        1024.0;
    uint64_t max_picks = 0;
    for (PeerId m : s.mirrors) {
      max_picks = std::max(max_picks, s.sys->generics().PickCount(m));
    }
    state.counters["max_picks"] = static_cast<double>(max_picks);
    state.counters["sim_s"] = s.sys->loop().now() - t0;
  }
}

void BM_Pick_First(benchmark::State& state) {
  RunPolicy(state, PickPolicy::kFirst);
}
void BM_Pick_Random(benchmark::State& state) {
  RunPolicy(state, PickPolicy::kRandom);
}
void BM_Pick_Nearest(benchmark::State& state) {
  RunPolicy(state, PickPolicy::kNearest);
}
void BM_Pick_LeastLoaded(benchmark::State& state) {
  RunPolicy(state, PickPolicy::kLeastLoaded);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t k : {2, 4, 8, 16}) b->Args({k});
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Pick_First)->Apply(Sweep);
BENCHMARK(BM_Pick_Random)->Apply(Sweep);
BENCHMARK(BM_Pick_Nearest)->Apply(Sweep);
BENCHMARK(BM_Pick_LeastLoaded)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
