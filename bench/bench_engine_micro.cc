// EXP-10: substrate micro-benchmarks. Not a paper claim — these
// establish that the simulator's own machinery (parser, serializer,
// query executor, event loop) is fast enough that the virtual-time
// measurements of EXP-1..9 are not an artifact of host overheads.

#include "bench_common.h"
#include "query/query.h"
#include "xml/xml_parser.h"
#include "xml/xml_serializer.h"

namespace axml {
namespace {

void BM_XmlParse(benchmark::State& state) {
  NodeIdGen gen;
  Rng rng(1);
  TreePtr t = bench::MakeCatalog(static_cast<size_t>(state.range(0)),
                                 &gen, &rng);
  std::string xml = SerializeCompact(*t);
  for (auto _ : state) {
    NodeIdGen g;
    auto r = ParseXml(xml, &g);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}

void BM_XmlSerialize(benchmark::State& state) {
  NodeIdGen gen;
  Rng rng(2);
  TreePtr t = bench::MakeCatalog(static_cast<size_t>(state.range(0)),
                                 &gen, &rng);
  size_t bytes = 0;
  for (auto _ : state) {
    std::string s = SerializeCompact(*t);
    bytes = s.size();
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) *
                          state.iterations());
}

void BM_QuerySelect(benchmark::State& state) {
  NodeIdGen gen;
  Rng rng(3);
  TreePtr t = bench::MakeCatalog(static_cast<size_t>(state.range(0)),
                                 &gen, &rng);
  Query q = Query::Parse(
                "for $p in input(0)/catalog/product "
                "where $p/price < 100 return <r>{ $p/name }</r>")
                .value();
  for (auto _ : state) {
    auto out = q.Eval({{t}}, nullptr, &gen);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}

void BM_QueryJoin(benchmark::State& state) {
  NodeIdGen gen;
  Rng rng(4);
  TreePtr l = bench::MakeCatalog(static_cast<size_t>(state.range(0)),
                                 &gen, &rng, 0);
  TreePtr r = bench::MakeCatalog(static_cast<size_t>(state.range(0)),
                                 &gen, &rng, 0);
  Query q = Query::Parse(
                "for $a in input(0)/catalog/product "
                "for $b in input(1)/catalog/product "
                "where $a/name = $b/name return <m/>")
                .value();
  for (auto _ : state) {
    auto out = q.Eval({{l}, {r}}, nullptr, &gen);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}

void BM_QueryParse(benchmark::State& state) {
  const std::string text =
      "for $a in input(0)/catalog/product for $b in $a/name "
      "where $a/price < 30 and contains($a/category, \"c1\") "
      "return <res>{ $b, count($a) }</res>";
  for (auto _ : state) {
    auto q = Query::Parse(text);
    benchmark::DoNotOptimize(q);
  }
}

void BM_EventLoopThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventLoop loop;
    int64_t remaining = state.range(0);
    std::function<void()> tick = [&] {
      if (--remaining > 0) loop.ScheduleAfter(0.001, tick);
    };
    loop.ScheduleAfter(0.001, tick);
    loop.Run();
    benchmark::DoNotOptimize(loop.executed());
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}

void BM_NetworkMessageRate(benchmark::State& state) {
  for (auto _ : state) {
    EventLoop loop;
    Network net(&loop, Topology(LinkParams{0.001, 1e9}));
    for (int64_t i = 0; i < state.range(0); ++i) {
      net.Send(PeerId(0), PeerId(1), 100, [] {});
    }
    loop.Run();
    benchmark::DoNotOptimize(net.stats().total_messages());
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}

BENCHMARK(BM_XmlParse)->Arg(100)->Arg(1000);
BENCHMARK(BM_XmlSerialize)->Arg(100)->Arg(1000);
BENCHMARK(BM_QuerySelect)->Arg(100)->Arg(1000);
BENCHMARK(BM_QueryJoin)->Arg(32)->Arg(128);
BENCHMARK(BM_QueryParse);
BENCHMARK(BM_EventLoopThroughput)->Arg(10000);
BENCHMARK(BM_NetworkMessageRate)->Arg(10000);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
