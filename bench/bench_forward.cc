// EXP-3: forward lists (§2.3 forw extension; rules (15)/(16)'s "no need
// to ship results back ... results are sent directly to the locations
// in the forward list").
//
// Scenario: m subscriber peers each hold a mailbox; a broker invokes a
// feed service on the publisher.
//   ViaCaller — the pre-extension AXML pattern: results return to the
//               broker, which re-sends each to all m mailboxes.
//   Forwarded — the §2.3 forward list: the publisher ships each result
//               straight to the m mailboxes.
// Sweep: m x result size. Expected shape: Forwarded removes the
// publisher→broker leg entirely and roughly halves completion time;
// the saving grows linearly with result volume.

#include "bench_common.h"

namespace axml {
namespace {

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId broker, publisher;
  std::vector<NodeLocation> mailboxes;
  ExprPtr param;
};

Setup Build(int64_t m, int64_t stories) {
  Setup s;
  s.sys = std::make_unique<AxmlSystem>(
      Topology(LinkParams{0.015, 1.0e6}));
  s.broker = s.sys->AddPeer("broker");
  s.publisher = s.sys->AddPeer("publisher");
  Rng rng(9);
  TreePtr cat = bench::MakeCatalog(static_cast<size_t>(stories),
                                   s.sys->peer(s.publisher)->gen(), &rng);
  (void)s.sys->InstallDocument(s.publisher, "stories", cat);
  Query feed = Query::Parse(
                   "for $p in doc(\"stories\")/catalog/product "
                   "for $k in input(0) "
                   "where $p/price < $k/max return $p")
                   .value();
  (void)s.sys->InstallService(s.publisher,
                              Service::Declarative("feed", feed));
  for (int64_t i = 0; i < m; ++i) {
    PeerId sub = s.sys->AddPeer(StrCat("sub", i));
    TreePtr box = TreeNode::Element("inbox", s.sys->peer(sub)->gen());
    NodeId box_id = box->id();
    (void)s.sys->InstallDocument(sub, "inbox", box);
    s.mailboxes.push_back(NodeLocation{box_id, sub});
  }
  TreePtr knob = MakeTextElement("max", "400", s.sys->peer(s.broker)->gen());
  TreePtr k = TreeNode::Element("k", s.sys->peer(s.broker)->gen());
  k->AddChild(knob);
  s.param = Expr::Tree(k, s.broker);
  return s;
}

void BM_Forward_ViaCaller(benchmark::State& state) {
  Setup s = Build(state.range(0), state.range(1));
  // Results return to the broker, which fans them out itself.
  ExprPtr e = Expr::SendToNodes(
      s.mailboxes, Expr::Call(s.publisher, "feed", {s.param}));
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.broker, e);
    state.counters["pub_to_broker_KB"] =
        static_cast<double>(
            s.sys->network().stats().Pair(s.publisher, s.broker).bytes) /
        1024.0;
  }
}

void BM_Forward_ForwardList(benchmark::State& state) {
  Setup s = Build(state.range(0), state.range(1));
  ExprPtr e = Expr::Call(s.publisher, "feed", {s.param}, s.mailboxes);
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.broker, e);
    state.counters["pub_to_broker_KB"] =
        static_cast<double>(
            s.sys->network().stats().Pair(s.publisher, s.broker).bytes) /
        1024.0;
  }
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t m : {1, 4, 16}) {
    for (int64_t stories : {100, 400}) {
      b->Args({m, stories});
    }
  }
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Forward_ViaCaller)->Apply(Sweep);
BENCHMARK(BM_Forward_ForwardList)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
