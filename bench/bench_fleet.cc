// Fleet-scale discovery: the central index vs the routed Chord DHT at
// growing peer counts, driven by the real scenario harness
// (src/scenario/fleet.h) rather than the closed-form model bench_catalog
// sweeps.
//
// Sweep: peer count P x backend, each run the standard fleet workload
// (Zipf reads, 30% d@any through the catalog, periodic mutations,
// replica cache on, per-op freshness check).
// Expected shape: central stays at 2 messages per lookup but its server
// handles ~100% of catalog messages (max_node_share ~= 1); the DHT pays
// ~log2(P) messages per lookup while max_node_share falls with P.
// stale_reads must read 0 everywhere.

#include "bench_common.h"
#include "scenario/fleet.h"

namespace axml {
namespace {

void RunFleet(benchmark::State& state, FleetBackend backend) {
  FleetConfig cfg;
  // 2 regions x 4 racks; peers_per_rack scales the sweep.
  cfg.topo.regions = 2;
  cfg.topo.racks_per_region = 4;
  cfg.topo.peers_per_rack =
      static_cast<uint32_t>(state.range(0)) /
      (cfg.topo.regions * cfg.topo.racks_per_region);
  cfg.backend = backend;
  cfg.ops = 600;
  cfg.seed = 1;
  for (auto _ : state) {
    FleetHarness fleet(cfg);
    const FleetReport r = fleet.Run();
    if (r.stale_reads != 0) {
      state.SkipWithError("stale reads in fleet run");
      return;
    }
    state.counters["msgs_per_lookup"] = r.msgs_per_lookup;
    state.counters["max_node_share"] = r.max_node_share;
    state.counters["lookups"] = static_cast<double>(r.lookups);
    state.counters["advertise_msgs"] =
        static_cast<double>(r.advertise_messages);
    state.counters["wire_KB"] =
        static_cast<double>(r.wire_bytes) / 1024.0;
    bench::RecordStandardCounters(state, &fleet.system(), 0, r.ops);
  }
}

void BM_Fleet_Central(benchmark::State& state) {
  RunFleet(state, FleetBackend::kCentral);
}
void BM_Fleet_ChordDht(benchmark::State& state) {
  RunFleet(state, FleetBackend::kChordDht);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t p : {64, 256, 1024}) b->Args({p});
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Fleet_Central)->Apply(Sweep);
BENCHMARK(BM_Fleet_ChordDht)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
