// Shared helpers for the experiment benchmarks (EXP-1 .. EXP-10, see
// DESIGN.md §3 for the per-experiment index).
//
// Convention: each benchmark reports the *simulated* quantities the
// paper's claims are about as google-benchmark counters:
//   sim_s        — virtual seconds until the evaluation quiesced
//   remote_KB    — kilobytes shipped between distinct peers
//   msgs         — messages between distinct peers
//   results      — trees produced at the consumer
// Wall-clock time (the default benchmark column) measures the simulator
// itself and is not the experiment's subject.

#ifndef AXML_BENCH_BENCH_COMMON_H_
#define AXML_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "algebra/evaluator.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/optimizer.h"
#include "peer/system.h"
#include "xml/tree.h"

namespace axml {
namespace bench {

/// Machine-readable bench output. When $AXML_BENCH_JSON_DIR is set, every
/// benchmark binary built on AXML_BENCH_MAIN() writes
/// `<dir>/<exe basename>.json` after its runs:
///
///   {"schema_version": 1, "bench": "bench_foo", "runs": [
///     {"name": "BM_X/64", "iterations": 1,
///      "counters": {"sim_s": ..., ...},
///      "metrics": { ...System::DumpMetrics() of the measured system... }}]}
///
/// Counters come from the google-benchmark reporter (so names match the
/// console rows exactly); the registry snapshot is captured by
/// RecordStandardCounters and attached to the next reported run.
/// scripts/check_bench_json.py validates the schema in CI.
class JsonReport {
 public:
  static JsonReport& Instance() {
    static JsonReport r;
    return r;
  }

  bool enabled() const { return dir_ != nullptr && *dir_ != '\0'; }

  /// Captures the measured system's registry snapshot for the run being
  /// recorded (last call before the reporter row wins).
  void NoteMetrics(const AxmlSystem& sys) {
    if (!enabled()) return;
    pending_metrics_ = sys.metrics().Snapshot().ToJson();
  }

  /// Appends one run row; called by the capturing reporter.
  void AddRun(const std::string& name, int64_t iterations,
              const benchmark::UserCounters& counters) {
    if (!enabled()) return;
    std::string row = StrCat("    {\"name\": \"", JsonEscape(name),
                             "\", \"iterations\": ", iterations,
                             ", \"counters\": {");
    bool first = true;
    for (const auto& [cname, counter] : counters) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.10g", counter.value);
      row += StrCat(first ? "" : ", ", "\"", JsonEscape(cname), "\": ", buf);
      first = false;
    }
    row += "}, \"metrics\": ";
    row += pending_metrics_.empty() ? "{}" : pending_metrics_;
    row += "}";
    pending_metrics_.clear();
    rows_.push_back(std::move(row));
  }

  /// Writes `<dir>/<basename(argv0)>.json`; no-op when disabled or no
  /// runs were recorded (e.g. everything filtered out).
  void Write(const char* argv0) {
    if (!enabled() || rows_.empty()) return;
    std::string base = argv0;
    if (auto slash = base.find_last_of('/'); slash != std::string::npos) {
      base = base.substr(slash + 1);
    }
    const std::string path = StrCat(dir_, "/", base, ".json");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench json: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"schema_version\": 1,\n  \"bench\": \"" << JsonEscape(base)
        << "\",\n  \"runs\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "bench json: wrote %s (%zu runs)\n", path.c_str(),
                 rows_.size());
  }

 private:
  JsonReport() = default;
  const char* dir_ = std::getenv("AXML_BENCH_JSON_DIR");
  std::string pending_metrics_;
  std::vector<std::string> rows_;
};

/// Console reporter that additionally feeds every run row (name,
/// iterations, user counters) into the JsonReport. google-benchmark
/// 1.7.x has no State::name(), so the reporter is the one place run
/// names exist.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (!run.error_occurred && run.run_type == Run::RT_Iteration) {
        JsonReport::Instance().AddRun(run.benchmark_name(), run.iterations,
                                      run.counters);
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

/// True when $AXML_TRACE_OUT names a file the bench should export a
/// Chrome-trace JSON to. Benches that support it enable the system's
/// tracer when this holds and call MaybeExportTrace once after a run.
inline const char* TraceOutPath() {
  const char* path = std::getenv("AXML_TRACE_OUT");
  return (path != nullptr && *path != '\0') ? path : nullptr;
}
inline bool TraceExportRequested() { return TraceOutPath() != nullptr; }

/// Writes the system's trace buffer to $AXML_TRACE_OUT (Chrome
/// trace-event JSON, loadable in Perfetto). No-op when unset.
inline void MaybeExportTrace(const AxmlSystem& sys) {
  const char* path = TraceOutPath();
  if (path == nullptr) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "trace export: cannot write %s\n", path);
    return;
  }
  out << sys.tracer().ToChromeJson();
  std::fprintf(stderr, "trace export: wrote %s (%zu spans)\n", path,
               sys.tracer().size());
}

/// Builds the product-catalog workload (same generator as the tests).
inline TreePtr MakeCatalog(size_t n_products, NodeIdGen* gen, Rng* rng,
                           size_t desc_bytes = 24) {
  TreePtr catalog = TreeNode::Element("catalog", gen);
  for (size_t i = 0; i < n_products; ++i) {
    TreePtr prod = TreeNode::Element("product", gen);
    prod->AddChild(MakeTextElement("name", StrCat("item", i), gen));
    prod->AddChild(MakeTextElement(
        "price", std::to_string(rng->Uniform(1000)), gen));
    prod->AddChild(MakeTextElement("category", StrCat("c", i % 10), gen));
    if (desc_bytes > 0) {
      prod->AddChild(
          MakeTextElement("desc", rng->Identifier(desc_bytes), gen));
    }
    catalog->AddChild(std::move(prod));
  }
  return catalog;
}

/// Records the standard simulated counters on `state`: virtual seconds
/// since `t0`, remote traffic, and the result count.
inline void RecordStandardCounters(benchmark::State& state, AxmlSystem* sys,
                                   SimTime t0, size_t results) {
  state.counters["sim_s"] = sys->loop().now() - t0;
  state.counters["remote_KB"] =
      static_cast<double>(sys->network().stats().remote_bytes()) / 1024.0;
  state.counters["msgs"] =
      static_cast<double>(sys->network().stats().remote_messages());
  state.counters["results"] = static_cast<double>(results);
  JsonReport::Instance().NoteMetrics(*sys);
}

/// Runs eval@at(e) on a fresh evaluator and records the standard
/// counters on `state`. Aborts the benchmark on evaluation errors.
inline void EvalAndRecord(benchmark::State& state, AxmlSystem* sys,
                          PeerId at, const ExprPtr& e) {
  sys->network().mutable_stats()->Reset();
  const SimTime t0 = sys->loop().now();
  Evaluator ev(sys);
  auto out = ev.Eval(at, e);
  if (!out.ok()) {
    state.SkipWithError(out.status().ToString().c_str());
    return;
  }
  RecordStandardCounters(state, sys, t0, out->results.size());
}

}  // namespace bench
}  // namespace axml

/// Drop-in replacement for BENCHMARK_MAIN() that routes runs through the
/// JsonCaptureReporter and flushes the bench JSON file (if requested via
/// $AXML_BENCH_JSON_DIR) after the run.
#define AXML_BENCH_MAIN()                                                \
  int main(int argc, char** argv) {                                      \
    ::benchmark::Initialize(&argc, argv);                                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;  \
    {                                                                    \
      ::axml::bench::JsonCaptureReporter reporter;                       \
      ::benchmark::RunSpecifiedBenchmarks(&reporter);                    \
    }                                                                    \
    ::benchmark::Shutdown();                                             \
    ::axml::bench::JsonReport::Instance().Write(argv[0]);                \
    return 0;                                                            \
  }                                                                      \
  int main(int, char**)

#endif  // AXML_BENCH_BENCH_COMMON_H_
