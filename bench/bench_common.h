// Shared helpers for the experiment benchmarks (EXP-1 .. EXP-10, see
// DESIGN.md §3 for the per-experiment index).
//
// Convention: each benchmark reports the *simulated* quantities the
// paper's claims are about as google-benchmark counters:
//   sim_s        — virtual seconds until the evaluation quiesced
//   remote_KB    — kilobytes shipped between distinct peers
//   msgs         — messages between distinct peers
//   results      — trees produced at the consumer
// Wall-clock time (the default benchmark column) measures the simulator
// itself and is not the experiment's subject.

#ifndef AXML_BENCH_BENCH_COMMON_H_
#define AXML_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <memory>

#include "algebra/evaluator.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "opt/optimizer.h"
#include "peer/system.h"
#include "xml/tree.h"

namespace axml {
namespace bench {

/// Builds the product-catalog workload (same generator as the tests).
inline TreePtr MakeCatalog(size_t n_products, NodeIdGen* gen, Rng* rng,
                           size_t desc_bytes = 24) {
  TreePtr catalog = TreeNode::Element("catalog", gen);
  for (size_t i = 0; i < n_products; ++i) {
    TreePtr prod = TreeNode::Element("product", gen);
    prod->AddChild(MakeTextElement("name", StrCat("item", i), gen));
    prod->AddChild(MakeTextElement(
        "price", std::to_string(rng->Uniform(1000)), gen));
    prod->AddChild(MakeTextElement("category", StrCat("c", i % 10), gen));
    if (desc_bytes > 0) {
      prod->AddChild(
          MakeTextElement("desc", rng->Identifier(desc_bytes), gen));
    }
    catalog->AddChild(std::move(prod));
  }
  return catalog;
}

/// Records the standard simulated counters on `state`: virtual seconds
/// since `t0`, remote traffic, and the result count.
inline void RecordStandardCounters(benchmark::State& state, AxmlSystem* sys,
                                   SimTime t0, size_t results) {
  state.counters["sim_s"] = sys->loop().now() - t0;
  state.counters["remote_KB"] =
      static_cast<double>(sys->network().stats().remote_bytes()) / 1024.0;
  state.counters["msgs"] =
      static_cast<double>(sys->network().stats().remote_messages());
  state.counters["results"] = static_cast<double>(results);
}

/// Runs eval@at(e) on a fresh evaluator and records the standard
/// counters on `state`. Aborts the benchmark on evaluation errors.
inline void EvalAndRecord(benchmark::State& state, AxmlSystem* sys,
                          PeerId at, const ExprPtr& e) {
  sys->network().mutable_stats()->Reset();
  const SimTime t0 = sys->loop().now();
  Evaluator ev(sys);
  auto out = ev.Eval(at, e);
  if (!out.ok()) {
    state.SkipWithError(out.status().ToString().c_str());
    return;
  }
  RecordStandardCounters(state, sys, t0, out->results.size());
}

}  // namespace bench
}  // namespace axml

#endif  // AXML_BENCH_BENCH_COMMON_H_
