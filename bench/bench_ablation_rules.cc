// EXP-11 (ablation): which equivalence rule earns its keep?
//
// DESIGN.md calls for ablation benches on the design choices; the key
// one is the rule set itself. For three representative workloads we run
// the optimizer with the full rule set and with each rule removed, and
// report the estimated cost of the winning plan (relative to the direct
// strategy, as cost_reduction_x). A rule "matters" for a workload when
// removing it collapses the reduction.
//
// Workloads:
//   remote_select — selective query over one remote doc (EXP-1 shape);
//                   pushdown should matter, delegation can substitute.
//   shared_join   — join using the same remote doc twice (EXP-4 shape);
//                   transfer-cache and delegation compete.
//   over_call     — query over a declarative service call (EXP-7
//                   shape); push-over-sc should matter.

#include "bench_common.h"

namespace axml {
namespace {

enum class Workload { kRemoteSelect, kSharedJoin, kOverCall };

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId p0, p1;
  ExprPtr expr;
};

Setup Build(Workload w) {
  Setup s;
  s.sys = std::make_unique<AxmlSystem>(
      Topology(LinkParams{0.010, 1.0e6}));
  s.p0 = s.sys->AddPeer("p0");
  s.p1 = s.sys->AddPeer("p1");
  Rng rng(11);
  TreePtr cat = bench::MakeCatalog(1500, s.sys->peer(s.p1)->gen(), &rng);
  (void)s.sys->InstallDocument(s.p1, "cat", cat);
  switch (w) {
    case Workload::kRemoteSelect: {
      Query q = Query::Parse(
                    "for $p in input(0)/catalog/product "
                    "where $p/price < 40 return <r>{ $p/name }</r>")
                    .value();
      s.expr = Expr::Apply(q, s.p0, {Expr::Doc("cat", s.p1)});
      break;
    }
    case Workload::kSharedJoin: {
      Query q = Query::Parse(
                    "for $a in input(0)/catalog/product "
                    "for $b in input(1)/catalog/product "
                    "where $a/name = $b/name and $a/price < 30 "
                    "return <m>{ $a/name }</m>")
                    .value();
      ExprPtr shared = Expr::Doc("cat", s.p1);
      s.expr = Expr::Apply(q, s.p0, {shared, shared});
      break;
    }
    case Workload::kOverCall: {
      Query body = Query::Parse(
                       "for $p in doc(\"cat\")/catalog/product "
                       "for $k in input(0) where $p/price < $k/max "
                       "return $p")
                       .value();
      (void)s.sys->InstallService(s.p1,
                                  Service::Declarative("feed", body));
      Query outer = Query::Parse(
                        "for $p in input(0) where $p/price < 40 "
                        "return <r>{ $p/name }</r>")
                        .value();
      TreePtr k = TreeNode::Element("k", s.sys->peer(s.p0)->gen());
      k->AddChild(
          MakeTextElement("max", "900", s.sys->peer(s.p0)->gen()));
      s.expr = Expr::Apply(
          outer, s.p0,
          {Expr::Call(s.p1, "feed", {Expr::Tree(k, s.p0)})});
      break;
    }
  }
  return s;
}

/// 0 = full set, 1..5 = drop one rule (index into the builder list).
std::vector<std::unique_ptr<RewriteRule>> RuleSetWithout(int dropped) {
  using Maker = std::unique_ptr<RewriteRule> (*)();
  static constexpr Maker kMakers[] = {
      &MakeSelectionPushdownRule, &MakePushQueryOverCallRule,
      &MakeDelegationRule, &MakeTransferCacheRule,
      &MakeIntermediaryStopRule};
  std::vector<std::unique_ptr<RewriteRule>> rules;
  for (int i = 0; i < 5; ++i) {
    if (i + 1 == dropped) continue;
    rules.push_back(kMakers[i]());
  }
  return rules;
}

const char* DroppedName(int dropped) {
  switch (dropped) {
    case 0:
      return "full";
    case 1:
      return "no_pushdown";
    case 2:
      return "no_push_over_sc";
    case 3:
      return "no_delegation";
    case 4:
      return "no_transfer_cache";
    case 5:
      return "no_intermediary";
  }
  return "?";
}

void RunAblation(benchmark::State& state, Workload w) {
  Setup s = Build(w);
  int dropped = static_cast<int>(state.range(0));
  OptimizerOptions opts;
  CostModel cm(s.sys.get());
  double direct = cm.Estimate(s.p0, s.expr).Scalar(opts.weights);
  for (auto _ : state) {
    Optimizer opt(s.sys.get(), opts, RuleSetWithout(dropped));
    OptimizedPlan plan = opt.Optimize(s.p0, s.expr);
    double best = plan.cost.Scalar(opts.weights);
    state.counters["cost_reduction_x"] = best > 0 ? direct / best : 0;
    state.counters["rules_in_plan"] =
        static_cast<double>(plan.rules_applied.size());
    benchmark::DoNotOptimize(plan.expr);
  }
  state.SetLabel(DroppedName(dropped));
}

void BM_Ablation_RemoteSelect(benchmark::State& state) {
  RunAblation(state, Workload::kRemoteSelect);
}
void BM_Ablation_SharedJoin(benchmark::State& state) {
  RunAblation(state, Workload::kSharedJoin);
}
void BM_Ablation_OverCall(benchmark::State& state) {
  RunAblation(state, Workload::kOverCall);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t dropped = 0; dropped <= 5; ++dropped) b->Arg(dropped);
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Ablation_RemoteSelect)->Apply(Sweep);
BENCHMARK(BM_Ablation_SharedJoin)->Apply(Sweep);
BENCHMARK(BM_Ablation_OverCall)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
