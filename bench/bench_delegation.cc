// EXP-2: query delegation (rule (10)).
//
// Claim under test: evaluating q(t) at p1 equals sending q and t to a
// peer p2, evaluating there, and shipping the results back — and this
// pays off when p2 is substantially faster (or less loaded) than p1.
//
// Sweep: input size N x compute-speed ratio between the weak caller and
// the strong helper. Expected shape: delegation loses at ratio 1 (pure
// shipping overhead) and wins beyond a crossover ratio that drops as N
// grows.

#include "bench_common.h"

namespace axml {
namespace {

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId weak, strong;
  ExprPtr expr;
};

Setup Build(int64_t n, int64_t speed_ratio) {
  Setup s;
  s.sys = std::make_unique<AxmlSystem>(
      Topology(LinkParams{0.005, 2.0e6}));
  s.weak = s.sys->AddPeer("weak");
  s.strong = s.sys->AddPeer("strong");
  s.sys->peer(s.weak)->set_compute_speed(2.0e4);
  s.sys->peer(s.strong)->set_compute_speed(2.0e4 *
                                           static_cast<double>(speed_ratio));
  Rng rng(42);
  TreePtr t = bench::MakeCatalog(static_cast<size_t>(n),
                                 s.sys->peer(s.weak)->gen(), &rng);
  (void)s.sys->InstallDocument(s.weak, "t", t);
  // A self-join: compute-heavy relative to its output.
  Query q = Query::Parse(
                "for $a in input(0)/catalog/product "
                "for $b in input(0)/catalog/product "
                "where $a/name = $b/name and $a/price < 20 "
                "return <m>{ $a/name }</m>")
                .value();
  s.expr = Expr::Apply(q, s.weak, {Expr::Doc("t", s.weak)});
  return s;
}

void BM_Delegation_Local(benchmark::State& state) {
  Setup s = Build(state.range(0), state.range(1));
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.weak, s.expr);
  }
}

void BM_Delegation_Delegated(benchmark::State& state) {
  Setup s = Build(state.range(0), state.range(1));
  // Rule (10): send q and t to the strong peer, results come back.
  ExprPtr e = Expr::EvalAt(s.strong, s.expr);
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.weak, e);
  }
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t n : {64, 256}) {
    for (int64_t ratio : {1, 4, 16, 64}) {
      b->Args({n, ratio});
    }
  }
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Delegation_Local)->Apply(Sweep);
BENCHMARK(BM_Delegation_Delegated)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
