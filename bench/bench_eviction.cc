// Eviction policies and proactive placement under skewed access.
//
// Claim under test: *which* copy a cache keeps matters as much as
// having a cache at all. Two experiments:
//
// BM_Eviction_{Lru,Lfu,CostAware} — one reader, Zipf(1.1) reads over a
//   large hot document on a *distant* origin plus many small cold
//   documents on nearby origins, cache budget far below the working
//   set. LRU treats all entries alike, so bursts of cheap nearby
//   traffic push the expensive distant copy out and every re-read pays
//   the big transfer again. LFU pins the hot entry by frequency;
//   cost-aware pins it by refetch cost (CostModel::RefetchCost): cheap
//   nearby copies die first. The acceptance metric is remote_KB.
//
// BM_Placement_{Off,On} — four readers resolve hot document classes via
//   d@any (no per-read caching: EvalOptions::use_replica_cache off), the
//   origin mutates periodically. With placement on, RunPlacement rounds
//   read the GenericCatalog's pick demand and proactively ship hot
//   documents to their top pickers; subsequent picks ride the free
//   loopback link instead of the WAN.
//
// Counters beyond the standard set:
//   cache_hits/misses, evicted_KB (churn), placed (landed seeds).

#include "bench_common.h"
#include "common/rng.h"
#include "xml/wire.h"

namespace axml {
namespace {

// --- Eviction: skewed reads against a distant hot origin ---

struct EvictionSetup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId reader;
  /// docs[rank] = (name, origin); rank 0 is the big document on the
  /// distant origin, the rest are small documents on nearby origins.
  std::vector<std::pair<DocName, PeerId>> docs;
};

constexpr size_t kColdDocs = 48;
constexpr size_t kEvictionReads = 1500;

EvictionSetup BuildEviction() {
  EvictionSetup s;
  // Nearby links are cheap; the hot origin sits behind a slow WAN link.
  s.sys = std::make_unique<AxmlSystem>(Topology(LinkParams{0.005, 8.0e6}));
  s.reader = s.sys->AddPeer("reader");
  PeerId far = s.sys->AddPeer("far-origin");
  s.sys->network().mutable_topology()->SetLinkSymmetric(
      s.reader, far, LinkParams{0.250, 2.5e5});
  std::vector<PeerId> near;
  for (int i = 0; i < 4; ++i) {
    near.push_back(s.sys->AddPeer(StrCat("near", i)));
  }
  Rng rng(1234);
  TreePtr hot = bench::MakeCatalog(256, s.sys->peer(far)->gen(), &rng);
  const uint64_t hot_bytes = wire::EncodedTreeSize(*hot);
  (void)s.sys->InstallDocument(far, "hot", hot);
  s.docs.emplace_back("hot", far);
  uint64_t cold_bytes = 0;
  for (size_t i = 0; i < kColdDocs; ++i) {
    PeerId origin = near[i % near.size()];
    TreePtr t =
        bench::MakeCatalog(16, s.sys->peer(origin)->gen(), &rng);
    cold_bytes = wire::EncodedTreeSize(*t);
    DocName name = StrCat("cold", i);
    (void)s.sys->InstallDocument(origin, name, t);
    s.docs.emplace_back(name, origin);
  }
  // Budget: the hot copy plus a handful of cold ones — eviction pressure
  // on every cold burst.
  s.sys->replicas().set_default_byte_budget(hot_bytes + 3 * cold_bytes);
  return s;
}

void BM_Eviction(benchmark::State& state, EvictionPolicy policy) {
  EvictionSetup s = BuildEviction();
  EvalOptions opts;
  opts.use_replica_cache = true;
  for (auto _ : state) {
    s.sys->replicas().set_default_eviction_policy(policy);
    s.sys->replicas().DropAllCopies();
    s.sys->replicas().ResetStats();
    s.sys->network().mutable_stats()->Reset();
    const SimTime t0 = s.sys->loop().now();
    Evaluator ev(s.sys.get(), opts);
    Rng rng(99);
    ZipfSampler zipf(s.docs.size(), 1.1);
    size_t results = 0;
    for (size_t i = 0; i < kEvictionReads; ++i) {
      const auto& [name, origin] = s.docs[zipf.Sample(&rng)];
      auto out = ev.Eval(s.reader, Expr::Doc(name, origin));
      if (!out.ok()) {
        state.SkipWithError(out.status().ToString().c_str());
        return;
      }
      results += out->results.size();
    }
    bench::RecordStandardCounters(state, s.sys.get(), t0, results);
    const TransferCacheStats cs = s.sys->replicas().TotalStats();
    state.counters["cache_hits"] = static_cast<double>(cs.hits);
    state.counters["cache_misses"] = static_cast<double>(cs.misses);
    state.counters["evicted_KB"] =
        static_cast<double>(cs.bytes_evicted) / 1024.0;
  }
}

void BM_Eviction_Lru(benchmark::State& state) {
  BM_Eviction(state, EvictionPolicy::kLru);
}
void BM_Eviction_Lfu(benchmark::State& state) {
  BM_Eviction(state, EvictionPolicy::kLfu);
}
void BM_Eviction_CostAware(benchmark::State& state) {
  BM_Eviction(state, EvictionPolicy::kCostAware);
}

// --- Placement: seeding hot classes at their top pickers ---

struct PlacementSetup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId origin;
  std::vector<PeerId> readers;
  std::vector<std::pair<std::string, DocName>> classes;  ///< (class, doc)
};

constexpr size_t kPlacementDocs = 8;
constexpr size_t kPlacementReads = 600;

PlacementSetup BuildPlacement() {
  PlacementSetup s;
  // Everyone reaches the origin over a slow WAN link.
  s.sys = std::make_unique<AxmlSystem>(Topology(LinkParams{0.120, 4.0e5}));
  s.origin = s.sys->AddPeer("hq");
  for (int i = 0; i < 4; ++i) {
    s.readers.push_back(s.sys->AddPeer(StrCat("reader", i)));
  }
  Rng rng(77);
  for (size_t i = 0; i < kPlacementDocs; ++i) {
    DocName name = StrCat("doc", i);
    (void)s.sys->InstallDocument(
        s.origin, name,
        bench::MakeCatalog(48, s.sys->peer(s.origin)->gen(), &rng));
    std::string cls = StrCat("cls", i);
    s.sys->generics().AddDocumentMember(cls,
                                        ClassMember{name, s.origin});
    s.classes.emplace_back(cls, name);
  }
  return s;
}

void BM_Placement(benchmark::State& state, bool placement_on) {
  PlacementSetup s = BuildPlacement();
  PlacementConfig config;
  config.enabled = placement_on;
  config.min_picks = 3;
  config.max_targets_per_class = 2;
  config.max_shipments_per_round = 16;
  s.sys->replicas().placement().set_config(config);
  EvalOptions opts;
  opts.pick_policy = PickPolicy::kCacheAware;
  for (auto _ : state) {
    s.sys->replicas().DropAllCopies();
    s.sys->RunToQuiescence();
    s.sys->replicas().ResetStats();
    s.sys->generics().ResetPickCounts();
    s.sys->network().mutable_stats()->Reset();
    const SimTime t0 = s.sys->loop().now();
    Evaluator ev(s.sys.get(), opts);
    Rng rng(5);
    ZipfSampler zipf(s.classes.size(), 1.0);
    size_t results = 0;
    for (size_t i = 0; i < kPlacementReads; ++i) {
      PeerId reader = s.readers[i % s.readers.size()];
      const auto& [cls, name] = s.classes[zipf.Sample(&rng)];
      auto out = ev.Eval(reader, Expr::GenericDoc(cls));
      if (!out.ok()) {
        state.SkipWithError(out.status().ToString().c_str());
        return;
      }
      results += out->results.size();
      // Write traffic at the origin strands seeded copies (push drop).
      if (i % 75 == 74) {
        const auto& [mcls, mname] = s.classes[zipf.Sample(&rng)];
        Peer* hq = s.sys->peer(s.origin);
        hq->PutDocument(
            mname, bench::MakeCatalog(48, hq->gen(), &rng));
        s.sys->RunToQuiescence();
      }
      // Periodic placement rounds re-seed hot classes from demand.
      if (i % 40 == 39) {
        s.sys->replicas().RunPlacement();
        s.sys->RunToQuiescence();
      }
    }
    s.sys->RunToQuiescence();
    bench::RecordStandardCounters(state, s.sys.get(), t0, results);
    state.counters["placed"] =
        static_cast<double>(s.sys->replicas().placement_stats().landed);
    state.counters["placement_KB"] =
        static_cast<double>(
            s.sys->replicas().placement_stats().shipped_bytes) /
        1024.0;
  }
}

void BM_Placement_Off(benchmark::State& state) {
  BM_Placement(state, false);
}
void BM_Placement_On(benchmark::State& state) {
  BM_Placement(state, true);
}

BENCHMARK(BM_Eviction_Lru)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Eviction_Lfu)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Eviction_CostAware)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Placement_Off)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Placement_On)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
