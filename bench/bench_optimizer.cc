// EXP-9: the optimization methodology itself (§3.3).
//
// Measures, for generated expressions of growing size over a 6-peer
// system: the optimizer's real search time, the number of candidates it
// explored, and the estimated-cost reduction of the winning plan over
// the direct strategy.
//
// Expected shape: search time grows with expression size and beam
// width but stays in the milliseconds; cost reduction is large for
// remote selective queries and ~1x for already-local plans.

#include "bench_common.h"
#include "query/decompose.h"

namespace axml {
namespace {

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  std::vector<PeerId> peers;
  std::vector<ExprPtr> exprs;  ///< one per "size" knob
};

Setup Build(int64_t n_args) {
  Setup s;
  s.sys = std::make_unique<AxmlSystem>(
      Topology(LinkParams{0.010, 1.0e6}));
  Rng rng(19);
  for (int i = 0; i < 6; ++i) {
    PeerId p = s.sys->AddPeer(StrCat("n", i));
    TreePtr cat =
        bench::MakeCatalog(1500, s.sys->peer(p)->gen(), &rng);
    (void)s.sys->InstallDocument(p, StrCat("cat", i), cat);
    s.peers.push_back(p);
  }
  // A query with n_args remote document arguments, each filterable.
  std::string text = "for $a in input(0)/catalog/product";
  for (int64_t i = 1; i < n_args; ++i) {
    text += StrCat(" for $v", i, " in input(", i, ")/catalog/product");
  }
  text += " where $a/price < 40";
  for (int64_t i = 1; i < n_args; ++i) {
    text += StrCat(" and $v", i, "/price < 40");
  }
  text += " return <r>{ $a/name }</r>";
  Query q = Query::Parse(text).value();
  std::vector<ExprPtr> args;
  for (int64_t i = 0; i < n_args; ++i) {
    args.push_back(Expr::Doc(StrCat("cat", (i % 5) + 1),
                             s.peers[(i % 5) + 1]));
  }
  s.exprs.push_back(Expr::Apply(q, s.peers[0], args));
  return s;
}

void BM_Optimizer_Search(benchmark::State& state) {
  Setup s = Build(state.range(0));
  OptimizerOptions opts;
  opts.beam_width = static_cast<size_t>(state.range(1));
  CostModel cm(s.sys.get());
  double direct_cost =
      cm.Estimate(s.peers[0], s.exprs[0]).Scalar(opts.weights);
  OptimizedPlan last;
  size_t explored = 0;
  for (auto _ : state) {
    Optimizer opt(s.sys.get(), opts);
    last = opt.Optimize(s.peers[0], s.exprs[0]);
    explored = opt.candidates_explored();
    benchmark::DoNotOptimize(last.expr);
  }
  state.counters["candidates"] = static_cast<double>(explored);
  state.counters["cost_reduction_x"] =
      last.cost.Scalar(opts.weights) > 0
          ? direct_cost / last.cost.Scalar(opts.weights)
          : 0.0;
  state.counters["rules_applied"] =
      static_cast<double>(last.rules_applied.size());
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t n_args : {1, 2, 3}) {
    for (int64_t beam : {4, 8, 16}) {
      b->Args({n_args, beam});
    }
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Optimizer_Search)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
