// EXP-1: pushing selections (rules (10)+(11), Example 1).
//
// Claim under test: "[the rewritten strategy] delegates the execution of
// q3 (which applies the selection) to p2, and only ships to p the
// resulting data set, typically smaller."
//
// Sweep: catalog size N x price bound θ (selectivity θ/1000).
// Strategies:
//   Naive     — definition (7): ship the whole document to the
//               evaluating peer, select there.
//   Pushdown  — Example 1: delegate the σ filter to the data peer, ship
//               only survivors.
//   Optimizer — whatever the cost-based search picks (should match
//               Pushdown for selective predicates).
// Expected shape: Pushdown's remote_KB ≈ selectivity × Naive's, with the
// gap growing with N and shrinking as θ → 1000.

#include "bench_common.h"
#include "opt/optimizer.h"
#include "query/decompose.h"

namespace axml {
namespace {

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId p, p2;
  Query q;
};

Setup Build(int64_t n, int64_t theta) {
  Setup s;
  s.sys = std::make_unique<AxmlSystem>(
      Topology(LinkParams{0.020, 1.0e6}));
  s.p = s.sys->AddPeer("p");
  s.p2 = s.sys->AddPeer("p2");
  Rng rng(2006);
  TreePtr t =
      bench::MakeCatalog(static_cast<size_t>(n),
                         s.sys->peer(s.p2)->gen(), &rng);
  (void)s.sys->InstallDocument(s.p2, "t", t);
  s.q = Query::Parse(StrCat(
            "for $b in input(0)/catalog/product where $b/price < ", theta,
            " return <res>{ $b/name, $b/price }</res>"))
            .value();
  return s;
}

void BM_Pushdown_Naive(benchmark::State& state) {
  Setup s = Build(state.range(0), state.range(1));
  ExprPtr e = Expr::Apply(s.q, s.p, {Expr::Doc("t", s.p2)});
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.p, e);
  }
}

void BM_Pushdown_Rewritten(benchmark::State& state) {
  Setup s = Build(state.range(0), state.range(1));
  auto split = SplitSelection(s.q, 0);
  if (!split.has_value()) {
    state.SkipWithError("no pushable selection");
    return;
  }
  ExprPtr filtered = Expr::EvalAt(
      s.p2, Expr::Apply(split->filter, s.p, {Expr::Doc("t", s.p2)}));
  ExprPtr e = Expr::Apply(split->remainder, s.p, {filtered});
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.p, e);
  }
}

void BM_Pushdown_Optimizer(benchmark::State& state) {
  Setup s = Build(state.range(0), state.range(1));
  Optimizer opt(s.sys.get());
  OptimizedPlan plan =
      opt.Optimize(s.p, Expr::Apply(s.q, s.p, {Expr::Doc("t", s.p2)}));
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.p, plan.expr);
  }
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t n : {256, 1024, 4096}) {
    for (int64_t theta : {50, 250, 1000}) {  // 5% / 25% / 100%
      b->Args({n, theta});
    }
  }
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Pushdown_Naive)->Apply(Sweep);
BENCHMARK(BM_Pushdown_Rewritten)->Apply(Sweep);
BENCHMARK(BM_Pushdown_Optimizer)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
