// EXP-4: transfer caching (rule (13)).
//
// Claim under test: when two subexpressions both transfer t@p1,
// materializing t once as a local document d@p and reading the copy
// saves a transfer — at the price of serializing the two consumers
// ("breaks the parallelism between e2 and e3's evaluations. This may be
// worth it if t is large.")
//
// Sweep: size of t. Expected shape: Cached moves ~half the bytes at any
// size; on completion time there is a crossover — for tiny t the lost
// parallelism and the install round-trip make Cached slower, for large
// t the saved transfer dominates.

#include "bench_common.h"

namespace axml {
namespace {

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId p0, p1;
  Query q;
};

Setup Build(int64_t n) {
  Setup s;
  // High-latency link so the install round-trip is visible.
  s.sys = std::make_unique<AxmlSystem>(
      Topology(LinkParams{0.100, 2.0e6}));
  s.p0 = s.sys->AddPeer("p0");
  s.p1 = s.sys->AddPeer("p1");
  Rng rng(13);
  TreePtr t = bench::MakeCatalog(static_cast<size_t>(n),
                                 s.sys->peer(s.p1)->gen(), &rng);
  (void)s.sys->InstallDocument(s.p1, "big", t);
  s.q = Query::Parse(
            "for $a in input(0)/catalog/product "
            "for $b in input(1)/catalog/product "
            "where $a/name = $b/name and $a/price < 25 "
            "return <m>{ $a/name }</m>")
            .value();
  return s;
}

void BM_Cache_DoubleTransfer(benchmark::State& state) {
  Setup s = Build(state.range(0));
  ExprPtr shared = Expr::Doc("big", s.p1);
  ExprPtr e = Expr::Apply(s.q, s.p0, {shared, shared});
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.p0, e);
  }
}

void BM_Cache_Materialized(benchmark::State& state) {
  Setup s = Build(state.range(0));
  // Rule (13) RHS: install once, then both uses read the local copy.
  ExprPtr install = Expr::EvalAt(
      s.p1, Expr::SendAsDoc("cache", s.p0, Expr::Doc("big", s.p1)));
  ExprPtr use = Expr::Apply(
      s.q, s.p0, {Expr::Doc("cache", s.p0), Expr::Doc("cache", s.p0)});
  ExprPtr e = Expr::Seq(install, use);
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.p0, e);
    // Seq installs once per evaluation; drop the cache for re-runs.
    (void)s.sys->peer(s.p0)->RemoveDocument("cache");
  }
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t n : {8, 64, 512, 2048}) {
    b->Args({n});
  }
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Cache_DoubleTransfer)->Apply(Sweep);
BENCHMARK(BM_Cache_Materialized)->Apply(Sweep);

}  // namespace
}  // namespace axml

BENCHMARK_MAIN();
