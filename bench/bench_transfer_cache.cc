// EXP-4: transfer caching (rule (13)) and the replica subsystem.
//
// Claim under test: when two subexpressions both transfer t@p1,
// materializing t once as a local document d@p and reading the copy
// saves a transfer — at the price of serializing the two consumers
// ("breaks the parallelism between e2 and e3's evaluations. This may be
// worth it if t is large.")
//
// Sweep: size of t. Three strategies per size:
//   DoubleTransfer — the naive plan: both reads transfer.
//   Materialized   — rule (13)'s static rewrite: install once, read the
//                    copy twice, consumers serialized behind the install.
//   ReplicaCache   — the runtime replica subsystem (src/replica/): the
//                    second read coalesces onto the first's in-flight
//                    transfer, and a follow-up round hits the cache
//                    outright. No install leg, no lost parallelism.
//
// Each strategy runs two rounds of the join per iteration (a repeated-
// read workload), so cross-evaluation cache hits show up as well.
// Besides the standard counters, every benchmark reports the cache
// stats the crossover claim is about:
//   cache_hits / cache_misses — per iteration, from the TransferCache
//   saved_KB                  — wire bytes the cache avoided
// The always-transfer baseline reports 0 hits and saves nothing; the
// cache-aware path moves roughly a quarter of its bytes at any size.

#include "bench_common.h"

namespace axml {
namespace {

constexpr int kRounds = 2;  // repeated-read workload

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId p0, p1;
  Query q;
};

Setup Build(int64_t n) {
  Setup s;
  // High-latency link so the install round-trip is visible.
  s.sys = std::make_unique<AxmlSystem>(
      Topology(LinkParams{0.100, 2.0e6}));
  s.p0 = s.sys->AddPeer("p0");
  s.p1 = s.sys->AddPeer("p1");
  Rng rng(13);
  TreePtr t = bench::MakeCatalog(static_cast<size_t>(n),
                                 s.sys->peer(s.p1)->gen(), &rng);
  (void)s.sys->InstallDocument(s.p1, "big", t);
  s.q = Query::Parse(
            "for $a in input(0)/catalog/product "
            "for $b in input(1)/catalog/product "
            "where $a/name = $b/name and $a/price < 25 "
            "return <m>{ $a/name }</m>")
            .value();
  return s;
}

/// Runs `rounds` evaluations of `e`, accumulating the standard counters,
/// and reports the system's total cache stats for the iteration.
void RunRounds(benchmark::State& state, Setup& s, const ExprPtr& e,
               const EvalOptions& opts, int rounds,
               const std::function<void()>& between_rounds = {}) {
  s.sys->network().mutable_stats()->Reset();
  s.sys->replicas().ResetStats();
  const SimTime t0 = s.sys->loop().now();
  Evaluator ev(s.sys.get(), opts);
  size_t results = 0;
  for (int r = 0; r < rounds; ++r) {
    auto out = ev.Eval(s.p0, e);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    results += out->results.size();
    if (between_rounds) between_rounds();
  }
  bench::RecordStandardCounters(state, s.sys.get(), t0, results);
  const TransferCacheStats cs = s.sys->replicas().TotalStats();
  state.counters["cache_hits"] = static_cast<double>(cs.hits);
  state.counters["cache_misses"] = static_cast<double>(cs.misses);
  state.counters["saved_KB"] =
      static_cast<double>(cs.bytes_saved) / 1024.0;
}

void BM_Cache_DoubleTransfer(benchmark::State& state) {
  Setup s = Build(state.range(0));
  ExprPtr shared = Expr::Doc("big", s.p1);
  ExprPtr e = Expr::Apply(s.q, s.p0, {shared, shared});
  for (auto _ : state) {
    RunRounds(state, s, e, EvalOptions{}, kRounds);
  }
}

void BM_Cache_Materialized(benchmark::State& state) {
  Setup s = Build(state.range(0));
  // Rule (13) RHS: install once, then both uses read the local copy.
  ExprPtr install = Expr::EvalAt(
      s.p1, Expr::SendAsDoc("cache", s.p0, Expr::Doc("big", s.p1)));
  ExprPtr use = Expr::Apply(
      s.q, s.p0, {Expr::Doc("cache", s.p0), Expr::Doc("cache", s.p0)});
  ExprPtr e = Expr::Seq(install, use);
  for (auto _ : state) {
    // Seq installs once per round; drop the copy so the next round (and
    // iteration) installs afresh rather than appending to it.
    RunRounds(state, s, e, EvalOptions{}, kRounds, [&s] {
      (void)s.sys->peer(s.p0)->RemoveDocument("cache");
    });
  }
}

void BM_Cache_ReplicaCache(benchmark::State& state) {
  Setup s = Build(state.range(0));
  ExprPtr shared = Expr::Doc("big", s.p1);
  ExprPtr e = Expr::Apply(s.q, s.p0, {shared, shared});
  EvalOptions opts;
  opts.use_replica_cache = true;
  for (auto _ : state) {
    // Round 1: one transfer (the second read coalesces onto it).
    // Round 2: both reads hit the cached copy — 0 bytes on the wire.
    s.sys->replicas().DropAllCopies();
    RunRounds(state, s, e, opts, kRounds);
  }
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t n : {8, 64, 512, 2048}) {
    b->Args({n});
  }
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Cache_DoubleTransfer)->Apply(Sweep);
BENCHMARK(BM_Cache_Materialized)->Apply(Sweep);
BENCHMARK(BM_Cache_ReplicaCache)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
