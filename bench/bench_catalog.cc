// EXP-8: discovery structures (§2: "We make no assumption about the
// structure of the peer network, e.g. whether a DHT-style index is
// present or not. We will discuss the impact of various network
// structures.")
//
// Sweep: peer count P x structure (central index / Chord-style DHT /
// Gnutella-style flooding over a random 4-regular-ish graph). Each run
// resolves 50 lookups from random peers.
// Expected shape: central stays flat (2 messages) but concentrates load
// on one node; DHT grows with log P; flooding grows with the edge count
// (≈ 2P..4P messages) while keeping low hop latency for near copies.

#include <functional>

#include "bench_common.h"
#include "net/catalog.h"

namespace axml {
namespace {

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  std::vector<PeerId> peers;
};

Setup Build(int64_t p_count) {
  Setup s;
  Topology topo(LinkParams{0.015, 1.0e6});
  // Random connected graph: ring + 2 chords per node.
  Rng rng(p_count);
  for (int64_t i = 0; i < p_count; ++i) {
    topo.AddNeighborEdge(PeerId(static_cast<uint32_t>(i)),
                         PeerId(static_cast<uint32_t>((i + 1) % p_count)));
  }
  for (int64_t i = 0; i < p_count; ++i) {
    topo.AddNeighborEdge(
        PeerId(static_cast<uint32_t>(i)),
        PeerId(static_cast<uint32_t>(rng.Uniform(
            static_cast<uint64_t>(p_count)))));
  }
  s.sys = std::make_unique<AxmlSystem>(std::move(topo));
  for (int64_t i = 0; i < p_count; ++i) {
    s.peers.push_back(s.sys->AddPeer(StrCat("n", i)));
  }
  return s;
}

void RunCatalog(benchmark::State& state,
                std::function<std::unique_ptr<Catalog>(const Setup&)> make) {
  Setup s = Build(state.range(0));
  std::unique_ptr<Catalog> cat = make(s);
  cat->set_peer_count(static_cast<uint32_t>(s.peers.size()));
  // 8 documents scattered over the peers.
  Rng rng(3);
  for (int d = 0; d < 8; ++d) {
    cat->Register(ResourceKind::kDocument, StrCat("d", d),
                  s.peers[rng.Index(s.peers.size())]);
  }
  for (auto _ : state) {
    double delay = 0, messages = 0, bytes = 0;
    int found = 0;
    const int kLookups = 50;
    for (int i = 0; i < kLookups; ++i) {
      PeerId from = s.peers[rng.Index(s.peers.size())];
      LookupResult r = cat->LookupNow(
          ResourceKind::kDocument, StrCat("d", i % 8), from,
          s.sys->network());
      delay += r.delay_s;
      messages += static_cast<double>(r.messages);
      bytes += static_cast<double>(r.bytes);
      if (!r.holders.empty()) ++found;
    }
    state.counters["avg_delay_ms"] = delay / kLookups * 1e3;
    state.counters["avg_msgs"] = messages / kLookups;
    state.counters["avg_bytes"] = bytes / kLookups;
    state.counters["hit_rate"] =
        static_cast<double>(found) / kLookups;
  }
}

void BM_Catalog_Central(benchmark::State& state) {
  RunCatalog(state, [](const Setup& s) {
    return std::make_unique<CentralCatalog>(s.peers[0]);
  });
}
void BM_Catalog_Dht(benchmark::State& state) {
  RunCatalog(state, [](const Setup&) {
    return std::make_unique<DhtCatalog>();
  });
}
void BM_Catalog_Flood(benchmark::State& state) {
  RunCatalog(state, [](const Setup&) {
    return std::make_unique<FloodCatalog>(/*ttl=*/6);
  });
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t p : {8, 32, 128, 512}) b->Args({p});
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Catalog_Central)->Apply(Sweep);
BENCHMARK(BM_Catalog_Dht)->Apply(Sweep);
BENCHMARK(BM_Catalog_Flood)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
