// Subtree sharding: partial replicas of documents bigger than any
// single cache budget.
//
// Claims under test:
//  1. Write-path delta: once a large document replicates as shards, a
//     single-subtree mutation re-ships only the dirty shard (plus the
//     small manifest) — a fraction of what full-document eager refresh
//     moves. Target: < 25% of the unsharded wire bytes.
//  2. Partial copies: a holder whose byte budget is *smaller than the
//     document* still gets non-zero cache hits — the resident shards
//     serve locally and only the gap crosses the wire — where the
//     unsharded cache can never admit the document at all.
//
// Workload A (WriteDelta): one origin, several readers holding copies,
// kEagerRefresh; each round mutates one product's description (same
// size, so exactly one shard dirties) and every reader re-reads.
// Sweep: document size × {unsharded, sharded}.
//
// Workload B (TightBudget): reader budget = 1/4 of the document; the
// reader re-reads a hot document repeatedly. Sweep: {unsharded,
// sharded}. Reported cache_hits stay 0 unsharded (the whole-tree Put is
// refused) and go positive sharded, with falling per-read wire bytes.
//
// Workload C (BoundaryShift): pure splitter comparison of the group
// boundary rule. Split, insert one product in the middle, re-split,
// count the shard ids the insertion dirtied (ids a delta against the
// old copy must ship). Sweep: document size × {greedy,
// content_defined}. Greedy dirties every downstream id (the avalanche);
// content-defined re-synchronizes within ~3 ids.
//
// Workload D (NotifyFanout): shard-level subscriptions. Eight partial
// holders each cache a disjoint 1/8 slice of a sharded document; each
// round mutates one product. Document-level subscriptions would notify
// all eight; shard-granular fan-out notifies only holders of the dirty
// shard (counters: notifies vs clean_skips per round).

#include "bench_common.h"

#include "replica/replica_manager.h"
#include "replica/transfer_cache.h"
#include "xml/sharding.h"
#include "xml/wire.h"

namespace axml {
namespace {

constexpr int kReaders = 2;
constexpr int kWriteRounds = 8;
constexpr uint64_t kMaxShardBytes = 4 * 1024;

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId origin;
  std::vector<PeerId> readers;
  Query q;
  uint64_t doc_bytes = 0;
};

Setup Build(int64_t n_products, bool sharded) {
  Setup s;
  s.sys = std::make_unique<AxmlSystem>(Topology(LinkParams{0.040, 2.0e6}));
  s.origin = s.sys->AddPeer("origin");
  for (int i = 0; i < kReaders; ++i) {
    s.readers.push_back(s.sys->AddPeer(StrCat("r", i)));
  }
  Rng rng(13);
  TreePtr t = bench::MakeCatalog(static_cast<size_t>(n_products),
                                 s.sys->peer(s.origin)->gen(), &rng,
                                 /*desc_bytes=*/64);
  s.doc_bytes = wire::EncodedTreeSize(*t);
  (void)s.sys->InstallDocument(s.origin, "d", t);
  if (sharded) {
    ShardingConfig cfg;
    cfg.max_shard_bytes = kMaxShardBytes;
    s.sys->replicas().set_sharding_config(cfg);
    s.sys->replicas().set_sharding_enabled(true);
  }
  s.q = Query::Parse(
            "for $p in input(0)/catalog/product "
            "where $p/price < 900 return <r>{ $p/name }</r>")
            .value();
  return s;
}

/// Same-size mutation of one product's description: the shard holding
/// it dirties, every other shard keeps its content-derived id.
void MutateOneProduct(AxmlSystem* sys, PeerId origin, Rng* rng) {
  Peer* host = sys->peer(origin);
  TreePtr next = host->GetDocument("d")->CloneSameIds();
  TreeNode* product =
      next->child(rng->Index(next->child_count())).get();
  for (const TreePtr& c : product->children()) {
    if (c->label_text() == "desc") {
      TreeNode* text = c->child(0).get();
      text->set_text(rng->Identifier(text->text().size()));
      break;
    }
  }
  host->PutDocument("d", next);
}

void RecordShardCounters(benchmark::State& state, AxmlSystem* sys) {
  const TransferCacheStats cs = sys->replicas().TotalStats();
  const ShardStats& sh = sys->replicas().shard_stats();
  state.counters["cache_hits"] = static_cast<double>(cs.hits);
  state.counters["shards_shipped"] = static_cast<double>(sh.shards_shipped);
  state.counters["shards_reused"] = static_cast<double>(sh.shards_reused);
  state.counters["shard_saved_KB"] =
      static_cast<double>(sh.shard_bytes_saved) / 1024.0;
  state.counters["partial_hits"] = static_cast<double>(sh.partial_hits);
}

// --- Workload A: write-path delta under eager refresh ---

void RunWriteDelta(benchmark::State& state, bool sharded) {
  Setup s = Build(state.range(0), sharded);
  s.sys->replicas().set_refresh_policy(RefreshPolicy::kEagerRefresh);
  EvalOptions opts;
  opts.use_replica_cache = true;
  Evaluator ev(s.sys.get(), opts);
  Rng mut_rng(99);

  for (auto _ : state) {
    s.sys->replicas().DropAllCopies();
    s.sys->replicas().ResetStats();

    auto read_all = [&] {
      size_t results = 0;
      for (PeerId r : s.readers) {
        auto out =
            ev.Eval(r, Expr::Apply(s.q, r, {Expr::Doc("d", s.origin)}));
        if (!out.ok()) {
          state.SkipWithError(out.status().ToString().c_str());
          return size_t{0};
        }
        results += out->results.size();
      }
      return results;
    };

    if (read_all() == 0) return;  // warm: every reader holds a copy
    // Measure only the write path: the wire bytes refresh moves per
    // mutation round. Reads afterward stay local under both variants —
    // the *cost of staying fresh* is what sharding changes.
    s.sys->network().mutable_stats()->Reset();
    const SimTime t0 = s.sys->loop().now();
    size_t results = 0;
    for (int round = 0; round < kWriteRounds; ++round) {
      MutateOneProduct(s.sys.get(), s.origin, &mut_rng);
      s.sys->RunToQuiescence();  // refresh shipments land
      results += read_all();
    }
    bench::RecordStandardCounters(state, s.sys.get(), t0, results);
    RecordShardCounters(state, s.sys.get());
    state.counters["refresh_KB_per_round"] =
        static_cast<double>(
            s.sys->replicas().subscription_stats().refresh_bytes) /
        1024.0 / kWriteRounds;
    state.counters["doc_KB"] = static_cast<double>(s.doc_bytes) / 1024.0;
  }
}

void BM_Sharding_WriteDelta_Unsharded(benchmark::State& state) {
  RunWriteDelta(state, /*sharded=*/false);
}

void BM_Sharding_WriteDelta_Sharded(benchmark::State& state) {
  RunWriteDelta(state, /*sharded=*/true);
}

// --- Workload B: budget smaller than the document ---

void RunTightBudget(benchmark::State& state, bool sharded) {
  Setup s = Build(state.range(0), sharded);
  // The cache can hold at most a quarter of the document.
  s.sys->replicas().set_default_byte_budget(s.doc_bytes / 4);
  EvalOptions opts;
  opts.use_replica_cache = true;
  Evaluator ev(s.sys.get(), opts);
  constexpr int kReads = 8;

  for (auto _ : state) {
    s.sys->replicas().DropAllCopies();
    s.sys->replicas().ResetStats();
    s.sys->network().mutable_stats()->Reset();
    const SimTime t0 = s.sys->loop().now();
    size_t results = 0;
    for (int i = 0; i < kReads; ++i) {
      for (PeerId r : s.readers) {
        auto out =
            ev.Eval(r, Expr::Apply(s.q, r, {Expr::Doc("d", s.origin)}));
        if (!out.ok()) {
          state.SkipWithError(out.status().ToString().c_str());
          return;
        }
        results += out->results.size();
      }
    }
    bench::RecordStandardCounters(state, s.sys.get(), t0, results);
    RecordShardCounters(state, s.sys.get());
    state.counters["doc_KB"] = static_cast<double>(s.doc_bytes) / 1024.0;
  }
}

void BM_Sharding_TightBudget_Unsharded(benchmark::State& state) {
  RunTightBudget(state, /*sharded=*/false);
}

void BM_Sharding_TightBudget_Sharded(benchmark::State& state) {
  RunTightBudget(state, /*sharded=*/true);
}

// --- Workload C: boundary rule vs dirtied shard ids ---

void RunBoundaryShift(benchmark::State& state, ShardBoundary boundary) {
  NodeIdGen gen;
  Rng rng(13);
  TreePtr doc = bench::MakeCatalog(static_cast<size_t>(state.range(0)),
                                   &gen, &rng, /*desc_bytes=*/64);
  ShardingConfig cfg;
  cfg.max_shard_bytes = kMaxShardBytes;
  cfg.boundary = boundary;
  TreePtr wedge = TreeNode::Element("product", &gen);
  wedge->AddChild(MakeTextElement("name", "wedge", &gen));
  wedge->AddChild(MakeTextElement("price", "1", &gen));
  wedge->AddChild(MakeTextElement("desc", rng.Identifier(64), &gen));
  TreePtr grown = doc->CloneSameIds();
  grown->InsertChild(grown->child_count() / 2, wedge);
  for (auto _ : state) {
    const ShardedDocument before = SplitDocument(*doc, cfg, &gen);
    const ShardedDocument after = SplitDocument(*grown, cfg, &gen);
    state.counters["shards"] = static_cast<double>(before.shards.size());
    state.counters["dirtied_ids"] =
        static_cast<double>(DirtiedShardIds(before, after).size());
  }
}

void BM_Sharding_BoundaryShift_Greedy(benchmark::State& state) {
  RunBoundaryShift(state, ShardBoundary::kGreedy);
}

void BM_Sharding_BoundaryShift_ContentDefined(benchmark::State& state) {
  RunBoundaryShift(state, ShardBoundary::kContentDefined);
}

// --- Workload D: shard-level subscription notify fan-out ---

void BM_Sharding_NotifyFanout(benchmark::State& state) {
  constexpr int kHolders = 8;
  auto sys =
      std::make_unique<AxmlSystem>(Topology(LinkParams{0.040, 2.0e6}));
  const PeerId origin = sys->AddPeer("origin");
  std::vector<PeerId> holders;
  for (int i = 0; i < kHolders; ++i) {
    holders.push_back(sys->AddPeer(StrCat("h", i)));
  }
  Rng rng(13);
  TreePtr t = bench::MakeCatalog(static_cast<size_t>(state.range(0)),
                                 sys->peer(origin)->gen(), &rng,
                                 /*desc_bytes=*/64);
  (void)sys->InstallDocument(origin, "d", t);
  // A finer cut than the transfer workloads: the fan-out story needs
  // clearly more shards than holders even at the smoke size.
  ShardingConfig cfg;
  cfg.max_shard_bytes = 512;
  cfg.min_shard_bytes = 128;
  sys->replicas().set_sharding_config(cfg);
  sys->replicas().set_sharding_enabled(true);

  // Each holder caches a disjoint slice of the shards (plus the
  // manifest), subscribing shard-granularly, as a budget-bound partial
  // replica would.
  const ShardedDocument* sd = sys->replicas().OriginShards(origin, "d");
  if (sd == nullptr || sd->shards.size() < kHolders) {
    state.SkipWithError("document did not shard into enough pieces");
    return;
  }
  const uint64_t version = sys->replicas().Version(origin, "d");
  const size_t per_holder = sd->shards.size() / kHolders;
  for (int h = 0; h < kHolders; ++h) {
    std::vector<DocumentShard> slice;
    const size_t from = h * per_holder;
    const size_t to =
        h + 1 == kHolders ? sd->shards.size() : from + per_holder;
    for (size_t i = from; i < to; ++i) {
      DocumentShard s;
      s.id = sd->shards[i].id;
      s.bytes = sd->shards[i].bytes;
      s.content = sd->shards[i].content->Clone(sys->peer(holders[h])->gen());
      slice.push_back(std::move(s));
    }
    if (!sys->replicas().InsertShardedCopy(
            holders[h], origin, "d",
            sd->manifest->Clone(sys->peer(holders[h])->gen()), slice,
            version)) {
      state.SkipWithError("partial seed refused");
      return;
    }
  }

  constexpr int kMutations = 16;
  Rng mut_rng(99);
  for (auto _ : state) {
    sys->replicas().ResetStats();
    sys->network().mutable_stats()->Reset();
    for (int round = 0; round < kMutations; ++round) {
      MutateOneProduct(sys.get(), origin, &mut_rng);
      sys->RunToQuiescence();
    }
    const SubscriptionStats& ss = sys->replicas().subscription_stats();
    state.counters["notifies_per_mut"] =
        static_cast<double>(ss.notifies) / kMutations;
    state.counters["clean_skips_per_mut"] =
        static_cast<double>(ss.clean_skips) / kMutations;
    state.counters["doc_level_fanout"] = kHolders;
    state.counters["notify_msgs"] =
        static_cast<double>(sys->network().stats().notify_messages());
  }
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t n : {64, 256, 1024, 4096}) {
    b->Args({n});
  }
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Sharding_WriteDelta_Unsharded)->Apply(Sweep);
BENCHMARK(BM_Sharding_WriteDelta_Sharded)->Apply(Sweep);
BENCHMARK(BM_Sharding_TightBudget_Unsharded)->Apply(Sweep);
BENCHMARK(BM_Sharding_TightBudget_Sharded)->Apply(Sweep);
BENCHMARK(BM_Sharding_BoundaryShift_Greedy)->Apply(Sweep);
BENCHMARK(BM_Sharding_BoundaryShift_ContentDefined)->Apply(Sweep);
BENCHMARK(BM_Sharding_NotifyFanout)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
