// Wire-format encode/decode throughput (docs/wire-format.md).
//
// Every priced transfer in the simulator now runs through
// wire::EncodeTree / wire::DecodeTree, so the codec's throughput bounds
// how large a simulated fleet the harness can drive per wall-clock
// second. This bench reports MB/s over a document-size sweep, plus the
// compression the interned-label + varint layout buys over the XML text
// the simulator used to price (`xml_ratio`).
//
// Timing histograms (WireStats.timing_enabled) are exercised here —
// simulations leave them off so deterministic twins stay byte-identical.

#include "bench_common.h"
#include "xml/wire.h"

namespace axml {
namespace {

struct Setup {
  TreePtr tree;
  std::string blob;
  uint64_t xml_bytes = 0;
};

Setup Build(int64_t n) {
  Setup s;
  static NodeIdGen gen;
  Rng rng(13);
  s.tree = bench::MakeCatalog(static_cast<size_t>(n), &gen, &rng,
                              /*desc_bytes=*/64);
  s.blob = wire::EncodeTree(*s.tree);
  s.xml_bytes = s.tree->SerializedSize();  // lint: allow-size-estimate
  return s;
}

void Report(benchmark::State& state, const Setup& s,
            const wire::WireStats& stats) {
  state.SetBytesProcessed(static_cast<int64_t>(s.blob.size()) *
                          state.iterations());
  state.counters["blob_KB"] = static_cast<double>(s.blob.size()) / 1024.0;
  state.counters["xml_ratio"] = static_cast<double>(s.xml_bytes) /
                                static_cast<double>(s.blob.size());
  state.counters["MB_per_s"] = benchmark::Counter(
      static_cast<double>(s.blob.size()) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
  if (stats.timing_enabled && stats.encode_ns.count() > 0) {
    state.counters["encode_p50_ns"] =
        static_cast<double>(stats.encode_ns.ApproxQuantile(0.5));
  }
  if (stats.timing_enabled && stats.decode_ns.count() > 0) {
    state.counters["decode_p50_ns"] =
        static_cast<double>(stats.decode_ns.ApproxQuantile(0.5));
  }
}

void BM_Wire_EncodeTree(benchmark::State& state) {
  Setup s = Build(state.range(0));
  wire::WireStats stats;
  stats.timing_enabled = true;
  for (auto _ : state) {
    std::string blob = wire::EncodeTree(*s.tree, &stats);
    benchmark::DoNotOptimize(blob);
  }
  Report(state, s, stats);
}

void BM_Wire_DecodeTree(benchmark::State& state) {
  Setup s = Build(state.range(0));
  wire::WireStats stats;
  stats.timing_enabled = true;
  NodeIdGen gen;
  for (auto _ : state) {
    Result<TreePtr> t = wire::DecodeTree(s.blob, &gen, &stats);
    AXML_CHECK(t.ok());
    benchmark::DoNotOptimize(t);
  }
  Report(state, s, stats);
}

void BM_Wire_RoundTrip(benchmark::State& state) {
  Setup s = Build(state.range(0));
  wire::WireStats stats;
  NodeIdGen gen;
  for (auto _ : state) {
    std::string blob = wire::EncodeTree(*s.tree, &stats);
    Result<TreePtr> t = wire::DecodeTree(blob, &gen, &stats);
    AXML_CHECK(t.ok());
    benchmark::DoNotOptimize(t);
  }
  Report(state, s, stats);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t n : {8, 64, 512, 4096}) {
    b->Args({n});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Wire_EncodeTree)->Apply(Sweep);
BENCHMARK(BM_Wire_DecodeTree)->Apply(Sweep);
BENCHMARK(BM_Wire_RoundTrip)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
