// EXP-7: pushing queries over service calls (rule (16)).
//
// Claim under test: for q over the result of a call to a *declarative*
// service s1@p1 (implemented by q1), "ship q and the service call
// parameters to p1, and ask it to evaluate q directly over
// q1(parList)" — so only q's (small) answers travel, not q1's (large)
// intermediate stream.
//
// Sweep: feed size N x outer-query bound θ (how much q shrinks the
// feed). Expected shape: the rewritten strategy's transfer volume
// tracks θ while the naive one stays flat at the full feed size.

#include "bench_common.h"

namespace axml {
namespace {

struct Setup {
  std::unique_ptr<AxmlSystem> sys;
  PeerId caller, provider;
  Query outer;
  ExprPtr param;
};

Setup Build(int64_t n, int64_t theta) {
  Setup s;
  s.sys = std::make_unique<AxmlSystem>(
      Topology(LinkParams{0.020, 1.0e6}));
  s.caller = s.sys->AddPeer("caller");
  s.provider = s.sys->AddPeer("provider");
  Rng rng(16);
  TreePtr cat = bench::MakeCatalog(static_cast<size_t>(n),
                                   s.sys->peer(s.provider)->gen(), &rng);
  (void)s.sys->InstallDocument(s.provider, "cat", cat);
  // q1: the service body unnests the full feed (large output).
  Query q1 = Query::Parse(
                 "for $p in doc(\"cat\")/catalog/product "
                 "for $k in input(0) where $p/price < $k/max return $p")
                 .value();
  (void)s.sys->InstallService(s.provider,
                              Service::Declarative("feed", q1));
  // q: the consumer keeps only a θ-slice.
  s.outer = Query::Parse(StrCat(
                "for $p in input(0) where $p/price < ", theta,
                " return <cheap>{ $p/name }</cheap>"))
                .value();
  TreePtr k = TreeNode::Element("k", s.sys->peer(s.caller)->gen());
  k->AddChild(
      MakeTextElement("max", "1000", s.sys->peer(s.caller)->gen()));
  s.param = Expr::Tree(k, s.caller);
  return s;
}

void BM_PushOverSc_Naive(benchmark::State& state) {
  Setup s = Build(state.range(0), state.range(1));
  // Definition (6): the full feed returns to the caller, q runs there.
  ExprPtr e = Expr::Apply(
      s.outer, s.caller,
      {Expr::Call(s.provider, "feed", {s.param})});
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.caller, e);
  }
}

void BM_PushOverSc_Rule16(benchmark::State& state) {
  Setup s = Build(state.range(0), state.range(1));
  // Rule (16): q composes with q1 at the provider.
  ExprPtr e = Expr::EvalAt(
      s.provider,
      Expr::Apply(s.outer, s.caller,
                  {Expr::Call(s.provider, "feed", {s.param})}));
  for (auto _ : state) {
    bench::EvalAndRecord(state, s.sys.get(), s.caller, e);
  }
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t n : {256, 1024}) {
    for (int64_t theta : {20, 100, 500}) {
      b->Args({n, theta});
    }
  }
  b->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_PushOverSc_Naive)->Apply(Sweep);
BENCHMARK(BM_PushOverSc_Rule16)->Apply(Sweep);

}  // namespace
}  // namespace axml

AXML_BENCH_MAIN();
