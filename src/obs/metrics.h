// Unified metrics registry: one namespace for every counter the paper's
// claims are about.
//
// The paper's results are quantitative — wire bytes saved, notifications
// avoided, cache hits gained — but the codebase grew one ad-hoc stat
// struct per subsystem (NetStats, SubscriptionStats, TransferCacheStats,
// ShardStats, PlacementStats, evaluator counters), each with its own
// accessors and reset discipline, and nothing that can say "give me
// every number this system knows, right now" in a machine-readable
// form. This registry is that layer:
//
//  - values carry hierarchical slash-separated names
//    ("peer/3/replica/cache/hit_bytes", "net/notify_bytes");
//  - the existing stat structs are *retrofitted*, not replaced: each
//    keeps its typed fields and accessors and registers an export
//    callback that reads those very fields at snapshot time, so the
//    registry and the legacy accessors cannot drift (a test pins this);
//  - Snapshot() captures everything at one instant; DiffSince() turns
//    two snapshots into a per-interval delta — the shape every bench
//    and soak-test quiescence check wants;
//  - ToJson() dumps a snapshot as a flat JSON object, the data source
//    for the bench_*.json perf-trajectory files (bench_common.h) and
//    AxmlSystem::DumpMetrics().
//
// The registry is affine to its System's sequence, enforced by an
// embedded SequenceChecker (docs/architecture.md has the contract);
// export callbacks run synchronously inside Snapshot() on that same
// sequence.

#ifndef AXML_OBS_METRICS_H_
#define AXML_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/sequence_checker.h"
#include "common/thread_annotations.h"

namespace axml {

/// Log2-bucketed histogram for size/latency-like quantities. Bucket 0
/// holds exact zeros; bucket i (i >= 1) holds values in
/// [2^(i-1), 2^i). Cheap enough to sit on a hot path: Add is a
/// count-leading-zeros plus two increments.
class Histogram {
 public:
  /// Bucket 0 + one bucket per bit of uint64_t.
  static constexpr size_t kBucketCount = 65;

  void Add(uint64_t value) {
    ++counts_[BucketIndex(value)];
    ++count_;
    sum_ += value;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t bucket(size_t i) const { return counts_[i]; }

  /// Largest bucket lower bound <= the p-quantile sample (0 <= p <= 1);
  /// 0 on an empty histogram. A log-bucket approximation, good to 2x.
  uint64_t ApproxQuantile(double p) const;

  void Reset() { *this = Histogram(); }

  /// 0 -> 0; otherwise 1 + floor(log2(value)).
  static size_t BucketIndex(uint64_t value);
  /// Smallest value landing in bucket `i` (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(size_t i);

 private:
  uint64_t counts_[kBucketCount] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

/// Collects (name, value) pairs during one Snapshot(). Export callbacks
/// write through this; the prefix (the source's registered mount point)
/// is prepended to every name.
class MetricSink {
 public:
  MetricSink(std::string prefix, std::map<std::string, uint64_t>* out);

  /// Emits one value at `<prefix>/<name>`. Re-emitting a name within
  /// one snapshot accumulates (per-peer sources sum into totals).
  void Value(const std::string& name, uint64_t v);

  /// Flattens `h` under `<prefix>/<name>`: .../count, .../sum and one
  /// .../ge_<lower bound> entry per non-empty bucket.
  void Histo(const std::string& name, const Histogram& h);

  /// A sink writing into the same snapshot at `<prefix>/<sub>` — how a
  /// composite source (the ReplicaManager) mounts its sub-structs'
  /// ExportMetrics at their own places in the namespace.
  MetricSink Scoped(const std::string& sub) const;

 private:
  std::string prefix_;
  std::map<std::string, uint64_t>* out_;
};

/// Everything the registry knew at one instant. Flat, sorted by name.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> values;

  /// Value of `name`, or `fallback` when absent.
  uint64_t ValueOr(const std::string& name, uint64_t fallback = 0) const;

  /// Per-name difference against an older snapshot (names absent there
  /// count as 0). Names whose value did not move are kept — a diff has
  /// the same keys as the newer snapshot.
  MetricsSnapshot DiffSince(const MetricsSnapshot& older) const;

  /// Flat JSON object, keys sorted: {"net/total_bytes": 123, ...}.
  std::string ToJson() const;
};

/// The per-System metric namespace. Two kinds of values coexist:
///  - *owned counters*: uint64 cells the registry allocates
///    (FindOrCreateCounter) for call sites with no legacy struct;
///  - *sources*: export callbacks mounted at a prefix, reading the
///    retrofitted stat structs at snapshot time.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  using ExportFn = std::function<void(MetricSink&)>;
  using SourceId = uint64_t;

  /// Mounts an export callback at `prefix` ("" mounts at the root).
  /// The returned id survives until UnregisterSource.
  SourceId RegisterSource(std::string prefix, ExportFn fn);
  /// Removes a source; unknown ids are ignored (idempotent teardown).
  void UnregisterSource(SourceId id);

  /// The owned counter cell named `name` (created zeroed on first use).
  /// The pointer stays valid for the registry's lifetime.
  uint64_t* FindOrCreateCounter(const std::string& name);

  /// Captures owned counters and every source's exports.
  MetricsSnapshot Snapshot() const;

  size_t source_count() const {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return sources_.size();
  }

 private:
  struct Source {
    SourceId id;
    std::string prefix;
    ExportFn fn;
  };
  SequenceChecker sequence_checker_;
  std::vector<Source> sources_
      AXML_GUARDED_BY_CONTEXT(sequence_checker_);
  SourceId next_source_id_
      AXML_GUARDED_BY_CONTEXT(sequence_checker_) = 1;
  /// deque: FindOrCreateCounter hands out stable pointers.
  std::deque<uint64_t> counter_cells_
      AXML_GUARDED_BY_CONTEXT(sequence_checker_);
  std::map<std::string, uint64_t*> counters_
      AXML_GUARDED_BY_CONTEXT(sequence_checker_);
};

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// shared by the snapshot dump, the Chrome-trace export and the bench
/// JSON writer.
std::string JsonEscape(std::string_view s);

}  // namespace axml

#endif  // AXML_OBS_METRICS_H_
