#include "obs/metrics.h"

#include <bit>
#include <cstdio>

#include "common/str_util.h"

namespace axml {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  return static_cast<size_t>(64 - std::countl_zero(value));
}

uint64_t Histogram::BucketLowerBound(size_t i) {
  if (i == 0) return 0;
  return uint64_t{1} << (i - 1);
}

uint64_t Histogram::ApproxQuantile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the requested sample, 1-based; walk buckets until the
  // cumulative count reaches it.
  const uint64_t rank =
      static_cast<uint64_t>(p * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += counts_[i];
    if (seen >= rank) return BucketLowerBound(i);
  }
  return BucketLowerBound(kBucketCount - 1);
}

MetricSink::MetricSink(std::string prefix,
                       std::map<std::string, uint64_t>* out)
    : prefix_(std::move(prefix)), out_(out) {
  if (!prefix_.empty() && prefix_.back() != '/') prefix_ += '/';
}

void MetricSink::Value(const std::string& name, uint64_t v) {
  (*out_)[prefix_ + name] += v;
}

MetricSink MetricSink::Scoped(const std::string& sub) const {
  // prefix_ already carries its trailing '/' (or is empty); the ctor
  // normalizes the combined prefix again.
  return MetricSink(prefix_ + sub, out_);
}

void MetricSink::Histo(const std::string& name, const Histogram& h) {
  Value(name + "/count", h.count());
  Value(name + "/sum", h.sum());
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    if (h.bucket(i) == 0) continue;  // sparse: zero buckets stay silent
    Value(StrCat(name, "/ge_", Histogram::BucketLowerBound(i)),
          h.bucket(i));
  }
}

uint64_t MetricsSnapshot::ValueOr(const std::string& name,
                                  uint64_t fallback) const {
  auto it = values.find(name);
  return it == values.end() ? fallback : it->second;
}

MetricsSnapshot MetricsSnapshot::DiffSince(
    const MetricsSnapshot& older) const {
  MetricsSnapshot diff;
  for (const auto& [name, v] : values) {
    diff.values[name] = v - older.ValueOr(name);
  }
  return diff;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : values) {
    if (!first) out += ", ";
    first = false;
    out += StrCat("\"", JsonEscape(name), "\": ", v);
  }
  out += "}";
  return out;
}

MetricRegistry::SourceId MetricRegistry::RegisterSource(std::string prefix,
                                                        ExportFn fn) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  const SourceId id = next_source_id_++;
  sources_.push_back(Source{id, std::move(prefix), std::move(fn)});
  return id;
}

void MetricRegistry::UnregisterSource(SourceId id) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  for (auto it = sources_.begin(); it != sources_.end(); ++it) {
    if (it->id == id) {
      sources_.erase(it);
      return;
    }
  }
}

uint64_t* MetricRegistry::FindOrCreateCounter(const std::string& name) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  counter_cells_.push_back(0);
  return counters_.emplace(name, &counter_cells_.back()).first->second;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  MetricsSnapshot snap;
  for (const auto& [name, cell] : counters_) {
    snap.values[name] += *cell;
  }
  for (const Source& source : sources_) {
    MetricSink sink(source.prefix, &snap.values);
    source.fn(sink);
  }
  return snap;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace axml
