// Causal trace layer: follow one mutation's invalidation cascade
// end-to-end through the replica/network stack.
//
// The simulator's interesting behavior is a *chain*: a mutation at an
// origin fans out notifications, each dirty holder drops its copy, an
// eager-refresh shipment crosses the wire, and the copy re-installs at
// the holder — four subsystems, three network hops, one cause. Per-
// subsystem counters cannot show that chain; this tracer can:
//
//  - every span event carries a TraceId (the causal id). A root cause
//    (a mutation, a top-level replica read) mints a fresh id; everything
//    it triggers inherits it;
//  - propagation is *scoped*, not plumbed: the tracer keeps a "current"
//    id on the (single) simulation thread, Tracer::Scope sets/restores
//    it RAII-style, and the Network captures the current id at Send time
//    and re-establishes it around the delivery callback — so the id
//    crosses simulated network hops without touching any message struct;
//  - events live in a bounded ring buffer (oldest dropped first), each
//    stamped with the *simulated* clock, a peer, a category/name pair
//    and a byte count;
//  - ToChromeJson() exports the buffer in Chrome trace-event format
//    (load at ui.perfetto.dev or chrome://tracing): peers render as
//    processes, causal chains as threads (tid == TraceId), sim-time as
//    the microsecond clock.
//
// Disabled by default: Record() is a single branch when off. When the
// log level is kDebug, every recorded event is mirrored to the log —
// the interactive twin of the exported file.
//
// Affine to its System's sequence, enforced by an embedded
// SequenceChecker: the scoped current-id trick *relies* on the event
// loop running callbacks one at a time, so a second thread touching the
// tracer would corrupt causal attribution silently — the checker makes
// it abort loudly instead (docs/architecture.md has the contract).

#ifndef AXML_OBS_TRACE_H_
#define AXML_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sequence_checker.h"
#include "common/thread_annotations.h"
#include "net/sim_time.h"

namespace axml {

/// Causal chain identifier. 0 = no chain (events recorded outside any
/// scope still land in the buffer, as orphans).
using TraceId = uint64_t;

/// One recorded event.
struct TraceSpan {
  uint64_t seq = 0;   ///< monotone across the tracer's lifetime
  TraceId trace = 0;  ///< causal chain, 0 for orphans
  PeerId peer;        ///< where it happened
  SimTime time = 0;   ///< simulated start time, seconds
  SimTime duration = 0;  ///< 0 for instant events
  std::string category;  ///< subsystem: "replica", "net", "eval", ...
  std::string name;      ///< event: "mutation", "notify", "shipment", ...
  uint64_t bytes = 0;    ///< payload size where meaningful
  std::string detail;    ///< free-form (doc key, policy, ...)

  /// "[  1.250s] #42 replica/notify @p3 48B (d@p0)" — the kDebug mirror
  /// and test-failure format.
  std::string ToString() const;
};

/// Per-System ring buffer of causally-linked span events.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  /// `clock` supplies the simulated time events are stamped with
  /// (AxmlSystem wires the event loop's now()); a null clock stamps 0.
  explicit Tracer(std::function<SimTime()> clock = nullptr,
                  size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Recording gate. Off by default; Record() is a no-op while off
  /// (current-id scoping still works, so enabling mid-run is safe).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Resizes the ring buffer; existing events are dropped.
  void set_capacity(size_t capacity);
  size_t capacity() const {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return capacity_;
  }

  // --- Causal ids ---

  /// Mints a fresh causal id (never 0; monotone, so deterministic runs
  /// assign deterministic ids). Does not change the current id — pair
  /// with a Scope.
  TraceId NewTrace() {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return ++last_trace_id_;
  }

  /// The causal id of whatever is executing right now (0 = none).
  TraceId current() const {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return current_;
  }

  /// The current id, or a fresh one when none is active: root spans
  /// (mutation, top-level read) open a chain only if they are not
  /// already part of one.
  TraceId CurrentOrNew() {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return current_ != 0 ? current_ : NewTrace();
  }

  /// RAII current-id window. Everything recorded (on this thread)
  /// while the scope lives — including synchronous fan-out several
  /// calls deep — carries `id`.
  class Scope {
   public:
    Scope(Tracer* tracer, TraceId id) : tracer_(tracer) {
      if (tracer_ != nullptr) {
        AXML_DCHECK_CALLED_ON_SEQUENCE(tracer_->sequence_checker_);
        previous_ = tracer_->current_;
        tracer_->current_ = id;
      }
    }
    ~Scope() {
      if (tracer_ != nullptr) {
        AXML_DCHECK_CALLED_ON_SEQUENCE(tracer_->sequence_checker_);
        tracer_->current_ = previous_;
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* tracer_;
    TraceId previous_ = 0;
  };

  /// Wraps `fn` so that, when invoked later (e.g. as an event-loop
  /// callback), it runs under the causal id current *now* — the hop
  /// that carries an id across a scheduled delivery.
  std::function<void()> Bind(std::function<void()> fn);

  // --- Recording ---

  /// Appends an event under the current causal id, stamped with the
  /// simulated clock. No-op while disabled. When the log level is
  /// kDebug, the event is mirrored to the log.
  void Record(std::string category, std::string name, PeerId peer,
              uint64_t bytes = 0, SimTime duration = 0,
              std::string detail = {});

  /// Events currently resident, oldest first (wraparound drops from the
  /// front; `seq` exposes the gaps).
  std::vector<TraceSpan> Events() const;

  /// Total events ever recorded / dropped by wraparound.
  uint64_t recorded() const {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return recorded_;
  }
  uint64_t dropped() const {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return recorded_ - size_;
  }
  size_t size() const {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return size_;
  }

  void Clear();

  /// Chrome trace-event JSON (the "traceEvents" array form): one "X"
  /// complete event per span, ts/dur in simulated microseconds,
  /// pid = peer index, tid = causal id, args = {bytes, seq, detail}.
  std::string ToChromeJson() const;

 private:
  SequenceChecker sequence_checker_;
  std::function<SimTime()> clock_;
  bool enabled_ = false;
  size_t capacity_ AXML_GUARDED_BY_CONTEXT(sequence_checker_);
  /// Ring: ring_[(start_ + i) % capacity_] for i < size_.
  std::vector<TraceSpan> ring_ AXML_GUARDED_BY_CONTEXT(sequence_checker_);
  size_t start_ AXML_GUARDED_BY_CONTEXT(sequence_checker_) = 0;
  size_t size_ AXML_GUARDED_BY_CONTEXT(sequence_checker_) = 0;
  uint64_t recorded_ AXML_GUARDED_BY_CONTEXT(sequence_checker_) = 0;
  uint64_t next_seq_ AXML_GUARDED_BY_CONTEXT(sequence_checker_) = 0;
  TraceId last_trace_id_
      AXML_GUARDED_BY_CONTEXT(sequence_checker_) = 0;
  TraceId current_ AXML_GUARDED_BY_CONTEXT(sequence_checker_) = 0;
};

}  // namespace axml

#endif  // AXML_OBS_TRACE_H_
