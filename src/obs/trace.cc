#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "common/logging.h"
#include "common/str_util.h"
#include "obs/metrics.h"

namespace axml {

std::string TraceSpan::ToString() const {
  char head[64];
  std::snprintf(head, sizeof(head), "[%8.3fs] #%" PRIu64 " ", time, trace);
  std::string out = StrCat(head, category, "/", name, " @",
                           peer.ToString());
  if (bytes > 0) out += StrCat(" ", bytes, "B");
  if (duration > 0) {
    char dur[32];
    std::snprintf(dur, sizeof(dur), " %.3fs", duration);
    out += dur;
  }
  if (!detail.empty()) out += StrCat(" (", detail, ")");
  return out;
}

Tracer::Tracer(std::function<SimTime()> clock, size_t capacity)
    : clock_(std::move(clock)), capacity_(capacity == 0 ? 1 : capacity) {}

void Tracer::set_capacity(size_t capacity) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  start_ = 0;
  size_ = 0;
}

std::function<void()> Tracer::Bind(std::function<void()> fn) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  const TraceId id = current_;
  if (id == 0) return fn;  // nothing to carry
  return [this, id, fn = std::move(fn)] {
    Scope scope(this, id);
    fn();
  };
}

void Tracer::Record(std::string category, std::string name, PeerId peer,
                    uint64_t bytes, SimTime duration, std::string detail) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  if (!enabled_) return;
  TraceSpan span;
  span.seq = next_seq_++;
  span.trace = current_;
  span.peer = peer;
  span.time = clock_ ? clock_() : 0;
  span.duration = duration;
  span.category = std::move(category);
  span.name = std::move(name);
  span.bytes = bytes;
  span.detail = std::move(detail);
  if (GetLogLevel() <= LogLevel::kDebug) {
    AXML_LOG(Debug) << "trace " << span.ToString();
  }
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    ++size_;
    return;
  }
  // Full: overwrite the oldest slot.
  ring_[start_] = std::move(span);
  start_ = (start_ + 1) % capacity_;
}

std::vector<TraceSpan> Tracer::Events() const {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  std::vector<TraceSpan> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start_ + i) % capacity_]);
  }
  return out;
}

void Tracer::Clear() {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  ring_.clear();
  start_ = 0;
  size_ = 0;
}

std::string Tracer::ToChromeJson() const {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  // Chrome trace-event format, JSON-object flavor. Sim-time maps to the
  // trace clock at 1 s == 1e6 "microseconds"; peers render as processes
  // and causal chains as threads, so one mutation's cascade reads as a
  // single timeline row per peer it touched.
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (size_t i = 0; i < size_; ++i) {
    const TraceSpan& s = ring_[(start_ + i) % capacity_];
    if (!first) out += ",\n";
    first = false;
    // Fixed-point microseconds: default ostream precision would
    // collapse distinct timestamps into one rounded value.
    char ts[40], dur[40];
    std::snprintf(ts, sizeof(ts), "%.3f", s.time * 1e6);
    std::snprintf(dur, sizeof(dur), "%.3f", s.duration * 1e6);
    out += StrCat("{\"name\": \"", JsonEscape(StrCat(s.category, "/",
                                                     s.name)),
                  "\", \"cat\": \"", JsonEscape(s.category),
                  "\", \"ph\": \"X\", \"ts\": ", ts, ", \"dur\": ", dur,
                  ", \"pid\": ", s.peer.valid() ? s.peer.index() : 0,
                  ", \"tid\": ", s.trace, ", \"args\": {\"bytes\": ",
                  s.bytes, ", \"seq\": ", s.seq, ", \"trace_id\": ",
                  s.trace, ", \"detail\": \"", JsonEscape(s.detail),
                  "\"}}");
  }
  out += "]}";
  return out;
}

}  // namespace axml
