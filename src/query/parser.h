// Recursive-descent parser for AQL (grammar in ast.h).

#ifndef AXML_QUERY_PARSER_H_
#define AXML_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/ast.h"

namespace axml {
namespace aql {

/// Parses AQL text into an AST. A bare path expression `input(0)//a/b`
/// or `doc("d")//a` is sugar for `for $x in <that path> return $x`.
Result<QueryAst> ParseQuery(std::string_view text);

}  // namespace aql
}  // namespace axml

#endif  // AXML_QUERY_PARSER_H_
