#include "query/executor.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/str_util.h"

namespace axml {

using aql::Cond;
using aql::Cons;
using aql::ForClause;
using aql::Operand;
using aql::Path;
using aql::QueryAst;
using aql::Source;
using aql::Step;

namespace {

void NavigateStep(const TreePtr& node, const Step& step,
                  std::vector<TreePtr>* out) {
  auto matches = [&step](const TreePtr& n) {
    switch (step.test) {
      case Step::Test::kLabel:
        return n->is_element() && n->label() == step.label;
      case Step::Test::kWildcard:
        return n->is_element();
      case Step::Test::kText:
        return n->is_text();
    }
    return false;
  };
  if (step.axis == Step::Axis::kChild) {
    for (const auto& c : node->children()) {
      if (matches(c)) out->push_back(c);
    }
  } else {
    // Descendant-or-self on children: all strict descendants.
    std::vector<TreePtr> stack(node->children().begin(),
                               node->children().end());
    // Depth-first, preserving document order reasonably.
    std::vector<TreePtr> ordered;
    while (!stack.empty()) {
      TreePtr cur = stack.front();
      stack.erase(stack.begin());
      if (matches(cur)) out->push_back(cur);
      stack.insert(stack.begin(), cur->children().begin(),
                   cur->children().end());
    }
  }
}

}  // namespace

void NavigatePath(const TreePtr& root, const Path& path,
                  std::vector<TreePtr>* out) {
  std::vector<TreePtr> ctx{root};
  for (const Step& step : path) {
    std::vector<TreePtr> next;
    for (const auto& n : ctx) NavigateStep(n, step, &next);
    ctx = std::move(next);
    if (ctx.empty()) break;
  }
  out->insert(out->end(), ctx.begin(), ctx.end());
}

void NavigateAsDocument(const TreePtr& root, const Path& path,
                        std::vector<TreePtr>* out) {
  if (path.empty()) {
    out->push_back(root);
    return;
  }
  // The first step applies from the implicit document node above the
  // tree: a child step tests the root element itself, a descendant step
  // tests the root and everything below it (XPath doc-node semantics,
  // so `input(0)/catalog/product` works on a <catalog> stream).
  auto matches = [](const TreePtr& n, const Step& step) {
    switch (step.test) {
      case Step::Test::kLabel:
        return n->is_element() && n->label() == step.label;
      case Step::Test::kWildcard:
        return n->is_element();
      case Step::Test::kText:
        return n->is_text();
    }
    return false;
  };
  std::vector<TreePtr> ctx;
  const Step& first = path[0];
  if (matches(root, first)) ctx.push_back(root);
  if (first.axis == Step::Axis::kDescendant) {
    NavigateStep(root, first, &ctx);
  }
  Path rest(path.begin() + 1, path.end());
  for (const auto& n : ctx) {
    NavigatePath(n, rest, out);
  }
}

namespace {

/// A partial binding: one tree per already-bound clause.
using Row = std::vector<TreePtr>;

/// Values an operand takes for a given row (existential semantics).
void OperandValues(const Operand& o,
                   const std::unordered_map<std::string, int>& var_index,
                   const Row& row, std::vector<std::string>* out) {
  switch (o.kind) {
    case Operand::Kind::kLiteral:
      out->push_back(o.literal);
      return;
    case Operand::Kind::kDotPath:
    case Operand::Kind::kVarPath: {
      TreePtr base;
      if (o.kind == Operand::Kind::kDotPath) {
        base = row.empty() ? nullptr : row[0];
      } else {
        auto it = var_index.find(o.var);
        if (it == var_index.end() ||
            static_cast<size_t>(it->second) >= row.size()) {
          return;
        }
        base = row[static_cast<size_t>(it->second)];
      }
      if (base == nullptr) return;
      std::vector<TreePtr> nodes;
      NavigatePath(base, o.path, &nodes);
      for (const auto& n : nodes) out->push_back(n->StringValue());
      return;
    }
  }
}

/// Nodes an operand denotes (for constructors copying subtrees).
void OperandNodes(const Operand& o,
                  const std::unordered_map<std::string, int>& var_index,
                  const Row& row, std::vector<TreePtr>* out) {
  if (o.kind == Operand::Kind::kLiteral) return;
  TreePtr base;
  if (o.kind == Operand::Kind::kDotPath) {
    base = row.empty() ? nullptr : row[0];
  } else {
    auto it = var_index.find(o.var);
    if (it == var_index.end() ||
        static_cast<size_t>(it->second) >= row.size()) {
      return;
    }
    base = row[static_cast<size_t>(it->second)];
  }
  if (base == nullptr) return;
  NavigatePath(base, o.path, out);
}

bool EvalCond(const Cond& cond,
              const std::unordered_map<std::string, int>& var_index,
              const Row& row) {
  switch (cond.kind) {
    case Cond::Kind::kAnd:
      for (const auto& c : cond.children) {
        if (!EvalCond(*c, var_index, row)) return false;
      }
      return true;
    case Cond::Kind::kOr:
      for (const auto& c : cond.children) {
        if (EvalCond(*c, var_index, row)) return true;
      }
      return false;
    case Cond::Kind::kNot:
      return !EvalCond(*cond.children[0], var_index, row);
    case Cond::Kind::kCompare: {
      std::vector<std::string> lhs, rhs;
      OperandValues(cond.lhs, var_index, row, &lhs);
      OperandValues(cond.rhs, var_index, row, &rhs);
      for (const auto& l : lhs) {
        for (const auto& r : rhs) {
          if (CompareValues(l, cond.op, r)) return true;
        }
      }
      return false;
    }
    case Cond::Kind::kExists: {
      if (cond.lhs.kind == Operand::Kind::kLiteral) return true;
      std::vector<TreePtr> nodes;
      OperandNodes(cond.lhs, var_index, row, &nodes);
      return !nodes.empty();
    }
    case Cond::Kind::kContains: {
      std::vector<std::string> lhs;
      OperandValues(cond.lhs, var_index, row, &lhs);
      for (const auto& l : lhs) {
        if (l.find(cond.rhs.literal) != std::string::npos) return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace

struct QueryInstance::Impl {
  QueryAst ast;
  DocResolver docs;
  EmitFn emit;
  NodeIdGen* gen;
  bool started = false;
  uint64_t emitted = 0;
  uint64_t rows_seen = 0;  ///< rows that reached the return stage

  /// var name -> clause index.
  std::unordered_map<std::string, int> var_index;
  /// For each clause with an independent source: trees seen so far.
  std::vector<std::vector<TreePtr>> clause_trees;
  /// For each clause: rows (of length == clause index) waiting for trees.
  /// rows_store[k] holds rows that completed clauses [0,k).
  std::vector<std::vector<Row>> rows_store;
  /// input index -> list of clause positions fed by it.
  std::unordered_map<int, std::vector<int>> input_clauses;

  explicit Impl(const QueryAst& q) : ast(q.Clone()) {}

  /// Feeds `row` (bindings for clauses [0,k)) into clause k.
  void RowIntoClause(size_t k, const Row& row) {
    if (k == ast.clauses.size()) {
      Finish(row);
      return;
    }
    const ForClause& fc = ast.clauses[k];
    if (fc.source.kind == Source::Kind::kVar) {
      // Stateless: extend by navigation from the bound tree.
      auto it = var_index.find(fc.source.var_name);
      AXML_CHECK(it != var_index.end());
      const TreePtr& base = row[static_cast<size_t>(it->second)];
      std::vector<TreePtr> matches;
      NavigatePath(base, fc.path, &matches);
      for (const auto& m : matches) {
        Row extended = row;
        extended.push_back(m);
        RowIntoClause(k + 1, extended);
      }
      return;
    }
    // Independent source: remember the row, join with trees seen so far.
    rows_store[k].push_back(row);
    for (const auto& t : clause_trees[k]) {
      Row extended = row;
      extended.push_back(t);
      RowIntoClause(k + 1, extended);
    }
  }

  /// Delivers one source tree to clause k; `navigate` applies the
  /// clause's path first.
  void TreeIntoClause(size_t k, const TreePtr& tree) {
    std::vector<TreePtr> matches;
    NavigateAsDocument(tree, ast.clauses[k].path, &matches);
    for (const auto& m : matches) {
      clause_trees[k].push_back(m);
      for (const auto& row : rows_store[k]) {
        Row extended = row;
        extended.push_back(m);
        RowIntoClause(k + 1, extended);
      }
    }
  }

  void Finish(const Row& row) {
    if (ast.where != nullptr && !EvalCond(*ast.where, var_index, row)) {
      return;
    }
    ++rows_seen;
    TreePtr result = Construct(*ast.ret, row);
    if (result != nullptr) {
      ++emitted;
      emit(result);
    }
  }

  TreePtr Construct(const Cons& cons, const Row& row) {
    switch (cons.kind) {
      case Cons::Kind::kElement: {
        TreePtr e = TreeNode::Element(cons.elem_label, gen->Next());
        for (const auto& c : cons.children) {
          AppendConstructed(*c, row, e);
        }
        return e;
      }
      case Cons::Kind::kOperand: {
        if (cons.operand.kind == Operand::Kind::kLiteral) {
          return TreeNode::Text(cons.operand.literal);
        }
        std::vector<TreePtr> nodes;
        OperandNodes(cons.operand, var_index, row, &nodes);
        if (nodes.empty()) return nullptr;
        if (nodes.size() == 1) return nodes[0]->Clone(gen);
        // Multiple matches at top level: wrap them to keep one tree per
        // row (the AXML stream model is a flow of trees).
        TreePtr wrap = TreeNode::Element(InternLabel("result"), gen->Next());
        for (const auto& n : nodes) wrap->AddChild(n->Clone(gen));
        return wrap;
      }
      case Cons::Kind::kCount:
        return TreeNode::Text(std::to_string(rows_seen));
    }
    return nullptr;
  }

  void AppendConstructed(const Cons& cons, const Row& row,
                         const TreePtr& parent) {
    switch (cons.kind) {
      case Cons::Kind::kElement:
        parent->AddChild(Construct(cons, row));
        return;
      case Cons::Kind::kOperand: {
        if (cons.operand.kind == Operand::Kind::kLiteral) {
          parent->AddChild(TreeNode::Text(cons.operand.literal));
          return;
        }
        std::vector<TreePtr> nodes;
        OperandNodes(cons.operand, var_index, row, &nodes);
        for (const auto& n : nodes) parent->AddChild(n->Clone(gen));
        return;
      }
      case Cons::Kind::kCount:
        parent->AddChild(TreeNode::Text(std::to_string(rows_seen)));
        return;
    }
  }
};

QueryInstance::QueryInstance(const QueryAst& ast, DocResolver docs,
                             EmitFn emit, NodeIdGen* gen)
    : impl_(std::make_unique<Impl>(ast)) {
  impl_->docs = std::move(docs);
  impl_->emit = std::move(emit);
  impl_->gen = gen;
  const size_t n = impl_->ast.clauses.size();
  impl_->clause_trees.resize(n);
  impl_->rows_store.resize(n);
  for (size_t k = 0; k < n; ++k) {
    const ForClause& fc = impl_->ast.clauses[k];
    impl_->var_index[fc.var] = static_cast<int>(k);
    if (fc.source.kind == Source::Kind::kInput) {
      impl_->input_clauses[fc.source.input_index].push_back(
          static_cast<int>(k));
    }
  }
}

QueryInstance::~QueryInstance() = default;

Status QueryInstance::Start() {
  if (impl_->started) {
    return Status::Internal("QueryInstance started twice");
  }
  impl_->started = true;
  // Seed the pipeline with the empty row, then deliver doc() sources.
  impl_->RowIntoClause(0, Row{});
  for (size_t k = 0; k < impl_->ast.clauses.size(); ++k) {
    const ForClause& fc = impl_->ast.clauses[k];
    if (fc.source.kind == Source::Kind::kDoc) {
      if (impl_->docs == nullptr) {
        return Status::NotFound(
            StrCat("no document resolver for doc(\"", fc.source.doc_name,
                   "\")"));
      }
      TreePtr doc = impl_->docs(fc.source.doc_name);
      if (doc == nullptr) {
        return Status::NotFound(
            StrCat("document \"", fc.source.doc_name, "\" not found"));
      }
      impl_->TreeIntoClause(k, doc);
    }
  }
  return Status::OK();
}

Status QueryInstance::PushInput(int index, TreePtr tree) {
  if (!impl_->started) {
    return Status::Internal("PushInput before Start");
  }
  if (index < 0 || index >= arity()) {
    return Status::InvalidArgument(
        StrCat("input index ", index, " out of range (arity ", arity(),
               ")"));
  }
  auto it = impl_->input_clauses.find(index);
  if (it != impl_->input_clauses.end()) {
    for (int k : it->second) {
      impl_->TreeIntoClause(static_cast<size_t>(k), tree);
    }
  }
  return Status::OK();
}

int QueryInstance::arity() const { return impl_->ast.Arity(); }

uint64_t QueryInstance::results_emitted() const { return impl_->emitted; }

Result<std::vector<TreePtr>> EvalQuery(
    const QueryAst& ast, const std::vector<std::vector<TreePtr>>& inputs,
    DocResolver docs, NodeIdGen* gen) {
  std::vector<TreePtr> results;
  QueryInstance qi(
      ast, std::move(docs),
      [&results](TreePtr t) { results.push_back(std::move(t)); }, gen);
  AXML_RETURN_NOT_OK(qi.Start());
  if (static_cast<int>(inputs.size()) < qi.arity()) {
    return Status::InvalidArgument(
        StrCat("query arity ", qi.arity(), " but only ", inputs.size(),
               " inputs supplied"));
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (const auto& t : inputs[i]) {
      AXML_RETURN_NOT_OK(qi.PushInput(static_cast<int>(i), t));
    }
  }
  return results;
}

}  // namespace axml
