// Query decomposition (§3.3 rule (11) and Example 1).
//
// Rule (11) needs q ≡ q1(q2, ..., qn); Example 1 instantiates it with
// q ≡ q1(σ(q2)) where σ "has been pushed down as far as possible". This
// module produces such decompositions syntactically:
//
//   SplitSelection(q, k) rewrites
//     for ... for $v_k in input(i) P_k ... where C ∧ C_k return R
//   into the *filter*      q3 = for $x in input(0) P_k where C_k[$v_k→$x]
//                               return $x
//   and the *remainder*    q1 = for ... for $v_k in input(i) ... where C
//                               return R
//   where C_k collects the conjuncts mentioning only $v_k with a literal
//   or dot-free comparison side. By construction q(t) ≡ q1(q3(t)): the
//   filter is applied to the k-th input upstream.
//
// Composition itself (building q1(q3(t))) happens in the algebra as
// nested query-application expressions; see algebra/expr.h.

#ifndef AXML_QUERY_DECOMPOSE_H_
#define AXML_QUERY_DECOMPOSE_H_

#include <optional>

#include "query/query.h"

namespace axml {

/// Result of a successful selection split.
struct SelectionSplit {
  /// Unary filter query to run next to the data (σ ∘ path).
  Query filter;
  /// Remainder consuming the filtered stream on the same input index.
  Query remainder;
  /// Which input stream of the original query the filter applies to.
  int input_index = 0;
};

/// Attempts to split a pushable selection off clause `clause_index` of
/// `q`. Returns nullopt when the clause's source is not input(i), or no
/// conjunct is pushable. The returned filter has arity 1.
std::optional<SelectionSplit> SplitSelection(const Query& q,
                                             size_t clause_index);

/// True when the where-clause of `q` has at least one pushable conjunct
/// for some input-sourced clause; convenience for the optimizer.
bool HasPushableSelection(const Query& q);

}  // namespace axml

#endif  // AXML_QUERY_DECOMPOSE_H_
