#include "query/value.h"

#include "common/str_util.h"

namespace axml {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool CompareValues(const std::string& lhs, CmpOp op,
                   const std::string& rhs) {
  double ln, rn;
  int c;
  if (ParseDouble(lhs, &ln) && ParseDouble(rhs, &rn)) {
    c = ln < rn ? -1 : (ln > rn ? 1 : 0);
  } else {
    c = lhs.compare(rhs);
    c = c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace axml
