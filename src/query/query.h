// The Query value type: parsed AQL with cheap copies.
//
// Queries are first-class in the algebra (§3.1 allows send(p2, q@p1) —
// code shipping) so they need a wire form: the canonical AQL text. A
// Query is immutable; rewrites build new Query values.

#ifndef AXML_QUERY_QUERY_H_
#define AXML_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "query/executor.h"
#include "xml/schema.h"

namespace axml {

/// An immutable, shareable declarative query.
class Query {
 public:
  Query() = default;

  /// Parses AQL text.
  static Result<Query> Parse(std::string_view text);
  /// Wraps an already-built AST.
  static Query FromAst(aql::QueryAst ast);

  bool valid() const { return ast_ != nullptr; }
  const aql::QueryAst& ast() const { return *ast_; }

  /// Number of input streams (0 for closed queries over doc() only).
  int arity() const { return ast_ == nullptr ? 0 : ast_->Arity(); }

  /// Canonical text (the wire format of shipped queries).
  const std::string& text() const { return text_; }
  /// Byte size charged when this query is shipped to another peer.
  size_t SerializedSize() const { return text_.size(); }

  /// The identity query `for $x in input(0) return $x`.
  static Query Identity();

  /// One-shot batch evaluation over fully-known inputs.
  Result<std::vector<TreePtr>> Eval(
      const std::vector<std::vector<TreePtr>>& inputs, DocResolver docs,
      NodeIdGen* gen) const;

  /// Structural comparison via canonical text.
  bool operator==(const Query& other) const { return text_ == other.text_; }

 private:
  std::shared_ptr<const aql::QueryAst> ast_;
  std::string text_;
};

}  // namespace axml

#endif  // AXML_QUERY_QUERY_H_
