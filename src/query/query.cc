#include "query/query.h"

#include "common/logging.h"
#include "query/parser.h"

namespace axml {

Result<Query> Query::Parse(std::string_view text) {
  AXML_ASSIGN_OR_RETURN(aql::QueryAst ast, aql::ParseQuery(text));
  return FromAst(std::move(ast));
}

Query Query::FromAst(aql::QueryAst ast) {
  Query q;
  auto owned = std::make_shared<aql::QueryAst>(std::move(ast));
  q.text_ = owned->ToString();
  q.ast_ = std::move(owned);
  return q;
}

Query Query::Identity() {
  static const Query q = [] {
    Result<Query> r = Parse("for $x in input(0) return $x");
    AXML_CHECK(r.ok());
    return std::move(r).value();
  }();
  return q;
}

Result<std::vector<TreePtr>> Query::Eval(
    const std::vector<std::vector<TreePtr>>& inputs, DocResolver docs,
    NodeIdGen* gen) const {
  if (!valid()) return Status::Internal("evaluating an empty Query");
  return EvalQuery(*ast_, inputs, std::move(docs), gen);
}

}  // namespace axml
