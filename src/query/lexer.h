// Tokenizer for AQL query text.

#ifndef AXML_QUERY_LEXER_H_
#define AXML_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace axml {
namespace aql {

enum class TokKind {
  kEnd,
  kIdent,     ///< bare name: for, in, doc, element labels, ...
  kVar,       ///< $name (text() excludes the '$')
  kString,    ///< "..." or '...' (text() is the unescaped content)
  kNumber,    ///< decimal literal (text() is the spelling)
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kDot,
  kSlash,     ///< /
  kDescend,   ///< //
  kStar,      ///< *
  kEq,        ///< =
  kNe,        ///< !=
  kLt,        ///< <
  kLe,        ///< <=
  kGt,        ///< >
  kGe,        ///< >=
  kTagClose,  ///< </
  kEmptyEnd,  ///< />
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  size_t offset = 0;  ///< byte offset in the query text, for errors

  bool Is(TokKind k) const { return kind == k; }
  bool IsIdent(std::string_view s) const {
    return kind == TokKind::kIdent && text == s;
  }
};

/// Tokenizes the whole input. Fails on unterminated strings or stray
/// characters.
Result<std::vector<Token>> Lex(std::string_view input);

}  // namespace aql
}  // namespace axml

#endif  // AXML_QUERY_LEXER_H_
