#include "query/parser.h"

#include "common/str_util.h"
#include "query/lexer.h"

namespace axml {
namespace aql {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<QueryAst> Parse() {
    QueryAst q;
    if (Cur().IsIdent("for")) {
      while (Cur().IsIdent("for")) {
        AXML_ASSIGN_OR_RETURN(ForClause fc, ParseForClause());
        q.clauses.push_back(std::move(fc));
        // Tolerate an optional comma between clauses:
        //   for $x in ..., for $y in ...  /  for $x in ..., $y in ...
        if (Cur().Is(TokKind::kComma)) {
          Advance();
          if (Cur().Is(TokKind::kVar)) {
            // XQuery-style `for $x in e, $y in e2`
            AXML_ASSIGN_OR_RETURN(ForClause fc2, ParseBindingTail());
            q.clauses.push_back(std::move(fc2));
            while (Cur().Is(TokKind::kComma)) {
              Advance();
              AXML_ASSIGN_OR_RETURN(ForClause fcn, ParseBindingTail());
              q.clauses.push_back(std::move(fcn));
            }
          }
        }
      }
      if (Cur().IsIdent("where")) {
        Advance();
        AXML_ASSIGN_OR_RETURN(q.where, ParseCond());
      }
      if (!Cur().IsIdent("return")) return Err("expected 'return'");
      Advance();
      AXML_ASSIGN_OR_RETURN(q.ret, ParseCons());
    } else {
      // Bare path expression sugar.
      AXML_ASSIGN_OR_RETURN(Source src, ParseSource());
      AXML_ASSIGN_OR_RETURN(Path path, ParsePath(/*require=*/false));
      ForClause fc;
      fc.var = "x";
      fc.source = std::move(src);
      fc.path = std::move(path);
      q.clauses.push_back(std::move(fc));
      auto ret = std::make_unique<Cons>();
      ret->kind = Cons::Kind::kOperand;
      ret->operand.kind = Operand::Kind::kVarPath;
      ret->operand.var = "x";
      q.ret = std::move(ret);
    }
    if (!Cur().Is(TokKind::kEnd)) {
      return Err(StrCat("trailing tokens starting with '", Cur().text, "'"));
    }
    // Semantic checks: variables defined before use, no duplicates.
    AXML_RETURN_NOT_OK(CheckVars(q));
    return q;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  const Token& Ahead(size_t n) const {
    size_t i = pos_ + n;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  void Advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  Status Err(std::string msg) const {
    return Status::ParseError(
        StrCat("offset ", Cur().offset, ": ", msg));
  }

  Result<ForClause> ParseForClause() {
    Advance();  // 'for'
    return ParseBindingTail();
  }

  /// Parses `$var in Source Path?` (shared by 'for' and comma bindings).
  Result<ForClause> ParseBindingTail() {
    ForClause fc;
    if (!Cur().Is(TokKind::kVar)) return Err("expected variable after 'for'");
    fc.var = Cur().text;
    Advance();
    if (!Cur().IsIdent("in")) return Err("expected 'in'");
    Advance();
    AXML_ASSIGN_OR_RETURN(fc.source, ParseSource());
    AXML_ASSIGN_OR_RETURN(fc.path, ParsePath(/*require=*/false));
    return fc;
  }

  Result<Source> ParseSource() {
    Source s;
    if (Cur().IsIdent("doc")) {
      Advance();
      if (!Cur().Is(TokKind::kLParen)) return Err("expected '(' after doc");
      Advance();
      if (!Cur().Is(TokKind::kString)) {
        return Err("expected document name string in doc(...)");
      }
      s.kind = Source::Kind::kDoc;
      s.doc_name = Cur().text;
      Advance();
      if (!Cur().Is(TokKind::kRParen)) return Err("expected ')'");
      Advance();
      return s;
    }
    if (Cur().IsIdent("input")) {
      Advance();
      if (!Cur().Is(TokKind::kLParen)) {
        return Err("expected '(' after input");
      }
      Advance();
      if (!Cur().Is(TokKind::kNumber)) {
        return Err("expected input index in input(...)");
      }
      s.kind = Source::Kind::kInput;
      s.input_index = std::stoi(Cur().text);
      if (s.input_index < 0) return Err("negative input index");
      Advance();
      if (!Cur().Is(TokKind::kRParen)) return Err("expected ')'");
      Advance();
      return s;
    }
    if (Cur().Is(TokKind::kVar)) {
      s.kind = Source::Kind::kVar;
      s.var_name = Cur().text;
      Advance();
      return s;
    }
    return Err("expected doc(...), input(...) or $var as source");
  }

  Result<Path> ParsePath(bool require) {
    Path path;
    while (Cur().Is(TokKind::kSlash) || Cur().Is(TokKind::kDescend)) {
      Step st;
      st.axis = Cur().Is(TokKind::kSlash) ? Step::Axis::kChild
                                          : Step::Axis::kDescendant;
      Advance();
      if (Cur().Is(TokKind::kStar)) {
        st.test = Step::Test::kWildcard;
        Advance();
      } else if (Cur().IsIdent("text") && Ahead(1).Is(TokKind::kLParen) &&
                 Ahead(2).Is(TokKind::kRParen)) {
        st.test = Step::Test::kText;
        Advance();
        Advance();
        Advance();
      } else if (Cur().Is(TokKind::kIdent)) {
        st.test = Step::Test::kLabel;
        st.label = InternLabel(Cur().text);
        Advance();
      } else {
        return Err("expected step name, '*' or text() after '/'");
      }
      path.push_back(st);
    }
    if (require && path.empty()) return Err("expected path");
    return path;
  }

  Result<Operand> ParseOperand() {
    Operand o;
    if (Cur().Is(TokKind::kVar)) {
      o.kind = Operand::Kind::kVarPath;
      o.var = Cur().text;
      Advance();
      AXML_ASSIGN_OR_RETURN(o.path, ParsePath(/*require=*/false));
      return o;
    }
    if (Cur().Is(TokKind::kDot)) {
      Advance();
      o.kind = Operand::Kind::kDotPath;
      AXML_ASSIGN_OR_RETURN(o.path, ParsePath(/*require=*/false));
      return o;
    }
    if (Cur().Is(TokKind::kString) || Cur().Is(TokKind::kNumber)) {
      o.kind = Operand::Kind::kLiteral;
      o.literal = Cur().text;
      Advance();
      return o;
    }
    return Err("expected $var, '.', string or number");
  }

  Result<CondPtr> ParseCond() {
    AXML_ASSIGN_OR_RETURN(CondPtr first, ParseConj());
    if (!Cur().IsIdent("or")) return first;
    auto node = std::make_unique<Cond>();
    node->kind = Cond::Kind::kOr;
    node->children.push_back(std::move(first));
    while (Cur().IsIdent("or")) {
      Advance();
      AXML_ASSIGN_OR_RETURN(CondPtr next, ParseConj());
      node->children.push_back(std::move(next));
    }
    return node;
  }

  Result<CondPtr> ParseConj() {
    AXML_ASSIGN_OR_RETURN(CondPtr first, ParseAtom());
    if (!Cur().IsIdent("and")) return first;
    auto node = std::make_unique<Cond>();
    node->kind = Cond::Kind::kAnd;
    node->children.push_back(std::move(first));
    while (Cur().IsIdent("and")) {
      Advance();
      AXML_ASSIGN_OR_RETURN(CondPtr next, ParseAtom());
      node->children.push_back(std::move(next));
    }
    return node;
  }

  Result<CondPtr> ParseAtom() {
    if (Cur().IsIdent("not") && Ahead(1).Is(TokKind::kLParen)) {
      Advance();
      Advance();
      AXML_ASSIGN_OR_RETURN(CondPtr inner, ParseCond());
      if (!Cur().Is(TokKind::kRParen)) return Err("expected ')'");
      Advance();
      auto node = std::make_unique<Cond>();
      node->kind = Cond::Kind::kNot;
      node->children.push_back(std::move(inner));
      return node;
    }
    if (Cur().IsIdent("contains") && Ahead(1).Is(TokKind::kLParen)) {
      Advance();
      Advance();
      auto node = std::make_unique<Cond>();
      node->kind = Cond::Kind::kContains;
      AXML_ASSIGN_OR_RETURN(node->lhs, ParseOperand());
      if (!Cur().Is(TokKind::kComma)) return Err("expected ','");
      Advance();
      if (!Cur().Is(TokKind::kString)) {
        return Err("expected string literal in contains()");
      }
      node->rhs.kind = Operand::Kind::kLiteral;
      node->rhs.literal = Cur().text;
      Advance();
      if (!Cur().Is(TokKind::kRParen)) return Err("expected ')'");
      Advance();
      return node;
    }
    if (Cur().Is(TokKind::kLParen)) {
      Advance();
      AXML_ASSIGN_OR_RETURN(CondPtr inner, ParseCond());
      if (!Cur().Is(TokKind::kRParen)) return Err("expected ')'");
      Advance();
      return inner;
    }
    // Comparison or existence.
    AXML_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    CmpOp op;
    bool has_cmp = true;
    switch (Cur().kind) {
      case TokKind::kEq:
        op = CmpOp::kEq;
        break;
      case TokKind::kNe:
        op = CmpOp::kNe;
        break;
      case TokKind::kLt:
        op = CmpOp::kLt;
        break;
      case TokKind::kLe:
        op = CmpOp::kLe;
        break;
      case TokKind::kGt:
        op = CmpOp::kGt;
        break;
      case TokKind::kGe:
        op = CmpOp::kGe;
        break;
      default:
        has_cmp = false;
        op = CmpOp::kEq;
        break;
    }
    auto node = std::make_unique<Cond>();
    if (!has_cmp) {
      node->kind = Cond::Kind::kExists;
      node->lhs = std::move(lhs);
      return node;
    }
    Advance();
    node->kind = Cond::Kind::kCompare;
    node->lhs = std::move(lhs);
    node->op = op;
    AXML_ASSIGN_OR_RETURN(node->rhs, ParseOperand());
    return node;
  }

  Result<ConsPtr> ParseCons() {
    if (Cur().Is(TokKind::kLt)) {
      Advance();
      if (!Cur().Is(TokKind::kIdent)) return Err("expected element name");
      auto node = std::make_unique<Cons>();
      node->kind = Cons::Kind::kElement;
      node->elem_label = InternLabel(Cur().text);
      std::string tag = Cur().text;
      Advance();
      if (Cur().Is(TokKind::kEmptyEnd)) {
        Advance();
        return node;
      }
      if (!Cur().Is(TokKind::kGt)) return Err("expected '>'");
      Advance();
      if (!Cur().Is(TokKind::kLBrace)) {
        return Err("expected '{' inside element constructor");
      }
      Advance();
      if (!Cur().Is(TokKind::kRBrace)) {
        AXML_ASSIGN_OR_RETURN(ConsPtr child, ParseCons());
        node->children.push_back(std::move(child));
        while (Cur().Is(TokKind::kComma)) {
          Advance();
          AXML_ASSIGN_OR_RETURN(ConsPtr next, ParseCons());
          node->children.push_back(std::move(next));
        }
      }
      if (!Cur().Is(TokKind::kRBrace)) return Err("expected '}'");
      Advance();
      if (!Cur().Is(TokKind::kTagClose)) {
        return Err(StrCat("expected closing tag for <", tag, ">"));
      }
      Advance();
      if (!Cur().IsIdent(tag)) {
        return Err(StrCat("mismatched closing tag, expected </", tag, ">"));
      }
      Advance();
      if (!Cur().Is(TokKind::kGt)) return Err("expected '>'");
      Advance();
      return node;
    }
    if (Cur().IsIdent("count") && Ahead(1).Is(TokKind::kLParen)) {
      Advance();
      Advance();
      if (!Cur().Is(TokKind::kVar)) return Err("expected $var in count()");
      auto node = std::make_unique<Cons>();
      node->kind = Cons::Kind::kCount;
      node->count_var = Cur().text;
      Advance();
      if (!Cur().Is(TokKind::kRParen)) return Err("expected ')'");
      Advance();
      return node;
    }
    auto node = std::make_unique<Cons>();
    node->kind = Cons::Kind::kOperand;
    AXML_ASSIGN_OR_RETURN(node->operand, ParseOperand());
    return node;
  }

  Status CheckVars(const QueryAst& q) const {
    std::vector<std::string> defined;
    for (const auto& c : q.clauses) {
      for (const auto& d : defined) {
        if (d == c.var) {
          return Status::ParseError(
              StrCat("duplicate variable $", c.var));
        }
      }
      if (c.source.kind == Source::Kind::kVar) {
        bool found = false;
        for (const auto& d : defined) found = found || d == c.source.var_name;
        if (!found) {
          return Status::ParseError(
              StrCat("variable $", c.source.var_name,
                     " used before definition"));
        }
      }
      defined.push_back(c.var);
    }
    std::vector<std::string> used;
    if (q.where != nullptr) q.where->CollectVars(&used);
    if (q.ret != nullptr) q.ret->CollectVars(&used);
    for (const auto& u : used) {
      bool found = false;
      for (const auto& d : defined) found = found || d == u;
      if (!found) {
        return Status::ParseError(StrCat("undefined variable $", u));
      }
    }
    return Status::OK();
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryAst> ParseQuery(std::string_view text) {
  AXML_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(text));
  Parser p(std::move(toks));
  return p.Parse();
}

}  // namespace aql
}  // namespace axml
