// Abstract syntax of AQL, the declarative XML query language of this
// library (DESIGN.md substitution for XQuery).
//
// Grammar (EBNF; see parser.cc for the concrete implementation):
//
//   Query      ::= FLWR | PathExpr
//   FLWR       ::= ForClause+ ('where' Cond)? 'return' Cons
//   ForClause  ::= 'for' Var 'in' Source Path?
//   Source     ::= 'doc(' String ')' | 'input(' Int ')' | Var
//   Path       ::= (('/' | '//') Step)+
//   Step       ::= Name | '*' | 'text()'
//   Cond       ::= Conj ('or' Conj)*
//   Conj       ::= Atom ('and' Atom)*
//   Atom       ::= 'not' '(' Cond ')' | '(' Cond ')'
//                | Operand Cmp Operand | Operand
//                | 'contains(' Operand ',' String ')'
//   Operand    ::= (Var | '.') Path? | String | Number
//   Cons       ::= Element | Operand | 'count(' Var ')'
//   Element    ::= '<' Name '>' '{' Cons (',' Cons)* '}' '</' Name '>'
//                | '<' Name '/>'
//
// A query's *arity* is 1 + the largest input(i) index it mentions, or 0
// if none appear. PathExpr alone abbreviates
// `for $x in <path> return $x` over input(0)/doc.

#ifndef AXML_QUERY_AST_H_
#define AXML_QUERY_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "query/value.h"
#include "xml/label_interner.h"

namespace axml {
namespace aql {

/// One navigation step.
struct Step {
  enum class Axis { kChild, kDescendant };
  enum class Test { kLabel, kWildcard, kText };

  Axis axis = Axis::kChild;
  Test test = Test::kLabel;
  LabelId label = 0;  ///< valid when test == kLabel

  std::string ToString(bool leading_slash = true) const;
  bool operator==(const Step&) const = default;
};

using Path = std::vector<Step>;

std::string PathToString(const Path& path);

/// Where a for-clause draws its trees from.
struct Source {
  enum class Kind {
    kDoc,    ///< doc("name"): a document of the evaluating peer
    kInput,  ///< input(i): the i-th query input stream
    kVar,    ///< $v: trees bound by an earlier clause
  };
  Kind kind = Kind::kInput;
  std::string doc_name;   ///< kDoc
  int input_index = 0;    ///< kInput
  std::string var_name;   ///< kVar

  std::string ToString() const;
};

/// `for $var in source path`
struct ForClause {
  std::string var;
  Source source;
  Path path;

  std::string ToString() const;
};

/// Scalar operand of predicates and constructors.
struct Operand {
  enum class Kind {
    kVarPath,  ///< $v/p or $v — string value of matched node(s)
    kDotPath,  ///< ./p — relative to the context tree (single-path query)
    kLiteral,  ///< quoted string or number literal
  };
  Kind kind = Kind::kLiteral;
  std::string var;      ///< kVarPath
  Path path;            ///< kVarPath / kDotPath
  std::string literal;  ///< kLiteral

  std::string ToString() const;
};

/// Boolean condition tree.
struct Cond;
using CondPtr = std::unique_ptr<Cond>;

struct Cond {
  enum class Kind {
    kAnd,
    kOr,
    kNot,
    kCompare,   ///< lhs op rhs
    kExists,    ///< operand matches at least one node
    kContains,  ///< string value of lhs contains literal rhs
  };
  Kind kind;
  std::vector<CondPtr> children;  ///< kAnd/kOr (>=2), kNot (1)
  Operand lhs, rhs;               ///< kCompare/kContains; kExists uses lhs
  CmpOp op = CmpOp::kEq;          ///< kCompare

  std::string ToString() const;
  CondPtr Clone() const;

  /// Variables mentioned anywhere below this condition.
  void CollectVars(std::vector<std::string>* out) const;
};

/// Result constructor.
struct Cons;
using ConsPtr = std::unique_ptr<Cons>;

struct Cons {
  enum class Kind {
    kElement,  ///< <label>{ children }</label>
    kOperand,  ///< $v/p (deep copies of matched nodes) or literal text
    kCount,    ///< count($v): running count of bindings of $v
  };
  Kind kind;
  LabelId elem_label = 0;          ///< kElement
  std::vector<ConsPtr> children;   ///< kElement
  Operand operand;                 ///< kOperand
  std::string count_var;           ///< kCount

  std::string ToString() const;
  ConsPtr Clone() const;
  void CollectVars(std::vector<std::string>* out) const;
};

/// A full query.
struct QueryAst {
  std::vector<ForClause> clauses;
  CondPtr where;  ///< may be null
  ConsPtr ret;    ///< never null after parsing

  /// 0 when no input(i) appears, else 1 + max index.
  int Arity() const;

  std::string ToString() const;
  QueryAst Clone() const;
};

}  // namespace aql
}  // namespace axml

#endif  // AXML_QUERY_AST_H_
