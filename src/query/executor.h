// Continuous, incremental evaluation of AQL queries over streams of
// trees (§3.2, definition (2) and the stream generalization: "eval@p(q)
// produces a result whenever the arrival of some new tree in the input
// streams t1..tn leads to creating some output").
//
// The executor is push-based. A QueryInstance is a standing dataflow:
// each for-clause is a *bind stage*. A stage whose source is independent
// (input(i) or doc(...)) keeps two stores — rows received from upstream
// and trees received from its source — and emits the incremental join of
// whichever side just grew (classic symmetric incremental product). A
// stage whose source is an earlier variable ($v/path) is stateless: it
// extends each row in place. The where clause filters rows; the return
// clause constructs one output tree per surviving row (running re-emit
// for count()).
//
// Pushing the same document tree again therefore produces exactly the
// delta results — the incremental semantics the paper's continuous
// services rely on.

#ifndef AXML_QUERY_EXECUTOR_H_
#define AXML_QUERY_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "xml/tree.h"

namespace axml {

/// Resolves doc("name") references during evaluation; returns nullptr
/// when the document is unknown on the evaluating peer.
using DocResolver = std::function<TreePtr(const DocName&)>;

/// Receives each result tree as it is produced.
using EmitFn = std::function<void(TreePtr)>;

/// All nodes matching `path` starting from `root` (XPath child //
/// descendant semantics; an empty path yields {root}).
void NavigatePath(const TreePtr& root, const aql::Path& path,
                  std::vector<TreePtr>* out);

/// Navigation for clause sources: the first step is taken from the
/// implicit document node above `root`, so `/catalog/product` matches
/// when `root` *is* the <catalog> element (XPath doc-node semantics).
void NavigateAsDocument(const TreePtr& root, const aql::Path& path,
                        std::vector<TreePtr>* out);

/// A standing instance of one query: feed inputs, results stream out.
class QueryInstance {
 public:
  /// `gen` mints ids for constructed result nodes and must outlive the
  /// instance. The AST is copied.
  QueryInstance(const aql::QueryAst& ast, DocResolver docs, EmitFn emit,
                NodeIdGen* gen);
  ~QueryInstance();

  QueryInstance(const QueryInstance&) = delete;
  QueryInstance& operator=(const QueryInstance&) = delete;

  /// Resolves doc() sources and runs them through the dataflow. Call
  /// exactly once, before any PushInput.
  Status Start();

  /// Delivers one tree on input stream `index` (0-based).
  Status PushInput(int index, TreePtr tree);

  /// Number of input streams the query consumes.
  int arity() const;
  /// Total results emitted so far.
  uint64_t results_emitted() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience: evaluates `ast` over fully-known inputs and
/// returns all results. Used by tests and by batch service invocations.
Result<std::vector<TreePtr>> EvalQuery(
    const aql::QueryAst& ast,
    const std::vector<std::vector<TreePtr>>& inputs, DocResolver docs,
    NodeIdGen* gen);

}  // namespace axml

#endif  // AXML_QUERY_EXECUTOR_H_
