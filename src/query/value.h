// Atomic values used by AQL predicates.
//
// AQL compares the *string value* of nodes (concatenated text leaves,
// like XPath) against literals or other nodes. Comparison is numeric when
// both sides parse as decimal numbers, lexicographic otherwise — the
// usual weak-typing rule of XPath 1.0.

#ifndef AXML_QUERY_VALUE_H_
#define AXML_QUERY_VALUE_H_

#include <string>

namespace axml {

/// Comparison operators of the AQL where-clause.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);  ///< "=", "!=", "<", "<=", ">", ">="

/// Applies `op` to two string values with the numeric-if-possible rule.
bool CompareValues(const std::string& lhs, CmpOp op,
                   const std::string& rhs);

}  // namespace axml

#endif  // AXML_QUERY_VALUE_H_
