#include "query/decompose.h"

#include <algorithm>

namespace axml {

using aql::Cond;
using aql::CondPtr;
using aql::Cons;
using aql::ForClause;
using aql::Operand;
using aql::QueryAst;
using aql::Source;

namespace {

/// True when every variable mentioned below `c` is `var`, and no
/// dot-paths appear (dot binds to the first clause, which may differ
/// after the split).
bool OnlyMentions(const Cond& c, const std::string& var) {
  auto operand_ok = [&var](const Operand& o) {
    switch (o.kind) {
      case Operand::Kind::kLiteral:
        return true;
      case Operand::Kind::kVarPath:
        return o.var == var;
      case Operand::Kind::kDotPath:
        return false;
    }
    return false;
  };
  switch (c.kind) {
    case Cond::Kind::kAnd:
    case Cond::Kind::kOr:
    case Cond::Kind::kNot: {
      for (const auto& ch : c.children) {
        if (!OnlyMentions(*ch, var)) return false;
      }
      return true;
    }
    case Cond::Kind::kCompare:
      return operand_ok(c.lhs) && operand_ok(c.rhs);
    case Cond::Kind::kExists:
      return operand_ok(c.lhs);
    case Cond::Kind::kContains:
      return operand_ok(c.lhs);
  }
  return false;
}

void RenameVar(Cond* c, const std::string& from, const std::string& to) {
  auto fix = [&](Operand* o) {
    if (o->kind == Operand::Kind::kVarPath && o->var == from) o->var = to;
  };
  fix(&c->lhs);
  fix(&c->rhs);
  for (auto& ch : c->children) RenameVar(ch.get(), from, to);
}

/// Splits the where clause into top-level conjuncts.
std::vector<const Cond*> Conjuncts(const Cond& where) {
  std::vector<const Cond*> out;
  if (where.kind == Cond::Kind::kAnd) {
    for (const auto& c : where.children) out.push_back(c.get());
  } else {
    out.push_back(&where);
  }
  return out;
}

CondPtr AndOf(std::vector<CondPtr> conds) {
  if (conds.empty()) return nullptr;
  if (conds.size() == 1) return std::move(conds[0]);
  auto node = std::make_unique<Cond>();
  node->kind = Cond::Kind::kAnd;
  node->children = std::move(conds);
  return node;
}

}  // namespace

std::optional<SelectionSplit> SplitSelection(const Query& q,
                                             size_t clause_index) {
  if (!q.valid()) return std::nullopt;
  const QueryAst& ast = q.ast();
  if (clause_index >= ast.clauses.size()) return std::nullopt;
  const ForClause& fc = ast.clauses[clause_index];
  if (fc.source.kind != Source::Kind::kInput) return std::nullopt;
  if (ast.where == nullptr) return std::nullopt;

  std::vector<CondPtr> pushed, kept;
  for (const Cond* c : Conjuncts(*ast.where)) {
    if (OnlyMentions(*c, fc.var)) {
      pushed.push_back(c->Clone());
    } else {
      kept.push_back(c->Clone());
    }
  }
  if (pushed.empty()) return std::nullopt;

  // Filter: for $x in input(0) <path> where <pushed> return $x.
  QueryAst filter;
  ForClause filter_clause;
  filter_clause.var = "x";
  filter_clause.source.kind = Source::Kind::kInput;
  filter_clause.source.input_index = 0;
  filter_clause.path = fc.path;
  filter.clauses.push_back(std::move(filter_clause));
  for (auto& c : pushed) RenameVar(c.get(), fc.var, "x");
  filter.where = AndOf(std::move(pushed));
  auto ret = std::make_unique<Cons>();
  ret->kind = Cons::Kind::kOperand;
  ret->operand.kind = Operand::Kind::kVarPath;
  ret->operand.var = "x";
  filter.ret = std::move(ret);

  // Remainder: same query, clause path cleared (the filter navigated),
  // pushed conjuncts removed.
  QueryAst remainder = ast.Clone();
  remainder.clauses[clause_index].path.clear();
  remainder.where = AndOf(std::move(kept));

  SelectionSplit split;
  split.filter = Query::FromAst(std::move(filter));
  split.remainder = Query::FromAst(std::move(remainder));
  split.input_index = fc.source.input_index;
  return split;
}

bool HasPushableSelection(const Query& q) {
  if (!q.valid()) return false;
  for (size_t k = 0; k < q.ast().clauses.size(); ++k) {
    if (SplitSelection(q, k).has_value()) return true;
  }
  return false;
}

}  // namespace axml
