#include "query/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace axml {
namespace aql {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == ':';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view in) {
  std::vector<Token> out;
  size_t i = 0;
  auto push = [&](TokKind k, std::string text, size_t off) {
    out.push_back(Token{k, std::move(text), off});
  };
  while (i < in.size()) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t off = i;
    if (IsIdentStart(c)) {
      size_t b = i;
      while (i < in.size() && IsIdentChar(in[i])) ++i;
      push(TokKind::kIdent, std::string(in.substr(b, i - b)), off);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < in.size() &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      size_t b = i;
      if (in[i] == '-') ++i;
      while (i < in.size() &&
             (std::isdigit(static_cast<unsigned char>(in[i])) ||
              in[i] == '.' || in[i] == 'e' || in[i] == 'E' ||
              ((in[i] == '+' || in[i] == '-') &&
               (in[i - 1] == 'e' || in[i - 1] == 'E')))) {
        ++i;
      }
      push(TokKind::kNumber, std::string(in.substr(b, i - b)), off);
      continue;
    }
    switch (c) {
      case '@': {
        // Attribute step: '@name' is an identifier token labeled
        // "@name", matching how the XML parser maps attributes into
        // the unordered-tree model.
        ++i;
        size_t b = i;
        while (i < in.size() && IsIdentChar(in[i])) ++i;
        if (i == b) {
          return Status::ParseError(
              StrCat("offset ", off, ": expected name after '@'"));
        }
        push(TokKind::kIdent, "@" + std::string(in.substr(b, i - b)),
             off);
        continue;
      }
      case '$': {
        ++i;
        size_t b = i;
        while (i < in.size() && IsIdentChar(in[i])) ++i;
        if (i == b) {
          return Status::ParseError(
              StrCat("offset ", off, ": expected variable name after '$'"));
        }
        push(TokKind::kVar, std::string(in.substr(b, i - b)), off);
        continue;
      }
      case '"':
      case '\'': {
        char quote = c;
        ++i;
        std::string s;
        while (i < in.size() && in[i] != quote) {
          if (in[i] == '\\' && i + 1 < in.size()) {
            ++i;  // simple escapes: \" \' \\ pass the next char through
          }
          s.push_back(in[i]);
          ++i;
        }
        if (i >= in.size()) {
          return Status::ParseError(
              StrCat("offset ", off, ": unterminated string literal"));
        }
        ++i;  // closing quote
        push(TokKind::kString, std::move(s), off);
        continue;
      }
      case '(':
        push(TokKind::kLParen, "(", off);
        ++i;
        continue;
      case ')':
        push(TokKind::kRParen, ")", off);
        ++i;
        continue;
      case '{':
        push(TokKind::kLBrace, "{", off);
        ++i;
        continue;
      case '}':
        push(TokKind::kRBrace, "}", off);
        ++i;
        continue;
      case ',':
        push(TokKind::kComma, ",", off);
        ++i;
        continue;
      case '.':
        push(TokKind::kDot, ".", off);
        ++i;
        continue;
      case '*':
        push(TokKind::kStar, "*", off);
        ++i;
        continue;
      case '=':
        push(TokKind::kEq, "=", off);
        ++i;
        continue;
      case '!':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokKind::kNe, "!=", off);
          i += 2;
          continue;
        }
        return Status::ParseError(
            StrCat("offset ", off, ": stray '!' (did you mean '!=')"));
      case '/':
        if (i + 1 < in.size() && in[i + 1] == '/') {
          push(TokKind::kDescend, "//", off);
          i += 2;
        } else if (i + 1 < in.size() && in[i + 1] == '>') {
          push(TokKind::kEmptyEnd, "/>", off);
          i += 2;
        } else {
          push(TokKind::kSlash, "/", off);
          ++i;
        }
        continue;
      case '<':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokKind::kLe, "<=", off);
          i += 2;
        } else if (i + 1 < in.size() && in[i + 1] == '/') {
          push(TokKind::kTagClose, "</", off);
          i += 2;
        } else {
          push(TokKind::kLt, "<", off);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokKind::kGe, ">=", off);
          i += 2;
        } else {
          push(TokKind::kGt, ">", off);
          ++i;
        }
        continue;
      default:
        return Status::ParseError(
            StrCat("offset ", off, ": unexpected character '", c, "'"));
    }
  }
  push(TokKind::kEnd, "", in.size());
  return out;
}

}  // namespace aql
}  // namespace axml
