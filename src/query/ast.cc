#include "query/ast.h"

#include <algorithm>

#include "common/str_util.h"

namespace axml {
namespace aql {

std::string Step::ToString(bool leading_slash) const {
  std::string s;
  if (leading_slash) s = axis == Axis::kChild ? "/" : "//";
  switch (test) {
    case Test::kLabel:
      s += LabelText(label);
      break;
    case Test::kWildcard:
      s += "*";
      break;
    case Test::kText:
      s += "text()";
      break;
  }
  return s;
}

std::string PathToString(const Path& path) {
  std::string s;
  for (const Step& st : path) s += st.ToString();
  return s;
}

std::string Source::ToString() const {
  switch (kind) {
    case Kind::kDoc:
      return StrCat("doc(\"", doc_name, "\")");
    case Kind::kInput:
      return StrCat("input(", input_index, ")");
    case Kind::kVar:
      return StrCat("$", var_name);
  }
  return "?";
}

std::string ForClause::ToString() const {
  return StrCat("for $", var, " in ", source.ToString(),
                PathToString(path));
}

std::string Operand::ToString() const {
  switch (kind) {
    case Kind::kVarPath:
      return StrCat("$", var, PathToString(path));
    case Kind::kDotPath:
      return StrCat(".", PathToString(path));
    case Kind::kLiteral: {
      double d;
      if (ParseDouble(literal, &d)) return literal;
      return StrCat("\"", literal, "\"");
    }
  }
  return "?";
}

std::string Cond::ToString() const {
  switch (kind) {
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind == Kind::kAnd ? " and " : " or ";
      std::string s = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) s += sep;
        s += children[i]->ToString();
      }
      s += ")";
      return s;
    }
    case Kind::kNot:
      return StrCat("not(", children[0]->ToString(), ")");
    case Kind::kCompare:
      return StrCat(lhs.ToString(), " ", CmpOpName(op), " ",
                    rhs.ToString());
    case Kind::kExists:
      return lhs.ToString();
    case Kind::kContains:
      return StrCat("contains(", lhs.ToString(), ", \"", rhs.literal,
                    "\")");
  }
  return "?";
}

CondPtr Cond::Clone() const {
  auto c = std::make_unique<Cond>();
  c->kind = kind;
  for (const auto& ch : children) c->children.push_back(ch->Clone());
  c->lhs = lhs;
  c->rhs = rhs;
  c->op = op;
  return c;
}

void Cond::CollectVars(std::vector<std::string>* out) const {
  auto add = [out](const Operand& o) {
    if (o.kind == Operand::Kind::kVarPath) out->push_back(o.var);
  };
  add(lhs);
  add(rhs);
  for (const auto& ch : children) ch->CollectVars(out);
}

std::string Cons::ToString() const {
  switch (kind) {
    case Kind::kElement: {
      const std::string& tag = LabelText(elem_label);
      if (children.empty()) return StrCat("<", tag, "/>");
      std::string s = StrCat("<", tag, ">{ ");
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) s += ", ";
        s += children[i]->ToString();
      }
      s += StrCat(" }</", tag, ">");
      return s;
    }
    case Kind::kOperand:
      return operand.ToString();
    case Kind::kCount:
      return StrCat("count($", count_var, ")");
  }
  return "?";
}

ConsPtr Cons::Clone() const {
  auto c = std::make_unique<Cons>();
  c->kind = kind;
  c->elem_label = elem_label;
  for (const auto& ch : children) c->children.push_back(ch->Clone());
  c->operand = operand;
  c->count_var = count_var;
  return c;
}

void Cons::CollectVars(std::vector<std::string>* out) const {
  if (kind == Kind::kOperand &&
      operand.kind == Operand::Kind::kVarPath) {
    out->push_back(operand.var);
  }
  if (kind == Kind::kCount) out->push_back(count_var);
  for (const auto& ch : children) ch->CollectVars(out);
}

int QueryAst::Arity() const {
  int max_index = -1;
  for (const auto& c : clauses) {
    if (c.source.kind == Source::Kind::kInput) {
      max_index = std::max(max_index, c.source.input_index);
    }
  }
  return max_index + 1;
}

std::string QueryAst::ToString() const {
  std::string s;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) s += " ";
    s += clauses[i].ToString();
  }
  if (where != nullptr) {
    s += " where ";
    s += where->ToString();
  }
  s += " return ";
  s += ret->ToString();
  return s;
}

QueryAst QueryAst::Clone() const {
  QueryAst q;
  q.clauses = clauses;
  if (where != nullptr) q.where = where->Clone();
  if (ret != nullptr) q.ret = ret->Clone();
  return q;
}

}  // namespace aql
}  // namespace axml
