#include "peer/peer.h"

#include "common/str_util.h"

namespace axml {

Peer::Peer(PeerId id, std::string name)
    : id_(id), name_(std::move(name)), gen_(id) {}

Status Peer::InstallDocument(DocName name, TreePtr root) {
  if (docs_.count(name) > 0) {
    return Status::AlreadyExists(
        StrCat("document \"", name, "\" already exists on peer ", name_));
  }
  auto it = docs_.emplace(std::move(name), std::move(root)).first;
  NotifyMutation(it->first);
  return Status::OK();
}

void Peer::PutDocument(DocName name, TreePtr root) {
  auto it = docs_.insert_or_assign(std::move(name), std::move(root)).first;
  NotifyMutation(it->first);
}

Status Peer::RemoveDocument(const DocName& name) {
  if (docs_.erase(name) == 0) {
    return Status::NotFound(
        StrCat("document \"", name, "\" not found on peer ", name_));
  }
  NotifyMutation(name);
  return Status::OK();
}

TreePtr Peer::GetDocument(const DocName& name) const {
  auto it = docs_.find(name);
  return it == docs_.end() ? nullptr : it->second;
}

bool Peer::HasDocument(const DocName& name) const {
  return docs_.count(name) > 0;
}

TreeNode* Peer::FindNode(NodeId id) {
  for (auto& [name, root] : docs_) {
    if (TreeNode* n = root->FindNode(id)) return n;
  }
  return nullptr;
}

DocName Peer::FindDocumentOfNode(NodeId id) const {
  for (const auto& [name, root] : docs_) {
    if (root->FindNode(id) != nullptr) return name;
  }
  return "";
}

Status Peer::AppendUnderNode(NodeId target, TreePtr tree) {
  // One scan finds both the node and its enclosing document (the
  // mutation listener needs the name to bump the right version).
  TreeNode* node = nullptr;
  DocName doc;
  for (auto& [name, root] : docs_) {
    if ((node = root->FindNode(target)) != nullptr) {
      doc = name;
      break;
    }
  }
  if (node == nullptr) {
    return Status::NotFound(StrCat("node ", target.ToString(),
                                   " not found on peer ", name_));
  }
  if (!node->is_element()) {
    return Status::InvalidArgument("cannot append under a text node");
  }
  node->AddChild(std::move(tree));
  NotifyMutation(doc);
  return Status::OK();
}

Status Peer::InstallService(Service service) {
  const ServiceName& name = service.name();
  if (services_.count(name) > 0) {
    return Status::AlreadyExists(
        StrCat("service \"", name, "\" already exists on peer ", name_));
  }
  services_.emplace(name, std::move(service));
  return Status::OK();
}

void Peer::PutService(Service service) {
  services_[service.name()] = std::move(service);
}

Status Peer::RemoveService(const ServiceName& name) {
  if (services_.erase(name) == 0) {
    return Status::NotFound(
        StrCat("service \"", name, "\" not found on peer ", name_));
  }
  return Status::OK();
}

const Service* Peer::GetService(const ServiceName& name) const {
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : &it->second;
}

bool Peer::HasService(const ServiceName& name) const {
  return services_.count(name) > 0;
}

DocResolver Peer::AsDocResolver() const {
  return [this](const DocName& name) { return GetDocument(name); };
}

}  // namespace axml
