// A peer (§2): "a context of computation ... a hosting environment for
// documents and services".
//
// The Peer owns its documents (unique names per peer), its service
// registry, and its NodeIdGen. It also carries a compute-speed parameter
// used by the simulator to charge evaluation time (the paper's delegation
// rule (10) only pays off because peers differ in load/power).

#ifndef AXML_PEER_PEER_H_
#define AXML_PEER_PEER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "peer/service.h"
#include "query/executor.h"
#include "xml/tree.h"

namespace axml {

/// One peer of the AXML system.
class Peer {
 public:
  Peer(PeerId id, std::string name);

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  PeerId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Trees-per-second processing rate used to charge evaluation time.
  double compute_speed() const { return compute_speed_; }
  void set_compute_speed(double nodes_per_s) {
    compute_speed_ = nodes_per_s;
  }
  /// Virtual seconds to process `nodes` tree nodes on this peer.
  double ComputeTime(uint64_t nodes) const {
    return static_cast<double>(nodes) / compute_speed_;
  }

  /// Mints node ids owned by this peer.
  NodeIdGen* gen() { return &gen_; }

  // --- Documents ---

  /// Installs a document; fails with kAlreadyExists on a name collision
  /// ("No two documents can agree on the values of (d, p)", §2.1).
  Status InstallDocument(DocName name, TreePtr root);
  /// Replaces or creates.
  void PutDocument(DocName name, TreePtr root);
  Status RemoveDocument(const DocName& name);
  /// nullptr when absent.
  TreePtr GetDocument(const DocName& name) const;
  bool HasDocument(const DocName& name) const;
  const std::map<DocName, TreePtr>& documents() const { return docs_; }

  /// Finds the node `id` in any document; nullptr when absent.
  TreeNode* FindNode(NodeId id);
  /// Document containing node `id`; empty when absent.
  DocName FindDocumentOfNode(NodeId id) const;

  /// Appends `tree` as a child of node `target` (the landing step of
  /// send-to-node, §3.2 def. (4)). The tree is *not* cloned; callers
  /// clone when crossing peers.
  Status AppendUnderNode(NodeId target, TreePtr tree);

  // --- Services ---

  Status InstallService(Service service);
  /// Replaces or creates (used by query shipping, def. (8)).
  void PutService(Service service);
  Status RemoveService(const ServiceName& name);
  const Service* GetService(const ServiceName& name) const;
  bool HasService(const ServiceName& name) const;
  const std::map<ServiceName, Service>& services() const {
    return services_;
  }

  /// Resolver for doc(...) references in queries evaluated at this peer.
  DocResolver AsDocResolver() const;

  /// Called after every document mutation on this peer (install, put,
  /// remove, append-under-node) with the affected name. Listeners fan
  /// out in registration order: AxmlSystem wires the first one to the
  /// ReplicaManager (version bump + push to copy holders); tests and
  /// benches append their own (e.g. mutation counters) without
  /// disturbing the replica wiring.
  using MutationListener = std::function<void(const DocName&)>;
  void add_mutation_listener(MutationListener fn) {
    on_mutation_.push_back(std::move(fn));
  }
  /// Replaces every registered listener (legacy single-listener hook).
  void set_mutation_listener(MutationListener fn) {
    on_mutation_.clear();
    on_mutation_.push_back(std::move(fn));
  }

 private:
  void NotifyMutation(const DocName& name) {
    for (const MutationListener& fn : on_mutation_) {
      if (fn) fn(name);
    }
  }

  PeerId id_;
  std::string name_;
  NodeIdGen gen_;
  double compute_speed_ = 1.0e6;
  std::map<DocName, TreePtr> docs_;
  std::map<ServiceName, Service> services_;
  std::vector<MutationListener> on_mutation_;
};

}  // namespace axml

#endif  // AXML_PEER_PEER_H_
