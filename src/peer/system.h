// AxmlSystem: the whole distributed state Σ (§3.3: "We call state of an
// AXML system over peers p1..pn, and denote by Σ, all documents and
// services on p1..pn").
//
// Owns the event loop, the network, the peers, the discovery catalog and
// the generic-class registry. The rule-equivalence property tests
// fingerprint Σ before/after evaluating two expressions and assert the
// fingerprints agree — the executable form of the paper's
// eval@p1(e1)(Σ) = eval@p2(e2)(Σ).

#ifndef AXML_PEER_SYSTEM_H_
#define AXML_PEER_SYSTEM_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "net/catalog.h"
#include "net/event_loop.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "peer/generic.h"
#include "peer/peer.h"
#include "replica/replica_manager.h"

namespace axml {

/// The complete simulated AXML deployment.
class AxmlSystem {
 public:
  /// Uses a uniform default topology; call `network().mutable_topology()`
  /// or construct with an explicit Topology to customize.
  AxmlSystem();
  explicit AxmlSystem(Topology topology);

  AxmlSystem(const AxmlSystem&) = delete;
  AxmlSystem& operator=(const AxmlSystem&) = delete;

  /// Creates a peer; names must be unique and not "any".
  PeerId AddPeer(std::string name);

  Peer* peer(PeerId id);
  const Peer* peer(PeerId id) const;
  /// nullptr when no peer has `name`.
  Peer* FindPeer(const std::string& name);
  PeerId FindPeerId(const std::string& name) const;
  size_t peer_count() const { return peers_.size(); }

  EventLoop& loop() { return loop_; }
  Network& network() { return *network_; }
  const Network& network() const { return *network_; }

  /// Discovery catalog (defaults to a CentralCatalog on the first peer
  /// added; replaceable for the EXP-8 ablation).
  void SetCatalog(std::unique_ptr<Catalog> catalog);
  Catalog* catalog();

  GenericCatalog& generics() { return generics_; }

  /// Replica placement, transfer caches and versioned invalidation
  /// (src/replica/). Peer document mutations bump versions here; the
  /// evaluator and the cost model consult it for cache-aware reads.
  ReplicaManager& replicas() { return replicas_; }
  const ReplicaManager& replicas() const { return replicas_; }

  /// The unified metric namespace (obs/metrics.h). The constructor
  /// mounts the network stats at "net/..." and the whole replica layer
  /// ("replica/...", "peer/<idx>/replica/cache/..."); evaluators mount
  /// their own counters while they live.
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }

  /// Everything the registry knows right now, as a flat JSON object.
  std::string DumpMetrics() const { return metrics_.Snapshot().ToJson(); }

  /// The causal tracer (obs/trace.h), clocked by the event loop and
  /// wired into the network. Disabled by default; call
  /// `tracer().set_enabled(true)` to start recording spans.
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Encode/decode accounting for every wire payload this system
  /// produces or consumes, mounted at "wire/..." in the registry.
  /// Instance state, not process-global: twin systems in one process
  /// must stay byte-identical in DumpMetrics.
  wire::WireStats& wire_stats() { return wire_stats_; }
  const wire::WireStats& wire_stats() const { return wire_stats_; }

  // --- State manipulation helpers (register resources in the catalog) ---

  /// Installs a document on `p` and advertises it.
  Status InstallDocument(PeerId p, DocName name, TreePtr root);
  /// Parses and installs XML text.
  Status InstallDocumentXml(PeerId p, DocName name, std::string_view xml);
  /// Installs a service on `p` and advertises it.
  Status InstallService(PeerId p, Service service);

  /// Installs a replicated document: same content on every peer in
  /// `replicas` (cloned per peer), registered as document class
  /// `class_name`.
  Status InstallReplicatedDocument(const std::string& class_name,
                                   const DocName& name, const TreePtr& root,
                                   const std::vector<PeerId>& replicas);

  /// Runs the event loop until no events remain. Returns events run.
  uint64_t RunToQuiescence() { return loop_.Run(); }

  // --- Peer lifecycle (fault injection & churn) ---

  /// Crashes `p`: the network stops delivering to or accepting from it,
  /// its advertised copies are retracted, and with CrashMode::kLoseCache
  /// its replica cache is wiped (kDurableCache keeps the bytes on disk
  /// for rejoin-time reconciliation). The peer's *durable* documents
  /// survive either way — a crash loses soft state only.
  void CrashPeer(PeerId p, CrashMode mode);
  /// Brings a crashed peer back: the network resumes delivery and the
  /// replica layer reconciles whatever cache survived before the peer
  /// serves anything.
  void RejoinPeer(PeerId p);
  /// False between CrashPeer and RejoinPeer; true otherwise.
  bool IsPeerUp(PeerId p) const { return network_->IsPeerUp(p); }

  /// Canonical digest of Σ: every (peer, doc name, canonical tree) plus
  /// service inventories. Two runs ending in equal fingerprints ended in
  /// equivalent states. Cached replica copies are *soft* state and are
  /// skipped — Σ-equivalence is judged on durable documents only.
  std::string StateFingerprint() const;

  /// Pretty multi-line dump of Σ for debugging and examples.
  std::string DumpState() const;

 private:
  EventLoop loop_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<Peer>> peers_;
  /// name -> peer index; keeps AddPeer/FindPeerId O(1) so fleet bring-up
  /// (10k AddPeer calls) is linear, not quadratic.
  std::unordered_map<std::string, uint32_t> peer_index_by_name_;
  std::unique_ptr<Catalog> catalog_;
  GenericCatalog generics_;
  ReplicaManager replicas_;
  MetricRegistry metrics_;
  Tracer tracer_;
  wire::WireStats wire_stats_;
};

}  // namespace axml

#endif  // AXML_PEER_SYSTEM_H_
