#include "peer/axml_doc.h"

#include <algorithm>
#include <cstdlib>

#include "common/str_util.h"

namespace axml {

std::string NodeLocation::ToString() const {
  return StrCat(node.bits(), "@", peer.index());
}

Result<NodeLocation> NodeLocation::Parse(const std::string& text) {
  size_t at = text.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= text.size()) {
    return Status::ParseError(
        StrCat("malformed node location \"", text, "\""));
  }
  char* end = nullptr;
  uint64_t bits = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + at) {
    return Status::ParseError(
        StrCat("malformed node id in location \"", text, "\""));
  }
  uint64_t peer = std::strtoull(text.c_str() + at + 1, &end, 10);
  if (end != text.c_str() + text.size()) {
    return Status::ParseError(
        StrCat("malformed peer in location \"", text, "\""));
  }
  NodeLocation loc;
  loc.node = NodeId::FromBits(bits);
  loc.peer = PeerId(static_cast<uint32_t>(peer));
  return loc;
}

const char* ActivationModeName(ActivationMode m) {
  switch (m) {
    case ActivationMode::kManual:
      return "manual";
    case ActivationMode::kImmediate:
      return "immediate";
    case ActivationMode::kLazy:
      return "lazy";
    case ActivationMode::kAfterCall:
      return "after";
  }
  return "?";
}

Result<ActivationMode> ParseActivationMode(const std::string& name) {
  if (name == "manual") return ActivationMode::kManual;
  if (name == "immediate") return ActivationMode::kImmediate;
  if (name == "lazy") return ActivationMode::kLazy;
  if (name == "after") return ActivationMode::kAfterCall;
  return Status::ParseError(StrCat("unknown activation mode \"", name,
                                   "\""));
}

TreePtr BuildServiceCall(const ServiceCallSpec& spec, NodeIdGen* gen) {
  TreePtr sc = TreeNode::Element("sc", gen);
  sc->AddChild(MakeTextElement("peer", spec.provider, gen));
  sc->AddChild(MakeTextElement("service", spec.service, gen));
  for (size_t i = 0; i < spec.params.size(); ++i) {
    TreePtr p = TreeNode::Element(StrCat("param", i + 1), gen);
    p->AddChild(spec.params[i]->Clone(gen));
    sc->AddChild(std::move(p));
  }
  for (const NodeLocation& loc : spec.forwards) {
    sc->AddChild(MakeTextElement("forw", loc.ToString(), gen));
  }
  if (spec.mode != ActivationMode::kManual) {
    sc->AddChild(
        MakeTextElement("@mode", ActivationModeName(spec.mode), gen));
  }
  if (spec.after.valid()) {
    sc->AddChild(
        MakeTextElement("@after", std::to_string(spec.after.bits()), gen));
  }
  return sc;
}

Result<ServiceCallSpec> ParseServiceCall(const TreeNode& sc_node) {
  if (!sc_node.is_element() ||
      sc_node.label() != WellKnownLabels::Get().sc) {
    return Status::InvalidArgument("node is not an sc element");
  }
  ServiceCallSpec spec;
  spec.sc_node = sc_node.id();
  // Collect params as (index, tree) to sort by suffix number.
  std::vector<std::pair<int, TreePtr>> params;
  for (const auto& c : sc_node.children()) {
    if (!c->is_element()) continue;
    const std::string& label = c->label_text();
    if (label == "peer") {
      spec.provider = c->StringValue();
    } else if (label == "service") {
      spec.service = c->StringValue();
    } else if (StartsWith(label, "param")) {
      int idx = std::atoi(label.c_str() + 5);
      if (idx <= 0) {
        return Status::ParseError(
            StrCat("malformed parameter label \"", label, "\""));
      }
      if (c->child_count() != 1) {
        return Status::ParseError(
            StrCat(label, " must contain exactly one subtree"));
      }
      params.emplace_back(idx, c->child(0));
    } else if (label == "forw") {
      AXML_ASSIGN_OR_RETURN(NodeLocation loc,
                            NodeLocation::Parse(c->StringValue()));
      spec.forwards.push_back(loc);
    } else if (label == "@mode") {
      AXML_ASSIGN_OR_RETURN(spec.mode,
                            ParseActivationMode(c->StringValue()));
    } else if (label == "@after") {
      spec.after = NodeId::FromBits(
          std::strtoull(c->StringValue().c_str(), nullptr, 10));
      if (spec.mode == ActivationMode::kManual) {
        spec.mode = ActivationMode::kAfterCall;
      }
    }
  }
  if (spec.provider.empty()) {
    return Status::ParseError("sc element lacks a <peer> child");
  }
  if (spec.service.empty()) {
    return Status::ParseError("sc element lacks a <service> child");
  }
  std::sort(params.begin(), params.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].first != static_cast<int>(i) + 1) {
      return Status::ParseError("parameter labels are not param1..paramN");
    }
    spec.params.push_back(params[i].second);
  }
  return spec;
}

void FindServiceCalls(const TreePtr& root, std::vector<TreePtr>* out) {
  if (root->is_element() &&
      root->label() == WellKnownLabels::Get().sc) {
    out->push_back(root);
    return;  // nested calls activate once their enclosing call ran
  }
  for (const auto& c : root->children()) FindServiceCalls(c, out);
}

TreeNode* FindParent(const TreePtr& root, NodeId id) {
  if (!root->is_element()) return nullptr;
  for (const auto& c : root->children()) {
    if (c->is_element() && c->id() == id) return root.get();
  }
  for (const auto& c : root->children()) {
    if (TreeNode* p = FindParent(c, id)) return p;
  }
  return nullptr;
}

}  // namespace axml
