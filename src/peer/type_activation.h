// Type-driven call activation — the §4 "ongoing work" extension.
//
// §2.2 lists among the activation triggers: "in order to turn d0's XML
// type into some other desired type [6]". Given an AXML document (whose
// sc calls are not yet activated) and a desired schema type, this module
// computes an *activation plan*:
//
//   - activate: the sc nodes whose responses are needed to satisfy
//     content-model particles the concrete children leave unmet;
//   - forbid:   the sc nodes whose responses could never be placed in
//     the target content model (activating them would take the document
//     *away* from the desired type);
//   - optional: sc nodes whose responses fit particles that still have
//     room, but are not required (activating them is a policy choice);
//   - achievable: whether the desired type can be reached at all.
//
// The analysis is a simplification of the regular-rewriting theory of
// [Abiteboul, Milo, Benjelloun, PODS 2005]: service output types come
// from the provider's declared signature (services without a signature
// are treated as producing Any, which can fill any particle — i.e. we
// are optimistic about unknown services); each activated continuous call
// is assumed able to produce at least min-occurs-many responses.
// Matching is first-fit over the unordered (interleaving) content
// models of schema.h, which is exact for the deterministic content
// models this library defines (distinct child types per particle).

#ifndef AXML_PEER_TYPE_ACTIVATION_H_
#define AXML_PEER_TYPE_ACTIVATION_H_

#include <vector>

#include "common/status.h"
#include "peer/axml_doc.h"
#include "peer/system.h"
#include "xml/schema.h"
#include "xml/tree.h"

namespace axml {

/// What to do with the embedded calls to steer a document toward a type.
struct ActivationPlan {
  /// Calls that must be activated (their responses fill unmet
  /// min-occurs particles), in document order.
  std::vector<NodeId> activate;
  /// Calls whose responses fit no particle with room: activating them
  /// would violate the target type.
  std::vector<NodeId> forbid;
  /// Calls whose responses fit, but are not needed.
  std::vector<NodeId> optional;
  /// False when some particle's min-occurs cannot be met even with
  /// every available call activated.
  bool achievable = true;
};

/// Computes the activation plan for `root` against `target`.
/// `sys` resolves provider peers and service signatures. Fails with
/// kInvalidArgument when the root label cannot match `target` at all
/// (no activation choice can fix a wrong root).
Result<ActivationPlan> PlanActivationsForType(const TreePtr& root,
                                              const SchemaTypePtr& target,
                                              const AxmlSystem& sys);

/// The declared output type of the service an sc spec refers to, or
/// Any() when the provider/service/signature is unknown (optimistic).
SchemaTypePtr ServiceOutputType(const ServiceCallSpec& spec,
                                const AxmlSystem& sys);

}  // namespace axml

#endif  // AXML_PEER_TYPE_ACTIVATION_H_
