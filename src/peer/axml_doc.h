// AXML documents (§2.2–2.3): XML documents embedding service calls.
//
// An sc element has children:
//   <peer>provider-name-or-"any"</peer>   (required)
//   <service>service-or-class-name</service> (required)
//   <param1>..</param1> ... <paramN>..</paramN> (the call parameters)
//   <forw>location</forw>*                (§2.3 forward lists; when
//                                          absent, the default forward is
//                                          the sc node's parent)
//   @mode / @after attribute children     (activation control, §2.2)
//
// A forward location is serialized "nodeBits@peerIndex" (the node id of
// §2.3's n@p). Activation modes mirror §2.2's list: explicit user
// activation, immediate activation, lazy (when a query needs the
// result), and after-another-call.

#ifndef AXML_PEER_AXML_DOC_H_
#define AXML_PEER_AXML_DOC_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "xml/tree.h"

namespace axml {

/// A node address n@p (§2.3): where a response tree should land.
struct NodeLocation {
  NodeId node;
  PeerId peer;

  std::string ToString() const;
  static Result<NodeLocation> Parse(const std::string& text);
  bool operator==(const NodeLocation&) const = default;
};

/// When an embedded call fires (§2.2).
enum class ActivationMode {
  kManual,     ///< "control given to the user via interactive hypertext"
  kImmediate,  ///< activate as soon as the document is installed
  kLazy,       ///< activate when a query needs the result
  kAfterCall,  ///< activate after each response of another call
};

const char* ActivationModeName(ActivationMode m);
Result<ActivationMode> ParseActivationMode(const std::string& name);

/// Parsed form of one sc element.
struct ServiceCallSpec {
  /// Provider peer name, or "any" for a generic service (§2.3).
  std::string provider;
  /// Service name (or service-class name when provider is "any").
  ServiceName service;
  /// Parameter subtrees, in param1..paramN order.
  std::vector<TreePtr> params;
  /// Forward list; empty means "default: parent of the sc node".
  std::vector<NodeLocation> forwards;
  ActivationMode mode = ActivationMode::kManual;
  /// For kAfterCall: the sc node this call is chained to.
  NodeId after = NodeId::Invalid();
  /// The sc element's own node id (set when parsed from a tree).
  NodeId sc_node = NodeId::Invalid();
};

/// Constructs an sc element from `spec` (params are cloned with ids from
/// `gen`).
TreePtr BuildServiceCall(const ServiceCallSpec& spec, NodeIdGen* gen);

/// Parses an sc element (node labeled "sc").
Result<ServiceCallSpec> ParseServiceCall(const TreeNode& sc_node);

/// All sc elements in the subtree, in document order.
void FindServiceCalls(const TreePtr& root, std::vector<TreePtr>* out);

/// Parent of element `id` within `root`; nullptr when `id` is the root
/// or absent.
TreeNode* FindParent(const TreePtr& root, NodeId id);

}  // namespace axml

#endif  // AXML_PEER_AXML_DOC_H_
