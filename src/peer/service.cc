#include "peer/service.h"

#include "common/logging.h"

namespace axml {

Service Service::Declarative(ServiceName name, Query query) {
  Service s;
  s.name_ = std::move(name);
  s.arity_ = query.arity();
  s.query_ = std::move(query);
  return s;
}

Service Service::Declarative(ServiceName name, Query query, Signature sig) {
  Service s = Declarative(std::move(name), std::move(query));
  s.has_signature_ = true;
  s.signature_ = std::move(sig);
  return s;
}

Service Service::Native(ServiceName name, int arity, NativeServiceFn fn) {
  Service s;
  s.name_ = std::move(name);
  s.arity_ = arity;
  s.native_ = std::move(fn);
  return s;
}

Service Service::Native(ServiceName name, int arity, NativeServiceFn fn,
                        Signature sig) {
  Service s = Native(std::move(name), arity, std::move(fn));
  s.has_signature_ = true;
  s.signature_ = std::move(sig);
  return s;
}

Result<std::vector<TreePtr>> Service::InvokeNative(
    const std::vector<TreePtr>& params, Peer* self) const {
  if (is_declarative()) {
    return Status::Internal("InvokeNative on a declarative service");
  }
  if (native_ == nullptr) {
    return Status::Internal("service has no body");
  }
  if (has_signature_) {
    AXML_RETURN_NOT_OK(signature_.CheckInput(params));
  }
  return native_(params, self);
}

}  // namespace axml
