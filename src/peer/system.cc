#include "peer/system.h"

#include "common/logging.h"
#include "common/str_util.h"
#include "xml/tree_equal.h"
#include "xml/xml_parser.h"
#include "xml/xml_serializer.h"

namespace axml {

AxmlSystem::AxmlSystem() : AxmlSystem(Topology(LinkParams{})) {}

AxmlSystem::AxmlSystem(Topology topology)
    : network_(std::make_unique<Network>(&loop_, std::move(topology))),
      tracer_([this] { return loop_.now(); }) {
  replicas_.Bind(this);
  network_->set_tracer(&tracer_);
  // The registry retrofit: both sources read the very fields the typed
  // accessors return, so registry snapshots and accessors cannot drift.
  metrics_.RegisterSource("net", [this](MetricSink& sink) {
    network_->stats().ExportMetrics(sink);
  });
  metrics_.RegisterSource("", [this](MetricSink& sink) {
    replicas_.ExportMetrics(sink);
  });
  metrics_.RegisterSource("catalog", [this](MetricSink& sink) {
    if (catalog_ != nullptr) catalog_->ExportMetrics(sink);
  });
  metrics_.RegisterSource("wire", [this](MetricSink& sink) {
    wire_stats_.ExportMetrics(sink);
  });
  generics_.set_document_validator(
      [this](const std::string& cls, const ClassMember& m) {
        return replicas_.ValidateMember(cls, m);
      });
  generics_.set_demand_listener(
      [this](const std::string& cls, PeerId from, uint64_t demand) {
        replicas_.OnPickDemand(cls, from, demand);
      });
  // Encoded sizes are memoized per (member, doc version) — computing
  // one walks the whole tree, and the pick consults every member. The
  // hint is the *wire* size (what fetching the member would move), not
  // the XML serialization.
  auto size_memo = std::make_shared<
      std::map<std::pair<PeerId, DocName>, std::pair<uint64_t, uint64_t>>>();
  generics_.set_member_size_hint(
      [this, size_memo](const ClassMember& m) -> uint64_t {
        const uint64_t version = replicas_.Version(m.peer, m.name);
        auto it = size_memo->find({m.peer, m.name});
        if (it != size_memo->end() && it->second.first == version) {
          return it->second.second;
        }
        const Peer* holder = peer(m.peer);
        TreePtr root =
            holder == nullptr ? nullptr : holder->GetDocument(m.name);
        const uint64_t bytes =
            root == nullptr ? 0 : wire::EncodedTreeSize(*root);
        (*size_memo)[{m.peer, m.name}] = {version, bytes};
        return bytes;
      });
}

PeerId AxmlSystem::AddPeer(std::string name) {
  AXML_CHECK(name != "any") << "\"any\" is reserved (§2.3)";
  AXML_CHECK(FindPeerId(name) == PeerId::Invalid())
      << "duplicate peer name " << name;
  PeerId id(static_cast<uint32_t>(peers_.size()));
  peers_.push_back(std::make_unique<Peer>(id, std::move(name)));
  peer_index_by_name_[peers_.back()->name()] = id.index();
  peers_.back()->add_mutation_listener(
      [this, id](const DocName& doc) { replicas_.NoteMutation(id, doc); });
  if (catalog_ == nullptr) {
    catalog_ = std::make_unique<CentralCatalog>(id);
    catalog_->AttachNetwork(network_.get());
  }
  catalog_->set_peer_count(static_cast<uint32_t>(peers_.size()));
  return id;
}

Peer* AxmlSystem::peer(PeerId id) {
  if (!id.is_concrete() || id.index() >= peers_.size()) return nullptr;
  return peers_[id.index()].get();
}

const Peer* AxmlSystem::peer(PeerId id) const {
  if (!id.is_concrete() || id.index() >= peers_.size()) return nullptr;
  return peers_[id.index()].get();
}

Peer* AxmlSystem::FindPeer(const std::string& name) {
  auto it = peer_index_by_name_.find(name);
  return it == peer_index_by_name_.end() ? nullptr
                                         : peers_[it->second].get();
}

PeerId AxmlSystem::FindPeerId(const std::string& name) const {
  auto it = peer_index_by_name_.find(name);
  return it == peer_index_by_name_.end() ? PeerId::Invalid()
                                         : PeerId(it->second);
}

void AxmlSystem::SetCatalog(std::unique_ptr<Catalog> catalog) {
  catalog_ = std::move(catalog);
  if (catalog_ != nullptr) {
    catalog_->set_peer_count(static_cast<uint32_t>(peers_.size()));
    catalog_->AttachNetwork(network_.get());
  }
}

Catalog* AxmlSystem::catalog() { return catalog_.get(); }

Status AxmlSystem::InstallDocument(PeerId p, DocName name, TreePtr root) {
  Peer* host = peer(p);
  if (host == nullptr) {
    return Status::NotFound(StrCat("no peer ", p.ToString()));
  }
  AXML_RETURN_NOT_OK(host->InstallDocument(name, std::move(root)));
  if (catalog_ != nullptr) {
    catalog_->Register(ResourceKind::kDocument, name, p);
  }
  return Status::OK();
}

Status AxmlSystem::InstallDocumentXml(PeerId p, DocName name,
                                      std::string_view xml) {
  Peer* host = peer(p);
  if (host == nullptr) {
    return Status::NotFound(StrCat("no peer ", p.ToString()));
  }
  AXML_ASSIGN_OR_RETURN(TreePtr root, ParseXml(xml, host->gen()));
  return InstallDocument(p, std::move(name), std::move(root));
}

Status AxmlSystem::InstallService(PeerId p, Service service) {
  Peer* host = peer(p);
  if (host == nullptr) {
    return Status::NotFound(StrCat("no peer ", p.ToString()));
  }
  const ServiceName name = service.name();
  AXML_RETURN_NOT_OK(host->InstallService(std::move(service)));
  if (catalog_ != nullptr) {
    catalog_->Register(ResourceKind::kService, name, p);
  }
  return Status::OK();
}

Status AxmlSystem::InstallReplicatedDocument(
    const std::string& class_name, const DocName& name, const TreePtr& root,
    const std::vector<PeerId>& replicas) {
  for (PeerId p : replicas) {
    Peer* host = peer(p);
    if (host == nullptr) {
      return Status::NotFound(StrCat("no peer ", p.ToString()));
    }
    AXML_RETURN_NOT_OK(InstallDocument(p, name, root->Clone(host->gen())));
    generics_.AddDocumentMember(class_name, ClassMember{name, p});
  }
  return Status::OK();
}

void AxmlSystem::CrashPeer(PeerId p, CrashMode mode) {
  // Order matters: the network gate goes down first so nothing the
  // replica-side crash handling does (retractions, cache clears) can
  // still route traffic through the dying peer. The catalog learns
  // next, so routed backends (Chord) stop steering lookups through the
  // dead peer before any repair traffic flows.
  network_->SetPeerUp(p, false);
  if (catalog_ != nullptr) catalog_->SetPeerLive(p, false);
  replicas_.OnPeerCrash(p, mode);
}

void AxmlSystem::RejoinPeer(PeerId p) {
  // Reverse of CrashPeer: the network comes back first so rejoin-time
  // reconciliation can reach the origins it compares against.
  network_->SetPeerUp(p, true);
  if (catalog_ != nullptr) catalog_->SetPeerLive(p, true);
  replicas_.OnPeerRejoin(p);
}

std::string AxmlSystem::StateFingerprint() const {
  std::string out;
  for (const auto& p : peers_) {
    out += StrCat("peer ", p->name(), "\n");
    for (const auto& [name, root] : p->documents()) {
      // Cached replica copies are soft state, reconstructible from their
      // origins; a Σ with and without them is the same Σ.
      if (replicas_.IsCachedCopy(p->id(), name)) continue;
      out += StrCat("  doc ", name, " = ", CanonicalForm(*root), "\n");
    }
    for (const auto& [name, svc] : p->services()) {
      out += StrCat("  svc ", name, " arity=", svc.arity(),
                    svc.is_declarative()
                        ? StrCat(" query=", svc.query().text())
                        : std::string(" native"),
                    "\n");
    }
  }
  return out;
}

std::string AxmlSystem::DumpState() const {
  std::string out;
  for (const auto& p : peers_) {
    out += StrCat("=== peer ", p->name(), " (", p->id().ToString(),
                  ") ===\n");
    for (const auto& [name, root] : p->documents()) {
      out += StrCat("--- doc ", name,
                    replicas_.IsCachedCopy(p->id(), name)
                        ? " (cached replica) ---\n"
                        : " ---\n",
                    SerializePretty(*root));
    }
    for (const auto& [name, svc] : p->services()) {
      out += StrCat("--- service ", name, " ---\n",
                    svc.is_declarative() ? svc.query().text() : "(native)",
                    "\n");
    }
  }
  return out;
}

}  // namespace axml
