#include "peer/system.h"

#include "common/logging.h"
#include "common/str_util.h"
#include "xml/tree_equal.h"
#include "xml/xml_parser.h"
#include "xml/xml_serializer.h"

namespace axml {

AxmlSystem::AxmlSystem() : AxmlSystem(Topology(LinkParams{})) {}

AxmlSystem::AxmlSystem(Topology topology)
    : network_(std::make_unique<Network>(&loop_, std::move(topology))) {}

PeerId AxmlSystem::AddPeer(std::string name) {
  AXML_CHECK(name != "any") << "\"any\" is reserved (§2.3)";
  AXML_CHECK(FindPeerId(name) == PeerId::Invalid())
      << "duplicate peer name " << name;
  PeerId id(static_cast<uint32_t>(peers_.size()));
  peers_.push_back(std::make_unique<Peer>(id, std::move(name)));
  if (catalog_ == nullptr) {
    catalog_ = std::make_unique<CentralCatalog>(id);
  }
  catalog_->set_peer_count(static_cast<uint32_t>(peers_.size()));
  return id;
}

Peer* AxmlSystem::peer(PeerId id) {
  if (!id.is_concrete() || id.index() >= peers_.size()) return nullptr;
  return peers_[id.index()].get();
}

const Peer* AxmlSystem::peer(PeerId id) const {
  if (!id.is_concrete() || id.index() >= peers_.size()) return nullptr;
  return peers_[id.index()].get();
}

Peer* AxmlSystem::FindPeer(const std::string& name) {
  for (auto& p : peers_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

PeerId AxmlSystem::FindPeerId(const std::string& name) const {
  for (const auto& p : peers_) {
    if (p->name() == name) return p->id();
  }
  return PeerId::Invalid();
}

void AxmlSystem::SetCatalog(std::unique_ptr<Catalog> catalog) {
  catalog_ = std::move(catalog);
  if (catalog_ != nullptr) {
    catalog_->set_peer_count(static_cast<uint32_t>(peers_.size()));
  }
}

Catalog* AxmlSystem::catalog() { return catalog_.get(); }

Status AxmlSystem::InstallDocument(PeerId p, DocName name, TreePtr root) {
  Peer* host = peer(p);
  if (host == nullptr) {
    return Status::NotFound(StrCat("no peer ", p.ToString()));
  }
  AXML_RETURN_NOT_OK(host->InstallDocument(name, std::move(root)));
  if (catalog_ != nullptr) {
    catalog_->Register(ResourceKind::kDocument, name, p);
  }
  return Status::OK();
}

Status AxmlSystem::InstallDocumentXml(PeerId p, DocName name,
                                      std::string_view xml) {
  Peer* host = peer(p);
  if (host == nullptr) {
    return Status::NotFound(StrCat("no peer ", p.ToString()));
  }
  AXML_ASSIGN_OR_RETURN(TreePtr root, ParseXml(xml, host->gen()));
  return InstallDocument(p, std::move(name), std::move(root));
}

Status AxmlSystem::InstallService(PeerId p, Service service) {
  Peer* host = peer(p);
  if (host == nullptr) {
    return Status::NotFound(StrCat("no peer ", p.ToString()));
  }
  const ServiceName name = service.name();
  AXML_RETURN_NOT_OK(host->InstallService(std::move(service)));
  if (catalog_ != nullptr) {
    catalog_->Register(ResourceKind::kService, name, p);
  }
  return Status::OK();
}

Status AxmlSystem::InstallReplicatedDocument(
    const std::string& class_name, const DocName& name, const TreePtr& root,
    const std::vector<PeerId>& replicas) {
  for (PeerId p : replicas) {
    Peer* host = peer(p);
    if (host == nullptr) {
      return Status::NotFound(StrCat("no peer ", p.ToString()));
    }
    AXML_RETURN_NOT_OK(InstallDocument(p, name, root->Clone(host->gen())));
    generics_.AddDocumentMember(class_name, ClassMember{name, p});
  }
  return Status::OK();
}

std::string AxmlSystem::StateFingerprint() const {
  std::string out;
  for (const auto& p : peers_) {
    out += StrCat("peer ", p->name(), "\n");
    for (const auto& [name, root] : p->documents()) {
      out += StrCat("  doc ", name, " = ", CanonicalForm(*root), "\n");
    }
    for (const auto& [name, svc] : p->services()) {
      out += StrCat("  svc ", name, " arity=", svc.arity(),
                    svc.is_declarative()
                        ? StrCat(" query=", svc.query().text())
                        : std::string(" native"),
                    "\n");
    }
  }
  return out;
}

std::string AxmlSystem::DumpState() const {
  std::string out;
  for (const auto& p : peers_) {
    out += StrCat("=== peer ", p->name(), " (", p->id().ToString(),
                  ") ===\n");
    for (const auto& [name, root] : p->documents()) {
      out += StrCat("--- doc ", name, " ---\n", SerializePretty(*root));
    }
    for (const auto& [name, svc] : p->services()) {
      out += StrCat("--- service ", name, " ---\n",
                    svc.is_declarative() ? svc.query().text() : "(native)",
                    "\n");
    }
  }
  return out;
}

}  // namespace axml
