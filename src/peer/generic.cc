#include "peer/generic.h"

#include <algorithm>

#include "common/str_util.h"

namespace axml {

const char* PickPolicyName(PickPolicy p) {
  switch (p) {
    case PickPolicy::kFirst:
      return "first";
    case PickPolicy::kRandom:
      return "random";
    case PickPolicy::kNearest:
      return "nearest";
    case PickPolicy::kLeastLoaded:
      return "least_loaded";
    case PickPolicy::kCacheAware:
      return "cache_aware";
  }
  return "?";
}

void GenericCatalog::AddDocumentMember(const std::string& class_name,
                                       ClassMember member) {
  auto& v = doc_classes_[class_name];
  if (std::find(v.begin(), v.end(), member) == v.end()) {
    auto& classes = doc_member_classes_[{member.peer, member.name}];
    if (std::find(classes.begin(), classes.end(), class_name) ==
        classes.end()) {
      classes.push_back(class_name);
    }
    v.push_back(std::move(member));
  }
}

void GenericCatalog::AddServiceMember(const std::string& class_name,
                                      ClassMember member) {
  auto& v = svc_classes_[class_name];
  if (std::find(v.begin(), v.end(), member) == v.end()) {
    v.push_back(std::move(member));
  }
}

void GenericCatalog::RemoveDocumentMember(const std::string& class_name,
                                          const ClassMember& member) {
  auto it = doc_classes_.find(class_name);
  if (it == doc_classes_.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), member), v.end());
  if (v.empty()) doc_classes_.erase(it);
  auto rev = doc_member_classes_.find({member.peer, member.name});
  if (rev != doc_member_classes_.end()) {
    auto& classes = rev->second;
    classes.erase(std::remove(classes.begin(), classes.end(), class_name),
                  classes.end());
    if (classes.empty()) doc_member_classes_.erase(rev);
  }
}

void GenericCatalog::RemoveServiceMember(const std::string& class_name,
                                         const ClassMember& member) {
  auto it = svc_classes_.find(class_name);
  if (it == svc_classes_.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), member), v.end());
  if (v.empty()) svc_classes_.erase(it);
}

const std::vector<ClassMember>* GenericCatalog::DocumentMembers(
    const std::string& class_name) const {
  auto it = doc_classes_.find(class_name);
  return it == doc_classes_.end() ? nullptr : &it->second;
}

const std::vector<ClassMember>* GenericCatalog::ServiceMembers(
    const std::string& class_name) const {
  auto it = svc_classes_.find(class_name);
  return it == svc_classes_.end() ? nullptr : &it->second;
}

std::vector<std::string> GenericCatalog::DocumentClassesOf(
    const ClassMember& member) const {
  auto it = doc_member_classes_.find({member.peer, member.name});
  return it == doc_member_classes_.end() ? std::vector<std::string>{}
                                         : it->second;
}

Result<ClassMember> GenericCatalog::PickDocument(
    const std::string& class_name, PeerId from, PickPolicy policy,
    const Network& net, uint64_t nominal_bytes) {
  if (doc_validator_) {
    // Freshness sweep: a stale cached copy must not serve d@any. The
    // validator retracts stale members itself (possibly several, when a
    // retraction cascades); sweep a snapshot, then pick from what's left.
    auto it = doc_classes_.find(class_name);
    if (it != doc_classes_.end()) {
      const std::vector<ClassMember> snapshot = it->second;
      for (const ClassMember& m : snapshot) {
        (void)doc_validator_(class_name, m);
      }
    }
  }
  Result<ClassMember> picked = Pick(doc_classes_, "document", class_name,
                                    from, policy, net, nominal_bytes);
  if (picked.ok() && from.is_concrete()) {
    // Demand signal for proactive placement: who keeps resolving which
    // class. Only concrete callers count — a copy can only be seeded at
    // a real peer.
    const uint64_t demand = ++doc_pick_demand_[{class_name, from}];
    if (demand_listener_) demand_listener_(class_name, from, demand);
  }
  return picked;
}

Result<ClassMember> GenericCatalog::PickService(
    const std::string& class_name, PeerId from, PickPolicy policy,
    const Network& net, uint64_t nominal_bytes) {
  return Pick(svc_classes_, "service", class_name, from, policy, net,
              nominal_bytes);
}

Result<ClassMember> GenericCatalog::Pick(
    const std::map<std::string, std::vector<ClassMember>>& classes,
    const char* what, const std::string& class_name, PeerId from,
    PickPolicy policy, const Network& net, uint64_t nominal_bytes) {
  auto it = classes.find(class_name);
  if (it == classes.end() || it->second.empty()) {
    return Status::NotFound(
        StrCat("no members in ", what, " class \"", class_name, "\""));
  }
  const std::vector<ClassMember>& members = it->second;
  const ClassMember* chosen = nullptr;
  switch (policy) {
    case PickPolicy::kFirst:
      chosen = &members.front();
      break;
    case PickPolicy::kRandom:
      chosen = &members[rng_.Index(members.size())];
      break;
    case PickPolicy::kNearest: {
      double best = 0;
      for (const auto& m : members) {
        double t =
            net.topology().Get(m.peer, from).TransferTime(nominal_bytes);
        if (chosen == nullptr || t < best) {
          best = t;
          chosen = &m;
        }
      }
      break;
    }
    case PickPolicy::kLeastLoaded: {
      uint64_t best = 0;
      for (const auto& m : members) {
        uint64_t load = PickCount(m.peer);
        if (chosen == nullptr || load < best) {
          best = load;
          chosen = &m;
        }
      }
      break;
    }
    case PickPolicy::kCacheAware: {
      // Like kNearest but network-distance-aware for the real payload:
      // each member is ranked by the estimated time to move *its* copy
      // (size hint) over its link to the caller. A co-located replica
      // rides the free loopback link and wins outright.
      double best = 0;
      for (const auto& m : members) {
        uint64_t bytes =
            size_hint_ ? size_hint_(m) : nominal_bytes;
        if (bytes == 0) bytes = nominal_bytes;
        double t = net.topology().Get(m.peer, from).TransferTime(bytes);
        if (chosen == nullptr || t < best) {
          best = t;
          chosen = &m;
        }
      }
      break;
    }
  }
  ++pick_counts_[chosen->peer];
  return *chosen;
}

uint64_t GenericCatalog::PickCount(PeerId peer) const {
  auto it = pick_counts_.find(peer);
  return it == pick_counts_.end() ? 0 : it->second;
}

uint64_t GenericCatalog::DocumentPickDemand(const std::string& class_name,
                                            PeerId from) const {
  auto it = doc_pick_demand_.find({class_name, from});
  return it == doc_pick_demand_.end() ? 0 : it->second;
}

void GenericCatalog::ResetPickCounts() {
  pick_counts_.clear();
  doc_pick_demand_.clear();
}

}  // namespace axml
