// Web services (§2.1–2.2).
//
// A service s@p is provided by one peer, has a WSDL-like type signature
// (τin, τout), and is *continuous*: once invoked it may send any number
// of response trees ("we consider all services are continuous", §2.2).
//
// Two implementation flavors:
//  - declarative: the body is a visible AQL query. These enable the
//    optimizations of §3.3 ("the statements implementing such services
//    are visible to other peers, enabling many optimizations").
//  - native: an opaque C++ callback, standing in for arbitrary
//    WSDL-compliant services. The optimizer never rewrites through them.

#ifndef AXML_PEER_SERVICE_H_
#define AXML_PEER_SERVICE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "query/query.h"
#include "xml/schema.h"
#include "xml/tree.h"

namespace axml {

class Peer;

/// Body of a native (opaque) service: parameters in, response trees out.
using NativeServiceFn = std::function<Result<std::vector<TreePtr>>(
    const std::vector<TreePtr>& params, Peer* self)>;

/// One service definition hosted by a peer.
class Service {
 public:
  Service() = default;

  /// Declarative service: implemented by a visible query. The query's
  /// arity must equal the signature's input arity (or the signature may
  /// be omitted).
  static Service Declarative(ServiceName name, Query query);
  static Service Declarative(ServiceName name, Query query, Signature sig);

  /// Native service with an opaque body.
  static Service Native(ServiceName name, int arity, NativeServiceFn fn);
  static Service Native(ServiceName name, int arity, NativeServiceFn fn,
                        Signature sig);

  const ServiceName& name() const { return name_; }
  bool is_declarative() const { return query_.valid(); }
  /// The visible query body (declarative services only).
  const Query& query() const { return query_; }
  int arity() const { return arity_; }
  bool has_signature() const { return has_signature_; }
  const Signature& signature() const { return signature_; }
  bool continuous() const { return continuous_; }
  void set_continuous(bool c) { continuous_ = c; }

  /// Invokes a native body (is_declarative() must be false).
  Result<std::vector<TreePtr>> InvokeNative(
      const std::vector<TreePtr>& params, Peer* self) const;

 private:
  ServiceName name_;
  Query query_;
  NativeServiceFn native_;
  int arity_ = 0;
  bool has_signature_ = false;
  Signature signature_;
  bool continuous_ = true;
};

}  // namespace axml

#endif  // AXML_PEER_SERVICE_H_
