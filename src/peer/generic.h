// Generic documents and services (§2.3) and the pick functions of
// definition (9).
//
// "A generic document ed@any denotes any among a set of regular documents
// which we consider to be equivalent; we say ed is a document equivalence
// class." Equivalence classes are *declared* here (the paper's semantic
// fixpoint equivalence [5] is undecidable; deployed members are asserted
// equivalent by whoever replicates them — the GenericCatalog can
// optionally verify unordered-equality of current replica contents).
//
// pickDoc/pickService: "The implementation of an actual pick function at
// p depends on p's knowledge of the existing documents and services, p's
// preferences etc." We provide the classic policies and let benches
// compare them (EXP-6).

#ifndef AXML_PEER_GENERIC_H_
#define AXML_PEER_GENERIC_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/network.h"

namespace axml {

/// One concrete member of an equivalence class: a (name, peer) pair.
struct ClassMember {
  std::string name;  ///< document or service name on that peer
  PeerId peer;

  bool operator==(const ClassMember&) const = default;
};

/// How pickDoc / pickService choose among members.
enum class PickPolicy {
  kFirst,        ///< first registered member (baseline)
  kRandom,       ///< uniform random member
  kNearest,      ///< member whose link from the caller is fastest for a
                 ///< nominal payload
  kLeastLoaded,  ///< member with the fewest picks so far (greedy balance)
  kCacheAware,   ///< member with the fastest estimated transfer of its
                 ///< *actual* payload (per-member size hint); a replica
                 ///< co-located with the caller rides the free loopback
                 ///< link and wins outright
};

const char* PickPolicyName(PickPolicy p);

/// Registry of document and service equivalence classes.
class GenericCatalog {
 public:
  GenericCatalog() : rng_(0xA11CE) {}

  /// Declares `member` part of the document class `class_name`.
  void AddDocumentMember(const std::string& class_name, ClassMember member);
  void AddServiceMember(const std::string& class_name, ClassMember member);
  void RemoveDocumentMember(const std::string& class_name,
                            const ClassMember& member);
  void RemoveServiceMember(const std::string& class_name,
                           const ClassMember& member);

  const std::vector<ClassMember>* DocumentMembers(
      const std::string& class_name) const;
  const std::vector<ClassMember>* ServiceMembers(
      const std::string& class_name) const;

  /// Names of every document class `member` belongs to (replica
  /// advertisement joins a cached copy to its origin's classes).
  std::vector<std::string> DocumentClassesOf(const ClassMember& member) const;

  /// pickDoc (def. (9)): chooses a member of document class `class_name`
  /// for caller `from` under `policy`. `net` provides link estimates for
  /// kNearest; `nominal_bytes` is the payload size used to rank links.
  Result<ClassMember> PickDocument(const std::string& class_name,
                                   PeerId from, PickPolicy policy,
                                   const Network& net,
                                   uint64_t nominal_bytes = 4096);
  /// pickService, same contract.
  Result<ClassMember> PickService(const std::string& class_name,
                                  PeerId from, PickPolicy policy,
                                  const Network& net,
                                  uint64_t nominal_bytes = 4096);

  /// Picks recorded per peer (drives kLeastLoaded; benches read it to
  /// show balance).
  uint64_t PickCount(PeerId peer) const;
  void ResetPickCounts();

  // --- Demand signal (read-only export for replica placement) ---

  /// Document picks recorded per (class, calling peer): how often `from`
  /// resolved `class_name`@any. This is the demand signal the
  /// PlacementPolicy seeds proactive copies from.
  uint64_t DocumentPickDemand(const std::string& class_name,
                              PeerId from) const;
  /// The whole demand table, ordered by (class, caller). Cleared by
  /// ResetPickCounts alongside the per-peer counts.
  const std::map<std::pair<std::string, PeerId>, uint64_t>&
  document_pick_demand() const {
    return doc_pick_demand_;
  }

  /// Zeroes the demand one (class, caller) pair accumulated. The
  /// ReplicaManager drains a pair when its placement seed launches, so
  /// re-seeding after a later eviction takes fresh picks — the counters
  /// are otherwise lifetime-monotonic and would replay forever.
  void DrainDocumentPickDemand(const std::string& class_name, PeerId from) {
    doc_pick_demand_.erase({class_name, from});
  }

  /// Credits demand back to a (class, caller) pair. The placement waste
  /// path returns *half* the drained demand when a launched seed lands
  /// stale or refused — the picks that earned the seed were real and
  /// must not vanish with the wasted shipment, while halving guarantees
  /// a permanently failing seed decays to nothing instead of replaying
  /// every round.
  void AddDocumentPickDemand(const std::string& class_name, PeerId from,
                             uint64_t n) {
    if (n > 0) doc_pick_demand_[{class_name, from}] += n;
  }

  /// Observer fired after every counted document pick with the updated
  /// demand total for that (class, caller) pair. This is the push half
  /// of the demand signal: the ReplicaManager's watermark trigger
  /// listens here so a hot class can earn a placement round the moment
  /// it crosses the threshold instead of waiting for the next periodic
  /// tick.
  using DemandListener = std::function<void(
      const std::string& class_name, PeerId from, uint64_t demand)>;
  void set_demand_listener(DemandListener listener) {
    demand_listener_ = std::move(listener);
  }

  void set_default_policy(PickPolicy p) { default_policy_ = p; }
  PickPolicy default_policy() const { return default_policy_; }

  /// Reseeds the kRandom policy for reproducibility.
  void SeedRandom(uint64_t seed) { rng_.Seed(seed); }

  /// Freshness gate consulted before every document pick: members failing
  /// it (stale cached copies) are removed from the class on the spot. The
  /// validator may itself remove members (the ReplicaManager retracts a
  /// stale copy's advertisements); PickDocument re-reads the class after
  /// the sweep. Unset = every member validates.
  using MemberValidator =
      std::function<bool(const std::string& class_name, const ClassMember&)>;
  void set_document_validator(MemberValidator fn) {
    doc_validator_ = std::move(fn);
  }

  /// Per-member payload-size estimate for kCacheAware (actual serialized
  /// bytes of that member's copy). Unset = `nominal_bytes` for everyone.
  using MemberSizeHint = std::function<uint64_t(const ClassMember&)>;
  void set_member_size_hint(MemberSizeHint fn) {
    size_hint_ = std::move(fn);
  }

 private:
  Result<ClassMember> Pick(
      const std::map<std::string, std::vector<ClassMember>>& classes,
      const char* what, const std::string& class_name, PeerId from,
      PickPolicy policy, const Network& net, uint64_t nominal_bytes);

  std::map<std::string, std::vector<ClassMember>> doc_classes_;
  std::map<std::string, std::vector<ClassMember>> svc_classes_;
  /// Reverse index: document member -> class names. Kept in lockstep
  /// with doc_classes_; DocumentClassesOf runs on every replica
  /// advertisement and retraction, so it must not scan every class.
  std::map<std::pair<PeerId, std::string>, std::vector<std::string>>
      doc_member_classes_;
  std::map<PeerId, uint64_t> pick_counts_;
  /// (class, caller) -> document picks; the placement demand signal.
  std::map<std::pair<std::string, PeerId>, uint64_t> doc_pick_demand_;
  DemandListener demand_listener_;
  PickPolicy default_policy_ = PickPolicy::kNearest;
  Rng rng_;
  MemberValidator doc_validator_;
  MemberSizeHint size_hint_;
};

}  // namespace axml

#endif  // AXML_PEER_GENERIC_H_
