#include "peer/type_activation.h"

#include <algorithm>

#include "common/str_util.h"
#include "peer/axml_doc.h"

namespace axml {

SchemaTypePtr ServiceOutputType(const ServiceCallSpec& spec,
                                const AxmlSystem& sys) {
  if (spec.provider == "any") {
    // A generic call could resolve to any member; without a per-class
    // signature we stay optimistic.
    return SchemaType::Any();
  }
  PeerId provider = sys.FindPeerId(spec.provider);
  const Peer* host = sys.peer(provider);
  if (host == nullptr) return SchemaType::Any();
  const Service* svc = host->GetService(spec.service);
  if (svc == nullptr || !svc->has_signature() ||
      svc->signature().out == nullptr) {
    return SchemaType::Any();
  }
  return svc->signature().out;
}

namespace {

/// Recursive matcher accumulating the plan. Returns false when `node`
/// cannot reach `type` under any activation choice.
bool PlanNode(const TreePtr& node, const SchemaTypePtr& type,
              const AxmlSystem& sys, ActivationPlan* plan) {
  switch (type->kind()) {
    case SchemaType::Kind::kAny:
      return true;  // anything goes; embedded calls are all optional
    case SchemaType::Kind::kText:
      return node->is_text();
    case SchemaType::Kind::kNumber: {
      if (!node->is_text()) return false;
      double ignored;
      return ParseDouble(node->text(), &ignored);
    }
    case SchemaType::Kind::kElement:
      break;
  }
  if (!node->is_element() || node->label() != type->label()) return false;

  const std::vector<Particle>& particles = type->particles();
  std::vector<int> counts(particles.size(), 0);

  // Pass 1: concrete (non-sc) children claim particles first-fit. A
  // child claims a particle when it can *potentially* reach the
  // particle's type under some activation of its own embedded calls
  // (recursive plan), so nested deficits are planned too.
  std::vector<TreePtr> calls;
  for (const auto& child : node->children()) {
    if (child->is_element() &&
        child->label() == WellKnownLabels::Get().sc) {
      calls.push_back(child);
      continue;
    }
    bool claimed = false;
    for (size_t i = 0; i < particles.size(); ++i) {
      ActivationPlan sub;
      if (PlanNode(child, particles[i].type, sys, &sub) &&
          sub.achievable) {
        ++counts[i];
        claimed = true;
        plan->activate.insert(plan->activate.end(), sub.activate.begin(),
                              sub.activate.end());
        plan->forbid.insert(plan->forbid.end(), sub.forbid.begin(),
                            sub.forbid.end());
        plan->optional.insert(plan->optional.end(), sub.optional.begin(),
                              sub.optional.end());
        break;
      }
    }
    if (!claimed) return false;  // stray concrete child: unreachable
  }

  // Pass 2: unmet min-occurs deficits are filled by calls whose output
  // type structurally equals (or is Any for) the particle's type.
  std::vector<bool> call_used(calls.size(), false);
  for (size_t i = 0; i < particles.size(); ++i) {
    while (counts[i] < particles[i].min_occurs) {
      bool filled = false;
      for (size_t c = 0; c < calls.size(); ++c) {
        if (call_used[c]) continue;
        Result<ServiceCallSpec> spec = ParseServiceCall(*calls[c]);
        if (!spec.ok()) continue;
        SchemaTypePtr out = ServiceOutputType(*spec, sys);
        bool fits = out->kind() == SchemaType::Kind::kAny ||
                    out->Equals(*particles[i].type);
        if (!fits) continue;
        call_used[c] = true;
        plan->activate.push_back(calls[c]->id());
        ++counts[i];
        filled = true;
        break;
      }
      if (!filled) {
        plan->achievable = false;
        return true;  // root shape fine, but a deficit is unfillable
      }
    }
  }

  // Pass 3: classify the remaining calls: optional when their output
  // fits a particle with room, forbidden otherwise.
  for (size_t c = 0; c < calls.size(); ++c) {
    if (call_used[c]) continue;
    Result<ServiceCallSpec> spec = ParseServiceCall(*calls[c]);
    SchemaTypePtr out =
        spec.ok() ? ServiceOutputType(*spec, sys) : SchemaType::Any();
    bool fits_somewhere = false;
    for (size_t i = 0; i < particles.size(); ++i) {
      bool fits = out->kind() == SchemaType::Kind::kAny ||
                  out->Equals(*particles[i].type);
      if (fits && counts[i] < particles[i].max_occurs) {
        fits_somewhere = true;
        break;
      }
    }
    if (fits_somewhere) {
      plan->optional.push_back(calls[c]->id());
    } else {
      plan->forbid.push_back(calls[c]->id());
    }
  }
  return true;
}

}  // namespace

Result<ActivationPlan> PlanActivationsForType(const TreePtr& root,
                                              const SchemaTypePtr& target,
                                              const AxmlSystem& sys) {
  if (root == nullptr || target == nullptr) {
    return Status::InvalidArgument("null document or type");
  }
  ActivationPlan plan;
  if (!PlanNode(root, target, sys, &plan)) {
    return Status::InvalidArgument(StrCat(
        "document cannot reach type ", target->ToString(),
        " under any activation choice (shape mismatch)"));
  }
  return plan;
}

}  // namespace axml
