// Status / Result error-handling primitives for the axml library.
//
// Follows the Arrow/Abseil convention: fallible functions return a Status
// (or a Result<T> when they produce a value). Errors carry a code and a
// human-readable message; no exceptions cross public API boundaries.

#ifndef AXML_COMMON_STATUS_H_
#define AXML_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace axml {

/// Machine-readable category of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< document / service / peer / node missing
  kAlreadyExists,     ///< name collision (e.g. installing d@p twice)
  kParseError,        ///< XML or AQL text could not be parsed
  kTypeError,         ///< value does not conform to a schema type
  kUndefined,         ///< paper semantics leave the operation undefined
                      ///< (e.g. send of a tree the sender does not own)
  kUnsupported,       ///< valid but outside the implemented fragment
  kInternal,          ///< invariant violation inside the library
};

/// Returns a stable lowercase name for `code` ("ok", "not_found", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail but returns no value.
///
/// Cheap to copy in the OK case (empty message). Typical use:
///
///   Status s = peer.InstallDocument(doc);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status TypeError(std::string m) {
    return Status(StatusCode::kTypeError, std::move(m));
  }
  static Status Undefined(std::string m) {
    return Status(StatusCode::kUndefined, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error sum type, in the spirit of arrow::Result.
///
///   Result<Document> r = ParseDocument(text);
///   if (!r.ok()) return r.status();
///   Document doc = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from a value: makes `return value;` work.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from a non-OK status: makes `return Status::...;` work.
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

/// Propagates a non-OK Status out of the current function.
#define AXML_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::axml::Status _axml_s = (expr);        \
    if (!_axml_s.ok()) return _axml_s;      \
  } while (0)

/// Evaluates a Result expression; on error returns its status, otherwise
/// move-assigns the value into `lhs`.
#define AXML_ASSIGN_OR_RETURN(lhs, rexpr)       \
  AXML_ASSIGN_OR_RETURN_IMPL_(                  \
      AXML_CONCAT_(_axml_res, __LINE__), lhs, rexpr)
#define AXML_CONCAT_INNER_(a, b) a##b
#define AXML_CONCAT_(a, b) AXML_CONCAT_INNER_(a, b)
#define AXML_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

}  // namespace axml

#endif  // AXML_COMMON_STATUS_H_
