#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace axml {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.reserve(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding at the tail
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

std::string Rng::Identifier(size_t len) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
  static const char kAlnum[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (i == 0) {
      out.push_back(kAlpha[Index(26)]);
    } else {
      out.push_back(kAlnum[Index(36)]);
    }
  }
  return out;
}

}  // namespace axml
