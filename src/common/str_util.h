// Small string utilities shared across modules.

#ifndef AXML_COMMON_STR_UTIL_H_
#define AXML_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace axml {

/// Concatenates streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with / ends with `prefix` / `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a decimal double; returns false on any trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Formats a double the way our serializer does: integers without a
/// fractional part ("42"), otherwise shortest round-trippable form.
std::string FormatDouble(double d);

/// Escapes &, <, >, ", ' for embedding in XML text/attribute content.
std::string XmlEscape(std::string_view s);

/// Inverse of XmlEscape for the five standard entities plus decimal and
/// hexadecimal character references.
std::string XmlUnescape(std::string_view s);

}  // namespace axml

#endif  // AXML_COMMON_STR_UTIL_H_
