// Strongly-typed identifiers for the entities of the AXML model (§2 of the
// paper): peers P, documents D, services S, and nodes N.
//
// Peers are identified by a dense index into the AxmlSystem's peer table;
// human-readable peer names live in the table. Node identifiers are
// globally unique: the owning peer's index is packed into the high bits so
// a NodeId can be routed (`n@p`) without extra lookups.

#ifndef AXML_COMMON_IDS_H_
#define AXML_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>

namespace axml {

/// Identifier of a peer (an element of the paper's set P).
///
/// A dense index assigned by AxmlSystem at peer-creation time.
/// `PeerId::Any()` is the distinguished "any" used by generic documents
/// and services (`d@any`, `s@any`, §2.3).
class PeerId {
 public:
  constexpr PeerId() : index_(kInvalidIndex) {}
  constexpr explicit PeerId(uint32_t index) : index_(index) {}

  /// The "any" peer of generic references (§2.3). Never a real peer.
  static constexpr PeerId Any() { return PeerId(kAnyIndex); }
  /// Default-constructed, not-a-peer value.
  static constexpr PeerId Invalid() { return PeerId(); }

  constexpr bool valid() const { return index_ != kInvalidIndex; }
  constexpr bool is_any() const { return index_ == kAnyIndex; }
  /// True for an identifier naming one concrete peer.
  constexpr bool is_concrete() const { return valid() && !is_any(); }

  constexpr uint32_t index() const { return index_; }

  constexpr bool operator==(const PeerId&) const = default;
  constexpr bool operator<(const PeerId& o) const { return index_ < o.index_; }

  /// "p<index>", "any", or "invalid"; for diagnostics only.
  std::string ToString() const;

 private:
  static constexpr uint32_t kInvalidIndex =
      std::numeric_limits<uint32_t>::max();
  static constexpr uint32_t kAnyIndex = kInvalidIndex - 1;
  uint32_t index_;
};

std::ostream& operator<<(std::ostream& os, const PeerId& p);

/// Identifier of an XML tree node (an element of the paper's set N).
///
/// Globally unique: the high 24 bits carry the index of the peer that
/// minted the id, the low 40 bits a per-peer counter. A node that is
/// copied to another peer gets a *fresh* id there (the paper's send copies
/// data-model instances, §3.2 def. 3).
class NodeId {
 public:
  constexpr NodeId() : bits_(kInvalidBits) {}
  constexpr NodeId(PeerId minted_by, uint64_t counter)
      : bits_((static_cast<uint64_t>(minted_by.index()) << kCounterBits) |
              (counter & kCounterMask)) {}

  static constexpr NodeId Invalid() { return NodeId(); }

  constexpr bool valid() const { return bits_ != kInvalidBits; }
  constexpr PeerId minted_by() const {
    return PeerId(static_cast<uint32_t>(bits_ >> kCounterBits));
  }
  constexpr uint64_t counter() const { return bits_ & kCounterMask; }
  constexpr uint64_t bits() const { return bits_; }

  static constexpr NodeId FromBits(uint64_t bits) {
    NodeId n;
    n.bits_ = bits;
    return n;
  }

  constexpr bool operator==(const NodeId&) const = default;
  constexpr bool operator<(const NodeId& o) const { return bits_ < o.bits_; }

  /// "n<counter>@p<peer>" for diagnostics.
  std::string ToString() const;

 private:
  static constexpr int kCounterBits = 40;
  static constexpr uint64_t kCounterMask = (uint64_t{1} << kCounterBits) - 1;
  static constexpr uint64_t kInvalidBits =
      std::numeric_limits<uint64_t>::max();
  uint64_t bits_;
};

std::ostream& operator<<(std::ostream& os, const NodeId& n);

/// Document names (set D) and service names (set S) are plain strings;
/// uniqueness of (name, peer) pairs is enforced by the hosting peer.
using DocName = std::string;
using ServiceName = std::string;

}  // namespace axml

template <>
struct std::hash<axml::PeerId> {
  size_t operator()(const axml::PeerId& p) const noexcept {
    return std::hash<uint32_t>()(p.index());
  }
};

template <>
struct std::hash<axml::NodeId> {
  size_t operator()(const axml::NodeId& n) const noexcept {
    return std::hash<uint64_t>()(n.bits());
  }
};

#endif  // AXML_COMMON_IDS_H_
