#include "common/ids.h"

#include <sstream>

namespace axml {

std::string PeerId::ToString() const {
  if (!valid()) return "invalid";
  if (is_any()) return "any";
  return "p" + std::to_string(index_);
}

std::ostream& operator<<(std::ostream& os, const PeerId& p) {
  return os << p.ToString();
}

std::string NodeId::ToString() const {
  if (!valid()) return "n-invalid";
  std::ostringstream os;
  os << "n" << counter() << "@" << minted_by().ToString();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const NodeId& n) {
  return os << n.ToString();
}

}  // namespace axml
