#include "common/logging.h"

namespace axml {

namespace {
LogLevel g_level = LogLevel::kWarning;
const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level),
      fatal_(fatal),
      enabled_(fatal || static_cast<int>(level) >=
                            static_cast<int>(GetLogLevel())) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace axml
