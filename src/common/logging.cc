#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstring>
#include <string>

namespace axml {

namespace {

/// Latched process-wide level. Function-local static: the AXML_LOG_LEVEL
/// parse happens exactly once, on first use, and an explicit
/// SetLogLevel afterwards simply overwrites the latched value. Atomic
/// (relaxed — the level is advisory, not a synchronization point) so a
/// logging worker thread never races a SetLogLevel.
std::atomic<LogLevel>& Level() {
  static std::atomic<LogLevel> level =
      ParseLogLevel(std::getenv("AXML_LOG_LEVEL"), LogLevel::kWarning);
  return level;
}

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return Level().load(std::memory_order_relaxed);
}
void SetLogLevel(LogLevel level) {
  Level().store(level, std::memory_order_relaxed);
}

void ResetLogLevelForTesting() {
  SetLogLevel(ParseLogLevel(std::getenv("AXML_LOG_LEVEL"),
                            LogLevel::kWarning));
}

LogLevel ParseLogLevel(const char* s, LogLevel fallback) {
  if (s == nullptr) return fallback;
  std::string lower;
  for (const char* p = s; *p != '\0'; ++p) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return fallback;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level),
      fatal_(fatal),
      enabled_(fatal || static_cast<int>(level) >=
                            static_cast<int>(GetLogLevel())) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace axml
