// Reentrancy detection for callback-driven mutation paths.
//
// The replica layer runs user-visible callbacks (evict listeners,
// mutation listeners, subscription fan-out) *while* the data structure
// that fired them is mid-mutation. The contracts say "the listener must
// not call back into this object" — this guard enforces it: the
// non-reentrant method opens an AXML_REENTRANCY_GUARD scope; a callback
// that re-enters hits the still-armed guard and aborts with both
// locations (death-tested in tests/concurrency_contract_test.cc).
// AXML_DCHECK tier: compiled out under AXML_DISABLE_DCHECKS, a bool
// set/clear otherwise.

#ifndef AXML_COMMON_REENTRANCY_GUARD_H_
#define AXML_COMMON_REENTRANCY_GUARD_H_

#include "common/logging.h"

namespace axml {

/// Embeddable flag; one per non-reentrant region (an object may carry
/// several for independent regions).
class ReentrancyGuard {
 public:
  ReentrancyGuard() = default;
  ReentrancyGuard(const ReentrancyGuard&) = delete;
  ReentrancyGuard& operator=(const ReentrancyGuard&) = delete;

 private:
  friend class ScopedReentrancyCheck;
  bool entered_ = false;
  const char* holder_ = nullptr;  ///< description of the live entry
};

/// RAII scope marking a non-reentrant region. Prefer the macro below.
class ScopedReentrancyCheck {
 public:
  ScopedReentrancyCheck(ReentrancyGuard& guard, const char* what,
                        const char* file = __builtin_FILE(),
                        int line = __builtin_LINE())
      : guard_(guard) {
#ifndef AXML_DISABLE_DCHECKS
    if (guard_.entered_) {
      ::axml::internal::LogMessage(LogLevel::kError, file, line,
                                   /*fatal=*/true)
          << "reentrancy: " << what << " entered while "
          << (guard_.holder_ != nullptr ? guard_.holder_ : "?")
          << " is still on the stack (a listener called back into its "
             "caller)";
    }
    guard_.entered_ = true;
    guard_.holder_ = what;
#else
    (void)what;
    (void)file;
    (void)line;
#endif
  }

  ~ScopedReentrancyCheck() {
#ifndef AXML_DISABLE_DCHECKS
    guard_.entered_ = false;
    guard_.holder_ = nullptr;
#endif
  }

  ScopedReentrancyCheck(const ScopedReentrancyCheck&) = delete;
  ScopedReentrancyCheck& operator=(const ScopedReentrancyCheck&) = delete;

 private:
  ReentrancyGuard& guard_;
};

}  // namespace axml

#define AXML_REENTRANCY_CONCAT_(a, b) a##b
#define AXML_REENTRANCY_NAME_(line) \
  AXML_REENTRANCY_CONCAT_(axml_reentrancy_scope_, line)

/// Marks the enclosing scope as a non-reentrant region of `guard`.
/// `what` names the region in the abort message ("TransferCache::Put").
#define AXML_REENTRANCY_GUARD(guard, what) \
  ::axml::ScopedReentrancyCheck AXML_REENTRANCY_NAME_(__LINE__)(guard, what)

#endif  // AXML_COMMON_REENTRANCY_GUARD_H_
