// Annotated mutex wrappers: std::mutex + Clang capability attributes.
//
// The simulator itself is single-sequence (common/sequence_checker.h
// enforces that); a Mutex is for the handful of *process-wide* surfaces
// that several Systems — and, after the worker-thread split, several
// threads — genuinely share. Today that is the LabelInterner dictionary.
// Using these wrappers instead of raw std::mutex buys the
// `-Wthread-safety` analysis: members declared AXML_GUARDED_BY(mu_) can
// only be touched under a MutexLock, checked at compile time under
// Clang (thread_annotations.h; no-op under GCC).

#ifndef AXML_COMMON_MUTEX_H_
#define AXML_COMMON_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace axml {

/// A non-recursive mutual-exclusion capability. Prefer MutexLock over
/// manual lock/unlock pairs.
class AXML_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AXML_ACQUIRE() { mu_.lock(); }
  void unlock() AXML_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock: holds `mu` for the enclosing scope.
class AXML_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AXML_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() AXML_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace axml

#endif  // AXML_COMMON_MUTEX_H_
