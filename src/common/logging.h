// Minimal logging and assertion macros.
//
// AXML_CHECK* abort with a message on violated invariants (library bugs).
// AXML_LOG writes to stderr and is compiled in at all build types; the
// default level is kWarning so tests and benches stay quiet.

#ifndef AXML_COMMON_LOGGING_H_
#define AXML_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace axml {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level actually emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace axml

#define AXML_LOG(level)                                              \
  ::axml::internal::LogMessage(::axml::LogLevel::k##level, __FILE__, \
                               __LINE__)

#define AXML_CHECK(cond)                                                  \
  if (!(cond))                                                            \
  ::axml::internal::LogMessage(::axml::LogLevel::kError, __FILE__,        \
                               __LINE__, /*fatal=*/true)                  \
      << "Check failed: " #cond " "

#define AXML_CHECK_EQ(a, b) AXML_CHECK((a) == (b))
#define AXML_CHECK_NE(a, b) AXML_CHECK((a) != (b))
#define AXML_CHECK_LT(a, b) AXML_CHECK((a) < (b))
#define AXML_CHECK_LE(a, b) AXML_CHECK((a) <= (b))
#define AXML_CHECK_GT(a, b) AXML_CHECK((a) > (b))
#define AXML_CHECK_GE(a, b) AXML_CHECK((a) >= (b))

#endif  // AXML_COMMON_LOGGING_H_
