// Minimal logging and assertion macros.
//
// AXML_CHECK* abort with a message on violated invariants (library bugs).
// AXML_DCHECK* are the debug-assertion tier: on by default in every
// build (the checks guarded with them are cheap), compiled out when
// AXML_DISABLE_DCHECKS is defined.
// AXML_LOG writes to stderr and is compiled in at all build types; the
// default level is kWarning so tests and benches stay quiet. The
// AXML_LOG_LEVEL environment variable ("debug" | "info" | "warning" |
// "error", or 0-3) overrides the default at startup; a programmatic
// SetLogLevel still wins over both.

#ifndef AXML_COMMON_LOGGING_H_
#define AXML_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace axml {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level actually emitted. Initialized from the
/// AXML_LOG_LEVEL environment variable on first use (default kWarning).
/// The level cell is atomic: worker threads may log while another
/// thread adjusts the level.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Test-scoped reset hook for the process-wide level override: re-runs
/// the AXML_LOG_LEVEL parse (or restores the default), discarding any
/// SetLogLevel a test made. Tests that raise the level must restore it
/// through this, so suites sharing one binary cannot leak verbosity
/// into each other (docs/architecture.md, "process-wide state").
void ResetLogLevelForTesting();

/// Parses a level name ("debug" | "info" | "warning" | "warn" |
/// "error", case-insensitive, or the digits 0-3). Returns `fallback`
/// for null or unrecognized input. Exposed for tests; GetLogLevel runs
/// this over getenv("AXML_LOG_LEVEL") exactly once.
LogLevel ParseLogLevel(const char* s, LogLevel fallback);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace axml

#define AXML_LOG(level)                                              \
  ::axml::internal::LogMessage(::axml::LogLevel::k##level, __FILE__, \
                               __LINE__)

#define AXML_CHECK(cond)                                                  \
  if (!(cond))                                                            \
  ::axml::internal::LogMessage(::axml::LogLevel::kError, __FILE__,        \
                               __LINE__, /*fatal=*/true)                  \
      << "Check failed: " #cond " "

#define AXML_CHECK_EQ(a, b) AXML_CHECK((a) == (b))
#define AXML_CHECK_NE(a, b) AXML_CHECK((a) != (b))
#define AXML_CHECK_LT(a, b) AXML_CHECK((a) < (b))
#define AXML_CHECK_LE(a, b) AXML_CHECK((a) <= (b))
#define AXML_CHECK_GT(a, b) AXML_CHECK((a) > (b))
#define AXML_CHECK_GE(a, b) AXML_CHECK((a) >= (b))

// Debug-tier assertions: identical to AXML_CHECK unless the build opts
// out with -DAXML_DISABLE_DCHECKS (the `if (false)` form keeps the
// condition compiled — and its symbols odr-used — either way).
#ifdef AXML_DISABLE_DCHECKS
#define AXML_DCHECK(cond)                                                 \
  if (false && !(cond))                                                   \
  ::axml::internal::LogMessage(::axml::LogLevel::kError, __FILE__,        \
                               __LINE__, /*fatal=*/true)                  \
      << "DCheck failed: " #cond " "
#else
#define AXML_DCHECK(cond)                                                 \
  if (!(cond))                                                            \
  ::axml::internal::LogMessage(::axml::LogLevel::kError, __FILE__,        \
                               __LINE__, /*fatal=*/true)                  \
      << "DCheck failed: " #cond " "
#endif

#define AXML_DCHECK_EQ(a, b) AXML_DCHECK((a) == (b))
#define AXML_DCHECK_LT(a, b) AXML_DCHECK((a) < (b))
#define AXML_DCHECK_LE(a, b) AXML_DCHECK((a) <= (b))

#endif  // AXML_COMMON_LOGGING_H_
