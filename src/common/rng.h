// Deterministic pseudo-random number generation.
//
// Benchmarks and property tests need reproducible randomness that is
// independent of the standard library's distribution implementations, so
// we ship a small xoshiro256** generator with uniform helpers.

#ifndef AXML_COMMON_RNG_H_
#define AXML_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace axml {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Deterministic across platforms for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniformly chosen element index for a container of size `n` (> 0).
  size_t Index(size_t n) { return static_cast<size_t>(Uniform(n)); }

  /// Random lowercase ASCII identifier of length `len`, first char alpha.
  std::string Identifier(size_t len);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Index(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf-distributed ranks for skewed-access workloads: P(k) ∝ 1/(k+1)^s
/// over ranks [0, n). Precomputes the CDF once (O(n)); Sample is
/// O(log n) via binary search. s = 0 degenerates to uniform; the classic
/// web-caching workloads sit near s ≈ 1.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// A rank in [0, n); rank 0 is the hottest.
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k), ends at 1.0
};

}  // namespace axml

#endif  // AXML_COMMON_RNG_H_
