// Runtime-enforced single-sequence affinity.
//
// Nearly every class in this codebase used to document "not thread-safe
// (single-threaded event-loop simulation)" in a comment. SequenceChecker
// replaces that prose with an enforced contract: the owning class embeds
// a checker and every member function that touches affine state opens
// with AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_). The first
// check binds the checker to the calling thread; any later check from a
// different thread aborts with both thread ids (death-tested in
// tests/concurrency_contract_test.cc). When the planned worker-thread
// split moves an object to its home shard's thread, DetachFromSequence()
// re-arms the binding for the new owner.
//
// The checker is also a Clang capability (thread_annotations.h): members
// declared AXML_GUARDED_BY_CONTEXT(sequence_checker_) are flagged by
// `-Wthread-safety` when touched in a function that never checked, so
// the affinity contract is verified statically under Clang and
// dynamically (AXML_DCHECK tier — on by default, compiled out with
// AXML_DISABLE_DCHECKS) everywhere else.
//
// The cost per check is one relaxed atomic load and a thread-id
// compare — cheap enough for hot paths like TransferCache::Get.

#ifndef AXML_COMMON_SEQUENCE_CHECKER_H_
#define AXML_COMMON_SEQUENCE_CHECKER_H_

#include <atomic>
#include <thread>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace axml {

/// Embeddable affinity probe; see file comment. Construction does not
/// bind — the first Check() (or the first after DetachFromSequence)
/// does, so an object built on a setup thread and handed to its owning
/// sequence binds to the owner, the common pattern.
class AXML_CAPABILITY("sequence") SequenceChecker {
 public:
  SequenceChecker() = default;
  SequenceChecker(const SequenceChecker&) = delete;
  SequenceChecker& operator=(const SequenceChecker&) = delete;

  /// DCHECKs that the caller runs on the bound sequence, binding on
  /// first use. Asserts the capability to the static analysis: after a
  /// call, AXML_GUARDED_BY_CONTEXT members may be touched.
  void Check(const char* file = __builtin_FILE(),
             int line = __builtin_LINE()) const AXML_ASSERT_CAPABILITY(this) {
#ifndef AXML_DISABLE_DCHECKS
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id bound = id_.load(std::memory_order_relaxed);
    if (bound == std::thread::id()) {
      // First check since construction/detach: try to bind. Losing the
      // race means another thread bound first — fall through to the
      // mismatch check against the winner.
      if (id_.compare_exchange_strong(bound, self,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
    if (bound != self) {
      ::axml::internal::LogMessage(LogLevel::kError, file, line,
                                   /*fatal=*/true)
          << "sequence affinity violated: object bound to thread " << bound
          << " touched from thread " << self
          << " (DetachFromSequence() re-arms a deliberate hand-off)";
    }
#else
    (void)file;
    (void)line;
#endif
  }

  /// Unbinds, so the next Check() re-binds to its calling thread. Call
  /// only at a quiescent hand-off point (nothing else touching the
  /// owner), e.g. when a shard migrates to another worker.
  void DetachFromSequence() {
    id_.store(std::thread::id(), std::memory_order_relaxed);
  }

 private:
  /// Bound thread; default-constructed id == detached. Mutable + atomic
  /// so const accessors can run the (binding) check.
  mutable std::atomic<std::thread::id> id_{std::thread::id()};
};

}  // namespace axml

/// The statement form every affine member function opens with.
#define AXML_DCHECK_CALLED_ON_SEQUENCE(checker) (checker).Check()

#endif  // AXML_COMMON_SEQUENCE_CHECKER_H_
