#include "common/str_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace axml {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  // std::from_chars(double) is not available everywhere; use strtod on a
  // NUL-terminated copy.
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Try shorter representations that still round-trip.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
    if (std::strtod(shorter, nullptr) == d) return shorter;
  }
  return buf;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string XmlUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    if (s[i] != '&') {
      out.push_back(s[i++]);
      continue;
    }
    size_t semi = s.find(';', i);
    if (semi == std::string_view::npos) {
      out.push_back(s[i++]);
      continue;
    }
    std::string_view ent = s.substr(i + 1, semi - i - 1);
    if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (ent == "apos") {
      out.push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      long code = 0;
      if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
        code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
      }
      if (code > 0 && code < 128) {
        out.push_back(static_cast<char>(code));
      }
      // Non-ASCII references are dropped; the library is ASCII-oriented.
    } else {
      // Unknown entity: keep verbatim.
      out.append(s.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace axml
