// Clang thread-safety (capability) annotation macros.
//
// These wrap Clang's `-Wthread-safety` attribute set so the contracts
// the headers used to state in prose ("not thread-safe", "guarded by
// the event-loop thread") become machine-checked: a caller that touches
// an AXML_GUARDED_BY member without holding its capability, or calls an
// AXML_REQUIRES function without the lock, is a *compile error* under
// Clang. Under GCC (which has no capability analysis) every macro
// expands to nothing, so the annotated code builds identically — the
// clang-tidy CI job is where the analysis actually runs.
//
// Two kinds of capability are used in this codebase:
//  - axml::Mutex (common/mutex.h) for genuinely cross-thread state
//    (the process-wide LabelInterner dictionary);
//  - axml::SequenceChecker (common/sequence_checker.h) for
//    single-sequence affinity: AXML_GUARDED_BY_CONTEXT(sequence_checker_)
//    members may only be touched after AXML_DCHECK_CALLED_ON_SEQUENCE,
//    which both DCHECKs the affinity at runtime and asserts the
//    capability to the static analysis.
//
// docs/architecture.md ("Threading & determinism contract") is the
// canonical statement of which state falls in which class.

#ifndef AXML_COMMON_THREAD_ANNOTATIONS_H_
#define AXML_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define AXML_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AXML_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (lockable). `name` appears in
/// diagnostics ("mutex", "sequence").
#define AXML_CAPABILITY(name) AXML_THREAD_ANNOTATION_(capability(name))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (MutexLock).
#define AXML_SCOPED_CAPABILITY AXML_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define AXML_GUARDED_BY(x) AXML_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define AXML_PT_GUARDED_BY(x) AXML_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Data member touched only on the sequence checked by `checker` — the
/// sequence-affinity analogue of AXML_GUARDED_BY. Spelled separately so
/// a reader can tell a mutex-guarded member from a sequence-affine one
/// at a glance.
#define AXML_GUARDED_BY_CONTEXT(checker) \
  AXML_THREAD_ANNOTATION_(guarded_by(checker))

/// Function that must be called while holding the given capabilities.
#define AXML_REQUIRES(...) \
  AXML_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that must be called while *not* holding the given
/// capabilities (guards against self-deadlock on a non-reentrant lock).
#define AXML_EXCLUDES(...) \
  AXML_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function that acquires / releases the capability itself
/// (Mutex::lock / Mutex::unlock).
#define AXML_ACQUIRE(...) \
  AXML_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define AXML_RELEASE(...) \
  AXML_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that dynamically asserts the capability is held (aborting
/// otherwise) — after a call, the analysis treats it as held for the
/// rest of the scope. SequenceChecker::Check carries this.
#define AXML_ASSERT_CAPABILITY(x) \
  AXML_THREAD_ANNOTATION_(assert_capability(x))

/// Returns the capability guarding an object (rare; for wrappers).
#define AXML_RETURN_CAPABILITY(x) AXML_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: function deliberately skipped by the analysis. Every
/// use must carry a comment saying why.
#define AXML_NO_THREAD_SAFETY_ANALYSIS \
  AXML_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // AXML_COMMON_THREAD_ANNOTATIONS_H_
