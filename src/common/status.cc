#include "common/status.h"

namespace axml {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kTypeError:
      return "type_error";
    case StatusCode::kUndefined:
      return "undefined";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace axml
