#include "xml/digest.h"

#include <cstdio>

#include "xml/tree_equal.h"

namespace axml {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::string ContentDigest::ToString() const {
  char buf[34];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

ContentDigest DigestOf(const TreeNode& node) {
  return ContentDigest{TreeHashUnordered(node), Fnv1a(CanonicalForm(node))};
}

}  // namespace axml
