#include "xml/xml_stats.h"

#include <algorithm>

#include "common/str_util.h"
#include "xml/wire.h"
#include "xml/xml_serializer.h"

namespace axml {
namespace {

void Walk(const TreeNode& n, uint64_t depth, TreeStats* s) {
  ++s->node_count;
  s->depth = std::max(s->depth, depth);
  if (n.is_text()) {
    ++s->text_count;
    return;
  }
  ++s->element_count;
  if (n.label() == WellKnownLabels::Get().sc) ++s->service_call_count;
  LabelStats& ls = s->per_label[n.label()];
  ++ls.count;
  ls.total_bytes += n.SerializedSize();
  double v;
  if (ParseDouble(n.StringValue(), &v)) {
    if (ls.numeric_count == 0) {
      ls.min_value = ls.max_value = v;
    } else {
      ls.min_value = std::min(ls.min_value, v);
      ls.max_value = std::max(ls.max_value, v);
    }
    ++ls.numeric_count;
  }
  for (const auto& c : n.children()) Walk(*c, depth + 1, s);
}

}  // namespace

double TreeStats::AvgSubtreeBytes(LabelId label) const {
  auto it = per_label.find(label);
  if (it == per_label.end() || it->second.count == 0) return 0;
  return static_cast<double>(it->second.total_bytes) /
         static_cast<double>(it->second.count);
}

double TreeStats::EstimateSelectivityLess(LabelId label,
                                          double bound) const {
  auto it = per_label.find(label);
  if (it == per_label.end() || it->second.numeric_count == 0) return 0.5;
  const LabelStats& ls = it->second;
  if (bound <= ls.min_value) return 0.0;
  if (bound > ls.max_value) return 1.0;
  if (ls.max_value == ls.min_value) return 1.0;
  return (bound - ls.min_value) / (ls.max_value - ls.min_value);
}

std::string TreeStats::ToString() const {
  return StrCat("nodes=", node_count, " elements=", element_count,
                " text=", text_count, " depth=", depth,
                " bytes=", serialized_bytes, " sc=", service_call_count);
}

TreeStats ComputeStats(const TreeNode& tree) {
  TreeStats s;
  Walk(tree, 1, &s);
  s.serialized_bytes = wire::EncodedTreeSize(tree);
  return s;
}

}  // namespace axml
