#include "xml/sharding.h"

#include "common/logging.h"

namespace axml {

namespace {

constexpr const char kManifestLabel[] = "#manifest";
constexpr const char kDocLabel[] = "#doc";
constexpr const char kShardRefLabel[] = "#shard";
constexpr const char kShardDataLabel[] = "#shard-data";

}  // namespace

uint64_t ShardedDocument::TotalBytes() const {
  uint64_t total = manifest_bytes;
  for (const DocumentShard& s : shards) total += s.bytes;
  return total;
}

bool ShouldShard(const TreeNode& root, const ShardingConfig& cfg) {
  return root.is_element() && root.child_count() >= 2 &&
         root.SerializedSize() > cfg.max_shard_bytes;
}

ShardedDocument SplitDocument(const TreeNode& root,
                              const ShardingConfig& cfg, NodeIdGen* gen) {
  AXML_CHECK(ShouldShard(root, cfg));
  ShardedDocument out;

  // Greedy grouping in insertion order: close the current group when the
  // next child would push it over the cap. An oversized child travels
  // alone (the splitter never descends below the root's children).
  std::vector<std::vector<TreePtr>> groups;
  std::vector<TreePtr> current;
  uint64_t current_bytes = 0;
  for (const TreePtr& child : root.children()) {
    const uint64_t child_bytes = child->SerializedSize();
    if (!current.empty() &&
        current_bytes + child_bytes > cfg.max_shard_bytes) {
      groups.push_back(std::move(current));
      current.clear();
      current_bytes = 0;
    }
    current.push_back(child);
    current_bytes += child_bytes;
  }
  if (!current.empty()) groups.push_back(std::move(current));

  TreePtr manifest = TreeNode::Element(kManifestLabel, gen);
  // `#doc` wraps a childless clone of the root element, preserving its
  // label for assembly (the wrapper keeps a root labeled `#shard` from
  // masquerading as a reference).
  TreePtr doc_holder = TreeNode::Element(kDocLabel, gen);
  doc_holder->AddChild(TreeNode::Element(root.label_text(), gen));
  manifest->AddChild(std::move(doc_holder));
  for (const std::vector<TreePtr>& group : groups) {
    TreePtr content = TreeNode::Element(kShardDataLabel, gen);
    for (const TreePtr& member : group) {
      content->AddChild(member->Clone(gen));
    }
    DocumentShard shard;
    shard.id = DigestOf(*content);
    shard.bytes = content->SerializedSize();
    shard.content = std::move(content);
    manifest->AddChild(
        MakeTextElement(kShardRefLabel, shard.id.ToString(), gen));
    out.shards.push_back(std::move(shard));
  }
  out.manifest_bytes = manifest->SerializedSize();
  out.manifest = std::move(manifest);
  return out;
}

bool IsShardManifest(const TreeNode& node) {
  return node.is_element() && node.label_text() == kManifestLabel;
}

std::vector<std::string> ManifestShardIds(const TreeNode& manifest) {
  std::vector<std::string> ids;
  if (!IsShardManifest(manifest)) return ids;
  for (const TreePtr& child : manifest.children()) {
    if (child->is_element() && child->label_text() == kShardRefLabel) {
      ids.push_back(child->StringValue());
    }
  }
  return ids;
}

TreePtr AssembleDocument(
    const TreeNode& manifest,
    const std::function<TreePtr(const std::string& id_hex)>& shard_lookup,
    NodeIdGen* gen) {
  if (!IsShardManifest(manifest)) return nullptr;
  TreePtr root;
  for (const TreePtr& child : manifest.children()) {
    if (child->is_element() && child->label_text() == kDocLabel) continue;
    if (!child->is_element() || child->label_text() != kShardRefLabel) {
      return nullptr;
    }
  }
  const TreeNode* doc = nullptr;
  for (const TreePtr& child : manifest.children()) {
    if (child->is_element() && child->label_text() == kDocLabel) {
      if (doc != nullptr) return nullptr;  // two #doc children
      doc = child.get();
    }
  }
  if (doc == nullptr || doc->child_count() != 1) return nullptr;
  root = doc->child(0)->Clone(gen);
  for (const std::string& id : ManifestShardIds(manifest)) {
    TreePtr content = shard_lookup(id);
    if (content == nullptr || !content->is_element() ||
        content->label_text() != kShardDataLabel) {
      return nullptr;
    }
    for (const TreePtr& member : content->children()) {
      root->AddChild(member->Clone(gen));
    }
  }
  return root;
}

}  // namespace axml
