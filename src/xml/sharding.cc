#include "xml/sharding.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "xml/wire.h"

namespace axml {

namespace {

constexpr const char kManifestLabel[] = "#manifest";
constexpr const char kSubManifestLabel[] = "#submanifest";
constexpr const char kDocLabel[] = "#doc";
constexpr const char kShardRefLabel[] = "#shard";
constexpr const char kShardDataLabel[] = "#shard-data";

/// True when the recursive splitter can descend into `node`: an element
/// with >= 2 children, or a single-child element chain that reaches one.
bool Splittable(const TreeNode& node) {
  const TreeNode* cur = &node;
  while (cur->is_element()) {
    if (cur->child_count() >= 2) return true;
    if (cur->child_count() == 0) return false;
    cur = cur->child(0).get();
  }
  return false;  // the chain bottomed out in a text leaf
}

/// Shared state of one SplitDocument run.
struct Splitter {
  const ShardingConfig& cfg;
  NodeIdGen* gen;
  ShardedDocument* out;
  uint64_t min_bytes;  // resolved min clamp for content-defined cuts
  uint64_t modulus;    // resolved boundary modulus (>= 1)

  /// Wraps `group` into a `#shard-data` shard, records it, and appends
  /// its `#shard` reference under `manifest_node`.
  void EmitGroup(std::vector<const TreeNode*>& group, TreePtr& manifest_node) {
    if (group.empty()) return;
    TreePtr content = TreeNode::Element(kShardDataLabel, gen);
    for (const TreeNode* member : group) {
      content->AddChild(member->Clone(gen));
    }
    DocumentShard shard;
    shard.id = DigestOf(*content);
    shard.bytes = wire::EncodedTreeSize(*content);
    shard.content = std::move(content);
    manifest_node->AddChild(
        MakeTextElement(kShardRefLabel, shard.id.ToString(), gen));
    out->shards.push_back(std::move(shard));
    group.clear();
  }

  /// Groups `node`'s children into shards and sub-manifests, appending
  /// manifest entries (in document order) under `manifest_node`.
  void SplitChildren(const TreeNode& node, TreePtr& manifest_node) {
    std::vector<const TreeNode*> current;
    uint64_t current_bytes = 0;
    auto close = [&] {
      EmitGroup(current, manifest_node);
      current_bytes = 0;
    };
    for (const TreePtr& child : node.children()) {
      const uint64_t child_bytes = child->SerializedSize();
      if (child_bytes > cfg.max_shard_bytes) {
        close();
        if (Splittable(*child)) {
          // Recursive split: a nested sub-manifest stands in for the
          // oversized child; its own children group below.
          TreePtr sub = TreeNode::Element(kSubManifestLabel, gen);
          TreePtr holder = TreeNode::Element(kDocLabel, gen);
          holder->AddChild(TreeNode::Element(child->label_text(), gen));
          sub->AddChild(std::move(holder));
          SplitChildren(*child, sub);
          manifest_node->AddChild(std::move(sub));
        } else {
          // Indivisible (text leaf or a chain ending in one): it travels
          // alone, over the cap — the one shape the byte budget cannot
          // cut finer.
          ++out->oversized_leaves;
          AXML_LOG(Info) << "sharding: indivisible node of " << child_bytes
                         << " B exceeds the " << cfg.max_shard_bytes
                         << " B cap; shipping as an oversized shard";
          current.push_back(child.get());
          current_bytes = child_bytes;
          close();
        }
        continue;
      }
      // Max clamp, both modes: never let a group overflow the cap.
      if (!current.empty() &&
          current_bytes + child_bytes > cfg.max_shard_bytes) {
        close();
      }
      current.push_back(child.get());
      current_bytes += child_bytes;
      // Content-defined cut: the boundary is a property of the child's
      // content, so an insertion or deletion upstream re-synchronizes at
      // the next surviving boundary child instead of shifting every
      // later group.
      if (cfg.boundary == ShardBoundary::kContentDefined &&
          current_bytes >= min_bytes &&
          DigestOf(*child).lo % modulus == 0) {
        close();
      }
    }
    close();
  }
};

}  // namespace

const char* ShardBoundaryName(ShardBoundary b) {
  switch (b) {
    case ShardBoundary::kGreedy:
      return "greedy";
    case ShardBoundary::kContentDefined:
      return "content_defined";
  }
  return "?";
}

uint64_t ShardedDocument::TotalBytes() const {
  uint64_t total = manifest_bytes;
  for (const DocumentShard& s : shards) total += s.bytes;
  return total;
}

bool ShouldShard(const TreeNode& root, const ShardingConfig& cfg) {
  return root.is_element() && Splittable(root) &&
         root.SerializedSize() > cfg.max_shard_bytes;
}

ShardedDocument SplitDocument(const TreeNode& root,
                              const ShardingConfig& cfg, NodeIdGen* gen) {
  AXML_CHECK(ShouldShard(root, cfg));
  ShardedDocument out;

  Splitter splitter{
      cfg, gen, &out,
      /*min_bytes=*/
      std::min(cfg.min_shard_bytes != 0 ? cfg.min_shard_bytes
                                        : cfg.max_shard_bytes / 4,
               cfg.max_shard_bytes),
      /*modulus=*/std::max<uint64_t>(cfg.boundary_modulus, 1)};

  TreePtr manifest = TreeNode::Element(kManifestLabel, gen);
  // `#doc` wraps a childless clone of the root element, preserving its
  // label for assembly (the wrapper keeps a root labeled `#shard` from
  // masquerading as a reference).
  TreePtr doc_holder = TreeNode::Element(kDocLabel, gen);
  doc_holder->AddChild(TreeNode::Element(root.label_text(), gen));
  manifest->AddChild(std::move(doc_holder));
  splitter.SplitChildren(root, manifest);
  out.manifest_bytes = wire::EncodedTreeSize(*manifest);
  out.manifest = std::move(manifest);
  return out;
}

bool IsShardManifest(const TreeNode& node) {
  return node.is_element() && node.label_text() == kManifestLabel;
}

namespace {

void CollectShardIds(const TreeNode& manifest_node,
                     std::vector<std::string>* ids) {
  for (const TreePtr& child : manifest_node.children()) {
    if (!child->is_element()) continue;
    if (child->label_text() == kShardRefLabel) {
      ids->push_back(child->StringValue());
    } else if (child->label_text() == kSubManifestLabel) {
      CollectShardIds(*child, ids);
    }
  }
}

/// Rebuilds the element a (sub-)manifest node describes. Shared by the
/// top-level assembly and the nested recursion.
TreePtr AssembleNode(
    const TreeNode& manifest_node,
    const std::function<TreePtr(const std::string& id_hex)>& shard_lookup,
    NodeIdGen* gen) {
  // Validate the shape first: exactly one #doc holding one childless
  // element; every other child a #shard reference or a nested
  // #submanifest.
  const TreeNode* doc = nullptr;
  for (const TreePtr& child : manifest_node.children()) {
    if (!child->is_element()) return nullptr;
    const std::string& label = child->label_text();
    if (label == kDocLabel) {
      if (doc != nullptr) return nullptr;  // two #doc children
      doc = child.get();
    } else if (label != kShardRefLabel && label != kSubManifestLabel) {
      return nullptr;
    }
  }
  if (doc == nullptr || doc->child_count() != 1) return nullptr;
  TreePtr root = doc->child(0)->Clone(gen);
  for (const TreePtr& child : manifest_node.children()) {
    if (child.get() == doc) continue;
    if (child->label_text() == kSubManifestLabel) {
      TreePtr sub = AssembleNode(*child, shard_lookup, gen);
      if (sub == nullptr) return nullptr;
      root->AddChild(std::move(sub));
      continue;
    }
    TreePtr content = shard_lookup(child->StringValue());
    if (content == nullptr || !content->is_element() ||
        content->label_text() != kShardDataLabel) {
      return nullptr;
    }
    for (const TreePtr& member : content->children()) {
      root->AddChild(member->Clone(gen));
    }
  }
  return root;
}

}  // namespace

std::vector<std::string> ManifestShardIds(const TreeNode& manifest) {
  std::vector<std::string> ids;
  if (!IsShardManifest(manifest)) return ids;
  CollectShardIds(manifest, &ids);
  return ids;
}

std::vector<std::string> DirtiedShardIds(const ShardedDocument& before,
                                         const ShardedDocument& after) {
  std::set<std::string> old_ids;
  for (const DocumentShard& s : before.shards) {
    old_ids.insert(s.id.ToString());
  }
  std::set<std::string> seen;
  std::vector<std::string> dirty;
  for (const DocumentShard& s : after.shards) {
    std::string id = s.id.ToString();
    if (old_ids.count(id) == 0 && seen.insert(id).second) {
      dirty.push_back(std::move(id));
    }
  }
  return dirty;
}

TreePtr AssembleDocument(
    const TreeNode& manifest,
    const std::function<TreePtr(const std::string& id_hex)>& shard_lookup,
    NodeIdGen* gen) {
  if (!IsShardManifest(manifest)) return nullptr;
  return AssembleNode(manifest, shard_lookup, gen);
}

}  // namespace axml
