// Content digests of canonical tree forms.
//
// A tree is identified by a digest of its *canonical* form (tree_equal.h),
// so unordered-equal trees — however they were obtained, from whichever
// origin — digest equal. Two consumers build on this: the replica layer's
// content-addressed blob store (two copies of equal trees share one
// stored blob), and the sharding layer (sharding.h), whose shard ids are
// digests — an unchanged subtree keeps its id across document versions,
// which is what makes delta shipment possible. The digest combines the
// order-insensitive structural hash with an FNV-1a over the canonical
// serialization; a collision requires both 64-bit halves to agree on
// unequal trees.

#ifndef AXML_XML_DIGEST_H_
#define AXML_XML_DIGEST_H_

#include <cstdint>
#include <string>

#include "xml/tree.h"

namespace axml {

/// 128-bit content digest of one tree's canonical form.
struct ContentDigest {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const ContentDigest&) const = default;
  bool operator<(const ContentDigest& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  /// Lowercase hex, e.g. "3f2a...e1" (for traces and dumps).
  std::string ToString() const;
};

/// Digest of `node`'s canonical (order-insensitive) form. Unordered-equal
/// trees digest equal; node identifiers do not participate.
ContentDigest DigestOf(const TreeNode& node);

}  // namespace axml

#endif  // AXML_XML_DIGEST_H_
