#include "xml/label_interner.h"

#include "common/logging.h"

namespace axml {

LabelInterner& LabelInterner::Global() {
  // Deliberately leaked (raw new allowed here — see
  // scripts/check_source.py): trees may outlive every static
  // destruction order the linker could pick.
  static LabelInterner* interner = new LabelInterner();
  return *interner;
}

LabelInterner::LabelInterner() {
  MutexLock lock(mu_);
  SeedWellKnown();
}

void LabelInterner::SeedWellKnown() {
  // Id 0 is the empty label; the dialect labels take 1..5 in this
  // order. WellKnownLabels::Get caches these ids, so ResetForTesting
  // must reproduce the assignment exactly.
  InternLocked("");
  InternLocked("sc");
  InternLocked("peer");
  InternLocked("service");
  InternLocked("param");
  InternLocked("forw");
}

LabelId LabelInterner::InternLocked(std::string_view label) {
  auto it = ids_.find(std::string(label));
  if (it != ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(texts_.size());
  texts_.emplace_back(label);
  ids_.emplace(texts_.back(), id);
  return id;
}

LabelId LabelInterner::Intern(std::string_view label) {
  MutexLock lock(mu_);
  return InternLocked(label);
}

const std::string& LabelInterner::Text(LabelId id) const {
  MutexLock lock(mu_);
  AXML_CHECK_LT(id, texts_.size()) << "unknown LabelId " << id;
  // Safe to return by reference: texts_ is a deque (no relocation on
  // growth) and entries are never erased outside ResetForTesting.
  return texts_[id];
}

LabelId LabelInterner::Lookup(std::string_view label) const {
  MutexLock lock(mu_);
  auto it = ids_.find(std::string(label));
  return it == ids_.end() ? 0 : it->second;
}

size_t LabelInterner::size() const {
  MutexLock lock(mu_);
  return texts_.size();
}

void LabelInterner::ResetForTesting() {
  MutexLock lock(mu_);
  ids_.clear();
  texts_.clear();
  SeedWellKnown();
}

const WellKnownLabels& WellKnownLabels::Get() {
  // Leaked like the interner (allowed raw new, same reason).
  static WellKnownLabels* labels = [] {
    auto* l = new WellKnownLabels();
    l->sc = InternLabel("sc");
    l->peer = InternLabel("peer");
    l->service = InternLabel("service");
    l->param = InternLabel("param");
    l->forw = InternLabel("forw");
    return l;
  }();
  return *labels;
}

}  // namespace axml
