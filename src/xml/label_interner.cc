#include "xml/label_interner.h"

#include "common/logging.h"

namespace axml {

LabelInterner& LabelInterner::Global() {
  static LabelInterner* interner = new LabelInterner();
  return *interner;
}

LabelInterner::LabelInterner() {
  // Reserve id 0 for the empty label.
  texts_.emplace_back("");
  ids_.emplace("", 0);
}

LabelId LabelInterner::Intern(std::string_view label) {
  auto it = ids_.find(std::string(label));
  if (it != ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(texts_.size());
  texts_.emplace_back(label);
  ids_.emplace(texts_.back(), id);
  return id;
}

const std::string& LabelInterner::Text(LabelId id) const {
  AXML_CHECK_LT(id, texts_.size()) << "unknown LabelId " << id;
  return texts_[id];
}

LabelId LabelInterner::Lookup(std::string_view label) const {
  auto it = ids_.find(std::string(label));
  return it == ids_.end() ? 0 : it->second;
}

const WellKnownLabels& WellKnownLabels::Get() {
  static WellKnownLabels* labels = [] {
    auto* l = new WellKnownLabels();
    l->sc = InternLabel("sc");
    l->peer = InternLabel("peer");
    l->service = InternLabel("service");
    l->param = InternLabel("param");
    l->forw = InternLabel("forw");
    return l;
  }();
  return *labels;
}

}  // namespace axml
