// The XML type system Θ of §2.1, used for Web-service signatures
// (τin, τout).
//
// A type describes a set of trees. Because the data model is unordered,
// content models are *interleaving*: an element type carries a set of
// particles, each particle being a child type plus an occurrence range;
// a tree matches when every child matches exactly one particle and every
// particle's match count is within its range. This is the unordered
// analogue of XML-Schema's `xs:all` generalized with occurrence bounds,
// and is exactly what signatures need (membership checking + equality).
//
// Type grammar:
//   Text               — any text leaf
//   Number             — a text leaf parsing as a decimal number
//   Any                — any single tree
//   Element(label, {Particle(type, min, max)...})
//
// Service signatures (§2.1): a Signature is (τin ∈ Θ^n, τout ∈ Θ).

#ifndef AXML_XML_SCHEMA_H_
#define AXML_XML_SCHEMA_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/tree.h"

namespace axml {

class SchemaType;
using SchemaTypePtr = std::shared_ptr<const SchemaType>;

/// Child type + occurrence bounds inside an element content model.
struct Particle {
  SchemaTypePtr type;
  int min_occurs = 1;
  /// kUnbounded for '*' / '+'.
  int max_occurs = 1;

  static constexpr int kUnbounded = std::numeric_limits<int>::max();
};

/// One type of Θ. Immutable; construct via the factory functions below.
class SchemaType {
 public:
  enum class Kind { kText, kNumber, kAny, kElement };

  Kind kind() const { return kind_; }
  /// Element label (kElement only).
  LabelId label() const { return label_; }
  const std::vector<Particle>& particles() const { return particles_; }

  /// True iff `tree` is a member of this type's language.
  bool Matches(const TreeNode& tree) const;

  /// Structural type equality.
  bool Equals(const SchemaType& other) const;

  /// Human-readable form, e.g. "book{title[1,1], price[0,1]}".
  std::string ToString() const;

  static SchemaTypePtr Text();
  static SchemaTypePtr Number();
  static SchemaTypePtr Any();
  static SchemaTypePtr Element(std::string_view label,
                               std::vector<Particle> particles);

 private:
  SchemaType(Kind kind, LabelId label, std::vector<Particle> particles)
      : kind_(kind), label_(label), particles_(std::move(particles)) {}

  Kind kind_;
  LabelId label_ = 0;
  std::vector<Particle> particles_;
};

/// Particle convenience constructors.
Particle One(SchemaTypePtr t);                    ///< [1,1]
Particle Opt(SchemaTypePtr t);                    ///< [0,1]
Particle Star(SchemaTypePtr t);                   ///< [0,unbounded]
Particle Plus(SchemaTypePtr t);                   ///< [1,unbounded]
Particle Occurs(SchemaTypePtr t, int lo, int hi); ///< [lo,hi]

/// A Web-service type signature (§2.1): input arity n with one type per
/// parameter, and one output type. All trees successively sent by a
/// continuous service must conform to `out`.
struct Signature {
  std::vector<SchemaTypePtr> in;
  SchemaTypePtr out;

  /// Checks `args` against `in` (arity + membership).
  Status CheckInput(const std::vector<TreePtr>& args) const;
  /// Checks one response tree against `out`.
  Status CheckOutput(const TreeNode& tree) const;

  bool Equals(const Signature& other) const;
  std::string ToString() const;
};

}  // namespace axml

#endif  // AXML_XML_SCHEMA_H_
