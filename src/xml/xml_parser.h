// A from-scratch XML parser producing axml trees.
//
// Supported fragment (sufficient for the AXML dialect and the paper's
// workloads): elements, attributes, character data with the five standard
// entities plus numeric character references, comments, processing
// instructions and the XML declaration (skipped), CDATA sections.
// Namespaces are treated lexically (prefix kept in the label). DTDs are
// not supported.
//
// Attributes are mapped into the unordered-tree model as children labeled
// '@<name>' holding a single text leaf; the serializer inverts the
// mapping, so parse ∘ serialize is the identity on the supported
// fragment.
//
// Whitespace-only text between elements is dropped ("boundary
// whitespace"); text inside mixed content is preserved.

#ifndef AXML_XML_XML_PARSER_H_
#define AXML_XML_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/tree.h"

namespace axml {

/// Parses one XML element (with optional leading prolog/comments) from
/// `text`. Node ids are minted from `gen`.
Result<TreePtr> ParseXml(std::string_view text, NodeIdGen* gen);

/// Parses a named document.
Result<Document> ParseDocument(DocName name, std::string_view text,
                               NodeIdGen* gen);

}  // namespace axml

#endif  // AXML_XML_XML_PARSER_H_
