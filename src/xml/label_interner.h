// Interned element labels (the paper's label set L).
//
// Every element node stores a 32-bit LabelId instead of a string; the
// process-wide interner maps both ways. Interning makes label comparison
// O(1) during query evaluation and keeps tree nodes small.

#ifndef AXML_XML_LABEL_INTERNER_H_
#define AXML_XML_LABEL_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace axml {

/// Identifier of an interned label. Value 0 is the empty label.
using LabelId = uint32_t;

/// Process-wide label dictionary. This is one of the few pieces of
/// state every System — and, after the worker-thread split, every
/// thread — shares, so unlike the sequence-affine rest of the library
/// it is mutex-guarded and safe to call from any thread (`mu_` is an
/// annotated axml::Mutex; Clang's -Wthread-safety checks the guarded
/// members). Text() returns a reference that stays valid for the
/// interner's lifetime: ids are never reused and the text store never
/// relocates an interned string.
class LabelInterner {
 public:
  /// The singleton used by all trees in the process.
  static LabelInterner& Global();

  /// Returns the id for `label`, interning it on first use.
  LabelId Intern(std::string_view label) AXML_EXCLUDES(mu_);

  /// Returns the label text for `id`. `id` must have been produced by
  /// Intern().
  const std::string& Text(LabelId id) const AXML_EXCLUDES(mu_);

  /// Returns the id if `label` was interned before, 0 otherwise. Note the
  /// empty label also maps to 0; callers that care should check emptiness.
  LabelId Lookup(std::string_view label) const AXML_EXCLUDES(mu_);

  size_t size() const AXML_EXCLUDES(mu_);

  /// Test-scoped reset hook: drops every interned label and re-interns
  /// the well-known dialect labels at their original ids, so one test
  /// binary's suites cannot leak dictionary growth into each other.
  /// Only valid while no tree, schema or cached LabelId from before the
  /// reset is still alive (their ids would dangle) — call it from test
  /// teardown, never from library code.
  void ResetForTesting() AXML_EXCLUDES(mu_);

 private:
  LabelInterner();

  /// Seeds id 0 (the empty label) and the WellKnownLabels ids; shared
  /// by the constructor and ResetForTesting so reset reproduces the
  /// exact startup id assignment.
  void SeedWellKnown() AXML_REQUIRES(mu_);

  LabelId InternLocked(std::string_view label) AXML_REQUIRES(mu_);

  mutable Mutex mu_;
  std::unordered_map<std::string, LabelId> ids_ AXML_GUARDED_BY(mu_);
  /// deque, not vector: Text() hands out references that must survive
  /// later Intern() growth.
  std::deque<std::string> texts_ AXML_GUARDED_BY(mu_);
};

/// Shorthands over the global interner.
inline LabelId InternLabel(std::string_view label) {
  return LabelInterner::Global().Intern(label);
}
inline const std::string& LabelText(LabelId id) {
  return LabelInterner::Global().Text(id);
}

/// Well-known labels of the AXML dialect (§2.2–2.3 of the paper).
/// Their ids are fixed at interner startup (and re-seeded identically
/// by ResetForTesting), so cached copies never dangle.
struct WellKnownLabels {
  LabelId sc;       ///< service-call element
  LabelId peer;     ///< provider peer child of sc
  LabelId service;  ///< service-name child of sc
  LabelId param;    ///< parameter child prefix: param1, param2, ...
  LabelId forw;     ///< forward-list child of sc
  static const WellKnownLabels& Get();
};

}  // namespace axml

#endif  // AXML_XML_LABEL_INTERNER_H_
