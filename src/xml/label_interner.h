// Interned element labels (the paper's label set L).
//
// Every element node stores a 32-bit LabelId instead of a string; the
// process-wide interner maps both ways. Interning makes label comparison
// O(1) during query evaluation and keeps tree nodes small.

#ifndef AXML_XML_LABEL_INTERNER_H_
#define AXML_XML_LABEL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace axml {

/// Identifier of an interned label. Value 0 is the empty label.
using LabelId = uint32_t;

/// Process-wide label dictionary. Not thread-safe (the whole library runs
/// single-threaded inside the simulator).
class LabelInterner {
 public:
  /// The singleton used by all trees in the process.
  static LabelInterner& Global();

  /// Returns the id for `label`, interning it on first use.
  LabelId Intern(std::string_view label);

  /// Returns the label text for `id`. `id` must have been produced by
  /// Intern().
  const std::string& Text(LabelId id) const;

  /// Returns the id if `label` was interned before, 0 otherwise. Note the
  /// empty label also maps to 0; callers that care should check emptiness.
  LabelId Lookup(std::string_view label) const;

  size_t size() const { return texts_.size(); }

 private:
  LabelInterner();

  std::unordered_map<std::string, LabelId> ids_;
  std::vector<std::string> texts_;
};

/// Shorthands over the global interner.
inline LabelId InternLabel(std::string_view label) {
  return LabelInterner::Global().Intern(label);
}
inline const std::string& LabelText(LabelId id) {
  return LabelInterner::Global().Text(id);
}

/// Well-known labels of the AXML dialect (§2.2–2.3 of the paper).
struct WellKnownLabels {
  LabelId sc;       ///< service-call element
  LabelId peer;     ///< provider peer child of sc
  LabelId service;  ///< service-name child of sc
  LabelId param;    ///< parameter child prefix: param1, param2, ...
  LabelId forw;     ///< forward-list child of sc
  static const WellKnownLabels& Get();
};

}  // namespace axml

#endif  // AXML_XML_LABEL_INTERNER_H_
