#include "xml/tree.h"

#include <algorithm>

#include "common/logging.h"
#include "xml/xml_serializer.h"

namespace axml {

TreePtr TreeNode::Element(LabelId label, NodeId id) {
  auto n = TreePtr(new TreeNode());
  n->is_element_ = true;
  n->label_ = label;
  n->id_ = id;
  return n;
}

TreePtr TreeNode::Element(std::string_view label, NodeIdGen* gen) {
  AXML_CHECK(gen != nullptr);
  return Element(InternLabel(label), gen->Next());
}

TreePtr TreeNode::Text(std::string text) {
  auto n = TreePtr(new TreeNode());
  n->is_element_ = false;
  n->text_ = std::move(text);
  return n;
}

const TreePtr& TreeNode::AddChild(TreePtr child) {
  AXML_CHECK(is_element_) << "text nodes cannot have children";
  AXML_CHECK(child != nullptr);
  children_.push_back(std::move(child));
  return children_.back();
}

void TreeNode::InsertChild(size_t i, TreePtr child) {
  AXML_CHECK(is_element_) << "text nodes cannot have children";
  AXML_CHECK(child != nullptr);
  AXML_CHECK_LE(i, children_.size());
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(i),
                   std::move(child));
}

void TreeNode::RemoveChild(size_t i) {
  AXML_CHECK_LT(i, children_.size());
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(i));
}

bool TreeNode::RemoveDescendant(NodeId id) {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i]->is_element() && children_[i]->id() == id) {
      RemoveChild(i);
      return true;
    }
  }
  for (auto& c : children_) {
    if (c->is_element() && c->RemoveDescendant(id)) return true;
  }
  return false;
}

void TreeNode::ReplaceChild(size_t i, TreePtr child) {
  AXML_CHECK_LT(i, children_.size());
  AXML_CHECK(child != nullptr);
  children_[i] = std::move(child);
}

TreePtr TreeNode::Clone(NodeIdGen* gen) const {
  if (is_text()) return Text(text_);
  TreePtr copy = Element(label_, gen->Next());
  for (const auto& c : children_) copy->AddChild(c->Clone(gen));
  return copy;
}

TreePtr TreeNode::CloneSameIds() const {
  if (is_text()) return Text(text_);
  TreePtr copy = Element(label_, id_);
  for (const auto& c : children_) copy->AddChild(c->CloneSameIds());
  return copy;
}

TreeNode* TreeNode::FindNode(NodeId id) {
  if (is_element() && id_ == id) return this;
  for (auto& c : children_) {
    if (TreeNode* found = c->FindNode(id)) return found;
  }
  return nullptr;
}

const TreeNode* TreeNode::FindNode(NodeId id) const {
  return const_cast<TreeNode*>(this)->FindNode(id);
}

size_t TreeNode::CountNodes() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->CountNodes();
  return n;
}

size_t TreeNode::Depth() const {
  size_t d = 0;
  for (const auto& c : children_) d = std::max(d, c->Depth());
  return d + 1;
}

bool TreeNode::ContainsServiceCall() const {
  if (is_element() && label_ == WellKnownLabels::Get().sc) return true;
  for (const auto& c : children_) {
    if (c->ContainsServiceCall()) return true;
  }
  return false;
}

std::string TreeNode::StringValue() const {
  if (is_text()) return text_;
  std::string out;
  for (const auto& c : children_) out += c->StringValue();
  return out;
}

TreeNode* TreeNode::FirstChildLabeled(LabelId label) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->label() == label) return c.get();
  }
  return nullptr;
}

size_t TreeNode::SerializedSize() const {
  return SerializeCompact(*this).size();
}

TreePtr MakeTextElement(std::string_view label, std::string text,
                        NodeIdGen* gen) {
  TreePtr e = TreeNode::Element(label, gen);
  e->AddChild(TreeNode::Text(std::move(text)));
  return e;
}

TreePtr MakeElement(std::string_view label, std::vector<TreePtr> children,
                    NodeIdGen* gen) {
  TreePtr e = TreeNode::Element(label, gen);
  for (auto& c : children) e->AddChild(std::move(c));
  return e;
}

}  // namespace axml
