// Unordered tree equality and canonical forms (§2.1, §2.3).
//
// The paper's document-equivalence ≡ is defined in terms of fixpoints of
// service-call activation [5] and is not computable in general. Deployed
// systems need a decidable, conservative check; we provide *unordered
// structural equality*: two trees are equal iff their labels/text match
// and their child multisets are equal (node identifiers are ignored —
// copies are equal to their originals). This is exactly the equality used
// to compare final system states in the rule-equivalence property tests,
// and the building block the GenericCatalog uses when verifying declared
// equivalence classes.

#ifndef AXML_XML_TREE_EQUAL_H_
#define AXML_XML_TREE_EQUAL_H_

#include <string>

#include "xml/tree.h"

namespace axml {

/// Canonical serialization: children sorted by their own canonical form.
/// Two trees are unordered-equal iff their canonical forms are identical.
/// Costs O(n log n) comparisons over subtree strings.
std::string CanonicalForm(const TreeNode& node);

/// Unordered deep equality, ignoring node identifiers and sibling order.
bool TreesEqualUnordered(const TreeNode& a, const TreeNode& b);

/// 64-bit order-insensitive structural hash consistent with
/// TreesEqualUnordered (equal trees hash equal).
uint64_t TreeHashUnordered(const TreeNode& node);

}  // namespace axml

#endif  // AXML_XML_TREE_EQUAL_H_
