#include "xml/xml_parser.h"

#include <cctype>

#include "common/str_util.h"

namespace axml {
namespace {

/// Recursive-descent parser over a string_view. Tracks line numbers for
/// error messages.
class Parser {
 public:
  Parser(std::string_view text, NodeIdGen* gen) : text_(text), gen_(gen) {}

  Result<TreePtr> ParseRoot() {
    SkipProlog();
    if (AtEnd()) return Error("no root element");
    AXML_ASSIGN_OR_RETURN(TreePtr root, ParseElement());
    SkipMisc();
    if (!AtEnd()) return Error("trailing content after root element");
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }
  void Advance() {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }
  bool Consume(char c) {
    if (!AtEnd() && Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeSeq(std::string_view s) {
    if (text_.substr(pos_, s.size()) == s) {
      for (size_t i = 0; i < s.size(); ++i) Advance();
      return true;
    }
    return false;
  }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(std::string msg) const {
    return Status::ParseError(StrCat("line ", line_, ": ", msg));
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  std::string_view ParseName() {
    size_t start = pos_;
    if (!AtEnd() && IsNameStart(Peek())) {
      Advance();
      while (!AtEnd() && IsNameChar(Peek())) Advance();
    }
    return text_.substr(start, pos_ - start);
  }

  /// Skips the XML declaration, comments, PIs and whitespace before or
  /// after the root element.
  void SkipProlog() { SkipMisc(); }

  void SkipMisc() {
    for (;;) {
      SkipWs();
      if (ConsumeSeq("<?")) {
        while (!AtEnd() && !ConsumeSeq("?>")) Advance();
      } else if (ConsumeSeq("<!--")) {
        while (!AtEnd() && !ConsumeSeq("-->")) Advance();
      } else {
        return;
      }
    }
  }

  Result<TreePtr> ParseElement() {
    if (!Consume('<')) return Error("expected '<'");
    std::string_view name = ParseName();
    if (name.empty()) return Error("expected element name");
    TreePtr elem = TreeNode::Element(name, gen_);

    // Attributes.
    for (;;) {
      SkipWs();
      if (AtEnd()) return Error("unexpected end inside element tag");
      if (Peek() == '/' || Peek() == '>') break;
      std::string_view attr = ParseName();
      if (attr.empty()) return Error("expected attribute name");
      SkipWs();
      if (!Consume('=')) return Error("expected '=' after attribute name");
      SkipWs();
      char quote = AtEnd() ? '\0' : Peek();
      if (quote != '"' && quote != '\'') {
        return Error("expected quoted attribute value");
      }
      Advance();
      size_t vstart = pos_;
      while (!AtEnd() && Peek() != quote) Advance();
      if (AtEnd()) return Error("unterminated attribute value");
      std::string value = XmlUnescape(text_.substr(vstart, pos_ - vstart));
      Advance();  // closing quote
      TreePtr attr_node =
          TreeNode::Element(StrCat("@", attr), gen_);
      attr_node->AddChild(TreeNode::Text(std::move(value)));
      elem->AddChild(std::move(attr_node));
    }

    if (ConsumeSeq("/>")) return elem;
    if (!Consume('>')) return Error("expected '>'");

    // Content.
    std::string pending_text;
    auto flush_text = [&] {
      if (pending_text.empty()) return;
      // Drop whitespace-only runs between elements; trim boundary
      // whitespace from mixed-content runs so indented (pretty) output
      // reparses to the same tree.
      std::string unescaped = XmlUnescape(pending_text);
      std::string_view trimmed = StripWhitespace(unescaped);
      if (!trimmed.empty()) {
        elem->AddChild(TreeNode::Text(std::string(trimmed)));
      }
      pending_text.clear();
    };

    for (;;) {
      if (AtEnd()) return Error("unexpected end inside element content");
      if (Peek() == '<') {
        if (ConsumeSeq("<!--")) {
          while (!AtEnd() && !ConsumeSeq("-->")) Advance();
          continue;
        }
        if (ConsumeSeq("<![CDATA[")) {
          size_t cstart = pos_;
          while (!AtEnd() && text_.substr(pos_, 3) != "]]>") Advance();
          if (AtEnd()) return Error("unterminated CDATA section");
          pending_text.append(text_.substr(cstart, pos_ - cstart));
          ConsumeSeq("]]>");
          continue;
        }
        if (ConsumeSeq("<?")) {
          while (!AtEnd() && !ConsumeSeq("?>")) Advance();
          continue;
        }
        if (PeekAt(1) == '/') {
          flush_text();
          Advance();  // '<'
          Advance();  // '/'
          std::string_view close = ParseName();
          if (close != elem->label_text()) {
            return Error(StrCat("mismatched closing tag '", close,
                                "', expected '", elem->label_text(), "'"));
          }
          SkipWs();
          if (!Consume('>')) return Error("expected '>' in closing tag");
          return elem;
        }
        flush_text();
        AXML_ASSIGN_OR_RETURN(TreePtr child, ParseElement());
        elem->AddChild(std::move(child));
      } else {
        pending_text.push_back(Peek());
        Advance();
      }
    }
  }

  std::string_view text_;
  NodeIdGen* gen_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<TreePtr> ParseXml(std::string_view text, NodeIdGen* gen) {
  Parser p(text, gen);
  return p.ParseRoot();
}

Result<Document> ParseDocument(DocName name, std::string_view text,
                               NodeIdGen* gen) {
  AXML_ASSIGN_OR_RETURN(TreePtr root, ParseXml(text, gen));
  return Document{std::move(name), std::move(root)};
}

}  // namespace axml
