// Serialization of trees to XML text.
//
// Two forms:
//  - compact: no insignificant whitespace; this is the wire format whose
//    byte length the network simulator charges for transfers.
//  - pretty: indented, for documentation, examples and debugging.
//
// Children whose label begins with '@' and whose content is a single text
// leaf serialize as XML attributes, mirroring how the parser maps
// attributes into the unordered-tree model.

#ifndef AXML_XML_XML_SERIALIZER_H_
#define AXML_XML_XML_SERIALIZER_H_

#include <string>

#include "xml/tree.h"

namespace axml {

/// Compact single-line serialization (wire format).
std::string SerializeCompact(const TreeNode& node);

/// Indented serialization with 2-space indents and trailing newline.
std::string SerializePretty(const TreeNode& node);

}  // namespace axml

#endif  // AXML_XML_XML_SERIALIZER_H_
