#include "xml/xml_serializer.h"

#include "common/str_util.h"

namespace axml {
namespace {

bool IsAttributeChild(const TreeNode& n) {
  return n.is_element() && !n.label_text().empty() &&
         n.label_text()[0] == '@' && n.child_count() == 1 &&
         n.child(0)->is_text();
}

void SerializeNode(const TreeNode& node, bool pretty, int indent,
                   std::string* out) {
  if (node.is_text()) {
    if (pretty) out->append(static_cast<size_t>(indent) * 2, ' ');
    out->append(XmlEscape(node.text()));
    if (pretty) out->push_back('\n');
    return;
  }
  if (pretty) out->append(static_cast<size_t>(indent) * 2, ' ');
  out->push_back('<');
  out->append(node.label_text());
  // Attributes first.
  size_t element_children = 0;
  for (const auto& c : node.children()) {
    if (IsAttributeChild(*c)) {
      out->push_back(' ');
      out->append(c->label_text().substr(1));
      out->append("=\"");
      out->append(XmlEscape(c->child(0)->text()));
      out->push_back('"');
    } else {
      ++element_children;
    }
  }
  if (element_children == 0) {
    out->append("/>");
    if (pretty) out->push_back('\n');
    return;
  }
  // Pretty form keeps a single text child inline (<name>value</name>) so
  // indentation never injects whitespace into character data.
  if (pretty && element_children == 1) {
    const TreeNode* only = nullptr;
    for (const auto& c : node.children()) {
      if (!IsAttributeChild(*c)) only = c.get();
    }
    if (only != nullptr && only->is_text()) {
      out->push_back('>');
      out->append(XmlEscape(only->text()));
      out->append("</");
      out->append(node.label_text());
      out->push_back('>');
      out->push_back('\n');
      return;
    }
  }
  out->push_back('>');
  if (pretty) out->push_back('\n');
  for (const auto& c : node.children()) {
    if (!IsAttributeChild(*c)) {
      SerializeNode(*c, pretty, indent + 1, out);
    }
  }
  if (pretty) out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append("</");
  out->append(node.label_text());
  out->push_back('>');
  if (pretty) out->push_back('\n');
}

}  // namespace

std::string SerializeCompact(const TreeNode& node) {
  std::string out;
  SerializeNode(node, /*pretty=*/false, 0, &out);
  return out;
}

std::string SerializePretty(const TreeNode& node) {
  std::string out;
  SerializeNode(node, /*pretty=*/true, 0, &out);
  return out;
}

}  // namespace axml
