#include "xml/tree_equal.h"

#include <algorithm>
#include <vector>

#include "common/str_util.h"

namespace axml {

std::string CanonicalForm(const TreeNode& node) {
  if (node.is_text()) {
    return StrCat("t:", node.text());
  }
  std::vector<std::string> kids;
  kids.reserve(node.child_count());
  for (const auto& c : node.children()) {
    kids.push_back(CanonicalForm(*c));
  }
  std::sort(kids.begin(), kids.end());
  std::string out = StrCat("e:", node.label_text(), "{");
  for (auto& k : kids) {
    out += k;
    out.push_back('|');
  }
  out.push_back('}');
  return out;
}

bool TreesEqualUnordered(const TreeNode& a, const TreeNode& b) {
  if (a.is_text() != b.is_text()) return false;
  if (a.is_text()) return a.text() == b.text();
  if (a.label() != b.label()) return false;
  if (a.child_count() != b.child_count()) return false;
  // Fast path: hashes differ => unequal.
  if (TreeHashUnordered(a) != TreeHashUnordered(b)) return false;
  return CanonicalForm(a) == CanonicalForm(b);
}

namespace {
uint64_t HashBytes(const std::string& s, uint64_t seed) {
  // FNV-1a with a seed mix.
  uint64_t h = 1469598103934665603ull ^ (seed * 0x9E3779B97F4A7C15ull);
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

uint64_t TreeHashUnordered(const TreeNode& node) {
  if (node.is_text()) {
    return HashBytes(node.text(), /*seed=*/1);
  }
  // Combine children hashes with an order-insensitive fold (sum + xor of
  // a mixed form), then mix with the label.
  uint64_t sum = 0, x = 0;
  for (const auto& c : node.children()) {
    uint64_t h = TreeHashUnordered(*c);
    uint64_t mixed = h * 0xBF58476D1CE4E5B9ull;
    mixed ^= mixed >> 31;
    sum += mixed;
    x ^= h;
  }
  uint64_t h = HashBytes(node.label_text(), /*seed=*/2);
  h ^= sum + 0x94D049BB133111EBull + (h << 6) + (h >> 2);
  h ^= x * 0x2545F4914F6CDD1Dull;
  return h;
}

}  // namespace axml
