// Document statistics used by the optimizer's cost model (§3.3 relies on
// "the resulting data set, typically smaller" — the cost model must be
// able to estimate result sizes to decide when a rewrite pays off).

#ifndef AXML_XML_XML_STATS_H_
#define AXML_XML_XML_STATS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "xml/tree.h"

namespace axml {

/// Per-label aggregates collected in one pass over a tree.
struct LabelStats {
  uint64_t count = 0;          ///< elements with this label
  uint64_t total_bytes = 0;    ///< serialized bytes of those subtrees
  uint64_t numeric_count = 0;  ///< how many have numeric string values
  double min_value = 0;        ///< min/max over numeric string values
  double max_value = 0;
};

/// Summary of one tree/document.
struct TreeStats {
  uint64_t node_count = 0;     ///< elements + text leaves
  uint64_t element_count = 0;
  uint64_t text_count = 0;
  uint64_t depth = 0;
  /// Encoded wire size (xml/wire.h) — what shipping the tree costs.
  uint64_t serialized_bytes = 0;
  uint64_t service_call_count = 0;  ///< number of sc elements
  std::unordered_map<LabelId, LabelStats> per_label;

  /// Average serialized size of elements labeled `label` (0 if none).
  double AvgSubtreeBytes(LabelId label) const;
  /// Fraction of `label` elements whose numeric value is < `bound`,
  /// assuming a uniform distribution between observed min and max.
  /// Returns 0.5 when nothing is known (textbook default selectivity).
  double EstimateSelectivityLess(LabelId label, double bound) const;

  std::string ToString() const;
};

/// Collects statistics in one traversal.
TreeStats ComputeStats(const TreeNode& tree);

}  // namespace axml

#endif  // AXML_XML_XML_STATS_H_
