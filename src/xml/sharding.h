// Subtree sharding: splitting one large document into content-addressed
// shards so partial copies become possible.
//
// The replica layer materializes transferred trees as local copies (the
// paper's rule (13)), but a whole-tree copy is all-or-nothing: a document
// bigger than a holder's byte budget can never be cached, refreshed or
// proactively placed, no matter how hot its subtrees are. The splitter
// here partitions an unranked tree into *top-level-subtree shards*:
//
//  - the root's children are grouped greedily, in insertion order, into
//    shards whose serialized size stays under ShardingConfig::
//    max_shard_bytes (a single oversized subtree becomes its own shard —
//    the splitter never descends below the root's children);
//  - each shard's id is the ContentDigest of its canonical form, so an
//    unchanged group of subtrees keeps its id across document versions —
//    a mutation of one subtree dirties exactly the shard holding it, and
//    only that shard must cross the wire again;
//  - a small root *manifest* shard records the document's root element
//    and the ordered list of child-shard ids. The manifest is itself a
//    tree, so it ships, caches and dedups through the same machinery as
//    any other content.
//
// Reassembly (AssembleDocument) is exact up to node identifiers: the
// assembled tree is unordered-equal to the original (tree_equal.h), which
// is the only equality the system observes.
//
// Shard-id stability caveat: group boundaries are chosen by accumulated
// serialized size, so a mutation that changes a subtree's size can shift
// the boundaries of *later* groups and dirty their ids too. Same-size
// (or same-group-composition) mutations dirty exactly one shard; the
// worst case degrades toward whole-document shipment, never past it.

#ifndef AXML_XML_SHARDING_H_
#define AXML_XML_SHARDING_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "xml/digest.h"
#include "xml/tree.h"

namespace axml {

/// Knobs for the splitter.
struct ShardingConfig {
  /// Target cap on one shard's serialized bytes. Also the sharding
  /// threshold: a document at or below this size ships whole. A single
  /// root child bigger than the cap still becomes one (oversized) shard.
  uint64_t max_shard_bytes = 64 * 1024;
};

/// One data shard: a group of the root's children, wrapped for shipping.
struct DocumentShard {
  /// Digest of `content`'s canonical form — the shard's stable identity.
  ContentDigest id;
  /// A synthetic `#shard-data` element whose children are the group's
  /// subtrees (clones; the original tree is never aliased).
  TreePtr content;
  /// SerializedSize of `content` (what shipping this shard costs).
  uint64_t bytes = 0;
};

/// A split document: the manifest plus its data shards, in manifest
/// order.
struct ShardedDocument {
  /// `#manifest` element: one childless `#doc` clone of the original
  /// root, then one `#shard` text child per data shard (text = id hex).
  TreePtr manifest;
  uint64_t manifest_bytes = 0;
  std::vector<DocumentShard> shards;

  /// Manifest + data bytes: what shipping everything would cost.
  uint64_t TotalBytes() const;
};

/// True when `root` is worth splitting under `cfg`: an element with at
/// least two children whose serialized size exceeds the shard cap.
/// Everything else ships whole.
bool ShouldShard(const TreeNode& root, const ShardingConfig& cfg);

/// Splits `root` into a manifest and size-capped data shards. Shard
/// contents are clones minted from `gen`; `root` is not modified.
/// Precondition: ShouldShard(root, cfg).
ShardedDocument SplitDocument(const TreeNode& root,
                              const ShardingConfig& cfg, NodeIdGen* gen);

/// True when `node` looks like a manifest produced by SplitDocument.
bool IsShardManifest(const TreeNode& node);

/// The ordered shard-id hex strings a manifest references (empty when
/// `manifest` is not a manifest).
std::vector<std::string> ManifestShardIds(const TreeNode& manifest);

/// Rebuilds the document a manifest describes. `shard_lookup` maps a
/// shard-id hex string to that shard's `#shard-data` content tree (as
/// stored by a cache or carried by a shipment); returning nullptr aborts
/// the assembly. The result is built from clones minted from `gen` —
/// callers may hand it out without aliasing cache blobs. Returns nullptr
/// when `manifest` is malformed or any shard is missing.
TreePtr AssembleDocument(
    const TreeNode& manifest,
    const std::function<TreePtr(const std::string& id_hex)>& shard_lookup,
    NodeIdGen* gen);

}  // namespace axml

#endif  // AXML_XML_SHARDING_H_
