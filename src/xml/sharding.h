// Subtree sharding: splitting one large document into content-addressed
// shards so partial copies become possible.
//
// The replica layer materializes transferred trees as local copies (the
// paper's rule (13)), but a whole-tree copy is all-or-nothing: a document
// bigger than a holder's byte budget can never be cached, refreshed or
// proactively placed, no matter how hot its subtrees are. The splitter
// here partitions an unranked tree into subtree shards:
//
//  - the root's children are grouped, in insertion order, into shards
//    whose serialized size stays under ShardingConfig::max_shard_bytes.
//    Group boundaries are *content-defined* by default (see below); the
//    pure greedy size cut survives as ShardBoundary::kGreedy for benches
//    and back-to-back comparison;
//  - a child bigger than the cap is split *recursively*: its own children
//    shard the same way, and the manifest records a nested sub-manifest
//    node in its place — so no data shard exceeds the cap except a single
//    indivisible node (a text leaf or a childless/one-leaf element),
//    which travels as its own oversized shard and bumps
//    ShardedDocument::oversized_leaves;
//  - each shard's id is the ContentDigest of its canonical form, so an
//    unchanged group of subtrees keeps its id across document versions —
//    a mutation of one subtree dirties exactly the shard holding it, and
//    only that shard must cross the wire again;
//  - a small root *manifest* shard records the document's root element
//    and the ordered tree of child-shard ids (nested sub-manifests
//    included). The manifest is itself a tree, so it ships, caches and
//    dedups through the same machinery as any other content.
//
// Reassembly (AssembleDocument) is exact up to node identifiers: the
// assembled tree is unordered-equal to the original (tree_equal.h), which
// is the only equality the system observes.
//
// Shard-id stability: under ShardBoundary::kContentDefined a group
// closes after a child whose content digest satisfies
// `digest mod boundary_modulus == 0` (clamped to [min, max] group
// bytes). The boundary is a property of the child's *content*, not of
// accumulated size, so an insertion or deletion re-synchronizes at the
// next surviving boundary child: O(1) neighboring shard ids dirty
// instead of every downstream one. Under kGreedy a size-shifting
// mutation can move every later boundary and degrade toward
// whole-document re-shipment (never past it).

#ifndef AXML_XML_SHARDING_H_
#define AXML_XML_SHARDING_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "xml/digest.h"
#include "xml/tree.h"

namespace axml {

/// How the splitter chooses group boundaries among a node's children.
enum class ShardBoundary {
  /// Close the group when the next child would overflow the cap. Size
  /// shifts cascade: one insertion can dirty every downstream shard id.
  kGreedy,
  /// Close the group after a child whose content digest hits the
  /// boundary modulus (within the min/max clamps). Insertions and
  /// deletions dirty only the neighboring shard ids. The default.
  kContentDefined,
};

const char* ShardBoundaryName(ShardBoundary b);

/// Knobs for the splitter.
struct ShardingConfig {
  /// Target cap on one shard's serialized bytes. Also the sharding
  /// threshold: a document at or below this size ships whole. A single
  /// indivisible node bigger than the cap still becomes one (oversized)
  /// shard; splittable oversized children are descended into instead.
  uint64_t max_shard_bytes = 64 * 1024;
  /// Boundary rule for grouping children. kContentDefined keeps shard
  /// ids stable around insertions/deletions.
  ShardBoundary boundary = ShardBoundary::kContentDefined;
  /// Content-defined boundaries may not fire before a group holds this
  /// many bytes (keeps pathological all-boundary content from emitting
  /// one shard per child). 0 means max_shard_bytes / 4.
  uint64_t min_shard_bytes = 0;
  /// A child closes its group when `DigestOf(child).lo % boundary_modulus
  /// == 0`; the expected group length past the min clamp is this many
  /// children. 0 is treated as 1 (every child a boundary).
  uint64_t boundary_modulus = 8;
};

/// One data shard: a group of sibling subtrees, wrapped for shipping.
struct DocumentShard {
  /// Digest of `content`'s canonical form — the shard's stable identity.
  ContentDigest id;
  /// A synthetic `#shard-data` element whose children are the group's
  /// subtrees (clones; the original tree is never aliased).
  TreePtr content;
  /// Encoded wire size of `content` (xml/wire.h) — what shipping this
  /// shard actually costs; identical to EncodeTree(*content).size().
  uint64_t bytes = 0;
};

/// A split document: the manifest plus its data shards, in manifest
/// (depth-first) order.
struct ShardedDocument {
  /// `#manifest` element: one childless `#doc` clone of the original
  /// root, then — in document order — `#shard` text children (text = id
  /// hex) and `#submanifest` elements for recursively split children.
  /// A `#submanifest` has the same shape (its `#doc` holds the childless
  /// clone of the split child) and may nest further.
  TreePtr manifest;
  uint64_t manifest_bytes = 0;
  /// Every data shard at every nesting depth, in manifest order.
  std::vector<DocumentShard> shards;
  /// Indivisible nodes bigger than the cap that had to travel as their
  /// own oversized shard (also logged at Info by the splitter).
  uint64_t oversized_leaves = 0;

  /// Manifest + data bytes: what shipping everything would cost.
  uint64_t TotalBytes() const;
};

/// True when `root` is worth splitting under `cfg`: an element whose
/// serialized size exceeds the shard cap and whose structure is
/// splittable — at least two children at some depth reachable through
/// single-child element chains (the recursive splitter descends such
/// chains, so a document whose size lives in one huge child still
/// shards). Everything else ships whole.
bool ShouldShard(const TreeNode& root, const ShardingConfig& cfg);

/// Splits `root` into a manifest and size-capped data shards. Shard
/// contents are clones minted from `gen`; `root` is not modified.
/// Precondition: ShouldShard(root, cfg).
ShardedDocument SplitDocument(const TreeNode& root,
                              const ShardingConfig& cfg, NodeIdGen* gen);

/// True when `node` looks like a manifest produced by SplitDocument.
bool IsShardManifest(const TreeNode& node);

/// The data-shard id hex strings a manifest references, nested
/// sub-manifests included, in depth-first manifest order (empty when
/// `manifest` is not a manifest). May contain duplicates when
/// byte-identical groups repeat.
std::vector<std::string> ManifestShardIds(const TreeNode& manifest);

/// The distinct shard ids `after` references that `before` did not —
/// what a delta against a copy of `before` must ship. The boundary
/// rule's quality metric: content-defined boundaries keep this O(1)
/// around an insertion or deletion where greedy cuts cascade.
std::vector<std::string> DirtiedShardIds(const ShardedDocument& before,
                                         const ShardedDocument& after);

/// Rebuilds the document a manifest describes, recursing into nested
/// sub-manifests. `shard_lookup` maps a shard-id hex string to that
/// shard's `#shard-data` content tree (as stored by a cache or carried
/// by a shipment); returning nullptr aborts the assembly. The result is
/// built from clones minted from `gen` — callers may hand it out without
/// aliasing cache blobs. Returns nullptr when `manifest` is malformed or
/// any shard is missing.
TreePtr AssembleDocument(
    const TreeNode& manifest,
    const std::function<TreePtr(const std::string& id_hex)>& shard_lookup,
    NodeIdGen* gen);

}  // namespace axml

#endif  // AXML_XML_SHARDING_H_
