#include "xml/wire.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/str_util.h"

namespace axml {
namespace wire {

namespace {

/// Decode recursion cap: a hostile buffer can claim nesting deeper than
/// any real document; bail with a Status long before the stack does.
constexpr size_t kMaxDecodeDepth = 4096;

Status Malformed(const char* what) {
  return Status::ParseError(StrCat("wire: malformed buffer (", what, ")"));
}

}  // namespace

const char* MessageClassName(MessageClass c) {
  switch (c) {
    case MessageClass::kTree:
      return "tree";
    case MessageClass::kShipment:
      return "shipment";
    case MessageClass::kNotify:
      return "notify";
    case MessageClass::kLease:
      return "lease";
    case MessageClass::kDigest:
      return "digest";
    case MessageClass::kControl:
      return "control";
    case MessageClass::kQuery:
      return "query";
  }
  return "unknown";
}

uint64_t TimingNowNs(const WireStats* stats) {
  if (stats == nullptr || !stats->timing_enabled) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          // lint: allow-determinism — opt-in latency histograms only.
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void WireStats::RecordEncode(MessageClass c, size_t bytes, uint64_t ns) {
  ++encode_calls;
  encode_bytes += bytes;
  ++class_messages[static_cast<size_t>(c)];
  class_bytes[static_cast<size_t>(c)] += bytes;
  if (timing_enabled) encode_ns.Add(ns);
}

void WireStats::RecordDecode(size_t bytes, uint64_t ns, bool ok) {
  ++decode_calls;
  decode_bytes += bytes;
  if (!ok) ++decode_errors;
  if (timing_enabled) decode_ns.Add(ns);
}

void WireStats::ExportMetrics(MetricSink& sink) const {
  sink.Value("encode_calls", encode_calls);
  sink.Value("encode_bytes", encode_bytes);
  sink.Value("decode_calls", decode_calls);
  sink.Value("decode_bytes", decode_bytes);
  sink.Value("decode_errors", decode_errors);
  for (size_t i = 0; i < kMessageClassCount; ++i) {
    const char* name = MessageClassName(static_cast<MessageClass>(i));
    sink.Value(StrCat("msgs_", name), class_messages[i]);
    sink.Value(StrCat("bytes_", name), class_bytes[i]);
  }
  sink.Histo("encode_ns", encode_ns);
  sink.Histo("decode_ns", decode_ns);
}

MessageClass Payload::message_class() const {
  if (bytes_.size() < 2) return MessageClass::kControl;
  const uint8_t c = static_cast<uint8_t>(bytes_[1]);
  return c < kMessageClassCount ? static_cast<MessageClass>(c)
                                : MessageClass::kControl;
}

// --- primitives ---

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void AppendFixed64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendLengthPrefixed(std::string_view s, std::string* out) {
  AppendVarint(s.size(), out);
  out->append(s);
}

bool Reader::ReadVarint(uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= buf_.size()) return false;
    const uint8_t byte = static_cast<uint8_t>(buf_[pos_++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;  // > 10 continuation bytes: not a valid varint64
}

bool Reader::ReadFixed64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint64_t result = 0;
  for (int i = 0; i < 8; ++i) {
    result |= static_cast<uint64_t>(static_cast<uint8_t>(buf_[pos_ + i]))
              << (8 * i);
  }
  pos_ += 8;
  *v = result;
  return true;
}

bool Reader::ReadByte(uint8_t* b) {
  if (pos_ >= buf_.size()) return false;
  *b = static_cast<uint8_t>(buf_[pos_++]);
  return true;
}

bool Reader::ReadLengthPrefixed(std::string_view* s) {
  uint64_t len = 0;
  if (!ReadVarint(&len) || len > remaining()) return false;
  *s = buf_.substr(pos_, len);
  pos_ += len;
  return true;
}

namespace {

void AppendHeader(MessageClass c, std::string* out) {
  out->push_back(static_cast<char>(kWireVersion));
  out->push_back(static_cast<char>(c));
}

/// Checks the two header bytes and positions `r` at the body. When
/// `expect` is kControl any class is accepted (generic inspection).
Status ReadHeader(Reader* r, MessageClass expect) {
  uint8_t version = 0;
  uint8_t cls = 0;
  if (!r->ReadByte(&version) || !r->ReadByte(&cls)) {
    return Malformed("truncated header");
  }
  if (version != kWireVersion) {
    return Status::ParseError(StrCat("wire: version ",
                                     static_cast<int>(version),
                                     ", expected ",
                                     static_cast<int>(kWireVersion)));
  }
  if (cls >= kMessageClassCount) return Malformed("unknown message class");
  if (expect != MessageClass::kControl &&
      static_cast<MessageClass>(cls) != expect) {
    return Status::ParseError(
        StrCat("wire: message class ",
               MessageClassName(static_cast<MessageClass>(cls)),
               ", expected ", MessageClassName(expect)));
  }
  return Status::OK();
}

// --- tree encoding ---

/// Canonically ordered view of one subtree: children sorted by their
/// canonical form (tree_equal.h), each form computed exactly once, so
/// unordered-equal trees walk — and therefore encode — identically.
struct CanonNode {
  const TreeNode* node = nullptr;
  std::vector<CanonNode> kids;
  std::string form;
};

CanonNode Canonicalize(const TreeNode& n) {
  CanonNode c;
  c.node = &n;
  if (n.is_text()) {
    c.form = StrCat("t:", n.text());
    return c;
  }
  c.kids.reserve(n.child_count());
  for (const auto& child : n.children()) {
    c.kids.push_back(Canonicalize(*child));
  }
  std::sort(c.kids.begin(), c.kids.end(),
            [](const CanonNode& a, const CanonNode& b) {
              return a.form < b.form;
            });
  c.form = StrCat("e:", n.label_text(), "{");
  for (const CanonNode& k : c.kids) {
    c.form += k.form;
    c.form.push_back('|');
  }
  c.form.push_back('}');
  return c;
}

/// First-use label table over the canonical walk.
void CollectLabels(const CanonNode& c, std::vector<LabelId>* order,
                   std::vector<uint32_t>* index_of) {
  if (c.node->is_element()) {
    const LabelId label = c.node->label();
    if (label >= index_of->size()) {
      index_of->resize(label + 1, UINT32_MAX);
    }
    if ((*index_of)[label] == UINT32_MAX) {
      (*index_of)[label] = static_cast<uint32_t>(order->size());
      order->push_back(label);
    }
    for (const CanonNode& k : c.kids) CollectLabels(k, order, index_of);
  }
}

constexpr uint8_t kTagText = 0;
constexpr uint8_t kTagElement = 1;

void EncodeNode(const CanonNode& c, const std::vector<uint32_t>& index_of,
                std::string* out) {
  if (c.node->is_text()) {
    out->push_back(static_cast<char>(kTagText));
    AppendLengthPrefixed(c.node->text(), out);
    return;
  }
  out->push_back(static_cast<char>(kTagElement));
  AppendVarint(index_of[c.node->label()], out);
  AppendVarint(c.kids.size(), out);
  for (const CanonNode& k : c.kids) EncodeNode(k, index_of, out);
}

Result<TreePtr> DecodeNode(Reader* r, const std::vector<LabelId>& labels,
                           NodeIdGen* gen, size_t depth) {
  if (depth > kMaxDecodeDepth) return Malformed("nesting too deep");
  uint8_t tag = 0;
  if (!r->ReadByte(&tag)) return Malformed("truncated node tag");
  if (tag == kTagText) {
    std::string_view text;
    if (!r->ReadLengthPrefixed(&text)) return Malformed("truncated text");
    return TreeNode::Text(std::string(text));
  }
  if (tag != kTagElement) return Malformed("unknown node tag");
  uint64_t label_index = 0;
  uint64_t child_count = 0;
  if (!r->ReadVarint(&label_index) || !r->ReadVarint(&child_count)) {
    return Malformed("truncated element");
  }
  if (label_index >= labels.size()) return Malformed("label index");
  // Every child occupies >= 2 bytes; a count beyond that is corrupt.
  if (child_count > r->remaining()) return Malformed("child count");
  TreePtr node = TreeNode::Element(labels[label_index], gen->Next());
  for (uint64_t i = 0; i < child_count; ++i) {
    auto child = DecodeNode(r, labels, gen, depth + 1);
    if (!child.ok()) return child.status();
    node->AddChild(std::move(child).value());
  }
  return node;
}

void EncodeTreeBody(const TreeNode& root, std::string* out) {
  const CanonNode canon = Canonicalize(root);
  std::vector<LabelId> label_order;
  std::vector<uint32_t> index_of;
  CollectLabels(canon, &label_order, &index_of);
  AppendVarint(label_order.size(), out);
  for (LabelId label : label_order) {
    AppendLengthPrefixed(LabelText(label), out);
  }
  EncodeNode(canon, index_of, out);
}

Result<TreePtr> DecodeTreeBody(Reader* r, NodeIdGen* gen) {
  uint64_t label_count = 0;
  if (!r->ReadVarint(&label_count)) return Malformed("label table");
  if (label_count > r->remaining()) return Malformed("label table size");
  std::vector<LabelId> labels;
  labels.reserve(label_count);
  for (uint64_t i = 0; i < label_count; ++i) {
    std::string_view text;
    if (!r->ReadLengthPrefixed(&text)) return Malformed("label text");
    labels.push_back(InternLabel(text));
  }
  return DecodeNode(r, labels, gen, /*depth=*/0);
}

}  // namespace

std::string EncodeTree(const TreeNode& root, WireStats* stats) {
  const uint64_t t0 = TimingNowNs(stats);
  std::string out;
  AppendHeader(MessageClass::kTree, &out);
  EncodeTreeBody(root, &out);
  if (stats != nullptr) {
    stats->RecordEncode(MessageClass::kTree, out.size(),
                        TimingNowNs(stats) - t0);
  }
  return out;
}

uint64_t EncodedTreeSize(const TreeNode& root) {
  return EncodeTree(root).size();
}

Result<TreePtr> DecodeTree(std::string_view blob, NodeIdGen* gen,
                           WireStats* stats) {
  const uint64_t t0 = TimingNowNs(stats);
  Reader r(blob);
  Status header = ReadHeader(&r, MessageClass::kTree);
  Result<TreePtr> result =
      header.ok() ? DecodeTreeBody(&r, gen) : Result<TreePtr>(header);
  if (result.ok() && !r.done()) {
    result = Malformed("trailing bytes after tree");
  }
  if (stats != nullptr) {
    stats->RecordDecode(blob.size(), TimingNowNs(stats) - t0, result.ok());
  }
  return result;
}

// --- notify batches ---

Payload EncodeNotifyBatch(const NotifyBatch& batch, WireStats* stats) {
  const uint64_t t0 = TimingNowNs(stats);
  std::string out;
  AppendHeader(MessageClass::kNotify, &out);
  AppendVarint(batch.origin, &out);
  AppendVarint(batch.keys.size(), &out);
  for (const NotifyBatch::Key& key : batch.keys) {
    AppendLengthPrefixed(key.name, &out);
    AppendLengthPrefixed(key.shard, &out);
  }
  if (stats != nullptr) {
    stats->RecordEncode(MessageClass::kNotify, out.size(),
                        TimingNowNs(stats) - t0);
  }
  return Payload(std::move(out));
}

Result<NotifyBatch> DecodeNotifyBatch(const Payload& p, WireStats* stats) {
  const uint64_t t0 = TimingNowNs(stats);
  auto parse = [&]() -> Result<NotifyBatch> {
    Reader r(p.bytes());
    AXML_RETURN_NOT_OK(ReadHeader(&r, MessageClass::kNotify));
    NotifyBatch batch;
    uint64_t origin = 0;
    uint64_t count = 0;
    if (!r.ReadVarint(&origin) || !r.ReadVarint(&count)) {
      return Malformed("notify header");
    }
    if (count > r.remaining()) return Malformed("notify key count");
    batch.origin = static_cast<uint32_t>(origin);
    for (uint64_t i = 0; i < count; ++i) {
      std::string_view name;
      std::string_view shard;
      if (!r.ReadLengthPrefixed(&name) || !r.ReadLengthPrefixed(&shard)) {
        return Malformed("notify key");
      }
      batch.keys.push_back({std::string(name), std::string(shard)});
    }
    if (!r.done()) return Malformed("trailing bytes after notify");
    return batch;
  };
  Result<NotifyBatch> result = parse();
  if (stats != nullptr) {
    stats->RecordDecode(p.size(), TimingNowNs(stats) - t0, result.ok());
  }
  return result;
}

// --- lease renewals ---

Payload EncodeLeaseRenewal(const LeaseRenewal& lease, WireStats* stats) {
  const uint64_t t0 = TimingNowNs(stats);
  std::string out;
  AppendHeader(MessageClass::kLease, &out);
  AppendVarint(lease.holder, &out);
  AppendVarint(lease.origin, &out);
  AppendVarint(lease.subscribed_keys, &out);
  if (stats != nullptr) {
    stats->RecordEncode(MessageClass::kLease, out.size(),
                        TimingNowNs(stats) - t0);
  }
  return Payload(std::move(out));
}

Result<LeaseRenewal> DecodeLeaseRenewal(const Payload& p,
                                        WireStats* stats) {
  const uint64_t t0 = TimingNowNs(stats);
  auto parse = [&]() -> Result<LeaseRenewal> {
    Reader r(p.bytes());
    AXML_RETURN_NOT_OK(ReadHeader(&r, MessageClass::kLease));
    uint64_t holder = 0;
    uint64_t origin = 0;
    LeaseRenewal lease;
    if (!r.ReadVarint(&holder) || !r.ReadVarint(&origin) ||
        !r.ReadVarint(&lease.subscribed_keys)) {
      return Malformed("lease body");
    }
    if (!r.done()) return Malformed("trailing bytes after lease");
    lease.holder = static_cast<uint32_t>(holder);
    lease.origin = static_cast<uint32_t>(origin);
    return lease;
  };
  Result<LeaseRenewal> result = parse();
  if (stats != nullptr) {
    stats->RecordDecode(p.size(), TimingNowNs(stats) - t0, result.ok());
  }
  return result;
}

// --- shipments ---

Payload EncodeShipment(const Shipment& s, WireStats* stats) {
  const uint64_t t0 = TimingNowNs(stats);
  std::string out;
  AppendHeader(MessageClass::kShipment, &out);
  AppendVarint(s.origin, &out);
  AppendLengthPrefixed(s.name, &out);
  AppendVarint(s.snapshot_version, &out);
  out.push_back(s.sharded ? 1 : 0);
  if (s.sharded) {
    AppendLengthPrefixed(s.manifest, &out);
    AppendVarint(s.shards.size(), &out);
    for (const Shipment::Shard& shard : s.shards) {
      AppendLengthPrefixed(shard.id, &out);
      AppendLengthPrefixed(shard.tree, &out);
    }
  } else {
    AppendLengthPrefixed(s.whole, &out);
  }
  if (stats != nullptr) {
    stats->RecordEncode(MessageClass::kShipment, out.size(),
                        TimingNowNs(stats) - t0);
  }
  return Payload(std::move(out));
}

Result<Shipment> DecodeShipment(const Payload& p, WireStats* stats) {
  const uint64_t t0 = TimingNowNs(stats);
  auto parse = [&]() -> Result<Shipment> {
    Reader r(p.bytes());
    AXML_RETURN_NOT_OK(ReadHeader(&r, MessageClass::kShipment));
    Shipment s;
    uint64_t origin = 0;
    std::string_view name;
    uint8_t sharded = 0;
    if (!r.ReadVarint(&origin) || !r.ReadLengthPrefixed(&name) ||
        !r.ReadVarint(&s.snapshot_version) || !r.ReadByte(&sharded)) {
      return Malformed("shipment header");
    }
    if (sharded > 1) return Malformed("shipment mode");
    s.origin = static_cast<uint32_t>(origin);
    s.name = std::string(name);
    s.sharded = sharded == 1;
    if (s.sharded) {
      std::string_view manifest;
      uint64_t shard_count = 0;
      if (!r.ReadLengthPrefixed(&manifest) || !r.ReadVarint(&shard_count)) {
        return Malformed("shipment manifest");
      }
      if (shard_count > r.remaining()) return Malformed("shard count");
      s.manifest = std::string(manifest);
      for (uint64_t i = 0; i < shard_count; ++i) {
        std::string_view id;
        std::string_view tree;
        if (!r.ReadLengthPrefixed(&id) || !r.ReadLengthPrefixed(&tree)) {
          return Malformed("shipment shard");
        }
        s.shards.push_back({std::string(id), std::string(tree)});
      }
    } else {
      std::string_view whole;
      if (!r.ReadLengthPrefixed(&whole)) return Malformed("shipment body");
      s.whole = std::string(whole);
    }
    if (!r.done()) return Malformed("trailing bytes after shipment");
    return s;
  };
  Result<Shipment> result = parse();
  if (stats != nullptr) {
    stats->RecordDecode(p.size(), TimingNowNs(stats) - t0, result.ok());
  }
  return result;
}

// --- anti-entropy digests ---

Payload EncodeDigestExchange(const DigestExchange& d, WireStats* stats) {
  const uint64_t t0 = TimingNowNs(stats);
  std::string out;
  AppendHeader(MessageClass::kDigest, &out);
  AppendVarint(d.holder, &out);
  AppendVarint(d.origin, &out);
  AppendVarint(d.docs.size(), &out);
  for (const DigestExchange::Doc& doc : d.docs) {
    AppendLengthPrefixed(doc.name, &out);
    AppendVarint(doc.version, &out);
    AppendFixed64(doc.manifest.hi, &out);
    AppendFixed64(doc.manifest.lo, &out);
    AppendVarint(doc.shards.size(), &out);
    for (const ContentDigest& shard : doc.shards) {
      AppendFixed64(shard.hi, &out);
      AppendFixed64(shard.lo, &out);
    }
  }
  if (stats != nullptr) {
    stats->RecordEncode(MessageClass::kDigest, out.size(),
                        TimingNowNs(stats) - t0);
  }
  return Payload(std::move(out));
}

Result<DigestExchange> DecodeDigestExchange(const Payload& p,
                                            WireStats* stats) {
  const uint64_t t0 = TimingNowNs(stats);
  auto parse = [&]() -> Result<DigestExchange> {
    Reader r(p.bytes());
    AXML_RETURN_NOT_OK(ReadHeader(&r, MessageClass::kDigest));
    DigestExchange d;
    uint64_t holder = 0;
    uint64_t origin = 0;
    uint64_t doc_count = 0;
    if (!r.ReadVarint(&holder) || !r.ReadVarint(&origin) ||
        !r.ReadVarint(&doc_count)) {
      return Malformed("digest header");
    }
    if (doc_count > r.remaining()) return Malformed("digest doc count");
    d.holder = static_cast<uint32_t>(holder);
    d.origin = static_cast<uint32_t>(origin);
    for (uint64_t i = 0; i < doc_count; ++i) {
      DigestExchange::Doc doc;
      std::string_view name;
      uint64_t shard_count = 0;
      if (!r.ReadLengthPrefixed(&name) || !r.ReadVarint(&doc.version) ||
          !r.ReadFixed64(&doc.manifest.hi) ||
          !r.ReadFixed64(&doc.manifest.lo) || !r.ReadVarint(&shard_count)) {
        return Malformed("digest doc");
      }
      if (shard_count > r.remaining() / 16) {
        return Malformed("digest shard count");
      }
      doc.name = std::string(name);
      for (uint64_t j = 0; j < shard_count; ++j) {
        ContentDigest shard;
        if (!r.ReadFixed64(&shard.hi) || !r.ReadFixed64(&shard.lo)) {
          return Malformed("digest shard");
        }
        doc.shards.push_back(shard);
      }
      d.docs.push_back(std::move(doc));
    }
    if (!r.done()) return Malformed("trailing bytes after digest");
    return d;
  };
  Result<DigestExchange> result = parse();
  if (stats != nullptr) {
    stats->RecordDecode(p.size(), TimingNowNs(stats) - t0, result.ok());
  }
  return result;
}

// --- text ---

Payload EncodeText(MessageClass cls, std::string_view text,
                   WireStats* stats) {
  const uint64_t t0 = TimingNowNs(stats);
  std::string out;
  AppendHeader(cls, &out);
  AppendLengthPrefixed(text, &out);
  if (stats != nullptr) {
    stats->RecordEncode(cls, out.size(), TimingNowNs(stats) - t0);
  }
  return Payload(std::move(out));
}

Result<std::string> DecodeText(const Payload& p, WireStats* stats) {
  const uint64_t t0 = TimingNowNs(stats);
  auto parse = [&]() -> Result<std::string> {
    Reader r(p.bytes());
    AXML_RETURN_NOT_OK(ReadHeader(&r, MessageClass::kControl));
    std::string_view text;
    if (!r.ReadLengthPrefixed(&text)) return Malformed("text body");
    if (!r.done()) return Malformed("trailing bytes after text");
    return std::string(text);
  };
  Result<std::string> result = parse();
  if (stats != nullptr) {
    stats->RecordDecode(p.size(), TimingNowNs(stats) - t0, result.ok());
  }
  return result;
}

uint64_t EncodedTextSize(std::string_view text) {
  std::string len;
  AppendVarint(text.size(), &len);
  return 2 + len.size() + text.size();
}

}  // namespace wire
}  // namespace axml
