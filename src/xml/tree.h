// The XML data model of §2.1: unranked, unordered, labeled trees.
//
// A node is either an *element* (interned label + node identifier +
// children) or a *text* leaf (character data). Node identifiers come from
// a NodeIdGen owned by the minting peer; copies made for shipping get
// fresh identifiers on the receiving peer (§3.2: "all evaluations of send
// expression trees are implicitly understood to copy the data model
// instances they send").
//
// Trees are held through TreePtr (shared_ptr<TreeNode>). Sharing is used
// for cheap intra-peer plumbing; any cross-peer transfer clones. The model
// is *unordered*: equality (tree_equal.h) ignores sibling order, though
// the implementation preserves insertion order for readable serialization.

#ifndef AXML_XML_TREE_H_
#define AXML_XML_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "xml/label_interner.h"

namespace axml {

class TreeNode;
using TreePtr = std::shared_ptr<TreeNode>;

/// Mints fresh NodeIds on behalf of one peer (§2: each tree resides on
/// exactly one peer; its nodes are identified within that peer).
class NodeIdGen {
 public:
  /// `peer` may be PeerId::Invalid() for free-standing trees in tests.
  explicit NodeIdGen(PeerId peer = PeerId::Invalid()) : peer_(peer) {}

  NodeId Next() { return NodeId(peer_, counter_++); }
  PeerId peer() const { return peer_; }
  uint64_t minted() const { return counter_; }

 private:
  PeerId peer_;
  uint64_t counter_ = 0;
};

/// One XML node. See file comment for the element/text distinction.
class TreeNode {
 public:
  /// Creates an element node.
  static TreePtr Element(LabelId label, NodeId id);
  static TreePtr Element(std::string_view label, NodeIdGen* gen);
  /// Creates a text leaf.
  static TreePtr Text(std::string text);

  bool is_element() const { return is_element_; }
  bool is_text() const { return !is_element_; }

  /// Element label (0 for text nodes).
  LabelId label() const { return label_; }
  const std::string& label_text() const { return LabelText(label_); }
  /// Node identifier (invalid for text nodes).
  NodeId id() const { return id_; }
  /// Character data (empty for element nodes).
  const std::string& text() const { return text_; }
  void set_text(std::string t) { text_ = std::move(t); }

  const std::vector<TreePtr>& children() const { return children_; }
  size_t child_count() const { return children_.size(); }
  const TreePtr& child(size_t i) const { return children_[i]; }

  /// Appends `child`; returns it for chaining.
  const TreePtr& AddChild(TreePtr child);
  /// Inserts `child` before position `i` (`i == child_count()` appends).
  void InsertChild(size_t i, TreePtr child);
  /// Removes the child at index `i`.
  void RemoveChild(size_t i);
  /// Removes the first child identified by `id` anywhere below this node
  /// (including direct children). Returns true if found.
  bool RemoveDescendant(NodeId id);
  /// Replaces the direct child at index `i`.
  void ReplaceChild(size_t i, TreePtr child);

  /// Deep copy with fresh identifiers minted from `gen`.
  TreePtr Clone(NodeIdGen* gen) const;
  /// Deep copy preserving identifiers (intra-peer structural copy).
  TreePtr CloneSameIds() const;

  /// Finds the node with identifier `id` in this subtree (including this
  /// node). Returns nullptr when absent.
  TreeNode* FindNode(NodeId id);
  const TreeNode* FindNode(NodeId id) const;

  /// Number of nodes in this subtree (elements + text leaves).
  size_t CountNodes() const;
  /// Height: a leaf has depth 1.
  size_t Depth() const;

  /// True if some node in the subtree is an element labeled `sc`
  /// (a service call, §2.2).
  bool ContainsServiceCall() const;

  /// Concatenation of all text leaves in document order (the "string
  /// value" used by query predicates).
  std::string StringValue() const;

  /// First direct child element with label `label`, or nullptr.
  TreeNode* FirstChildLabeled(LabelId label) const;

  /// Serialized byte size (same as xml_serializer's compact output). Used
  /// by the network simulator to charge transfer costs.
  size_t SerializedSize() const;

 private:
  TreeNode() = default;

  bool is_element_ = false;
  LabelId label_ = 0;
  NodeId id_;
  std::string text_;
  std::vector<TreePtr> children_;
};

/// An XML document (§2.1): a named tree residing on one peer. The pair
/// (name, peer) is unique; the peer is implicit in the hosting Peer
/// object.
struct Document {
  DocName name;
  TreePtr root;
};

/// Convenience constructors used pervasively by tests and examples.

/// `<label>text</label>`
TreePtr MakeTextElement(std::string_view label, std::string text,
                        NodeIdGen* gen);
/// `<label>child1 child2 ...</label>`
TreePtr MakeElement(std::string_view label, std::vector<TreePtr> children,
                    NodeIdGen* gen);

}  // namespace axml

#endif  // AXML_XML_TREE_H_
