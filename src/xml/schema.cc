#include "xml/schema.h"

#include "common/str_util.h"

namespace axml {

bool SchemaType::Matches(const TreeNode& tree) const {
  switch (kind_) {
    case Kind::kText:
      return tree.is_text();
    case Kind::kNumber: {
      if (!tree.is_text()) return false;
      double ignored;
      return ParseDouble(tree.text(), &ignored);
    }
    case Kind::kAny:
      return true;
    case Kind::kElement: {
      if (!tree.is_element() || tree.label() != label_) return false;
      // Interleaving match: each child claims the first particle that
      // accepts it; then occurrence counts are range-checked. First-match
      // assignment is exact for deterministic content models (distinct
      // child labels per particle), which is all this library defines.
      std::vector<int> counts(particles_.size(), 0);
      for (const auto& child : tree.children()) {
        bool claimed = false;
        for (size_t i = 0; i < particles_.size(); ++i) {
          if (particles_[i].type->Matches(*child)) {
            ++counts[i];
            claimed = true;
            break;
          }
        }
        if (!claimed) return false;
      }
      for (size_t i = 0; i < particles_.size(); ++i) {
        if (counts[i] < particles_[i].min_occurs ||
            counts[i] > particles_[i].max_occurs) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool SchemaType::Equals(const SchemaType& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ != Kind::kElement) return true;
  if (label_ != other.label_) return false;
  if (particles_.size() != other.particles_.size()) return false;
  for (size_t i = 0; i < particles_.size(); ++i) {
    const Particle& a = particles_[i];
    const Particle& b = other.particles_[i];
    if (a.min_occurs != b.min_occurs || a.max_occurs != b.max_occurs ||
        !a.type->Equals(*b.type)) {
      return false;
    }
  }
  return true;
}

std::string SchemaType::ToString() const {
  switch (kind_) {
    case Kind::kText:
      return "text";
    case Kind::kNumber:
      return "number";
    case Kind::kAny:
      return "any";
    case Kind::kElement: {
      std::string out = LabelText(label_);
      out.push_back('{');
      for (size_t i = 0; i < particles_.size(); ++i) {
        if (i > 0) out += ", ";
        const Particle& p = particles_[i];
        out += p.type->ToString();
        out.push_back('[');
        out += std::to_string(p.min_occurs);
        out.push_back(',');
        out += p.max_occurs == Particle::kUnbounded
                   ? "*"
                   : std::to_string(p.max_occurs);
        out.push_back(']');
      }
      out.push_back('}');
      return out;
    }
  }
  return "?";
}

SchemaTypePtr SchemaType::Text() {
  static SchemaTypePtr t(new SchemaType(Kind::kText, 0, {}));
  return t;
}

SchemaTypePtr SchemaType::Number() {
  static SchemaTypePtr t(new SchemaType(Kind::kNumber, 0, {}));
  return t;
}

SchemaTypePtr SchemaType::Any() {
  static SchemaTypePtr t(new SchemaType(Kind::kAny, 0, {}));
  return t;
}

SchemaTypePtr SchemaType::Element(std::string_view label,
                                  std::vector<Particle> particles) {
  return SchemaTypePtr(new SchemaType(Kind::kElement, InternLabel(label),
                                      std::move(particles)));
}

Particle One(SchemaTypePtr t) { return Particle{std::move(t), 1, 1}; }
Particle Opt(SchemaTypePtr t) { return Particle{std::move(t), 0, 1}; }
Particle Star(SchemaTypePtr t) {
  return Particle{std::move(t), 0, Particle::kUnbounded};
}
Particle Plus(SchemaTypePtr t) {
  return Particle{std::move(t), 1, Particle::kUnbounded};
}
Particle Occurs(SchemaTypePtr t, int lo, int hi) {
  return Particle{std::move(t), lo, hi};
}

Status Signature::CheckInput(const std::vector<TreePtr>& args) const {
  if (args.size() != in.size()) {
    return Status::TypeError(StrCat("arity mismatch: expected ", in.size(),
                                    " parameters, got ", args.size()));
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (!in[i]->Matches(*args[i])) {
      return Status::TypeError(StrCat("parameter ", i + 1,
                                      " does not match type ",
                                      in[i]->ToString()));
    }
  }
  return Status::OK();
}

Status Signature::CheckOutput(const TreeNode& tree) const {
  if (out == nullptr) return Status::OK();
  if (!out->Matches(tree)) {
    return Status::TypeError(
        StrCat("response does not match type ", out->ToString()));
  }
  return Status::OK();
}

bool Signature::Equals(const Signature& other) const {
  if (in.size() != other.in.size()) return false;
  for (size_t i = 0; i < in.size(); ++i) {
    if (!in[i]->Equals(*other.in[i])) return false;
  }
  if ((out == nullptr) != (other.out == nullptr)) return false;
  return out == nullptr || out->Equals(*other.out);
}

std::string Signature::ToString() const {
  std::string s = "(";
  for (size_t i = 0; i < in.size(); ++i) {
    if (i > 0) s += ", ";
    s += in[i]->ToString();
  }
  s += ") -> ";
  s += out == nullptr ? "any" : out->ToString();
  return s;
}

}  // namespace axml
