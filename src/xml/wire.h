// The binary wire format: what actually crosses a link.
//
// Every message the simulator prices is encoded here first, and the
// priced size IS the encoded size — `Network`'s payload-carrying send
// paths charge `Payload::size()` bytes, so "priced != actual" drift is
// structurally impossible (an `AXML_DCHECK` at each send boundary pins
// the few places where a size is computed before the payload exists,
// e.g. budget admission). The format is deliberately small and
// versioned:
//
//   byte 0   kWireVersion (1)
//   byte 1   MessageClass
//   body     class-specific, varint-framed (see docs/wire-format.md)
//
// Trees encode with a per-blob interned-label table and *canonical
// child order* (children sorted by their canonical form, tree_equal.h),
// so unordered-equal trees encode byte-identically — the property the
// content-addressed blob store and shard ids already rely on. Decoding
// mints fresh node ids from the receiving peer's NodeIdGen (§3.2: every
// send copies the instance it sends).
//
// Decoders never trust the buffer: every length is bounds-checked,
// recursion depth is capped, and any malformed input returns a
// ParseError Status — truncation or corruption must never crash.

#ifndef AXML_XML_WIRE_H_
#define AXML_XML_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "xml/digest.h"
#include "xml/tree.h"

namespace axml {
namespace wire {

/// Bumped on any incompatible layout change; decoders reject mismatches.
inline constexpr uint8_t kWireVersion = 1;

/// Second header byte: what kind of message the payload carries. Used
/// for per-class byte accounting (NetStats) and decode dispatch.
enum class MessageClass : uint8_t {
  kTree = 0,      ///< one standalone tree blob (document / shard ship)
  kShipment = 1,  ///< replica shipment: whole doc or manifest + shards
  kNotify = 2,    ///< invalidation notify batch
  kLease = 3,     ///< subscription lease renewal
  kDigest = 4,    ///< anti-entropy manifest/shard digest exchange
  kControl = 5,   ///< modeled control traffic (catalog lookups etc.)
  kQuery = 6,     ///< query / service-call text
};
inline constexpr size_t kMessageClassCount = 7;

/// Stable lowercase name for metrics and traces ("tree", "notify", ...).
const char* MessageClassName(MessageClass c);

/// Encode/decode observability. Deterministic counters are always on;
/// the wall-clock latency histograms only fill when `timing_enabled`
/// (bench_wire turns it on) so twin simulations stay byte-identical.
struct WireStats {
  uint64_t encode_calls = 0;
  uint64_t encode_bytes = 0;
  uint64_t decode_calls = 0;
  uint64_t decode_bytes = 0;
  uint64_t decode_errors = 0;
  /// Per-class encoded message/byte counters, indexed by MessageClass.
  uint64_t class_messages[kMessageClassCount] = {};
  uint64_t class_bytes[kMessageClassCount] = {};
  Histogram encode_ns;
  Histogram decode_ns;
  bool timing_enabled = false;

  void RecordEncode(MessageClass c, size_t bytes, uint64_t ns);
  void RecordDecode(size_t bytes, uint64_t ns, bool ok);
  /// Exports under the sink's prefix (mounted at "wire/" by AxmlSystem).
  void ExportMetrics(MetricSink& sink) const;
};

/// Reads the wall clock iff `stats` wants timing; 0 otherwise. The one
/// sanctioned nondeterminism: it only ever feeds the latency histograms.
uint64_t TimingNowNs(const WireStats* stats);

/// An encoded message: header + body, opaque to the transport. The
/// `size()` is the priced wire size — there is no other size.
class Payload {
 public:
  Payload() = default;
  explicit Payload(std::string bytes) : bytes_(std::move(bytes)) {}

  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  const std::string& bytes() const { return bytes_; }
  /// Class from the header byte; kControl for empty/foreign buffers.
  MessageClass message_class() const;

 private:
  std::string bytes_;
};

// --- varint / fixed primitives (exposed for tests and bench_wire) ---

void AppendVarint(uint64_t v, std::string* out);
void AppendFixed64(uint64_t v, std::string* out);
void AppendLengthPrefixed(std::string_view s, std::string* out);

/// Bounds-checked sequential reader over an encoded buffer.
class Reader {
 public:
  explicit Reader(std::string_view buf) : buf_(buf) {}

  bool ReadVarint(uint64_t* v);
  bool ReadFixed64(uint64_t* v);
  bool ReadByte(uint8_t* b);
  /// Reads a varint length then that many bytes (aliasing the buffer).
  bool ReadLengthPrefixed(std::string_view* s);
  size_t remaining() const { return buf_.size() - pos_; }
  bool done() const { return pos_ == buf_.size(); }

 private:
  std::string_view buf_;
  size_t pos_ = 0;
};

// --- trees ---

/// Encodes one tree as a standalone blob (class kTree): label table +
/// canonically ordered node records. Unordered-equal trees encode
/// byte-identically.
std::string EncodeTree(const TreeNode& root, WireStats* stats = nullptr);

/// The blob size `EncodeTree` would produce — THE wire size of a tree.
/// Every transfer-pricing path reads this (not xml_serializer's size).
uint64_t EncodedTreeSize(const TreeNode& root);

/// Decodes a tree blob, minting fresh node ids from `gen`.
Result<TreePtr> DecodeTree(std::string_view blob, NodeIdGen* gen,
                           WireStats* stats = nullptr);

// --- replica protocol messages ---

/// One invalidation notify batch origin -> holder: the keys whose
/// copies just went stale.
struct NotifyBatch {
  uint32_t origin = 0;
  struct Key {
    std::string name;
    std::string shard;  ///< "" whole doc, "#manifest", or shard id
  };
  std::vector<Key> keys;
};

Payload EncodeNotifyBatch(const NotifyBatch& batch,
                          WireStats* stats = nullptr);
Result<NotifyBatch> DecodeNotifyBatch(const Payload& p,
                                      WireStats* stats = nullptr);

/// One lease renewal holder -> origin covering all subscribed keys.
struct LeaseRenewal {
  uint32_t holder = 0;
  uint32_t origin = 0;
  uint64_t subscribed_keys = 0;
};

Payload EncodeLeaseRenewal(const LeaseRenewal& lease,
                           WireStats* stats = nullptr);
Result<LeaseRenewal> DecodeLeaseRenewal(const Payload& p,
                                        WireStats* stats = nullptr);

/// A replica shipment origin -> holder: a whole document, or a manifest
/// and/or the data shards the holder lacks. Embedded trees are complete
/// kTree blobs, byte-identical to what the holder's cache will store.
struct Shipment {
  uint32_t origin = 0;
  std::string name;
  uint64_t snapshot_version = 0;
  bool sharded = false;
  std::string whole;     ///< kTree blob; only when !sharded
  std::string manifest;  ///< kTree blob; "" = manifest not shipped
  struct Shard {
    std::string id;    ///< content-digest hex id
    std::string tree;  ///< kTree blob
  };
  std::vector<Shard> shards;
};

Payload EncodeShipment(const Shipment& s, WireStats* stats = nullptr);
Result<Shipment> DecodeShipment(const Payload& p,
                                WireStats* stats = nullptr);

/// Anti-entropy digest exchange holder <-> origin: per document, the
/// manifest version + digest and each resident shard digest, compared
/// shard-by-shard at the other end.
struct DigestExchange {
  uint32_t holder = 0;
  uint32_t origin = 0;
  struct Doc {
    std::string name;
    uint64_t version = 0;
    ContentDigest manifest;
    std::vector<ContentDigest> shards;
  };
  std::vector<Doc> docs;
};

Payload EncodeDigestExchange(const DigestExchange& d,
                             WireStats* stats = nullptr);
Result<DigestExchange> DecodeDigestExchange(const Payload& p,
                                            WireStats* stats = nullptr);

/// Free-form text message (query / service-call text) under `cls`
/// (kQuery for AQL text).
Payload EncodeText(MessageClass cls, std::string_view text,
                   WireStats* stats = nullptr);
Result<std::string> DecodeText(const Payload& p,
                               WireStats* stats = nullptr);
/// The wire size `EncodeText` would produce, for cost estimation.
uint64_t EncodedTextSize(std::string_view text);

}  // namespace wire
}  // namespace axml

#endif  // AXML_XML_WIRE_H_
