// Discrete-event scheduler driving the whole distributed simulation.
//
// Events fire in (time, sequence) order, so simultaneous events run in
// scheduling order — the simulation is fully deterministic for a given
// input, which the property tests rely on when comparing two evaluation
// strategies.

#ifndef AXML_NET_EVENT_LOOP_H_
#define AXML_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sequence_checker.h"
#include "common/thread_annotations.h"
#include "net/sim_time.h"

namespace axml {

/// Single-sequence virtual-time event loop. The loop — queue, clock and
/// periodic registry — is affine to the thread that drives it
/// (SequenceChecker-enforced; docs/architecture.md has the contract):
/// scheduling from another thread needs an explicit cross-thread
/// mailbox, which the planned worker-thread split will add *next to*
/// this queue, not inside it.
class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  SimTime now() const {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return now_;
  }

  /// Schedules `cb` to run at absolute time `t` (clamped to now()).
  void ScheduleAt(SimTime t, Callback cb);
  /// Schedules `cb` to run `delay` seconds from now.
  void ScheduleAfter(SimTime delay, Callback cb);
  /// Schedules `cb` at the current time, after already-pending events at
  /// this time.
  void Post(Callback cb) { ScheduleAt(now_, std::move(cb)); }

  /// Registers a recurring task firing every `interval` (> 0) seconds of
  /// virtual time, starting one interval from now. Periodic tasks never
  /// keep the loop alive: a due tick fires only while real events are
  /// being processed (just before the event that would carry time past
  /// it), so an empty queue still quiesces and Run() terminates — the
  /// tick piggybacks on ongoing activity instead of spinning an idle
  /// simulation forever. When activity jumps time across several
  /// intervals at once, the missed ticks coalesce into one firing.
  /// Returns an id for RemovePeriodic.
  uint64_t AddPeriodic(SimTime interval, Callback cb);
  /// Cancels a periodic task; unknown ids are ignored.
  void RemovePeriodic(uint64_t id);

  /// Runs the earliest event (firing any periodic tasks due before it).
  /// Returns false when the queue is empty.
  bool RunOne();
  /// Runs to quiescence. Returns the number of events executed.
  uint64_t Run();
  /// Runs events with time <= `t`; leaves now() at `t` if the queue
  /// drains earlier. Returns events executed.
  uint64_t RunUntil(SimTime t);

  bool empty() const {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return queue_.empty();
  }
  size_t pending() const {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return queue_.size();
  }
  uint64_t executed() const {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return executed_;
  }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct Periodic {
    uint64_t id;
    SimTime interval;
    SimTime next;  ///< next due time
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Fires every periodic task due at or before the current queue head,
  /// earliest first, re-reading the head after every firing (a tick may
  /// post events — possibly earlier than the old head — or mutate the
  /// registry).
  void FirePeriodics() AXML_REQUIRES(sequence_checker_);

  SequenceChecker sequence_checker_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_
      AXML_GUARDED_BY_CONTEXT(sequence_checker_);
  std::vector<Periodic> periodics_
      AXML_GUARDED_BY_CONTEXT(sequence_checker_);
  SimTime now_ AXML_GUARDED_BY_CONTEXT(sequence_checker_) = kSimStart;
  uint64_t next_seq_ AXML_GUARDED_BY_CONTEXT(sequence_checker_) = 0;
  uint64_t next_periodic_id_
      AXML_GUARDED_BY_CONTEXT(sequence_checker_) = 1;
  uint64_t executed_ AXML_GUARDED_BY_CONTEXT(sequence_checker_) = 0;
};

}  // namespace axml

#endif  // AXML_NET_EVENT_LOOP_H_
