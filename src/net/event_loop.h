// Discrete-event scheduler driving the whole distributed simulation.
//
// Events fire in (time, sequence) order, so simultaneous events run in
// scheduling order — the simulation is fully deterministic for a given
// input, which the property tests rely on when comparing two evaluation
// strategies.

#ifndef AXML_NET_EVENT_LOOP_H_
#define AXML_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/sim_time.h"

namespace axml {

/// Single-threaded virtual-time event loop.
class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (clamped to now()).
  void ScheduleAt(SimTime t, Callback cb);
  /// Schedules `cb` to run `delay` seconds from now.
  void ScheduleAfter(SimTime delay, Callback cb);
  /// Schedules `cb` at the current time, after already-pending events at
  /// this time.
  void Post(Callback cb) { ScheduleAt(now_, std::move(cb)); }

  /// Runs the earliest event. Returns false when the queue is empty.
  bool RunOne();
  /// Runs to quiescence. Returns the number of events executed.
  uint64_t Run();
  /// Runs events with time <= `t`; leaves now() at `t` if the queue
  /// drains earlier. Returns events executed.
  uint64_t RunUntil(SimTime t);

  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }
  uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = kSimStart;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace axml

#endif  // AXML_NET_EVENT_LOOP_H_
