// The simulated transport: delivers opaque payloads between peers with
// latency + bandwidth delays, FIFO per directed link, full accounting.
//
// Substitution note (DESIGN.md): the paper's SOAP/WSDL transport is
// replaced by this simulator; the byte size charged for each message is
// the actual serialized XML size of what AXML would put on the wire.

#ifndef AXML_NET_NETWORK_H_
#define AXML_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/ids.h"
#include "common/sequence_checker.h"
#include "common/thread_annotations.h"
#include "net/event_loop.h"
#include "net/net_stats.h"
#include "net/topology.h"
#include "obs/trace.h"
#include "xml/wire.h"

namespace axml {

class FaultInjector;

/// Point-to-point message fabric over an EventLoop. Affine to the
/// loop's driving sequence (SequenceChecker-enforced): the in-flight
/// link bookkeeping and stats are touched from Send paths and from
/// delivery callbacks, which the single-sequence loop serializes.
class Network {
 public:
  /// Called on the destination peer when a message arrives.
  using DeliverFn = std::function<void()>;
  /// Payload-carrying variant: the destination receives the encoded
  /// bytes that were priced — decode happens there, never en route.
  using PayloadDeliverFn = std::function<void(const wire::Payload&)>;

  Network(EventLoop* loop, Topology topology)
      : loop_(loop), topology_(std::move(topology)) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sends `bytes` from `from` to `to`; `on_deliver` runs at the arrival
  /// time. Messages on the same directed link are serialized FIFO: a
  /// message starts transmitting only after the previous one finished
  /// (propagation overlaps, as on a real pipe).
  void Send(PeerId from, PeerId to, uint64_t bytes, DeliverFn on_deliver);

  /// The payload-carrying sends: the priced size IS `payload.size()` —
  /// there is no separately estimated byte count to drift from the
  /// content. Each also tallies the payload's message class
  /// (NetStats::class_messages/class_bytes). The byte-count overloads
  /// above remain for *modeled* traffic (analytic catalog backends,
  /// closed-form benches) that never materializes bytes.
  void Send(PeerId from, PeerId to, wire::Payload payload,
            PayloadDeliverFn on_deliver);
  void SendNotify(PeerId from, PeerId to, wire::Payload payload,
                  PayloadDeliverFn on_deliver);
  void SendReliable(PeerId from, PeerId to, wire::Payload payload,
                    PayloadDeliverFn on_deliver);
  /// Control roundtrip whose request is a real encoded payload (lease
  /// renewals, anti-entropy digests): `messages` messages totalling
  /// `payload.size() + response_bytes` (the modeled response leg).
  void ControlRoundtrip(PeerId from, PeerId to, uint64_t messages,
                        wire::Payload payload, uint64_t response_bytes,
                        SimTime delay, DeliverFn on_done);

  /// Like Send, but tallied as replica-invalidation notify traffic
  /// (NetStats::notify_messages/bytes) on top of the link accounting.
  void SendNotify(PeerId from, PeerId to, uint64_t bytes,
                  DeliverFn on_deliver);

  /// Like Send, but retransmits deterministically (after a fixed
  /// retransmission timeout of about one RTT) whenever the fabric drops
  /// the message, so the payload eventually lands under lossy-link or
  /// partition-window fault schedules. Each retransmission is charged
  /// to NetStats like a fresh message. If either endpoint is down when
  /// a retransmission would fire the send is abandoned silently — a
  /// crashed peer must not keep the event loop alive forever. On a
  /// perfect fabric this is byte-identical to Send.
  void SendReliable(PeerId from, PeerId to, uint64_t bytes,
                    DeliverFn on_deliver);

  /// Charges control-plane traffic (e.g. catalog lookups, lease and
  /// anti-entropy digests) as `messages` messages totalling `bytes`,
  /// and runs `on_done` once the roundtrip completes — at least `delay`
  /// after the from->to link is free. Routed through the same per-link
  /// FIFO + fault-injector path as data messages, so control traffic is
  /// no longer invisible to the size histogram, trace spans, or the
  /// injector. A dropped roundtrip retries after `delay` (recharging
  /// one control message per retry) unless the requester is down.
  void ControlRoundtrip(PeerId from, PeerId to, uint64_t messages,
                        uint64_t bytes, SimTime delay, DeliverFn on_done);

  /// Attaches a fault injector that rules on every non-loopback message
  /// (nullptr detaches — the default, a perfect fabric).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Marks a peer crashed (`up` false) or rejoined (`up` true).
  /// Messages from a down peer are dropped at send time; messages *to*
  /// a down peer are dropped on arrival — they were already committed
  /// to the wire when the peer went down.
  void SetPeerUp(PeerId peer, bool up);
  bool IsPeerUp(PeerId peer) const;

  const Topology& topology() const { return topology_; }
  Topology* mutable_topology() { return &topology_; }
  EventLoop* loop() { return loop_; }
  const NetStats& stats() const {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return stats_;
  }
  NetStats* mutable_stats() {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    return &stats_;
  }

  /// Hooks the causal tracer in (AxmlSystem wires its own): every
  /// message records a "net" span covering its time on the wire, and the
  /// delivery callback runs under the causal id that was current at Send
  /// time — the hop that carries a trace across the network without
  /// touching any message struct. nullptr detaches.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Lower-bound one-way delay for `bytes` on link from->to (ignoring
  /// queueing); used by the optimizer's cost model.
  double EstimateTransferTime(PeerId from, PeerId to,
                              uint64_t bytes) const {
    return topology_.Get(from, to).TransferTime(bytes);
  }

 private:
  static uint64_t Key(PeerId a, PeerId b) {
    return (static_cast<uint64_t>(a.index()) << 32) | b.index();
  }

  /// Shared FIFO-link scheduling behind Send/SendNotify/SendReliable/
  /// ControlRoundtrip (aggregate stats already recorded by the caller;
  /// `kind` names the trace span: "msg", "notify" or "control").
  /// Consults the fault injector and the peer up/down set; a dropped
  /// message still occupies the link (it was transmitted, then lost),
  /// is tallied via NetStats::RecordDrop + a "drop" trace span, and
  /// fires `on_drop` (if any) at what would have been the arrival time.
  /// `min_delay` floors the one-way delay (modelled control roundtrips
  /// take their full latency even when transmit is negligible).
  /// Returns false when the message was dropped at send time because
  /// `from` is down.
  bool ScheduleDelivery(PeerId from, PeerId to, uint64_t bytes,
                        DeliverFn on_deliver, const char* kind,
                        SimTime min_delay = 0, DeliverFn on_drop = nullptr)
      AXML_REQUIRES(sequence_checker_);

  /// One (re)transmission attempt of a reliable send; wires the next
  /// attempt into the drop path.
  void ReliableAttempt(PeerId from, PeerId to, uint64_t bytes,
                       DeliverFn on_deliver)
      AXML_REQUIRES(sequence_checker_);

  /// One attempt of a control roundtrip; retries itself on drop.
  void ControlAttempt(PeerId from, PeerId to, uint64_t bytes,
                      SimTime delay, DeliverFn on_done)
      AXML_REQUIRES(sequence_checker_);

  SequenceChecker sequence_checker_;
  EventLoop* loop_;
  Topology topology_;
  NetStats stats_ AXML_GUARDED_BY_CONTEXT(sequence_checker_);
  Tracer* tracer_ = nullptr;
  FaultInjector* injector_ = nullptr;
  /// Peers currently crashed (by index); empty on the happy path.
  std::unordered_set<uint32_t> down_peers_
      AXML_GUARDED_BY_CONTEXT(sequence_checker_);
  /// Per directed link: when the link becomes free to start transmitting.
  std::unordered_map<uint64_t, SimTime> link_busy_until_
      AXML_GUARDED_BY_CONTEXT(sequence_checker_);
};

}  // namespace axml

#endif  // AXML_NET_NETWORK_H_
