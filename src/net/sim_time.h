// Virtual time for the discrete-event simulator.
//
// The paper's testbed is a live peer network; we substitute a
// deterministic simulation (see DESIGN.md "Substitutions"). All durations
// are in seconds of *virtual* time.

#ifndef AXML_NET_SIM_TIME_H_
#define AXML_NET_SIM_TIME_H_

namespace axml {

/// Seconds of virtual time since simulation start.
using SimTime = double;

constexpr SimTime kSimStart = 0.0;

}  // namespace axml

#endif  // AXML_NET_SIM_TIME_H_
