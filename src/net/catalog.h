// Resource-discovery catalogs.
//
// §2 of the paper: "We make no assumption about the structure of the peer
// network, e.g. whether a DHT-style index is present or not. We will
// discuss the impact of various network structures further on." The
// catalog is where that impact shows: resolving `d@any` (def. 9) needs to
// discover which peers hold members of the equivalence class. We provide
// three classic structures with faithful cost models; EXP-8 compares
// them.
//
//  - CentralCatalog: one index server; lookup = RTT to the server plus a
//    small request/response payload.
//  - DhtCatalog:     Chord-style structured overlay; lookup visits
//    ceil(log2 P) hops of average latency, then one hop to return.
//  - FloodCatalog:   Gnutella-style flooding over the topology's neighbor
//    graph with a TTL; cost = one message per edge visited, delay = the
//    depth at which the resource was first found.
//
// Lookups charge control-plane traffic to the Network's stats and
// complete asynchronously after the modeled delay.

#ifndef AXML_NET_CATALOG_H_
#define AXML_NET_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "net/network.h"

namespace axml {

/// What kind of resource a catalog entry names.
enum class ResourceKind { kDocument, kService };

/// Result of a catalog lookup.
struct LookupResult {
  /// Peers that advertise the resource (may be empty).
  std::vector<PeerId> holders;
  /// Modeled control-plane cost of this lookup.
  double delay_s = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

/// Interface shared by all catalog implementations.
class Catalog {
 public:
  using LookupCallback = std::function<void(const LookupResult&)>;

  virtual ~Catalog() = default;

  /// Advertises that `holder` provides `name`. Registration cost is
  /// charged lazily on lookup for simplicity (it is identical across the
  /// compared structures).
  virtual void Register(ResourceKind kind, const std::string& name,
                        PeerId holder);
  virtual void Unregister(ResourceKind kind, const std::string& name,
                          PeerId holder);

  /// True when `holder` currently advertises `name`. Free (no modeled
  /// traffic): used by tests and the replica layer to check registration
  /// state without a lookup.
  bool IsAdvertised(ResourceKind kind, const std::string& name,
                    PeerId holder) const;
  /// Number of peers advertising `name` (free, like IsAdvertised).
  size_t HolderCount(ResourceKind kind, const std::string& name) const;

  /// Resolves `name` from peer `from`: charges modeled traffic on `net`
  /// and invokes `cb` after the modeled delay.
  virtual void Lookup(ResourceKind kind, const std::string& name,
                      PeerId from, Network* net, LookupCallback cb) = 0;

  /// Synchronous variant used by tests and the cost model: returns the
  /// result without touching the network.
  virtual LookupResult LookupNow(ResourceKind kind, const std::string& name,
                                 PeerId from, const Network& net) = 0;

  /// Number of peers this catalog assumes in the system (for cost
  /// formulas); set by AxmlSystem.
  void set_peer_count(uint32_t n) { peer_count_ = n; }

 protected:
  const std::vector<PeerId>* Holders(ResourceKind kind,
                                     const std::string& name) const;

  uint32_t peer_count_ = 0;

 private:
  static std::string MapKey(ResourceKind kind, const std::string& name) {
    return (kind == ResourceKind::kDocument ? "d:" : "s:") + name;
  }
  std::map<std::string, std::vector<PeerId>> entries_;
};

/// Single well-known index server.
class CentralCatalog : public Catalog {
 public:
  explicit CentralCatalog(PeerId server) : server_(server) {}

  void Lookup(ResourceKind kind, const std::string& name, PeerId from,
              Network* net, LookupCallback cb) override;
  LookupResult LookupNow(ResourceKind kind, const std::string& name,
                         PeerId from, const Network& net) override;

  PeerId server() const { return server_; }

 private:
  PeerId server_;
};

/// Structured overlay with O(log P) routing (Chord-style cost model).
class DhtCatalog : public Catalog {
 public:
  /// `avg_hop_latency_s`: mean one-way latency of one overlay hop. When
  /// <= 0, the topology's default link latency is used.
  explicit DhtCatalog(double avg_hop_latency_s = -1.0)
      : avg_hop_latency_s_(avg_hop_latency_s) {}

  void Lookup(ResourceKind kind, const std::string& name, PeerId from,
              Network* net, LookupCallback cb) override;
  LookupResult LookupNow(ResourceKind kind, const std::string& name,
                         PeerId from, const Network& net) override;

 private:
  uint32_t HopCount() const;
  double avg_hop_latency_s_;
};

/// Unstructured flooding over the topology's neighbor graph.
class FloodCatalog : public Catalog {
 public:
  explicit FloodCatalog(uint32_t ttl = 7) : ttl_(ttl) {}

  void Lookup(ResourceKind kind, const std::string& name, PeerId from,
              Network* net, LookupCallback cb) override;
  LookupResult LookupNow(ResourceKind kind, const std::string& name,
                         PeerId from, const Network& net) override;

 private:
  uint32_t ttl_;
};

/// Approximate wire size of a catalog request/response message.
constexpr uint64_t kCatalogMsgBytes = 64;

}  // namespace axml

#endif  // AXML_NET_CATALOG_H_
