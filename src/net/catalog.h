// Resource-discovery catalog backends.
//
// §2 of the paper: "We make no assumption about the structure of the peer
// network, e.g. whether a DHT-style index is present or not. We will
// discuss the impact of various network structures further on." The
// catalog is where that impact shows: resolving `d@any` (def. 9) needs to
// discover which peers hold members of the equivalence class. The
// CatalogBackend interface makes the structure pluggable; four
// implementations exist:
//
//  - CentralCatalog:  one index server; lookup = RTT to the server plus a
//                     small request/response payload.
//  - ChordDhtCatalog: a real Chord-style ring over the peer ids. Lookups
//                     route hop-by-hop through finger intervals, each hop
//                     a Network::ControlRoundtrip on the actual link — so
//                     DHT traffic is priced, traced and fault-injectable
//                     like every other message. Advertisements route as
//                     digest messages to the responsible node and batch
//                     (Begin/EndAdvertiseBatch), so re-advertising an
//                     unchanged entry is free and bulk installs pay per
//                     delta, not per call.
//  - DhtCatalog:      the analytic cost model of the above (ceil(log2 P)
//                     average-latency hops, loopback-anchored); kept for
//                     closed-form sweeps (EXP-8).
//  - FloodCatalog:    Gnutella-style flooding over the topology's
//                     neighbor graph with a TTL; cost = one message per
//                     edge visited, delay = the depth at which the
//                     resource was first found.
//
// Lookups charge control-plane traffic to the Network's stats and
// complete asynchronously after the modeled delay. Every backend also
// feeds CatalogStats — lookup/advertisement message counts plus a
// per-serving-node load table, the data behind the hot-node share
// comparison in bench_fleet.

#ifndef AXML_NET_CATALOG_H_
#define AXML_NET_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "net/network.h"
#include "obs/metrics.h"

namespace axml {

/// What kind of resource a catalog entry names.
enum class ResourceKind { kDocument, kService };

/// Result of a catalog lookup.
struct LookupResult {
  /// Peers that advertise the resource (may be empty).
  std::vector<PeerId> holders;
  /// Modeled control-plane cost of this lookup.
  double delay_s = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

/// Aggregate traffic counters one catalog backend has generated.
/// `advertise_noops` counts Register calls for already-advertised
/// entries — the re-advertisements the delta protocol makes free.
struct CatalogStats {
  uint64_t lookups = 0;
  uint64_t lookup_messages = 0;
  uint64_t lookup_bytes = 0;
  uint64_t advertise_messages = 0;
  uint64_t advertise_bytes = 0;
  uint64_t advertise_deltas = 0;
  uint64_t advertise_noops = 0;

  void ExportMetrics(MetricSink& sink) const;
};

/// Interface shared by all catalog backends. The base class owns the
/// authoritative name -> holders index (synchronously consistent, as in
/// the seed); backends differ in how lookups and advertisement deltas
/// are *routed* and therefore what they cost.
class CatalogBackend {
 public:
  using LookupCallback = std::function<void(const LookupResult&)>;

  virtual ~CatalogBackend() = default;

  /// Short stable identifier ("central", "chord-dht", ...) for benches
  /// and reports.
  virtual const char* backend_name() const = 0;

  /// Advertises that `holder` provides `name`. Only an *effective* delta
  /// (the entry was not already advertised) reaches the backend's
  /// routing hook; a repeat Register is a counted no-op.
  virtual void Register(ResourceKind kind, const std::string& name,
                        PeerId holder);
  virtual void Unregister(ResourceKind kind, const std::string& name,
                          PeerId holder);

  /// True when `holder` currently advertises `name`. Free (no modeled
  /// traffic): used by tests and the replica layer to check registration
  /// state without a lookup.
  bool IsAdvertised(ResourceKind kind, const std::string& name,
                    PeerId holder) const;
  /// Number of peers advertising `name` (free, like IsAdvertised).
  size_t HolderCount(ResourceKind kind, const std::string& name) const;

  /// Resolves `name` from peer `from`: charges modeled traffic on `net`
  /// and invokes `cb` after the modeled delay.
  virtual void Lookup(ResourceKind kind, const std::string& name,
                      PeerId from, Network* net, LookupCallback cb) = 0;

  /// Synchronous variant used by tests and the cost model: returns the
  /// result without touching the network or the stats.
  virtual LookupResult LookupNow(ResourceKind kind, const std::string& name,
                                 PeerId from, const Network& net) = 0;

  /// Number of peers this catalog assumes in the system (for cost
  /// formulas and the DHT ring); set by AxmlSystem.
  void set_peer_count(uint32_t n) {
    if (n == peer_count_) return;
    peer_count_ = n;
    OnPeerCountChanged();
  }

  /// Wires the system's Network in so backends can charge real
  /// advertisement traffic. Left null (the default, and the standalone /
  /// bench-model usage), registration stays free as in the seed.
  void AttachNetwork(Network* net) { net_ = net; }

  /// Marks `peer` crashed (`live` false) or rejoined (`live` true).
  /// AxmlSystem::CrashPeer / RejoinPeer call this right after flipping
  /// the Network's liveness gate. Routed backends (Chord) steer lookups
  /// and digests around down peers; analytic backends ignore it.
  virtual void SetPeerLive(PeerId peer, bool live) {
    (void)peer;
    (void)live;
  }

  /// Opens / closes an advertisement batch window. While a window is
  /// open, effective deltas coalesce per (holder, responsible node) and
  /// flush as one digest message each on the final EndAdvertiseBatch —
  /// how a bulk install (fleet bring-up, placement round) pays O(delta)
  /// instead of O(calls). Windows nest; backends without routed
  /// advertisements treat both as no-ops.
  void BeginAdvertiseBatch() { ++advertise_batch_depth_; }
  void EndAdvertiseBatch();

  // --- observability ---

  const CatalogStats& stats() const { return stats_; }
  /// Catalog messages *handled* by each peer (routing hops received,
  /// lookups served, digests applied). Requesters receiving their own
  /// response are not load. Empty for backends that do not attribute
  /// load to nodes (flooding).
  const std::map<uint32_t, uint64_t>& node_load() const {
    return node_load_;
  }
  /// Largest single-node share of all handled catalog messages, in
  /// [0, 1]; 0 when no messages were handled. Central pins this near 1
  /// at its server, a balanced DHT drives it toward 1/P.
  double MaxNodeLoadShare() const;
  /// Stats counters plus node_load_max / node_load_total.
  void ExportMetrics(MetricSink& sink) const;
  void ResetStats();

 protected:
  /// Invoked once for every effective advertisement delta (add or
  /// remove). Backends route / price it; the default is free.
  virtual void OnAdvertiseDelta(ResourceKind kind, const std::string& name,
                                PeerId holder, bool add);
  /// Invoked when the last advertisement batch window closes.
  virtual void FlushAdvertiseBatch() {}
  /// Invoked when set_peer_count changes the value.
  virtual void OnPeerCountChanged() {}

  void RecordLookup(uint64_t messages, uint64_t bytes) {
    ++stats_.lookups;
    stats_.lookup_messages += messages;
    stats_.lookup_bytes += bytes;
  }
  void RecordAdvertise(uint64_t messages, uint64_t bytes, uint64_t deltas) {
    stats_.advertise_messages += messages;
    stats_.advertise_bytes += bytes;
    stats_.advertise_deltas += deltas;
  }
  void AddNodeLoad(PeerId node, uint64_t messages = 1) {
    node_load_[node.index()] += messages;
  }
  bool in_advertise_batch() const { return advertise_batch_depth_ > 0; }

  const std::vector<PeerId>* Holders(ResourceKind kind,
                                     const std::string& name) const;
  static std::string MapKey(ResourceKind kind, const std::string& name) {
    return (kind == ResourceKind::kDocument ? "d:" : "s:") + name;
  }

  uint32_t peer_count_ = 0;
  Network* net_ = nullptr;
  CatalogStats stats_;

 private:
  std::map<std::string, std::vector<PeerId>> entries_;
  std::map<uint32_t, uint64_t> node_load_;
  uint32_t advertise_batch_depth_ = 0;
};

/// The seed's name for the interface; all existing call sites use it.
using Catalog = CatalogBackend;

/// Single well-known index server. Advertisements stay free ("charged
/// lazily on lookup", as in the seed); every lookup loads the server.
class CentralCatalog : public CatalogBackend {
 public:
  explicit CentralCatalog(PeerId server) : server_(server) {}

  const char* backend_name() const override { return "central"; }
  void Lookup(ResourceKind kind, const std::string& name, PeerId from,
              Network* net, LookupCallback cb) override;
  LookupResult LookupNow(ResourceKind kind, const std::string& name,
                         PeerId from, const Network& net) override;

  PeerId server() const { return server_; }

 private:
  PeerId server_;
};

/// A real Chord-style DHT over the peer ids: each peer owns the arc of a
/// 64-bit hash ring ending at its point; entry `name` lives at the
/// successor of hash(name). Lookups route greedily through finger
/// intervals (successor of cur + 2^j), giving O(log P) hops, each hop a
/// ControlRoundtrip on the actual cur->next link. Advertisement deltas
/// route as digest messages holder -> responsible node (holders cache
/// their responsible-node addresses, the standard one-hop put) and
/// coalesce under Begin/EndAdvertiseBatch.
///
/// The ring is rebuilt lazily when peer_count changes, so fleet bring-up
/// (P AddPeer calls) does not pay P ring builds. Liveness-aware routing
/// (SetPeerLive): a crashed peer stays a ring member, but successor
/// resolution walks past it — its arc is absorbed by the next live peer,
/// the lazy form of Chord's successor-list repair — and finger targets
/// resolve through the same filter, so every hop of every route lands on
/// a live node. Rejoin restores the peer's arc on the next resolution;
/// no explicit finger tables exist to fix up.
class ChordDhtCatalog : public CatalogBackend {
 public:
  ChordDhtCatalog() = default;

  const char* backend_name() const override { return "chord-dht"; }
  void Lookup(ResourceKind kind, const std::string& name, PeerId from,
              Network* net, LookupCallback cb) override;
  LookupResult LookupNow(ResourceKind kind, const std::string& name,
                         PeerId from, const Network& net) override;
  void SetPeerLive(PeerId peer, bool live) override;

  /// The peer whose arc covers hash(name) — where the entry's digest
  /// traffic lands. Invalid when the ring is empty.
  PeerId ResponsibleNode(ResourceKind kind, const std::string& name) const;
  /// Routing path from `from` to the responsible node, excluding `from`
  /// itself and including the responsible node; empty when `from` is
  /// responsible (or outside the ring).
  std::vector<PeerId> Route(ResourceKind kind, const std::string& name,
                            PeerId from) const;

 protected:
  void OnAdvertiseDelta(ResourceKind kind, const std::string& name,
                        PeerId holder, bool add) override;
  void FlushAdvertiseBatch() override;
  void OnPeerCountChanged() override { ring_dirty_ = true; }

 private:
  void EnsureRing() const;
  /// Ring position of peer `index` (a splitmix64 point, deterministic).
  static uint64_t PeerPoint(uint32_t index);
  /// Ring position of an entry key.
  static uint64_t KeyPoint(const std::string& map_key);
  /// True unless the peer is marked down via SetPeerLive.
  bool IsLive(uint32_t index) const { return down_.count(index) == 0; }
  /// The first *live* peer at or clockwise of `point` (a crashed
  /// successor is skipped — its arc falls to the next live peer).
  uint32_t SuccessorOf(uint64_t point) const;
  /// Next routing hop from `cur` toward `responsible` for `target`.
  uint32_t NextHop(uint32_t cur, uint32_t responsible,
                   uint64_t target) const;
  /// One digest message holder -> responsible covering `deltas` entries.
  void SendDigest(uint32_t holder, uint32_t responsible, uint64_t deltas);

  /// (point, peer index), sorted by point; rebuilt lazily.
  mutable std::vector<std::pair<uint64_t, uint32_t>> ring_;
  mutable bool ring_dirty_ = true;
  /// Peers currently crashed (by index); routing skips them.
  std::set<uint32_t> down_;
  /// Deltas pending in the open batch window, coalesced per
  /// (holder, responsible) pair.
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> pending_digests_;
};

/// Analytic structured-overlay model with O(log P) routing: the
/// closed-form twin of ChordDhtCatalog, for sweeps that want the formula
/// rather than routed traffic.
class DhtCatalog : public CatalogBackend {
 public:
  /// `avg_hop_latency_s`: mean one-way latency of one overlay hop. When
  /// <= 0, the topology's default link latency is used.
  explicit DhtCatalog(double avg_hop_latency_s = -1.0)
      : avg_hop_latency_s_(avg_hop_latency_s) {}

  const char* backend_name() const override { return "dht-model"; }
  void Lookup(ResourceKind kind, const std::string& name, PeerId from,
              Network* net, LookupCallback cb) override;
  LookupResult LookupNow(ResourceKind kind, const std::string& name,
                         PeerId from, const Network& net) override;

 private:
  uint32_t HopCount() const;
  double avg_hop_latency_s_;
};

/// Unstructured flooding over the topology's neighbor graph.
class FloodCatalog : public CatalogBackend {
 public:
  explicit FloodCatalog(uint32_t ttl = 7) : ttl_(ttl) {}

  const char* backend_name() const override { return "flood"; }
  void Lookup(ResourceKind kind, const std::string& name, PeerId from,
              Network* net, LookupCallback cb) override;
  LookupResult LookupNow(ResourceKind kind, const std::string& name,
                         PeerId from, const Network& net) override;

 private:
  uint32_t ttl_;
};

/// Approximate wire size of a catalog request/response message.
constexpr uint64_t kCatalogMsgBytes = 64;
/// Incremental size of one extra entry in an advertisement digest.
constexpr uint64_t kCatalogDigestEntryBytes = 16;

}  // namespace axml

#endif  // AXML_NET_CATALOG_H_
