// Network topology: per-directed-link latency and bandwidth.
//
// The paper "makes no assumption about the structure of the peer
// network"; benches therefore sweep several topologies. A Topology is a
// default link parameterization plus per-pair overrides, and a logical
// neighbor graph used by the flooding catalog.

#ifndef AXML_NET_TOPOLOGY_H_
#define AXML_NET_TOPOLOGY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "net/sim_time.h"

namespace axml {

/// Parameters of one directed link.
struct LinkParams {
  /// One-way propagation delay, seconds.
  double latency_s = 0.010;
  /// Transmission rate, bytes per second.
  double bandwidth_bps = 1.0e6;

  /// Time for `bytes` to traverse the link (latency + transmission).
  double TransferTime(uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_bps;
  }
};

/// Link parameters for all peer pairs, with overrides, plus an optional
/// neighbor graph (defaults to the complete graph on registered peers).
class Topology {
 public:
  Topology() = default;
  explicit Topology(LinkParams default_link) : default_(default_link) {}

  /// Default parameters for links without an override.
  void set_default_link(LinkParams p) { default_ = p; }
  const LinkParams& default_link() const { return default_; }

  /// Overrides the directed link a->b.
  void SetLink(PeerId a, PeerId b, LinkParams p);
  /// Overrides both directions.
  void SetLinkSymmetric(PeerId a, PeerId b, LinkParams p);
  /// Parameters of the directed link a->b (loopback links are free).
  LinkParams Get(PeerId a, PeerId b) const;

  /// Declares the logical neighbor edge a--b (used by flooding lookups).
  void AddNeighborEdge(PeerId a, PeerId b);
  /// Neighbors of `p` in the logical graph; empty when no edges were
  /// declared (callers then treat the graph as complete).
  const std::vector<PeerId>& Neighbors(PeerId p) const;
  bool has_neighbor_graph() const { return !neighbors_.empty(); }

  // --- Factory helpers for benches and tests ---

  /// All pairs share `link`.
  static Topology Uniform(LinkParams link);
  /// Star: spokes reach each other through cheap hub links; the hub peer
  /// has `hub_link` to everyone, spoke-to-spoke links use `spoke_link`.
  static Topology Star(PeerId hub, uint32_t n_peers, LinkParams hub_link,
                       LinkParams spoke_link);
  /// Two clusters with fast intra-cluster and slow inter-cluster links.
  /// Peers [0, split) form cluster A, [split, n_peers) cluster B.
  static Topology TwoClusters(uint32_t n_peers, uint32_t split,
                              LinkParams intra, LinkParams inter);
  /// Random latencies uniform in [lo.latency, hi.latency] and bandwidths
  /// uniform in [lo.bw, hi.bw]; symmetric.
  static Topology RandomUniform(uint32_t n_peers, LinkParams lo,
                                LinkParams hi, Rng* rng);

  /// WAN/region/rack hierarchy for fleet-scale scenarios. Peers are laid
  /// out in contiguous blocks: peer i sits in rack i / peers_per_rack,
  /// racks group into regions of racks_per_region. Same rack -> `rack`,
  /// same region -> `region`, otherwise `wan`. State is O(P) (two flat
  /// zone vectors), not O(P^2) pairwise overrides — the representation
  /// TwoClusters-style factories cannot afford at 10k peers.
  struct HierarchySpec {
    uint32_t regions = 2;
    uint32_t racks_per_region = 4;
    uint32_t peers_per_rack = 25;
    LinkParams wan{0.080, 1.0e6};
    LinkParams region{0.010, 2.0e7};
    LinkParams rack{0.001, 1.0e8};

    uint32_t peer_count() const {
      return regions * racks_per_region * peers_per_rack;
    }
  };
  static Topology Hierarchical(const HierarchySpec& spec);

  /// Region index of `p` in a Hierarchical topology; UINT32_MAX for
  /// peers outside the hierarchy (or a non-hierarchical topology).
  uint32_t RegionOf(PeerId p) const;

 private:
  static uint64_t Key(PeerId a, PeerId b) {
    return (static_cast<uint64_t>(a.index()) << 32) | b.index();
  }

  LinkParams default_;
  std::unordered_map<uint64_t, LinkParams> overrides_;
  std::unordered_map<PeerId, std::vector<PeerId>> neighbors_;

  // Hierarchical zones: rack_of_/region_of_ are indexed by peer index;
  // empty unless built by Hierarchical(). Explicit SetLink overrides
  // still win over the zone relation.
  std::vector<uint32_t> rack_of_;
  std::vector<uint32_t> region_of_;
  LinkParams tier_wan_;
  LinkParams tier_region_;
  LinkParams tier_rack_;
};

}  // namespace axml

#endif  // AXML_NET_TOPOLOGY_H_
