#include "net/catalog.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace axml {

void Catalog::Register(ResourceKind kind, const std::string& name,
                       PeerId holder) {
  auto& v = entries_[MapKey(kind, name)];
  if (std::find(v.begin(), v.end(), holder) == v.end()) v.push_back(holder);
}

void Catalog::Unregister(ResourceKind kind, const std::string& name,
                         PeerId holder) {
  auto it = entries_.find(MapKey(kind, name));
  if (it == entries_.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), holder), v.end());
  if (v.empty()) entries_.erase(it);
}

const std::vector<PeerId>* Catalog::Holders(ResourceKind kind,
                                            const std::string& name) const {
  auto it = entries_.find(MapKey(kind, name));
  return it == entries_.end() ? nullptr : &it->second;
}

bool Catalog::IsAdvertised(ResourceKind kind, const std::string& name,
                           PeerId holder) const {
  const std::vector<PeerId>* h = Holders(kind, name);
  return h != nullptr && std::find(h->begin(), h->end(), holder) != h->end();
}

size_t Catalog::HolderCount(ResourceKind kind,
                            const std::string& name) const {
  const std::vector<PeerId>* h = Holders(kind, name);
  return h == nullptr ? 0 : h->size();
}

// --- CentralCatalog ---

LookupResult CentralCatalog::LookupNow(ResourceKind kind,
                                       const std::string& name, PeerId from,
                                       const Network& net) {
  LookupResult r;
  if (const auto* h = Holders(kind, name)) r.holders = *h;
  // Request to the server + response back.
  r.delay_s = net.topology().Get(from, server_).TransferTime(
                  kCatalogMsgBytes) +
              net.topology().Get(server_, from).TransferTime(
                  kCatalogMsgBytes);
  r.messages = 2;
  r.bytes = 2 * kCatalogMsgBytes;
  return r;
}

void CentralCatalog::Lookup(ResourceKind kind, const std::string& name,
                            PeerId from, Network* net, LookupCallback cb) {
  LookupResult r = LookupNow(kind, name, from, *net);
  // The exchange is anchored on the requester->server link, so it queues
  // behind (and is judged with) that link's data traffic.
  net->ControlRoundtrip(from, server_, r.messages, r.bytes, r.delay_s,
                        [cb = std::move(cb), r] { cb(r); });
}

// --- DhtCatalog ---

uint32_t DhtCatalog::HopCount() const {
  uint32_t n = std::max<uint32_t>(peer_count_, 2);
  return static_cast<uint32_t>(
      std::ceil(std::log2(static_cast<double>(n))));
}

LookupResult DhtCatalog::LookupNow(ResourceKind kind,
                                   const std::string& name, PeerId from,
                                   const Network& net) {
  (void)from;
  LookupResult r;
  if (const auto* h = Holders(kind, name)) r.holders = *h;
  const double hop = avg_hop_latency_s_ > 0
                         ? avg_hop_latency_s_
                         : net.topology().default_link().latency_s;
  const uint32_t hops = HopCount();
  // `hops` routing messages to reach the responsible node, one response.
  r.messages = hops + 1;
  r.bytes = r.messages * kCatalogMsgBytes;
  r.delay_s = static_cast<double>(hops + 1) * hop;
  return r;
}

void DhtCatalog::Lookup(ResourceKind kind, const std::string& name,
                        PeerId from, Network* net, LookupCallback cb) {
  LookupResult r = LookupNow(kind, name, from, *net);
  // Overlay-diffuse: hops spread over many links, so the exchange is
  // anchored on the requester's loopback (free link, injector-exempt).
  net->ControlRoundtrip(from, from, r.messages, r.bytes, r.delay_s,
                        [cb = std::move(cb), r] { cb(r); });
}

// --- FloodCatalog ---

LookupResult FloodCatalog::LookupNow(ResourceKind kind,
                                     const std::string& name, PeerId from,
                                     const Network& net) {
  LookupResult r;
  const std::vector<PeerId>* holders = Holders(kind, name);
  std::unordered_set<PeerId> holder_set;
  if (holders != nullptr) {
    holder_set.insert(holders->begin(), holders->end());
  }

  // BFS over the neighbor graph up to the TTL, counting one message per
  // edge traversed (the classic Gnutella cost). If no neighbor graph is
  // declared, fall back to "broadcast to everyone in one hop".
  if (!net.topology().has_neighbor_graph()) {
    uint32_t n = std::max<uint32_t>(peer_count_, 1) - 1;
    r.messages = n;
    r.bytes = static_cast<uint64_t>(n) * kCatalogMsgBytes;
    r.delay_s = net.topology().default_link().latency_s * 2;
    if (holders != nullptr) r.holders = *holders;
    return r;
  }

  std::unordered_map<PeerId, uint32_t> depth;
  std::deque<PeerId> frontier{from};
  depth[from] = 0;
  uint32_t found_depth = 0;
  while (!frontier.empty()) {
    PeerId cur = frontier.front();
    frontier.pop_front();
    uint32_t d = depth[cur];
    if (holder_set.count(cur) && cur != from) {
      r.holders.push_back(cur);
      found_depth = std::max(found_depth, d);
    }
    if (d >= ttl_) continue;
    for (PeerId nb : net.topology().Neighbors(cur)) {
      ++r.messages;  // the query travels this edge regardless
      if (!depth.count(nb)) {
        depth[nb] = d + 1;
        frontier.push_back(nb);
      }
    }
  }
  // A holder on `from` itself also answers.
  if (holder_set.count(from)) r.holders.push_back(from);
  r.bytes = r.messages * kCatalogMsgBytes;
  const double hop = net.topology().default_link().latency_s;
  // Delay: query floods to found_depth, response unwinds the same path.
  r.delay_s = 2.0 * hop * std::max<uint32_t>(found_depth, 1);
  return r;
}

void FloodCatalog::Lookup(ResourceKind kind, const std::string& name,
                          PeerId from, Network* net, LookupCallback cb) {
  LookupResult r = LookupNow(kind, name, from, *net);
  // Flood traffic diffuses over every edge; like the DHT it is anchored
  // on the requester's loopback rather than any single link.
  net->ControlRoundtrip(from, from, r.messages, r.bytes, r.delay_s,
                        [cb = std::move(cb), r] { cb(r); });
}

}  // namespace axml
