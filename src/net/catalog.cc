#include "net/catalog.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace axml {

namespace {

// Deterministic 64-bit mixer (splitmix64): ring points must not depend
// on process state, so equal seeds give equal rings.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// FNV-1a over the key string, finished through the mixer so nearby names
// spread over the ring.
uint64_t HashKey(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return Mix64(h);
}

// Clockwise ring distance from `a` to `b` (unsigned wraparound).
uint64_t RingDist(uint64_t a, uint64_t b) { return b - a; }

}  // namespace

void CatalogStats::ExportMetrics(MetricSink& sink) const {
  sink.Value("lookups", lookups);
  sink.Value("lookup_messages", lookup_messages);
  sink.Value("lookup_bytes", lookup_bytes);
  sink.Value("advertise_messages", advertise_messages);
  sink.Value("advertise_bytes", advertise_bytes);
  sink.Value("advertise_deltas", advertise_deltas);
  sink.Value("advertise_noops", advertise_noops);
}

void CatalogBackend::Register(ResourceKind kind, const std::string& name,
                              PeerId holder) {
  auto& v = entries_[MapKey(kind, name)];
  if (std::find(v.begin(), v.end(), holder) != v.end()) {
    // Already advertised: the delta protocol makes this free.
    ++stats_.advertise_noops;
    return;
  }
  v.push_back(holder);
  OnAdvertiseDelta(kind, name, holder, /*add=*/true);
}

void CatalogBackend::Unregister(ResourceKind kind, const std::string& name,
                                PeerId holder) {
  auto it = entries_.find(MapKey(kind, name));
  if (it == entries_.end()) {
    ++stats_.advertise_noops;
    return;
  }
  auto& v = it->second;
  auto pos = std::remove(v.begin(), v.end(), holder);
  if (pos == v.end()) {
    ++stats_.advertise_noops;
    return;
  }
  v.erase(pos, v.end());
  if (v.empty()) entries_.erase(it);
  OnAdvertiseDelta(kind, name, holder, /*add=*/false);
}

void CatalogBackend::OnAdvertiseDelta(ResourceKind kind,
                                      const std::string& name, PeerId holder,
                                      bool add) {
  // Default: the delta happened but cost nothing on the wire (the seed's
  // "registration is charged lazily on lookup" model).
  (void)kind;
  (void)name;
  (void)holder;
  (void)add;
  RecordAdvertise(0, 0, 1);
}

void CatalogBackend::EndAdvertiseBatch() {
  if (advertise_batch_depth_ == 0) return;
  if (--advertise_batch_depth_ == 0) FlushAdvertiseBatch();
}

const std::vector<PeerId>* CatalogBackend::Holders(
    ResourceKind kind, const std::string& name) const {
  auto it = entries_.find(MapKey(kind, name));
  return it == entries_.end() ? nullptr : &it->second;
}

bool CatalogBackend::IsAdvertised(ResourceKind kind, const std::string& name,
                                  PeerId holder) const {
  const std::vector<PeerId>* h = Holders(kind, name);
  return h != nullptr && std::find(h->begin(), h->end(), holder) != h->end();
}

size_t CatalogBackend::HolderCount(ResourceKind kind,
                                   const std::string& name) const {
  const std::vector<PeerId>* h = Holders(kind, name);
  return h == nullptr ? 0 : h->size();
}

double CatalogBackend::MaxNodeLoadShare() const {
  uint64_t total = 0;
  uint64_t max = 0;
  for (const auto& [node, n] : node_load_) {
    (void)node;
    total += n;
    max = std::max(max, n);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(max) / static_cast<double>(total);
}

void CatalogBackend::ExportMetrics(MetricSink& sink) const {
  stats_.ExportMetrics(sink);
  uint64_t total = 0;
  uint64_t max = 0;
  for (const auto& [node, n] : node_load_) {
    (void)node;
    total += n;
    max = std::max(max, n);
  }
  sink.Value("node_load_total", total);
  sink.Value("node_load_max", max);
}

void CatalogBackend::ResetStats() {
  stats_ = CatalogStats{};
  node_load_.clear();
}

// --- CentralCatalog ---

LookupResult CentralCatalog::LookupNow(ResourceKind kind,
                                       const std::string& name, PeerId from,
                                       const Network& net) {
  LookupResult r;
  if (const auto* h = Holders(kind, name)) r.holders = *h;
  // Request to the server + response back.
  r.delay_s = net.topology().Get(from, server_).TransferTime(
                  kCatalogMsgBytes) +
              net.topology().Get(server_, from).TransferTime(
                  kCatalogMsgBytes);
  r.messages = 2;
  r.bytes = 2 * kCatalogMsgBytes;
  return r;
}

void CentralCatalog::Lookup(ResourceKind kind, const std::string& name,
                            PeerId from, Network* net, LookupCallback cb) {
  LookupResult r = LookupNow(kind, name, from, *net);
  RecordLookup(r.messages, r.bytes);
  // The server handles the request; the requester receiving its own
  // response is not load.
  AddNodeLoad(server_);
  // The exchange is anchored on the requester->server link, so it queues
  // behind (and is judged with) that link's data traffic.
  net->ControlRoundtrip(from, server_, r.messages, r.bytes, r.delay_s,
                        [cb = std::move(cb), r] { cb(r); });
}

// --- ChordDhtCatalog ---

uint64_t ChordDhtCatalog::PeerPoint(uint32_t index) {
  return Mix64(static_cast<uint64_t>(index) + 1);
}

uint64_t ChordDhtCatalog::KeyPoint(const std::string& map_key) {
  return HashKey(map_key);
}

void ChordDhtCatalog::EnsureRing() const {
  if (!ring_dirty_) return;
  ring_.clear();
  ring_.reserve(peer_count_);
  for (uint32_t i = 0; i < peer_count_; ++i) {
    ring_.emplace_back(PeerPoint(i), i);
  }
  std::sort(ring_.begin(), ring_.end());
  ring_dirty_ = false;
}

uint32_t ChordDhtCatalog::SuccessorOf(uint64_t point) const {
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<uint64_t, uint32_t>& e, uint64_t p) {
        return e.first < p;
      });
  if (it == ring_.end()) it = ring_.begin();
  // Successor-list repair, lazily: a crashed successor is skipped and
  // its arc falls to the next live peer, so digests and lookups keep
  // landing on reachable nodes through churn. When every peer is down
  // (quiesced test teardown) the nominal successor is returned — the
  // network gate stops the traffic anyway.
  auto probe = it;
  for (size_t n = 0; n < ring_.size(); ++n) {
    if (IsLive(probe->second)) return probe->second;
    ++probe;
    if (probe == ring_.end()) probe = ring_.begin();
  }
  return it->second;
}

void ChordDhtCatalog::SetPeerLive(PeerId peer, bool live) {
  if (!peer.is_concrete()) return;
  // The ring itself is membership, not liveness: the peer keeps its
  // point (and reclaims its arc on rejoin); routing filters through
  // down_ at resolution time, so no finger state needs rebuilding.
  if (live) {
    down_.erase(peer.index());
  } else {
    down_.insert(peer.index());
  }
}

uint32_t ChordDhtCatalog::NextHop(uint32_t cur, uint32_t responsible,
                                  uint64_t target) const {
  (void)target;
  const uint64_t cur_pt = PeerPoint(cur);
  const uint64_t span = RingDist(cur_pt, PeerPoint(responsible));
  // Greedy finger routing: the farthest known node that does not
  // overshoot the responsible node. Finger j of `cur` is the successor
  // of cur + 2^j; scanning j downward finds the longest admissible jump.
  for (int j = 63; j >= 0; --j) {
    const uint32_t f = SuccessorOf(cur_pt + (uint64_t{1} << j));
    const uint64_t d = RingDist(cur_pt, PeerPoint(f));
    if (d != 0 && d <= span) return f;
  }
  return responsible;
}

PeerId ChordDhtCatalog::ResponsibleNode(ResourceKind kind,
                                        const std::string& name) const {
  EnsureRing();
  if (ring_.empty()) return PeerId::Invalid();
  return PeerId(SuccessorOf(KeyPoint(MapKey(kind, name))));
}

std::vector<PeerId> ChordDhtCatalog::Route(ResourceKind kind,
                                           const std::string& name,
                                           PeerId from) const {
  EnsureRing();
  std::vector<PeerId> path;
  if (ring_.empty()) return path;
  const uint64_t target = KeyPoint(MapKey(kind, name));
  const uint32_t responsible = SuccessorOf(target);
  // Requesters outside the ring (tests with ad-hoc ids) enter through
  // the responsible node directly.
  if (!from.is_concrete() || from.index() >= peer_count_) {
    path.push_back(PeerId(responsible));
    return path;
  }
  uint32_t cur = from.index();
  while (cur != responsible) {
    cur = NextHop(cur, responsible, target);
    path.push_back(PeerId(cur));
  }
  return path;
}

LookupResult ChordDhtCatalog::LookupNow(ResourceKind kind,
                                        const std::string& name, PeerId from,
                                        const Network& net) {
  LookupResult r;
  if (const auto* h = Holders(kind, name)) r.holders = *h;
  const std::vector<PeerId> route = Route(kind, name, from);
  PeerId cur = from;
  for (PeerId next : route) {
    r.delay_s += net.topology().Get(cur, next).TransferTime(kCatalogMsgBytes);
    ++r.messages;
    cur = next;
  }
  if (cur != from) {
    // Response hop responsible -> requester.
    r.delay_s += net.topology().Get(cur, from).TransferTime(kCatalogMsgBytes);
    ++r.messages;
  }
  r.bytes = r.messages * kCatalogMsgBytes;
  return r;
}

void ChordDhtCatalog::Lookup(ResourceKind kind, const std::string& name,
                             PeerId from, Network* net, LookupCallback cb) {
  EnsureRing();
  ++stats_.lookups;
  struct Chain {
    ResourceKind kind;
    std::string name;
    PeerId from;
    std::vector<PeerId> route;
    size_t i = 0;
    double delay_s = 0;
    uint64_t messages = 0;
    Network* net = nullptr;
    LookupCallback cb;
  };
  auto st = std::make_shared<Chain>();
  st->kind = kind;
  st->name = name;
  st->from = from;
  st->route = Route(kind, name, from);
  st->net = net;
  st->cb = std::move(cb);

  // Iterative hop-by-hop routing: each hop is a ControlRoundtrip on the
  // actual cur->next link, so it is priced against that link's traffic,
  // traced, and subject to fault injection; the receiving node's load
  // counter moves when the hop is delivered.
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, st, step]() {
    if (st->i >= st->route.size()) {
      LookupResult r;
      // Holders snapshot when the request reaches the responsible node.
      if (const auto* h = Holders(st->kind, st->name)) r.holders = *h;
      const PeerId responsible =
          st->route.empty() ? st->from : st->route.back();
      if (responsible == st->from) {
        // The requester owns the entry's arc: a local index read.
        r.delay_s = st->delay_s;
        r.messages = st->messages;
        r.bytes = r.messages * kCatalogMsgBytes;
        st->net->ControlRoundtrip(st->from, st->from, 0, 0, 0.0,
                                  [st, r] { st->cb(r); });
        return;
      }
      const double back = st->net->topology()
                              .Get(responsible, st->from)
                              .TransferTime(kCatalogMsgBytes);
      r.delay_s = st->delay_s + back;
      r.messages = st->messages + 1;
      r.bytes = r.messages * kCatalogMsgBytes;
      stats_.lookup_messages += 1;
      stats_.lookup_bytes += kCatalogMsgBytes;
      st->net->ControlRoundtrip(responsible, st->from, 1, kCatalogMsgBytes,
                                back, [st, r] { st->cb(r); });
      return;
    }
    const PeerId cur = st->i == 0 ? st->from : st->route[st->i - 1];
    const PeerId next = st->route[st->i];
    ++st->i;
    const double d =
        st->net->topology().Get(cur, next).TransferTime(kCatalogMsgBytes);
    st->delay_s += d;
    ++st->messages;
    stats_.lookup_messages += 1;
    stats_.lookup_bytes += kCatalogMsgBytes;
    st->net->ControlRoundtrip(cur, next, 1, kCatalogMsgBytes, d,
                              [this, st, step, next] {
                                AddNodeLoad(next);
                                (*step)();
                              });
  };
  (*step)();
}

void ChordDhtCatalog::OnAdvertiseDelta(ResourceKind kind,
                                       const std::string& name, PeerId holder,
                                       bool add) {
  (void)add;
  if (net_ == nullptr || !holder.is_concrete()) {
    // Standalone (no network attached): free, like the seed.
    RecordAdvertise(0, 0, 1);
    return;
  }
  EnsureRing();
  if (ring_.empty()) {
    RecordAdvertise(0, 0, 1);
    return;
  }
  const uint32_t responsible = SuccessorOf(KeyPoint(MapKey(kind, name)));
  if (in_advertise_batch()) {
    ++pending_digests_[{holder.index(), responsible}];
    return;
  }
  SendDigest(holder.index(), responsible, 1);
}

void ChordDhtCatalog::FlushAdvertiseBatch() {
  if (net_ == nullptr) {
    pending_digests_.clear();
    return;
  }
  for (const auto& [pair, deltas] : pending_digests_) {
    SendDigest(pair.first, pair.second, deltas);
  }
  pending_digests_.clear();
}

void ChordDhtCatalog::SendDigest(uint32_t holder, uint32_t responsible,
                                 uint64_t deltas) {
  if (holder == responsible) {
    // The holder owns the entry's arc: a local index write.
    RecordAdvertise(0, 0, deltas);
    return;
  }
  const uint64_t bytes =
      kCatalogMsgBytes + (deltas - 1) * kCatalogDigestEntryBytes;
  const PeerId h(holder);
  const PeerId r(responsible);
  const double d = net_->topology().Get(h, r).TransferTime(bytes);
  RecordAdvertise(1, bytes, deltas);
  AddNodeLoad(r);
  net_->ControlRoundtrip(h, r, 1, bytes, d, [] {});
}

// --- DhtCatalog ---

uint32_t DhtCatalog::HopCount() const {
  uint32_t n = std::max<uint32_t>(peer_count_, 2);
  return static_cast<uint32_t>(
      std::ceil(std::log2(static_cast<double>(n))));
}

LookupResult DhtCatalog::LookupNow(ResourceKind kind,
                                   const std::string& name, PeerId from,
                                   const Network& net) {
  (void)from;
  LookupResult r;
  if (const auto* h = Holders(kind, name)) r.holders = *h;
  const double hop = avg_hop_latency_s_ > 0
                         ? avg_hop_latency_s_
                         : net.topology().default_link().latency_s;
  const uint32_t hops = HopCount();
  // `hops` routing messages to reach the responsible node, one response.
  r.messages = hops + 1;
  r.bytes = r.messages * kCatalogMsgBytes;
  r.delay_s = static_cast<double>(hops + 1) * hop;
  return r;
}

void DhtCatalog::Lookup(ResourceKind kind, const std::string& name,
                        PeerId from, Network* net, LookupCallback cb) {
  LookupResult r = LookupNow(kind, name, from, *net);
  RecordLookup(r.messages, r.bytes);
  // Overlay-diffuse: hops spread over many links, so the exchange is
  // anchored on the requester's loopback (free link, injector-exempt).
  net->ControlRoundtrip(from, from, r.messages, r.bytes, r.delay_s,
                        [cb = std::move(cb), r] { cb(r); });
}

// --- FloodCatalog ---

LookupResult FloodCatalog::LookupNow(ResourceKind kind,
                                     const std::string& name, PeerId from,
                                     const Network& net) {
  LookupResult r;
  const std::vector<PeerId>* holders = Holders(kind, name);
  std::unordered_set<PeerId> holder_set;
  if (holders != nullptr) {
    holder_set.insert(holders->begin(), holders->end());
  }

  // BFS over the neighbor graph up to the TTL, counting one message per
  // edge traversed (the classic Gnutella cost). If no neighbor graph is
  // declared, fall back to "broadcast to everyone in one hop".
  if (!net.topology().has_neighbor_graph()) {
    uint32_t n = std::max<uint32_t>(peer_count_, 1) - 1;
    r.messages = n;
    r.bytes = static_cast<uint64_t>(n) * kCatalogMsgBytes;
    r.delay_s = net.topology().default_link().latency_s * 2;
    if (holders != nullptr) r.holders = *holders;
    return r;
  }

  std::unordered_map<PeerId, uint32_t> depth;
  std::deque<PeerId> frontier{from};
  depth[from] = 0;
  uint32_t found_depth = 0;
  while (!frontier.empty()) {
    PeerId cur = frontier.front();
    frontier.pop_front();
    uint32_t d = depth[cur];
    if (holder_set.count(cur) && cur != from) {
      r.holders.push_back(cur);
      found_depth = std::max(found_depth, d);
    }
    if (d >= ttl_) continue;
    for (PeerId nb : net.topology().Neighbors(cur)) {
      ++r.messages;  // the query travels this edge regardless
      if (!depth.count(nb)) {
        depth[nb] = d + 1;
        frontier.push_back(nb);
      }
    }
  }
  // A holder on `from` itself also answers.
  if (holder_set.count(from)) r.holders.push_back(from);
  r.bytes = r.messages * kCatalogMsgBytes;
  const double hop = net.topology().default_link().latency_s;
  // Delay: query floods to found_depth, response unwinds the same path.
  r.delay_s = 2.0 * hop * std::max<uint32_t>(found_depth, 1);
  return r;
}

void FloodCatalog::Lookup(ResourceKind kind, const std::string& name,
                          PeerId from, Network* net, LookupCallback cb) {
  LookupResult r = LookupNow(kind, name, from, *net);
  // Flood load diffuses over every visited peer; it is not attributed
  // to node_load (the hot-node comparison is central vs DHT).
  RecordLookup(r.messages, r.bytes);
  // Flood traffic diffuses over every edge; like the DHT it is anchored
  // on the requester's loopback rather than any single link.
  net->ControlRoundtrip(from, from, r.messages, r.bytes, r.delay_s,
                        [cb = std::move(cb), r] { cb(r); });
}

}  // namespace axml
