#include "net/topology.h"

namespace axml {

void Topology::SetLink(PeerId a, PeerId b, LinkParams p) {
  overrides_[Key(a, b)] = p;
}

void Topology::SetLinkSymmetric(PeerId a, PeerId b, LinkParams p) {
  SetLink(a, b, p);
  SetLink(b, a, p);
}

LinkParams Topology::Get(PeerId a, PeerId b) const {
  if (a == b) {
    // Loopback: effectively free (memory copy), modeled as zero latency
    // and very high bandwidth so local "transfers" cost ~nothing.
    return LinkParams{0.0, 1.0e12};
  }
  auto it = overrides_.find(Key(a, b));
  if (it != overrides_.end()) return it->second;
  if (a.index() < rack_of_.size() && b.index() < rack_of_.size()) {
    if (rack_of_[a.index()] == rack_of_[b.index()]) return tier_rack_;
    if (region_of_[a.index()] == region_of_[b.index()]) return tier_region_;
    return tier_wan_;
  }
  return default_;
}

Topology Topology::Hierarchical(const HierarchySpec& spec) {
  // The WAN tier doubles as the default so peers added past the declared
  // hierarchy still get a sane (slow) link.
  Topology t(spec.wan);
  const uint32_t n = spec.peer_count();
  t.rack_of_.resize(n);
  t.region_of_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    t.rack_of_[i] = i / spec.peers_per_rack;
    t.region_of_[i] = i / (spec.racks_per_region * spec.peers_per_rack);
  }
  t.tier_wan_ = spec.wan;
  t.tier_region_ = spec.region;
  t.tier_rack_ = spec.rack;
  return t;
}

uint32_t Topology::RegionOf(PeerId p) const {
  if (!p.is_concrete() || p.index() >= region_of_.size()) return UINT32_MAX;
  return region_of_[p.index()];
}

void Topology::AddNeighborEdge(PeerId a, PeerId b) {
  neighbors_[a].push_back(b);
  neighbors_[b].push_back(a);
}

const std::vector<PeerId>& Topology::Neighbors(PeerId p) const {
  static const std::vector<PeerId> kEmpty;
  auto it = neighbors_.find(p);
  return it == neighbors_.end() ? kEmpty : it->second;
}

Topology Topology::Uniform(LinkParams link) { return Topology(link); }

Topology Topology::Star(PeerId hub, uint32_t n_peers, LinkParams hub_link,
                        LinkParams spoke_link) {
  Topology t(spoke_link);
  for (uint32_t i = 0; i < n_peers; ++i) {
    PeerId p(i);
    if (p == hub) continue;
    t.SetLinkSymmetric(hub, p, hub_link);
    t.AddNeighborEdge(hub, p);
  }
  return t;
}

Topology Topology::TwoClusters(uint32_t n_peers, uint32_t split,
                               LinkParams intra, LinkParams inter) {
  Topology t(inter);
  for (uint32_t i = 0; i < n_peers; ++i) {
    for (uint32_t j = i + 1; j < n_peers; ++j) {
      bool same = (i < split) == (j < split);
      if (same) t.SetLinkSymmetric(PeerId(i), PeerId(j), intra);
    }
  }
  return t;
}

Topology Topology::RandomUniform(uint32_t n_peers, LinkParams lo,
                                 LinkParams hi, Rng* rng) {
  Topology t(lo);
  for (uint32_t i = 0; i < n_peers; ++i) {
    for (uint32_t j = i + 1; j < n_peers; ++j) {
      LinkParams p;
      p.latency_s = lo.latency_s +
                    rng->UniformDouble() * (hi.latency_s - lo.latency_s);
      p.bandwidth_bps =
          lo.bandwidth_bps +
          rng->UniformDouble() * (hi.bandwidth_bps - lo.bandwidth_bps);
      t.SetLinkSymmetric(PeerId(i), PeerId(j), p);
    }
  }
  return t;
}

}  // namespace axml
