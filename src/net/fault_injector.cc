#include "net/fault_injector.h"

#include "common/str_util.h"

namespace axml {

std::string FaultStats::ToString() const {
  return StrCat("judged=", judged, " delivered=", delivered,
                " dropped=", dropped,
                " partition_dropped=", partition_dropped,
                " delayed=", delayed);
}

void FaultStats::ExportMetrics(MetricSink& sink) const {
  sink.Value("judged", judged);
  sink.Value("delivered", delivered);
  sink.Value("dropped", dropped);
  sink.Value("partition_dropped", partition_dropped);
  sink.Value("delayed", delayed);
}

void FaultInjector::SetLinkConfig(PeerId from, PeerId to,
                                  const FaultConfig& config) {
  link_configs_[{from, to}] = config;
}

void FaultInjector::AddPartition(PartitionWindow window) {
  partitions_.push_back(std::move(window));
}

const FaultConfig& FaultInjector::ConfigFor(PeerId from, PeerId to) const {
  auto it = link_configs_.find({from, to});
  return it == link_configs_.end() ? config_ : it->second;
}

FaultInjector::Verdict FaultInjector::Judge(PeerId from, PeerId to,
                                            SimTime now) {
  Verdict v;
  if (from == to) return v;  // loopback is not a network link
  ++stats_.judged;
  // Partitions first: a scheduled window is a hard fact about the
  // fabric, not a random event — no Rng draw, so adding a window does
  // not shift the random stream of unrelated links.
  for (const PartitionWindow& w : partitions_) {
    if (now < w.start_s || now >= w.end_s) continue;
    if (w.island.count(from) != w.island.count(to)) {
      v.drop = true;
      v.partitioned = true;
      ++stats_.partition_dropped;
      return v;
    }
  }
  const FaultConfig& cfg = ConfigFor(from, to);
  // Each hazard draws only when armed: a zero config consumes no
  // randomness, keeping an attached-but-idle injector byte-identical to
  // no injector at all.
  if (cfg.loss_prob > 0 && rng_->Bernoulli(cfg.loss_prob)) {
    v.drop = true;
    ++stats_.dropped;
    return v;
  }
  if (cfg.spike_prob > 0 && rng_->Bernoulli(cfg.spike_prob)) {
    v.extra_delay += cfg.spike_delay_s;
  }
  if (cfg.reorder_prob > 0 && rng_->Bernoulli(cfg.reorder_prob)) {
    v.extra_delay += cfg.reorder_delay_s;
  }
  if (v.extra_delay > 0) ++stats_.delayed;
  ++stats_.delivered;
  return v;
}

}  // namespace axml
