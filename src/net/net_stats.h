// Transfer accounting: the quantities the paper's optimizations are
// about. Every benchmark reports these counters for naive vs rewritten
// evaluation strategies.

#ifndef AXML_NET_NET_STATS_H_
#define AXML_NET_NET_STATS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "common/logging.h"
#include "net/sim_time.h"
#include "obs/metrics.h"
#include "xml/wire.h"

namespace axml {

/// Counters for one directed peer pair.
struct PairStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

/// Global transfer statistics collected by the Network.
class NetStats {
 public:
  void Record(PeerId from, PeerId to, uint64_t bytes);
  /// Charges control traffic (catalog lookups, lease/anti-entropy
  /// digests). The aggregate counters take the whole roundtrip; the
  /// per-message sizes (bytes / messages) feed the shared msg-size
  /// histogram so control traffic is no longer invisible in obs.
  void RecordControl(uint64_t messages, uint64_t bytes);
  /// Records a message the fabric dropped — fault injection, a crashed
  /// endpoint — after it was charged as sent.
  void RecordDrop(uint64_t bytes);
  /// Records a replica-invalidation notification (origin -> copy
  /// holder): counted like any link message *and* tallied apart, so the
  /// push-refresh benches can report notify traffic next to data bytes.
  void RecordNotify(PeerId from, PeerId to, uint64_t bytes);
  /// Tallies one encoded payload against its message class — the
  /// per-class half of the accounting; the link half is Record /
  /// RecordNotify as before. Every payload-carrying send records both.
  void RecordPayload(wire::MessageClass cls, uint64_t bytes);
  void Reset();

  uint64_t total_messages() const { return total_messages_; }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t control_messages() const { return control_messages_; }
  uint64_t control_bytes() const { return control_bytes_; }
  uint64_t notify_messages() const { return notify_messages_; }
  uint64_t notify_bytes() const { return notify_bytes_; }
  /// Bytes that actually crossed between distinct peers (loopback
  /// excluded).
  uint64_t remote_bytes() const { return remote_bytes_; }
  uint64_t remote_messages() const { return remote_messages_; }
  /// Messages (and their bytes) the fabric dropped — a subset of the
  /// sent totals above; 0 on a perfect fabric.
  uint64_t dropped_messages() const { return dropped_messages_; }
  uint64_t dropped_bytes() const { return dropped_bytes_; }
  /// Encoded messages/bytes by wire message class (kTree, kShipment,
  /// kNotify, ...). Only payload-carrying sends are classed; modeled
  /// byte-count traffic (analytic catalog backends) is not.
  uint64_t class_messages(wire::MessageClass cls) const {
    return class_messages_[static_cast<size_t>(cls)];
  }
  uint64_t class_bytes(wire::MessageClass cls) const {
    return class_bytes_[static_cast<size_t>(cls)];
  }

  PairStats Pair(PeerId from, PeerId to) const;

  /// Distribution of per-message sizes (log2 buckets; Record,
  /// RecordNotify and RecordControl all feed it — control roundtrips at
  /// their mean per-message size).
  const Histogram& message_bytes_histogram() const { return msg_bytes_; }

  /// Emits every counter (and the size histogram) into `sink` under its
  /// accessor's name — the registry retrofit. A test pins that these
  /// exports and the typed accessors never drift.
  void ExportMetrics(MetricSink& sink) const;

  std::string ToString() const;

 private:
  static uint64_t Key(PeerId a, PeerId b) {
    // Both indices must be real peers: kInvalidIndex / kAnyIndex would
    // silently alias distinct bogus pairs onto shared map slots.
    AXML_DCHECK(a.is_concrete()) << "NetStats pair with non-peer "
                                 << a.ToString();
    AXML_DCHECK(b.is_concrete()) << "NetStats pair with non-peer "
                                 << b.ToString();
    return (static_cast<uint64_t>(a.index()) << 32) | b.index();
  }

  uint64_t total_messages_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t remote_messages_ = 0;
  uint64_t remote_bytes_ = 0;
  uint64_t control_messages_ = 0;
  uint64_t control_bytes_ = 0;
  uint64_t notify_messages_ = 0;
  uint64_t notify_bytes_ = 0;
  uint64_t dropped_messages_ = 0;
  uint64_t dropped_bytes_ = 0;
  uint64_t class_messages_[wire::kMessageClassCount] = {};
  uint64_t class_bytes_[wire::kMessageClassCount] = {};
  Histogram msg_bytes_;
  std::unordered_map<uint64_t, PairStats> pairs_;
};

}  // namespace axml

#endif  // AXML_NET_NET_STATS_H_
