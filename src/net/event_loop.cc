#include "net/event_loop.h"

#include <utility>

#include "common/logging.h"

namespace axml {

void EventLoop::ScheduleAt(SimTime t, Callback cb) {
  AXML_CHECK(cb != nullptr);
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void EventLoop::ScheduleAfter(SimTime delay, Callback cb) {
  AXML_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(cb));
}

bool EventLoop::RunOne() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately and Event is not used elsewhere.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.cb();
  return true;
}

uint64_t EventLoop::Run() {
  uint64_t n = 0;
  while (RunOne()) ++n;
  return n;
}

uint64_t EventLoop::RunUntil(SimTime t) {
  uint64_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    RunOne();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace axml
