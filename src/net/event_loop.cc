#include "net/event_loop.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace axml {

void EventLoop::ScheduleAt(SimTime t, Callback cb) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(cb != nullptr);
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void EventLoop::ScheduleAfter(SimTime delay, Callback cb) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(cb));
}

uint64_t EventLoop::AddPeriodic(SimTime interval, Callback cb) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(cb != nullptr);
  AXML_CHECK_GT(interval, 0.0);
  const uint64_t id = next_periodic_id_++;
  periodics_.push_back(Periodic{id, interval, now_ + interval,
                                std::move(cb)});
  return id;
}

void EventLoop::RemovePeriodic(uint64_t id) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  for (auto it = periodics_.begin(); it != periodics_.end(); ++it) {
    if (it->id == id) {
      periodics_.erase(it);
      return;
    }
  }
}

void EventLoop::FirePeriodics() {
  // Ticks fire earliest first and may post events or add/remove
  // periodics, so both the horizon (the queue head) and the due scan
  // are re-derived after every firing — a tick that posts an event
  // earlier than the old head narrows the horizon, and that event must
  // run before any later-due tick.
  for (;;) {
    if (queue_.empty() || periodics_.empty()) return;
    const SimTime horizon = queue_.top().time;
    size_t due = periodics_.size();
    for (size_t i = 0; i < periodics_.size(); ++i) {
      if (periodics_[i].next <= horizon &&
          (due == periodics_.size() ||
           periodics_[i].next < periodics_[due].next)) {
        due = i;
      }
    }
    if (due == periodics_.size()) return;
    const uint64_t id = periodics_[due].id;
    now_ = std::max(now_, periodics_[due].next);
    periodics_[due].next += periodics_[due].interval;
    Callback cb = periodics_[due].cb;  // copy: the tick may mutate periodics_
    ++executed_;
    cb();
    // Idle-gap coalescing, decided against the *post-tick* head: if
    // this periodic is due again before the next event, nothing happens
    // in between for it to piggyback on — skip the missed intervals and
    // fire once per gap. A tick that posted nearer events moved the
    // head up instead, and the cadence is preserved.
    if (queue_.empty()) return;
    const SimTime new_horizon = queue_.top().time;
    for (Periodic& p : periodics_) {
      if (p.id != id) continue;
      while (p.next <= new_horizon) p.next += p.interval;
      break;
    }
  }
}

bool EventLoop::RunOne() {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  if (queue_.empty()) return false;
  // Periodic tasks due before the head event fire first — the head's
  // timestamp is where virtual time is headed, and a tick may post new
  // events (possibly earlier than the current head), so the head is
  // re-read after the ticks.
  if (!periodics_.empty()) FirePeriodics();
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately and Event is not used elsewhere.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = std::max(now_, ev.time);
  ++executed_;
  ev.cb();
  return true;
}

uint64_t EventLoop::Run() {
  uint64_t n = 0;
  while (RunOne()) ++n;
  return n;
}

uint64_t EventLoop::RunUntil(SimTime t) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  uint64_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    RunOne();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace axml
