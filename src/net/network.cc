#include "net/network.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/str_util.h"
#include "net/fault_injector.h"

namespace axml {

namespace {
// Floor for retry backoffs: virtual time must advance between attempts
// or a retry loop at a frozen timestamp would never leave a partition
// window (and never terminate).
constexpr SimTime kMinRetryDelay = 1e-6;

/// Adapts a payload delivery to the DeliverFn plumbing: the encoded
/// bytes ride in the closure (shared, immutable) and are handed to the
/// receiver at arrival time — the sim's stand-in for the wire.
Network::DeliverFn CarryPayload(std::shared_ptr<const wire::Payload> p,
                                Network::PayloadDeliverFn on_deliver) {
  return [p = std::move(p), cb = std::move(on_deliver)]() {
    if (cb) cb(*p);
  };
}
}  // namespace

void Network::Send(PeerId from, PeerId to, uint64_t bytes,
                   DeliverFn on_deliver) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(from.is_concrete());
  AXML_CHECK(to.is_concrete());
  stats_.Record(from, to, bytes);
  ScheduleDelivery(from, to, bytes, std::move(on_deliver), "msg");
}

void Network::SendNotify(PeerId from, PeerId to, uint64_t bytes,
                         DeliverFn on_deliver) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(from.is_concrete());
  AXML_CHECK(to.is_concrete());
  stats_.RecordNotify(from, to, bytes);
  ScheduleDelivery(from, to, bytes, std::move(on_deliver), "notify");
}

void Network::SendReliable(PeerId from, PeerId to, uint64_t bytes,
                           DeliverFn on_deliver) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(from.is_concrete());
  AXML_CHECK(to.is_concrete());
  stats_.Record(from, to, bytes);
  ReliableAttempt(from, to, bytes, std::move(on_deliver));
}

void Network::Send(PeerId from, PeerId to, wire::Payload payload,
                   PayloadDeliverFn on_deliver) {
  // The boundary contract: what is priced is what is carried. The byte
  // count handed to the link accounting below IS payload.size(); no
  // other size exists on this path.
  auto p = std::make_shared<const wire::Payload>(std::move(payload));
  const uint64_t bytes = p->size();
  stats_.RecordPayload(p->message_class(), bytes);
  Send(from, to, bytes, CarryPayload(std::move(p), std::move(on_deliver)));
}

void Network::SendNotify(PeerId from, PeerId to, wire::Payload payload,
                         PayloadDeliverFn on_deliver) {
  auto p = std::make_shared<const wire::Payload>(std::move(payload));
  const uint64_t bytes = p->size();
  AXML_DCHECK(p->message_class() == wire::MessageClass::kNotify);
  stats_.RecordPayload(p->message_class(), bytes);
  SendNotify(from, to, bytes,
             CarryPayload(std::move(p), std::move(on_deliver)));
}

void Network::SendReliable(PeerId from, PeerId to, wire::Payload payload,
                           PayloadDeliverFn on_deliver) {
  auto p = std::make_shared<const wire::Payload>(std::move(payload));
  const uint64_t bytes = p->size();
  stats_.RecordPayload(p->message_class(), bytes);
  SendReliable(from, to, bytes,
               CarryPayload(std::move(p), std::move(on_deliver)));
}

void Network::ControlRoundtrip(PeerId from, PeerId to, uint64_t messages,
                               wire::Payload payload,
                               uint64_t response_bytes, SimTime delay,
                               DeliverFn on_done) {
  const uint64_t bytes = payload.size() + response_bytes;
  stats_.RecordPayload(payload.message_class(), payload.size());
  ControlRoundtrip(from, to, messages, bytes, delay, std::move(on_done));
}

void Network::ReliableAttempt(PeerId from, PeerId to, uint64_t bytes,
                              DeliverFn on_deliver) {
  // The drop path schedules a retransmission one RTO later (the sender
  // notices the missing ack); each retransmission advances virtual
  // time, so partition windows are eventually outlived. A send whose
  // endpoint has crashed is abandoned instead — retrying into a down
  // peer forever would keep the event loop alive.
  DeliverFn on_drop = [this, from, to, bytes, on_deliver]() {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    if (!IsPeerUp(from) || !IsPeerUp(to)) return;
    const LinkParams link = topology_.Get(from, to);
    const SimTime rto =
        std::max(2 * link.latency_s +
                     static_cast<double>(bytes) / link.bandwidth_bps,
                 kMinRetryDelay);
    loop_->ScheduleAfter(rto, [this, from, to, bytes, on_deliver]() {
      AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
      if (!IsPeerUp(from) || !IsPeerUp(to)) return;
      stats_.Record(from, to, bytes);  // the retransmission is real bytes
      ReliableAttempt(from, to, bytes, on_deliver);
    });
  };
  DeliverFn deliver = on_deliver;
  ScheduleDelivery(from, to, bytes, std::move(deliver), "msg",
                   /*min_delay=*/0, std::move(on_drop));
}

bool Network::ScheduleDelivery(PeerId from, PeerId to, uint64_t bytes,
                               DeliverFn on_deliver, const char* kind,
                               SimTime min_delay, DeliverFn on_drop) {
  if (!IsPeerUp(from)) {
    // A crashed peer originates nothing: dropped before reaching the
    // wire (no link occupancy, no trace span).
    stats_.RecordDrop(bytes);
    if (on_drop) loop_->ScheduleAt(loop_->now(), std::move(on_drop));
    return false;
  }

  const LinkParams link = topology_.Get(from, to);
  const double transmit =
      static_cast<double>(bytes) / link.bandwidth_bps;

  SimTime& busy_until = link_busy_until_[Key(from, to)];
  const SimTime start = std::max(loop_->now(), busy_until);
  busy_until = start + transmit;
  SimTime arrival = start + std::max(transmit + link.latency_s, min_delay);

  bool dropped = false;
  if (injector_ != nullptr) {
    const FaultInjector::Verdict verdict = injector_->Judge(from, to, start);
    dropped = verdict.drop;
    arrival += verdict.extra_delay;
  }
  // The wire does not know who crashed: a message racing a crash is
  // committed at send time and evaporates on arrival at a down peer.
  if (dropped || !IsPeerUp(to)) {
    stats_.RecordDrop(bytes);
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Record("net", "drop", from, bytes, arrival - loop_->now(),
                      StrCat("-> ", to.ToString()));
    }
    if (on_drop) {
      if (tracer_ != nullptr) on_drop = tracer_->Bind(std::move(on_drop));
      loop_->ScheduleAt(arrival, std::move(on_drop));
    }
    return true;
  }

  if (tracer_ != nullptr) {
    if (tracer_->enabled()) {
      // The span covers queueing + transmit + propagation, stamped at
      // the sender; it inherits whatever causal id is current.
      tracer_->Record("net", kind, from, bytes, arrival - loop_->now(),
                      StrCat("-> ", to.ToString()));
    }
    // Delivery runs under the sender's causal id — the cross-hop link.
    on_deliver = tracer_->Bind(std::move(on_deliver));
  }
  // The arrival callback re-checks liveness: `to` may crash while the
  // message is in flight.
  DeliverFn guarded_drop = std::move(on_drop);
  loop_->ScheduleAt(
      arrival, [this, to, bytes, cb = std::move(on_deliver),
                drop_cb = std::move(guarded_drop)]() mutable {
        AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
        if (!IsPeerUp(to)) {
          stats_.RecordDrop(bytes);
          if (drop_cb) drop_cb();
          return;
        }
        cb();
      });
  return true;
}

void Network::ControlRoundtrip(PeerId from, PeerId to, uint64_t messages,
                               uint64_t bytes, SimTime delay,
                               DeliverFn on_done) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(from.is_concrete());
  AXML_CHECK(to.is_concrete());
  stats_.RecordControl(messages, bytes);
  ControlAttempt(from, to, bytes, delay, std::move(on_done));
}

void Network::ControlAttempt(PeerId from, PeerId to, uint64_t bytes,
                             SimTime delay, DeliverFn on_done) {
  // A dropped roundtrip is retried after its own delay (the requester
  // times out and re-asks), charging one fresh control message per
  // retry. Only a crashed requester abandons the exchange — catalog
  // servers answer whoever is still alive.
  DeliverFn on_drop = [this, from, to, bytes, delay, on_done]() {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    if (!IsPeerUp(from)) return;
    const SimTime backoff = std::max(delay, kMinRetryDelay);
    loop_->ScheduleAfter(backoff, [this, from, to, bytes, delay, on_done]() {
      AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
      if (!IsPeerUp(from)) return;
      stats_.RecordControl(1, bytes);
      ControlAttempt(from, to, bytes, delay, on_done);
    });
  };
  DeliverFn done = on_done;
  ScheduleDelivery(from, to, bytes, std::move(done), "control",
                   /*min_delay=*/delay, std::move(on_drop));
}

void Network::SetPeerUp(PeerId peer, bool up) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(peer.is_concrete());
  if (up) {
    down_peers_.erase(peer.index());
  } else {
    down_peers_.insert(peer.index());
  }
}

bool Network::IsPeerUp(PeerId peer) const {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  return down_peers_.count(peer.index()) == 0;
}

}  // namespace axml
