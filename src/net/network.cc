#include "net/network.h"

#include <algorithm>

#include "common/logging.h"
#include "common/str_util.h"

namespace axml {

void Network::Send(PeerId from, PeerId to, uint64_t bytes,
                   DeliverFn on_deliver) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(from.is_concrete());
  AXML_CHECK(to.is_concrete());
  stats_.Record(from, to, bytes);
  ScheduleDelivery(from, to, bytes, std::move(on_deliver), "msg");
}

void Network::SendNotify(PeerId from, PeerId to, uint64_t bytes,
                         DeliverFn on_deliver) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(from.is_concrete());
  AXML_CHECK(to.is_concrete());
  stats_.RecordNotify(from, to, bytes);
  ScheduleDelivery(from, to, bytes, std::move(on_deliver), "notify");
}

void Network::ScheduleDelivery(PeerId from, PeerId to, uint64_t bytes,
                               DeliverFn on_deliver, const char* kind) {
  const LinkParams link = topology_.Get(from, to);
  const double transmit =
      static_cast<double>(bytes) / link.bandwidth_bps;

  SimTime& busy_until = link_busy_until_[Key(from, to)];
  const SimTime start = std::max(loop_->now(), busy_until);
  busy_until = start + transmit;
  const SimTime arrival = start + transmit + link.latency_s;

  if (tracer_ != nullptr) {
    if (tracer_->enabled()) {
      // The span covers queueing + transmit + propagation, stamped at
      // the sender; it inherits whatever causal id is current.
      tracer_->Record("net", kind, from, bytes, arrival - loop_->now(),
                      StrCat("-> ", to.ToString()));
    }
    // Delivery runs under the sender's causal id — the cross-hop link.
    on_deliver = tracer_->Bind(std::move(on_deliver));
  }
  loop_->ScheduleAt(arrival, std::move(on_deliver));
}

void Network::ControlRoundtrip(uint64_t messages, uint64_t bytes,
                               SimTime delay, DeliverFn on_done) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  stats_.RecordControl(messages, bytes);
  loop_->ScheduleAfter(delay, std::move(on_done));
}

}  // namespace axml
