// Deterministic network fault injection.
//
// The paper's replication story assumes a transport that never fails;
// every "no stale read" property so far was proven on that perfect
// fabric. The FaultInjector is the controlled way to break it: the
// Network consults Judge() for every link message and the injector
// decides — from per-link loss probability, delay spikes, reordering
// hold-backs, and scheduled partition windows — whether the message is
// dropped or delayed. All randomness comes from ONE injected seeded Rng
// (common/rng.h), never from an internal or global source, so a fault
// schedule replays identically for a given seed (scripts/check_source.py
// lints this file pair for it). A zero FaultConfig draws nothing from
// the Rng at all, so an attached-but-idle injector leaves a run
// byte-identical to one with no injector.

#ifndef AXML_NET_FAULT_INJECTOR_H_
#define AXML_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "net/sim_time.h"
#include "obs/metrics.h"

namespace axml {

/// Per-link fault parameters. Every probability defaults to 0 — a
/// default FaultConfig is a perfect link.
struct FaultConfig {
  /// Per-message Bernoulli loss probability.
  double loss_prob = 0;
  /// Probability of a latency spike; a spiked message arrives
  /// `spike_delay_s` later than scheduled.
  double spike_prob = 0;
  SimTime spike_delay_s = 0;
  /// Probability of a reordering hold-back: the message is delayed by
  /// `reorder_delay_s`, letting later traffic on other links (and any
  /// non-held message on this link) overtake it.
  double reorder_prob = 0;
  SimTime reorder_delay_s = 0;
};

/// A scheduled partition: during [start_s, end_s) every message with
/// exactly one endpoint inside `island` is dropped (both directions).
struct PartitionWindow {
  SimTime start_s = 0;
  SimTime end_s = 0;
  std::set<PeerId> island;
};

/// Counters for injected faults.
struct FaultStats {
  uint64_t judged = 0;           ///< messages the injector ruled on
  uint64_t delivered = 0;        ///< ruled deliverable (possibly delayed)
  uint64_t dropped = 0;          ///< random per-link losses
  uint64_t partition_dropped = 0;///< losses to a partition window
  uint64_t delayed = 0;          ///< spike or reorder hold-backs applied

  std::string ToString() const;

  /// Registry retrofit: every field above under its own name.
  void ExportMetrics(MetricSink& sink) const;
};

/// Rules on the fate of each network message. Owned by whoever owns the
/// Rng (tests, benches, the soak harness); the Network only borrows it
/// via Network::set_fault_injector.
class FaultInjector {
 public:
  /// `rng` must outlive the injector. The injector NEVER constructs or
  /// seeds an Rng of its own — determinism of the whole simulation
  /// hinges on every draw coming from this one injected, seeded stream.
  explicit FaultInjector(Rng* rng) : rng_(rng) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Fault parameters applied to every link without an override.
  void set_config(const FaultConfig& config) { config_ = config; }
  const FaultConfig& config() const { return config_; }

  /// Overrides the directed link from->to.
  void SetLinkConfig(PeerId from, PeerId to, const FaultConfig& config);

  /// Schedules a partition window. Windows may overlap; a message is
  /// dropped if any active window separates its endpoints.
  void AddPartition(PartitionWindow window);

  /// What happens to one message on from->to at virtual time `now`.
  struct Verdict {
    bool drop = false;
    /// True when the drop came from a partition window (no Rng draw).
    bool partitioned = false;
    /// Added to the arrival time of a delivered message.
    SimTime extra_delay = 0;
  };

  /// Rules on one message. Loopback (from == to) is not a network link
  /// and is always delivered untouched. Partition windows are checked
  /// first and consume no randomness; loss, spike and reorder each draw
  /// from the injected Rng only when their probability is non-zero, so
  /// a zero config consumes no randomness at all.
  Verdict Judge(PeerId from, PeerId to, SimTime now);

  const FaultStats& stats() const { return stats_; }

 private:
  const FaultConfig& ConfigFor(PeerId from, PeerId to) const;

  Rng* rng_;
  FaultConfig config_;
  std::map<std::pair<PeerId, PeerId>, FaultConfig> link_configs_;
  std::vector<PartitionWindow> partitions_;
  FaultStats stats_;
};

}  // namespace axml

#endif  // AXML_NET_FAULT_INJECTOR_H_
