#include "net/net_stats.h"

#include "common/str_util.h"

namespace axml {

void NetStats::Record(PeerId from, PeerId to, uint64_t bytes) {
  ++total_messages_;
  total_bytes_ += bytes;
  msg_bytes_.Add(bytes);
  if (from != to) {
    ++remote_messages_;
    remote_bytes_ += bytes;
  }
  PairStats& p = pairs_[Key(from, to)];
  ++p.messages;
  p.bytes += bytes;
}

void NetStats::RecordControl(uint64_t messages, uint64_t bytes) {
  control_messages_ += messages;
  control_bytes_ += bytes;
  // Control roundtrips carry `messages` wire messages averaging
  // bytes / messages each; feed the shared size histogram at that mean
  // so catalog and lease traffic shows up next to data messages.
  const uint64_t per_message = messages == 0 ? bytes : bytes / messages;
  for (uint64_t i = 0; i < messages; ++i) msg_bytes_.Add(per_message);
}

void NetStats::RecordPayload(wire::MessageClass cls, uint64_t bytes) {
  ++class_messages_[static_cast<size_t>(cls)];
  class_bytes_[static_cast<size_t>(cls)] += bytes;
}

void NetStats::RecordDrop(uint64_t bytes) {
  ++dropped_messages_;
  dropped_bytes_ += bytes;
}

void NetStats::RecordNotify(PeerId from, PeerId to, uint64_t bytes) {
  Record(from, to, bytes);
  ++notify_messages_;
  notify_bytes_ += bytes;
}

// Wholesale reassignment so coverage is total by construction: every
// counter, the message-size histogram, *and* the per-pair map go back
// to zero (a member-by-member reset once forgot the pair map; a test
// now pins the full sweep).
void NetStats::Reset() { *this = NetStats(); }

void NetStats::ExportMetrics(MetricSink& sink) const {
  sink.Value("total_messages", total_messages_);
  sink.Value("total_bytes", total_bytes_);
  sink.Value("remote_messages", remote_messages_);
  sink.Value("remote_bytes", remote_bytes_);
  sink.Value("control_messages", control_messages_);
  sink.Value("control_bytes", control_bytes_);
  sink.Value("notify_messages", notify_messages_);
  sink.Value("notify_bytes", notify_bytes_);
  sink.Value("dropped_messages", dropped_messages_);
  sink.Value("dropped_bytes", dropped_bytes_);
  for (size_t i = 0; i < wire::kMessageClassCount; ++i) {
    const char* name =
        wire::MessageClassName(static_cast<wire::MessageClass>(i));
    sink.Value(StrCat("class_msgs_", name), class_messages_[i]);
    sink.Value(StrCat("class_bytes_", name), class_bytes_[i]);
  }
  sink.Histo("msg_bytes", msg_bytes_);
}

PairStats NetStats::Pair(PeerId from, PeerId to) const {
  auto it = pairs_.find(Key(from, to));
  return it == pairs_.end() ? PairStats{} : it->second;
}

std::string NetStats::ToString() const {
  return StrCat("messages=", total_messages_, " bytes=", total_bytes_,
                " remote_messages=", remote_messages_,
                " remote_bytes=", remote_bytes_,
                " control_messages=", control_messages_,
                " control_bytes=", control_bytes_,
                " notify_messages=", notify_messages_,
                " notify_bytes=", notify_bytes_,
                " dropped_messages=", dropped_messages_,
                " dropped_bytes=", dropped_bytes_);
}

}  // namespace axml
