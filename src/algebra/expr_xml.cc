#include "algebra/expr_xml.h"

#include "common/str_util.h"
#include "xml/xml_parser.h"
#include "xml/xml_serializer.h"

namespace axml {
namespace {

std::string PeerAttr(PeerId p) {
  return p.is_any() ? "any" : std::to_string(p.index());
}

Result<PeerId> ParsePeerAttr(const std::string& s) {
  if (s == "any") return PeerId::Any();
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size()) {
    return Status::ParseError(StrCat("bad peer attribute \"", s, "\""));
  }
  return PeerId(static_cast<uint32_t>(v));
}

TreePtr Attr(std::string_view name, std::string value, NodeIdGen* gen) {
  return MakeTextElement(StrCat("@", name), std::move(value), gen);
}

/// Returns the value of attribute-child `@name`, or "" when absent.
std::string GetAttr(const TreeNode& node, std::string_view name) {
  std::string want = StrCat("@", name);
  for (const auto& c : node.children()) {
    if (c->is_element() && c->label_text() == want) {
      return c->StringValue();
    }
  }
  return "";
}

bool IsAttr(const TreeNode& n) {
  return n.is_element() && !n.label_text().empty() &&
         n.label_text()[0] == '@';
}

}  // namespace

TreePtr ExprToXml(const Expr& e, NodeIdGen* gen) {
  switch (e.kind()) {
    case Expr::Kind::kTree: {
      TreePtr n = TreeNode::Element("x:tree", gen);
      n->AddChild(Attr("peer", PeerAttr(e.tree_owner()), gen));
      n->AddChild(e.tree()->Clone(gen));
      return n;
    }
    case Expr::Kind::kDoc: {
      TreePtr n = TreeNode::Element("x:doc", gen);
      n->AddChild(Attr("name", e.doc_name(), gen));
      n->AddChild(Attr("peer", PeerAttr(e.doc_peer()), gen));
      return n;
    }
    case Expr::Kind::kApply: {
      TreePtr n = TreeNode::Element("x:apply", gen);
      n->AddChild(Attr("peer", PeerAttr(e.query_peer()), gen));
      n->AddChild(MakeTextElement("x:query", e.query().text(), gen));
      for (const auto& a : e.args()) {
        TreePtr arg = TreeNode::Element("x:arg", gen);
        arg->AddChild(ExprToXml(*a, gen));
        n->AddChild(std::move(arg));
      }
      return n;
    }
    case Expr::Kind::kCall: {
      TreePtr n = TreeNode::Element("x:call", gen);
      n->AddChild(Attr("peer", PeerAttr(e.provider()), gen));
      n->AddChild(Attr("service", e.service(), gen));
      for (const auto& p : e.params()) {
        TreePtr param = TreeNode::Element("x:param", gen);
        param->AddChild(ExprToXml(*p, gen));
        n->AddChild(std::move(param));
      }
      for (const auto& f : e.forwards()) {
        n->AddChild(MakeTextElement("x:forw", f.ToString(), gen));
      }
      return n;
    }
    case Expr::Kind::kSend: {
      const Expr::SendDest& d = e.dest();
      switch (d.kind) {
        case Expr::SendDest::Kind::kPeer: {
          TreePtr n = TreeNode::Element("x:send", gen);
          n->AddChild(Attr("peer", PeerAttr(d.peer), gen));
          n->AddChild(ExprToXml(*e.payload(), gen));
          return n;
        }
        case Expr::SendDest::Kind::kNodes: {
          TreePtr n = TreeNode::Element("x:sendNodes", gen);
          for (const auto& loc : d.nodes) {
            n->AddChild(MakeTextElement("x:to", loc.ToString(), gen));
          }
          n->AddChild(ExprToXml(*e.payload(), gen));
          return n;
        }
        case Expr::SendDest::Kind::kNewDoc: {
          TreePtr n = TreeNode::Element("x:sendDoc", gen);
          n->AddChild(Attr("name", d.doc_name, gen));
          n->AddChild(Attr("peer", PeerAttr(d.peer), gen));
          n->AddChild(ExprToXml(*e.payload(), gen));
          return n;
        }
      }
      break;
    }
    case Expr::Kind::kShipQuery: {
      TreePtr n = TreeNode::Element("x:shipQuery", gen);
      n->AddChild(Attr("peer", PeerAttr(e.ship_dest()), gen));
      n->AddChild(Attr("qpeer", PeerAttr(e.query_peer()), gen));
      n->AddChild(Attr("as", e.install_as(), gen));
      n->AddChild(MakeTextElement("x:query", e.query().text(), gen));
      return n;
    }
    case Expr::Kind::kEvalAt: {
      TreePtr n = TreeNode::Element("x:evalAt", gen);
      n->AddChild(Attr("peer", PeerAttr(e.eval_where()), gen));
      n->AddChild(ExprToXml(*e.body(), gen));
      return n;
    }
    case Expr::Kind::kSeq: {
      TreePtr n = TreeNode::Element("x:seq", gen);
      n->AddChild(ExprToXml(*e.first(), gen));
      n->AddChild(ExprToXml(*e.then(), gen));
      return n;
    }
  }
  return nullptr;
}

std::string SerializeCompactExpr(const Expr& e, NodeIdGen* gen) {
  TreePtr t = ExprToXml(e, gen);
  return SerializeCompact(*t);
}

namespace {

/// Non-attribute element children of `node`.
std::vector<TreePtr> ElemChildren(const TreeNode& node) {
  std::vector<TreePtr> out;
  for (const auto& c : node.children()) {
    if (c->is_element() && !IsAttr(*c)) out.push_back(c);
  }
  return out;
}

}  // namespace

Result<ExprPtr> ExprFromXml(const TreeNode& node) {
  if (!node.is_element()) {
    return Status::ParseError("expression node must be an element");
  }
  const std::string& label = node.label_text();
  if (label == "x:tree") {
    AXML_ASSIGN_OR_RETURN(PeerId p, ParsePeerAttr(GetAttr(node, "peer")));
    std::vector<TreePtr> kids = ElemChildren(node);
    if (kids.size() != 1) {
      return Status::ParseError("x:tree needs exactly one tree child");
    }
    return Expr::Tree(kids[0], p);
  }
  if (label == "x:doc") {
    AXML_ASSIGN_OR_RETURN(PeerId p, ParsePeerAttr(GetAttr(node, "peer")));
    return Expr::Doc(GetAttr(node, "name"), p);
  }
  if (label == "x:apply") {
    AXML_ASSIGN_OR_RETURN(PeerId p, ParsePeerAttr(GetAttr(node, "peer")));
    Query q;
    std::vector<ExprPtr> args;
    for (const auto& c : ElemChildren(node)) {
      if (c->label_text() == "x:query") {
        AXML_ASSIGN_OR_RETURN(q, Query::Parse(c->StringValue()));
      } else if (c->label_text() == "x:arg") {
        std::vector<TreePtr> inner = ElemChildren(*c);
        if (inner.size() != 1) {
          return Status::ParseError("x:arg needs exactly one child");
        }
        AXML_ASSIGN_OR_RETURN(ExprPtr arg, ExprFromXml(*inner[0]));
        args.push_back(std::move(arg));
      }
    }
    if (!q.valid()) return Status::ParseError("x:apply lacks x:query");
    return Expr::Apply(std::move(q), p, std::move(args));
  }
  if (label == "x:call") {
    AXML_ASSIGN_OR_RETURN(PeerId p, ParsePeerAttr(GetAttr(node, "peer")));
    std::vector<ExprPtr> params;
    std::vector<NodeLocation> forwards;
    for (const auto& c : ElemChildren(node)) {
      if (c->label_text() == "x:param") {
        std::vector<TreePtr> inner = ElemChildren(*c);
        if (inner.size() != 1) {
          return Status::ParseError("x:param needs exactly one child");
        }
        AXML_ASSIGN_OR_RETURN(ExprPtr param, ExprFromXml(*inner[0]));
        params.push_back(std::move(param));
      } else if (c->label_text() == "x:forw") {
        AXML_ASSIGN_OR_RETURN(NodeLocation loc,
                              NodeLocation::Parse(c->StringValue()));
        forwards.push_back(loc);
      }
    }
    return Expr::Call(p, GetAttr(node, "service"), std::move(params),
                      std::move(forwards));
  }
  if (label == "x:send") {
    AXML_ASSIGN_OR_RETURN(PeerId p, ParsePeerAttr(GetAttr(node, "peer")));
    std::vector<TreePtr> kids = ElemChildren(node);
    if (kids.size() != 1) {
      return Status::ParseError("x:send needs exactly one payload");
    }
    AXML_ASSIGN_OR_RETURN(ExprPtr payload, ExprFromXml(*kids[0]));
    return Expr::SendToPeer(p, std::move(payload));
  }
  if (label == "x:sendNodes") {
    std::vector<NodeLocation> locs;
    ExprPtr payload;
    for (const auto& c : ElemChildren(node)) {
      if (c->label_text() == "x:to") {
        AXML_ASSIGN_OR_RETURN(NodeLocation loc,
                              NodeLocation::Parse(c->StringValue()));
        locs.push_back(loc);
      } else {
        AXML_ASSIGN_OR_RETURN(payload, ExprFromXml(*c));
      }
    }
    if (payload == nullptr || locs.empty()) {
      return Status::ParseError("x:sendNodes needs x:to list and payload");
    }
    return Expr::SendToNodes(std::move(locs), std::move(payload));
  }
  if (label == "x:sendDoc") {
    AXML_ASSIGN_OR_RETURN(PeerId p, ParsePeerAttr(GetAttr(node, "peer")));
    std::vector<TreePtr> kids = ElemChildren(node);
    if (kids.size() != 1) {
      return Status::ParseError("x:sendDoc needs exactly one payload");
    }
    AXML_ASSIGN_OR_RETURN(ExprPtr payload, ExprFromXml(*kids[0]));
    return Expr::SendAsDoc(GetAttr(node, "name"), p, std::move(payload));
  }
  if (label == "x:shipQuery") {
    AXML_ASSIGN_OR_RETURN(PeerId p, ParsePeerAttr(GetAttr(node, "peer")));
    AXML_ASSIGN_OR_RETURN(PeerId qp,
                          ParsePeerAttr(GetAttr(node, "qpeer")));
    Query q;
    for (const auto& c : ElemChildren(node)) {
      if (c->label_text() == "x:query") {
        AXML_ASSIGN_OR_RETURN(q, Query::Parse(c->StringValue()));
      }
    }
    if (!q.valid()) return Status::ParseError("x:shipQuery lacks x:query");
    return Expr::ShipQuery(p, std::move(q), qp, GetAttr(node, "as"));
  }
  if (label == "x:evalAt") {
    AXML_ASSIGN_OR_RETURN(PeerId p, ParsePeerAttr(GetAttr(node, "peer")));
    std::vector<TreePtr> kids = ElemChildren(node);
    if (kids.size() != 1) {
      return Status::ParseError("x:evalAt needs exactly one body");
    }
    AXML_ASSIGN_OR_RETURN(ExprPtr body, ExprFromXml(*kids[0]));
    return Expr::EvalAt(p, std::move(body));
  }
  if (label == "x:seq") {
    std::vector<TreePtr> kids = ElemChildren(node);
    if (kids.size() != 2) {
      return Status::ParseError("x:seq needs exactly two children");
    }
    AXML_ASSIGN_OR_RETURN(ExprPtr first, ExprFromXml(*kids[0]));
    AXML_ASSIGN_OR_RETURN(ExprPtr then, ExprFromXml(*kids[1]));
    return Expr::Seq(std::move(first), std::move(then));
  }
  return Status::ParseError(
      StrCat("unknown expression element <", label, ">"));
}

Result<ExprPtr> ParseExprXml(std::string_view xml, NodeIdGen* gen) {
  AXML_ASSIGN_OR_RETURN(TreePtr t, ParseXml(xml, gen));
  return ExprFromXml(*t);
}

}  // namespace axml
