// Operational semantics of the algebra: eval@p(e) as a distributed
// dataflow over the simulated network (§3.2, definitions (1)-(9)).
//
// Mapping of the definitions to the implementation:
//  (1) tree evaluation — a local tree is emitted once its embedded
//      service calls (if any) have delivered their responses; responses
//      accumulate as siblings of the sc node, as in §2.2.
//  (2) local query application — a standing QueryInstance at the
//      evaluating peer; arrivals are charged compute time.
//  (3)/(4) send — results of the payload, evaluated at the current peer,
//      are copied (fresh node ids at the destination) and shipped with
//      latency/bandwidth charging; multi-destination sends fan out one
//      copy per target node. A send returns ∅ locally.
//  (5) remote data — a tree/document owned by another peer is evaluated
//      at its owner and the results shipped to the evaluating peer.
//  (6) service call — parameters are evaluated at the caller, shipped to
//      the provider, run through the service's query (or native body),
//      and the responses are shipped to the forward list — or back to
//      the caller when the forward list is empty (the pre-extension
//      default).
//  (7) remote query — the query text is shipped from its defining peer
//      to the evaluating peer before the instance starts.
//  (8) query shipping — installs the query as a new service at the
//      destination; ∅ locally.
//  (9) generic references — resolved via the system catalog (charged
//      discovery traffic) + GenericCatalog pick policy, then evaluated
//      as the chosen concrete resource.
//
// Undefined cases are honored: sending a tree the current peer does not
// own fails with StatusCode::kUndefined ("p2 cannot send something it
// doesn't have", §3.2).
//
// The evaluator also hosts the AXML document runtime (§2.2): activating
// sc nodes embedded in installed documents, with immediate / lazy /
// after-call modes.

#ifndef AXML_ALGEBRA_EVALUATOR_H_
#define AXML_ALGEBRA_EVALUATOR_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "algebra/expr.h"
#include "peer/system.h"

namespace axml {

/// Knobs for one evaluation.
struct EvalOptions {
  /// How def. (9) picks among generic-class members.
  PickPolicy pick_policy = PickPolicy::kNearest;
  /// Charge catalog traffic when resolving @any references.
  bool charge_discovery = true;
  /// Enforce service signatures on parameters and responses.
  bool type_check = true;
  /// Route remote document reads through the replica subsystem
  /// (src/replica/): a fresh cached copy is read locally for 0 wire
  /// bytes, and a transferred document is inserted into the reader's
  /// transfer cache and advertised in the catalog / generic classes.
  /// When the system additionally enables document sharding
  /// (ReplicaManager::set_sharding_enabled), large documents read as
  /// shard deltas: only the pieces the reader lacks cross the wire.
  /// Off by default — the paper's baseline semantics always transfer.
  bool use_replica_cache = false;
  /// Record a timestamped trace of distributed events (ships, service
  /// starts, installs, activations, generic picks). See
  /// Evaluator::trace().
  bool trace = false;
};

/// One entry of the evaluation trace.
struct TraceEvent {
  SimTime time = 0;
  std::string what;
};

/// Counters for the evaluator's replica read path. Each Evaluator mounts
/// its own into the system's MetricRegistry at "eval/..." for its
/// lifetime (several evaluators on one system sum there).
struct EvalCounters {
  uint64_t replica_hits = 0;    ///< reads served from a fresh whole copy
  uint64_t sharded_hits = 0;    ///< reads assembled from resident shards
  uint64_t remote_fetches = 0;  ///< whole-document wire transfers issued
  uint64_t sharded_fetches = 0;  ///< shard delta fetches launched
  uint64_t coalesced_joins = 0;  ///< reads that joined an in-flight copy
  uint64_t refresh_waits = 0;  ///< reads parked behind an eager refresh

  /// Registry retrofit: every field above under its own name.
  void ExportMetrics(MetricSink& sink) const;
};

/// What an evaluation produced and what it cost.
struct EvalOutcome {
  /// Result stream collected at the evaluating peer.
  std::vector<TreePtr> results;
  /// Virtual time when the evaluation started / fully quiesced.
  SimTime start_time = 0;
  SimTime completion_time = 0;
  /// Wall-clock of the evaluation in virtual seconds.
  double Duration() const { return completion_time - start_time; }
};

/// Evaluates algebra expressions against an AxmlSystem.
///
/// One Evaluator may run many evaluations; network statistics accumulate
/// in the system (reset them between measurements).
class Evaluator {
 public:
  explicit Evaluator(AxmlSystem* system, EvalOptions options = {});
  /// Unmounts this evaluator's counters from the system's registry (the
  /// system must still be alive).
  ~Evaluator();

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// eval@p(e): deploys the expression, runs the system to quiescence,
  /// returns the collected results. Errors raised asynchronously (type
  /// mismatches, unknown services, undefined sends) surface here.
  Result<EvalOutcome> Eval(PeerId p, const ExprPtr& e);

  /// Asynchronous deployment: results stream into `emit` at peer `p` as
  /// the loop runs. Callers drive the loop themselves (or call
  /// RunToQuiescence).
  Status Deploy(PeerId p, const ExprPtr& e, EmitFn emit);

  /// Runs the event loop and deferred continuations until nothing is
  /// left. Returns events executed.
  uint64_t RunToQuiescence();

  /// Registers `fn` to run after the loop next drains (used for
  /// stream-completion semantics: "all responses have arrived").
  void AtQuiescence(std::function<void()> fn);

  // --- AXML document runtime (§2.2) ---

  /// Installs an AXML document and activates its immediate-mode calls
  /// (and, transitively, after-call chains).
  Status InstallAxmlDocument(PeerId host, DocName name, TreePtr root);

  /// Activates the service call at node `sc_node` of a document hosted
  /// by `host`. Responses accumulate as siblings of the sc node (or at
  /// the call's forward list).
  Status ActivateCall(PeerId host, NodeId sc_node);

  /// Activates every lazy-mode call of `doc` (the "query needs the
  /// result" trigger of §2.2); used by doc() evaluation.
  Status ActivateLazyCalls(PeerId host, const DocName& doc);

  /// First error raised asynchronously since the last Eval, if any.
  const Status& async_status() const { return async_status_; }

  /// Trace events recorded so far (empty unless options.trace). Cleared
  /// at each Eval().
  const std::vector<TraceEvent>& trace() const { return trace_; }
  /// One line per event: "[  0.020s] ship p0->p1 123B".
  std::string FormatTrace() const;

  AxmlSystem* system() { return sys_; }
  const EvalOptions& options() const { return options_; }

  /// Replica read-path counters (cumulative over this evaluator's
  /// lifetime; the registry reads these very fields at "eval/...").
  const EvalCounters& counters() const { return counters_; }

 private:
  struct DeployCtx;

  /// Core recursion: evaluate `e` in the context of peer `ctx`,
  /// delivering each result tree at `ctx` through `emit`.
  void DeployExpr(PeerId ctx, const ExprPtr& e, EmitFn emit);

  void DeployTreeLocal(PeerId owner, const TreePtr& tree, EmitFn emit);
  void DeployDoc(PeerId ctx, const ExprPtr& e, EmitFn emit);
  void DeployApply(PeerId ctx, const ExprPtr& e, EmitFn emit);
  void DeployCall(PeerId ctx, const ExprPtr& e, EmitFn emit);
  void DeploySend(PeerId ctx, const ExprPtr& e, EmitFn emit);
  void DeployShipQuery(PeerId ctx, const ExprPtr& e, EmitFn emit);
  void DeployEvalAt(PeerId ctx, const ExprPtr& e, EmitFn emit);
  void DeploySeq(PeerId ctx, const ExprPtr& e, EmitFn emit);

  /// Copies `tree` to `to` (fresh ids minted there), charging the link,
  /// and invokes `deliver` with the landed copy at arrival time.
  void Ship(PeerId from, PeerId to, const TreePtr& tree,
            std::function<void(TreePtr)> deliver);

  /// Records an asynchronous failure (first one wins).
  void Fail(Status s);

  /// Appends a trace event at the current virtual time (no-op unless
  /// options.trace).
  void Trace(std::string what);

  /// Starts the provider-side engine of a service call; returns a sink
  /// accepting (param_index, tree) at the provider, or null on error.
  using ParamSink = std::function<void(int, TreePtr)>;
  ParamSink StartServiceInstance(PeerId provider, const Service& svc,
                                 std::function<void(TreePtr)> on_result);

  AxmlSystem* sys_;
  EvalOptions options_;
  EvalCounters counters_;
  MetricRegistry::SourceId metrics_source_ = 0;
  Status async_status_;
  std::deque<std::function<void()>> finalizers_;
  /// Keeps standing query instances alive for the evaluator's lifetime.
  std::vector<std::shared_ptr<void>> retained_;
  /// sc nodes already activated (activation is idempotent, and after-call
  /// chains must not loop).
  std::unordered_set<NodeId> activated_;
  /// In-flight transfer coalescing (replica cache only): readers of a
  /// (reader, owner, doc) whose transfer is already underway wait for
  /// that copy instead of issuing their own.
  std::map<std::tuple<PeerId, PeerId, DocName>, std::vector<EmitFn>>
      inflight_;
  std::vector<TraceEvent> trace_;
};

}  // namespace axml

#endif  // AXML_ALGEBRA_EVALUATOR_H_
