// XML (de)serialization of algebra expressions.
//
// §3.1: "An expression can be viewed (serialized) as an XML tree, whose
// root is labeled with the expression constructor, and whose children are
// the expression parameters. An expression located at some peer, denoted
// e@p, is an XML tree." This is what makes delegation (EvalAt) possible:
// the expression itself travels as XML, and its serialized size is the
// number of bytes charged for the shipment.
//
// Element vocabulary (attributes follow the '@' child convention):
//   <x:tree peer="P">      one child: the tree
//   <x:doc name="D" peer="P|any"/>
//   <x:apply peer="P">     <x:query>AQL</x:query> then one <x:arg> per arg
//   <x:call peer="P|any" service="S">  <x:param>expr</x:param>* <x:forw>loc</x:forw>*
//   <x:send peer="P">      one child: payload
//   <x:sendNodes>          <x:to>loc</x:to>+ then payload
//   <x:sendDoc name="D" peer="P">  payload
//   <x:shipQuery peer="P" qpeer="P1" as="NAME"> <x:query>AQL</x:query>
//   <x:evalAt peer="P">    body
//   <x:seq>                first then

#ifndef AXML_ALGEBRA_EXPR_XML_H_
#define AXML_ALGEBRA_EXPR_XML_H_

#include <string>

#include "algebra/expr.h"
#include "common/status.h"
#include "xml/tree.h"

namespace axml {

/// Serializes `e` into an XML tree (fresh node ids from `gen`).
TreePtr ExprToXml(const Expr& e, NodeIdGen* gen);

/// Compact textual form; its length is the shipping cost of `e`.
std::string SerializeCompactExpr(const Expr& e, NodeIdGen* gen);

/// Parses an expression back from its XML form.
Result<ExprPtr> ExprFromXml(const TreeNode& node);

/// Round-trip from text.
Result<ExprPtr> ParseExprXml(std::string_view xml, NodeIdGen* gen);

}  // namespace axml

#endif  // AXML_ALGEBRA_EXPR_XML_H_
