#include "algebra/expr.h"

#include "algebra/expr_xml.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "xml/wire.h"

namespace axml {

ExprPtr Expr::Tree(TreePtr t, PeerId owner) {
  AXML_CHECK(t != nullptr);
  AXML_CHECK(owner.is_concrete());
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kTree));
  e->tree_ = std::move(t);
  e->peer_ = owner;
  return e;
}

ExprPtr Expr::Doc(DocName d, PeerId owner) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kDoc));
  e->name_ = std::move(d);
  e->peer_ = owner;
  return e;
}

ExprPtr Expr::GenericDoc(std::string class_name) {
  return Doc(std::move(class_name), PeerId::Any());
}

ExprPtr Expr::Apply(Query q, PeerId query_peer, std::vector<ExprPtr> args) {
  AXML_CHECK(q.valid());
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kApply));
  e->query_ = std::move(q);
  e->peer_ = query_peer;
  e->children_ = std::move(args);
  return e;
}

ExprPtr Expr::Call(PeerId provider, ServiceName service,
                   std::vector<ExprPtr> params,
                   std::vector<NodeLocation> forwards) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kCall));
  e->peer_ = provider;
  e->name_ = std::move(service);
  e->children_ = std::move(params);
  e->forwards_ = std::move(forwards);
  return e;
}

ExprPtr Expr::CallGeneric(std::string service_class,
                          std::vector<ExprPtr> params,
                          std::vector<NodeLocation> forwards) {
  return Call(PeerId::Any(), std::move(service_class), std::move(params),
              std::move(forwards));
}

ExprPtr Expr::SendToPeer(PeerId dest, ExprPtr payload) {
  AXML_CHECK(payload != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kSend));
  e->dest_.kind = SendDest::Kind::kPeer;
  e->dest_.peer = dest;
  e->children_.push_back(std::move(payload));
  return e;
}

ExprPtr Expr::SendToNodes(std::vector<NodeLocation> dests,
                          ExprPtr payload) {
  AXML_CHECK(payload != nullptr);
  AXML_CHECK(!dests.empty());
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kSend));
  e->dest_.kind = SendDest::Kind::kNodes;
  e->dest_.nodes = std::move(dests);
  e->children_.push_back(std::move(payload));
  return e;
}

ExprPtr Expr::SendAsDoc(DocName name, PeerId dest, ExprPtr payload) {
  AXML_CHECK(payload != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kSend));
  e->dest_.kind = SendDest::Kind::kNewDoc;
  e->dest_.peer = dest;
  e->dest_.doc_name = std::move(name);
  e->children_.push_back(std::move(payload));
  return e;
}

ExprPtr Expr::ShipQuery(PeerId dest, Query q, PeerId query_peer,
                        ServiceName install_as) {
  AXML_CHECK(q.valid());
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kShipQuery));
  e->dest_.kind = SendDest::Kind::kPeer;
  e->dest_.peer = dest;
  e->query_ = std::move(q);
  e->peer_ = query_peer;
  e->name_ = std::move(install_as);
  return e;
}

ExprPtr Expr::EvalAt(PeerId where, ExprPtr body) {
  AXML_CHECK(body != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kEvalAt));
  e->peer_ = where;
  e->children_.push_back(std::move(body));
  return e;
}

ExprPtr Expr::Seq(ExprPtr first, ExprPtr then) {
  AXML_CHECK(first != nullptr);
  AXML_CHECK(then != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kSeq));
  e->children_.push_back(std::move(first));
  e->children_.push_back(std::move(then));
  return e;
}

ExprPtr Expr::WithChildren(std::vector<ExprPtr> children) const {
  AXML_CHECK_EQ(children.size(), children_.size());
  auto e = std::shared_ptr<Expr>(new Expr(kind_));
  e->tree_ = tree_;
  e->peer_ = peer_;
  e->name_ = name_;
  e->query_ = query_;
  e->dest_ = dest_;
  e->forwards_ = forwards_;
  e->children_ = std::move(children);
  return e;
}

std::string Expr::ToString() const {
  auto list = [](const std::vector<ExprPtr>& es) {
    std::string s;
    for (size_t i = 0; i < es.size(); ++i) {
      if (i > 0) s += ", ";
      s += es[i]->ToString();
    }
    return s;
  };
  switch (kind_) {
    case Kind::kTree:
      return StrCat("tree[", wire::EncodedTreeSize(*tree_), "B]@",
                    peer_.ToString());
    case Kind::kDoc:
      return StrCat("doc(", name_, ")@", peer_.ToString());
    case Kind::kApply:
      return StrCat("q@", peer_.ToString(), "(", list(children_), ")");
    case Kind::kCall: {
      std::string s = StrCat("sc(", peer_.ToString(), ", ", name_, ", [",
                             list(children_), "]");
      if (!forwards_.empty()) {
        s += ", fw=[";
        for (size_t i = 0; i < forwards_.size(); ++i) {
          if (i > 0) s += ", ";
          s += forwards_[i].ToString();
        }
        s += "]";
      }
      s += ")";
      return s;
    }
    case Kind::kSend:
      switch (dest_.kind) {
        case SendDest::Kind::kPeer:
          return StrCat("send(", dest_.peer.ToString(), ", ",
                        payload()->ToString(), ")");
        case SendDest::Kind::kNodes: {
          std::string s = "send([";
          for (size_t i = 0; i < dest_.nodes.size(); ++i) {
            if (i > 0) s += ", ";
            s += dest_.nodes[i].ToString();
          }
          return StrCat(s, "], ", payload()->ToString(), ")");
        }
        case SendDest::Kind::kNewDoc:
          return StrCat("send(doc:", dest_.doc_name, "@",
                        dest_.peer.ToString(), ", ", payload()->ToString(),
                        ")");
      }
      return "send(?)";
    case Kind::kShipQuery:
      return StrCat("shipQuery(", dest_.peer.ToString(), ", q@",
                    peer_.ToString(), " as ", name_, ")");
    case Kind::kEvalAt:
      return StrCat("evalAt(", peer_.ToString(), ", ", body()->ToString(),
                    ")");
    case Kind::kSeq:
      return StrCat("seq(", first()->ToString(), "; ", then()->ToString(),
                    ")");
  }
  return "?";
}

size_t Expr::SerializedSize() const {
  NodeIdGen gen;
  return SerializeCompactExpr(*this, &gen).size();
}

size_t Expr::NodeCount() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->NodeCount();
  return n;
}

}  // namespace axml
