// The expression algebra E (§3.1), the paper's main contribution.
//
// Constructors, mapping 1:1 to the paper's language:
//
//   Tree(t, p)            — a tree t@p
//   Doc(d, p)             — a document d@p
//   GenericDoc(ed)        — a generic document ed@any (§2.3)
//   Apply(q, pq, args)    — q@pq(e1, ..., en): query application
//   Call(pv, s, params, fwList)
//                         — sc(pprov|any, serv, [param...], [forw...])
//   SendToPeer(p2, e)     — send(p2, e): make e's results available at p2
//   SendToNodes(locs, e)  — send([n2@p2, ...], e): append results under
//                           each listed node (§3.1 multi-destination)
//   SendAsDoc(d, p2, e)   — send(d@p2, e): install the result as a new
//                           document named d at p2
//   ShipQuery(p2, q, name)— send(p2, q@p1): deploy q as a new service on
//                           p2 (def. (8)); `name` is the service name
//                           ("by a slight abuse of notation" the paper
//                           leaves it implicit; we make it explicit)
//   EvalAt(p2, e)         — delegate: ship the (serialized) expression
//                           tree e to p2, evaluate it there, results
//                           return to the consumer. This is the paper's
//                           eval@p2(send(p, eval@p(e))) pattern of rules
//                           (14)/(15) reified as a constructor; §3.1
//                           notes expressions are themselves XML trees
//                           that can be shipped.
//   Seq(first, then)      — evaluate `first` to quiescence (for its side
//                           effects), then evaluate `then`. Needed by
//                           rule (13), whose right-hand side "is only
//                           enabled when d is available at p".
//
// Expressions are immutable and shared (ExprPtr); rewrites build new
// nodes. See expr_xml.h for the XML (de)serialization used when an
// expression is delegated to another peer, and evaluator.h for the
// operational semantics (definitions (1)-(9)).

#ifndef AXML_ALGEBRA_EXPR_H_
#define AXML_ALGEBRA_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "peer/axml_doc.h"
#include "query/query.h"
#include "xml/tree.h"

namespace axml {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One node of an algebraic expression.
class Expr {
 public:
  enum class Kind {
    kTree,
    kDoc,        ///< concrete d@p or generic ed@any
    kApply,      ///< query application
    kCall,       ///< service call
    kSend,       ///< send to peer / node list / new document
    kShipQuery,  ///< deploy a query as a service (def. (8))
    kEvalAt,     ///< delegation (rules (14)/(15))
    kSeq,        ///< sequencing (rule (13))
  };

  /// Destination of a kSend.
  struct SendDest {
    enum class Kind { kPeer, kNodes, kNewDoc };
    Kind kind = Kind::kPeer;
    PeerId peer;                       ///< kPeer / kNewDoc
    std::vector<NodeLocation> nodes;   ///< kNodes
    DocName doc_name;                  ///< kNewDoc
  };

  // --- Factories (see file comment) ---
  static ExprPtr Tree(TreePtr t, PeerId owner);
  static ExprPtr Doc(DocName d, PeerId owner);
  static ExprPtr GenericDoc(std::string class_name);
  static ExprPtr Apply(Query q, PeerId query_peer,
                       std::vector<ExprPtr> args);
  static ExprPtr Call(PeerId provider, ServiceName service,
                      std::vector<ExprPtr> params,
                      std::vector<NodeLocation> forwards = {});
  /// Generic service call: sc(any, class_name, ...).
  static ExprPtr CallGeneric(std::string service_class,
                             std::vector<ExprPtr> params,
                             std::vector<NodeLocation> forwards = {});
  static ExprPtr SendToPeer(PeerId dest, ExprPtr payload);
  static ExprPtr SendToNodes(std::vector<NodeLocation> dests,
                             ExprPtr payload);
  static ExprPtr SendAsDoc(DocName name, PeerId dest, ExprPtr payload);
  static ExprPtr ShipQuery(PeerId dest, Query q, PeerId query_peer,
                           ServiceName install_as);
  static ExprPtr EvalAt(PeerId where, ExprPtr body);
  static ExprPtr Seq(ExprPtr first, ExprPtr then);

  Kind kind() const { return kind_; }

  // kTree
  const TreePtr& tree() const { return tree_; }
  PeerId tree_owner() const { return peer_; }
  // kDoc
  const DocName& doc_name() const { return name_; }
  PeerId doc_peer() const { return peer_; }
  bool is_generic_doc() const {
    return kind_ == Kind::kDoc && peer_.is_any();
  }
  // kApply
  const Query& query() const { return query_; }
  PeerId query_peer() const { return peer_; }
  const std::vector<ExprPtr>& args() const { return children_; }
  // kCall
  PeerId provider() const { return peer_; }
  const ServiceName& service() const { return name_; }
  bool is_generic_service() const {
    return kind_ == Kind::kCall && peer_.is_any();
  }
  const std::vector<ExprPtr>& params() const { return children_; }
  const std::vector<NodeLocation>& forwards() const { return forwards_; }
  // kSend
  const SendDest& dest() const { return dest_; }
  const ExprPtr& payload() const { return children_[0]; }
  // kShipQuery
  PeerId ship_dest() const { return dest_.peer; }
  const ServiceName& install_as() const { return name_; }
  // kEvalAt
  PeerId eval_where() const { return peer_; }
  const ExprPtr& body() const { return children_[0]; }
  // kSeq
  const ExprPtr& first() const { return children_[0]; }
  const ExprPtr& then() const { return children_[1]; }

  /// All child expressions (args / params / payload / body / seq parts).
  const std::vector<ExprPtr>& children() const { return children_; }
  /// Rebuilds this node with new children (same arity), for rewriters.
  ExprPtr WithChildren(std::vector<ExprPtr> children) const;

  /// Single-line diagnostic form, e.g.
  /// "send(p2, q@p1(doc(catalog)@p0))".
  std::string ToString() const;

  /// Serialized size in bytes when this expression itself is shipped
  /// (delegation); equals the XML serialization's length.
  size_t SerializedSize() const;

  /// Total number of Expr nodes (for optimizer budgets).
  size_t NodeCount() const;

 private:
  explicit Expr(Kind k) : kind_(k) {}

  Kind kind_;
  TreePtr tree_;
  PeerId peer_;  ///< owner / query peer / provider / eval-at peer
  DocName name_; ///< doc name / service name / install-as name
  Query query_;
  SendDest dest_;
  std::vector<ExprPtr> children_;
  std::vector<NodeLocation> forwards_;
};

}  // namespace axml

#endif  // AXML_ALGEBRA_EXPR_H_
