#include "algebra/evaluator.h"

#include <optional>
#include <unordered_set>

#include "algebra/expr_xml.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "xml/wire.h"

namespace axml {

namespace {

/// Name of the per-peer document where orphan sends accumulate (results
/// shipped to a peer with no consuming expression there; §3.2 calls this
/// "the message ... has left p0, and moved to p1").
constexpr char kInboxDoc[] = "axml:inbox";

EmitFn Swallow() {
  return [](TreePtr) {};
}

}  // namespace

void EvalCounters::ExportMetrics(MetricSink& sink) const {
  sink.Value("replica_hits", replica_hits);
  sink.Value("sharded_hits", sharded_hits);
  sink.Value("remote_fetches", remote_fetches);
  sink.Value("sharded_fetches", sharded_fetches);
  sink.Value("coalesced_joins", coalesced_joins);
  sink.Value("refresh_waits", refresh_waits);
}

Evaluator::Evaluator(AxmlSystem* system, EvalOptions options)
    : sys_(system), options_(options) {
  AXML_CHECK(system != nullptr);
  metrics_source_ = sys_->metrics().RegisterSource(
      "eval", [this](MetricSink& sink) { counters_.ExportMetrics(sink); });
}

Evaluator::~Evaluator() { sys_->metrics().UnregisterSource(metrics_source_); }

void Evaluator::Fail(Status s) {
  AXML_CHECK(!s.ok());
  if (async_status_.ok()) {
    async_status_ = std::move(s);
  }
}

void Evaluator::Trace(std::string what) {
  if (!options_.trace) return;
  trace_.push_back(TraceEvent{sys_->loop().now(), std::move(what)});
}

std::string Evaluator::FormatTrace() const {
  std::string out;
  for (const TraceEvent& e : trace_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "[%8.3fs] ", e.time);
    out += buf;
    out += e.what;
    out += "\n";
  }
  return out;
}

void Evaluator::AtQuiescence(std::function<void()> fn) {
  finalizers_.push_back(std::move(fn));
}

uint64_t Evaluator::RunToQuiescence() {
  uint64_t n = 0;
  for (;;) {
    n += sys_->loop().Run();
    if (finalizers_.empty()) break;
    auto fn = std::move(finalizers_.front());
    finalizers_.pop_front();
    fn();
  }
  // Any in-flight transfer registration still present is dead — no
  // scheduled event remains to land it (a failure path bailed before
  // the Send). Drop them so a later Deploy cannot coalesce onto one.
  inflight_.clear();
  return n;
}

Result<EvalOutcome> Evaluator::Eval(PeerId p, const ExprPtr& e) {
  async_status_ = Status::OK();
  trace_.clear();
  // A failed prior evaluation may have stranded in-flight transfer
  // registrations; a fresh Eval must not coalesce onto them.
  inflight_.clear();
  Trace(StrCat("eval@", p.ToString(), " ", e == nullptr ? "<null>"
                                                        : e->ToString()));
  EvalOutcome out;
  out.start_time = sys_->loop().now();
  auto results = std::make_shared<std::vector<TreePtr>>();
  AXML_RETURN_NOT_OK(Deploy(p, e, [results](TreePtr t) {
    results->push_back(std::move(t));
  }));
  RunToQuiescence();
  out.completion_time = sys_->loop().now();
  if (!async_status_.ok()) return async_status_;
  out.results = std::move(*results);
  return out;
}

Status Evaluator::Deploy(PeerId p, const ExprPtr& e, EmitFn emit) {
  if (sys_->peer(p) == nullptr) {
    return Status::NotFound(StrCat("no peer ", p.ToString()));
  }
  if (e == nullptr) return Status::InvalidArgument("null expression");
  DeployExpr(p, e, std::move(emit));
  return Status::OK();
}

void Evaluator::Ship(PeerId from, PeerId to, const TreePtr& tree,
                     std::function<void(TreePtr)> deliver) {
  Peer* dest = sys_->peer(to);
  if (dest == nullptr) {
    Fail(Status::NotFound(StrCat("ship to unknown peer ", to.ToString())));
    return;
  }
  if (from == to) {
    // A same-peer send moves nothing and must deliver the very instance
    // (local grafts rely on node identity), priced at what its encoding
    // would have cost on a real wire.
    sys_->network().SendReliable(
        from, to, wire::EncodedTreeSize(*tree),
        [tree, deliver = std::move(deliver)] { deliver(tree); });
    return;
  }
  // §3.2: "all evaluations of send expression trees are implicitly
  // understood to copy the data model instances they send" — the encoded
  // payload *is* that copy: the destination decodes it into fresh
  // identifiers minted by its own generator, and the priced size is the
  // payload's actual byte count.
  wire::Payload payload(wire::EncodeTree(*tree, &sys_->wire_stats()));
  Trace(StrCat("ship ", from.ToString(), "->", to.ToString(), " ",
               payload.size(), "B <",
               tree->is_element() ? tree->label_text()
                                  : std::string("#text"),
               ">"));
  // Reliable: a query in flight must survive injected faults — Eval runs
  // the loop to quiescence, and a silently lost shipment would hang it.
  sys_->network().SendReliable(
      from, to, std::move(payload),
      [this, to, deliver = std::move(deliver)](const wire::Payload& p) {
        Peer* arrived_at = sys_->peer(to);
        if (arrived_at == nullptr) return;
        Result<TreePtr> landed =
            wire::DecodeTree(p.bytes(), arrived_at->gen(),
                             &sys_->wire_stats());
        AXML_DCHECK(landed.ok());
        if (!landed.ok()) return;
        deliver(std::move(landed).value());
      });
}

void Evaluator::DeployExpr(PeerId ctx, const ExprPtr& e, EmitFn emit) {
  switch (e->kind()) {
    case Expr::Kind::kTree: {
      PeerId owner = e->tree_owner();
      if (owner == ctx) {
        DeployTreeLocal(ctx, e->tree(), std::move(emit));
      } else {
        // Definition (5): evaluate at the owner, ship results here.
        DeployTreeLocal(owner, e->tree(),
                        [this, owner, ctx, emit](TreePtr t) {
                          Ship(owner, ctx, t, emit);
                        });
      }
      return;
    }
    case Expr::Kind::kDoc:
      DeployDoc(ctx, e, std::move(emit));
      return;
    case Expr::Kind::kApply:
      DeployApply(ctx, e, std::move(emit));
      return;
    case Expr::Kind::kCall:
      DeployCall(ctx, e, std::move(emit));
      return;
    case Expr::Kind::kSend:
      DeploySend(ctx, e, std::move(emit));
      return;
    case Expr::Kind::kShipQuery:
      DeployShipQuery(ctx, e, std::move(emit));
      return;
    case Expr::Kind::kEvalAt:
      DeployEvalAt(ctx, e, std::move(emit));
      return;
    case Expr::Kind::kSeq:
      DeploySeq(ctx, e, std::move(emit));
      return;
  }
}

void Evaluator::DeployTreeLocal(PeerId owner, const TreePtr& tree,
                                EmitFn emit) {
  Peer* host = sys_->peer(owner);
  if (host == nullptr) {
    Fail(Status::NotFound(
        StrCat("tree owner ", owner.ToString(), " unknown")));
    return;
  }
  if (!tree->ContainsServiceCall()) {
    // Definition (1) degenerate case: no sc below, the tree is the value.
    sys_->loop().Post([tree, emit = std::move(emit)] { emit(tree); });
    return;
  }
  // Definition (1) + (6): activate embedded calls; their responses
  // accumulate as siblings of the sc nodes; the tree is emitted once the
  // call streams quiesce.
  TreePtr working = tree->CloneSameIds();
  std::vector<TreePtr> calls;
  FindServiceCalls(working, &calls);
  for (const TreePtr& sc : calls) {
    Result<ServiceCallSpec> spec = ParseServiceCall(*sc);
    if (!spec.ok()) {
      Fail(spec.status());
      continue;
    }
    PeerId provider = spec->provider == "any"
                          ? PeerId::Any()
                          : sys_->FindPeerId(spec->provider);
    if (!provider.valid()) {
      Fail(Status::NotFound(
          StrCat("provider peer \"", spec->provider, "\" unknown")));
      continue;
    }
    std::vector<ExprPtr> params;
    for (const TreePtr& p : spec->params) {
      params.push_back(Expr::Tree(p, owner));
    }
    ExprPtr call =
        Expr::Call(provider, spec->service, std::move(params),
                   spec->forwards);
    NodeId sc_id = sc->id();
    EmitFn insert = [working, sc_id](TreePtr response) {
      // Insert as a sibling of the sc node (§2.2 step 3).
      if (TreeNode* parent = FindParent(working, sc_id)) {
        parent->AddChild(std::move(response));
      }
    };
    // Responses come back to the owner unless the call carries explicit
    // forwards (in which case they land elsewhere and the local tree is
    // left as is).
    DeployExpr(owner, call, spec->forwards.empty() ? insert : Swallow());
  }
  AtQuiescence([working, emit = std::move(emit)] { emit(working); });
}

void Evaluator::DeployDoc(PeerId ctx, const ExprPtr& e, EmitFn emit) {
  if (e->is_generic_doc()) {
    // Definition (9): pickDoc over the equivalence class, discovery
    // charged through the system catalog.
    const std::string class_name = e->doc_name();
    auto proceed = [this, ctx, class_name, emit](void) {
      Result<ClassMember> member = sys_->generics().PickDocument(
          class_name, ctx, options_.pick_policy, sys_->network());
      if (!member.ok()) {
        Fail(member.status());
        return;
      }
      Trace(StrCat("pickDoc ", class_name, "@any -> ", member->name, "@",
                   member->peer.ToString()));
      DeployExpr(ctx, Expr::Doc(member->name, member->peer), emit);
    };
    if (options_.charge_discovery && sys_->catalog() != nullptr) {
      sys_->catalog()->Lookup(ResourceKind::kDocument, class_name, ctx,
                              &sys_->network(),
                              [proceed](const LookupResult&) { proceed(); });
    } else {
      sys_->loop().Post(proceed);
    }
    return;
  }
  PeerId owner = e->doc_peer();
  Peer* host = sys_->peer(owner);
  if (host == nullptr) {
    Fail(Status::NotFound(
        StrCat("document peer ", owner.ToString(), " unknown")));
    return;
  }
  const DocName doc_name = e->doc_name();
  // Documents above the sharding threshold read through the shard
  // layer: full assemblies from resident shards, delta fetches for the
  // rest. Everything else keeps the whole-document replica path — a
  // fresh whole-document copy included (e.g. cached before sharding was
  // enabled): the cost model prices that copy at zero, so the read must
  // serve it rather than re-fetch the document as shards.
  const bool sharded_read =
      owner != ctx && options_.use_replica_cache &&
      sys_->replicas().ShardedReadApplies(owner, doc_name) &&
      !sys_->replicas().HasFreshWholeCopy(ctx, owner, doc_name);
  if (owner != ctx && options_.use_replica_cache) {
    if (sharded_read) {
      // Shard fast path: manifest fresh and every data shard resident —
      // the document assembles locally for 0 wire bytes. The assembly
      // is freshly minted, so it is emitted without another clone.
      if (TreePtr assembled =
              sys_->replicas().LookupShardedFresh(ctx, owner, doc_name)) {
        ++counters_.sharded_hits;
        if (Tracer& tr = sys_->tracer(); tr.enabled()) {
          tr.Record("eval", "shard_hit", ctx, 0, 0,
                    StrCat(doc_name, "@", owner.ToString()));
        }
        Trace(StrCat("replica-shard-hit ", doc_name, "@",
                     owner.ToString(), " assembled at ", ctx.ToString(),
                     " (0B on the wire)"));
        sys_->loop().Post(
            [assembled = std::move(assembled), emit = std::move(emit)] {
              emit(assembled);
            });
        return;
      }
    } else if (TreePtr copy = sys_->replicas().LookupFresh(ctx, owner,
                                                           doc_name)) {
      // Replica fast path: a fresh cached copy of the remote document is
      // read locally — a transfer the cache's hit stats account for. A
      // stale copy is dropped by this very lookup (versioned
      // invalidation) and the read falls through to the wire.
      ++counters_.replica_hits;
      if (Tracer& tr = sys_->tracer(); tr.enabled()) {
        tr.Record("eval", "replica_hit", ctx, 0, 0,
                  StrCat(doc_name, "@", owner.ToString()));
      }
      Trace(StrCat("replica-hit ", doc_name, "@", owner.ToString(),
                   " read at ", ctx.ToString(), " (0B on the wire)"));
      // Deliver a private instance, as the ship this hit replaces would
      // have (§3.2: sends copy their data-model instances). Consumers
      // must never hold the cache blob itself — a same-peer send could
      // graft and later mutate it behind its digest. The cache keeps the
      // received wire bytes, so the "copy" is a decode of those bytes —
      // the same operation a fresh transfer would have performed.
      Peer* reader = sys_->peer(ctx);
      TreePtr fresh;
      const TransferCache* cache = sys_->replicas().FindCache(ctx);
      const std::string* enc =
          cache == nullptr
              ? nullptr
              : cache->PeekEncoded(ReplicaKey{owner, doc_name});
      if (enc != nullptr) {
        Result<TreePtr> decoded =
            wire::DecodeTree(*enc, reader->gen(), &sys_->wire_stats());
        AXML_DCHECK(decoded.ok());
        if (decoded.ok()) fresh = std::move(decoded).value();
      }
      if (fresh == nullptr) fresh = copy->Clone(reader->gen());
      sys_->loop().Post(
          [fresh = std::move(fresh), emit = std::move(emit)] {
            emit(fresh);
          });
      return;
    }
    // Coalesce with a transfer of the same copy already in flight (two
    // subexpressions reading the same remote source — the very shape of
    // rule (13)): the second reader waits for the first's copy.
    auto flight = inflight_.find({ctx, owner, doc_name});
    if (flight != inflight_.end()) {
      ++counters_.coalesced_joins;
      if (Tracer& tr = sys_->tracer(); tr.enabled()) {
        tr.Record("eval", "coalesce", ctx, 0, 0,
                  StrCat(doc_name, "@", owner.ToString()));
      }
      Trace(StrCat("replica-coalesce ", doc_name, "@", owner.ToString(),
                   " read at ", ctx.ToString(), " joins in-flight copy"));
      flight->second.push_back(std::move(emit));
      return;
    }
    // An eager-refresh shipment of this very document is already on the
    // wire (the origin pushed after a mutation): starting our own
    // transfer would ship the same bytes twice. Wait for the push to
    // land, then retry the read — it hits the re-materialized copy, or
    // falls through to the wire if the shipment was canceled.
    if (sys_->replicas().IsRefreshInFlight(ctx, owner, doc_name)) {
      ++counters_.refresh_waits;
      if (Tracer& tr = sys_->tracer(); tr.enabled()) {
        tr.Record("eval", "refresh_wait", ctx, 0, 0,
                  StrCat(doc_name, "@", owner.ToString()));
      }
      Trace(StrCat("replica-refresh-wait ", doc_name, "@",
                   owner.ToString(), " read at ", ctx.ToString(),
                   " joins in-flight push refresh"));
      AtQuiescence([this, ctx, e, emit = std::move(emit)]() mutable {
        DeployExpr(ctx, e, std::move(emit));
      });
      return;
    }
    inflight_.emplace(std::make_tuple(ctx, owner, doc_name),
                      std::vector<EmitFn>{});
  }
  if (sharded_read) {
    // Delta fetch: only the stale manifest and the shards this reader
    // lacks cross the wire; resident shards serve locally. The landing
    // caches + installs the copy and hands back the assembled document,
    // which stands in for the whole-document `landed` below.
    uint64_t delta = 0;
    const bool launched = sys_->replicas().FetchForRead(
        ctx, owner, doc_name,
        [this, ctx, owner, doc_name, emit](TreePtr assembled) {
          std::vector<EmitFn> waiters;
          auto flight = inflight_.find({ctx, owner, doc_name});
          if (flight != inflight_.end()) {
            waiters = std::move(flight->second);
            inflight_.erase(flight);
          }
          if (assembled == nullptr) {
            Fail(Status::NotFound(StrCat("sharded read of \"", doc_name,
                                         "\" failed to assemble")));
            return;
          }
          NodeIdGen* gen = sys_->peer(ctx)->gen();
          const uint64_t bytes = wire::EncodedTreeSize(*assembled);
          emit(assembled);
          for (EmitFn& w : waiters) {
            sys_->replicas().CacheFor(ctx)->RecordCoalescedHit(bytes);
            w(assembled->Clone(gen));
          }
        },
        &delta);
    if (launched) {
      ++counters_.sharded_fetches;
      Trace(StrCat("replica-shard-fetch ", doc_name, "@",
                   owner.ToString(), " -> ", ctx.ToString(), " ", delta,
                   "B delta"));
      return;
    }
    // The document vanished between the probe and the fetch; the
    // whole-document path below raises the error.
    inflight_.erase({ctx, owner, doc_name});
  }
  TreePtr root = host->GetDocument(doc_name);
  if (root == nullptr) {
    inflight_.erase({ctx, owner, doc_name});
    Fail(Status::NotFound(StrCat("document \"", doc_name,
                                 "\" not found on ", host->name())));
    return;
  }
  EmitFn deliver =
      owner == ctx
          ? std::move(emit)
          : EmitFn([this, owner, ctx, doc_name, emit](TreePtr t) {
              ++counters_.remote_fetches;
              // A top-level remote read roots its own causal chain
              // (unless already inside one); the Ship's network Send
              // carries the id to the landing — cache insert and
              // install included.
              Tracer& tr = sys_->tracer();
              Tracer::Scope trace_scope(&tr, tr.CurrentOrNew());
              if (tr.enabled()) {
                tr.Record("eval", "fetch", ctx, wire::EncodedTreeSize(*t),
                          0, StrCat(doc_name, "@", owner.ToString()));
              }
              // Ship clones the content now; remember which origin
              // version that snapshot corresponds to (a mutation during
              // the wire delay must not brand it fresh).
              const uint64_t snap_version =
                  sys_->replicas().Version(owner, doc_name);
              Ship(owner, ctx, t, [this, owner, ctx, doc_name,
                                   snap_version, emit](TreePtr landed) {
                // Materialize the transferred tree as a replica: later
                // reads (here or via d@any) hit the copy. Trees still
                // carrying service calls are excluded — a copy freezes
                // their activation state.
                // The landed clone becomes the cache blob (and the
                // installed local copy); every consumer — the reader
                // that triggered the transfer and any coalesced
                // waiters — gets its own clone of it, mirroring what a
                // per-reader ship would have delivered.
                bool cached = false;
                if (options_.use_replica_cache &&
                    !landed->ContainsServiceCall()) {
                  cached = sys_->replicas().InsertCopy(
                      ctx, owner, doc_name, landed, snap_version);
                  if (cached) {
                    Trace(StrCat("replica-insert ", doc_name, "@",
                                 owner.ToString(), " cached at ",
                                 ctx.ToString()));
                  }
                }
                NodeIdGen* gen = sys_->peer(ctx)->gen();
                emit(cached ? landed->Clone(gen) : landed);
                // Wake the readers that coalesced onto this transfer.
                auto flight = inflight_.find({ctx, owner, doc_name});
                if (flight != inflight_.end()) {
                  std::vector<EmitFn> waiters =
                      std::move(flight->second);
                  inflight_.erase(flight);
                  const uint64_t bytes = wire::EncodedTreeSize(*landed);
                  for (EmitFn& w : waiters) {
                    sys_->replicas().CacheFor(ctx)->RecordCoalescedHit(
                        bytes);
                    w(landed->Clone(gen));
                  }
                }
              });
            });
  if (root->ContainsServiceCall()) {
    // Lazy activation (§2.2): the query needs the document's value, so
    // its lazy calls fire now; the document itself accumulates the
    // responses, and its root is emitted at quiescence.
    Status s = ActivateLazyCalls(owner, e->doc_name());
    if (!s.ok()) {
      inflight_.erase({ctx, owner, doc_name});
      Fail(s);
      return;
    }
    AtQuiescence([root, deliver] { deliver(root); });
  } else {
    sys_->loop().Post([root, deliver] { deliver(root); });
  }
}

void Evaluator::DeployApply(PeerId ctx, const ExprPtr& e, EmitFn emit) {
  Peer* host = sys_->peer(ctx);
  AXML_CHECK(host != nullptr);
  const Query& q = e->query();
  if (static_cast<int>(e->args().size()) < q.arity()) {
    Fail(Status::InvalidArgument(
        StrCat("query arity ", q.arity(), " but ", e->args().size(),
               " arguments")));
    return;
  }

  struct ApplyState {
    std::unique_ptr<QueryInstance> instance;
    std::vector<std::pair<int, TreePtr>> buffered;
    bool started = false;
  };
  auto state = std::make_shared<ApplyState>();
  retained_.push_back(state);

  auto deliver_input = [this, state, host](int i, TreePtr t) {
    // Definition (2) with compute charging: the arrival is processed
    // after the peer's per-tree evaluation time.
    double delay = host->ComputeTime(t->CountNodes());
    sys_->loop().ScheduleAfter(delay, [this, state, i, t] {
      if (!state->started) {
        state->buffered.emplace_back(i, t);
        return;
      }
      Status s = state->instance->PushInput(i, t);
      if (!s.ok()) Fail(std::move(s));
    });
  };

  auto start = [this, state, host, q, emit] {
    state->instance = std::make_unique<QueryInstance>(
        q.ast(), host->AsDocResolver(), emit, host->gen());
    Status s = state->instance->Start();
    if (!s.ok()) {
      Fail(std::move(s));
      return;
    }
    state->started = true;
    for (auto& [i, t] : state->buffered) {
      Status ps = state->instance->PushInput(i, t);
      if (!ps.ok()) Fail(std::move(ps));
    }
    state->buffered.clear();
  };

  PeerId qp = e->query_peer();
  if (qp.is_concrete() && qp != ctx) {
    // Definition (7): the defining peer ships the query text first — an
    // encoded kQuery payload priced at its actual byte count.
    sys_->network().SendReliable(
        qp, ctx,
        wire::EncodeText(wire::MessageClass::kQuery, q.text(),
                         &sys_->wire_stats()),
        [this, start](const wire::Payload& p) {
          Result<std::string> text =
              wire::DecodeText(p, &sys_->wire_stats());
          AXML_DCHECK(text.ok());
          start();
        });
  } else {
    sys_->loop().Post(start);
  }

  for (size_t i = 0; i < e->args().size(); ++i) {
    DeployExpr(ctx, e->args()[i],
               [deliver_input, i](TreePtr t) {
                 deliver_input(static_cast<int>(i), std::move(t));
               });
  }
}

Evaluator::ParamSink Evaluator::StartServiceInstance(
    PeerId provider, const Service& svc,
    std::function<void(TreePtr)> on_result) {
  Peer* host = sys_->peer(provider);
  AXML_CHECK(host != nullptr);

  std::function<void(TreePtr)> typed_result = on_result;
  if (options_.type_check && svc.has_signature()) {
    Signature sig = svc.signature();
    typed_result = [this, sig, on_result](TreePtr t) {
      Status s = sig.CheckOutput(*t);
      if (!s.ok()) {
        Fail(std::move(s));
        return;
      }
      on_result(std::move(t));
    };
  }

  if (svc.is_declarative()) {
    auto instance = std::make_shared<std::unique_ptr<QueryInstance>>();
    *instance = std::make_unique<QueryInstance>(
        svc.query().ast(), host->AsDocResolver(), typed_result,
        host->gen());
    retained_.push_back(instance);
    Status s = (*instance)->Start();
    if (!s.ok()) {
      Fail(std::move(s));
      return nullptr;
    }
    return [this, instance, host](int i, TreePtr t) {
      double delay = host->ComputeTime(t->CountNodes());
      sys_->loop().ScheduleAfter(delay, [this, instance, i, t] {
        Status s = (*instance)->PushInput(i, t);
        if (!s.ok()) Fail(std::move(s));
      });
    };
  }

  // Native service: invoke once when every parameter slot has received
  // its first tree (arity-0 natives run immediately).
  struct NativeState {
    std::vector<TreePtr> slots;
    size_t received = 0;
    bool invoked = false;
  };
  auto state = std::make_shared<NativeState>();
  state->slots.resize(static_cast<size_t>(svc.arity()));
  Service svc_copy = svc;
  auto try_invoke = [this, state, svc_copy, host, typed_result] {
    if (state->invoked || state->received < state->slots.size()) return;
    state->invoked = true;
    uint64_t nodes = 0;
    for (const auto& t : state->slots) nodes += t->CountNodes();
    double delay = host->ComputeTime(nodes + 1);
    sys_->loop().ScheduleAfter(delay, [this, state, svc_copy, host,
                                       typed_result] {
      Result<std::vector<TreePtr>> out =
          svc_copy.InvokeNative(state->slots, host);
      if (!out.ok()) {
        Fail(out.status());
        return;
      }
      for (auto& t : *out) typed_result(t);
    });
  };
  if (svc.arity() == 0) {
    sys_->loop().Post(try_invoke);
  }
  return [state, try_invoke](int i, TreePtr t) {
    auto idx = static_cast<size_t>(i);
    if (idx >= state->slots.size() || state->slots[idx] != nullptr) return;
    state->slots[idx] = std::move(t);
    ++state->received;
    try_invoke();
  };
}

void Evaluator::DeployCall(PeerId ctx, const ExprPtr& e, EmitFn emit) {
  if (e->is_generic_service()) {
    // Generic service (§2.3): pickService, discovery charged.
    const std::string class_name = e->service();
    ExprPtr expr = e;
    auto proceed = [this, ctx, class_name, expr, emit] {
      Result<ClassMember> member = sys_->generics().PickService(
          class_name, ctx, options_.pick_policy, sys_->network());
      if (!member.ok()) {
        Fail(member.status());
        return;
      }
      DeployExpr(ctx,
                 Expr::Call(member->peer, member->name, expr->params(),
                            expr->forwards()),
                 emit);
    };
    if (options_.charge_discovery && sys_->catalog() != nullptr) {
      sys_->catalog()->Lookup(ResourceKind::kService, class_name, ctx,
                              &sys_->network(),
                              [proceed](const LookupResult&) { proceed(); });
    } else {
      sys_->loop().Post(proceed);
    }
    return;
  }

  PeerId pv = e->provider();
  Peer* provider = sys_->peer(pv);
  if (provider == nullptr) {
    Fail(Status::NotFound(
        StrCat("provider peer ", pv.ToString(), " unknown")));
    return;
  }
  const Service* svc = provider->GetService(e->service());
  if (svc == nullptr) {
    Fail(Status::NotFound(StrCat("service \"", e->service(),
                                 "\" not found on ", provider->name())));
    return;
  }
  if (static_cast<int>(e->params().size()) != svc->arity()) {
    Fail(Status::InvalidArgument(
        StrCat("service \"", e->service(), "\" expects ", svc->arity(),
               " parameters, got ", e->params().size())));
    return;
  }

  // Where do responses go? Definition (6): send_{p1->fwList}(...); with
  // an empty forward list the response returns to the caller (the
  // original AXML behaviour, §2.3: "If no forw child is specified, a
  // default one is used containing the ID of the sc's parent" — in
  // expression context, the enclosing consumer).
  std::vector<NodeLocation> forwards = e->forwards();
  std::function<void(TreePtr)> on_result;
  if (forwards.empty()) {
    on_result = [this, pv, ctx, emit](TreePtr r) {
      Ship(pv, ctx, r, emit);
    };
  } else {
    on_result = [this, pv, forwards](TreePtr r) {
      for (const NodeLocation& loc : forwards) {
        Ship(pv, loc.peer, r, [this, loc](TreePtr landed) {
          Peer* target = sys_->peer(loc.peer);
          if (target == nullptr) {
            Fail(Status::NotFound(
                StrCat("forward peer ", loc.peer.ToString(), " unknown")));
            return;
          }
          Status s = target->AppendUnderNode(loc.node, std::move(landed));
          if (!s.ok()) Fail(std::move(s));
        });
      }
    };
  }

  Trace(StrCat("invoke ", e->service(), "@", provider->name(),
               forwards.empty() ? "" : " with forward list"));
  ParamSink sink = StartServiceInstance(pv, *svc, std::move(on_result));
  if (sink == nullptr) return;

  // Definition (6), innermost-out: eval params at the caller, ship each
  // result to the provider.
  Signature sig = svc->has_signature() ? svc->signature() : Signature{};
  bool check = options_.type_check && svc->has_signature();
  for (size_t i = 0; i < e->params().size(); ++i) {
    DeployExpr(ctx, e->params()[i],
               [this, ctx, pv, sink, i, check, sig](TreePtr t) {
                 Ship(ctx, pv, t, [this, sink, i, check, sig](TreePtr l) {
                   if (check &&
                       i < sig.in.size() && !sig.in[i]->Matches(*l)) {
                     Fail(Status::TypeError(StrCat(
                         "parameter ", i + 1, " does not match type ",
                         sig.in[i]->ToString())));
                     return;
                   }
                   sink(static_cast<int>(i), std::move(l));
                 });
               });
  }
}

void Evaluator::DeploySend(PeerId ctx, const ExprPtr& e, EmitFn emit) {
  const ExprPtr& payload = e->payload();
  // §3.2: "p2 cannot send something it doesn't have": a send whose
  // payload is data owned elsewhere is undefined.
  if (payload->kind() == Expr::Kind::kTree &&
      payload->tree_owner() != ctx) {
    Fail(Status::Undefined(
        StrCat("send at ", ctx.ToString(), " of a tree owned by ",
               payload->tree_owner().ToString())));
    return;
  }
  if (payload->kind() == Expr::Kind::kDoc && !payload->is_generic_doc() &&
      payload->doc_peer() != ctx) {
    Fail(Status::Undefined(
        StrCat("send at ", ctx.ToString(), " of document \"",
               payload->doc_name(), "\" owned by ",
               payload->doc_peer().ToString())));
    return;
  }

  const Expr::SendDest& dest = e->dest();
  switch (dest.kind) {
    case Expr::SendDest::Kind::kPeer: {
      if (dest.peer == ctx) {
        // Degenerate send-to-self: the value stays here.
        DeployExpr(ctx, payload, std::move(emit));
        return;
      }
      // Definition (3): ∅ locally; the copy lands at the destination.
      // With no consuming expression there, it accumulates in the
      // destination's inbox document.
      DeployExpr(ctx, payload, [this, ctx, dest](TreePtr t) {
        Ship(ctx, dest.peer, t, [this, dest](TreePtr landed) {
          Peer* target = sys_->peer(dest.peer);
          if (target == nullptr) return;
          TreePtr inbox = target->GetDocument(kInboxDoc);
          if (inbox == nullptr) {
            inbox = TreeNode::Element("inbox", target->gen());
            target->PutDocument(kInboxDoc, inbox);
          }
          inbox->AddChild(std::move(landed));
        });
      });
      return;
    }
    case Expr::SendDest::Kind::kNodes: {
      // Definition (4): one copy lands under each listed node.
      std::vector<NodeLocation> locs = dest.nodes;
      DeployExpr(ctx, payload, [this, ctx, locs](TreePtr t) {
        for (const NodeLocation& loc : locs) {
          Ship(ctx, loc.peer, t, [this, loc](TreePtr landed) {
            Peer* target = sys_->peer(loc.peer);
            if (target == nullptr) {
              Fail(Status::NotFound(StrCat("send-to-node peer ",
                                           loc.peer.ToString(),
                                           " unknown")));
              return;
            }
            Status s =
                target->AppendUnderNode(loc.node, std::move(landed));
            if (!s.ok()) Fail(std::move(s));
          });
        }
      });
      return;
    }
    case Expr::SendDest::Kind::kNewDoc: {
      // §3.1: "t is installed under the name d as a new document at p2".
      // Later trees of the stream accumulate under the first tree's
      // root (§3.2 (i): streams accumulate under a given node).
      DocName name = dest.doc_name;
      PeerId to = dest.peer;
      DeployExpr(ctx, payload, [this, ctx, to, name](TreePtr t) {
        Ship(ctx, to, t, [this, to, name](TreePtr landed) {
          Peer* target = sys_->peer(to);
          if (target == nullptr) return;
          TreePtr existing = target->GetDocument(name);
          if (existing == nullptr) {
            target->PutDocument(name, landed);
            if (sys_->catalog() != nullptr) {
              sys_->catalog()->Register(ResourceKind::kDocument, name, to);
            }
          } else {
            existing->AddChild(std::move(landed));
          }
        });
      });
      return;
    }
  }
}

void Evaluator::DeployShipQuery(PeerId ctx, const ExprPtr& e, EmitFn) {
  // Definition (8): eval@p1(send(p2, q@p1)). Shipping a query someone
  // else owns is as undefined as shipping their trees.
  if (e->query_peer().is_concrete() && e->query_peer() != ctx) {
    Fail(Status::Undefined(
        StrCat("ship at ", ctx.ToString(), " of a query defined at ",
               e->query_peer().ToString())));
    return;
  }
  PeerId to = e->ship_dest();
  Peer* target = sys_->peer(to);
  if (target == nullptr) {
    Fail(Status::NotFound(
        StrCat("shipQuery destination ", to.ToString(), " unknown")));
    return;
  }
  Query q = e->query();
  ServiceName name = e->install_as();
  if (name.empty()) {
    static uint64_t counter = 0;
    // "Rather than giving it an explicit name ... we may refer to this
    // service as send_{p1→p2}(q@p1)" — we generate a stable name.
    name = StrCat("shipped_q", counter++);
  }
  sys_->network().SendReliable(
      ctx, to,
      wire::EncodeText(wire::MessageClass::kQuery, q.text(),
                       &sys_->wire_stats()),
      [this, to, name](const wire::Payload& p) {
        Peer* target = sys_->peer(to);
        if (target == nullptr) return;
        // The service re-materializes from the wire text: the canonical
        // form Parse()s back to an equal query, so the shipped bytes are
        // the installed definition — no in-process alias survives.
        Result<std::string> text = wire::DecodeText(p, &sys_->wire_stats());
        AXML_DCHECK(text.ok());
        if (!text.ok()) return;
        Result<Query> parsed = Query::Parse(*text);
        AXML_DCHECK(parsed.ok());
        if (!parsed.ok()) return;
        target->PutService(
            Service::Declarative(name, std::move(parsed).value()));
        if (sys_->catalog() != nullptr) {
          sys_->catalog()->Register(ResourceKind::kService, name, to);
        }
        Trace(StrCat("installed service ", name, "@", target->name()));
      });
}

void Evaluator::DeployEvalAt(PeerId ctx, const ExprPtr& e, EmitFn emit) {
  PeerId where = e->eval_where();
  if (where == ctx) {
    DeployExpr(ctx, e->body(), std::move(emit));
    return;
  }
  Peer* target = sys_->peer(where);
  if (target == nullptr) {
    Fail(Status::NotFound(
        StrCat("evalAt peer ", where.ToString(), " unknown")));
    return;
  }
  // Rules (14)/(15): the expression itself travels as an XML tree — its
  // compact serialization rides a kQuery envelope, and the payload's
  // byte count is the shipping cost. Results come back to the consumer.
  ExprPtr body = e->body();
  NodeIdGen tmp;
  wire::Payload payload =
      wire::EncodeText(wire::MessageClass::kQuery,
                       SerializeCompactExpr(*body, &tmp),
                       &sys_->wire_stats());
  Trace(StrCat("delegate expr ", ctx.ToString(), "->", where.ToString(),
               " ", payload.size(), "B"));
  sys_->network().SendReliable(
      ctx, where, std::move(payload),
      [this, where, ctx, body, emit](const wire::Payload& p) {
        Result<std::string> text = wire::DecodeText(p, &sys_->wire_stats());
        AXML_DCHECK(text.ok());
        DeployExpr(where, body, [this, where, ctx, emit](TreePtr t) {
          Ship(where, ctx, t, emit);
        });
      });
}

void Evaluator::DeploySeq(PeerId ctx, const ExprPtr& e, EmitFn emit) {
  // Rule (13) support: `then` starts only when `first` has quiesced
  // ("the evaluation of e3 is only enabled when d is available at p").
  DeployExpr(ctx, e->first(), Swallow());
  ExprPtr then = e->then();
  AtQuiescence([this, ctx, then, emit = std::move(emit)] {
    DeployExpr(ctx, then, emit);
  });
}

// --- AXML document runtime ---

Status Evaluator::InstallAxmlDocument(PeerId host, DocName name,
                                      TreePtr root) {
  AXML_RETURN_NOT_OK(sys_->InstallDocument(host, name, root));
  std::vector<TreePtr> calls;
  FindServiceCalls(root, &calls);
  for (const TreePtr& sc : calls) {
    Result<ServiceCallSpec> spec = ParseServiceCall(*sc);
    if (!spec.ok()) return spec.status();
    if (spec->mode == ActivationMode::kImmediate) {
      AXML_RETURN_NOT_OK(ActivateCall(host, sc->id()));
    }
  }
  return Status::OK();
}

Status Evaluator::ActivateLazyCalls(PeerId host, const DocName& doc) {
  Peer* peer = sys_->peer(host);
  if (peer == nullptr) {
    return Status::NotFound(StrCat("no peer ", host.ToString()));
  }
  TreePtr root = peer->GetDocument(doc);
  if (root == nullptr) {
    return Status::NotFound(StrCat("document \"", doc, "\" not found"));
  }
  std::vector<TreePtr> calls;
  FindServiceCalls(root, &calls);
  for (const TreePtr& sc : calls) {
    Result<ServiceCallSpec> spec = ParseServiceCall(*sc);
    if (!spec.ok()) return spec.status();
    if (spec->mode == ActivationMode::kLazy) {
      AXML_RETURN_NOT_OK(ActivateCall(host, sc->id()));
    }
  }
  return Status::OK();
}

Status Evaluator::ActivateCall(PeerId host, NodeId sc_node) {
  Peer* peer = sys_->peer(host);
  if (peer == nullptr) {
    return Status::NotFound(StrCat("no peer ", host.ToString()));
  }
  if (!activated_.insert(sc_node).second) {
    return Status::OK();  // idempotent: a call activates at most once
  }
  TreeNode* sc = peer->FindNode(sc_node);
  if (sc == nullptr) {
    return Status::NotFound(
        StrCat("sc node ", sc_node.ToString(), " not found"));
  }
  AXML_ASSIGN_OR_RETURN(ServiceCallSpec spec, ParseServiceCall(*sc));

  PeerId provider = spec.provider == "any"
                        ? PeerId::Any()
                        : sys_->FindPeerId(spec.provider);
  if (!provider.valid()) {
    return Status::NotFound(
        StrCat("provider peer \"", spec.provider, "\" unknown"));
  }

  // Default forward: the parent of the sc node (§2.3).
  std::vector<NodeLocation> forwards = spec.forwards;
  if (forwards.empty()) {
    DocName doc = peer->FindDocumentOfNode(sc_node);
    TreePtr root = peer->GetDocument(doc);
    TreeNode* parent = root == nullptr ? nullptr
                                       : FindParent(root, sc_node);
    if (parent == nullptr) {
      return Status::InvalidArgument(
          "sc node has no parent to receive responses");
    }
    forwards.push_back(NodeLocation{parent->id(), host});
  }

  std::vector<ExprPtr> params;
  for (const TreePtr& p : spec.params) {
    params.push_back(Expr::Tree(p, host));
  }
  Trace(StrCat("activate sc ", sc_node.ToString(), " -> ", spec.service,
               "@", spec.provider));
  ExprPtr call = Expr::Call(provider, spec.service, std::move(params),
                            std::move(forwards));
  DeployExpr(host, call, Swallow());

  // After-call chaining (§2.2): calls declared to follow this one fire
  // once its response stream has been handled (quiescence).
  DocName doc = peer->FindDocumentOfNode(sc_node);
  TreePtr root = peer->GetDocument(doc);
  if (root != nullptr) {
    std::vector<TreePtr> calls;
    FindServiceCalls(root, &calls);
    for (const TreePtr& other : calls) {
      Result<ServiceCallSpec> ospec = ParseServiceCall(*other);
      if (!ospec.ok()) continue;
      if (ospec->mode == ActivationMode::kAfterCall &&
          ospec->after == sc_node) {
        NodeId next = other->id();
        AtQuiescence([this, host, next] {
          Status s = ActivateCall(host, next);
          if (!s.ok()) Fail(std::move(s));
        });
      }
    }
  }
  return Status::OK();
}

}  // namespace axml
