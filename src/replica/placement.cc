#include "replica/placement.h"

#include <algorithm>

#include "common/str_util.h"
#include "peer/generic.h"
#include "replica/replica_manager.h"

namespace axml {

std::string PlacementStats::ToString() const {
  return StrCat("shipments=", shipments, " landed=", landed,
                " shipped_bytes=", shipped_bytes,
                " coalesced=", coalesced,
                " budget_denied=", budget_denied, " wasted=", wasted);
}

void PlacementStats::ExportMetrics(MetricSink& sink) const {
  sink.Value("shipments", shipments);
  sink.Value("landed", landed);
  sink.Value("shipped_bytes", shipped_bytes);
  sink.Value("coalesced", coalesced);
  sink.Value("budget_denied", budget_denied);
  sink.Value("wasted", wasted);
}

std::vector<PlacementDecision> PlacementPolicy::Plan(
    const GenericCatalog& generics, const ReplicaManager& replicas) const {
  std::vector<PlacementDecision> plan;
  if (!config_.enabled) return plan;
  const auto& demand = generics.document_pick_demand();
  // The table is ordered by (class, caller): walk it one class at a time.
  for (auto it = demand.begin(); it != demand.end();) {
    const std::string& class_name = it->first.first;
    std::vector<std::pair<PeerId, uint64_t>> pickers;
    while (it != demand.end() && it->first.first == class_name) {
      if (it->second >= config_.min_picks && it->first.second.is_concrete()) {
        pickers.emplace_back(it->first.second, it->second);
      }
      ++it;
    }
    if (pickers.empty()) continue;
    const std::vector<ClassMember>* members =
        generics.DocumentMembers(class_name);
    if (members == nullptr || members->empty()) continue;
    // The seed source is the durable origin — the first member that is
    // not itself somebody's cached copy (a copy may evict any time; the
    // origin is the stable ground truth the paper's d@any equivalence
    // asserts).
    const ClassMember* origin = nullptr;
    for (const ClassMember& m : *members) {
      if (m.peer.is_concrete() && !replicas.IsCachedCopy(m.peer, m.name)) {
        origin = &m;
        break;
      }
    }
    if (origin == nullptr) continue;
    // Hottest callers first; the table walk above produced PeerId order,
    // so a stable sort keeps ties deterministic.
    std::stable_sort(pickers.begin(), pickers.end(),
                     [](const std::pair<PeerId, uint64_t>& a,
                        const std::pair<PeerId, uint64_t>& b) {
                       return a.second > b.second;
                     });
    size_t seeded = 0;
    for (const auto& [peer, picks] : pickers) {
      if (seeded >= config_.max_targets_per_class) break;
      if (peer == origin->peer) continue;
      // A peer already serving the class durably (a mirror) or holding a
      // fresh copy reads locally today; seeding it ships dead bytes.
      if (std::any_of(members->begin(), members->end(),
                      [peer = peer](const ClassMember& m) {
                        return m.peer == peer;
                      })) {
        continue;
      }
      if (replicas.HasFresh(peer, origin->peer, origin->name)) continue;
      plan.push_back(PlacementDecision{
          peer, ReplicaKey{origin->peer, origin->name}, class_name,
          picks});
      ++seeded;
    }
  }
  if (plan.size() > config_.max_shipments_per_round) {
    plan.resize(config_.max_shipments_per_round);
  }
  return plan;
}

}  // namespace axml
