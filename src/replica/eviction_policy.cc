#include "replica/eviction_policy.h"

#include <algorithm>
#include <list>
#include <map>

#include "common/logging.h"

namespace axml {

const char* EvictionPolicyName(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kLfu:
      return "lfu";
    case EvictionPolicy::kCostAware:
      return "cost_aware";
  }
  return "?";
}

namespace {

/// The original hardwired behavior: a recency list, victim = back.
class LruStrategy final : public EvictionStrategy {
 public:
  EvictionPolicy policy() const override { return EvictionPolicy::kLru; }

  void OnInsert(const ReplicaKey& key, uint64_t /*bytes*/) override {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    mru_.push_front(key);
    pos_[key] = mru_.begin();
  }

  void OnAccess(const ReplicaKey& key) override {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    auto it = pos_.find(key);
    AXML_CHECK(it != pos_.end());
    mru_.splice(mru_.begin(), mru_, it->second);
  }

  void OnErase(const ReplicaKey& key) override {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    auto it = pos_.find(key);
    AXML_CHECK(it != pos_.end());
    mru_.erase(it->second);
    pos_.erase(it);
  }

  size_t size() const override { return pos_.size(); }

  bool PickVictim(ReplicaKey* victim) const override {
    if (mru_.empty()) return false;
    *victim = mru_.back();
    return true;
  }

 private:
  std::list<ReplicaKey> mru_;  ///< front = most recently used
  std::map<ReplicaKey, std::list<ReplicaKey>::iterator> pos_;
};

/// Least frequently used, with periodic halving so a formerly hot entry
/// does not pin its slot forever on stale counts.
class LfuStrategy final : public EvictionStrategy {
 public:
  /// Every this many insert/access events, all frequencies halve.
  static constexpr uint64_t kAgeInterval = 256;

  EvictionPolicy policy() const override { return EvictionPolicy::kLfu; }

  void OnInsert(const ReplicaKey& key, uint64_t /*bytes*/) override {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    Tick();
    freqs_[key] = Counts{1, tick_};
  }

  void OnAccess(const ReplicaKey& key) override {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    Tick();
    auto it = freqs_.find(key);
    AXML_CHECK(it != freqs_.end());
    ++it->second.freq;
    it->second.last_tick = tick_;
  }

  void OnErase(const ReplicaKey& key) override {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    AXML_CHECK(freqs_.erase(key) == 1);
  }

  size_t size() const override { return freqs_.size(); }

  bool PickVictim(ReplicaKey* victim) const override {
    const std::pair<const ReplicaKey, Counts>* best = nullptr;
    for (const auto& kv : freqs_) {
      // Least frequent; among equals the least recently touched.
      if (best == nullptr || kv.second.freq < best->second.freq ||
          (kv.second.freq == best->second.freq &&
           kv.second.last_tick < best->second.last_tick)) {
        best = &kv;
      }
    }
    if (best == nullptr) return false;
    *victim = best->first;
    return true;
  }

 private:
  struct Counts {
    uint64_t freq = 0;
    uint64_t last_tick = 0;
  };

  void Tick() {
    if (++tick_ % kAgeInterval != 0) return;
    for (auto& [key, counts] : freqs_) {
      counts.freq = std::max<uint64_t>(1, counts.freq / 2);
    }
  }

  uint64_t tick_ = 0;
  std::map<ReplicaKey, Counts> freqs_;
};

/// GreedyDual-Size flavor: victim score = bytes × age / refetch-cost, so
/// the cache sheds big, long-untouched entries whose origin is cheap to
/// reach and protects copies that would be expensive to pull again.
class CostAwareStrategy final : public EvictionStrategy {
 public:
  explicit CostAwareStrategy(RefetchCostFn refetch_cost)
      : refetch_cost_(std::move(refetch_cost)) {}

  EvictionPolicy policy() const override {
    return EvictionPolicy::kCostAware;
  }

  void OnInsert(const ReplicaKey& key, uint64_t bytes) override {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    // Priced once at insert: key.origin and bytes are fixed for the
    // entry's lifetime, and the wired CostModel call is far too heavy to
    // repeat per entry on every victim scan. A topology edit mid-flight
    // reprices only subsequently inserted entries.
    double cost = refetch_cost_ ? refetch_cost_(key, bytes) : 1.0;
    // A free link (co-located or unset fn) must not divide by zero; the
    // floor also keeps loopback copies maximally evictable.
    cost = std::max(cost, 1e-9);
    entries_[key] = State{bytes, ++tick_, cost};
  }

  void OnAccess(const ReplicaKey& key) override {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    auto it = entries_.find(key);
    AXML_CHECK(it != entries_.end());
    it->second.last_tick = ++tick_;
  }

  void OnErase(const ReplicaKey& key) override {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    AXML_CHECK(entries_.erase(key) == 1);
  }

  size_t size() const override { return entries_.size(); }

  bool PickVictim(ReplicaKey* victim) const override {
    const std::pair<const ReplicaKey, State>* best = nullptr;
    double best_score = 0;
    for (const auto& kv : entries_) {
      const double age =
          static_cast<double>(tick_ - kv.second.last_tick) + 1.0;
      const double score =
          static_cast<double>(kv.second.bytes) * age / kv.second.cost;
      if (best == nullptr || score > best_score) {
        best = &kv;
        best_score = score;
      }
    }
    if (best == nullptr) return false;
    *victim = best->first;
    return true;
  }

 private:
  struct State {
    uint64_t bytes = 0;
    uint64_t last_tick = 0;
    double cost = 1.0;  ///< refetch price, fixed at insert
  };

  RefetchCostFn refetch_cost_;
  uint64_t tick_ = 0;
  std::map<ReplicaKey, State> entries_;
};

}  // namespace

std::unique_ptr<EvictionStrategy> MakeEvictionStrategy(
    EvictionPolicy policy, RefetchCostFn refetch_cost) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return std::make_unique<LruStrategy>();
    case EvictionPolicy::kLfu:
      return std::make_unique<LfuStrategy>();
    case EvictionPolicy::kCostAware:
      return std::make_unique<CostAwareStrategy>(std::move(refetch_cost));
  }
  AXML_CHECK(false);
  return nullptr;
}

}  // namespace axml
