// Proactive replica placement: seed copies on hot paths.
//
// The replica layer so far is purely reactive — a copy materializes only
// after some read paid the transfer, and a mutation (under kDrop) strands
// every hot reader until its next read pays again. The GenericCatalog
// already records *demand*: every d@any resolution counts a (class,
// caller) pick. The PlacementPolicy turns that signal into shipments —
// for each document class whose demand at some caller crossed a
// threshold, the durable origin ships the document to the top-picking
// peers through the existing transfer path (budget-checked, coalesced
// with in-flight refresh shipments, advertised on landing). Subsequent
// d@any picks at those peers ride the free loopback link.
//
// The policy is a pure planner: Plan() inspects demand and replica state
// and returns shipment decisions; ReplicaManager::RunPlacement executes
// them (it owns the wire machinery and the budgets). Plan() is const,
// deterministic for a given demand table and replica state, and free of
// side effects — callers may re-plan at any time; only launching a
// decision drains the demand that earned it. Single-threaded, like the
// rest of the system. When document sharding is enabled, a placement
// shipment is a shard *delta*: the per-holder byte budget is charged
// only for the pieces the holder lacks, so even a document larger than
// the holder's cache can be seeded partially.

#ifndef AXML_REPLICA_PLACEMENT_H_
#define AXML_REPLICA_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "obs/metrics.h"
#include "replica/replica_key.h"

namespace axml {

class GenericCatalog;
class ReplicaManager;

/// Knobs for proactive placement. Disabled by default — placement only
/// ships when somebody turned it on.
struct PlacementConfig {
  bool enabled = false;
  /// Picks one caller must accumulate for one class before it qualifies
  /// as a hot path worth seeding.
  uint64_t min_picks = 4;
  /// Per class, at most this many top-picking peers get copies.
  size_t max_targets_per_class = 2;
  /// Cap on shipments one RunPlacement round may start.
  size_t max_shipments_per_round = 8;
  /// Lifetime wire-byte cap per receiving holder for placement
  /// shipments (reset by ReplicaManager::ResetStats). Exhausted holders
  /// are skipped.
  uint64_t byte_budget_per_holder = UINT64_MAX;
};

/// Counters for the placement path.
struct PlacementStats {
  uint64_t shipments = 0;      ///< proactive shipments started
  uint64_t landed = 0;         ///< copies that materialized + advertised
  uint64_t shipped_bytes = 0;  ///< wire bytes those shipments cost
  /// Decisions folded into a shipment already in flight (eager refresh
  /// or an earlier placement round).
  uint64_t coalesced = 0;
  /// Decisions denied by the per-holder placement byte budget.
  uint64_t budget_denied = 0;
  /// Shipments that landed but would not cache (origin moved on while on
  /// the wire, or the holder's cache refused the copy).
  uint64_t wasted = 0;

  std::string ToString() const;

  /// Registry retrofit: every field above under its own name.
  void ExportMetrics(MetricSink& sink) const;
};

/// One planned shipment: push origin's document to `holder`.
struct PlacementDecision {
  PeerId holder;
  ReplicaKey key;          ///< (durable origin, doc name)
  std::string class_name;  ///< the class whose demand earned the seed
  uint64_t demand = 0;     ///< picks that earned it (for traces)
};

/// Watches GenericCatalog pick demand and plans proactive copies. Owned
/// by the ReplicaManager; pure — all wire effects live in the manager.
class PlacementPolicy {
 public:
  void set_config(PlacementConfig config) { config_ = config; }
  const PlacementConfig& config() const { return config_; }

  /// Plans this round's shipments from the current demand table:
  /// qualifying (class, caller) pairs, ranked by demand, capped per
  /// class and per round. Skips callers that are the origin, already
  /// hold a fresh copy, or already appear as class members. Deterministic
  /// for a given demand table and replica state.
  std::vector<PlacementDecision> Plan(const GenericCatalog& generics,
                                      const ReplicaManager& replicas) const;

 private:
  PlacementConfig config_;
};

}  // namespace axml

#endif  // AXML_REPLICA_PLACEMENT_H_
