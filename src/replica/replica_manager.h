// Replica placement and versioned invalidation.
//
// The paper's rule (13) materializes a transferred tree as a local copy;
// its generic documents (def. 9) read "any" member of an equivalence
// class. Both presuppose a runtime notion of *replicas*: who holds a
// copy, how fresh it is, and when reading a copy beats a transfer. The
// ReplicaManager is that layer:
//
//  - every (owner peer, doc name) carries a version, bumped whenever the
//    owner mutates the document (Peer's mutation listener);
//  - each peer owns a TransferCache of materialized remote copies tagged
//    with the origin version at copy time;
//  - a fresh copy is installed as a local document and *advertised*: the
//    discovery catalog lists the caching peer as a holder, and the copy
//    joins every generic class the origin belongs to — so d@any
//    resolution routes to the nearest fresh copy;
//  - a stale copy is dropped on the next lookup: evicted from the cache,
//    removed as a local document, Catalog::Unregister'ed, and withdrawn
//    from its generic classes.
//
// Cached copies are soft state: AxmlSystem::StateFingerprint skips them,
// so Σ-equivalence (the rule-equivalence property) is judged on durable
// documents only.

#ifndef AXML_REPLICA_REPLICA_MANAGER_H_
#define AXML_REPLICA_REPLICA_MANAGER_H_

#include <map>
#include <memory>
#include <string>

#include "common/ids.h"
#include "peer/generic.h"
#include "replica/transfer_cache.h"
#include "xml/tree.h"

namespace axml {

class AxmlSystem;

/// Owns every peer's transfer cache and the document version table.
class ReplicaManager {
 public:
  ReplicaManager() = default;
  ReplicaManager(const ReplicaManager&) = delete;
  ReplicaManager& operator=(const ReplicaManager&) = delete;

  /// Ties the manager to its system (called by AxmlSystem's constructor;
  /// the manager touches peers, the catalog and the generic registry when
  /// advertising or retracting copies).
  void Bind(AxmlSystem* sys) { sys_ = sys; }

  // --- Document versions ---

  /// Current version of `name` on `owner`; 1 for a document never
  /// mutated since install.
  uint64_t Version(PeerId owner, const DocName& name) const;

  /// Records a mutation of `name` on `owner` (wired to Peer's mutation
  /// listener: PutDocument, AppendUnderNode, RemoveDocument). Copies made
  /// at earlier versions become stale and are dropped on their next
  /// lookup.
  void NoteMutation(PeerId owner, const DocName& name);

  // --- Per-peer caches ---

  /// The transfer cache of `peer`, created on first use with the default
  /// byte budget.
  TransferCache* CacheFor(PeerId peer);
  /// nullptr when `peer` never cached anything.
  const TransferCache* FindCache(PeerId peer) const;

  /// Budget applied to caches created after this call.
  void set_default_byte_budget(uint64_t bytes) { default_budget_ = bytes; }
  uint64_t default_byte_budget() const { return default_budget_; }

  // --- Copies ---

  /// Records that `landed` — a copy of origin's `name` — materialized at
  /// `reader`: inserts it into reader's transfer cache and, when the
  /// reader holds no unrelated document of that name, installs it as a
  /// local document and advertises it (catalog + generic classes of the
  /// origin). `snapshot_version` is the origin's version *when the
  /// content was copied for shipping* — passing the landing-time version
  /// would brand content cloned before a mid-flight mutation as fresh.
  /// Returns false without caching when the snapshot is already stale,
  /// the tree exceeds the cache budget, or the copy is not cacheable.
  bool InsertCopy(PeerId reader, PeerId origin, const DocName& name,
                  const TreePtr& landed, uint64_t snapshot_version);

  /// The fresh cached copy of origin's `name` held by `reader`, or
  /// nullptr. A stale copy is dropped (cache, local document, catalog,
  /// generic classes) before returning the miss. Counts hit/miss stats.
  TreePtr LookupFresh(PeerId reader, PeerId origin, const DocName& name);

  /// True when `reader` holds a fresh copy of origin's `name`. No side
  /// effects and no stats — the cost model probes with this.
  bool HasFresh(PeerId reader, PeerId origin, const DocName& name) const;

  /// Serialized size of the fresh copy, 0 when absent.
  uint64_t FreshCopyBytes(PeerId reader, PeerId origin,
                          const DocName& name) const;

  /// True when document `name` on `peer` is soft replica state (skipped
  /// by StateFingerprint).
  bool IsCachedCopy(PeerId peer, const DocName& name) const;

  /// True when `reader` holds a fresh copy of origin's `name` that is
  /// also *installed* as reader's local document of that name. Only then
  /// may a rewrite substitute Doc(name, reader) for Doc(name, origin) —
  /// a cache-only copy (local name taken by an unrelated document or a
  /// copy from another origin) must not be read by name.
  bool HasFreshInstalled(PeerId reader, PeerId origin,
                         const DocName& name) const;

  /// Generic-pick validation hook: a member that is a cached copy must be
  /// fresh to stay in its class; a stale one is dropped (with all its
  /// advertisements) and the call returns false. Durable members always
  /// validate.
  bool ValidateMember(const std::string& class_name,
                      const ClassMember& member);

  /// Drops one copy (fresh or stale) with its advertisements; returns
  /// true when it existed.
  bool DropCopy(PeerId reader, PeerId origin, const DocName& name);
  /// Drops every cached copy on every peer (benches reset between runs).
  void DropAllCopies();

  /// Sum of every peer's cache counters.
  TransferCacheStats TotalStats() const;
  void ResetStats();

 private:
  /// Retracts the local document + catalog + generic-class advertisements
  /// of the copy `key` held at `reader`. Invoked by the caches' evict
  /// listeners, so budget evictions retract advertisements too.
  void RetractAdvertisements(PeerId reader, const ReplicaKey& key);

  AxmlSystem* sys_ = nullptr;
  uint64_t default_budget_ = TransferCache::kDefaultByteBudget;
  std::map<PeerId, std::unique_ptr<TransferCache>> caches_;
  std::map<ReplicaKey, uint64_t> versions_;  ///< key = (owner, name)
  /// (reader, local doc name) -> origin, for copies installed as local
  /// documents. Guards against shadowing a reader's own documents and
  /// lets IsCachedCopy answer without scanning caches.
  std::map<std::pair<PeerId, DocName>, PeerId> installed_;
};

}  // namespace axml

#endif  // AXML_REPLICA_REPLICA_MANAGER_H_
