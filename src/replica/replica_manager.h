// Replica placement and versioned invalidation.
//
// The paper's rule (13) materializes a transferred tree as a local copy;
// its generic documents (def. 9) read "any" member of an equivalence
// class. Both presuppose a runtime notion of *replicas*: who holds a
// copy, how fresh it is, and when reading a copy beats a transfer. The
// ReplicaManager is that layer:
//
//  - every (owner peer, doc name) carries a version, bumped whenever the
//    owner mutates the document (Peer's mutation listener);
//  - each peer owns a TransferCache of materialized remote copies tagged
//    with the origin version at copy time;
//  - a fresh copy is installed as a local document and *advertised*: the
//    discovery catalog lists the caching peer as a holder, and the copy
//    joins every generic class the origin belongs to — so d@any
//    resolution routes to the nearest fresh copy;
//  - every successful cache insert *subscribes* the holder at the origin
//    (SubscriptionTable); a mutation at the origin pushes to every
//    subscribed holder immediately — under RefreshPolicy::kDrop the
//    holder's copy and all its advertisements are retracted at mutation
//    time (never a stale advertisement between a write and the next
//    read); under kEagerRefresh the origin additionally ships the new
//    version through the transfer path, re-materializing the copy
//    without a read asking for it (per-holder byte budget, in-flight
//    coalescing of back-to-back mutations);
//  - under RefreshPolicy::kLazy (the PR 1 baseline) a stale copy is
//    instead dropped on its next lookup: evicted from the cache, removed
//    as a local document, Catalog::Unregister'ed, and withdrawn from its
//    generic classes.
//
// Cached copies are soft state: AxmlSystem::StateFingerprint skips them,
// so Σ-equivalence (the rule-equivalence property) is judged on durable
// documents only.

#ifndef AXML_REPLICA_REPLICA_MANAGER_H_
#define AXML_REPLICA_REPLICA_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/ids.h"
#include "peer/generic.h"
#include "replica/eviction_policy.h"
#include "replica/placement.h"
#include "replica/subscription.h"
#include "replica/transfer_cache.h"
#include "xml/tree.h"

namespace axml {

class AxmlSystem;

/// Owns every peer's transfer cache and the document version table.
class ReplicaManager {
 public:
  ReplicaManager() = default;
  ReplicaManager(const ReplicaManager&) = delete;
  ReplicaManager& operator=(const ReplicaManager&) = delete;

  /// Ties the manager to its system (called by AxmlSystem's constructor;
  /// the manager touches peers, the catalog and the generic registry when
  /// advertising or retracting copies).
  void Bind(AxmlSystem* sys) { sys_ = sys; }

  // --- Document versions ---

  /// Current version of `name` on `owner`. Always >= 1: exactly 1 for a
  /// name this manager never saw a mutation for, and incremented on
  /// every mutation-listener event — the installing write included, so
  /// an installed document sits at 2 and no mutation history can ever
  /// collide with the never-seen default. (The seed returned 0 for
  /// never-seen names while documenting 1, which made the first-ever
  /// listener event land on 1 — indistinguishable from never-seen.)
  uint64_t Version(PeerId owner, const DocName& name) const;

  /// Records a mutation of `name` on `owner` (wired to Peer's mutation
  /// listener: PutDocument, AppendUnderNode, RemoveDocument). Copies made
  /// at earlier versions become stale; under the push policies (kDrop,
  /// kEagerRefresh) every subscribed holder is notified here — its copy
  /// and advertisements are gone before this call returns — while kLazy
  /// leaves them to be dropped on their next lookup.
  void NoteMutation(PeerId owner, const DocName& name);

  // --- Push-based refresh ---

  /// What a mutation does to subscribed copy holders. Default: kDrop —
  /// immediate coherence; kLazy restores the drop-on-lookup baseline.
  void set_refresh_policy(RefreshPolicy p) { refresh_policy_ = p; }
  RefreshPolicy refresh_policy() const { return refresh_policy_; }

  /// Cap on the wire bytes eager refresh may spend per holder (lifetime
  /// of the manager, reset by ResetStats). Exhausted holders fall back
  /// to drop. Default: unlimited.
  void set_refresh_budget_bytes(uint64_t bytes) {
    refresh_budget_bytes_ = bytes;
  }
  uint64_t refresh_budget_bytes() const { return refresh_budget_bytes_; }

  const SubscriptionStats& subscription_stats() const {
    return subscription_stats_;
  }
  const SubscriptionTable& subscriptions() const { return subscriptions_; }

  /// True when an eager-refresh shipment of origin's `name` toward
  /// `reader` is on the wire.
  bool IsRefreshInFlight(PeerId reader, PeerId origin,
                         const DocName& name) const;

  /// Cost-model probe: true when `reader` holds a fresh copy *or* one is
  /// being re-materialized right now (eager refresh in flight). Under
  /// kEagerRefresh a mutation therefore does not decay the fresh-copy
  /// assumption plans are priced on.
  bool ExpectedFresh(PeerId reader, PeerId origin,
                     const DocName& name) const;

  // --- Per-peer caches ---

  /// The transfer cache of `peer`, created on first use with the default
  /// byte budget.
  TransferCache* CacheFor(PeerId peer);
  /// nullptr when `peer` never cached anything.
  const TransferCache* FindCache(PeerId peer) const;

  /// Budget applied to caches created after this call.
  void set_default_byte_budget(uint64_t bytes) { default_budget_ = bytes; }
  uint64_t default_byte_budget() const { return default_budget_; }

  /// Victim-selection policy for the transfer caches. Applies to caches
  /// created later *and* switches every existing cache (recency and
  /// frequency bookkeeping restarts — benches flip policies between
  /// runs). Every cache also gets CostModel::RefetchCost wired in as its
  /// refetch-cost estimate, so kCostAware prices victims off the real
  /// topology.
  void set_default_eviction_policy(EvictionPolicy p);
  EvictionPolicy default_eviction_policy() const {
    return default_eviction_policy_;
  }

  // --- Proactive placement ---

  /// Placement policy and its config (disabled until someone enables it
  /// via placement().set_config).
  PlacementPolicy& placement() { return placement_; }
  const PlacementPolicy& placement() const { return placement_; }
  const PlacementStats& placement_stats() const { return placement_stats_; }

  /// One placement round: plans shipments from the GenericCatalog's pick
  /// demand (PlacementPolicy::Plan) and starts them through the shared
  /// shipment path — coalesced with in-flight refresh/placement
  /// shipments, denied by the per-holder placement byte budget, cached +
  /// installed + advertised when they land. Returns shipments started;
  /// the caller drives the event loop to land them.
  size_t RunPlacement();

  // --- Copies ---

  /// Records that `landed` — a copy of origin's `name` — materialized at
  /// `reader`: inserts it into reader's transfer cache and, when the
  /// reader holds no unrelated document of that name, installs it as a
  /// local document and advertises it (catalog + generic classes of the
  /// origin). `snapshot_version` is the origin's version *when the
  /// content was copied for shipping* — passing the landing-time version
  /// would brand content cloned before a mid-flight mutation as fresh.
  /// Returns false without caching when the snapshot is already stale,
  /// the tree exceeds the cache budget, or the copy is not cacheable.
  bool InsertCopy(PeerId reader, PeerId origin, const DocName& name,
                  const TreePtr& landed, uint64_t snapshot_version);

  /// The fresh cached copy of origin's `name` held by `reader`, or
  /// nullptr. A stale copy is dropped (cache, local document, catalog,
  /// generic classes) before returning the miss. Counts hit/miss stats.
  /// Never allocates: a reader that never cached anything gets a plain
  /// miss (counted manager-side, see TotalStats), not a TransferCache.
  TreePtr LookupFresh(PeerId reader, PeerId origin, const DocName& name);

  /// True when `reader` holds a fresh copy of origin's `name`. No side
  /// effects and no stats — the cost model probes with this.
  bool HasFresh(PeerId reader, PeerId origin, const DocName& name) const;

  /// Serialized size of the fresh copy, 0 when absent.
  uint64_t FreshCopyBytes(PeerId reader, PeerId origin,
                          const DocName& name) const;

  /// True when document `name` on `peer` is soft replica state (skipped
  /// by StateFingerprint).
  bool IsCachedCopy(PeerId peer, const DocName& name) const;

  /// The origin whose copy is installed as `peer`'s local document
  /// `name`, or PeerId::Invalid() when that slot holds no copy. Only the
  /// installed copy carries advertisements — a cache-only copy (slot
  /// taken by an unrelated document or another origin's copy) serves
  /// repeated reads but is never advertised; tests mirror-check
  /// advertisements against this.
  PeerId InstalledOrigin(PeerId peer, const DocName& name) const;

  /// True when `reader` holds a fresh copy of origin's `name` that is
  /// also *installed* as reader's local document of that name. Only then
  /// may a rewrite substitute Doc(name, reader) for Doc(name, origin) —
  /// a cache-only copy (local name taken by an unrelated document or a
  /// copy from another origin) must not be read by name.
  bool HasFreshInstalled(PeerId reader, PeerId origin,
                         const DocName& name) const;

  /// Generic-pick validation hook: a member that is a cached copy must be
  /// fresh to stay in its class; a stale one is dropped (with all its
  /// advertisements) and the call returns false. Durable members always
  /// validate.
  bool ValidateMember(const std::string& class_name,
                      const ClassMember& member);

  /// Drops one copy (fresh or stale) with its advertisements; returns
  /// true when it existed.
  bool DropCopy(PeerId reader, PeerId origin, const DocName& name);
  /// Drops every cached copy on every peer (benches reset between runs).
  void DropAllCopies();

  /// Sum of every peer's cache counters.
  TransferCacheStats TotalStats() const;
  void ResetStats();

 private:
  /// Retracts the local document + catalog + generic-class advertisements
  /// of the copy `key` held at `reader`. Invoked by the caches' evict
  /// listeners, so budget evictions retract advertisements too.
  void RetractAdvertisements(PeerId reader, const ReplicaKey& key);

  /// Mutation fan-out (kDrop / kEagerRefresh): notifies every subscribed
  /// holder of `key`, drops its copy synchronously, and — under eager
  /// refresh — starts the re-materializing shipment.
  void PushInvalidate(const ReplicaKey& key);

  /// Ships the origin's current version of `key` to `holder`; the copy
  /// re-enters the cache (and its advertisements) when it lands. Folds
  /// into an already in-flight shipment; respects the refresh budget.
  /// `retry` marks a catch-up shipment after a mid-flight mutation.
  /// Returns true when a shipment is (now) in flight for the pair —
  /// false means nothing will land (budget denied, document removed).
  bool StartRefresh(PeerId holder, const ReplicaKey& key, bool retry);

  /// Executes one planned placement seeding through the same in-flight
  /// machinery StartRefresh uses (one shipment per (holder, key) pair on
  /// the wire, whatever started it). Returns true when a new shipment
  /// launched; launching drains the decision's (class, holder) demand.
  bool StartPlacementShipment(const PlacementDecision& decision);

  /// Shared wire leg of StartRefresh and StartPlacementShipment: clones
  /// the origin's current content, registers a generation token in
  /// refresh_inflight_, and sends. `admit` sees the serialized size
  /// before anything is committed — return false to veto (and charge
  /// whatever budget applies on true). `on_land` runs at arrival with
  /// the flight token already cleared; a landing whose token was
  /// canceled (DropAllCopies) or superseded mid-flight is silently
  /// discarded before `on_land`. Returns false when nothing launched
  /// (missing peer or document, service calls frozen, admit veto).
  /// Precondition: no shipment in flight for (holder, key).
  bool LaunchShipment(
      PeerId holder, const ReplicaKey& key,
      const std::function<bool(uint64_t bytes)>& admit,
      std::function<void(const TreePtr& shipped, uint64_t snap_version,
                         uint64_t bytes)>
          on_land);

  AxmlSystem* sys_ = nullptr;
  uint64_t default_budget_ = TransferCache::kDefaultByteBudget;
  EvictionPolicy default_eviction_policy_ = EvictionPolicy::kLru;
  std::map<PeerId, std::unique_ptr<TransferCache>> caches_;
  std::map<ReplicaKey, uint64_t> versions_;  ///< key = (owner, name)
  /// (reader, local doc name) -> origin, for copies installed as local
  /// documents. Guards against shadowing a reader's own documents and
  /// lets IsCachedCopy answer without scanning caches.
  std::map<std::pair<PeerId, DocName>, PeerId> installed_;

  RefreshPolicy refresh_policy_ = RefreshPolicy::kDrop;
  SubscriptionTable subscriptions_;
  SubscriptionStats subscription_stats_;
  uint64_t refresh_budget_bytes_ = UINT64_MAX;
  std::map<PeerId, uint64_t> refresh_spent_;  ///< wire bytes per holder
  /// (holder, key) -> generation of the refresh shipment on the wire.
  /// The landing callback acts only when its own generation is still
  /// registered: a shipment outliving a DropAllCopies (its event is
  /// queued in the loop) must not hijack the token of a newer shipment
  /// for the same pair.
  std::map<std::pair<PeerId, ReplicaKey>, uint64_t> refresh_inflight_;
  uint64_t refresh_generation_ = 0;
  /// Misses by peers that never cached anything (LookupFresh must not
  /// allocate a cache just to count one); folded into TotalStats.
  uint64_t uncached_misses_ = 0;

  PlacementPolicy placement_;
  PlacementStats placement_stats_;
  /// Wire bytes placement spent per receiving holder (the placement
  /// config's per-holder budget draws down against this).
  std::map<PeerId, uint64_t> placement_spent_;
};

}  // namespace axml

#endif  // AXML_REPLICA_REPLICA_MANAGER_H_
