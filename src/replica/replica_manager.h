// Replica placement and versioned invalidation.
//
// The paper's rule (13) materializes a transferred tree as a local copy;
// its generic documents (def. 9) read "any" member of an equivalence
// class. Both presuppose a runtime notion of *replicas*: who holds a
// copy, how fresh it is, and when reading a copy beats a transfer. The
// ReplicaManager is that layer:
//
//  - every (owner peer, doc name) carries a version, bumped whenever the
//    owner mutates the document (Peer's mutation listener);
//  - each peer owns a TransferCache of materialized remote copies tagged
//    with the origin version at copy time;
//  - a fresh copy is installed as a local document and *advertised*: the
//    discovery catalog lists the caching peer as a holder, and the copy
//    joins every generic class the origin belongs to — so d@any
//    resolution routes to the nearest fresh copy;
//  - every successful cache insert *subscribes* the holder at the origin
//    under the inserted entry's exact key — whole-document, manifest or
//    data shard (SubscriptionTable); a mutation at the origin pushes to
//    every *dirty* holder immediately, where a partial sharded holder is
//    dirty only if it holds a data shard the new version no longer
//    references (clean partial holders are skipped: shard-granular
//    fan-out) — under RefreshPolicy::kDrop the
//    holder's copy and all its advertisements are retracted at mutation
//    time (never a stale advertisement between a write and the next
//    read); under kEagerRefresh the origin additionally ships the new
//    version through the transfer path, re-materializing the copy
//    without a read asking for it (per-holder byte budget, in-flight
//    coalescing of back-to-back mutations);
//  - under RefreshPolicy::kLazy (the PR 1 baseline) a stale copy is
//    instead dropped on its next lookup: evicted from the cache, removed
//    as a local document, Catalog::Unregister'ed, and withdrawn from its
//    generic classes;
//  - documents above the sharding threshold (xml/sharding.h, enabled via
//    set_sharding_enabled) replicate as *shards*: a versioned manifest
//    plus immutable content-addressed data shards, each its own cache
//    entry. Reads, eager refresh and placement then ship only the shards
//    the holder lacks (a "delta"), a mutation of one subtree re-ships
//    one dirty shard instead of the whole document, and a byte budget
//    smaller than the document can still hold a useful partial copy.
//
// Cached copies are soft state: AxmlSystem::StateFingerprint skips them,
// so Σ-equivalence (the rule-equivalence property) is judged on durable
// documents only.
//
// Threading / reentrancy contract (machine-checked; docs/architecture.md
// is the canonical statement): the manager runs on its System's one
// sequence, enforced by an embedded SequenceChecker — cross-thread use
// aborts. Mutation fan-out is synchronous — NoteMutation drops
// subscribed copies before it returns — and *legally* nests across
// distinct documents: a drop fires RemoveDocument, whose mutation
// listener re-enters NoteMutation for the holder's own name. What must
// never happen is re-entering NoteMutation for the *same* (owner, name)
// while its fan-out is still running (the version table and subscription
// state for that key are mid-mutation), so NoteMutation keeps a per-key
// active set and aborts on a same-key cycle (death-tested). The caches'
// evict listeners call back into the manager (advertisement retraction,
// unsubscription) but never back into the cache that fired them — the
// cache's own ReentrancyGuard enforces that side.

#ifndef AXML_REPLICA_REPLICA_MANAGER_H_
#define AXML_REPLICA_REPLICA_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "common/ids.h"
#include "common/sequence_checker.h"
#include "net/sim_time.h"
#include "peer/generic.h"
#include "replica/eviction_policy.h"
#include "replica/placement.h"
#include "replica/subscription.h"
#include "replica/transfer_cache.h"
#include "xml/sharding.h"
#include "xml/tree.h"

namespace axml {

class AxmlSystem;
class Tracer;

/// What a simulated peer crash does to the peer's replica cache.
enum class CrashMode {
  /// The cache dies with the process: every entry is wiped (evict
  /// listeners retract advertisements and subscriptions as usual).
  kLoseCache,
  /// The cache survives on disk. Its entries may rot while the peer is
  /// down — rejoin reconciles them against every origin before anything
  /// is re-advertised.
  kDurableCache,
};

/// Counters for the sharded-replication paths (bench_sharding reports
/// these; cumulative since the last ResetStats).
struct ShardStats {
  uint64_t sharded_reads = 0;      ///< read-path delta fetches issued
  uint64_t sharded_shipments = 0;  ///< refresh/placement delta shipments
  uint64_t manifests_shipped = 0;  ///< manifests that crossed the wire
  uint64_t shards_shipped = 0;     ///< data shards that crossed the wire
  uint64_t shard_bytes_shipped = 0;
  /// Resident shards a delta did not have to re-ship, and their bytes —
  /// the wire traffic partial copies avoided.
  uint64_t shards_reused = 0;
  uint64_t shard_bytes_saved = 0;
  uint64_t full_hits = 0;     ///< reads assembled entirely from residents
  uint64_t partial_hits = 0;  ///< delta reads that reused >= 1 shard

  std::string ToString() const;

  /// Registry retrofit: every field above under its own name.
  void ExportMetrics(MetricSink& sink) const;
};

/// Owns every peer's transfer cache and the document version table.
class ReplicaManager {
 public:
  ReplicaManager() = default;
  ReplicaManager(const ReplicaManager&) = delete;
  ReplicaManager& operator=(const ReplicaManager&) = delete;

  /// Ties the manager to its system (called by AxmlSystem's constructor;
  /// the manager touches peers, the catalog and the generic registry when
  /// advertising or retracting copies).
  void Bind(AxmlSystem* sys) { sys_ = sys; }

  // --- Document versions ---

  /// Current version of `name` on `owner`. Always >= 1: exactly 1 for a
  /// name this manager never saw a mutation for, and incremented on
  /// every mutation-listener event — the installing write included, so
  /// an installed document sits at 2 and no mutation history can ever
  /// collide with the never-seen default. (The seed returned 0 for
  /// never-seen names while documenting 1, which made the first-ever
  /// listener event land on 1 — indistinguishable from never-seen.)
  uint64_t Version(PeerId owner, const DocName& name) const;

  /// Records a mutation of `name` on `owner` (wired to Peer's mutation
  /// listener: PutDocument, AppendUnderNode, RemoveDocument). Copies made
  /// at earlier versions become stale; under the push policies (kDrop,
  /// kEagerRefresh) every subscribed holder is notified here — its copy
  /// and advertisements are gone before this call returns — while kLazy
  /// leaves them to be dropped on their next lookup.
  void NoteMutation(PeerId owner, const DocName& name);

  // --- Push-based refresh ---

  /// What a mutation does to subscribed copy holders. Default: kDrop —
  /// immediate coherence; kLazy restores the drop-on-lookup baseline.
  void set_refresh_policy(RefreshPolicy p) { refresh_policy_ = p; }
  RefreshPolicy refresh_policy() const { return refresh_policy_; }

  /// Cap on the wire bytes eager refresh may spend per holder (lifetime
  /// of the manager, reset by ResetStats). Exhausted holders fall back
  /// to drop. Default: unlimited.
  void set_refresh_budget_bytes(uint64_t bytes) {
    refresh_budget_bytes_ = bytes;
  }
  uint64_t refresh_budget_bytes() const { return refresh_budget_bytes_; }

  const SubscriptionStats& subscription_stats() const {
    return subscription_stats_;
  }
  const SubscriptionTable& subscriptions() const { return subscriptions_; }

  // --- Fault tolerance (leases, retry, anti-entropy, churn) ---
  //
  // Everything in this block is off by default and, when off, leaves a
  // run byte-identical to a manager without it — the soak harness pins
  // that. The perfect-fabric coherence story never needed it: copy
  // drops are synchronous with the mutation, so no read can see stale
  // content. Under injected faults and peer churn the *origin-side*
  // state (subscriptions, in-flight shipments) and a crashed holder's
  // durable cache can diverge; leases, bounded shipment retry and the
  // anti-entropy sweep bound how long that divergence lives.

  /// Leased subscriptions: every `renew_interval_s` of virtual time each
  /// up holder re-registers its interest at every origin it holds copies
  /// of (one encoded LeaseRenewal message per (holder, origin) pair,
  /// priced at its wire size, lossy);
  /// an origin that heard nothing from a holder for `ttl_s` expires the
  /// lease — the holder's subscriptions are forgotten, and an *up*
  /// holder also drops its lapsed entries (the lease contract: a holder
  /// that cannot renew stops serving; a crashed holder's cache is left
  /// for rejoin-time reconciliation). Runs off EventLoop::AddPeriodic,
  /// so an idle loop still quiesces. 0/0 (the default) disables leases
  /// and clears all deadlines. Requires a bound system.
  void ConfigureLeases(SimTime renew_interval_s, SimTime ttl_s);
  SimTime lease_renew_interval() const { return lease_renew_interval_; }
  SimTime lease_ttl() const { return lease_ttl_; }

  /// Bounded retry-with-backoff for refresh/placement shipments: when
  /// `max_attempts` > 0, every launched shipment arms a timeout of
  /// 3 x the estimated transfer time + `backoff_base_s` x attempt
  /// number; a shipment whose landing never fired (dropped by the fault
  /// injector or a crashed endpoint) is relaunched up to `max_attempts`
  /// total attempts, then the holder falls back to lazy pulls
  /// (SubscriptionStats::dropped_to_lazy). Default: off — a dropped
  /// shipment would just never land.
  void set_shipment_retry(int max_attempts, SimTime backoff_base_s);
  int shipment_retry_attempts() const { return ship_max_attempts_; }

  /// Periodic anti-entropy: every `interval_s` of virtual time, every up
  /// holder reconciles its cache against the origins (ReconcileHolder),
  /// charging one control roundtrip per (holder, origin) pair. 0 (the
  /// default) disables the tick; RunAntiEntropySweep stays callable
  /// manually. Requires a bound system.
  void set_anti_entropy_interval(SimTime interval_s);
  SimTime anti_entropy_interval() const { return anti_entropy_interval_; }

  /// One sweep over every up holder's cache. Returns entries repaired
  /// (stale or orphaned entries dropped).
  size_t RunAntiEntropySweep();

  /// Reconciles one holder's cache against current origin state,
  /// shard-granularly: stale whole-document and manifest entries (origin
  /// version moved on) and orphaned data shards (no longer referenced by
  /// the origin's current split) are dropped; surviving fresh entries
  /// are re-subscribed at the origin (repairing subscriptions lost to
  /// lease expiry or crash) and a complete fresh copy whose local name
  /// slot is free is re-installed and re-advertised. Under
  /// kEagerRefresh, dropped stale copies start a re-materializing
  /// shipment. Charges one control roundtrip per (holder, origin) pair
  /// compared. Returns entries dropped.
  size_t ReconcileHolder(PeerId holder);

  /// Peer-churn hooks (AxmlSystem::CrashPeer/RejoinPeer call these after
  /// flipping the Network's liveness bit). Crash cancels in-flight
  /// shipments toward the peer, retracts every advertisement of its
  /// installed copies (a down peer must never be routable), and under
  /// kLoseCache wipes its transfer cache. Origin-side subscriptions of a
  /// durable-cache peer survive — leases or rejoin clean them up.
  void OnPeerCrash(PeerId peer, CrashMode mode);
  /// Rejoin reconciles the surviving cache (ReconcileHolder) before
  /// anything is re-advertised — a rejoining peer can never serve the
  /// stale state it crashed with.
  void OnPeerRejoin(PeerId peer);

  /// Arrival hook of an invalidation notification (wired as SendNotify's
  /// delivery callback): drops whatever stale whole-document/manifest
  /// entries of `origin` the holder still has. On a perfect fabric this
  /// is always a no-op — PushInvalidate dropped them synchronously at
  /// mutation time — and a notification arriving late (holder already
  /// dropped the doc, or crashed and rejoined at a newer version) is
  /// tolerated the same way: a no-op, never an abort.
  void OnNotifyDelivered(PeerId origin, PeerId holder);

  // --- Notification batching ---

  /// Opens / closes a batching window (nestable) for push notifications:
  /// while a window is open, invalidation events to the same (origin,
  /// holder) pair coalesce into one encoded NotifyBatch payload carrying
  /// all their keys, sent when the outermost window closes. Copy drops
  /// stay synchronous — only the wire message is deferred. Wrap these
  /// around an event-loop turn that mutates many documents; see the
  /// NotifyBatch RAII helper.
  void BeginNotifyBatch();
  void EndNotifyBatch();

  // --- Document sharding (xml/sharding.h) ---

  /// Turns sharded replication on or off. When on, documents for which
  /// ShouldShard holds (bigger than sharding_config().max_shard_bytes,
  /// >= 2 root children, no embedded service calls) replicate as
  /// manifest + data shards; everything else keeps the whole-document
  /// path. Off by default.
  void set_sharding_enabled(bool on) { sharding_enabled_ = on; }
  bool sharding_enabled() const { return sharding_enabled_; }

  /// Splitter knobs. Takes effect on the next version of each document
  /// (the per-origin split is cached per document version).
  void set_sharding_config(ShardingConfig cfg);
  const ShardingConfig& sharding_config() const { return shard_config_; }

  /// The current sharded form of origin's `name`, split once per
  /// document version and cached. nullptr when sharding is disabled, the
  /// document is absent or too small, or it embeds service calls (their
  /// activation state must not be frozen into shard blobs). Logically
  /// const: the memoized split and the origin's NodeIdGen do mutate.
  const ShardedDocument* OriginShards(PeerId origin,
                                      const DocName& name) const;

  /// True when a read of origin's `name` should use the sharded path
  /// (OriginShards != nullptr). The evaluator's gate.
  bool ShardedReadApplies(PeerId origin, const DocName& name) const;

  /// True when `reader` holds a fresh *whole-document* entry for
  /// origin's `name` (shard dimension empty). No side effects and no
  /// stats. The evaluator prefers such a copy over the sharded path —
  /// e.g. one cached before sharding was enabled — so a read the cost
  /// model prices at zero never re-fetches over the wire.
  bool HasFreshWholeCopy(PeerId reader, PeerId origin,
                         const DocName& name) const;

  /// The document assembled from reader's resident shards, iff the
  /// manifest is fresh and every data shard it references is resident.
  /// Counts cache hits and touches recency for the manifest and every
  /// shard; a stale manifest is dropped (with its advertisements) and
  /// the call misses. The result is freshly built from clones — callers
  /// may hand it out directly. nullptr on any miss.
  TreePtr LookupShardedFresh(PeerId reader, PeerId origin,
                             const DocName& name);

  /// Starts a read-path delta fetch: ships only the manifest (if stale)
  /// and the data shards `reader` lacks; resident shards are served
  /// locally (each counts a cache hit). When the transfer lands, the
  /// copy is cached + installed + advertised (InsertShardedCopy) and
  /// `deliver` receives the assembled document (nullptr only if the
  /// reader peer vanished mid-flight). `delta_bytes`, when non-null,
  /// receives the wire bytes charged. Returns false without sending when
  /// the sharded path does not apply — callers fall back to the
  /// whole-document transfer.
  bool FetchForRead(PeerId reader, PeerId origin, const DocName& name,
                    std::function<void(TreePtr)> deliver,
                    uint64_t* delta_bytes = nullptr);

  /// Records a landed sharded shipment at `reader`: caches the manifest
  /// (versioned) and each shipped data shard (immutable, version 0),
  /// subscribes the holder, and — when every manifest shard is resident
  /// and the local name slot is free — installs and advertises the
  /// assembled document. Returns true when the manifest was cached (the
  /// sharded copy exists, possibly partial); false when the snapshot is
  /// stale or the cache refused the manifest.
  bool InsertShardedCopy(PeerId reader, PeerId origin, const DocName& name,
                         const TreePtr& manifest,
                         const std::vector<DocumentShard>& shipped,
                         uint64_t snapshot_version);

  /// Wire bytes a sharded read of origin's `name` at `reader` would move
  /// right now: the stale-or-absent manifest plus every non-resident
  /// data shard. False when the sharded path does not apply (callers
  /// price a full transfer). The cost model prices partial copies with
  /// this — a peer holding most of the shards reads almost for free.
  bool ShardedDeltaBytes(PeerId reader, PeerId origin, const DocName& name,
                         uint64_t* bytes) const;

  const ShardStats& shard_stats() const { return shard_stats_; }

  /// True when an eager-refresh shipment of origin's `name` toward
  /// `reader` is on the wire.
  bool IsRefreshInFlight(PeerId reader, PeerId origin,
                         const DocName& name) const;

  /// Cost-model probe: true when `reader` holds a fresh copy *or* one is
  /// being re-materialized right now (eager refresh in flight). Under
  /// kEagerRefresh a mutation therefore does not decay the fresh-copy
  /// assumption plans are priced on.
  bool ExpectedFresh(PeerId reader, PeerId origin,
                     const DocName& name) const;

  // --- Per-peer caches ---

  /// The transfer cache of `peer`, created on first use with the default
  /// byte budget.
  TransferCache* CacheFor(PeerId peer);
  /// nullptr when `peer` never cached anything.
  const TransferCache* FindCache(PeerId peer) const;

  /// Budget applied to caches created after this call.
  void set_default_byte_budget(uint64_t bytes) { default_budget_ = bytes; }
  uint64_t default_byte_budget() const { return default_budget_; }

  /// Victim-selection policy for the transfer caches. Applies to caches
  /// created later *and* switches every existing cache (recency and
  /// frequency bookkeeping restarts — benches flip policies between
  /// runs). Every cache also gets CostModel::RefetchCost wired in as its
  /// refetch-cost estimate, so kCostAware prices victims off the real
  /// topology.
  void set_default_eviction_policy(EvictionPolicy p);
  EvictionPolicy default_eviction_policy() const {
    return default_eviction_policy_;
  }

  // --- Proactive placement ---

  /// Placement policy and its config (disabled until someone enables it
  /// via placement().set_config).
  PlacementPolicy& placement() { return placement_; }
  const PlacementPolicy& placement() const { return placement_; }
  const PlacementStats& placement_stats() const { return placement_stats_; }

  /// One placement round: plans shipments from the GenericCatalog's pick
  /// demand (PlacementPolicy::Plan) and starts them through the shared
  /// shipment path — coalesced with in-flight refresh/placement
  /// shipments, denied by the per-holder placement byte budget, cached +
  /// installed + advertised when they land. Returns shipments started;
  /// the caller drives the event loop to land them.
  size_t RunPlacement();

  /// Periodic placement: when `interval_s` > 0, RunPlacement fires
  /// automatically every `interval_s` seconds of virtual time
  /// (EventLoop::AddPeriodic — the tick piggybacks on event activity,
  /// so an idle loop still quiesces and manual rounds stay possible).
  /// 0 cancels the tick. Default: off. Requires a bound system.
  void set_placement_tick_interval(SimTime interval_s);
  SimTime placement_tick_interval() const {
    return placement_tick_interval_;
  }

  /// Demand-watermark placement: when `picks` > 0, a (class, caller)
  /// demand counter reaching `picks` posts one RunPlacement to the
  /// event loop — between ticks, at the current virtual instant —
  /// instead of waiting for the next periodic round. Crossings that
  /// arrive while a round is already pending coalesce into it. 0
  /// disables the trigger. Default: off.
  void set_placement_demand_watermark(uint64_t picks) {
    placement_demand_watermark_ = picks;
  }
  uint64_t placement_demand_watermark() const {
    return placement_demand_watermark_;
  }

  /// The GenericCatalog demand-listener hook (AxmlSystem wires it up):
  /// schedules the watermark-triggered round.
  void OnPickDemand(const std::string& class_name, PeerId from,
                    uint64_t demand);

  // --- Copies ---

  /// Records that `landed` — a copy of origin's `name` — materialized at
  /// `reader`: inserts it into reader's transfer cache and, when the
  /// reader holds no unrelated document of that name, installs it as a
  /// local document and advertises it (catalog + generic classes of the
  /// origin). `snapshot_version` is the origin's version *when the
  /// content was copied for shipping* — passing the landing-time version
  /// would brand content cloned before a mid-flight mutation as fresh.
  /// `encoded`, when non-empty, is the landed tree's wire encoding (the
  /// bytes the shipment actually carried) — the cache stores it verbatim
  /// instead of re-encoding. Returns false without caching when the
  /// snapshot is already stale, the tree exceeds the cache budget, or
  /// the copy is not cacheable.
  bool InsertCopy(PeerId reader, PeerId origin, const DocName& name,
                  const TreePtr& landed, uint64_t snapshot_version,
                  std::string encoded = {});

  /// The fresh cached copy of origin's `name` held by `reader`, or
  /// nullptr. A stale copy is dropped (cache, local document, catalog,
  /// generic classes) before returning the miss. Counts hit/miss stats.
  /// Never allocates: a reader that never cached anything gets a plain
  /// miss (counted manager-side, see TotalStats), not a TransferCache.
  /// Whole-document entries only; sharded copies read through
  /// LookupShardedFresh.
  TreePtr LookupFresh(PeerId reader, PeerId origin, const DocName& name);

  /// True when `reader` holds a fresh copy of origin's `name` — a
  /// whole-document entry at the current version, or a complete sharded
  /// copy (fresh manifest, every data shard resident). No side effects
  /// and no stats — the cost model probes with this.
  bool HasFresh(PeerId reader, PeerId origin, const DocName& name) const;

  /// Serialized content bytes of the fresh copy (for a sharded copy, the
  /// sum of its data-shard bytes), 0 when absent or incomplete.
  uint64_t FreshCopyBytes(PeerId reader, PeerId origin,
                          const DocName& name) const;

  /// True when document `name` on `peer` is soft replica state (skipped
  /// by StateFingerprint).
  bool IsCachedCopy(PeerId peer, const DocName& name) const;

  /// The origin whose copy is installed as `peer`'s local document
  /// `name`, or PeerId::Invalid() when that slot holds no copy. Only the
  /// installed copy carries advertisements — a cache-only copy (slot
  /// taken by an unrelated document or another origin's copy) serves
  /// repeated reads but is never advertised; tests mirror-check
  /// advertisements against this.
  PeerId InstalledOrigin(PeerId peer, const DocName& name) const;

  /// True when `reader` holds a fresh copy of origin's `name` that is
  /// also *installed* as reader's local document of that name. Only then
  /// may a rewrite substitute Doc(name, reader) for Doc(name, origin) —
  /// a cache-only copy (local name taken by an unrelated document or a
  /// copy from another origin) must not be read by name.
  bool HasFreshInstalled(PeerId reader, PeerId origin,
                         const DocName& name) const;

  /// Generic-pick validation hook: a member that is a cached copy must be
  /// fresh to stay in its class; a stale one is dropped (with all its
  /// advertisements) and the call returns false. Durable members always
  /// validate.
  bool ValidateMember(const std::string& class_name,
                      const ClassMember& member);

  /// Drops one copy (fresh or stale) with its advertisements; returns
  /// true when it existed.
  bool DropCopy(PeerId reader, PeerId origin, const DocName& name);
  /// Drops every cached copy on every peer (benches reset between runs).
  void DropAllCopies();

  /// Sum of every peer's cache counters.
  TransferCacheStats TotalStats() const;
  void ResetStats();

  /// Mounts the whole replica layer into `sink`: subscription counters
  /// under "replica/subscription/...", shard counters under
  /// "replica/shard/...", placement under "replica/placement/...", the
  /// summed cache counters (TotalStats) under "replica/cache/...", and
  /// each peer's own cache under "peer/<index>/replica/cache/...".
  /// AxmlSystem registers this at the registry root.
  void ExportMetrics(MetricSink& sink) const;

 private:
  /// What one shipment carried, decoded at the landing site: a whole
  /// document, or a sharded delta (manifest + the data shards the holder
  /// lacked at launch). `whole_encoded` keeps the received wire blob so
  /// the cache can store exactly the bytes that crossed the link.
  struct ShipmentPayload {
    TreePtr whole;
    std::string whole_encoded;
    TreePtr manifest;
    std::vector<DocumentShard> shards;
  };

  /// Memoized origin-side split: recomputed when the document's version
  /// moves past `version`.
  struct OriginShardState {
    uint64_t version = 0;
    ShardedDocument sharded;
  };

  /// Retracts the local document + catalog + generic-class advertisements
  /// of the copy `key` held at `reader`. Invoked by the caches' evict
  /// listeners, so budget evictions retract advertisements too. Losing
  /// *any* piece of a sharded copy (manifest or data shard) retracts the
  /// installed document — installed ⇔ fully resident in cache.
  void RetractAdvertisements(PeerId reader, const ReplicaKey& key);

  /// Installs `tree` as reader's local document `name` and advertises it
  /// (catalog + the origin's generic classes), unless the name slot is
  /// taken. `tree` must be freshly minted for the reader (never a cache
  /// blob). Shared tail of InsertCopy / InsertShardedCopy.
  void InstallAndAdvertise(PeerId reader, PeerId origin,
                           const DocName& name, TreePtr tree);

  /// Caches one landed payload at `holder` via InsertCopy or
  /// InsertShardedCopy, whichever matches its shape.
  bool InsertLanded(PeerId holder, const ReplicaKey& key,
                    const ShipmentPayload& payload, uint64_t snap_version);

  /// Resident fresh shard-content bytes of (origin, name) at `reader`
  /// (manifest must be at the current version). 0 when any referenced
  /// shard is missing and `require_complete` is set.
  uint64_t ShardedResidentBytes(PeerId reader, PeerId origin,
                                const DocName& name,
                                bool require_complete) const;

  /// Sends one invalidation notification for `key` (or folds it into the
  /// open batch).
  void QueueNotify(const ReplicaKey& key, PeerId holder);

  /// Encodes `keys` into one wire::NotifyBatch payload and sends it
  /// origin -> holder; the priced size is the encoded size. Requires a
  /// bound system.
  void SendNotifyMessage(PeerId origin, PeerId holder,
                         const std::vector<ReplicaKey>& keys);

  /// The system's causal tracer, nullptr before Bind (headless unit
  /// tests construct managers without a system).
  Tracer* trace() const;

  /// Mutation fan-out (kDrop / kEagerRefresh), shard-granular: computes
  /// which subscribed holders are *dirty* — whole-document holders and
  /// pending refreshes always; holders of an installed (complete)
  /// sharded copy; partial holders only when a data shard they hold is
  /// no longer referenced by the new version — then notifies each dirty
  /// holder, drops its dirty entries synchronously, and — under eager
  /// refresh — starts the re-materializing shipment. Clean partial
  /// holders are skipped entirely (SubscriptionStats::clean_skips):
  /// their shards are still current, their stale manifest is caught by
  /// the version check on its next lookup, and they were never
  /// installed or advertised, so no stale read can route to them.
  void PushInvalidate(const ReplicaKey& key);

  /// Ships the origin's current version of `key` to `holder`; the copy
  /// re-enters the cache (and its advertisements) when it lands. Folds
  /// into an already in-flight shipment; respects the refresh budget.
  /// `attempt` > 0 marks a catch-up shipment after a mid-flight
  /// mutation; the chain is capped at kMaxCatchupAttempts, after which
  /// the holder falls back to lazy pulls (catchup_exhausted). Returns
  /// true when a shipment is (now) in flight for the pair — false means
  /// nothing will land (budget denied, document removed).
  bool StartRefresh(PeerId holder, const ReplicaKey& key, int attempt);

  /// Executes one planned placement seeding through the same in-flight
  /// machinery StartRefresh uses (one shipment per (holder, key) pair on
  /// the wire, whatever started it). Returns true when a new shipment
  /// launched; launching drains the decision's (class, holder) demand.
  bool StartPlacementShipment(const PlacementDecision& decision);

  /// Shared wire leg of StartRefresh and StartPlacementShipment: clones
  /// the origin's current content — whole, or as a sharded delta against
  /// the holder's resident shards when the sharded path applies —
  /// registers a generation token in refresh_inflight_, and sends.
  /// `admit` sees the wire size (the *delta* size for sharded
  /// shipments) before anything is committed — return false to veto
  /// (and charge whatever budget applies on true). `on_land` runs at
  /// arrival with the flight token already cleared; a landing whose
  /// token was canceled (DropAllCopies) or superseded mid-flight is
  /// silently discarded before `on_land`. Returns false when nothing
  /// launched (missing peer or document, service calls frozen, admit
  /// veto). Precondition: no shipment in flight for (holder, key).
  /// `attempt` counts retransmissions when shipment retry is on
  /// (set_shipment_retry): a launch arms a timeout that relaunches the
  /// same admit/on_land pair — re-admitted, the retry is real wire
  /// traffic — until the attempt cap, then unsubscribes the holder
  /// (dropped_to_lazy).
  bool LaunchShipment(
      PeerId holder, const ReplicaKey& key,
      const std::function<bool(uint64_t bytes)>& admit,
      std::function<void(const ShipmentPayload& payload,
                         uint64_t snap_version, uint64_t bytes)>
          on_land,
      int attempt = 0);

  /// The lease tick body (renewals + expiries), and a helper shared
  /// with reconciliation that re-subscribes a holder's resident fresh
  /// entries of `origin`, returning how many were newly subscribed.
  void LeaseTick();
  size_t ResubscribeResident(PeerId holder, PeerId origin);

  SequenceChecker sequence_checker_;
  /// (owner, name) keys whose NoteMutation fan-out is running right now.
  /// Distinct keys legally nest (drop → RemoveDocument → listener →
  /// NoteMutation for the holder's name); a same-key cycle aborts.
  std::set<ReplicaKey> active_mutations_;
  AxmlSystem* sys_ = nullptr;
  uint64_t default_budget_ = TransferCache::kDefaultByteBudget;
  EvictionPolicy default_eviction_policy_ = EvictionPolicy::kLru;
  std::map<PeerId, std::unique_ptr<TransferCache>> caches_;
  std::map<ReplicaKey, uint64_t> versions_;  ///< key = (owner, name)
  /// (reader, local doc name) -> origin, for copies installed as local
  /// documents. Guards against shadowing a reader's own documents and
  /// lets IsCachedCopy answer without scanning caches.
  std::map<std::pair<PeerId, DocName>, PeerId> installed_;

  RefreshPolicy refresh_policy_ = RefreshPolicy::kDrop;
  SubscriptionTable subscriptions_;
  SubscriptionStats subscription_stats_;
  uint64_t refresh_budget_bytes_ = UINT64_MAX;
  std::map<PeerId, uint64_t> refresh_spent_;  ///< wire bytes per holder
  /// (holder, key) -> generation of the refresh shipment on the wire.
  /// The landing callback acts only when its own generation is still
  /// registered: a shipment outliving a DropAllCopies (its event is
  /// queued in the loop) must not hijack the token of a newer shipment
  /// for the same pair.
  std::map<std::pair<PeerId, ReplicaKey>, uint64_t> refresh_inflight_;
  uint64_t refresh_generation_ = 0;
  /// Misses by peers that never cached anything (LookupFresh must not
  /// allocate a cache just to count one); folded into TotalStats.
  uint64_t uncached_misses_ = 0;

  // Fault-tolerance knobs (all off by default; see the public block).
  SimTime lease_renew_interval_ = 0;
  SimTime lease_ttl_ = 0;
  uint64_t lease_tick_id_ = 0;  ///< EventLoop periodic id; 0 = none
  /// (origin, holder) -> virtual time the lease lapses. Granted lazily
  /// on first sight of a subscription pair, re-armed by each renewal
  /// arrival.
  std::map<std::pair<PeerId, PeerId>, SimTime> lease_deadlines_;
  int ship_max_attempts_ = 0;
  SimTime ship_backoff_base_s_ = 0;
  SimTime anti_entropy_interval_ = 0;
  uint64_t anti_entropy_tick_id_ = 0;

  PlacementPolicy placement_;
  PlacementStats placement_stats_;
  /// Wire bytes placement spent per receiving holder (the placement
  /// config's per-holder budget draws down against this).
  std::map<PeerId, uint64_t> placement_spent_;
  SimTime placement_tick_interval_ = 0;
  uint64_t placement_tick_id_ = 0;  ///< EventLoop periodic id; 0 = none
  uint64_t placement_demand_watermark_ = 0;  ///< 0 = trigger off
  /// A watermark-triggered round is posted but has not run yet; further
  /// crossings coalesce into it instead of stacking rounds.
  bool placement_round_pending_ = false;

  bool sharding_enabled_ = false;
  ShardingConfig shard_config_;
  /// Per-(origin, name) memoized split, keyed by document-level key;
  /// mutable because cost-model probes (const) may recompute it.
  mutable std::map<ReplicaKey, OriginShardState> origin_shards_;
  ShardStats shard_stats_;

  /// Open notify-batch windows; > 0 defers notification sends into
  /// pending_notifies_.
  int notify_batch_depth_ = 0;
  /// (origin, holder) -> keys invalidated in the open batch; flushed as
  /// one encoded NotifyBatch per pair.
  std::map<std::pair<PeerId, PeerId>, std::vector<ReplicaKey>>
      pending_notifies_;
};

/// RAII notify-batch window: all push notifications issued while alive
/// coalesce into one wire message per (origin, holder) pair, flushed on
/// destruction. Wrap one around any stretch that mutates many documents
/// in a single event-loop turn.
class NotifyBatch {
 public:
  explicit NotifyBatch(ReplicaManager* m) : m_(m) { m_->BeginNotifyBatch(); }
  ~NotifyBatch() { m_->EndNotifyBatch(); }
  NotifyBatch(const NotifyBatch&) = delete;
  NotifyBatch& operator=(const NotifyBatch&) = delete;

 private:
  ReplicaManager* m_;
};

}  // namespace axml

#endif  // AXML_REPLICA_REPLICA_MANAGER_H_
