#include "replica/transfer_cache.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace axml {

std::string ReplicaKey::ToString() const {
  return StrCat(name, "@", origin.ToString());
}

std::string TransferCacheStats::ToString() const {
  return StrCat("hits=", hits, " misses=", misses, " inserts=", inserts,
                " evictions=", evictions,
                " invalidations=", invalidations,
                " bytes_saved=", bytes_saved,
                " bytes_deduped=", bytes_deduped);
}

bool TransferCache::Put(const ReplicaKey& key, TreePtr tree,
                        ContentDigest digest, uint64_t origin_version) {
  AXML_CHECK(tree != nullptr);
  const uint64_t bytes = tree->SerializedSize();
  if (bytes > byte_budget_) return false;

  auto existing = entries_.find(key);
  if (existing != entries_.end()) {
    Drop(existing, nullptr);
  }

  auto [blob_it, fresh_blob] = blobs_.try_emplace(digest);
  Blob& blob = blob_it->second;
  if (fresh_blob) {
    blob.tree = std::move(tree);
    blob.bytes = bytes;
    resident_bytes_ += bytes;
  } else {
    // Content-addressed sharing: an equal blob is already resident; the
    // new copy aliases it and costs no additional budget.
    stats_.bytes_deduped += bytes;
  }
  ++blob.refs;

  lru_.push_front(key);
  Slot slot;
  slot.entry = Entry{blob.tree, digest, origin_version, blob.bytes};
  slot.lru_pos = lru_.begin();
  entries_.emplace(key, std::move(slot));
  ++stats_.inserts;

  EvictToBudget();
  return entries_.count(key) > 0;
}

TreePtr TransferCache::Get(const ReplicaKey& key,
                           uint64_t expected_version) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.entry.origin_version != expected_version) {
    Drop(it, &stats_.invalidations);
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  ++stats_.hits;
  stats_.bytes_saved += it->second.entry.bytes;
  return it->second.entry.tree;
}

const TransferCache::Entry* TransferCache::Peek(
    const ReplicaKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second.entry;
}

bool TransferCache::Erase(const ReplicaKey& key, bool invalidation) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  Drop(it, invalidation ? &stats_.invalidations : nullptr);
  return true;
}

void TransferCache::Clear() {
  while (!entries_.empty()) {
    Drop(entries_.begin(), nullptr);
  }
}

std::vector<ReplicaKey> TransferCache::KeysWithDigest(
    const ContentDigest& digest) const {
  std::vector<ReplicaKey> keys;
  for (const auto& [key, slot] : entries_) {
    if (slot.entry.digest == digest) keys.push_back(key);
  }
  return keys;
}

void TransferCache::set_byte_budget(uint64_t budget) {
  byte_budget_ = budget;
  EvictToBudget();
}

void TransferCache::Drop(std::map<ReplicaKey, Slot>::iterator it,
                         uint64_t* counter) {
  if (on_evict_) on_evict_(it->first, it->second.entry);
  auto blob_it = blobs_.find(it->second.entry.digest);
  AXML_CHECK(blob_it != blobs_.end());
  if (--blob_it->second.refs == 0) {
    resident_bytes_ -= blob_it->second.bytes;
    blobs_.erase(blob_it);
  }
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  if (counter != nullptr) ++*counter;
}

void TransferCache::EvictToBudget() {
  while (resident_bytes_ > byte_budget_ && !lru_.empty()) {
    auto victim = entries_.find(lru_.back());
    AXML_CHECK(victim != entries_.end());
    Drop(victim, &stats_.evictions);
  }
}

}  // namespace axml
