#include "replica/transfer_cache.h"

#include "common/logging.h"
#include "common/str_util.h"
#include "xml/wire.h"

namespace axml {

std::string TransferCacheStats::ToString() const {
  std::string s =
      StrCat("hits=", hits, " misses=", misses, " inserts=", inserts,
             " evictions=", evictions,
             " invalidations=", invalidations,
             " bytes_evicted=", bytes_evicted,
             " bytes_saved=", bytes_saved,
             " bytes_deduped=", bytes_deduped);
  for (size_t i = 0; i < kEvictionPolicyCount; ++i) {
    if (victims_by_policy[i] == 0) continue;
    s += StrCat(" victims_", EvictionPolicyName(static_cast<EvictionPolicy>(i)),
                "=", victims_by_policy[i]);
  }
  return s;
}

void TransferCacheStats::ExportMetrics(MetricSink& sink) const {
  sink.Value("hits", hits);
  sink.Value("misses", misses);
  sink.Value("inserts", inserts);
  sink.Value("evictions", evictions);
  sink.Value("invalidations", invalidations);
  sink.Value("bytes_evicted", bytes_evicted);
  sink.Value("bytes_saved", bytes_saved);
  sink.Value("bytes_deduped", bytes_deduped);
  for (size_t i = 0; i < kEvictionPolicyCount; ++i) {
    sink.Value(StrCat("victims_",
                      EvictionPolicyName(static_cast<EvictionPolicy>(i))),
               victims_by_policy[i]);
  }
}

void TransferCache::set_eviction_policy(EvictionPolicy policy) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_REENTRANCY_GUARD(mutation_guard_, "TransferCache::set_eviction_policy");
  if (policy == strategy_->policy()) return;
  RebuildStrategy(policy);
}

void TransferCache::set_refetch_cost(RefetchCostFn fn) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_REENTRANCY_GUARD(mutation_guard_, "TransferCache::set_refetch_cost");
  refetch_cost_ = std::move(fn);
  RebuildStrategy(strategy_->policy());
}

void TransferCache::RebuildStrategy(EvictionPolicy policy) {
  strategy_ = MakeEvictionStrategy(policy, refetch_cost_);
  for (const auto& [key, entry] : entries_) {
    strategy_->OnInsert(key, entry.bytes);
  }
}

bool TransferCache::Put(const ReplicaKey& key, TreePtr tree,
                        ContentDigest digest, uint64_t origin_version,
                        std::string encoded) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_REENTRANCY_GUARD(mutation_guard_, "TransferCache::Put");
  AXML_CHECK(tree != nullptr);
  // The budgeted size is the wire encoding's — the bytes a (re)shipment
  // of this entry costs. Canonical encoding makes the bytes a pure
  // function of content, so dedup aliases agree on the size.
  if (encoded.empty()) encoded = wire::EncodeTree(*tree);
  const uint64_t bytes = encoded.size();
  if (bytes > byte_budget_) return false;

  auto existing = entries_.find(key);
  if (existing != entries_.end()) {
    Drop(existing, nullptr);
  }

  auto [blob_it, fresh_blob] = blobs_.try_emplace(digest);
  Blob& blob = blob_it->second;
  if (fresh_blob) {
    blob.tree = std::move(tree);
    blob.encoded = std::move(encoded);
    blob.bytes = bytes;
    resident_bytes_ += bytes;
  } else {
    // Content-addressed sharing: an equal blob is already resident; the
    // new copy aliases it and costs no additional budget.
    stats_.bytes_deduped += bytes;
  }
  ++blob.refs;

  entries_.emplace(key,
                   Entry{blob.tree, digest, origin_version, blob.bytes});
  strategy_->OnInsert(key, blob.bytes);
  ++stats_.inserts;

  EvictToBudget();
  return entries_.count(key) > 0;
}

TreePtr TransferCache::Get(const ReplicaKey& key,
                           uint64_t expected_version) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_REENTRANCY_GUARD(mutation_guard_, "TransferCache::Get");
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.origin_version != expected_version) {
    Drop(it, &stats_.invalidations);
    ++stats_.misses;
    return nullptr;
  }
  strategy_->OnAccess(key);
  ++stats_.hits;
  stats_.bytes_saved += it->second.bytes;
  return it->second.tree;
}

const TransferCache::Entry* TransferCache::Peek(
    const ReplicaKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

const std::string* TransferCache::PeekEncoded(const ReplicaKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  auto blob_it = blobs_.find(it->second.digest);
  AXML_CHECK(blob_it != blobs_.end());
  return &blob_it->second.encoded;
}

bool TransferCache::Erase(const ReplicaKey& key, bool invalidation) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_REENTRANCY_GUARD(mutation_guard_, "TransferCache::Erase");
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  Drop(it, invalidation ? &stats_.invalidations : nullptr);
  return true;
}

void TransferCache::Clear() {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_REENTRANCY_GUARD(mutation_guard_, "TransferCache::Clear");
  while (!entries_.empty()) {
    Drop(entries_.begin(), nullptr);
  }
}

std::vector<ReplicaKey> TransferCache::KeysWithDigest(
    const ContentDigest& digest) const {
  std::vector<ReplicaKey> keys;
  for (const auto& [key, entry] : entries_) {
    if (entry.digest == digest) keys.push_back(key);
  }
  return keys;
}

std::vector<ReplicaKey> TransferCache::KeysForDoc(
    PeerId origin, const DocName& name) const {
  std::vector<ReplicaKey> keys;
  for (auto it = entries_.lower_bound(ReplicaKey{origin, name});
       it != entries_.end() && it->first.origin == origin &&
       it->first.name == name;
       ++it) {
    keys.push_back(it->first);
  }
  return keys;
}

std::vector<ReplicaKey> TransferCache::Keys() const {
  std::vector<ReplicaKey> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  return keys;
}

void TransferCache::set_byte_budget(uint64_t budget) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_REENTRANCY_GUARD(mutation_guard_, "TransferCache::set_byte_budget");
  byte_budget_ = budget;
  EvictToBudget();
}

uint64_t TransferCache::Drop(std::map<ReplicaKey, Entry>::iterator it,
                             uint64_t* counter) {
  if (on_evict_) on_evict_(it->first, it->second);
  auto blob_it = blobs_.find(it->second.digest);
  AXML_CHECK(blob_it != blobs_.end());
  uint64_t freed = 0;
  if (--blob_it->second.refs == 0) {
    freed = blob_it->second.bytes;
    resident_bytes_ -= freed;
    blobs_.erase(blob_it);
  }
  strategy_->OnErase(it->first);
  entries_.erase(it);
  if (counter != nullptr) ++*counter;
  return freed;
}

void TransferCache::EvictToBudget() {
  while (resident_bytes_ > byte_budget_) {
    ReplicaKey victim;
    if (!strategy_->PickVictim(&victim)) break;
    auto it = entries_.find(victim);
    AXML_CHECK(it != entries_.end());
    const size_t policy_index = static_cast<size_t>(strategy_->policy());
    stats_.bytes_evicted += Drop(it, &stats_.evictions);
    ++stats_.victims_by_policy[policy_index];
  }
}

std::string TransferCache::IntegrityError() const {
  if (strategy_->size() != entries_.size()) {
    return StrCat("strategy tracks ", strategy_->size(), " entries, cache ",
                  entries_.size());
  }
  if (resident_bytes_ > byte_budget_) {
    return StrCat("resident_bytes ", resident_bytes_, " over budget ",
                  byte_budget_);
  }
  // Recompute blob refcounts and resident bytes from the entries.
  std::map<ContentDigest, uint32_t> refs;
  for (const auto& [key, entry] : entries_) {
    ++refs[entry.digest];
    auto blob_it = blobs_.find(entry.digest);
    if (blob_it == blobs_.end()) {
      return StrCat("entry ", key.ToString(), " names a missing blob");
    }
    if (entry.tree != blob_it->second.tree) {
      return StrCat("entry ", key.ToString(),
                    " does not alias its blob's tree");
    }
    if (entry.bytes != blob_it->second.bytes) {
      return StrCat("entry ", key.ToString(), " bytes ", entry.bytes,
                    " != blob bytes ", blob_it->second.bytes);
    }
    if (entry.bytes != blob_it->second.encoded.size()) {
      return StrCat("entry ", key.ToString(), " bytes ", entry.bytes,
                    " != encoded blob size ",
                    blob_it->second.encoded.size());
    }
  }
  if (refs.size() != blobs_.size()) {
    return StrCat("blob table holds ", blobs_.size(), " blobs, entries use ",
                  refs.size());
  }
  uint64_t total_bytes = 0;
  for (const auto& [digest, blob] : blobs_) {
    auto it = refs.find(digest);
    const uint32_t expected = it == refs.end() ? 0 : it->second;
    if (blob.refs != expected) {
      return StrCat("blob refcount ", blob.refs, " != alias count ",
                    expected);
    }
    if (blob.refs == 0) return "blob resident with zero refs";
    total_bytes += blob.bytes;
  }
  if (total_bytes != resident_bytes_) {
    return StrCat("blob bytes sum ", total_bytes, " != resident_bytes ",
                  resident_bytes_);
  }
  return "";
}

}  // namespace axml
