#include "replica/replica_manager.h"

#include "common/logging.h"
#include "net/catalog.h"
#include "opt/cost_model.h"
#include "peer/peer.h"
#include "peer/system.h"

namespace axml {

uint64_t ReplicaManager::Version(PeerId owner, const DocName& name) const {
  auto it = versions_.find(ReplicaKey{owner, name});
  return it == versions_.end() ? 1 : it->second;
}

void ReplicaManager::NoteMutation(PeerId owner, const DocName& name) {
  // A never-mutated document is at version 1 (the header's contract), so
  // the first mutation must land on 2 — default-constructing the slot at
  // 0 and incrementing would leave it indistinguishable from fresh.
  ++versions_.try_emplace(ReplicaKey{owner, name}, 1).first->second;

  // Push to copy holders first: under kDrop/kEagerRefresh every
  // subscriber's copy and advertisements are retracted before this call
  // returns — no stale advertisement survives into the window between
  // this mutation and the next read.
  if (refresh_policy_ != RefreshPolicy::kLazy && sys_ != nullptr) {
    PushInvalidate(ReplicaKey{owner, name});
  }

  // A durable write onto a document slot we were using for a cached copy
  // (e.g. send(d@p, ...) landing on the copy's name) promotes the slot:
  // the copy ceases to exist, the document stays. The mutated tree may
  // alias cache blobs (content addressing shares them), so every entry of
  // this peer's cache holding that blob is dropped.
  auto it = installed_.find({owner, name});
  if (it == installed_.end()) return;
  const PeerId origin = it->second;
  installed_.erase(it);
  auto cache_it = caches_.find(owner);
  if (TransferCache* cache = cache_it == caches_.end()
                                 ? nullptr
                                 : cache_it->second.get()) {
    ContentDigest digest;
    bool have_digest = false;
    if (const TransferCache::Entry* e =
            cache->Peek(ReplicaKey{origin, name})) {
      digest = e->digest;
      have_digest = true;
    }
    cache->Erase(ReplicaKey{origin, name}, /*invalidation=*/true);
    if (have_digest) {
      for (const ReplicaKey& alias : cache->KeysWithDigest(digest)) {
        cache->Erase(alias, /*invalidation=*/true);
      }
    }
  }
  // A durable put keeps the catalog entry (the peer genuinely holds a
  // document of this name now); a removal must retract it — the listener
  // fires for both, so check which one happened. Membership in the
  // origin's classes goes either way: the write may have broken
  // equivalence.
  if (sys_ != nullptr) {
    const Peer* holder = sys_->peer(owner);
    const bool still_exists = holder != nullptr && holder->HasDocument(name);
    if (!still_exists && sys_->catalog() != nullptr) {
      sys_->catalog()->Unregister(ResourceKind::kDocument, name, owner);
    }
    // Explicit snapshot: DocumentClassesOf returns its vector by value,
    // but RemoveDocumentMember rewrites the registry's reverse index
    // underneath us — never iterate the registry's own storage here.
    const std::vector<std::string> classes =
        sys_->generics().DocumentClassesOf(ClassMember{name, owner});
    for (const std::string& cls : classes) {
      sys_->generics().RemoveDocumentMember(cls, ClassMember{name, owner});
    }
  }
}

TransferCache* ReplicaManager::CacheFor(PeerId peer) {
  auto it = caches_.find(peer);
  if (it != caches_.end()) return it->second.get();
  auto cache = std::make_unique<TransferCache>(default_budget_,
                                               default_eviction_policy_);
  cache->set_evict_listener(
      [this, peer](const ReplicaKey& key, const TransferCache::Entry&) {
        // Any exit from the cache — staleness, budget eviction,
        // overwrite — ends the origin's obligation to notify this peer.
        subscriptions_.Unsubscribe(key, peer);
        RetractAdvertisements(peer, key);
      });
  if (sys_ != nullptr) {
    // The cost-aware policy prices victims by what re-pulling them over
    // the holder<-origin link would cost (CostModel::RefetchCost): a
    // copy of a distant origin survives bursts of cheap nearby traffic.
    cache->set_refetch_cost(
        [this, peer](const ReplicaKey& key, uint64_t bytes) {
          return CostModel(sys_).RefetchCost(peer, key.origin, bytes);
        });
  }
  return caches_.emplace(peer, std::move(cache)).first->second.get();
}

void ReplicaManager::set_default_eviction_policy(EvictionPolicy p) {
  default_eviction_policy_ = p;
  for (auto& [peer, cache] : caches_) cache->set_eviction_policy(p);
}

const TransferCache* ReplicaManager::FindCache(PeerId peer) const {
  auto it = caches_.find(peer);
  return it == caches_.end() ? nullptr : it->second.get();
}

bool ReplicaManager::InsertCopy(PeerId reader, PeerId origin,
                                const DocName& name, const TreePtr& landed,
                                uint64_t snapshot_version) {
  if (sys_ == nullptr || reader == origin || !origin.is_concrete()) {
    return false;
  }
  Peer* holder = sys_->peer(reader);
  if (holder == nullptr || landed == nullptr) return false;
  if (snapshot_version != Version(origin, name)) {
    return false;  // the origin moved on while the copy was on the wire
  }

  const ReplicaKey key{origin, name};
  TransferCache* cache = CacheFor(reader);
  // Put retracts an older copy of the same key first (evict listener), so
  // the install guard below sees a clean slot.
  if (!cache->Put(key, landed, DigestOf(*landed), snapshot_version)) {
    return false;  // over budget: not worth caching
  }
  const TransferCache::Entry* entry = cache->Peek(key);
  if (entry == nullptr) return false;  // evicted immediately by the budget

  // The origin now owes this reader a push on every mutation of `name`
  // (cache-only copies included: they serve reads too and must not go
  // stale silently).
  subscriptions_.Subscribe(key, reader);

  // Install + advertise, unless the local name is taken — by the reader's
  // own document or by a copy from another origin (the cache still
  // serves repeated reads either way). The installed document is a
  // *clone*: local reads hand trees out unshared-with-the-cache, so no
  // consumer can mutate the content-addressed blob behind its digest.
  if (installed_.count({reader, name}) > 0 || holder->HasDocument(name)) {
    return true;  // cached, but the local name slot is taken
  }
  holder->PutDocument(name, entry->tree->Clone(holder->gen()));
  installed_[{reader, name}] = origin;
  if (sys_->catalog() != nullptr) {
    sys_->catalog()->Register(ResourceKind::kDocument, name, reader);
  }
  for (const std::string& cls :
       sys_->generics().DocumentClassesOf(ClassMember{name, origin})) {
    sys_->generics().AddDocumentMember(cls, ClassMember{name, reader});
  }
  return true;
}

TreePtr ReplicaManager::LookupFresh(PeerId reader, PeerId origin,
                                    const DocName& name) {
  if (reader == origin || !origin.is_concrete()) return nullptr;
  // A miss from a peer that never cached anything must not allocate a
  // TransferCache (plus evict listener) for it — readers that never
  // insert would each leak an empty cache. The miss is tallied
  // manager-side so TotalStats stays truthful.
  auto it = caches_.find(reader);
  if (it == caches_.end()) {
    ++uncached_misses_;
    return nullptr;
  }
  return it->second->Get(ReplicaKey{origin, name}, Version(origin, name));
}

bool ReplicaManager::HasFresh(PeerId reader, PeerId origin,
                              const DocName& name) const {
  return FreshCopyBytes(reader, origin, name) > 0;
}

uint64_t ReplicaManager::FreshCopyBytes(PeerId reader, PeerId origin,
                                        const DocName& name) const {
  const TransferCache* cache = FindCache(reader);
  if (cache == nullptr) return 0;
  const TransferCache::Entry* e = cache->Peek(ReplicaKey{origin, name});
  if (e == nullptr || e->origin_version != Version(origin, name)) return 0;
  return e->bytes;
}

bool ReplicaManager::IsCachedCopy(PeerId peer, const DocName& name) const {
  return installed_.count({peer, name}) > 0;
}

PeerId ReplicaManager::InstalledOrigin(PeerId peer,
                                       const DocName& name) const {
  auto it = installed_.find({peer, name});
  return it == installed_.end() ? PeerId::Invalid() : it->second;
}

bool ReplicaManager::HasFreshInstalled(PeerId reader, PeerId origin,
                                       const DocName& name) const {
  auto it = installed_.find({reader, name});
  return it != installed_.end() && it->second == origin &&
         HasFresh(reader, origin, name);
}

bool ReplicaManager::ValidateMember(const std::string& /*class_name*/,
                                    const ClassMember& member) {
  auto it = installed_.find({member.peer, member.name});
  if (it == installed_.end()) return true;  // durable member
  const PeerId origin = it->second;
  if (HasFresh(member.peer, origin, member.name)) return true;
  DropCopy(member.peer, origin, member.name);
  return false;
}

bool ReplicaManager::DropCopy(PeerId reader, PeerId origin,
                              const DocName& name) {
  auto it = caches_.find(reader);
  if (it == caches_.end()) return false;
  return it->second->Erase(ReplicaKey{origin, name},
                           /*invalidation=*/true);
}

void ReplicaManager::DropAllCopies() {
  for (auto& [peer, cache] : caches_) cache->Clear();
  // Cancel in-flight refresh shipments: their landing callbacks see the
  // erased flight token and discard the payload, so a reset cannot be
  // undone by a late arrival.
  for (const auto& [flight, generation] : refresh_inflight_) {
    subscriptions_.Unsubscribe(/*key=*/flight.second,
                               /*holder=*/flight.first);
  }
  refresh_inflight_.clear();
}

TransferCacheStats ReplicaManager::TotalStats() const {
  TransferCacheStats total;
  total.misses = uncached_misses_;
  for (const auto& [peer, cache] : caches_) {
    const TransferCacheStats& s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.inserts += s.inserts;
    total.evictions += s.evictions;
    total.invalidations += s.invalidations;
    total.bytes_evicted += s.bytes_evicted;
    for (size_t i = 0; i < kEvictionPolicyCount; ++i) {
      total.victims_by_policy[i] += s.victims_by_policy[i];
    }
    total.bytes_saved += s.bytes_saved;
    total.bytes_deduped += s.bytes_deduped;
  }
  return total;
}

void ReplicaManager::ResetStats() {
  for (auto& [peer, cache] : caches_) cache->ResetStats();
  subscription_stats_ = SubscriptionStats{};
  placement_stats_ = PlacementStats{};
  uncached_misses_ = 0;
  refresh_spent_.clear();
  placement_spent_.clear();
}

bool ReplicaManager::IsRefreshInFlight(PeerId reader, PeerId origin,
                                       const DocName& name) const {
  return refresh_inflight_.count({reader, ReplicaKey{origin, name}}) > 0;
}

bool ReplicaManager::ExpectedFresh(PeerId reader, PeerId origin,
                                   const DocName& name) const {
  return HasFresh(reader, origin, name) ||
         IsRefreshInFlight(reader, origin, name);
}

void ReplicaManager::RetractAdvertisements(PeerId reader,
                                           const ReplicaKey& key) {
  auto it = installed_.find({reader, key.name});
  if (it == installed_.end() || it->second != key.origin) {
    return;  // cache-only copy, nothing advertised
  }
  installed_.erase(it);
  if (sys_ == nullptr) return;
  if (Peer* holder = sys_->peer(reader)) {
    (void)holder->RemoveDocument(key.name);
  }
  if (sys_->catalog() != nullptr) {
    sys_->catalog()->Unregister(ResourceKind::kDocument, key.name, reader);
  }
  // Explicit snapshot, as in NoteMutation: RemoveDocumentMember rewrites
  // the registry's reverse index this list came from.
  const std::vector<std::string> classes =
      sys_->generics().DocumentClassesOf(ClassMember{key.name, reader});
  for (const std::string& cls : classes) {
    sys_->generics().RemoveDocumentMember(cls,
                                          ClassMember{key.name, reader});
  }
}

void ReplicaManager::PushInvalidate(const ReplicaKey& key) {
  // Snapshot: dropping a copy unsubscribes its holder mid-iteration.
  const std::vector<PeerId> holders = subscriptions_.HoldersOf(key);
  for (PeerId holder : holders) {
    ++subscription_stats_.notifies;
    // The notification is wire traffic on the origin->holder link;
    // NetStats tallies it apart from data transfers.
    sys_->network().SendNotify(key.origin, holder, kNotifyMsgBytes, [] {});
    // Coherence is synchronous: copy and advertisements are gone before
    // the mutating call returns — no lookup can ever see them stale.
    if (DropCopy(holder, key.origin, key.name)) {
      ++subscription_stats_.drops;
    }
    if (refresh_policy_ == RefreshPolicy::kEagerRefresh &&
        StartRefresh(holder, key, /*retry=*/false)) {
      // The holder stays subscribed while its copy re-materializes, so a
      // mutation overtaking the shipment is pushed (and coalesced) too.
      subscriptions_.Subscribe(key, holder);
    }
  }
}

size_t ReplicaManager::RunPlacement() {
  if (sys_ == nullptr || !placement_.config().enabled) return 0;
  size_t started = 0;
  for (const PlacementDecision& decision :
       placement_.Plan(sys_->generics(), *this)) {
    if (StartPlacementShipment(decision)) ++started;
  }
  return started;
}

bool ReplicaManager::LaunchShipment(
    PeerId holder, const ReplicaKey& key,
    const std::function<bool(uint64_t bytes)>& admit,
    std::function<void(const TreePtr& shipped, uint64_t snap_version,
                       uint64_t bytes)>
        on_land) {
  AXML_CHECK(refresh_inflight_.count({holder, key}) == 0);
  const Peer* origin = sys_->peer(key.origin);
  Peer* dest = sys_->peer(holder);
  if (origin == nullptr || dest == nullptr) return false;
  TreePtr root = origin->GetDocument(key.name);
  // A removed document has nothing to ship; a tree still carrying
  // service calls is excluded, as on the evaluator's insert path — a
  // copy would freeze its activation state.
  if (root == nullptr || root->ContainsServiceCall()) return false;
  const uint64_t bytes = root->SerializedSize();
  if (!admit(bytes)) return false;
  const uint64_t generation = ++refresh_generation_;
  refresh_inflight_[{holder, key}] = generation;
  // Snapshot now: the shipped content is the version at send time; a
  // mid-flight mutation must not brand it fresh (InsertCopy compares).
  const uint64_t snap_version = Version(key.origin, key.name);
  TreePtr shipped = root->Clone(dest->gen());
  sys_->network().Send(
      key.origin, holder, bytes,
      [this, holder, key, shipped, snap_version, bytes, generation,
       on_land = std::move(on_land)] {
        auto it = refresh_inflight_.find({holder, key});
        if (it == refresh_inflight_.end() || it->second != generation) {
          // Canceled (DropAllCopies) while on the wire — and possibly
          // superseded by a newer shipment for the same pair, whose
          // token must stay untouched.
          return;
        }
        refresh_inflight_.erase(it);
        on_land(shipped, snap_version, bytes);
      });
  return true;
}

bool ReplicaManager::StartPlacementShipment(
    const PlacementDecision& decision) {
  const PeerId holder = decision.holder;
  const ReplicaKey& key = decision.key;
  if (refresh_inflight_.count({holder, key}) > 0) {
    // An eager refresh or an earlier placement round is already shipping
    // this very copy; one shipment per pair on the wire, whoever asked.
    ++placement_stats_.coalesced;
    return false;
  }
  const bool launched = LaunchShipment(
      holder, key,
      /*admit=*/
      [this, holder](uint64_t bytes) {
        // A copy the holder's cache cannot even admit would land only
        // to be refused — charge nothing and skip.
        const TransferCache* cache = FindCache(holder);
        if (bytes >
            (cache != nullptr ? cache->byte_budget() : default_budget_)) {
          ++placement_stats_.budget_denied;
          return false;
        }
        uint64_t& spent = placement_spent_[holder];
        const uint64_t budget = placement_.config().byte_budget_per_holder;
        if (spent > budget || bytes > budget - spent) {
          ++placement_stats_.budget_denied;
          return false;
        }
        spent += bytes;
        ++placement_stats_.shipments;
        placement_stats_.shipped_bytes += bytes;
        return true;
      },
      /*on_land=*/
      [this, holder, key](const TreePtr& shipped, uint64_t snap_version,
                          uint64_t /*bytes*/) {
        if (InsertCopy(holder, key.origin, key.name, shipped,
                       snap_version)) {
          ++placement_stats_.landed;
        } else {
          // The origin moved on while this was on the wire, or the
          // holder's cache refused the copy. Placement does not chase:
          // fresh demand re-plans the seed on a later round.
          ++placement_stats_.wasted;
        }
      });
  // Either way the decision consumed the demand that earned it: a seed
  // that launched must be re-earned by fresh picks after a later
  // eviction, and a terminal deny (budget exhausted, document removed,
  // service calls frozen) must not replay — and re-count — every round
  // from the same stale burst. Only coalescing (above) keeps demand: the
  // in-flight shipment may still miss and the next round re-decides.
  sys_->generics().DrainDocumentPickDemand(decision.class_name, holder);
  return launched;
}

bool ReplicaManager::StartRefresh(PeerId holder, const ReplicaKey& key,
                                  bool retry) {
  if (refresh_inflight_.count({holder, key}) > 0) {
    // A shipment is already on the wire; its landing check catches the
    // newer version with one catch-up pull.
    ++subscription_stats_.coalesced;
    return true;
  }
  const bool launched = LaunchShipment(
      holder, key,
      /*admit=*/
      [this, holder, retry](uint64_t bytes) {
        uint64_t& spent = refresh_spent_[holder];
        if (spent > refresh_budget_bytes_ ||
            bytes > refresh_budget_bytes_ - spent) {
          ++subscription_stats_.budget_denied;
          return false;
        }
        spent += bytes;
        if (retry) ++subscription_stats_.retries;
        return true;
      },
      /*on_land=*/
      [this, holder, key](const TreePtr& shipped, uint64_t snap_version,
                          uint64_t bytes) {
        if (InsertCopy(holder, key.origin, key.name, shipped,
                       snap_version)) {
          ++subscription_stats_.refreshes;
          subscription_stats_.refresh_bytes += bytes;
        } else if (Version(key.origin, key.name) != snap_version) {
          // The origin moved on while this was on the wire: one
          // catch-up shipment brings the holder current. If it cannot
          // launch (budget), the holder's flight-subscription ends.
          if (!StartRefresh(holder, key, /*retry=*/true)) {
            subscriptions_.Unsubscribe(key, holder);
          }
        } else {
          // Landed at the right version but would not cache (over the
          // holder's cache budget): stop pushing to this holder.
          subscriptions_.Unsubscribe(key, holder);
        }
      });
  return launched;
}

}  // namespace axml
