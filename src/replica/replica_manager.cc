#include "replica/replica_manager.h"

#include "common/logging.h"
#include "net/catalog.h"
#include "peer/peer.h"
#include "peer/system.h"

namespace axml {

uint64_t ReplicaManager::Version(PeerId owner, const DocName& name) const {
  auto it = versions_.find(ReplicaKey{owner, name});
  return it == versions_.end() ? 0 : it->second;
}

void ReplicaManager::NoteMutation(PeerId owner, const DocName& name) {
  ++versions_[ReplicaKey{owner, name}];

  // A durable write onto a document slot we were using for a cached copy
  // (e.g. send(d@p, ...) landing on the copy's name) promotes the slot:
  // the copy ceases to exist, the document stays. The mutated tree may
  // alias cache blobs (content addressing shares them), so every entry of
  // this peer's cache holding that blob is dropped.
  auto it = installed_.find({owner, name});
  if (it == installed_.end()) return;
  const PeerId origin = it->second;
  installed_.erase(it);
  auto cache_it = caches_.find(owner);
  if (TransferCache* cache = cache_it == caches_.end()
                                 ? nullptr
                                 : cache_it->second.get()) {
    ContentDigest digest;
    bool have_digest = false;
    if (const TransferCache::Entry* e =
            cache->Peek(ReplicaKey{origin, name})) {
      digest = e->digest;
      have_digest = true;
    }
    cache->Erase(ReplicaKey{origin, name}, /*invalidation=*/true);
    if (have_digest) {
      for (const ReplicaKey& alias : cache->KeysWithDigest(digest)) {
        cache->Erase(alias, /*invalidation=*/true);
      }
    }
  }
  // A durable put keeps the catalog entry (the peer genuinely holds a
  // document of this name now); a removal must retract it — the listener
  // fires for both, so check which one happened. Membership in the
  // origin's classes goes either way: the write may have broken
  // equivalence.
  if (sys_ != nullptr) {
    const Peer* holder = sys_->peer(owner);
    const bool still_exists = holder != nullptr && holder->HasDocument(name);
    if (!still_exists && sys_->catalog() != nullptr) {
      sys_->catalog()->Unregister(ResourceKind::kDocument, name, owner);
    }
    for (const std::string& cls :
         sys_->generics().DocumentClassesOf(ClassMember{name, owner})) {
      sys_->generics().RemoveDocumentMember(cls, ClassMember{name, owner});
    }
  }
}

TransferCache* ReplicaManager::CacheFor(PeerId peer) {
  auto it = caches_.find(peer);
  if (it != caches_.end()) return it->second.get();
  auto cache = std::make_unique<TransferCache>(default_budget_);
  cache->set_evict_listener(
      [this, peer](const ReplicaKey& key, const TransferCache::Entry&) {
        RetractAdvertisements(peer, key);
      });
  return caches_.emplace(peer, std::move(cache)).first->second.get();
}

const TransferCache* ReplicaManager::FindCache(PeerId peer) const {
  auto it = caches_.find(peer);
  return it == caches_.end() ? nullptr : it->second.get();
}

bool ReplicaManager::InsertCopy(PeerId reader, PeerId origin,
                                const DocName& name, const TreePtr& landed,
                                uint64_t snapshot_version) {
  if (sys_ == nullptr || reader == origin || !origin.is_concrete()) {
    return false;
  }
  Peer* holder = sys_->peer(reader);
  if (holder == nullptr || landed == nullptr) return false;
  if (snapshot_version != Version(origin, name)) {
    return false;  // the origin moved on while the copy was on the wire
  }

  const ReplicaKey key{origin, name};
  TransferCache* cache = CacheFor(reader);
  // Put retracts an older copy of the same key first (evict listener), so
  // the install guard below sees a clean slot.
  if (!cache->Put(key, landed, DigestOf(*landed), snapshot_version)) {
    return false;  // over budget: not worth caching
  }
  const TransferCache::Entry* entry = cache->Peek(key);
  if (entry == nullptr) return false;  // evicted immediately by the budget

  // Install + advertise, unless the local name is taken — by the reader's
  // own document or by a copy from another origin (the cache still
  // serves repeated reads either way). The installed document is a
  // *clone*: local reads hand trees out unshared-with-the-cache, so no
  // consumer can mutate the content-addressed blob behind its digest.
  if (installed_.count({reader, name}) > 0 || holder->HasDocument(name)) {
    return true;  // cached, but the local name slot is taken
  }
  holder->PutDocument(name, entry->tree->Clone(holder->gen()));
  installed_[{reader, name}] = origin;
  if (sys_->catalog() != nullptr) {
    sys_->catalog()->Register(ResourceKind::kDocument, name, reader);
  }
  for (const std::string& cls :
       sys_->generics().DocumentClassesOf(ClassMember{name, origin})) {
    sys_->generics().AddDocumentMember(cls, ClassMember{name, reader});
  }
  return true;
}

TreePtr ReplicaManager::LookupFresh(PeerId reader, PeerId origin,
                                    const DocName& name) {
  if (reader == origin || !origin.is_concrete()) return nullptr;
  return CacheFor(reader)->Get(ReplicaKey{origin, name},
                               Version(origin, name));
}

bool ReplicaManager::HasFresh(PeerId reader, PeerId origin,
                              const DocName& name) const {
  return FreshCopyBytes(reader, origin, name) > 0;
}

uint64_t ReplicaManager::FreshCopyBytes(PeerId reader, PeerId origin,
                                        const DocName& name) const {
  const TransferCache* cache = FindCache(reader);
  if (cache == nullptr) return 0;
  const TransferCache::Entry* e = cache->Peek(ReplicaKey{origin, name});
  if (e == nullptr || e->origin_version != Version(origin, name)) return 0;
  return e->bytes;
}

bool ReplicaManager::IsCachedCopy(PeerId peer, const DocName& name) const {
  return installed_.count({peer, name}) > 0;
}

bool ReplicaManager::HasFreshInstalled(PeerId reader, PeerId origin,
                                       const DocName& name) const {
  auto it = installed_.find({reader, name});
  return it != installed_.end() && it->second == origin &&
         HasFresh(reader, origin, name);
}

bool ReplicaManager::ValidateMember(const std::string& /*class_name*/,
                                    const ClassMember& member) {
  auto it = installed_.find({member.peer, member.name});
  if (it == installed_.end()) return true;  // durable member
  const PeerId origin = it->second;
  if (HasFresh(member.peer, origin, member.name)) return true;
  DropCopy(member.peer, origin, member.name);
  return false;
}

bool ReplicaManager::DropCopy(PeerId reader, PeerId origin,
                              const DocName& name) {
  auto it = caches_.find(reader);
  if (it == caches_.end()) return false;
  return it->second->Erase(ReplicaKey{origin, name},
                           /*invalidation=*/true);
}

void ReplicaManager::DropAllCopies() {
  for (auto& [peer, cache] : caches_) cache->Clear();
}

TransferCacheStats ReplicaManager::TotalStats() const {
  TransferCacheStats total;
  for (const auto& [peer, cache] : caches_) {
    const TransferCacheStats& s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.inserts += s.inserts;
    total.evictions += s.evictions;
    total.invalidations += s.invalidations;
    total.bytes_saved += s.bytes_saved;
    total.bytes_deduped += s.bytes_deduped;
  }
  return total;
}

void ReplicaManager::ResetStats() {
  for (auto& [peer, cache] : caches_) cache->ResetStats();
}

void ReplicaManager::RetractAdvertisements(PeerId reader,
                                           const ReplicaKey& key) {
  auto it = installed_.find({reader, key.name});
  if (it == installed_.end() || it->second != key.origin) {
    return;  // cache-only copy, nothing advertised
  }
  installed_.erase(it);
  if (sys_ == nullptr) return;
  if (Peer* holder = sys_->peer(reader)) {
    (void)holder->RemoveDocument(key.name);
  }
  if (sys_->catalog() != nullptr) {
    sys_->catalog()->Unregister(ResourceKind::kDocument, key.name, reader);
  }
  for (const std::string& cls : sys_->generics().DocumentClassesOf(
           ClassMember{key.name, reader})) {
    sys_->generics().RemoveDocumentMember(cls,
                                          ClassMember{key.name, reader});
  }
}

}  // namespace axml
