#include "replica/replica_manager.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/logging.h"
#include "common/str_util.h"
#include "net/catalog.h"
#include "opt/cost_model.h"
#include "peer/peer.h"
#include "peer/system.h"
#include "xml/wire.h"

namespace axml {

namespace {

/// Data shards are immutable (their key *is* their content digest), so
/// they are stored and looked up at this sentinel version — Version()
/// is always >= 1, so no document version can ever brand them stale.
constexpr uint64_t kImmutableVersion = 0;

/// Cap on the eager-refresh catch-up chain: a shipment landing on a
/// moved origin version launches at most this many total attempts
/// before the holder falls back to lazy pulls. Under sustained
/// mutation (every mutation overtaking the shipment in flight) an
/// unbounded chain would ship forever without ever landing fresh.
constexpr int kMaxCatchupAttempts = 3;

ReplicaKey ManifestKey(PeerId origin, const DocName& name) {
  return ReplicaKey{origin, name, kManifestShardId};
}

ReplicaKey ShardDataKey(PeerId origin, const DocName& name,
                        const ContentDigest& id) {
  return ReplicaKey{origin, name, id.ToString()};
}

/// The system's wire encode/decode accounting, nullptr for unbound
/// managers (headless unit tests).
wire::WireStats* WireStatsOf(AxmlSystem* sys) {
  return sys == nullptr ? nullptr : &sys->wire_stats();
}

}  // namespace

std::string ShardStats::ToString() const {
  return StrCat("sharded_reads=", sharded_reads,
                " sharded_shipments=", sharded_shipments,
                " manifests_shipped=", manifests_shipped,
                " shards_shipped=", shards_shipped,
                " shard_bytes_shipped=", shard_bytes_shipped,
                " shards_reused=", shards_reused,
                " shard_bytes_saved=", shard_bytes_saved,
                " full_hits=", full_hits, " partial_hits=", partial_hits);
}

void ShardStats::ExportMetrics(MetricSink& sink) const {
  sink.Value("sharded_reads", sharded_reads);
  sink.Value("sharded_shipments", sharded_shipments);
  sink.Value("manifests_shipped", manifests_shipped);
  sink.Value("shards_shipped", shards_shipped);
  sink.Value("shard_bytes_shipped", shard_bytes_shipped);
  sink.Value("shards_reused", shards_reused);
  sink.Value("shard_bytes_saved", shard_bytes_saved);
  sink.Value("full_hits", full_hits);
  sink.Value("partial_hits", partial_hits);
}

uint64_t ReplicaManager::Version(PeerId owner, const DocName& name) const {
  auto it = versions_.find(ReplicaKey{owner, name});
  return it == versions_.end() ? 1 : it->second;
}

void ReplicaManager::NoteMutation(PeerId owner, const DocName& name) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
#ifndef AXML_DISABLE_DCHECKS
  // Same-key cycle detection (the header's reentrancy contract):
  // distinct keys legally nest — a drop's RemoveDocument fires the
  // mutation listener, which re-enters here for the *holder's* name —
  // but re-entering for the same (owner, name) means the fan-out looped
  // back into its own mid-mutation version/subscription state.
  AXML_CHECK(active_mutations_.insert(ReplicaKey{owner, name}).second)
      << "NoteMutation re-entered for " << ReplicaKey{owner, name}.ToString()
      << " while its own fan-out is running (same-key mutation cycle)";
  struct ActiveEraser {
    std::set<ReplicaKey>* active;
    ReplicaKey key;
    ~ActiveEraser() { active->erase(key); }
  } active_eraser{&active_mutations_, ReplicaKey{owner, name}};
#endif
  // One mutation = one causal chain: every notify, shipment and landing
  // the fan-out below triggers — synchronously or across simulated
  // network hops — inherits this id (unless the mutation is itself part
  // of a chain already, e.g. a landed copy installing).
  Tracer* tr = trace();
  Tracer::Scope trace_scope(tr, tr != nullptr ? tr->CurrentOrNew() : 0);
  if (tr != nullptr && tr->enabled()) {
    tr->Record("replica", "mutation", owner, 0, 0,
               ReplicaKey{owner, name}.ToString());
  }

  // A never-mutated document is at version 1 (the header's contract), so
  // the first mutation must land on 2 — default-constructing the slot at
  // 0 and incrementing would leave it indistinguishable from fresh.
  ++versions_.try_emplace(ReplicaKey{owner, name}, 1).first->second;

  // Push to copy holders first: under kDrop/kEagerRefresh every
  // subscriber's copy and advertisements are retracted before this call
  // returns — no stale advertisement survives into the window between
  // this mutation and the next read.
  if (refresh_policy_ != RefreshPolicy::kLazy && sys_ != nullptr) {
    PushInvalidate(ReplicaKey{owner, name});
  }

  // A durable write onto a document slot we were using for a cached copy
  // (e.g. send(d@p, ...) landing on the copy's name) promotes the slot:
  // the copy ceases to exist, the document stays. The mutated tree may
  // alias cache blobs (content addressing shares them), so every entry of
  // this peer's cache holding that blob is dropped.
  auto it = installed_.find({owner, name});
  if (it == installed_.end()) return;
  const PeerId origin = it->second;
  installed_.erase(it);
  auto cache_it = caches_.find(owner);
  if (TransferCache* cache = cache_it == caches_.end()
                                 ? nullptr
                                 : cache_it->second.get()) {
    ContentDigest digest;
    bool have_digest = false;
    if (const TransferCache::Entry* e =
            cache->Peek(ReplicaKey{origin, name})) {
      digest = e->digest;
      have_digest = true;
    }
    cache->Erase(ReplicaKey{origin, name}, /*invalidation=*/true);
    // The sharded layout of the promoted copy goes too: manifest and
    // data shards of (origin, name) no longer describe anything.
    for (const ReplicaKey& k : cache->KeysForDoc(origin, name)) {
      cache->Erase(k, /*invalidation=*/true);
    }
    if (have_digest) {
      for (const ReplicaKey& alias : cache->KeysWithDigest(digest)) {
        cache->Erase(alias, /*invalidation=*/true);
      }
    }
  }
  // A durable put keeps the catalog entry (the peer genuinely holds a
  // document of this name now); a removal must retract it — the listener
  // fires for both, so check which one happened. Membership in the
  // origin's classes goes either way: the write may have broken
  // equivalence.
  if (sys_ != nullptr) {
    const Peer* holder = sys_->peer(owner);
    const bool still_exists = holder != nullptr && holder->HasDocument(name);
    if (!still_exists && sys_->catalog() != nullptr) {
      sys_->catalog()->Unregister(ResourceKind::kDocument, name, owner);
    }
    // Explicit snapshot: DocumentClassesOf returns its vector by value,
    // but RemoveDocumentMember rewrites the registry's reverse index
    // underneath us — never iterate the registry's own storage here.
    const std::vector<std::string> classes =
        sys_->generics().DocumentClassesOf(ClassMember{name, owner});
    for (const std::string& cls : classes) {
      sys_->generics().RemoveDocumentMember(cls, ClassMember{name, owner});
    }
  }
}

TransferCache* ReplicaManager::CacheFor(PeerId peer) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  auto it = caches_.find(peer);
  if (it != caches_.end()) return it->second.get();
  auto cache = std::make_unique<TransferCache>(default_budget_,
                                               default_eviction_policy_);
  cache->set_evict_listener(
      [this, peer](const ReplicaKey& key,
                   const TransferCache::Entry& entry) {
        if (Tracer* tr = trace(); tr != nullptr && tr->enabled()) {
          tr->Record("replica", "evict", peer, entry.bytes, 0,
                     key.ToString());
        }
        // Subscriptions mirror residency exactly: each departing entry
        // — whole document, manifest, or data shard — ends its own
        // subscription, so mutation fan-out targets precisely what the
        // holder still has. The installed document is retracted on
        // losing *any* piece (installed ⇔ fully resident in cache).
        subscriptions_.Unsubscribe(key, peer);
        RetractAdvertisements(peer, key);
      });
  if (sys_ != nullptr) {
    // The cost-aware policy prices victims by what re-pulling them over
    // the holder<-origin link would cost (CostModel::RefetchCost): a
    // copy of a distant origin survives bursts of cheap nearby traffic.
    cache->set_refetch_cost(
        [this, peer](const ReplicaKey& key, uint64_t bytes) {
          return CostModel(sys_).RefetchCost(peer, key.origin, bytes);
        });
  }
  return caches_.emplace(peer, std::move(cache)).first->second.get();
}

void ReplicaManager::set_default_eviction_policy(EvictionPolicy p) {
  default_eviction_policy_ = p;
  for (auto& [peer, cache] : caches_) cache->set_eviction_policy(p);
}

const TransferCache* ReplicaManager::FindCache(PeerId peer) const {
  auto it = caches_.find(peer);
  return it == caches_.end() ? nullptr : it->second.get();
}

bool ReplicaManager::InsertCopy(PeerId reader, PeerId origin,
                                const DocName& name, const TreePtr& landed,
                                uint64_t snapshot_version,
                                std::string encoded) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  if (sys_ == nullptr || reader == origin || !origin.is_concrete()) {
    return false;
  }
  Peer* holder = sys_->peer(reader);
  if (holder == nullptr || landed == nullptr) return false;
  if (snapshot_version != Version(origin, name)) {
    return false;  // the origin moved on while the copy was on the wire
  }

  const ReplicaKey key{origin, name};
  TransferCache* cache = CacheFor(reader);
  // Put retracts an older copy of the same key first (evict listener), so
  // the install guard below sees a clean slot.
  if (!cache->Put(key, landed, DigestOf(*landed), snapshot_version,
                  std::move(encoded))) {
    return false;  // over budget: not worth caching
  }
  const TransferCache::Entry* entry = cache->Peek(key);
  if (entry == nullptr) return false;  // evicted immediately by the budget

  // The origin now owes this reader a push on every mutation of `name`
  // (cache-only copies included: they serve reads too and must not go
  // stale silently).
  subscriptions_.Subscribe(key, reader);

  // Install + advertise. The installed document is a *clone*: local
  // reads hand trees out unshared-with-the-cache, so no consumer can
  // mutate the content-addressed blob behind its digest.
  InstallAndAdvertise(reader, origin, name, entry->tree->Clone(holder->gen()));
  return true;
}

void ReplicaManager::InstallAndAdvertise(PeerId reader, PeerId origin,
                                         const DocName& name,
                                         TreePtr tree) {
  Peer* holder = sys_->peer(reader);
  // Skip when the local name is taken — by the reader's own document or
  // by a copy from another origin (the cache still serves repeated reads
  // either way).
  if (holder == nullptr || installed_.count({reader, name}) > 0 ||
      holder->HasDocument(name)) {
    return;
  }
  if (Tracer* tr = trace(); tr != nullptr && tr->enabled()) {
    tr->Record("replica", "install", reader, 0, 0,
               ReplicaKey{origin, name}.ToString());
  }
  holder->PutDocument(name, std::move(tree));
  installed_[{reader, name}] = origin;
  if (sys_->catalog() != nullptr) {
    sys_->catalog()->Register(ResourceKind::kDocument, name, reader);
  }
  for (const std::string& cls :
       sys_->generics().DocumentClassesOf(ClassMember{name, origin})) {
    sys_->generics().AddDocumentMember(cls, ClassMember{name, reader});
  }
}

TreePtr ReplicaManager::LookupFresh(PeerId reader, PeerId origin,
                                    const DocName& name) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  if (reader == origin || !origin.is_concrete()) return nullptr;
  // A miss from a peer that never cached anything must not allocate a
  // TransferCache (plus evict listener) for it — readers that never
  // insert would each leak an empty cache. The miss is tallied
  // manager-side so TotalStats stays truthful.
  auto it = caches_.find(reader);
  if (it == caches_.end()) {
    ++uncached_misses_;
    return nullptr;
  }
  return it->second->Get(ReplicaKey{origin, name}, Version(origin, name));
}

bool ReplicaManager::HasFresh(PeerId reader, PeerId origin,
                              const DocName& name) const {
  return FreshCopyBytes(reader, origin, name) > 0;
}

uint64_t ReplicaManager::FreshCopyBytes(PeerId reader, PeerId origin,
                                        const DocName& name) const {
  const TransferCache* cache = FindCache(reader);
  if (cache == nullptr) return 0;
  const TransferCache::Entry* e = cache->Peek(ReplicaKey{origin, name});
  if (e != nullptr && e->origin_version == Version(origin, name)) {
    return e->bytes;
  }
  // A complete sharded copy is as fresh as a whole-document one.
  return ShardedResidentBytes(reader, origin, name,
                              /*require_complete=*/true);
}

uint64_t ReplicaManager::ShardedResidentBytes(PeerId reader, PeerId origin,
                                              const DocName& name,
                                              bool require_complete) const {
  const TransferCache* cache = FindCache(reader);
  if (cache == nullptr) return 0;
  const TransferCache::Entry* m = cache->Peek(ManifestKey(origin, name));
  if (m == nullptr || m->origin_version != Version(origin, name)) return 0;
  uint64_t bytes = 0;
  for (const std::string& id : ManifestShardIds(*m->tree)) {
    const TransferCache::Entry* e = cache->Peek(ReplicaKey{origin, name, id});
    if (e == nullptr) {
      if (require_complete) return 0;
      continue;
    }
    bytes += e->bytes;
  }
  return bytes;
}

bool ReplicaManager::IsCachedCopy(PeerId peer, const DocName& name) const {
  return installed_.count({peer, name}) > 0;
}

PeerId ReplicaManager::InstalledOrigin(PeerId peer,
                                       const DocName& name) const {
  auto it = installed_.find({peer, name});
  return it == installed_.end() ? PeerId::Invalid() : it->second;
}

bool ReplicaManager::HasFreshInstalled(PeerId reader, PeerId origin,
                                       const DocName& name) const {
  auto it = installed_.find({reader, name});
  return it != installed_.end() && it->second == origin &&
         HasFresh(reader, origin, name);
}

bool ReplicaManager::ValidateMember(const std::string& /*class_name*/,
                                    const ClassMember& member) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  auto it = installed_.find({member.peer, member.name});
  if (it == installed_.end()) return true;  // durable member
  const PeerId origin = it->second;
  if (HasFresh(member.peer, origin, member.name)) return true;
  DropCopy(member.peer, origin, member.name);
  return false;
}

bool ReplicaManager::DropCopy(PeerId reader, PeerId origin,
                              const DocName& name) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  auto it = caches_.find(reader);
  if (it == caches_.end()) return false;
  // Whole-document entry and manifest both carry the copy's identity;
  // data shards are immutable content and stay (reused by the next
  // delta, garbage-collected by eviction or orphan cleanup).
  const bool whole = it->second->Erase(ReplicaKey{origin, name},
                                       /*invalidation=*/true);
  const bool manifest = it->second->Erase(ManifestKey(origin, name),
                                          /*invalidation=*/true);
  return whole || manifest;
}

void ReplicaManager::DropAllCopies() {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  for (auto& [peer, cache] : caches_) cache->Clear();
  // Cancel in-flight refresh shipments: their landing callbacks see the
  // erased flight token and discard the payload, so a reset cannot be
  // undone by a late arrival.
  for (const auto& [flight, generation] : refresh_inflight_) {
    subscriptions_.Unsubscribe(/*key=*/flight.second,
                               /*holder=*/flight.first);
  }
  refresh_inflight_.clear();
}

TransferCacheStats ReplicaManager::TotalStats() const {
  TransferCacheStats total;
  total.misses = uncached_misses_;
  for (const auto& [peer, cache] : caches_) {
    const TransferCacheStats& s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.inserts += s.inserts;
    total.evictions += s.evictions;
    total.invalidations += s.invalidations;
    total.bytes_evicted += s.bytes_evicted;
    for (size_t i = 0; i < kEvictionPolicyCount; ++i) {
      total.victims_by_policy[i] += s.victims_by_policy[i];
    }
    total.bytes_saved += s.bytes_saved;
    total.bytes_deduped += s.bytes_deduped;
  }
  return total;
}

Tracer* ReplicaManager::trace() const {
  return sys_ == nullptr ? nullptr : &sys_->tracer();
}

void ReplicaManager::ExportMetrics(MetricSink& sink) const {
  {
    MetricSink s = sink.Scoped("replica/subscription");
    subscription_stats_.ExportMetrics(s);
  }
  {
    MetricSink s = sink.Scoped("replica/shard");
    shard_stats_.ExportMetrics(s);
  }
  {
    MetricSink s = sink.Scoped("replica/placement");
    placement_stats_.ExportMetrics(s);
  }
  {
    // The same sum TotalStats() returns — the drift test compares the
    // two field by field.
    MetricSink s = sink.Scoped("replica/cache");
    TotalStats().ExportMetrics(s);
  }
  sink.Value("replica/subscriptions/active",
             subscriptions_.subscription_count());
  for (const auto& [peer, cache] : caches_) {
    MetricSink s =
        sink.Scoped(StrCat("peer/", peer.index(), "/replica/cache"));
    cache->stats().ExportMetrics(s);
    s.Value("resident_bytes", cache->resident_bytes());
    s.Value("entry_count", cache->entry_count());
  }
}

void ReplicaManager::ResetStats() {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  for (auto& [peer, cache] : caches_) cache->ResetStats();
  subscription_stats_ = SubscriptionStats{};
  placement_stats_ = PlacementStats{};
  shard_stats_ = ShardStats{};
  uncached_misses_ = 0;
  refresh_spent_.clear();
  placement_spent_.clear();
}

bool ReplicaManager::IsRefreshInFlight(PeerId reader, PeerId origin,
                                       const DocName& name) const {
  return refresh_inflight_.count({reader, ReplicaKey{origin, name}}) > 0;
}

bool ReplicaManager::ExpectedFresh(PeerId reader, PeerId origin,
                                   const DocName& name) const {
  return HasFresh(reader, origin, name) ||
         IsRefreshInFlight(reader, origin, name);
}

void ReplicaManager::RetractAdvertisements(PeerId reader,
                                           const ReplicaKey& key) {
  auto it = installed_.find({reader, key.name});
  if (it == installed_.end() || it->second != key.origin) {
    return;  // cache-only copy, nothing advertised
  }
  installed_.erase(it);
  if (sys_ == nullptr) return;
  if (Peer* holder = sys_->peer(reader)) {
    (void)holder->RemoveDocument(key.name);
  }
  if (sys_->catalog() != nullptr) {
    sys_->catalog()->Unregister(ResourceKind::kDocument, key.name, reader);
  }
  // Explicit snapshot, as in NoteMutation: RemoveDocumentMember rewrites
  // the registry's reverse index this list came from.
  const std::vector<std::string> classes =
      sys_->generics().DocumentClassesOf(ClassMember{key.name, reader});
  for (const std::string& cls : classes) {
    sys_->generics().RemoveDocumentMember(cls,
                                          ClassMember{key.name, reader});
  }
}

void ReplicaManager::PushInvalidate(const ReplicaKey& key) {
  // Snapshot of this document's subscription keys (the drop loop below
  // unsubscribes mid-flight). No subscribers: nothing to push — and no
  // reason to split the new version.
  const std::vector<ReplicaKey> sub_keys =
      subscriptions_.KeysForDoc(key.origin, key.name);
  if (sub_keys.empty()) return;
  // Shard ids the *new* version still references; resident data shards
  // outside this set are dirty — no future manifest will name them.
  std::set<std::string> live;
  if (sharding_enabled_) {
    if (const ShardedDocument* sd = OriginShards(key.origin, key.name)) {
      for (const DocumentShard& s : sd->shards) {
        live.insert(s.id.ToString());
      }
    }
  }
  // Classify subscribed holders. A holder is dirty — and must be
  // pushed — when its copy's *content by name* changed or it holds
  // pieces the new version abandoned:
  //  - a whole-document entry or a pending refresh (doc-level key);
  //  - an installed sharded copy (manifest key + installed slot): it is
  //    advertised and readable by name, so any mutation dirties it;
  //  - a data shard outside the new live set.
  // Everything else — partial holders whose every resident shard is
  // still referenced — is clean: their manifest's version check catches
  // the staleness on the next lookup, and nothing they advertise (they
  // advertise nothing) can serve a stale read meanwhile.
  std::vector<PeerId> dirty;  // notification order: first subscription wins
  std::set<PeerId> dirty_set;
  std::set<PeerId> doc_wide;  // dirty through a doc-level/installed copy
  std::set<PeerId> subscribed;
  for (const ReplicaKey& sk : sub_keys) {
    for (PeerId holder : subscriptions_.HoldersOf(sk)) {
      subscribed.insert(holder);
      bool holder_dirty = false;
      if (sk.is_doc()) {
        holder_dirty = true;
      } else if (sk.is_manifest()) {
        holder_dirty = InstalledOrigin(holder, key.name) == key.origin;
      } else {
        holder_dirty = live.count(sk.shard) == 0;
      }
      if (!holder_dirty) continue;
      if (dirty_set.insert(holder).second) dirty.push_back(holder);
      if (!sk.is_shard_data()) doc_wide.insert(holder);
    }
  }
  subscription_stats_.clean_skips += subscribed.size() - dirty_set.size();
  for (PeerId holder : dirty) {
    // A crashed holder's cache is unreachable — nothing to drop, nobody
    // to notify. Its entries rot until rejoin-time reconciliation (and
    // its subscriptions until the lease expires); it is not advertised
    // meanwhile (OnPeerCrash retracted), so no read can route to it.
    if (!sys_->network().IsPeerUp(holder)) {
      ++subscription_stats_.down_skips;
      continue;
    }
    ++subscription_stats_.notifies;
    if (doc_wide.count(holder) > 0) {
      ++subscription_stats_.doc_notifies;
    } else {
      ++subscription_stats_.shard_notifies;
    }
    if (Tracer* tr = trace(); tr != nullptr && tr->enabled()) {
      // Size 0: under batching the wire size exists only at send time.
      tr->Record("replica", "notify", holder, 0, 0, key.ToString());
    }
    // The notification is wire traffic on the origin->holder link;
    // NetStats tallies it apart from data transfers. Inside a
    // NotifyBatch window, events to the same (origin, holder) pair share
    // one message.
    QueueNotify(key, holder);
    // Coherence is synchronous: copy and advertisements are gone before
    // the mutating call returns — no lookup can ever see them stale.
    if (DropCopy(holder, key.origin, key.name)) {
      ++subscription_stats_.drops;
    }
    // Dirty data shards go too; live residents stay and seed the next
    // delta. (The scan also covers copies stranded by disabling
    // sharding: live is empty then, so every shard is dirty.)
    auto cit = caches_.find(holder);
    if (cit != caches_.end()) {
      for (const ReplicaKey& k :
           cit->second->KeysForDoc(key.origin, key.name)) {
        if (k.is_shard_data() && live.count(k.shard) == 0) {
          cit->second->Erase(k, /*invalidation=*/true);
        }
      }
    }
    if (refresh_policy_ == RefreshPolicy::kEagerRefresh &&
        StartRefresh(holder, key, /*attempt=*/0)) {
      // The holder stays subscribed (doc-level flight interest) while
      // its copy re-materializes, so a mutation overtaking the shipment
      // is pushed (and coalesced) too.
      subscriptions_.Subscribe(key, holder);
    }
  }
}

void ReplicaManager::QueueNotify(const ReplicaKey& key, PeerId holder) {
  if (notify_batch_depth_ > 0) {
    std::vector<ReplicaKey>& queued =
        pending_notifies_[{key.origin, holder}];
    if (!queued.empty()) ++subscription_stats_.batched;
    queued.push_back(key);
    return;
  }
  if (sys_ != nullptr) {
    SendNotifyMessage(key.origin, holder, {key});
  }
}

void ReplicaManager::SendNotifyMessage(
    PeerId origin, PeerId holder, const std::vector<ReplicaKey>& keys) {
  wire::NotifyBatch batch;
  batch.origin = origin.index();
  batch.keys.reserve(keys.size());
  for (const ReplicaKey& k : keys) {
    batch.keys.push_back({k.name, k.shard});
  }
  // The arrival hook is the asynchronous half of invalidation: a no-op
  // on the perfect fabric (the drop already happened, synchronously), a
  // repair when faults let stale state survive. The priced size is the
  // encoded batch's — one key or fifty, the bytes are what they are.
  sys_->network().SendNotify(
      origin, holder, wire::EncodeNotifyBatch(batch, WireStatsOf(sys_)),
      [this, origin, holder](const wire::Payload& p) {
        // The carried keys are advisory — the repair rescans the whole
        // cache — but a payload that does not parse is a bug, not a
        // tolerable fault.
        Result<wire::NotifyBatch> got =
            wire::DecodeNotifyBatch(p, WireStatsOf(sys_));
        AXML_DCHECK(got.ok());
        OnNotifyDelivered(origin, holder);
      });
}

void ReplicaManager::BeginNotifyBatch() { ++notify_batch_depth_; }

void ReplicaManager::EndNotifyBatch() {
  AXML_CHECK(notify_batch_depth_ > 0);
  if (--notify_batch_depth_ > 0) return;
  for (const auto& [pair, queued] : pending_notifies_) {
    if (sys_ != nullptr && !queued.empty()) {
      SendNotifyMessage(pair.first, pair.second, queued);
    }
  }
  pending_notifies_.clear();
}

void ReplicaManager::set_sharding_config(ShardingConfig cfg) {
  shard_config_ = cfg;
  // Memoized splits were cut under the old knobs; recut on next use.
  origin_shards_.clear();
}

const ShardedDocument* ReplicaManager::OriginShards(
    PeerId origin, const DocName& name) const {
  if (!sharding_enabled_ || sys_ == nullptr || !origin.is_concrete()) {
    return nullptr;
  }
  Peer* host = sys_->peer(origin);
  const ReplicaKey key{origin, name};
  TreePtr root = host == nullptr ? nullptr : host->GetDocument(name);
  // Service calls are excluded as on every caching path: a shard blob
  // would freeze their activation state.
  if (root == nullptr || root->ContainsServiceCall() ||
      !ShouldShard(*root, shard_config_)) {
    origin_shards_.erase(key);
    return nullptr;
  }
  const uint64_t version = Version(origin, name);
  auto it = origin_shards_.find(key);
  if (it != origin_shards_.end() && it->second.version == version) {
    return &it->second.sharded;
  }
  OriginShardState state;
  state.version = version;
  state.sharded = SplitDocument(*root, shard_config_, host->gen());
  auto pos = origin_shards_.insert_or_assign(key, std::move(state)).first;
  return &pos->second.sharded;
}

bool ReplicaManager::ShardedReadApplies(PeerId origin,
                                        const DocName& name) const {
  return OriginShards(origin, name) != nullptr;
}

bool ReplicaManager::HasFreshWholeCopy(PeerId reader, PeerId origin,
                                       const DocName& name) const {
  const TransferCache* cache = FindCache(reader);
  if (cache == nullptr) return false;
  const TransferCache::Entry* e = cache->Peek(ReplicaKey{origin, name});
  return e != nullptr && e->origin_version == Version(origin, name);
}

bool ReplicaManager::ShardedDeltaBytes(PeerId reader, PeerId origin,
                                       const DocName& name,
                                       uint64_t* bytes) const {
  const ShardedDocument* sd = OriginShards(origin, name);
  if (sd == nullptr || reader == origin) return false;
  const TransferCache* cache = FindCache(reader);
  uint64_t delta = 0;
  const TransferCache::Entry* m =
      cache == nullptr ? nullptr : cache->Peek(ManifestKey(origin, name));
  if (m == nullptr || m->origin_version != Version(origin, name)) {
    delta += sd->manifest_bytes;
  }
  std::set<std::string> seen;
  for (const DocumentShard& s : sd->shards) {
    if (!seen.insert(s.id.ToString()).second) continue;  // ships once
    if (cache == nullptr ||
        cache->Peek(ShardDataKey(origin, name, s.id)) == nullptr) {
      delta += s.bytes;
    }
  }
  *bytes = delta;
  return true;
}

TreePtr ReplicaManager::LookupShardedFresh(PeerId reader, PeerId origin,
                                           const DocName& name) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  if (sys_ == nullptr || reader == origin || !origin.is_concrete()) {
    return nullptr;
  }
  auto it = caches_.find(reader);
  if (it == caches_.end()) {
    ++uncached_misses_;  // as in LookupFresh: never allocate for a miss
    return nullptr;
  }
  TransferCache* cache = it->second.get();
  // A stale manifest is dropped by this Get (with its advertisements,
  // via the evict listener) and the read falls through to a delta fetch.
  TreePtr manifest = cache->Get(ManifestKey(origin, name),
                                Version(origin, name));
  if (manifest == nullptr) return nullptr;
  const std::vector<std::string> ids = ManifestShardIds(*manifest);
  // Probe completeness first with Peek: an incomplete copy must not
  // charge recency/hit credit for shards this read cannot use yet (the
  // delta fetch that follows will claim them).
  for (const std::string& id : ids) {
    if (cache->Peek(ReplicaKey{origin, name, id}) == nullptr) {
      return nullptr;
    }
  }
  std::map<std::string, TreePtr> parts;
  for (const std::string& id : ids) {
    parts[id] = cache->Get(ReplicaKey{origin, name, id}, kImmutableVersion);
  }
  Peer* holder = sys_->peer(reader);
  if (holder == nullptr) return nullptr;
  TreePtr assembled = AssembleDocument(
      *manifest,
      [&parts](const std::string& id) -> TreePtr {
        auto p = parts.find(id);
        return p == parts.end() ? nullptr : p->second;
      },
      holder->gen());
  if (assembled != nullptr) ++shard_stats_.full_hits;
  return assembled;
}

bool ReplicaManager::FetchForRead(PeerId reader, PeerId origin,
                                  const DocName& name,
                                  std::function<void(TreePtr)> deliver,
                                  uint64_t* delta_bytes) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  if (sys_ == nullptr || reader == origin) return false;
  const ShardedDocument* sd = OriginShards(origin, name);
  Peer* dest = sys_->peer(reader);
  if (sd == nullptr || dest == nullptr) return false;
  TransferCache* cache = CacheFor(reader);
  const uint64_t snap_version = Version(origin, name);

  // Partition the manifest's shards: residents serve locally (each a
  // cache hit — the partial-copy payoff), the rest are *encoded* into
  // the delta — no clone crosses the process; the receiving peer
  // decodes what the wire delivered.
  wire::Shipment ship;
  ship.origin = origin.index();
  ship.name = name;
  ship.snapshot_version = snap_version;
  ship.sharded = true;
  std::map<std::string, TreePtr> parts;
  std::set<std::string> shipped_ids;
  uint64_t shard_wire = 0;
  uint64_t reused_bytes = 0;
  for (const DocumentShard& s : sd->shards) {
    const ReplicaKey key = ShardDataKey(origin, name, s.id);
    // A duplicated id (two byte-identical groups) crosses the wire
    // once; the manifest references it twice and assembly reuses it.
    if (parts.count(s.id.ToString()) > 0 ||
        shipped_ids.count(s.id.ToString()) > 0) {
      continue;
    }
    if (TreePtr resident = cache->Get(key, kImmutableVersion)) {
      parts[s.id.ToString()] = std::move(resident);
      reused_bytes += s.bytes;
      ++shard_stats_.shards_reused;
    } else {
      wire::Shipment::Shard shipped;
      shipped.id = s.id.ToString();
      shipped.tree = wire::EncodeTree(*s.content, WireStatsOf(sys_));
      shard_wire += shipped.tree.size();
      shipped_ids.insert(shipped.id);
      ship.shards.push_back(std::move(shipped));
    }
  }
  const TransferCache::Entry* m = cache->Peek(ManifestKey(origin, name));
  const bool need_manifest =
      m == nullptr || m->origin_version != snap_version;
  // Holding the resident manifest's TreePtr keeps its blob alive even if
  // the entry is evicted while the delta is on the wire.
  TreePtr resident_manifest = need_manifest ? nullptr : m->tree;
  if (need_manifest) {
    ship.manifest = wire::EncodeTree(*sd->manifest, WireStatsOf(sys_));
    ++shard_stats_.manifests_shipped;
  }
  wire::Payload payload = wire::EncodeShipment(ship, WireStatsOf(sys_));
  const uint64_t wire_bytes = payload.size();
  ++shard_stats_.sharded_reads;
  shard_stats_.shards_shipped += ship.shards.size();
  shard_stats_.shard_bytes_shipped += shard_wire;
  shard_stats_.shard_bytes_saved += reused_bytes;
  if (reused_bytes > 0) ++shard_stats_.partial_hits;
  if (delta_bytes != nullptr) *delta_bytes = wire_bytes;

  // A read-path delta fetch roots its own chain (unless the read is
  // already inside one); the Send below carries the id to the landing.
  Tracer* tr = trace();
  Tracer::Scope trace_scope(tr, tr != nullptr ? tr->CurrentOrNew() : 0);
  if (tr != nullptr && tr->enabled()) {
    tr->Record("replica", "delta_fetch", reader, wire_bytes, 0,
               ReplicaKey{origin, name}.ToString());
  }

  // Reliable: the read path runs the loop to quiescence and a silently
  // lost delta would hang the read; the fabric retransmits under loss.
  sys_->network().SendReliable(
      origin, reader, std::move(payload),
      [this, reader, origin, name, resident_manifest,
       parts = std::move(parts), snap_version,
       deliver = std::move(deliver)](const wire::Payload& p) mutable {
        Peer* dest = sys_->peer(reader);
        if (dest == nullptr) {
          deliver(nullptr);  // reader vanished mid-flight
          return;
        }
        Result<wire::Shipment> got =
            wire::DecodeShipment(p, WireStatsOf(sys_));
        AXML_DCHECK(got.ok());
        if (!got.ok()) {
          deliver(nullptr);
          return;
        }
        const wire::Shipment& arrived = got.value();
        TreePtr manifest = resident_manifest;
        if (!arrived.manifest.empty()) {
          Result<TreePtr> md = wire::DecodeTree(
              arrived.manifest, dest->gen(), WireStatsOf(sys_));
          AXML_DCHECK(md.ok());
          if (!md.ok()) {
            deliver(nullptr);
            return;
          }
          manifest = std::move(md).value();
        }
        std::vector<DocumentShard> shipped;
        for (const wire::Shipment::Shard& s : arrived.shards) {
          Result<TreePtr> t =
              wire::DecodeTree(s.tree, dest->gen(), WireStatsOf(sys_));
          AXML_DCHECK(t.ok());
          if (!t.ok()) {
            deliver(nullptr);
            return;
          }
          DocumentShard shard;
          shard.content = std::move(t).value();
          shard.id = DigestOf(*shard.content);
          shard.bytes = s.tree.size();
          parts[shard.id.ToString()] = shard.content;
          shipped.push_back(std::move(shard));
        }
        if (manifest == nullptr) {
          deliver(nullptr);
          return;
        }
        // Cache what landed (a stale snapshot is refused there but the
        // read below still delivers it — a read observes the version it
        // was issued against, exactly like the whole-document path).
        InsertShardedCopy(reader, origin, name, manifest, shipped,
                          snap_version);
        TreePtr assembled = AssembleDocument(
            *manifest,
            [&parts](const std::string& id) -> TreePtr {
              auto p = parts.find(id);
              return p == parts.end() ? nullptr : p->second;
            },
            dest->gen());
        deliver(std::move(assembled));
      });
  return true;
}

bool ReplicaManager::InsertShardedCopy(PeerId reader, PeerId origin,
                                       const DocName& name,
                                       const TreePtr& manifest,
                                       const std::vector<DocumentShard>& shipped,
                                       uint64_t snapshot_version) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  if (sys_ == nullptr || reader == origin || !origin.is_concrete()) {
    return false;
  }
  Peer* holder = sys_->peer(reader);
  if (holder == nullptr || manifest == nullptr) return false;
  if (snapshot_version != Version(origin, name)) {
    return false;  // the origin moved on while the delta was on the wire
  }

  TransferCache* cache = CacheFor(reader);
  const ReplicaKey mkey = ManifestKey(origin, name);
  // Re-Putting an identical fresh manifest would churn the evict
  // listener (retract + re-advertise) for nothing — skip it.
  const TransferCache::Entry* resident = cache->Peek(mkey);
  const ContentDigest mdigest = DigestOf(*manifest);
  if (resident == nullptr || resident->origin_version != snapshot_version ||
      !(resident->digest == mdigest)) {
    if (!cache->Put(mkey, manifest, mdigest, snapshot_version)) {
      return false;  // manifest alone over budget: nothing to anchor on
    }
  }
  // Subscriptions mirror residency: each data shard that survives its
  // Put subscribes the holder under its exact key (a later Put may
  // evict it again — the evict listener unsubscribes then), so mutation
  // fan-out can skip this holder while its pieces stay referenced.
  // Shards resident from earlier deltas subscribed at their own insert.
  for (const DocumentShard& s : shipped) {
    const ReplicaKey skey = ShardDataKey(origin, name, s.id);
    // Budget refusals are fine — the copy stays partial and later reads
    // fetch the gap again.
    if (cache->Put(skey, s.content, s.id, kImmutableVersion) &&
        cache->Peek(skey) != nullptr) {
      subscriptions_.Subscribe(skey, reader);
    }
  }
  // The shard Puts may have evicted the manifest right back out; the
  // surviving shards stay resident (and subscribed) for future deltas.
  const TransferCache::Entry* m = cache->Peek(mkey);
  if (m == nullptr) return false;
  subscriptions_.Subscribe(mkey, reader);

  // Install + advertise only a *complete* copy; a partial one serves
  // delta reads but must never be read by name.
  std::map<std::string, TreePtr> parts;
  bool complete = true;
  for (const std::string& id : ManifestShardIds(*m->tree)) {
    const TransferCache::Entry* e = cache->Peek(ReplicaKey{origin, name, id});
    if (e == nullptr) {
      complete = false;
      break;
    }
    parts[id] = e->tree;
  }
  if (complete) {
    TreePtr assembled = AssembleDocument(
        *m->tree,
        [&parts](const std::string& id) -> TreePtr {
          auto p = parts.find(id);
          return p == parts.end() ? nullptr : p->second;
        },
        holder->gen());
    if (assembled != nullptr) {
      // AssembleDocument already minted fresh nodes — no extra clone.
      InstallAndAdvertise(reader, origin, name, std::move(assembled));
    }
  }
  return true;
}

size_t ReplicaManager::RunPlacement() {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  if (sys_ == nullptr || !placement_.config().enabled) return 0;
  size_t started = 0;
  for (const PlacementDecision& decision :
       placement_.Plan(sys_->generics(), *this)) {
    if (StartPlacementShipment(decision)) ++started;
  }
  return started;
}

void ReplicaManager::set_placement_tick_interval(SimTime interval_s) {
  AXML_CHECK(sys_ != nullptr);
  if (placement_tick_id_ != 0) {
    sys_->loop().RemovePeriodic(placement_tick_id_);
    placement_tick_id_ = 0;
  }
  placement_tick_interval_ = interval_s;
  if (interval_s > 0) {
    placement_tick_id_ =
        sys_->loop().AddPeriodic(interval_s, [this] { RunPlacement(); });
  }
}

void ReplicaManager::OnPickDemand(const std::string& /*class_name*/,
                                  PeerId /*from*/, uint64_t demand) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  if (placement_demand_watermark_ == 0 || sys_ == nullptr) return;
  if (demand < placement_demand_watermark_) return;
  if (placement_round_pending_) return;
  // Post instead of running inline: the crossing pick is still inside
  // PickDocument, and a placement round mutates the very class it was
  // picking from. The round runs at the same virtual instant, between
  // the current event and the next.
  placement_round_pending_ = true;
  sys_->loop().Post([this] {
    placement_round_pending_ = false;
    RunPlacement();
  });
}

bool ReplicaManager::LaunchShipment(
    PeerId holder, const ReplicaKey& key,
    const std::function<bool(uint64_t bytes)>& admit,
    std::function<void(const ShipmentPayload& payload, uint64_t snap_version,
                       uint64_t bytes)>
        on_land,
    int attempt) {
  AXML_CHECK(refresh_inflight_.count({holder, key}) == 0);
  const Peer* origin = sys_->peer(key.origin);
  Peer* dest = sys_->peer(holder);
  if (origin == nullptr || dest == nullptr) return false;
  // A shipment toward (or from) a crashed peer would only evaporate on
  // the wire; rejoin-time reconciliation re-materializes copies instead.
  if (!sys_->network().IsPeerUp(holder) ||
      !sys_->network().IsPeerUp(key.origin)) {
    return false;
  }
  TreePtr root = origin->GetDocument(key.name);
  // A removed document has nothing to ship; a tree still carrying
  // service calls is excluded, as on the evaluator's insert path — a
  // copy would freeze its activation state.
  if (root == nullptr || root->ContainsServiceCall()) return false;

  // Snapshot now: the shipped content is the version at send time; a
  // mid-flight mutation must not brand it fresh (the insert compares).
  const uint64_t snap_version = Version(key.origin, key.name);

  // Encode the shipment straight from the origin's trees — no clone
  // crosses the process; the bytes ARE the shipment, and the priced
  // size is their count, envelope included.
  wire::Shipment ship;
  ship.origin = key.origin.index();
  ship.name = key.name;
  ship.snapshot_version = snap_version;
  uint64_t shard_bytes = 0;
  uint64_t reused = 0;
  uint64_t reused_bytes = 0;
  bool need_manifest = false;
  // A resident fresh manifest is not re-shipped; holding its TreePtr
  // keeps the blob alive for the landing even if the entry is evicted
  // while the shipment is on the wire.
  TreePtr resident_manifest;
  if (const ShardedDocument* sd = OriginShards(key.origin, key.name)) {
    // Sharded delta: the manifest (unless the holder's is already
    // fresh — e.g. a placement round completing a partial copy) plus
    // only the data shards the holder lacks right now —
    // content-addressed ids make "lacks" independent of the version the
    // holder's stale copy was cut from.
    ship.sharded = true;
    const TransferCache* cache = FindCache(holder);
    const TransferCache::Entry* m =
        cache == nullptr ? nullptr : cache->Peek(ManifestKey(key.origin,
                                                             key.name));
    need_manifest = m == nullptr || m->origin_version != snap_version;
    if (need_manifest) {
      ship.manifest = wire::EncodeTree(*sd->manifest, WireStatsOf(sys_));
    } else {
      resident_manifest = m->tree;
    }
    std::set<std::string> seen;
    for (const DocumentShard& s : sd->shards) {
      // A duplicated id (two byte-identical groups) ships — and is
      // charged — once; the manifest references it twice.
      if (!seen.insert(s.id.ToString()).second) continue;
      if (cache != nullptr &&
          cache->Peek(ShardDataKey(key.origin, key.name, s.id)) != nullptr) {
        ++reused;
        reused_bytes += s.bytes;
        continue;
      }
      wire::Shipment::Shard shipped;
      shipped.id = s.id.ToString();
      shipped.tree = wire::EncodeTree(*s.content, WireStatsOf(sys_));
      shard_bytes += shipped.tree.size();
      ship.shards.push_back(std::move(shipped));
    }
  } else {
    ship.whole = wire::EncodeTree(*root, WireStatsOf(sys_));
  }
  wire::Payload payload = wire::EncodeShipment(ship, WireStatsOf(sys_));
  const uint64_t bytes = payload.size();
  if (!admit(bytes)) return false;
  if (Tracer* tr = trace(); tr != nullptr && tr->enabled()) {
    tr->Record("replica", "shipment", holder, bytes, 0, key.ToString());
  }
  if (ship.sharded) {
    ++shard_stats_.sharded_shipments;
    if (need_manifest) ++shard_stats_.manifests_shipped;
    shard_stats_.shards_shipped += ship.shards.size();
    shard_stats_.shard_bytes_shipped += shard_bytes;
    shard_stats_.shards_reused += reused;
    shard_stats_.shard_bytes_saved += reused_bytes;
  }
  const uint64_t generation = ++refresh_generation_;
  refresh_inflight_[{holder, key}] = generation;
  // Copies for the retry timeout below, taken before on_land moves into
  // the delivery callback.
  auto on_land_retry = ship_max_attempts_ > 0 ? on_land : nullptr;
  sys_->network().Send(
      key.origin, holder, std::move(payload),
      [this, holder, key, resident_manifest, generation,
       on_land = std::move(on_land)](const wire::Payload& p) {
        auto it = refresh_inflight_.find({holder, key});
        if (it == refresh_inflight_.end() || it->second != generation) {
          // Canceled (DropAllCopies) while on the wire — and possibly
          // superseded by a newer shipment for the same pair, whose
          // token must stay untouched.
          return;
        }
        refresh_inflight_.erase(it);
        Peer* dest = sys_->peer(holder);
        if (dest == nullptr) return;
        // Decode at the landing site: the receiving peer mints its own
        // node ids from the received bytes — the simulated form of
        // deserialization at the destination.
        Result<wire::Shipment> got =
            wire::DecodeShipment(p, WireStatsOf(sys_));
        AXML_DCHECK(got.ok());
        if (!got.ok()) return;
        const wire::Shipment& arrived = got.value();
        ShipmentPayload landed;
        if (!arrived.sharded) {
          Result<TreePtr> tree = wire::DecodeTree(
              arrived.whole, dest->gen(), WireStatsOf(sys_));
          AXML_DCHECK(tree.ok());
          if (!tree.ok()) return;
          landed.whole = std::move(tree).value();
          landed.whole_encoded = arrived.whole;
        } else {
          if (!arrived.manifest.empty()) {
            Result<TreePtr> m = wire::DecodeTree(
                arrived.manifest, dest->gen(), WireStatsOf(sys_));
            AXML_DCHECK(m.ok());
            if (!m.ok()) return;
            landed.manifest = std::move(m).value();
          } else {
            landed.manifest = resident_manifest;
          }
          for (const wire::Shipment::Shard& s : arrived.shards) {
            Result<TreePtr> t =
                wire::DecodeTree(s.tree, dest->gen(), WireStatsOf(sys_));
            AXML_DCHECK(t.ok());
            if (!t.ok()) return;
            DocumentShard shard;
            shard.content = std::move(t).value();
            // Encode/decode preserves canonical form, so the recomputed
            // digest equals the id the sender addressed the shard by.
            shard.id = DigestOf(*shard.content);
            shard.bytes = s.tree.size();
            landed.shards.push_back(std::move(shard));
          }
        }
        on_land(landed, arrived.snapshot_version, p.size());
      });
  if (ship_max_attempts_ > 0) {
    // Bounded retry-with-backoff: if the landing has not cleared the
    // flight token by the timeout, the shipment was dropped (injector or
    // crash). Relaunch the same admit/on_land pair — re-admitted; the
    // retransmission is real wire traffic — until the attempt cap, then
    // drop the holder back to lazy pulls. A landing that merely arrived
    // late (delay spike) erased the token already, so the timeout
    // no-ops; a delayed payload arriving after a relaunch sees the new
    // generation and is discarded.
    const SimTime timeout =
        3 * sys_->network().EstimateTransferTime(key.origin, holder, bytes) +
        ship_backoff_base_s_ * (attempt + 1);
    sys_->loop().ScheduleAfter(
        timeout, [this, holder, key, generation, attempt, admit,
                  on_land = std::move(on_land_retry)] {
          auto it = refresh_inflight_.find({holder, key});
          if (it == refresh_inflight_.end() || it->second != generation) {
            return;  // landed, canceled, or superseded — nothing to do
          }
          refresh_inflight_.erase(it);
          ++subscription_stats_.ship_timeouts;
          if (Tracer* tr = trace(); tr != nullptr && tr->enabled()) {
            tr->Record("replica", "ship_timeout", holder, 0, 0,
                       key.ToString());
          }
          if (attempt + 1 < ship_max_attempts_ &&
              sys_->network().IsPeerUp(holder) &&
              sys_->network().IsPeerUp(key.origin)) {
            ++subscription_stats_.ship_retries;
            if (LaunchShipment(holder, key, admit, on_land, attempt + 1)) {
              return;
            }
          }
          ++subscription_stats_.dropped_to_lazy;
          subscriptions_.Unsubscribe(key, holder);
        });
  }
  return true;
}

bool ReplicaManager::InsertLanded(PeerId holder, const ReplicaKey& key,
                                  const ShipmentPayload& payload,
                                  uint64_t snap_version) {
  if (payload.whole != nullptr) {
    // The cache stores the very bytes the shipment carried — the
    // budgeted size is the priced wire size by construction.
    return InsertCopy(holder, key.origin, key.name, payload.whole,
                      snap_version, payload.whole_encoded);
  }
  return InsertShardedCopy(holder, key.origin, key.name, payload.manifest,
                           payload.shards, snap_version);
}

bool ReplicaManager::StartPlacementShipment(
    const PlacementDecision& decision) {
  const PeerId holder = decision.holder;
  const ReplicaKey& key = decision.key;
  if (refresh_inflight_.count({holder, key}) > 0) {
    // An eager refresh or an earlier placement round is already shipping
    // this very copy; one shipment per pair on the wire, whoever asked.
    ++placement_stats_.coalesced;
    return false;
  }
  const bool launched = LaunchShipment(
      holder, key,
      /*admit=*/
      [this, holder](uint64_t bytes) {
        // A copy the holder's cache cannot even admit would land only
        // to be refused — charge nothing and skip.
        const TransferCache* cache = FindCache(holder);
        if (bytes >
            (cache != nullptr ? cache->byte_budget() : default_budget_)) {
          ++placement_stats_.budget_denied;
          return false;
        }
        uint64_t& spent = placement_spent_[holder];
        const uint64_t budget = placement_.config().byte_budget_per_holder;
        if (spent > budget || bytes > budget - spent) {
          ++placement_stats_.budget_denied;
          return false;
        }
        spent += bytes;
        ++placement_stats_.shipments;
        placement_stats_.shipped_bytes += bytes;
        return true;
      },
      /*on_land=*/
      [this, holder, key, decision](const ShipmentPayload& payload,
                                    uint64_t snap_version,
                                    uint64_t /*bytes*/) {
        if (InsertLanded(holder, key, payload, snap_version)) {
          ++placement_stats_.landed;
        } else {
          // The origin moved on while this was on the wire, or the
          // holder's cache refused the copy. Placement does not chase —
          // but the picks that earned this seed were real demand, and
          // the launch drained them. Credit half back so the next round
          // can re-decide: halving makes a permanently failing seed
          // decay to nothing instead of replaying forever.
          ++placement_stats_.wasted;
          sys_->generics().AddDocumentPickDemand(decision.class_name, holder,
                                                 decision.demand / 2);
        }
      });
  // Either way the decision consumed the demand that earned it: a seed
  // that launched must be re-earned by fresh picks after a later
  // eviction, and a terminal deny (budget exhausted, document removed,
  // service calls frozen) must not replay — and re-count — every round
  // from the same stale burst. Only coalescing (above) keeps demand: the
  // in-flight shipment may still miss and the next round re-decides.
  sys_->generics().DrainDocumentPickDemand(decision.class_name, holder);
  return launched;
}

bool ReplicaManager::StartRefresh(PeerId holder, const ReplicaKey& key,
                                  int attempt) {
  if (refresh_inflight_.count({holder, key}) > 0) {
    // A shipment is already on the wire; its landing check catches the
    // newer version with one catch-up pull.
    ++subscription_stats_.coalesced;
    return true;
  }
  const bool launched = LaunchShipment(
      holder, key,
      /*admit=*/
      [this, holder, attempt](uint64_t bytes) {
        uint64_t& spent = refresh_spent_[holder];
        if (spent > refresh_budget_bytes_ ||
            bytes > refresh_budget_bytes_ - spent) {
          ++subscription_stats_.budget_denied;
          return false;
        }
        spent += bytes;
        if (attempt > 0) ++subscription_stats_.retries;
        return true;
      },
      /*on_land=*/
      [this, holder, key, attempt](const ShipmentPayload& payload,
                                   uint64_t snap_version, uint64_t bytes) {
        if (InsertLanded(holder, key, payload, snap_version)) {
          ++subscription_stats_.refreshes;
          subscription_stats_.refresh_bytes += bytes;
          // A sharded landing re-subscribed the holder under its
          // manifest and shard keys; the doc-level flight interest has
          // served its purpose unless a whole-document entry backs it.
          if (payload.whole == nullptr) {
            const TransferCache* c = FindCache(holder);
            if (c == nullptr || c->Peek(key) == nullptr) {
              subscriptions_.Unsubscribe(key, holder);
            }
          }
        } else if (Version(key.origin, key.name) != snap_version) {
          // The origin moved on while this was on the wire: a catch-up
          // shipment brings the holder current — but the chain is
          // capped. Under sustained mutation (every landing overtaken
          // mid-flight) an unbounded chain ships forever without ever
          // landing fresh; past the cap the holder falls back to lazy
          // pulls, like a budget denial.
          if (attempt + 1 >= kMaxCatchupAttempts) {
            ++subscription_stats_.catchup_exhausted;
            subscriptions_.Unsubscribe(key, holder);
          } else if (!StartRefresh(holder, key, attempt + 1)) {
            subscriptions_.Unsubscribe(key, holder);
          }
        } else {
          // Landed at the right version but would not cache (over the
          // holder's cache budget): stop pushing to this holder.
          subscriptions_.Unsubscribe(key, holder);
        }
      });
  return launched;
}

// --- Fault tolerance: leases, anti-entropy, churn ---

void ReplicaManager::ConfigureLeases(SimTime renew_interval_s,
                                     SimTime ttl_s) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(sys_ != nullptr);
  if (lease_tick_id_ != 0) {
    sys_->loop().RemovePeriodic(lease_tick_id_);
    lease_tick_id_ = 0;
  }
  lease_renew_interval_ = renew_interval_s;
  lease_ttl_ = ttl_s;
  lease_deadlines_.clear();
  if (renew_interval_s > 0 && ttl_s > 0) {
    lease_tick_id_ =
        sys_->loop().AddPeriodic(renew_interval_s, [this] { LeaseTick(); });
  }
}

void ReplicaManager::set_shipment_retry(int max_attempts,
                                        SimTime backoff_base_s) {
  ship_max_attempts_ = max_attempts;
  ship_backoff_base_s_ = backoff_base_s;
}

void ReplicaManager::set_anti_entropy_interval(SimTime interval_s) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(sys_ != nullptr);
  if (anti_entropy_tick_id_ != 0) {
    sys_->loop().RemovePeriodic(anti_entropy_tick_id_);
    anti_entropy_tick_id_ = 0;
  }
  anti_entropy_interval_ = interval_s;
  if (interval_s > 0) {
    anti_entropy_tick_id_ = sys_->loop().AddPeriodic(
        interval_s, [this] { RunAntiEntropySweep(); });
  }
}

void ReplicaManager::LeaseTick() {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  const SimTime now = sys_->loop().now();
  // Live (origin, holder) pairs and their subscribed-key counts,
  // straight from the subscription table (std::map: deterministic
  // order). The count rides in the renewal body.
  std::map<std::pair<PeerId, PeerId>, uint64_t> live;
  for (const auto& [key, holders] : subscriptions_.entries()) {
    for (PeerId h : holders) ++live[{key.origin, h}];
  }
  // Deadlines for vanished pairs go; new pairs are granted a full TTL
  // on first sight (before the expiry scan — a fresh grant never
  // expires on the tick that created it).
  for (auto it = lease_deadlines_.begin(); it != lease_deadlines_.end();) {
    if (live.count(it->first) == 0) {
      it = lease_deadlines_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [pair, keys] : live) {
    lease_deadlines_.try_emplace(pair, now + lease_ttl_);
  }
  // Expiry: the origin forgets a silent holder. An *up* holder also
  // self-invalidates its lapsed entries — the lease contract says a
  // holder that could not renew stops serving, and its own clock tells
  // it so; we model that holder-side drop synchronously. A crashed
  // holder's cache is unreachable and is left for rejoin-time
  // reconciliation.
  for (auto it = lease_deadlines_.begin(); it != lease_deadlines_.end();) {
    if (now < it->second) {
      ++it;
      continue;
    }
    const PeerId origin = it->first.first;
    const PeerId holder = it->first.second;
    std::vector<ReplicaKey> keys;
    for (const auto& [key, holders] : subscriptions_.entries()) {
      if (key.origin != origin) continue;
      if (std::find(holders.begin(), holders.end(), holder) !=
          holders.end()) {
        keys.push_back(key);
      }
    }
    const bool up = sys_->network().IsPeerUp(holder);
    auto cit = caches_.find(holder);
    for (const ReplicaKey& k : keys) {
      if (up && cit != caches_.end()) {
        // Evict listener unsubscribes + retracts advertisements.
        cit->second->Erase(k, /*invalidation=*/true);
      }
      // Flight-interest keys (and a crashed holder's entries) have no
      // cache entry to fire the listener; unsubscribe is idempotent.
      subscriptions_.Unsubscribe(k, holder);
    }
    ++subscription_stats_.lease_expiries;
    if (Tracer* tr = trace(); tr != nullptr && tr->enabled()) {
      tr->Record("replica", "lease_expire", holder, 0, 0,
                 StrCat("origin ", origin.ToString()));
    }
    it = lease_deadlines_.erase(it);
  }
  // Renewals: every up holder re-registers at every origin it is
  // subscribed to, one lossy message per (origin, holder) pair. The
  // arrival re-arms the deadline and re-subscribes whatever fresh
  // entries the holder still has resident — repairing an expiry that
  // fired while renewals were being lost.
  for (const auto& [pair, keys] : live) {
    const PeerId origin = pair.first;
    const PeerId holder = pair.second;
    if (lease_deadlines_.count(pair) == 0) continue;  // just expired
    if (!sys_->network().IsPeerUp(holder) ||
        !sys_->network().IsPeerUp(origin)) {
      continue;
    }
    wire::LeaseRenewal lease;
    lease.holder = holder.index();
    lease.origin = origin.index();
    lease.subscribed_keys = keys;
    sys_->network().Send(
        holder, origin, wire::EncodeLeaseRenewal(lease, WireStatsOf(sys_)),
        [this, origin, holder](const wire::Payload& p) {
          Result<wire::LeaseRenewal> got =
              wire::DecodeLeaseRenewal(p, WireStatsOf(sys_));
          AXML_DCHECK(got.ok());
          ++subscription_stats_.lease_renewals;
          lease_deadlines_[{origin, holder}] =
              sys_->loop().now() + lease_ttl_;
          subscription_stats_.sweep_resubscribes +=
              ResubscribeResident(holder, origin);
        });
  }
}

size_t ReplicaManager::ResubscribeResident(PeerId holder, PeerId origin) {
  auto cit = caches_.find(holder);
  if (cit == caches_.end()) return 0;
  TransferCache* cache = cit->second.get();
  size_t added = 0;
  for (const ReplicaKey& k : cache->Keys()) {
    if (k.origin != origin) continue;
    if (!k.is_shard_data()) {
      // Whole-document and manifest entries re-subscribe only while
      // fresh — a stale entry is about to be reconciled away, and
      // subscribing it would re-invite pushes for content the holder
      // no longer serves.
      const TransferCache::Entry* e = cache->Peek(k);
      if (e == nullptr || e->origin_version != Version(origin, k.name)) {
        continue;
      }
    }
    if (!subscriptions_.IsSubscribed(k, holder)) {
      subscriptions_.Subscribe(k, holder);
      ++added;
    }
  }
  return added;
}

size_t ReplicaManager::RunAntiEntropySweep() {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  if (sys_ == nullptr) return 0;
  size_t repairs = 0;
  for (const auto& [holder, cache] : caches_) {
    if (!sys_->network().IsPeerUp(holder)) continue;
    repairs += ReconcileHolder(holder);
  }
  return repairs;
}

size_t ReplicaManager::ReconcileHolder(PeerId holder) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  if (sys_ == nullptr) return 0;
  auto cit = caches_.find(holder);
  if (cit == caches_.end()) return 0;
  TransferCache* cache = cit->second.get();
  Peer* dest = sys_->peer(holder);

  // Group the holder's resident keys by document.
  std::map<ReplicaKey, std::vector<ReplicaKey>> docs;
  std::set<PeerId> origins;
  for (const ReplicaKey& k : cache->Keys()) {
    docs[ReplicaKey{k.origin, k.name}].push_back(k);
    origins.insert(k.origin);
  }

  size_t repairs = 0;
  for (const auto& [doc, keys] : docs) {
    const uint64_t current = Version(doc.origin, doc.name);
    // Shard ids the origin's *current* split references; resident data
    // shards outside this set are orphans no future manifest will name.
    std::set<std::string> live;
    if (const ShardedDocument* sd = OriginShards(doc.origin, doc.name)) {
      for (const DocumentShard& s : sd->shards) {
        live.insert(s.id.ToString());
      }
    }
    bool dropped_doc = false;
    for (const ReplicaKey& k : keys) {
      const TransferCache::Entry* e = cache->Peek(k);
      if (e == nullptr) continue;  // evicted by an earlier repair
      const bool stale = k.is_shard_data()
                             ? live.count(k.shard) == 0
                             : e->origin_version != current;
      if (!stale) continue;
      // Evict listener unsubscribes + retracts advertisements.
      cache->Erase(k, /*invalidation=*/true);
      ++repairs;
      ++subscription_stats_.sweep_repairs;
      if (!k.is_shard_data()) dropped_doc = true;
      if (Tracer* tr = trace(); tr != nullptr && tr->enabled()) {
        tr->Record("replica", "repair", holder, e->bytes, 0, k.ToString());
      }
    }
    // Surviving fresh complete copies whose name slot is free are
    // re-installed and re-advertised — a rejoining durable cache kept
    // the content but lost its installation at crash time.
    if (dest != nullptr) {
      const TransferCache::Entry* whole = cache->Peek(doc);
      if (whole != nullptr && whole->origin_version == current) {
        InstallAndAdvertise(holder, doc.origin, doc.name,
                            whole->tree->Clone(dest->gen()));
      } else if (const TransferCache::Entry* m =
                     cache->Peek(ManifestKey(doc.origin, doc.name));
                 m != nullptr && m->origin_version == current) {
        std::map<std::string, TreePtr> parts;
        bool complete = true;
        for (const std::string& id : ManifestShardIds(*m->tree)) {
          const TransferCache::Entry* e =
              cache->Peek(ReplicaKey{doc.origin, doc.name, id});
          if (e == nullptr) {
            complete = false;
            break;
          }
          parts[id] = e->tree;
        }
        if (complete) {
          TreePtr assembled = AssembleDocument(
              *m->tree,
              [&parts](const std::string& id) -> TreePtr {
                auto p = parts.find(id);
                return p == parts.end() ? nullptr : p->second;
              },
              dest->gen());
          if (assembled != nullptr) {
            InstallAndAdvertise(holder, doc.origin, doc.name,
                                std::move(assembled));
          }
        }
      }
    }
    // A dropped stale copy re-materializes eagerly under kEagerRefresh,
    // exactly as a mutation-time drop would have.
    if (dropped_doc && refresh_policy_ == RefreshPolicy::kEagerRefresh &&
        StartRefresh(holder, doc, /*attempt=*/0)) {
      subscriptions_.Subscribe(doc, holder);
    }
  }

  // Repair origin-side subscription state and charge the digest
  // exchange: one control roundtrip per (holder, origin) pair, carrying
  // a real encoded DigestExchange — per surviving document the
  // manifest/whole version + digest and each resident shard digest,
  // priced at the actual encoded bytes (the response leg is modeled at
  // the same size: the origin answers digest-for-digest).
  for (PeerId origin : origins) {
    subscription_stats_.sweep_resubscribes +=
        ResubscribeResident(holder, origin);
    if (origin == holder || !sys_->network().IsPeerUp(origin)) continue;
    wire::DigestExchange ex;
    ex.holder = holder.index();
    ex.origin = origin.index();
    for (const auto& [doc, keys] : docs) {
      if (doc.origin != origin) continue;
      wire::DigestExchange::Doc d;
      d.name = doc.name;
      bool any = false;
      for (const ReplicaKey& k : keys) {
        const TransferCache::Entry* e = cache->Peek(k);
        if (e == nullptr) continue;  // reconciled away above
        any = true;
        if (k.is_shard_data()) {
          d.shards.push_back(e->digest);
        } else {
          d.version = e->origin_version;
          d.manifest = e->digest;
        }
      }
      if (any) ex.docs.push_back(std::move(d));
    }
    wire::Payload payload =
        wire::EncodeDigestExchange(ex, WireStatsOf(sys_));
    const uint64_t response_bytes = payload.size();
    const SimTime delay =
        sys_->network().EstimateTransferTime(holder, origin,
                                             payload.size()) +
        sys_->network().EstimateTransferTime(origin, holder,
                                             response_bytes);
    sys_->network().ControlRoundtrip(holder, origin, 2, std::move(payload),
                                     response_bytes, delay, [] {});
  }
  return repairs;
}

void ReplicaManager::OnPeerCrash(PeerId peer, CrashMode mode) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(sys_ != nullptr);
  if (Tracer* tr = trace(); tr != nullptr && tr->enabled()) {
    tr->Record("replica", "crash", peer, 0, 0,
               mode == CrashMode::kLoseCache ? "lose_cache"
                                             : "durable_cache");
  }
  // In-flight shipments toward the crashed holder will never land (the
  // payload evaporates on arrival at a down peer); cancel their tokens
  // so a post-rejoin relaunch starts clean, and end the flight
  // interest.
  for (auto it = refresh_inflight_.begin();
       it != refresh_inflight_.end();) {
    if (it->first.first == peer) {
      subscriptions_.Unsubscribe(it->first.second, peer);
      it = refresh_inflight_.erase(it);
    } else {
      ++it;
    }
  }
  if (mode == CrashMode::kLoseCache) {
    // The cache dies with the process; evict listeners retract every
    // entry's advertisements and subscriptions.
    if (auto cit = caches_.find(peer); cit != caches_.end()) {
      cit->second->Clear();
    }
  }
  // Durable mode keeps the cache, but a down peer must never be
  // routable: every installed copy's advertisements go now. Collect
  // first — RetractAdvertisements mutates installed_. Origin-side
  // subscriptions survive (the origin has not heard of the crash);
  // PushInvalidate skips the down holder and leases or rejoin clean up.
  std::vector<ReplicaKey> installed;
  for (const auto& [slot, origin] : installed_) {
    if (slot.first == peer) {
      installed.push_back(ReplicaKey{origin, slot.second});
    }
  }
  for (const ReplicaKey& k : installed) {
    RetractAdvertisements(peer, k);
  }
}

void ReplicaManager::OnPeerRejoin(PeerId peer) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  AXML_CHECK(sys_ != nullptr);
  if (Tracer* tr = trace(); tr != nullptr && tr->enabled()) {
    tr->Record("replica", "rejoin", peer, 0, 0, "");
  }
  // Reconcile the surviving cache against every origin *before* the
  // peer serves anything: stale entries drop, fresh complete copies
  // re-install and re-advertise, subscriptions repair. A rejoining
  // peer can never serve the state it crashed with unverified.
  ReconcileHolder(peer);
}

void ReplicaManager::OnNotifyDelivered(PeerId origin, PeerId holder) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  auto cit = caches_.find(holder);
  if (cit == caches_.end()) return;  // late notify, holder has nothing
  TransferCache* cache = cit->second.get();
  // Collect first: Erase fires the evict listener, which mutates the
  // cache's key set.
  std::vector<ReplicaKey> stale;
  for (const ReplicaKey& k : cache->Keys()) {
    if (k.origin != origin || k.is_shard_data()) continue;
    const TransferCache::Entry* e = cache->Peek(k);
    if (e != nullptr && e->origin_version != Version(origin, k.name)) {
      stale.push_back(k);
    }
  }
  for (const ReplicaKey& k : stale) {
    cache->Erase(k, /*invalidation=*/true);
    ++subscription_stats_.notify_repairs;
    if (Tracer* tr = trace(); tr != nullptr && tr->enabled()) {
      tr->Record("replica", "notify_repair", holder, 0, 0, k.ToString());
    }
  }
}

}  // namespace axml
