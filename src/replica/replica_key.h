// The identity of one cached copy: where the original lives.
//
// Split out of transfer_cache.h so the eviction-policy strategies (which
// bookkeep per-key state) and the subscription table can name keys
// without pulling in the cache itself.

#ifndef AXML_REPLICA_REPLICA_KEY_H_
#define AXML_REPLICA_REPLICA_KEY_H_

#include <string>

#include "common/ids.h"
#include "common/str_util.h"

namespace axml {

/// Identity of one cached copy: where the original lives.
struct ReplicaKey {
  PeerId origin;
  DocName name;

  bool operator==(const ReplicaKey&) const = default;
  bool operator<(const ReplicaKey& o) const {
    return origin != o.origin ? origin < o.origin : name < o.name;
  }

  /// "d@p1" for traces.
  std::string ToString() const {
    return StrCat(name, "@", origin.ToString());
  }
};

}  // namespace axml

#endif  // AXML_REPLICA_REPLICA_KEY_H_
