// The identity of one cached copy: where the original lives, and — since
// documents can be split into content-addressed shards (xml/sharding.h) —
// which piece of it this is.
//
// Split out of transfer_cache.h so the eviction-policy strategies (which
// bookkeep per-key state) and the subscription table can name keys
// without pulling in the cache itself.

#ifndef AXML_REPLICA_REPLICA_KEY_H_
#define AXML_REPLICA_REPLICA_KEY_H_

#include <string>

#include "common/ids.h"
#include "common/str_util.h"

namespace axml {

/// Shard value naming the manifest of a sharded copy. Data shards use
/// their ContentDigest hex instead; '#' keeps the two namespaces apart
/// (digest hex is [0-9a-f] only).
inline constexpr const char kManifestShardId[] = "#manifest";

/// Identity of one cached copy. The shard dimension distinguishes:
///  - ""              — a whole-document copy (the pre-sharding layout;
///                      also the *document-level* key used for versions
///                      and subscriptions);
///  - "#manifest"     — the manifest of a sharded copy, versioned like a
///                      whole-document copy;
///  - "<digest hex>"  — one data shard. Shard content is immutable (the
///                      id *is* its content digest), so these entries are
///                      stored at version 0 and can never go stale — they
///                      leave the cache only by eviction or explicit
///                      orphan cleanup.
struct ReplicaKey {
  PeerId origin;
  DocName name;
  std::string shard{};  // NSDMI: two-member aggregate init stays valid

  bool operator==(const ReplicaKey&) const = default;
  bool operator<(const ReplicaKey& o) const {
    if (origin != o.origin) return origin < o.origin;
    if (name != o.name) return name < o.name;
    return shard < o.shard;
  }

  bool is_doc() const { return shard.empty(); }
  bool is_manifest() const { return shard == kManifestShardId; }
  bool is_shard_data() const { return !shard.empty() && !is_manifest(); }

  /// The document-level key (shard dimension cleared) — what versions
  /// and subscriptions are tracked under.
  ReplicaKey DocKey() const { return ReplicaKey{origin, name, {}}; }

  /// "d@p1", "d@p1#manifest", "d@p1/3f2a..." for traces.
  std::string ToString() const {
    std::string s = StrCat(name, "@", origin.ToString());
    if (is_manifest()) return s + shard;
    if (!shard.empty()) s += StrCat("/", shard.substr(0, 8));
    return s;
  }
};

}  // namespace axml

#endif  // AXML_REPLICA_REPLICA_KEY_H_
