// Per-peer transfer cache: a byte-budgeted store of materialized remote
// trees with pluggable eviction.
//
// Rule (13) of the paper materializes a transferred tree as a local copy
// so it can be read twice; this cache is the runtime home of those
// copies. Entries are keyed by (origin peer, doc name) — the identity of
// the remote source — and store the content digest and the origin's
// document version at copy time, so the ReplicaManager can detect stale
// copies. Storage is content-addressed: entries whose trees are
// unordered-equal share one blob, and the byte budget charges each blob
// once (identical content replicated from several mirrors costs one
// slot). Victim selection under budget pressure is delegated to an
// EvictionStrategy (eviction_policy.h): LRU (default), LFU, or
// cost-aware scoring by refetch cost from the origin.

#ifndef AXML_REPLICA_TRANSFER_CACHE_H_
#define AXML_REPLICA_TRANSFER_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/reentrancy_guard.h"
#include "common/sequence_checker.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "xml/digest.h"
#include "replica/eviction_policy.h"
#include "replica/replica_key.h"
#include "xml/tree.h"

namespace axml {

/// Counters for one cache (benches report these; EXP-4's crossover is
/// visible in bytes_saved, not just wall clock).
struct TransferCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;      ///< entries dropped by the byte budget
  uint64_t invalidations = 0;  ///< entries dropped as stale
  /// Blob bytes the budget evictions released (cache churn). An evicted
  /// dedup alias whose blob stays resident releases nothing.
  uint64_t bytes_evicted = 0;
  /// Budget evictions split by the policy that chose the victim
  /// (indexed by EvictionPolicy); sums to `evictions` unless the policy
  /// was switched mid-run.
  uint64_t victims_by_policy[kEvictionPolicyCount] = {};
  /// Encoded wire bytes of hit entries: transfers the cache avoided.
  uint64_t bytes_saved = 0;
  /// Bytes not stored again because an equal blob was already resident.
  uint64_t bytes_deduped = 0;

  std::string ToString() const;

  /// Registry retrofit: every field above, under its own name
  /// (victims_by_policy as victims_<policy name>).
  void ExportMetrics(MetricSink& sink) const;
};

/// Byte-budgeted cache of materialized remote trees with
/// content-addressed blob sharing and pluggable eviction. One instance
/// per caching peer (owned by ReplicaManager).
///
/// Contract (machine-checked; docs/architecture.md is the canonical
/// statement):
///  - Sequence-affine: every method runs on the owning System's one
///    sequence, enforced by an embedded SequenceChecker (cross-thread
///    use aborts; death-tested).
///  - Reentrancy: the evict listener fires *during* Put / Get / Erase /
///    Clear / set_byte_budget, before the entry is unlinked. It must not
///    call back into a mutating method of this cache (the entry map is
///    mid-mutation) — enforced by a ReentrancyGuard armed across every
///    mutating entry point (violation aborts; death-tested). It may
///    freely touch other state (the ReplicaManager's listener retracts
///    advertisements and subscriptions, which never re-enter the cache).
///  - Returned TreePtrs alias the shared blob. Callers that hand content
///    to consumers must clone first — mutating a blob in place would
///    desynchronize it from its digest and every dedup alias.
///  - Keys are opaque: the cache never inspects ReplicaKey::shard. Shard
///    semantics (manifest freshness, data-shard immutability, orphan
///    cleanup) live entirely in the ReplicaManager.
class TransferCache {
 public:
  static constexpr uint64_t kDefaultByteBudget = 4ull << 20;  // 4 MiB

  explicit TransferCache(uint64_t byte_budget = kDefaultByteBudget,
                         EvictionPolicy policy = EvictionPolicy::kLru)
      : byte_budget_(byte_budget),
        strategy_(MakeEvictionStrategy(policy)) {}

  TransferCache(const TransferCache&) = delete;
  TransferCache& operator=(const TransferCache&) = delete;

  /// One cached copy.
  struct Entry {
    TreePtr tree;  ///< shared blob (content-equal entries alias one tree)
    ContentDigest digest;
    uint64_t origin_version = 0;
    uint64_t bytes = 0;  ///< encoded wire size of the blob
  };

  /// Called just before an entry leaves the cache (eviction, staleness
  /// drop, or overwrite), so the owner can retract advertisements.
  using EvictListener = std::function<void(const ReplicaKey&, const Entry&)>;
  void set_evict_listener(EvictListener fn) {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    on_evict_ = std::move(fn);
  }

  // --- Eviction policy ---

  EvictionPolicy eviction_policy() const { return strategy_->policy(); }

  /// Swaps the victim-selection strategy. Resident entries are re-seeded
  /// into the new strategy in key order — recency and frequency history
  /// does not survive the switch.
  void set_eviction_policy(EvictionPolicy policy);

  /// Wires the refetch-cost estimate kCostAware scores victims with
  /// (the ReplicaManager passes CostModel::RefetchCost). Takes effect
  /// immediately — the active strategy is rebuilt.
  void set_refetch_cost(RefetchCostFn fn);

  /// Inserts (or overwrites) the copy for `key`, evicting entries per
  /// the eviction policy until the budget holds. Returns false — and
  /// caches nothing — when the tree alone exceeds the budget. A blob
  /// equal to an already resident one is shared, not stored twice.
  /// `encoded` is the tree's wire encoding; when the caller already has
  /// it (a shipment landing stores the bytes it received) it is moved in
  /// verbatim, otherwise the cache encodes. Either way Entry::bytes —
  /// the budgeted size — is exactly the encoded byte count, so what the
  /// budget charges is what a re-ship would put on the wire.
  bool Put(const ReplicaKey& key, TreePtr tree, ContentDigest digest,
           uint64_t origin_version, std::string encoded = {});

  /// The cached copy for `key` iff present *and* its origin_version
  /// equals `expected_version`; touches the eviction strategy and counts
  /// a hit. A present but stale entry is dropped (invalidation) and
  /// counts a miss, as does an absent key. Returns nullptr on miss.
  TreePtr Get(const ReplicaKey& key, uint64_t expected_version);

  /// Read-only view with no recency or stats side effects; nullptr if
  /// absent.
  const Entry* Peek(const ReplicaKey& key) const;

  /// The resident blob's wire encoding (the exact bytes a shipment of
  /// this entry puts on the wire); nullptr if absent. No side effects —
  /// shipping a cached copy reuses these bytes instead of re-encoding.
  const std::string* PeekEncoded(const ReplicaKey& key) const;

  /// Drops `key`; `invalidation` selects which counter the drop charges.
  /// Returns true when the entry existed.
  bool Erase(const ReplicaKey& key, bool invalidation = false);

  /// Drops everything (budget and stats are kept).
  void Clear();

  /// Keys whose entries share `digest`'s blob (used when a blob is about
  /// to be mutated in place and every alias must go).
  std::vector<ReplicaKey> KeysWithDigest(const ContentDigest& digest) const;

  /// Every resident key of document (origin, name) — the whole-document
  /// entry, the manifest, and any data shards — in key order. O(log n +
  /// answer); the ReplicaManager's shard orphan cleanup scans with this.
  std::vector<ReplicaKey> KeysForDoc(PeerId origin,
                                     const DocName& name) const;

  /// Every resident key, in key order (tests and debugging; no recency
  /// side effects).
  std::vector<ReplicaKey> Keys() const;

  size_t entry_count() const { return entries_.size(); }
  /// Distinct blobs resident (dedup makes this <= entry_count()).
  size_t blob_count() const { return blobs_.size(); }
  /// Unique blob bytes currently held.
  uint64_t resident_bytes() const { return resident_bytes_; }

  uint64_t byte_budget() const { return byte_budget_; }
  /// Shrinking the budget evicts immediately.
  void set_byte_budget(uint64_t budget);

  const TransferCacheStats& stats() const { return stats_; }
  void ResetStats() {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    stats_ = TransferCacheStats{};
  }

  /// Counts a transfer avoided by joining an in-flight copy (the
  /// evaluator's read coalescing); the copy itself is recorded by the
  /// Put that follows the landing.
  void RecordCoalescedHit(uint64_t bytes) {
    AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
    ++stats_.hits;
    stats_.bytes_saved += bytes;
  }

  /// Full cross-check of the internal bookkeeping: entry/blob refcount
  /// agreement, resident-byte accounting, budget compliance, strategy
  /// entry tracking. Returns a description of the first violation, or ""
  /// when consistent. Test/debug hook — O(entries), no side effects.
  std::string IntegrityError() const;

 private:
  /// Unlinks `it`'s entry, releasing its blob reference. Runs the evict
  /// listener first. Returns the blob bytes the drop released (0 while
  /// other aliases keep the blob resident).
  uint64_t Drop(std::map<ReplicaKey, Entry>::iterator it,
                uint64_t* counter);
  /// Evicts strategy-chosen victims until resident_bytes_ <=
  /// byte_budget_.
  void EvictToBudget();
  /// Rebuilds the strategy for `policy`, re-seeding resident entries.
  void RebuildStrategy(EvictionPolicy policy);

  SequenceChecker sequence_checker_;
  /// Armed across every mutating entry point; the evict listener runs
  /// inside the armed window, so a listener that calls back trips it.
  ReentrancyGuard mutation_guard_;
  uint64_t byte_budget_;
  std::unique_ptr<EvictionStrategy> strategy_;
  RefetchCostFn refetch_cost_;

  struct Blob {
    TreePtr tree;
    std::string encoded;  ///< wire encoding; bytes == encoded.size()
    uint64_t bytes = 0;
    uint32_t refs = 0;
  };
  std::map<ReplicaKey, Entry> entries_;
  std::map<ContentDigest, Blob> blobs_;
  uint64_t resident_bytes_ = 0;
  TransferCacheStats stats_;
  EvictListener on_evict_;
};

}  // namespace axml

#endif  // AXML_REPLICA_TRANSFER_CACHE_H_
