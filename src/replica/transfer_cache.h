// Per-peer transfer cache: a byte-budgeted LRU of materialized remote
// trees.
//
// Rule (13) of the paper materializes a transferred tree as a local copy
// so it can be read twice; this cache is the runtime home of those
// copies. Entries are keyed by (origin peer, doc name) — the identity of
// the remote source — and store the content digest and the origin's
// document version at copy time, so the ReplicaManager can detect stale
// copies. Storage is content-addressed: entries whose trees are
// unordered-equal share one blob, and the byte budget charges each blob
// once (identical content replicated from several mirrors costs one
// slot).

#ifndef AXML_REPLICA_TRANSFER_CACHE_H_
#define AXML_REPLICA_TRANSFER_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "replica/digest.h"
#include "xml/tree.h"

namespace axml {

/// Identity of one cached copy: where the original lives.
struct ReplicaKey {
  PeerId origin;
  DocName name;

  bool operator==(const ReplicaKey&) const = default;
  bool operator<(const ReplicaKey& o) const {
    return origin != o.origin ? origin < o.origin : name < o.name;
  }

  /// "d@p1" for traces.
  std::string ToString() const;
};

/// Counters for one cache (benches report these; EXP-4's crossover is
/// visible in bytes_saved, not just wall clock).
struct TransferCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;      ///< entries dropped by the byte budget
  uint64_t invalidations = 0;  ///< entries dropped as stale
  /// Serialized bytes of hit entries: wire transfers the cache avoided.
  uint64_t bytes_saved = 0;
  /// Bytes not stored again because an equal blob was already resident.
  uint64_t bytes_deduped = 0;

  std::string ToString() const;
};

/// Byte-budgeted LRU of materialized remote trees with content-addressed
/// blob sharing. One instance per caching peer (owned by ReplicaManager).
class TransferCache {
 public:
  static constexpr uint64_t kDefaultByteBudget = 4ull << 20;  // 4 MiB

  explicit TransferCache(uint64_t byte_budget = kDefaultByteBudget)
      : byte_budget_(byte_budget) {}

  TransferCache(const TransferCache&) = delete;
  TransferCache& operator=(const TransferCache&) = delete;

  /// One cached copy.
  struct Entry {
    TreePtr tree;  ///< shared blob (content-equal entries alias one tree)
    ContentDigest digest;
    uint64_t origin_version = 0;
    uint64_t bytes = 0;  ///< serialized size of the blob
  };

  /// Called just before an entry leaves the cache (eviction, staleness
  /// drop, or overwrite), so the owner can retract advertisements.
  using EvictListener = std::function<void(const ReplicaKey&, const Entry&)>;
  void set_evict_listener(EvictListener fn) { on_evict_ = std::move(fn); }

  /// Inserts (or overwrites) the copy for `key`, evicting LRU entries
  /// until the budget holds. Returns false — and caches nothing — when
  /// the tree alone exceeds the budget. A blob equal to an already
  /// resident one is shared, not stored twice.
  bool Put(const ReplicaKey& key, TreePtr tree, ContentDigest digest,
           uint64_t origin_version);

  /// The cached copy for `key` iff present *and* its origin_version
  /// equals `expected_version`; refreshes LRU and counts a hit. A present
  /// but stale entry is dropped (invalidation) and counts a miss, as does
  /// an absent key. Returns nullptr on miss.
  TreePtr Get(const ReplicaKey& key, uint64_t expected_version);

  /// Read-only view with no LRU or stats side effects; nullptr if absent.
  const Entry* Peek(const ReplicaKey& key) const;

  /// Drops `key`; `invalidation` selects which counter the drop charges.
  /// Returns true when the entry existed.
  bool Erase(const ReplicaKey& key, bool invalidation = false);

  /// Drops everything (budget and stats are kept).
  void Clear();

  /// Keys whose entries share `digest`'s blob (used when a blob is about
  /// to be mutated in place and every alias must go).
  std::vector<ReplicaKey> KeysWithDigest(const ContentDigest& digest) const;

  size_t entry_count() const { return entries_.size(); }
  /// Distinct blobs resident (dedup makes this <= entry_count()).
  size_t blob_count() const { return blobs_.size(); }
  /// Unique blob bytes currently held.
  uint64_t resident_bytes() const { return resident_bytes_; }

  uint64_t byte_budget() const { return byte_budget_; }
  /// Shrinking the budget evicts immediately.
  void set_byte_budget(uint64_t budget);

  const TransferCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TransferCacheStats{}; }

  /// Counts a transfer avoided by joining an in-flight copy (the
  /// evaluator's read coalescing); the copy itself is recorded by the
  /// Put that follows the landing.
  void RecordCoalescedHit(uint64_t bytes) {
    ++stats_.hits;
    stats_.bytes_saved += bytes;
  }

 private:
  struct Blob {
    TreePtr tree;
    uint64_t bytes = 0;
    uint32_t refs = 0;
  };
  struct Slot {
    Entry entry;
    std::list<ReplicaKey>::iterator lru_pos;
  };

  /// Unlinks `it`'s entry, releasing its blob reference. Runs the evict
  /// listener first.
  void Drop(std::map<ReplicaKey, Slot>::iterator it, uint64_t* counter);
  /// Evicts LRU entries until resident_bytes_ <= byte_budget_.
  void EvictToBudget();

  uint64_t byte_budget_;
  std::map<ReplicaKey, Slot> entries_;
  std::map<ContentDigest, Blob> blobs_;
  std::list<ReplicaKey> lru_;  ///< front = most recently used
  uint64_t resident_bytes_ = 0;
  TransferCacheStats stats_;
  EvictListener on_evict_;
};

}  // namespace axml

#endif  // AXML_REPLICA_TRANSFER_CACHE_H_
