// Pluggable eviction for the transfer cache.
//
// Which copy a cache keeps matters as much as having a cache at all:
// rule (13) only pays off when the materialized copy is still resident
// on the next read. The TransferCache therefore delegates its victim
// selection to a strategy object:
//
//  - kLru       — evict the least recently used entry (the original
//                 hardwired behavior, still the default);
//  - kLfu       — evict the least frequently used entry (per-entry
//                 counters with periodic halving, so yesterday's hot
//                 entry can still die today);
//  - kCostAware — evict the entry with the highest
//                   bytes × staleness / refetch-cost
//                 score, where refetch cost is the modeled time to pull
//                 the copy again over the holder<-origin link
//                 (CostModel::RefetchCost). Big, long-untouched copies
//                 that are cheap to re-pull from a nearby origin die
//                 first; a copy of a distant origin survives bursts of
//                 nearby traffic.
//
// Strategies own all their bookkeeping; the cache guarantees every
// resident key is OnInsert'ed exactly once and OnErase'd exactly once,
// with OnAccess touches in between.
//
// Contract (machine-checked; docs/architecture.md is the canonical
// statement): strategies are sequence-affine — the EvictionStrategy
// base embeds a SequenceChecker and every concrete strategy checks it
// on each bookkeeping call, so driving a strategy from a second thread
// aborts — and must not call back into the cache that drives them (the
// cache's own ReentrancyGuard turns such a callback into an abort).
// PickVictim is const and repeatable — the cache erases the victim
// itself and informs the strategy through OnErase. A strategy never sees ReplicaKey::shard
// semantics: manifests and data shards compete for budget like any
// other entry (a policy that pinned manifests would be a new strategy,
// not a special case here).

#ifndef AXML_REPLICA_EVICTION_POLICY_H_
#define AXML_REPLICA_EVICTION_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/sequence_checker.h"
#include "replica/replica_key.h"

namespace axml {

/// How a TransferCache chooses budget-eviction victims.
enum class EvictionPolicy : uint8_t {
  kLru = 0,
  kLfu = 1,
  kCostAware = 2,
};

inline constexpr size_t kEvictionPolicyCount = 3;

const char* EvictionPolicyName(EvictionPolicy p);

/// Modeled cost of re-fetching a departed copy (`key`, `bytes` serialized
/// bytes) to the cache's owner — seconds on the holder<-origin link. The
/// ReplicaManager wires this to CostModel::RefetchCost; unset, every
/// refetch costs the same and kCostAware degrades to size×recency.
using RefetchCostFn =
    std::function<double(const ReplicaKey& key, uint64_t bytes)>;

/// Victim-selection strategy consulted by TransferCache.
class EvictionStrategy {
 public:
  virtual ~EvictionStrategy() = default;

  virtual EvictionPolicy policy() const = 0;

  /// `key` entered the cache holding `bytes` serialized bytes.
  virtual void OnInsert(const ReplicaKey& key, uint64_t bytes) = 0;
  /// A lookup hit touched `key`.
  virtual void OnAccess(const ReplicaKey& key) = 0;
  /// `key` left the cache (budget eviction, staleness drop, erase, or
  /// overwrite — the strategy cannot tell and must not care).
  virtual void OnErase(const ReplicaKey& key) = 0;

  /// Entries currently tracked; always equals the cache's entry_count().
  virtual size_t size() const = 0;

  /// Chooses the next budget victim; false iff no entries are tracked.
  virtual bool PickVictim(ReplicaKey* victim) const = 0;

 protected:
  /// Concrete strategies open every bookkeeping call with
  /// AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_) — the file
  /// comment's affinity contract, enforced.
  SequenceChecker sequence_checker_;
};

/// Builds a strategy for `policy`. `refetch_cost` is consulted only by
/// kCostAware (the others ignore it).
std::unique_ptr<EvictionStrategy> MakeEvictionStrategy(
    EvictionPolicy policy, RefetchCostFn refetch_cost = nullptr);

}  // namespace axml

#endif  // AXML_REPLICA_EVICTION_POLICY_H_
