// Push-based replica refresh: the subscription table and its policy.
//
// PR 1's replica layer invalidated lazily — a stale copy lived until its
// next lookup, leaving stale catalog entries and generic-class members
// advertised in between. The paper's rule (13) and generic documents
// (def. 9) only pay off if copies stay *fresh*, so this module flips the
// direction: the origin knows every holder of every copy (the version
// table already records both sides), and a mutation notifies them all
// immediately. Each holder either drops its copy on the spot — the
// advertisements go at *mutation* time, not lookup time — or, under
// RefreshPolicy::kEagerRefresh, re-materializes the new version through
// the existing transfer path.

#ifndef AXML_REPLICA_SUBSCRIPTION_H_
#define AXML_REPLICA_SUBSCRIPTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sequence_checker.h"
#include "common/thread_annotations.h"
#include "replica/transfer_cache.h"

namespace axml {

/// What a mutation at the origin does to each subscribed copy holder.
enum class RefreshPolicy {
  /// No push: stale copies are dropped on their next lookup (the PR 1
  /// behavior, kept as the bench baseline — its stale-advertisement
  /// window is exactly what the push policies close).
  kLazy,
  /// Push-invalidate: the holder drops the copy and retracts its
  /// catalog/generic advertisements at mutation time.
  kDrop,
  /// Push-refresh: like kDrop, but the origin also ships the new version
  /// so the holder's copy re-materializes without a read asking for it.
  /// Bounded by a per-holder refresh byte budget; back-to-back mutations
  /// coalesce onto the in-flight shipment.
  kEagerRefresh,
};

const char* RefreshPolicyName(RefreshPolicy p);

/// Counters for the push path (benches compare policies with these).
/// All counters are cumulative since the last ReplicaManager::ResetStats.
struct SubscriptionStats {
  /// Invalidation events pushed to holders — one per (mutated key,
  /// holder) pair. Wire *messages* can be fewer: under a notify batch
  /// (ReplicaManager::NotifyBatch) events to the same (origin, holder)
  /// pair share one message (NetStats::notify_messages counts those).
  uint64_t notifies = 0;
  /// Notifies split by targeting: `doc_notifies` went to holders whose
  /// copy is dirty as a whole (a whole-document entry, an installed
  /// sharded copy, or a pending refresh shipment); `shard_notifies`
  /// went to partial holders only because they held a data shard the
  /// new version no longer references. doc + shard == notifies.
  uint64_t doc_notifies = 0;
  uint64_t shard_notifies = 0;
  /// Subscribed holders a mutation did *not* notify because every piece
  /// they hold is still referenced by the new version — the fan-out
  /// shard-granular subscriptions save over document-level ones.
  uint64_t clean_skips = 0;
  /// Notify events folded into an earlier message of the same batch;
  /// `notifies - batched` is the number of wire messages sent.
  uint64_t batched = 0;
  uint64_t drops = 0;          ///< copies dropped at mutation time
  uint64_t refreshes = 0;      ///< eager re-materializations that landed
  uint64_t refresh_bytes = 0;  ///< wire bytes those shipments cost
  /// Refresh requests folded into a shipment already in flight.
  uint64_t coalesced = 0;
  /// Catch-up shipments issued because the origin moved on mid-flight.
  uint64_t retries = 0;
  /// Eager refreshes denied by the per-holder byte budget (the copy
  /// stays dropped; the next read re-pulls lazily).
  uint64_t budget_denied = 0;
  /// Lease renewals that reached the origin (ReplicaManager::
  /// ConfigureLeases; each arrival re-arms the holder's deadline).
  uint64_t lease_renewals = 0;
  /// (origin, holder) leases that expired: the origin forgot a silent
  /// holder's subscriptions (an up holder also self-invalidates its
  /// lapsed copies — the lease contract).
  uint64_t lease_expiries = 0;
  /// Catch-up chains cut off at the attempt cap: the origin kept moving
  /// while shipments were in flight; the holder fell back to lazy.
  uint64_t catchup_exhausted = 0;
  /// Shipments whose landing never fired within the retry timeout
  /// (dropped by the fault injector or a crashed endpoint).
  uint64_t ship_timeouts = 0;
  /// Timed-out shipments relaunched (bounded retry-with-backoff).
  uint64_t ship_retries = 0;
  /// Holders dropped back to lazy pulls after shipment retries ran out.
  uint64_t dropped_to_lazy = 0;
  /// Stale or orphaned cache entries removed by anti-entropy
  /// reconciliation (periodic sweep or rejoin).
  uint64_t sweep_repairs = 0;
  /// Resident fresh entries re-subscribed by reconciliation or a lease
  /// renewal (repairing origin-side state lost to expiry or crash).
  uint64_t sweep_resubscribes = 0;
  /// Stale entries a late-arriving notification cleaned up — on a
  /// perfect fabric always 0 (invalidation drops are synchronous).
  uint64_t notify_repairs = 0;
  /// Mutation fan-outs that skipped a crashed holder (its cache is
  /// unreachable; reconciliation repairs it at rejoin).
  uint64_t down_skips = 0;

  std::string ToString() const;

  /// Registry retrofit: every field above under its own name.
  void ExportMetrics(MetricSink& sink) const;
};

/// Who holds copies of which (owner, doc, shard). Maintained by the
/// ReplicaManager: a successful cache insert subscribes the reader under
/// the inserted entry's *exact* key — whole-document (shard dimension
/// empty), `#manifest`, or one data shard — and any cache drop
/// (staleness, budget eviction, overwrite) unsubscribes that key, so a
/// holder is subscribed to exactly the pieces it has resident. (One
/// exception: an eager-refresh shipment in flight keeps its holder
/// subscribed under the document-level key until it lands.) Mutation
/// fan-out unions the dirty keys' holders, so a partial holder caching
/// only untouched shards is not notified at all.
///
/// Sequence-affine (machine-checked): every method runs on the owning
/// System's one sequence, enforced by an embedded SequenceChecker —
/// cross-thread use aborts (docs/architecture.md has the contract).
class SubscriptionTable {
 public:
  /// Idempotent: a holder subscribes once per key.
  void Subscribe(const ReplicaKey& key, PeerId holder);
  void Unsubscribe(const ReplicaKey& key, PeerId holder);

  /// Snapshot by value: notification fan-out drops copies (and thereby
  /// unsubscribes holders) while iterating.
  std::vector<PeerId> HoldersOf(const ReplicaKey& key) const;
  bool IsSubscribed(const ReplicaKey& key, PeerId holder) const;

  /// Every subscribed key of document (origin, name) — the document
  /// key, the manifest, and any data shards — in key order. O(log n +
  /// answer); mutation fan-out classifies holders with this.
  std::vector<ReplicaKey> KeysForDoc(PeerId origin,
                                     const DocName& name) const;

  /// Total (key, holder) pairs across all keys.
  size_t subscription_count() const;

  /// Read-only view of the whole table, in key order (the lease tick
  /// derives live (origin, holder) pairs from it; deterministic
  /// iteration order matters there).
  const std::map<ReplicaKey, std::vector<PeerId>>& entries() const;

 private:
  SequenceChecker sequence_checker_;
  std::map<ReplicaKey, std::vector<PeerId>> holders_
      AXML_GUARDED_BY_CONTEXT(sequence_checker_);
};

// Notification, lease-renewal and anti-entropy message sizes are no
// longer modeled constants: each message is encoded (xml/wire.h —
// NotifyBatch, LeaseRenewal, DigestExchange) and priced at its actual
// encoded byte count.

}  // namespace axml

#endif  // AXML_REPLICA_SUBSCRIPTION_H_
