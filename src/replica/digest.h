// Content digests for replica deduplication.
//
// The transfer cache is content-addressed in the style of package-delivery
// blob stores: a materialized copy is identified by a digest of its
// *canonical* tree form (tree_equal.h), so two copies of unordered-equal
// trees — however they were obtained, from whichever origin — share one
// stored blob. The digest combines the order-insensitive structural hash
// with an FNV-1a over the canonical serialization; a collision requires
// both 64-bit halves to agree on unequal trees.

#ifndef AXML_REPLICA_DIGEST_H_
#define AXML_REPLICA_DIGEST_H_

#include <cstdint>
#include <string>

#include "xml/tree.h"

namespace axml {

/// 128-bit content digest of one tree's canonical form.
struct ContentDigest {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const ContentDigest&) const = default;
  bool operator<(const ContentDigest& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  /// Lowercase hex, e.g. "3f2a...e1" (for traces and dumps).
  std::string ToString() const;
};

/// Digest of `node`'s canonical (order-insensitive) form. Unordered-equal
/// trees digest equal; node identifiers do not participate.
ContentDigest DigestOf(const TreeNode& node);

}  // namespace axml

#endif  // AXML_REPLICA_DIGEST_H_
