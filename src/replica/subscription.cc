#include "replica/subscription.h"

#include <algorithm>

#include "common/str_util.h"

namespace axml {

const char* RefreshPolicyName(RefreshPolicy p) {
  switch (p) {
    case RefreshPolicy::kLazy:
      return "lazy";
    case RefreshPolicy::kDrop:
      return "drop";
    case RefreshPolicy::kEagerRefresh:
      return "eager_refresh";
  }
  return "?";
}

std::string SubscriptionStats::ToString() const {
  return StrCat("notifies=", notifies, " (doc=", doc_notifies,
                " shard=", shard_notifies, ") clean_skips=", clean_skips,
                " batched=", batched, " drops=", drops,
                " refreshes=", refreshes, " refresh_bytes=", refresh_bytes,
                " coalesced=", coalesced, " retries=", retries,
                " budget_denied=", budget_denied,
                " lease_renewals=", lease_renewals,
                " lease_expiries=", lease_expiries,
                " catchup_exhausted=", catchup_exhausted,
                " ship_timeouts=", ship_timeouts,
                " ship_retries=", ship_retries,
                " dropped_to_lazy=", dropped_to_lazy,
                " sweep_repairs=", sweep_repairs,
                " sweep_resubscribes=", sweep_resubscribes,
                " notify_repairs=", notify_repairs,
                " down_skips=", down_skips);
}

void SubscriptionStats::ExportMetrics(MetricSink& sink) const {
  sink.Value("notifies", notifies);
  sink.Value("doc_notifies", doc_notifies);
  sink.Value("shard_notifies", shard_notifies);
  sink.Value("clean_skips", clean_skips);
  sink.Value("batched", batched);
  sink.Value("drops", drops);
  sink.Value("refreshes", refreshes);
  sink.Value("refresh_bytes", refresh_bytes);
  sink.Value("coalesced", coalesced);
  sink.Value("retries", retries);
  sink.Value("budget_denied", budget_denied);
  sink.Value("lease_renewals", lease_renewals);
  sink.Value("lease_expiries", lease_expiries);
  sink.Value("catchup_exhausted", catchup_exhausted);
  sink.Value("ship_timeouts", ship_timeouts);
  sink.Value("ship_retries", ship_retries);
  sink.Value("dropped_to_lazy", dropped_to_lazy);
  sink.Value("sweep_repairs", sweep_repairs);
  sink.Value("sweep_resubscribes", sweep_resubscribes);
  sink.Value("notify_repairs", notify_repairs);
  sink.Value("down_skips", down_skips);
}

void SubscriptionTable::Subscribe(const ReplicaKey& key, PeerId holder) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  auto& v = holders_[key];
  if (std::find(v.begin(), v.end(), holder) == v.end()) {
    v.push_back(holder);
  }
}

void SubscriptionTable::Unsubscribe(const ReplicaKey& key, PeerId holder) {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  auto it = holders_.find(key);
  if (it == holders_.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), holder), v.end());
  if (v.empty()) holders_.erase(it);
}

std::vector<PeerId> SubscriptionTable::HoldersOf(
    const ReplicaKey& key) const {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  auto it = holders_.find(key);
  return it == holders_.end() ? std::vector<PeerId>{} : it->second;
}

bool SubscriptionTable::IsSubscribed(const ReplicaKey& key,
                                     PeerId holder) const {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  auto it = holders_.find(key);
  if (it == holders_.end()) return false;
  const auto& v = it->second;
  return std::find(v.begin(), v.end(), holder) != v.end();
}

std::vector<ReplicaKey> SubscriptionTable::KeysForDoc(
    PeerId origin, const DocName& name) const {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  std::vector<ReplicaKey> keys;
  // Keys order by (origin, name, shard), so one document's keys — the
  // doc key (shard "") first — form a contiguous range.
  for (auto it = holders_.lower_bound(ReplicaKey{origin, name});
       it != holders_.end() && it->first.origin == origin &&
       it->first.name == name;
       ++it) {
    keys.push_back(it->first);
  }
  return keys;
}

size_t SubscriptionTable::subscription_count() const {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  size_t n = 0;
  for (const auto& [key, v] : holders_) n += v.size();
  return n;
}

const std::map<ReplicaKey, std::vector<PeerId>>& SubscriptionTable::entries()
    const {
  AXML_DCHECK_CALLED_ON_SEQUENCE(sequence_checker_);
  return holders_;
}

}  // namespace axml
