#include "scenario/fleet.h"

#include <set>
#include <utility>

#include "algebra/evaluator.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "net/catalog.h"
#include "xml/tree_equal.h"

namespace axml {

namespace {

std::unique_ptr<Catalog> MakeBackend(FleetBackend kind) {
  switch (kind) {
    case FleetBackend::kCentral:
      // The first peer doubles as the index server — the classic
      // well-known-coordinator deployment.
      return std::make_unique<CentralCatalog>(PeerId(0));
    case FleetBackend::kChordDht:
      return std::make_unique<ChordDhtCatalog>();
  }
  return nullptr;
}

}  // namespace

std::string FleetReport::ToString() const {
  return StrCat("backend=", backend, " peers=", peers, " ops=", ops,
                " generic_reads=", generic_reads, " mutations=", mutations,
                " stale_reads=", stale_reads, " lookups=", lookups,
                " msgs_per_lookup=", msgs_per_lookup,
                " max_node_share=", max_node_share,
                " advertise_messages=", advertise_messages,
                " wire_bytes=", wire_bytes, " sim_s=", sim_s,
                " crashes=", crashes, " rejoins=", rejoins);
}

FleetHarness::FleetHarness(FleetConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      sys_(Topology::Hierarchical(config_.topo)) {
  const uint32_t n = config_.topo.peer_count();
  for (uint32_t i = 0; i < n; ++i) {
    sys_.AddPeer(StrCat("peer", i));
  }
  sys_.SetCatalog(MakeBackend(config_.backend));
  sys_.replicas().set_refresh_policy(config_.refresh);
  sys_.replicas().set_default_byte_budget(config_.cache_budget);
  if (config_.churn) {
    // The repair machinery the churn schedule is aimed at: leased
    // subscriptions (a crashed holder's origin-side state expires),
    // bounded shipment retries, periodic anti-entropy sweeps.
    sys_.replicas().ConfigureLeases(/*renew_interval_s=*/0.5,
                                    /*ttl_s=*/2.0);
    sys_.replicas().set_shipment_retry(/*max_attempts=*/3,
                                       /*backoff_base_s=*/0.25);
    sys_.replicas().set_anti_entropy_interval(2.0);
  }

  // Origins spread evenly over the fleet, so generic traffic crosses
  // regions rather than clustering around peer 0.
  const uint32_t stride = std::max<uint32_t>(1, n / std::max<uint32_t>(
                                                     1, config_.origins));
  Catalog* catalog = sys_.catalog();
  // Bring-up is one advertisement batch: on the DHT backend the whole
  // install pays one digest per (origin, responsible node), not one
  // message per document.
  catalog->BeginAdvertiseBatch();
  for (uint32_t o = 0; o < config_.origins; ++o) {
    const PeerId origin((o * stride) % n);
    for (uint32_t d = 0; d < config_.docs_per_origin; ++d) {
      FleetDoc doc;
      doc.name = StrCat("d", o, "_", d);
      doc.origin = origin;
      doc.class_name = StrCat("cls_", doc.name);
      Status st = sys_.InstallDocument(
          doc.origin, doc.name, MakeDoc(doc, sys_.peer(origin)->gen()));
      AXML_CHECK(st.ok()) << st.ToString();
      sys_.generics().AddDocumentMember(doc.class_name,
                                        ClassMember{doc.name, doc.origin});
      docs_.push_back(doc);
    }
  }
  catalog->EndAdvertiseBatch();
  sys_.RunToQuiescence();
}

TreePtr FleetHarness::MakeDoc(const FleetDoc& doc, NodeIdGen* gen) const {
  TreePtr root = TreeNode::Element("doc", gen);
  root->AddChild(
      MakeTextElement("id", StrCat(doc.name, "#", doc.revision), gen));
  for (size_t i = 0; i < config_.doc_filler; ++i) {
    root->AddChild(MakeTextElement(
        "x", StrCat(doc.name, "-", doc.revision, "-", i), gen));
  }
  return root;
}

FleetReport FleetHarness::Run() {
  const uint32_t n = config_.topo.peer_count();
  EvalOptions opts;
  opts.use_replica_cache = true;
  opts.pick_policy = PickPolicy::kCacheAware;
  Evaluator ev(&sys_, opts);
  ZipfSampler zipf(docs_.size(), config_.zipf_s);

  FleetReport report;
  report.backend = sys_.catalog()->backend_name();
  report.peers = n;

  // Churn victims: the first `churn_peers` non-origin peers (origins
  // must stay up — they are the freshness ground truth; peer 0 stays
  // up for the central backend's server).
  std::vector<PeerId> victims;
  if (config_.churn) {
    std::set<uint32_t> origin_indices;
    for (const FleetDoc& d : docs_) origin_indices.insert(d.origin.index());
    for (uint32_t p = 1; p < n && victims.size() < config_.churn_peers;
         ++p) {
      if (origin_indices.count(p) == 0) victims.push_back(PeerId(p));
    }
  }

  for (uint64_t i = 0; i < config_.ops; ++i) {
    if (config_.churn && i == config_.ops / 3) {
      for (size_t v = 0; v < victims.size(); ++v) {
        sys_.CrashPeer(victims[v], v % 2 == 0 ? CrashMode::kLoseCache
                                              : CrashMode::kDurableCache);
        ++report.crashes;
      }
    }
    if (config_.churn && i == 2 * config_.ops / 3) {
      for (const PeerId v : victims) {
        sys_.RejoinPeer(v);
        ++report.rejoins;
      }
      sys_.RunToQuiescence();
    }
    FleetDoc& doc = docs_[zipf.Sample(&rng_)];
    PeerId reader(rng_.Index(n));
    while (!sys_.IsPeerUp(reader)) reader = PeerId(rng_.Index(n));
    const bool generic = rng_.Bernoulli(config_.generic_read_fraction);
    ExprPtr read = generic ? Expr::GenericDoc(doc.class_name)
                           : Expr::Doc(doc.name, doc.origin);
    auto out = ev.Eval(reader, read);
    AXML_CHECK(out.ok()) << out.status().ToString();
    ++report.ops;
    if (generic) ++report.generic_reads;
    if (config_.check_fresh_reads) {
      TreePtr truth = sys_.peer(doc.origin)->GetDocument(doc.name);
      if (out->results.size() != 1 || truth == nullptr ||
          CanonicalForm(*out->results[0]) != CanonicalForm(*truth)) {
        ++report.stale_reads;
      }
    }
    if (config_.mutate_every != 0 && i % config_.mutate_every ==
                                         config_.mutate_every - 1) {
      FleetDoc& victim = docs_[zipf.Sample(&rng_)];
      ++victim.revision;
      Peer* host = sys_.peer(victim.origin);
      host->PutDocument(victim.name, MakeDoc(victim, host->gen()));
      sys_.RunToQuiescence();
      ++report.mutations;
    }
  }
  sys_.RunToQuiescence();

  const CatalogStats& cat = sys_.catalog()->stats();
  report.lookups = cat.lookups;
  report.msgs_per_lookup =
      cat.lookups == 0 ? 0.0
                       : static_cast<double>(cat.lookup_messages) /
                             static_cast<double>(cat.lookups);
  report.max_node_share = sys_.catalog()->MaxNodeLoadShare();
  report.lookup_bytes = cat.lookup_bytes;
  report.advertise_messages = cat.advertise_messages;
  report.advertise_bytes = cat.advertise_bytes;

  const NetStats& net = sys_.network().stats();
  report.wire_messages = net.total_messages();
  report.wire_bytes = net.total_bytes();
  report.remote_bytes = net.remote_bytes();
  report.sim_s = sys_.loop().now();
  return report;
}

}  // namespace axml
