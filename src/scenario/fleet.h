// Fleet-scale scenario harness.
//
// Stands up hundreds to thousands of peers in a WAN/region/rack
// hierarchy (Topology::Hierarchical), spreads origin documents across
// regions, and drives a Zipf-skewed read/mutation workload through the
// algebra evaluator with the replica cache on — the scale gate the
// ROADMAP's 1k–10k-peer item asks for. The harness is gtest-free so
// benches (bench_fleet) and tests (fleet_test) share one workload
// definition: tests assert on the returned FleetReport (stale_reads
// must be 0, DHT lookup cost ~log P, hot-node share), benches turn the
// same numbers into schema-v1 JSON.
//
// Everything is deterministic from FleetConfig::seed; equal configs
// give equal reports.

#ifndef AXML_SCENARIO_FLEET_H_
#define AXML_SCENARIO_FLEET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "net/topology.h"
#include "peer/system.h"
#include "replica/replica_manager.h"
#include "xml/tree.h"

namespace axml {

/// Which discovery backend the fleet runs on.
enum class FleetBackend { kCentral, kChordDht };

/// Knobs of one fleet run. Defaults give the CI smoke shape: 200 peers
/// in 2 regions.
struct FleetConfig {
  /// Peer layout; peer count = regions * racks_per_region *
  /// peers_per_rack.
  Topology::HierarchySpec topo;
  FleetBackend backend = FleetBackend::kChordDht;

  /// Origin documents: `origins` peers spread evenly across the fleet
  /// each host `docs_per_origin` documents (every document also anchors
  /// a generic class for d@any reads).
  uint32_t origins = 8;
  uint32_t docs_per_origin = 4;
  /// Filler elements per document (payload size knob).
  size_t doc_filler = 4;

  /// Workload: `ops` reads issued by uniformly random readers against
  /// Zipf(s)-ranked documents; `generic_read_fraction` of them resolve
  /// d@any through the catalog, the rest read doc@origin directly.
  /// Every `mutate_every`-th op also mutates a Zipf-chosen document at
  /// its origin (0 disables mutations).
  uint64_t ops = 1000;
  double zipf_s = 1.0;
  double generic_read_fraction = 0.3;
  uint64_t mutate_every = 16;
  uint64_t seed = 1;

  /// Replica-layer shape.
  uint64_t cache_budget = 4000;
  RefreshPolicy refresh = RefreshPolicy::kDrop;

  /// Compare every read against the origin's document at read time and
  /// count mismatches in FleetReport::stale_reads.
  bool check_fresh_reads = true;

  /// Churn schedule (the faulted soak): when true, `churn_peers`
  /// non-origin peers crash one third into the run (alternating
  /// cache-losing and durable-cache crashes) and rejoin at two thirds;
  /// readers are drawn from live peers only, the freshness check stays
  /// on throughout, and the repair machinery (leases, shipment retries,
  /// periodic anti-entropy) is armed. On the chord-dht backend this
  /// also exercises ring liveness repair: lookups route around the
  /// crashed arc until rejoin.
  bool churn = false;
  uint32_t churn_peers = 4;
};

/// What one fleet run produced. `msgs_per_lookup` and
/// `max_node_share` are the backend-comparison headline: central pins
/// ~all catalog load on its server at ~2 messages per lookup, the DHT
/// spreads load at ~log2(P) messages per lookup.
struct FleetReport {
  std::string backend;
  uint64_t peers = 0;
  uint64_t ops = 0;
  uint64_t generic_reads = 0;
  uint64_t mutations = 0;
  uint64_t stale_reads = 0;

  uint64_t lookups = 0;
  double msgs_per_lookup = 0;
  double max_node_share = 0;
  uint64_t lookup_bytes = 0;
  uint64_t advertise_messages = 0;
  uint64_t advertise_bytes = 0;

  uint64_t wire_messages = 0;
  uint64_t wire_bytes = 0;
  uint64_t remote_bytes = 0;
  double sim_s = 0;

  /// Churn schedule actually executed (0 when FleetConfig::churn off).
  uint64_t crashes = 0;
  uint64_t rejoins = 0;

  std::string ToString() const;
};

/// Builds the fleet in the constructor (peers, topology, backend,
/// origin documents — advertisements batched), runs the workload in
/// Run(). The system stays inspectable afterwards.
class FleetHarness {
 public:
  explicit FleetHarness(FleetConfig config);

  /// Drives the configured workload to quiescence and reports.
  FleetReport Run();

  AxmlSystem& system() { return sys_; }
  const FleetConfig& config() const { return config_; }

 private:
  struct FleetDoc {
    DocName name;
    PeerId origin;
    std::string class_name;
    uint64_t revision = 1;
  };

  TreePtr MakeDoc(const FleetDoc& doc, NodeIdGen* gen) const;

  FleetConfig config_;
  Rng rng_;
  AxmlSystem sys_;
  std::vector<FleetDoc> docs_;
};

}  // namespace axml

#endif  // AXML_SCENARIO_FLEET_H_
