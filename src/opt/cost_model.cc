#include "opt/cost_model.h"

#include <algorithm>

#include "algebra/expr_xml.h"
#include "common/str_util.h"
#include "xml/wire.h"

namespace axml {

namespace {

/// Average serialized bytes per tree node, used to convert volume
/// estimates into compute-node counts.
constexpr double kBytesPerNode = 32.0;

/// Default selectivities per predicate kind (System-R style).
constexpr double kSelEq = 0.10;
constexpr double kSelRange = 0.33;
constexpr double kSelContains = 0.25;
constexpr double kSelExists = 0.90;

/// Wire bytes of a shipped query: its canonical text in a kQuery
/// envelope — exactly what the evaluator's SendReliable prices.
double EncodedQueryBytes(const Query& q) {
  return static_cast<double>(wire::EncodedTextSize(q.text()));
}

/// Wire bytes of a delegated expression (eval@p): the compact
/// serialization in a kQuery envelope, matching DeployEvalAt.
double EncodedExprBytes(const Expr& e) {
  NodeIdGen gen;
  return static_cast<double>(
      wire::EncodedTextSize(SerializeCompactExpr(e, &gen)));
}

double CondSelectivity(const aql::Cond& c, const TreeStats* stats) {
  using K = aql::Cond::Kind;
  switch (c.kind) {
    case K::kAnd: {
      double s = 1.0;
      for (const auto& ch : c.children) {
        s *= CondSelectivity(*ch, stats);
      }
      return s;
    }
    case K::kOr: {
      double s = 1.0;
      for (const auto& ch : c.children) {
        s *= 1.0 - CondSelectivity(*ch, stats);
      }
      return 1.0 - s;
    }
    case K::kNot:
      return 1.0 - CondSelectivity(*c.children[0], stats);
    case K::kCompare: {
      // Stats-based estimate for `path <op> literal` when the last step
      // of the path names a label we have numeric stats for.
      if (stats != nullptr &&
          c.rhs.kind == aql::Operand::Kind::kLiteral &&
          c.lhs.kind != aql::Operand::Kind::kLiteral &&
          !c.lhs.path.empty() &&
          c.lhs.path.back().test == aql::Step::Test::kLabel) {
        double bound;
        if (ParseDouble(c.rhs.literal, &bound)) {
          LabelId label = c.lhs.path.back().label;
          double frac_less =
              stats->EstimateSelectivityLess(label, bound);
          switch (c.op) {
            case CmpOp::kLt:
            case CmpOp::kLe:
              return std::clamp(frac_less, 0.001, 1.0);
            case CmpOp::kGt:
            case CmpOp::kGe:
              return std::clamp(1.0 - frac_less, 0.001, 1.0);
            case CmpOp::kEq:
              return kSelEq;
            case CmpOp::kNe:
              return 1.0 - kSelEq;
          }
        }
      }
      return c.op == CmpOp::kEq ? kSelEq : kSelRange;
    }
    case K::kExists:
      return kSelExists;
    case K::kContains:
      return kSelContains;
  }
  return 0.5;
}

}  // namespace

std::string CostEstimate::ToString() const {
  return StrCat("time=", FormatDouble(time_s),
                "s remote_bytes=", FormatDouble(remote_bytes),
                " remote_msgs=", FormatDouble(remote_messages));
}

double CostModel::EstimateQuerySelectivity(
    const Query& q, const TreeStats* input_stats) const {
  if (!q.valid()) return 1.0;
  double sel = 1.0;
  if (q.ast().where != nullptr) {
    sel = CondSelectivity(*q.ast().where, input_stats);
  }
  // Navigation in for-clauses narrows to subtrees; approximate each
  // path step as keeping 60% of the volume (fan-out vs. subtree size).
  for (const auto& fc : q.ast().clauses) {
    for (size_t i = 0; i < fc.path.size(); ++i) sel *= 0.6;
  }
  return std::clamp(sel, 1e-4, 1.0);
}

const TreeStats* CostModel::DocStats(PeerId p, const DocName& name) const {
  std::string key = StrCat(p.index(), "/", name);
  auto it = stats_cache_.find(key);
  if (it != stats_cache_.end()) return &it->second;
  const Peer* peer = sys_->peer(p);
  if (peer == nullptr) return nullptr;
  TreePtr root = peer->GetDocument(name);
  if (root == nullptr) return nullptr;
  auto [pos, inserted] = stats_cache_.emplace(key, ComputeStats(*root));
  return &pos->second;
}

double CostModel::DocSourceBytes(const Query& q, PeerId eval_peer) const {
  if (!q.valid()) return 0;
  double bytes = 0;
  for (const auto& fc : q.ast().clauses) {
    if (fc.source.kind != aql::Source::Kind::kDoc) continue;
    if (const TreeStats* st = DocStats(eval_peer, fc.source.doc_name)) {
      bytes += static_cast<double>(st->serialized_bytes);
    }
  }
  return bytes;
}

CostEstimate CostModel::TransferCost(PeerId from, PeerId to,
                                     double bytes) const {
  CostEstimate c;
  if (from == to || !from.is_concrete() || !to.is_concrete()) return c;
  LinkParams link = sys_->network().topology().Get(from, to);
  c.time_s = link.TransferTime(static_cast<uint64_t>(bytes));
  c.remote_bytes = bytes;
  c.remote_messages = 1;
  return c;
}

double CostModel::RefetchCost(PeerId reader, PeerId owner,
                              uint64_t bytes) const {
  return TransferCost(owner, reader, static_cast<double>(bytes)).time_s;
}

CostEstimate CostModel::DocTransferCost(PeerId reader, PeerId owner,
                                        const DocName& name,
                                        double bytes) const {
  // ExpectedFresh, not HasFresh: under RefreshPolicy::kEagerRefresh a
  // mutation drops the copy but its replacement is already on the wire —
  // the fresh-copy assumption plans are priced on does not decay at
  // mutation time. (Under kDrop/kLazy the two probes agree.)
  if (assume_replica_cache_) {
    if (sys_->replicas().ExpectedFresh(reader, owner, name)) {
      return CostEstimate{};  // a cache hit costs 0 bytes on the wire
    }
    // Partial sharded copies pay only for what is missing: the stale
    // manifest plus the non-resident data shards. A peer holding most
    // of a document's shards reads it almost for free, so the optimizer
    // prefers routing the read there over a cold peer. The delta is
    // clamped to the plain transfer: shard wrappers and nested
    // sub-manifests carry overhead, so a *cold* delta can exceed the
    // raw document size — but a partial copy must never be priced above
    // the whole-document transfer it replaces.
    uint64_t delta = 0;
    if (sys_->replicas().ShardedDeltaBytes(reader, owner, name, &delta)) {
      return TransferCost(owner, reader,
                          std::min(static_cast<double>(delta), bytes));
    }
  }
  return TransferCost(owner, reader, bytes);
}

CostEstimate CostModel::Estimate(PeerId at, const ExprPtr& e) const {
  return Walk(at, e).cost;
}

Flow CostModel::EstimateFlow(PeerId at, const ExprPtr& e) const {
  return Walk(at, e).flow;
}

CostModel::Visit CostModel::Walk(PeerId at, const ExprPtr& e) const {
  if (memo_depth_ == 0) return WalkUncached(at, e);
  auto key = std::make_pair(at, e.get());
  auto it = walk_memo_.find(key);
  if (it != walk_memo_.end()) return it->second;
  Visit v = WalkUncached(at, e);
  walk_memo_.emplace(key, v);
  return v;
}

CostModel::Visit CostModel::WalkUncached(PeerId at, const ExprPtr& e) const {
  Visit v;
  switch (e->kind()) {
    case Expr::Kind::kTree: {
      v.flow.bytes = static_cast<double>(wire::EncodedTreeSize(*e->tree()));
      v.flow.trees = 1;
      v.cost += TransferCost(e->tree_owner(), at, v.flow.bytes);
      return v;
    }
    case Expr::Kind::kDoc: {
      PeerId owner = e->doc_peer();
      double bytes = 1024;  // default guess for unknown documents
      DocName name = e->doc_name();
      if (e->is_generic_doc()) {
        // Assume the pick policy finds the cheapest member. Cached
        // replicas are advertised as class members, so a fresh local
        // copy enters this scan as a zero-cost candidate.
        const auto* members =
            sys_->generics().DocumentMembers(e->doc_name());
        if (members != nullptr && !members->empty()) {
          double best_time = -1;
          for (const auto& m : *members) {
            const TreeStats* st = DocStats(m.peer, m.name);
            double b = st != nullptr
                           ? static_cast<double>(st->serialized_bytes)
                           : bytes;
            double t = DocTransferCost(at, m.peer, m.name, b).time_s;
            if (best_time < 0 || t < best_time) {
              best_time = t;
              owner = m.peer;
              name = m.name;
              bytes = b;
            }
          }
        }
      } else if (const TreeStats* st = DocStats(owner, e->doc_name())) {
        bytes = static_cast<double>(st->serialized_bytes);
      } else if (uint64_t cached =
                     sys_->replicas().FreshCopyBytes(at, owner, name)) {
        // Origin unknown to the stats cache but a fresh copy is at hand;
        // size the flow from the copy.
        bytes = static_cast<double>(cached);
      }
      v.flow.bytes = bytes;
      v.flow.trees = 1;
      v.cost += DocTransferCost(at, owner, name, bytes);
      return v;
    }
    case Expr::Kind::kApply: {
      const TreeStats* stats = nullptr;
      double in_bytes = 0, in_trees = 0;
      for (const auto& arg : e->args()) {
        Visit av = Walk(at, arg);
        v.cost += av.cost;
        in_bytes += av.flow.bytes;
        in_trees += av.flow.trees;
        if (arg->kind() == Expr::Kind::kDoc && !arg->is_generic_doc()) {
          stats = DocStats(arg->doc_peer(), arg->doc_name());
        }
      }
      // Query shipping (def. (7)).
      if (e->query_peer().is_concrete() && e->query_peer() != at) {
        v.cost += TransferCost(e->query_peer(), at,
                               EncodedQueryBytes(e->query()));
      }
      // Volume also flows out of doc(...) clauses read at `at`.
      in_bytes += DocSourceBytes(e->query(), at);
      // Compute time at the evaluating peer.
      const Peer* host = sys_->peer(at);
      double speed = host != nullptr ? host->compute_speed() : 1e6;
      v.cost.time_s += (in_bytes / kBytesPerNode) / speed;
      double sel = EstimateQuerySelectivity(e->query(), stats);
      v.flow.bytes = in_bytes * sel;
      v.flow.trees = std::max(1.0, in_trees * sel);
      return v;
    }
    case Expr::Kind::kCall: {
      PeerId provider = e->provider();
      const Service* svc = nullptr;
      if (provider.is_any()) {
        const auto* members = sys_->generics().ServiceMembers(e->service());
        if (members != nullptr && !members->empty()) {
          provider = members->front().peer;
        }
      }
      if (const Peer* p = sys_->peer(provider)) {
        svc = p->GetService(e->service());
      }
      double in_bytes = 0;
      for (const auto& param : e->params()) {
        Visit pv = Walk(at, param);
        v.cost += pv.cost;
        // Parameters ship caller -> provider (def. (6)).
        v.cost += TransferCost(at, provider, pv.flow.bytes);
        in_bytes += pv.flow.bytes;
      }
      const Peer* phost = sys_->peer(provider);
      double speed = phost != nullptr ? phost->compute_speed() : 1e6;
      double sel = 1.0;
      if (svc != nullptr && svc->is_declarative()) {
        // The service body may also read documents on the provider.
        in_bytes += DocSourceBytes(svc->query(), provider);
        sel = EstimateQuerySelectivity(svc->query(), nullptr);
      }
      v.cost.time_s += (in_bytes / kBytesPerNode) / speed;
      double out_bytes = std::max(in_bytes * sel, 64.0);
      v.flow.bytes = out_bytes;
      // Results ship to the forward list, or back to the caller.
      if (e->forwards().empty()) {
        v.cost += TransferCost(provider, at, out_bytes);
      } else {
        for (const auto& loc : e->forwards()) {
          v.cost += TransferCost(provider, loc.peer, out_bytes);
        }
        v.flow.bytes = 0;  // ∅ at the consumer
        v.flow.trees = 0;
      }
      return v;
    }
    case Expr::Kind::kSend: {
      Visit pv = Walk(at, e->payload());
      v.cost += pv.cost;
      const Expr::SendDest& d = e->dest();
      switch (d.kind) {
        case Expr::SendDest::Kind::kPeer:
        case Expr::SendDest::Kind::kNewDoc:
          v.cost += TransferCost(at, d.peer, pv.flow.bytes);
          break;
        case Expr::SendDest::Kind::kNodes:
          for (const auto& loc : d.nodes) {
            v.cost += TransferCost(at, loc.peer, pv.flow.bytes);
          }
          break;
      }
      v.flow.bytes = 0;  // a send returns ∅ locally (def. (3))
      v.flow.trees = 0;
      return v;
    }
    case Expr::Kind::kShipQuery: {
      v.cost += TransferCost(at, e->ship_dest(),
                             EncodedQueryBytes(e->query()));
      v.flow.bytes = 0;
      v.flow.trees = 0;
      return v;
    }
    case Expr::Kind::kEvalAt: {
      PeerId where = e->eval_where();
      // Shipping the expression itself.
      v.cost += TransferCost(at, where, EncodedExprBytes(*e->body()));
      Visit bv = Walk(where, e->body());
      v.cost += bv.cost;
      // Results return to the consumer.
      v.cost += TransferCost(where, at, bv.flow.bytes);
      v.flow = bv.flow;
      return v;
    }
    case Expr::Kind::kSeq: {
      Visit fv = Walk(at, e->first());
      Visit tv = Walk(at, e->then());
      v.cost += fv.cost;
      v.cost += tv.cost;  // sequential: times add
      v.flow = tv.flow;
      return v;
    }
  }
  return v;
}

}  // namespace axml
