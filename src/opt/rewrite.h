// Rewrite-rule interface for the equivalence rules of §3.3.
//
// Each rule inspects one expression node (in the context of the peer
// evaluating it) and proposes equivalent alternatives. The optimizer
// applies rules at every position of the expression tree and keeps the
// cheapest candidates (optimizer.h). Every rule cites the paper equation
// it implements; the equivalence-property tests check eval@p(e)(Σ) =
// eval@p(e')(Σ) on randomized states for each rule's proposals.

#ifndef AXML_OPT_REWRITE_H_
#define AXML_OPT_REWRITE_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "opt/cost_model.h"
#include "peer/system.h"

namespace axml {

/// Shared context handed to rules.
struct RewriteContext {
  AxmlSystem* sys = nullptr;
  const CostModel* cost = nullptr;
  /// Monotonic counter for names invented by rewrites (cache documents,
  /// shipped services).
  uint64_t* name_counter = nullptr;

  std::string FreshName(const char* prefix) const;
};

/// One equivalence rule.
class RewriteRule {
 public:
  virtual ~RewriteRule() = default;

  /// Stable rule name, e.g. "delegation(10)".
  virtual const char* name() const = 0;

  /// Appends to `out` expressions equivalent to `e` when evaluated at
  /// `at`. Must not propose `e` itself.
  virtual void Propose(PeerId at, const ExprPtr& e, RewriteContext* ctx,
                       std::vector<ExprPtr>* out) const = 0;
};

/// The paper's rule set:
///  - delegation (rules (10)/(14)/(15)): evaluate elsewhere via EvalAt
///  - selection pushdown (rule (11) + Example 1)
///  - intermediary stop removal / insertion (rule (12))
///  - transfer caching (rule (13))
///  - pushing queries over service calls (rule (16))
std::vector<std::unique_ptr<RewriteRule>> StandardRuleSet();

/// Individual constructors (used by focused tests and ablation benches).
std::unique_ptr<RewriteRule> MakeDelegationRule();
std::unique_ptr<RewriteRule> MakeSelectionPushdownRule();
std::unique_ptr<RewriteRule> MakeIntermediaryStopRule();
std::unique_ptr<RewriteRule> MakeTransferCacheRule();
std::unique_ptr<RewriteRule> MakePushQueryOverCallRule();

}  // namespace axml

#endif  // AXML_OPT_REWRITE_H_
