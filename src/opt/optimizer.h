// Cost-based rewrite search (§3.3's "optimization methodology").
//
// The paper supplies equivalence rules and a cost intuition; this module
// closes the loop: starting from the direct expression (the "fixed
// simple evaluation strategy" of original AXML), a beam search applies
// the rules at every position, estimates each candidate with the cost
// model, and keeps the cheapest. The search is deterministic.

#ifndef AXML_OPT_OPTIMIZER_H_
#define AXML_OPT_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "opt/cost_model.h"
#include "opt/rewrite.h"

namespace axml {

struct OptimizerOptions {
  CostWeights weights;
  /// Cost plans as if they will run with EvalOptions::use_replica_cache
  /// (a fresh cached remote doc read is free). Leave false when plans
  /// execute on a default evaluator — the rule-13 rewrite then makes
  /// cached reads explicit instead. See CostModel.
  bool assume_replica_cache = false;
  /// Candidates kept between rounds.
  size_t beam_width = 8;
  /// Maximum rewrite rounds (each round rewrites one more position).
  int max_rounds = 4;
  /// Hard cap on candidates generated per search.
  size_t max_candidates = 2048;
};

/// The chosen strategy and how it was found.
struct OptimizedPlan {
  ExprPtr expr;
  CostEstimate cost;
  /// Rule names applied along the winning chain, outermost first.
  std::vector<std::string> rules_applied;

  std::string ToString() const;
};

/// Rule-driven, cost-based expression optimizer.
class Optimizer {
 public:
  /// Uses StandardRuleSet().
  explicit Optimizer(AxmlSystem* sys, OptimizerOptions options = {});
  /// Uses a caller-provided rule set (ablation studies, custom rules).
  Optimizer(AxmlSystem* sys, OptimizerOptions options,
            std::vector<std::unique_ptr<RewriteRule>> rules);

  /// Returns the cheapest equivalent strategy found for eval@at(e)
  /// (possibly `e` itself).
  OptimizedPlan Optimize(PeerId at, const ExprPtr& e);

  /// Candidates generated during the last Optimize call.
  size_t candidates_explored() const { return explored_; }

  const CostModel& cost_model() const { return cost_; }

 private:
  struct Candidate {
    ExprPtr expr;
    CostEstimate cost;
    std::vector<std::string> rules;
  };

  /// All expressions reachable from `e` by rewriting exactly one
  /// position, tagged with the rule that produced them.
  void EnumerateRewrites(PeerId at, const ExprPtr& e,
                         std::vector<std::pair<ExprPtr, const char*>>* out);

  /// Evaluation context of `e`'s i-th child when `e` runs at `at`.
  static PeerId ChildContext(PeerId at, const ExprPtr& e, size_t i);

  AxmlSystem* sys_;
  OptimizerOptions options_;
  CostModel cost_;
  std::vector<std::unique_ptr<RewriteRule>> rules_;
  uint64_t name_counter_ = 0;
  size_t explored_ = 0;
};

}  // namespace axml

#endif  // AXML_OPT_OPTIMIZER_H_
