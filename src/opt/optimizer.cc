#include "opt/optimizer.h"

#include <algorithm>
#include <unordered_set>

#include "common/str_util.h"

namespace axml {

std::string OptimizedPlan::ToString() const {
  std::string s = StrCat("plan: ", expr == nullptr ? "<none>"
                                                   : expr->ToString(),
                         "\ncost: ", cost.ToString(), "\nrules:");
  if (rules_applied.empty()) s += " (direct strategy)";
  for (const auto& r : rules_applied) s += StrCat(" ", r);
  return s;
}

Optimizer::Optimizer(AxmlSystem* sys, OptimizerOptions options)
    : Optimizer(sys, options, StandardRuleSet()) {}

Optimizer::Optimizer(AxmlSystem* sys, OptimizerOptions options,
                     std::vector<std::unique_ptr<RewriteRule>> rules)
    : sys_(sys),
      options_(options),
      cost_(sys, options.assume_replica_cache),
      rules_(std::move(rules)) {}

PeerId Optimizer::ChildContext(PeerId at, const ExprPtr& e, size_t i) {
  (void)i;
  if (e->kind() == Expr::Kind::kEvalAt) return e->eval_where();
  return at;
}

void Optimizer::EnumerateRewrites(
    PeerId at, const ExprPtr& e,
    std::vector<std::pair<ExprPtr, const char*>>* out) {
  RewriteContext rc{sys_, &cost_, &name_counter_};
  // Rewrites at the root.
  for (const auto& rule : rules_) {
    std::vector<ExprPtr> proposals;
    rule->Propose(at, e, &rc, &proposals);
    for (auto& p : proposals) {
      out->push_back({std::move(p), rule->name()});
    }
  }
  // Rewrites inside one child.
  const auto& children = e->children();
  for (size_t i = 0; i < children.size(); ++i) {
    std::vector<std::pair<ExprPtr, const char*>> inner;
    EnumerateRewrites(ChildContext(at, e, i), children[i], &inner);
    for (auto& [alt, rule] : inner) {
      std::vector<ExprPtr> new_children = children;
      new_children[i] = std::move(alt);
      out->push_back({e->WithChildren(std::move(new_children)), rule});
    }
  }
}

OptimizedPlan Optimizer::Optimize(PeerId at, const ExprPtr& e) {
  explored_ = 0;
  // One memo scope spans the whole search: WithChildren aliases the
  // unchanged subtrees, so across a round's candidates each shared
  // (peer, node) pair is costed once — without this, every Estimate
  // re-walks the full expression and search time grows superlinearly
  // with expression size (EXP-9, bench_optimizer).
  CostModel::MemoScope memo(&cost_);
  Candidate seed{e, cost_.Estimate(at, e), {}};
  std::vector<Candidate> beam{seed};
  Candidate best = seed;
  std::unordered_set<std::string> seen{e->ToString()};

  for (int round = 0; round < options_.max_rounds; ++round) {
    std::vector<Candidate> next;
    bool improved = false;
    for (const Candidate& c : beam) {
      if (explored_ >= options_.max_candidates) break;
      std::vector<std::pair<ExprPtr, const char*>> alts;
      EnumerateRewrites(at, c.expr, &alts);
      for (auto& [alt, rule] : alts) {
        if (explored_ >= options_.max_candidates) break;
        std::string key = alt->ToString();
        if (!seen.insert(key).second) continue;
        ++explored_;
        Candidate cand{alt, cost_.Estimate(at, alt), c.rules};
        cand.rules.push_back(rule);
        if (cand.cost.Scalar(options_.weights) <
            best.cost.Scalar(options_.weights)) {
          best = cand;
          improved = true;
        }
        next.push_back(std::move(cand));
      }
    }
    if (next.empty()) break;
    std::sort(next.begin(), next.end(),
              [this](const Candidate& a, const Candidate& b) {
                return a.cost.Scalar(options_.weights) <
                       b.cost.Scalar(options_.weights);
              });
    if (next.size() > options_.beam_width) {
      next.resize(options_.beam_width);
    }
    beam = std::move(next);
    if (!improved && round > 0) break;
  }

  OptimizedPlan plan;
  plan.expr = best.expr;
  plan.cost = best.cost;
  plan.rules_applied = best.rules;
  return plan;
}

}  // namespace axml
