// Implementations of the §3.3 equivalence rules as rewrite rules.

#include <algorithm>

#include "common/str_util.h"
#include "opt/rewrite.h"
#include "query/decompose.h"

namespace axml {

std::string RewriteContext::FreshName(const char* prefix) const {
  uint64_t n = name_counter == nullptr ? 0 : (*name_counter)++;
  return StrCat(prefix, n);
}

namespace {

/// Rule (10) / (14) / (15): evaluating an expression does not depend on
/// the peer it is evaluated at; ship the expression to another peer and
/// the results back. Rule (10) is the query-application instance
/// ("query delegation"); (14) generalizes to any expression; (15) to
/// sc-rooted trees — whose results, when a forward list is present, do
/// not even come back ("there is no need to ship results back to p1,
/// since results are sent directly to the locations in fwList").
class DelegationRule : public RewriteRule {
 public:
  const char* name() const override { return "delegation(10/14/15)"; }

  void Propose(PeerId at, const ExprPtr& e, RewriteContext* ctx,
               std::vector<ExprPtr>* out) const override {
    // Only delegate computations (query applications and service-call
    // trees) — delegating plain data moves is rule (12)'s job.
    if (e->kind() != Expr::Kind::kApply &&
        e->kind() != Expr::Kind::kCall) {
      return;
    }
    for (uint32_t i = 0; i < ctx->sys->peer_count(); ++i) {
      PeerId p2(i);
      if (p2 == at) continue;
      out->push_back(Expr::EvalAt(p2, e));
    }
    // Unwrap an existing delegation (the ≡ works both ways).
    if (e->kind() == Expr::Kind::kEvalAt) {
      out->push_back(e->body());
    }
  }
};

/// Rule (11) + Example 1: decompose q ≡ q1(q3) where q3 carries a
/// pushed-down selection, and delegate q3 to the peer owning the data.
/// "The last eval above delegates the execution of q3 (which applies the
/// selection) to p2, and only ships to p the resulting data set,
/// typically smaller."
class SelectionPushdownRule : public RewriteRule {
 public:
  const char* name() const override { return "pushdown(11/Ex.1)"; }

  void Propose(PeerId at, const ExprPtr& e, RewriteContext*,
               std::vector<ExprPtr>* out) const override {
    if (e->kind() != Expr::Kind::kApply) return;
    const Query& q = e->query();
    for (size_t k = 0; k < q.ast().clauses.size(); ++k) {
      std::optional<SelectionSplit> split = SplitSelection(q, k);
      if (!split.has_value()) continue;
      size_t arg_index = static_cast<size_t>(split->input_index);
      if (arg_index >= e->args().size()) continue;
      const ExprPtr& arg = e->args()[arg_index];
      // The filter runs where the data lives.
      PeerId data_peer;
      switch (arg->kind()) {
        case Expr::Kind::kTree:
          data_peer = arg->tree_owner();
          break;
        case Expr::Kind::kDoc:
          if (arg->is_generic_doc()) continue;
          data_peer = arg->doc_peer();
          break;
        default:
          continue;
      }
      // The filter is born of this rewrite; it travels inside the
      // delegated expression (whose serialized form embeds the query
      // text), so it is "defined at" the peer that evaluates it — no
      // separate def-(7) query shipment.
      ExprPtr filtered = Expr::Apply(split->filter, data_peer, {arg});
      if (data_peer != at) {
        filtered = Expr::EvalAt(data_peer, filtered);
      }
      std::vector<ExprPtr> new_args = e->args();
      new_args[arg_index] = filtered;
      out->push_back(
          Expr::Apply(split->remainder, e->query_peer(), new_args));
    }
  }
};

/// Rule (12): "data in transit from p0 to p2 may make an intermediary
/// stop at another peer p1 ... such an intermediary halt may be avoided.
/// While it may seem that rule (12) should always be applied left to
/// right, this is not always true!" Both directions are proposed; the
/// cost model decides.
class IntermediaryStopRule : public RewriteRule {
 public:
  const char* name() const override { return "intermediary(12)"; }

  void Propose(PeerId at, const ExprPtr& e, RewriteContext* ctx,
               std::vector<ExprPtr>* out) const override {
    // Left to right: remove the stop.
    if (e->kind() == Expr::Kind::kEvalAt &&
        (e->body()->kind() == Expr::Kind::kTree ||
         e->body()->kind() == Expr::Kind::kDoc)) {
      out->push_back(e->body());
      return;
    }
    // Right to left: insert a stop at every other peer.
    if (e->kind() == Expr::Kind::kTree || e->kind() == Expr::Kind::kDoc) {
      PeerId owner = e->kind() == Expr::Kind::kTree ? e->tree_owner()
                                                    : e->doc_peer();
      if (!owner.is_concrete()) return;
      for (uint32_t i = 0; i < ctx->sys->peer_count(); ++i) {
        PeerId p1(i);
        if (p1 == at || p1 == owner) continue;
        out->push_back(Expr::EvalAt(p1, e));
      }
    }
  }
};

/// Rule (13): when two subexpressions both transfer the same remote
/// source, materialize it once as a local cache document and read the
/// copy. "This may be worth it if t is large." When the evaluating peer
/// already holds a fresh replica of the source (transfer cache,
/// src/replica/), the materialization step is skipped entirely and every
/// use reads the advertised local copy — the crossover between the two
/// shapes is then left to the cost model, whose transfer estimate for a
/// cached document is 0 bytes on the wire.
class TransferCacheRule : public RewriteRule {
 public:
  const char* name() const override { return "transfer-cache(13)"; }

  void Propose(PeerId at, const ExprPtr& e, RewriteContext* ctx,
               std::vector<ExprPtr>* out) const override {
    if (e->kind() != Expr::Kind::kApply) return;
    // A remote document the evaluating peer holds fresh: read the local
    // copy instead — no install leg, no lost parallelism. The copy is
    // installed under the origin's document name at `at` (replica
    // advertisement), so Doc(name, at) resolves to it. Like every
    // cost-based choice here (doc statistics included), the plan is
    // valid for the Σ it was optimized against: a mutation or eviction
    // between optimize and eval calls for re-optimization, exactly as
    // it would invalidate the paper's hand-materialized rule-13 copy.
    const auto& args = e->args();
    for (size_t i = 0; i < args.size(); ++i) {
      const ExprPtr& a = args[i];
      if (a->kind() != Expr::Kind::kDoc || a->is_generic_doc() ||
          a->doc_peer() == at) {
        continue;
      }
      if (!ctx->sys->replicas().HasFreshInstalled(at, a->doc_peer(),
                                                  a->doc_name())) {
        continue;
      }
      std::vector<ExprPtr> new_args = args;
      for (size_t j = 0; j < new_args.size(); ++j) {
        if (SameSource(a, new_args[j])) {
          new_args[j] = Expr::Doc(a->doc_name(), at);
        }
      }
      out->push_back(
          Expr::Apply(e->query(), e->query_peer(), new_args));
      return;
    }
    // Otherwise: find a pair of identical remote data arguments worth
    // materializing once.
    for (size_t i = 0; i < args.size(); ++i) {
      if (!IsRemoteData(args[i], at)) continue;
      bool shared = false;
      for (size_t j = i + 1; j < args.size(); ++j) {
        if (SameSource(args[i], args[j])) {
          shared = true;
          break;
        }
      }
      if (!shared) continue;
      PeerId owner = args[i]->kind() == Expr::Kind::kTree
                         ? args[i]->tree_owner()
                         : args[i]->doc_peer();
      DocName cache = ctx->FreshName("cache:");
      // Install once: the owner evaluates send(d@at, source) — one
      // transfer; then every use reads the local copy.
      ExprPtr install =
          Expr::EvalAt(owner, Expr::SendAsDoc(cache, at, args[i]));
      std::vector<ExprPtr> new_args = args;
      for (size_t j = 0; j < new_args.size(); ++j) {
        if (SameSource(args[i], new_args[j])) {
          new_args[j] = Expr::Doc(cache, at);
        }
      }
      out->push_back(Expr::Seq(
          install, Expr::Apply(e->query(), e->query_peer(), new_args)));
      return;  // one cache per proposal round is enough
    }
  }

 private:
  static bool IsRemoteData(const ExprPtr& a, PeerId at) {
    if (a->kind() == Expr::Kind::kTree) return a->tree_owner() != at;
    if (a->kind() == Expr::Kind::kDoc) {
      return !a->is_generic_doc() && a->doc_peer() != at;
    }
    return false;
  }
  static bool SameSource(const ExprPtr& a, const ExprPtr& b) {
    if (a->kind() != b->kind()) return false;
    if (a->kind() == Expr::Kind::kTree) {
      return a->tree() == b->tree() && a->tree_owner() == b->tree_owner();
    }
    if (a->kind() == Expr::Kind::kDoc) {
      return a->doc_name() == b->doc_name() &&
             a->doc_peer() == b->doc_peer();
    }
    return false;
  }
};

/// Rule (16): pushing queries over service calls. For a query over the
/// result of a call to a *declarative* service s1@p1 (implemented by
/// q1), ship q to p1 and evaluate q(q1(params)) there; results go
/// straight to the forward list.
class PushQueryOverCallRule : public RewriteRule {
 public:
  const char* name() const override { return "push-over-sc(16)"; }

  void Propose(PeerId at, const ExprPtr& e, RewriteContext* ctx,
               std::vector<ExprPtr>* out) const override {
    if (e->kind() != Expr::Kind::kApply || e->args().size() != 1) return;
    const ExprPtr& call = e->args()[0];
    if (call->kind() != Expr::Kind::kCall || call->is_generic_service()) {
      return;
    }
    PeerId p1 = call->provider();
    const Peer* provider = ctx->sys->peer(p1);
    if (provider == nullptr) return;
    const Service* svc = provider->GetService(call->service());
    if (svc == nullptr || !svc->is_declarative()) return;
    if (p1 == at) return;

    // q(q1(params)) at the provider: the call keeps its parameters but
    // loses its forwards (they now apply to q's results, per the rule's
    // right-hand side send_{p1->fwList}).
    ExprPtr inner_call =
        Expr::Call(p1, call->service(), call->params(), {});
    // The composed query travels inside the delegated expression; see
    // the pushdown rule for why query_peer is the evaluating peer.
    ExprPtr composed = Expr::Apply(e->query(), p1, {inner_call});
    if (call->forwards().empty()) {
      out->push_back(Expr::EvalAt(p1, composed));
    } else {
      out->push_back(Expr::EvalAt(
          p1, Expr::SendToNodes(call->forwards(), composed)));
    }
  }
};

}  // namespace

std::unique_ptr<RewriteRule> MakeDelegationRule() {
  return std::make_unique<DelegationRule>();
}
std::unique_ptr<RewriteRule> MakeSelectionPushdownRule() {
  return std::make_unique<SelectionPushdownRule>();
}
std::unique_ptr<RewriteRule> MakeIntermediaryStopRule() {
  return std::make_unique<IntermediaryStopRule>();
}
std::unique_ptr<RewriteRule> MakeTransferCacheRule() {
  return std::make_unique<TransferCacheRule>();
}
std::unique_ptr<RewriteRule> MakePushQueryOverCallRule() {
  return std::make_unique<PushQueryOverCallRule>();
}

std::vector<std::unique_ptr<RewriteRule>> StandardRuleSet() {
  std::vector<std::unique_ptr<RewriteRule>> rules;
  rules.push_back(MakeSelectionPushdownRule());
  rules.push_back(MakePushQueryOverCallRule());
  rules.push_back(MakeDelegationRule());
  rules.push_back(MakeTransferCacheRule());
  rules.push_back(MakeIntermediaryStopRule());
  return rules;
}

}  // namespace axml
