// Cost model for algebra expressions.
//
// §3.3 motivates every rule with a cost argument ("only ships to p the
// resulting data set, typically smaller", "may be worth it if t is
// large"). To choose among rewrites the optimizer needs estimates of
// (a) how many bytes each subexpression produces, (b) how much of that
// crosses peer boundaries, and (c) how long transfers and computation
// take on the configured topology. This model walks an expression
// bottom-up, propagating a Flow (estimated output volume and its
// location) and accumulating a CostEstimate.
//
// Selectivity estimation uses per-document statistics (xml_stats.h) when
// the input is a concrete document, and textbook default factors
// otherwise (equality 0.1, range 0.33, contains 0.25, exists 0.9 —
// the classic System-R style constants).

#ifndef AXML_OPT_COST_MODEL_H_
#define AXML_OPT_COST_MODEL_H_

#include <map>
#include <string>
#include <utility>

#include "algebra/expr.h"
#include "peer/system.h"
#include "query/query.h"
#include "xml/xml_stats.h"

namespace axml {

/// Scalarization weights: cost = wt * time + wb * remote_bytes.
struct CostWeights {
  double time_weight = 1.0;
  /// Seconds charged per remote byte on top of the modeled link time
  /// (captures monetary / congestion concerns beyond raw latency).
  double byte_weight = 0.0;
};

/// Accumulated cost of one evaluation strategy.
struct CostEstimate {
  /// Estimated virtual seconds until the result stream completes.
  double time_s = 0;
  /// Estimated bytes crossing between distinct peers.
  double remote_bytes = 0;
  /// Estimated messages between distinct peers.
  double remote_messages = 0;

  double Scalar(const CostWeights& w) const {
    return w.time_weight * time_s + w.byte_weight * remote_bytes;
  }
  CostEstimate& operator+=(const CostEstimate& o) {
    time_s += o.time_s;
    remote_bytes += o.remote_bytes;
    remote_messages += o.remote_messages;
    return *this;
  }
  std::string ToString() const;
};

/// Estimated output of a subexpression.
struct Flow {
  double bytes = 0;   ///< total serialized bytes of the result stream
  double trees = 1;   ///< number of trees in the stream
};

/// Estimates evaluation cost against the system's topology, documents
/// and statistics.
///
/// `assume_replica_cache` declares how plans will be *executed*: when
/// true, the evaluator runs with EvalOptions::use_replica_cache and a
/// remote document the reader holds fresh is priced at 0 wire bytes;
/// when false (default), remote reads always pay the transfer — a plan
/// wanting the copy must say so explicitly (the rule-13 rewrite), which
/// keeps the model honest for the default evaluator.
class CostModel {
 public:
  explicit CostModel(AxmlSystem* sys, bool assume_replica_cache = false)
      : sys_(sys), assume_replica_cache_(assume_replica_cache) {}

  /// Cost of eval@at(e).
  CostEstimate Estimate(PeerId at, const ExprPtr& e) const;

  /// Estimated output flow of eval@at(e) (at the consumer).
  Flow EstimateFlow(PeerId at, const ExprPtr& e) const;

  /// Fraction of input volume surviving `q`'s where clause and
  /// projection; `input_stats` may be null.
  double EstimateQuerySelectivity(const Query& q,
                                  const TreeStats* input_stats) const;

  /// Cached statistics of a concrete document (computed on first use).
  const TreeStats* DocStats(PeerId p, const DocName& name) const;

  /// Total serialized bytes of the doc(...) sources `q` reads on
  /// `eval_peer` (0 for unknown documents). Queries draw volume from
  /// their doc() clauses as well as from their inputs; both must be
  /// charged.
  double DocSourceBytes(const Query& q, PeerId eval_peer) const;

  /// Transfer estimate for `bytes` on from->to (0 when from==to).
  CostEstimate TransferCost(PeerId from, PeerId to, double bytes) const;

  /// Modeled seconds to re-pull `bytes` of owner's content to `reader` —
  /// what evicting that copy would cost to undo. The cost-aware eviction
  /// policy scores victims with this (the ReplicaManager wires it into
  /// each TransferCache as its RefetchCostFn); 0 when reader == owner.
  double RefetchCost(PeerId reader, PeerId owner, uint64_t bytes) const;

  /// Cache-state-aware transfer estimate for reading document
  /// `name`@owner from `reader`: under assume_replica_cache, a fresh
  /// cached copy at the reader makes the read local — 0 bytes on the
  /// wire (the replica subsystem's whole point; rule (13) becomes a
  /// cost-based decision through this). An eager-refresh shipment in
  /// flight counts as fresh too: the mutation that displaced the copy
  /// already paid for its replacement.
  CostEstimate DocTransferCost(PeerId reader, PeerId owner,
                               const DocName& name, double bytes) const;

  bool assume_replica_cache() const { return assume_replica_cache_; }

  /// Opens a memoization scope: while at least one scope is live, Walk
  /// results are cached by (evaluation peer, expression node) and
  /// reused. Valid only while system state (documents, replica caches,
  /// topology) is unchanged — which holds for the duration of one
  /// optimizer search, where beam candidates share subexpression nodes
  /// and would otherwise re-walk each shared subtree once per
  /// candidate. Scopes nest; the cache drops when the last one closes.
  class MemoScope {
   public:
    explicit MemoScope(const CostModel* model) : model_(model) {
      ++model_->memo_depth_;
    }
    ~MemoScope() {
      if (--model_->memo_depth_ == 0) model_->walk_memo_.clear();
    }
    MemoScope(const MemoScope&) = delete;
    MemoScope& operator=(const MemoScope&) = delete;

   private:
    const CostModel* model_;
  };

 private:
  struct Visit {
    Flow flow;
    CostEstimate cost;
  };
  Visit Walk(PeerId at, const ExprPtr& e) const;
  Visit WalkUncached(PeerId at, const ExprPtr& e) const;

  AxmlSystem* sys_;
  bool assume_replica_cache_;
  mutable std::map<std::string, TreeStats> stats_cache_;
  /// Live only inside a MemoScope; keyed by the shared expression node —
  /// candidates produced by WithChildren alias unchanged subtrees, so a
  /// hit is exact, not structural.
  mutable std::map<std::pair<PeerId, const Expr*>, Visit> walk_memo_;
  mutable int memo_depth_ = 0;
};

}  // namespace axml

#endif  // AXML_OPT_COST_MODEL_H_
