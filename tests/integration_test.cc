// End-to-end integration tests: full scenarios over the whole stack,
// including the paper's Example 1 (pushing selections) with measured
// transfer volumes.

#include <gtest/gtest.h>

#include <memory>

#include "algebra/evaluator.h"
#include "common/rng.h"
#include "opt/optimizer.h"
#include "test_util.h"
#include "xml/xml_parser.h"

namespace axml {
namespace {

// Example 1 of the paper, executed: eval@p(q(t@p2)) vs the rewritten
// strategy that delegates the selection σ (q3) to p2 and ships only the
// filtered set. Both must produce the same answers; the rewritten one
// must move fewer bytes.
TEST(Example1Test, PushingSelectionsShipsLessAndAgrees) {
  auto build = [](PeerId* p, PeerId* p2) {
    auto sys =
        std::make_unique<AxmlSystem>(Topology(LinkParams{0.020, 5.0e5}));
    *p = sys->AddPeer("p");
    *p2 = sys->AddPeer("p2");
    Rng rng(2006);
    TreePtr t = testing::MakeCatalog(500, sys->peer(*p2)->gen(), &rng, 24);
    EXPECT_TRUE(sys->InstallDocument(*p2, "t", t).ok());
    return sys;
  };

  Query q = Query::Parse(
                "for $b in input(0)/catalog/product "
                "where $b/price < 100 "
                "return <res>{ $b/name, $b/price }</res>")
                .value();

  // Naive: definition (7) — ship the whole tree t to p, evaluate there.
  PeerId p, p2;
  auto sys1 = build(&p, &p2);
  Evaluator ev1(sys1.get());
  auto naive = ev1.Eval(p, Expr::Apply(q, p, {Expr::Doc("t", p2)}));
  ASSERT_TRUE(naive.ok()) << naive.status();
  uint64_t naive_bytes = sys1->network().stats().Pair(p2, p).bytes;

  // Optimized: the optimizer should discover the Example-1 strategy.
  PeerId pb, p2b;
  auto sys2 = build(&pb, &p2b);
  Optimizer opt(sys2.get());
  OptimizedPlan plan =
      opt.Optimize(pb, Expr::Apply(q, pb, {Expr::Doc("t", p2b)}));
  Evaluator ev2(sys2.get());
  auto optimized = ev2.Eval(pb, plan.expr);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  uint64_t opt_bytes = sys2->network().stats().Pair(p2b, pb).bytes;

  EXPECT_TRUE(testing::ResultsEqual(naive->results, optimized->results));
  EXPECT_GT(naive->results.size(), 0u);
  // "only ships to p the resulting data set, typically smaller"
  EXPECT_LT(opt_bytes, naive_bytes / 2) << plan.ToString();
  EXPECT_LT(optimized->Duration(), naive->Duration());

}

// A continuous-subscription scenario: a feed service on the publisher,
// sc nodes with forward lists delivering updates straight into
// subscriber mailboxes (no detour through the caller).
TEST(SubscriptionTest, ForwardListsDeliverToAllSubscribers) {
  AxmlSystem sys(Topology(LinkParams{0.010, 1.0e6}));
  PeerId pub = sys.AddPeer("publisher");
  PeerId s1 = sys.AddPeer("sub1");
  PeerId s2 = sys.AddPeer("sub2");
  PeerId broker = sys.AddPeer("broker");

  ASSERT_TRUE(sys.InstallDocumentXml(
      pub, "stories",
      "<stories><story><cat>tech</cat><t>a</t></story>"
      "<story><cat>sports</cat><t>b</t></story>"
      "<story><cat>tech</cat><t>c</t></story></stories>").ok());
  Query feed = Query::Parse(
                   "for $s in doc(\"stories\")/stories/story "
                   "for $k in input(0) "
                   "where $s/cat = $k/topic return $s")
                   .value();
  ASSERT_TRUE(
      sys.InstallService(pub, Service::Declarative("feed", feed)).ok());

  TreePtr box1 = TreeNode::Element("inbox", sys.peer(s1)->gen());
  TreePtr box2 = TreeNode::Element("inbox", sys.peer(s2)->gen());
  ASSERT_TRUE(sys.InstallDocument(s1, "inbox", box1).ok());
  ASSERT_TRUE(sys.InstallDocument(s2, "inbox", box2).ok());

  // The broker subscribes both mailboxes to the tech feed.
  TreePtr topic = ParseXml("<k><topic>tech</topic></k>",
                           sys.peer(broker)->gen())
                      .value();
  Evaluator ev(&sys);
  auto out = ev.Eval(
      broker, Expr::Call(pub, "feed", {Expr::Tree(topic, broker)},
                         {NodeLocation{box1->id(), s1},
                          NodeLocation{box2->id(), s2}}));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->results.empty());  // broker got nothing itself
  EXPECT_EQ(box1->child_count(), 2u);  // both tech stories
  EXPECT_EQ(box2->child_count(), 2u);
  // Nothing was shipped publisher -> broker (rule (15)'s point).
  EXPECT_EQ(sys.network().stats().Pair(pub, broker).bytes, 0u);
}

// Software-distribution flavor (the paper's full-version application):
// package metadata replicated on mirrors as a generic document; a client
// resolves d@any, the pick policy selects the near mirror, and
// dependency resolution runs as a delegated query on the mirror.
TEST(SoftwareDistributionTest, GenericMirrorsAndDelegatedResolution) {
  AxmlSystem sys(Topology(LinkParams{0.080, 2.0e5}));  // slow WAN
  PeerId client = sys.AddPeer("client");
  PeerId mirror_eu = sys.AddPeer("mirror_eu");
  PeerId mirror_us = sys.AddPeer("mirror_us");
  // The EU mirror is close to the client.
  sys.network().mutable_topology()->SetLinkSymmetric(
      client, mirror_eu, LinkParams{0.005, 5.0e6});

  NodeIdGen tmp;
  Rng rng(77);
  TreePtr packages = TreeNode::Element("packages", &tmp);
  for (int i = 0; i < 60; ++i) {
    TreePtr pkg = TreeNode::Element("pkg", &tmp);
    pkg->AddChild(MakeTextElement("name", StrCat("lib", i), &tmp));
    pkg->AddChild(MakeTextElement("size", std::to_string(i * 10), &tmp));
    pkg->AddChild(MakeTextElement(
        "depends", StrCat("lib", (i + 1) % 60), &tmp));
    packages->AddChild(pkg);
  }
  ASSERT_TRUE(sys.InstallReplicatedDocument(
      "epackages", "packages", packages, {mirror_eu, mirror_us}).ok());

  // Resolve the generic document: the near mirror must serve it.
  Evaluator ev(&sys);
  Query small = Query::Parse(
                    "for $p in input(0)/packages/pkg "
                    "where $p/size < 100 return <hit>{ $p/name }</hit>")
                    .value();
  auto out =
      ev.Eval(client, Expr::Apply(small, client,
                                  {Expr::GenericDoc("epackages")}));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->results.size(), 10u);  // sizes 0..90
  EXPECT_GT(sys.network().stats().Pair(mirror_eu, client).bytes, 0u);
  EXPECT_EQ(sys.network().stats().Pair(mirror_us, client).bytes, 0u);

  // Delegating the query to the mirror beats pulling the whole doc.
  AxmlSystem sys2(Topology(LinkParams{0.080, 2.0e5}));
  PeerId c2 = sys2.AddPeer("client");
  PeerId m2 = sys2.AddPeer("mirror");
  ASSERT_TRUE(sys2.InstallDocument(
      m2, "packages", packages->Clone(sys2.peer(m2)->gen())).ok());
  Evaluator ev2(&sys2);
  auto naive =
      ev2.Eval(c2, Expr::Apply(small, c2, {Expr::Doc("packages", m2)}));
  ASSERT_TRUE(naive.ok());
  uint64_t naive_bytes = sys2.network().stats().remote_bytes();
  sys2.network().mutable_stats()->Reset();
  auto delegated = ev2.Eval(
      c2, Expr::EvalAt(m2, Expr::Apply(small, c2,
                                       {Expr::Doc("packages", m2)})));
  ASSERT_TRUE(delegated.ok());
  uint64_t delegated_bytes = sys2.network().stats().remote_bytes();
  EXPECT_TRUE(
      testing::ResultsEqual(naive->results, delegated->results));
  EXPECT_LT(delegated_bytes, naive_bytes);
}

// Rule (12) both ways: a fast relay makes the intermediary stop *win*;
// a slow relay makes it lose. "While it may seem that rule (12) should
// always be applied left to right, this is not always true!"
TEST(IntermediaryStopTest, EachDirectionWinsSomewhere) {
  auto run = [](LinkParams direct, LinkParams to_relay,
                LinkParams from_relay, bool via_relay) {
    AxmlSystem sys{Topology(direct)};
    PeerId p0 = sys.AddPeer("src");
    PeerId p1 = sys.AddPeer("relay");
    PeerId p2 = sys.AddPeer("dst");
    sys.network().mutable_topology()->SetLinkSymmetric(p0, p1, to_relay);
    sys.network().mutable_topology()->SetLinkSymmetric(p1, p2,
                                                       from_relay);
    Rng rng(5);
    TreePtr t = testing::MakeCatalog(100, sys.peer(p0)->gen(), &rng);
    EXPECT_TRUE(sys.InstallDocument(p0, "t", t).ok());
    ExprPtr src = Expr::Doc("t", p0);
    ExprPtr e = via_relay ? Expr::EvalAt(p1, src) : src;
    Evaluator ev(&sys);
    auto out = ev.Eval(p2, e);
    EXPECT_TRUE(out.ok()) << out.status();
    return out->Duration();
  };

  // Topology A: direct link is awful, relay links are fast.
  LinkParams bad{0.5, 1.0e4}, fast{0.001, 1.0e8};
  double direct_a = run(bad, fast, fast, false);
  double relay_a = run(bad, fast, fast, true);
  EXPECT_LT(relay_a, direct_a);  // right-to-left (12) wins

  // Topology B: uniform decent links; the stop only adds latency.
  LinkParams ok{0.010, 1.0e6};
  double direct_b = run(ok, ok, ok, false);
  double relay_b = run(ok, ok, ok, true);
  EXPECT_LT(direct_b, relay_b);  // left-to-right (12) wins
}

// Transfer caching (rule 13): with a large shared argument, caching
// halves the volume moved from the data peer.
TEST(TransferCacheTest, CachingHalvesTransfers) {
  auto build = [](AxmlSystem* sys, PeerId* p0, PeerId* p1) {
    *p0 = sys->AddPeer("p0");
    *p1 = sys->AddPeer("p1");
    Rng rng(13);
    TreePtr t = testing::MakeCatalog(300, sys->peer(*p1)->gen(), &rng);
    EXPECT_TRUE(sys->InstallDocument(*p1, "big", t).ok());
  };
  Query q = Query::Parse(
                "for $a in input(0)/catalog/product "
                "for $b in input(1)/catalog/product "
                "where $a/name = $b/name and $a/price < 50 "
                "return <m>{ $a/name }</m>")
                .value();

  AxmlSystem sys1(Topology(LinkParams{0.010, 1.0e6}));
  PeerId p0, p1;
  build(&sys1, &p0, &p1);
  ExprPtr shared1 = Expr::Doc("big", p1);
  Evaluator ev1(&sys1);
  auto naive = ev1.Eval(p0, Expr::Apply(q, p0, {shared1, shared1}));
  ASSERT_TRUE(naive.ok()) << naive.status();
  uint64_t naive_bytes = sys1.network().stats().Pair(p1, p0).bytes;

  AxmlSystem sys2(Topology(LinkParams{0.010, 1.0e6}));
  PeerId q0, q1;
  build(&sys2, &q0, &q1);
  ExprPtr shared2 = Expr::Doc("big", q1);
  ExprPtr install =
      Expr::EvalAt(q1, Expr::SendAsDoc("cache", q0, shared2));
  ExprPtr use = Expr::Apply(
      q, q0, {Expr::Doc("cache", q0), Expr::Doc("cache", q0)});
  Evaluator ev2(&sys2);
  auto cached = ev2.Eval(q0, Expr::Seq(install, use));
  ASSERT_TRUE(cached.ok()) << cached.status();
  uint64_t cached_bytes = sys2.network().stats().Pair(q1, q0).bytes;

  EXPECT_TRUE(testing::ResultsEqual(naive->results, cached->results));
  EXPECT_LT(cached_bytes, naive_bytes * 6 / 10);  // ~half
}

// Catalog structures answer the same lookups at different costs
// (the §2 "impact of various network structures").
TEST(CatalogAblationTest, StructuresTradeMessagesForDelay) {
  AxmlSystem sys(Topology(LinkParams{0.010, 1.0e6}));
  std::vector<PeerId> peers;
  for (int i = 0; i < 16; ++i) {
    peers.push_back(sys.AddPeer(StrCat("n", i)));
  }
  for (int i = 1; i < 16; ++i) {  // star neighbor graph for flooding
    sys.network().mutable_topology()->AddNeighborEdge(peers[0],
                                                      peers[i]);
  }
  NodeIdGen tmp;
  TreePtr doc = ParseXml("<d/>", &tmp).value();
  ASSERT_TRUE(sys.InstallReplicatedDocument("ed", "d", doc,
                                            {peers[7]}).ok());

  auto lookup_with = [&](std::unique_ptr<Catalog> cat) {
    cat->set_peer_count(16);
    cat->Register(ResourceKind::kDocument, "d", peers[7]);
    return cat->LookupNow(ResourceKind::kDocument, "d", peers[3],
                          sys.network());
  };
  LookupResult central =
      lookup_with(std::make_unique<CentralCatalog>(peers[0]));
  LookupResult dht = lookup_with(std::make_unique<DhtCatalog>());
  LookupResult flood = lookup_with(std::make_unique<FloodCatalog>(4));
  ASSERT_EQ(central.holders.size(), 1u);
  ASSERT_EQ(dht.holders.size(), 1u);
  ASSERT_EQ(flood.holders.size(), 1u);
  // Central is cheapest in messages; flooding is the most expensive.
  EXPECT_LT(central.messages, dht.messages);
  EXPECT_LT(dht.messages, flood.messages);
}

}  // namespace
}  // namespace axml
