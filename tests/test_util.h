// Shared helpers for the axml test suite.

#ifndef AXML_TESTS_TEST_UTIL_H_
#define AXML_TESTS_TEST_UTIL_H_

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "xml/tree.h"
#include "xml/tree_equal.h"

namespace axml {
namespace testing {

/// Seed for randomized tests: the AXML_TEST_SEED environment variable
/// when set (CI pins it across a seed matrix so a flake reproduces as
/// `AXML_TEST_SEED=<n> ctest -R <test>`), otherwise `fallback`.
inline uint64_t TestSeed(uint64_t fallback) {
  const char* s = std::getenv("AXML_TEST_SEED");
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(s, &end, 10);
  return end == s ? fallback : static_cast<uint64_t>(parsed);
}

/// Builds a product-catalog document:
///   <catalog> <product><name>item<i></name><price>P</price>
///             <category>C</category><desc>...</desc></product>* </catalog>
/// Prices are uniform in [0, 1000); categories cycle c0..c9. The shape
/// mirrors the data-intensive workloads the paper's applications imply.
inline TreePtr MakeCatalog(size_t n_products, NodeIdGen* gen, Rng* rng,
                           size_t desc_bytes = 32) {
  TreePtr catalog = TreeNode::Element("catalog", gen);
  for (size_t i = 0; i < n_products; ++i) {
    TreePtr prod = TreeNode::Element("product", gen);
    prod->AddChild(MakeTextElement("name", StrCat("item", i), gen));
    prod->AddChild(MakeTextElement(
        "price", std::to_string(rng->Uniform(1000)), gen));
    prod->AddChild(
        MakeTextElement("category", StrCat("c", i % 10), gen));
    if (desc_bytes > 0) {
      prod->AddChild(
          MakeTextElement("desc", rng->Identifier(desc_bytes), gen));
    }
    catalog->AddChild(std::move(prod));
  }
  return catalog;
}

/// A random labeled tree with `n` elements, for fuzz-ish round trips.
inline TreePtr MakeRandomTree(size_t n, NodeIdGen* gen, Rng* rng) {
  static const char* kLabels[] = {"a", "b", "c", "item", "node", "x"};
  std::vector<TreePtr> pool;
  pool.push_back(TreeNode::Element("root", gen));
  for (size_t i = 1; i < n; ++i) {
    TreePtr parent = pool[rng->Index(pool.size())];
    TreePtr child = TreeNode::Element(kLabels[rng->Index(6)], gen);
    if (rng->Bernoulli(0.4)) {
      child->AddChild(TreeNode::Text(rng->Identifier(6)));
    }
    parent->AddChild(child);
    pool.push_back(child);
  }
  return pool[0];
}

/// Multiset equality of two result streams under unordered tree
/// equality.
inline bool ResultsEqual(const std::vector<TreePtr>& a,
                         const std::vector<TreePtr>& b) {
  if (a.size() != b.size()) return false;
  std::vector<std::string> ca, cb;
  for (const auto& t : a) ca.push_back(CanonicalForm(*t));
  for (const auto& t : b) cb.push_back(CanonicalForm(*t));
  std::sort(ca.begin(), ca.end());
  std::sort(cb.begin(), cb.end());
  return ca == cb;
}

}  // namespace testing
}  // namespace axml

#endif  // AXML_TESTS_TEST_UTIL_H_
