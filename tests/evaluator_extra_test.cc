// Second-wave evaluator tests: composition depth, streaming topology
// effects, pick-policy plumbing, and failure injection beyond the basic
// undefined cases.

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "algebra/expr_xml.h"
#include "test_util.h"
#include "xml/tree_equal.h"
#include "xml/xml_parser.h"

namespace axml {
namespace {

class EvalExtraTest : public ::testing::Test {
 protected:
  EvalExtraTest() : sys_(Topology(LinkParams{0.010, 1.0e6})) {
    p0_ = sys_.AddPeer("p0");
    p1_ = sys_.AddPeer("p1");
    p2_ = sys_.AddPeer("p2");
    p3_ = sys_.AddPeer("p3");
  }
  TreePtr Parse(PeerId p, const std::string& xml) {
    return ParseXml(xml, sys_.peer(p)->gen()).value();
  }
  AxmlSystem sys_;
  PeerId p0_, p1_, p2_, p3_;
};

// --- Deep composition ---

TEST_F(EvalExtraTest, ChainedEvalAtVisitsEveryPeer) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p3_, "d", "<r><i/></r>").ok());
  // p0 asks p1 to ask p2 to fetch d@p3.
  ExprPtr e = Expr::EvalAt(
      p1_, Expr::EvalAt(p2_, Expr::Doc("d", p3_)));
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, e);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 1u);
  // The data traveled p3 -> p2 -> p1 -> p0.
  EXPECT_GT(sys_.network().stats().Pair(p3_, p2_).bytes, 0u);
  EXPECT_GT(sys_.network().stats().Pair(p2_, p1_).bytes, 0u);
  EXPECT_GT(sys_.network().stats().Pair(p1_, p0_).bytes, 0u);
  EXPECT_EQ(sys_.network().stats().Pair(p3_, p0_).bytes, 0u);
}

TEST_F(EvalExtraTest, NestedApplyPipelines) {
  ASSERT_TRUE(sys_.InstallDocumentXml(
      p0_, "d", "<r><i><v>1</v></i><i><v>5</v></i><i><v>9</v></i></r>")
                  .ok());
  Query unnest = Query::Parse("for $x in input(0)//i return $x").value();
  Query filter =
      Query::Parse("for $x in input(0) where $x/v > 3 return $x").value();
  Query wrap =
      Query::Parse("for $x in input(0) return <w>{ $x/v }</w>").value();
  ExprPtr e = Expr::Apply(
      wrap, p0_,
      {Expr::Apply(filter, p0_,
                   {Expr::Apply(unnest, p0_, {Expr::Doc("d", p0_)})})});
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, e);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->results.size(), 2u);
}

TEST_F(EvalExtraTest, SeqChainsThreeStages) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p0_, "src", "<r><i>1</i></r>").ok());
  Query id = Query::Identity();
  // Copy src->a, then a->b, then read b.
  ExprPtr step1 = Expr::SendAsDoc("a", p0_, Expr::Doc("src", p0_));
  ExprPtr step2 = Expr::SendAsDoc("b", p0_, Expr::Doc("a", p0_));
  ExprPtr read = Expr::Apply(id, p0_, {Expr::Doc("b", p0_)});
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Seq(step1, Expr::Seq(step2, read)));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 1u);
  EXPECT_TRUE(sys_.peer(p0_)->HasDocument("a"));
  EXPECT_TRUE(sys_.peer(p0_)->HasDocument("b"));
}

TEST_F(EvalExtraTest, ApplyOverGenericDoc) {
  NodeIdGen tmp;
  TreePtr content =
      ParseXml("<r><i><v>1</v></i><i><v>9</v></i></r>", &tmp).value();
  ASSERT_TRUE(sys_.InstallReplicatedDocument("ed", "d", content,
                                             {p1_, p2_}).ok());
  Query q = Query::Parse(
                "for $x in input(0)//i where $x/v > 3 return $x")
                .value();
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Apply(q, p0_, {Expr::GenericDoc("ed")}));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->results.size(), 1u);
}

TEST_F(EvalExtraTest, ServiceParameterComputedByQuery) {
  Query echo = Query::Parse("for $x in input(0) return $x").value();
  ASSERT_TRUE(
      sys_.InstallService(p1_, Service::Declarative("echo", echo)).ok());
  ASSERT_TRUE(sys_.InstallDocumentXml(
      p0_, "d", "<r><pick>me</pick><skip>no</skip></r>").ok());
  Query sel = Query::Parse("for $x in input(0)/r/pick return $x").value();
  // The call's parameter is itself a query application.
  ExprPtr e = Expr::Call(
      p1_, "echo", {Expr::Apply(sel, p0_, {Expr::Doc("d", p0_)})});
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, e);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 1u);
  EXPECT_EQ(out->results[0]->StringValue(), "me");
}

// --- Streams and accumulation ---

TEST_F(EvalExtraTest, InboxAccumulatesAcrossSends) {
  Evaluator ev(&sys_);
  for (int i = 0; i < 3; ++i) {
    auto out = ev.Eval(
        p0_, Expr::SendToPeer(
                 p1_, Expr::Tree(Parse(p0_, "<gift/>"), p0_)));
    ASSERT_TRUE(out.ok());
  }
  TreePtr inbox = sys_.peer(p1_)->GetDocument("axml:inbox");
  ASSERT_NE(inbox, nullptr);
  EXPECT_EQ(inbox->child_count(), 3u);
}

TEST_F(EvalExtraTest, SendAsDocCollisionAppendsToExisting) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p1_, "existing", "<old/>").ok());
  Evaluator ev(&sys_);
  auto out = ev.Eval(
      p0_, Expr::SendAsDoc("existing", p1_,
                           Expr::Tree(Parse(p0_, "<new/>"), p0_)));
  ASSERT_TRUE(out.ok()) << out.status();
  TreePtr doc = sys_.peer(p1_)->GetDocument("existing");
  // Stream accumulation under the existing root (§3.2 (i)).
  EXPECT_EQ(doc->label_text(), "old");
  ASSERT_EQ(doc->child_count(), 1u);
  EXPECT_EQ(doc->child(0)->label_text(), "new");
}

TEST_F(EvalExtraTest, FifoLinkOrdersServiceResponses) {
  // A service streaming many results over one link: responses arrive in
  // emission order (the per-link FIFO).
  Query burst = Query::Parse("for $x in input(0)/r/i return $x").value();
  ASSERT_TRUE(
      sys_.InstallService(p1_, Service::Declarative("burst", burst)).ok());
  std::string xml = "<r>";
  for (int i = 0; i < 10; ++i) {
    xml += "<i>" + std::to_string(i) + "</i>";
  }
  xml += "</r>";
  Evaluator ev(&sys_);
  auto out = ev.Eval(
      p0_, Expr::Call(p1_, "burst", {Expr::Tree(Parse(p0_, xml), p0_)}));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out->results[static_cast<size_t>(i)]->StringValue(),
              std::to_string(i));
  }
}

TEST_F(EvalExtraTest, PickPolicyOptionIsHonored) {
  NodeIdGen tmp;
  TreePtr content = ParseXml("<d/>", &tmp).value();
  ASSERT_TRUE(sys_.InstallReplicatedDocument("ed", "d", content,
                                             {p1_, p2_, p3_}).ok());
  EvalOptions opts;
  opts.pick_policy = PickPolicy::kFirst;
  opts.charge_discovery = false;
  Evaluator ev(&sys_, opts);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ev.Eval(p0_, Expr::GenericDoc("ed")).ok());
  }
  // kFirst always picks the first registered member (p1).
  EXPECT_EQ(sys_.generics().PickCount(p1_), 4u);
  EXPECT_EQ(sys_.generics().PickCount(p2_), 0u);
}

TEST_F(EvalExtraTest, EvaluatorIsReusableAcrossEvals) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p0_, "d", "<r><i/></r>").ok());
  Evaluator ev(&sys_);
  Query q = Query::Parse("for $x in input(0)//i return $x").value();
  ExprPtr e = Expr::Apply(q, p0_, {Expr::Doc("d", p0_)});
  auto a = ev.Eval(p0_, e);
  auto b = ev.Eval(p0_, e);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->results.size(), b->results.size());
  // Virtual time advances monotonically across evaluations.
  EXPECT_GE(b->start_time, a->completion_time);
}

// --- Failure injection ---

TEST_F(EvalExtraTest, DeployRejectsBadArguments) {
  Evaluator ev(&sys_);
  EXPECT_EQ(ev.Deploy(PeerId(42), Expr::Doc("d", p0_), [](TreePtr) {})
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ev.Deploy(p0_, nullptr, [](TreePtr) {}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EvalExtraTest, ForwardToMissingNodeSurfacesError) {
  Query echo = Query::Parse("for $x in input(0) return $x").value();
  ASSERT_TRUE(
      sys_.InstallService(p1_, Service::Declarative("echo", echo)).ok());
  NodeIdGen bogus(p2_);
  Evaluator ev(&sys_);
  auto out = ev.Eval(
      p0_, Expr::Call(p1_, "echo",
                      {Expr::Tree(Parse(p0_, "<m/>"), p0_)},
                      {NodeLocation{bogus.Next(), p2_}}));
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(EvalExtraTest, OutputTypeViolationSurfaces) {
  // Service declares it returns <ok/> but echoes whatever it gets.
  Signature sig;
  sig.in = {SchemaType::Any()};
  sig.out = SchemaType::Element("ok", {});
  Query echo = Query::Parse("for $x in input(0) return $x").value();
  ASSERT_TRUE(sys_.InstallService(
      p1_, Service::Declarative("typed_echo", echo, sig)).ok());
  Evaluator ev(&sys_);
  auto bad = ev.Eval(
      p0_, Expr::Call(p1_, "typed_echo",
                      {Expr::Tree(Parse(p0_, "<nope/>"), p0_)}));
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
  auto good = ev.Eval(
      p0_, Expr::Call(p1_, "typed_echo",
                      {Expr::Tree(Parse(p0_, "<ok/>"), p0_)}));
  EXPECT_TRUE(good.ok()) << good.status();
}

TEST_F(EvalExtraTest, NativeServiceErrorSurfaces) {
  Service failing = Service::Native(
      "boom", 0,
      [](const std::vector<TreePtr>&, Peer*)
          -> Result<std::vector<TreePtr>> {
        return Status::Internal("native failure");
      });
  ASSERT_TRUE(sys_.InstallService(p1_, failing).ok());
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Call(p1_, "boom", {}));
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
}

TEST_F(EvalExtraTest, MalformedScInExpressionTreeSurfaces) {
  // sc without a <service> child.
  TreePtr t = Parse(p0_, "<r><sc><peer>p1</peer></sc></r>");
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Tree(t, p0_));
  EXPECT_EQ(out.status().code(), StatusCode::kParseError);
}

TEST_F(EvalExtraTest, GenericServiceNoMembersFails) {
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::CallGeneric("ghost", {}));
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(EvalExtraTest, ScWithExplicitForwardLeavesTreeAlone) {
  Query echo = Query::Parse("for $x in input(0) return $x").value();
  ASSERT_TRUE(
      sys_.InstallService(p1_, Service::Declarative("echo", echo)).ok());
  TreePtr mailbox = Parse(p2_, "<mb/>");
  ASSERT_TRUE(sys_.InstallDocument(p2_, "mb", mailbox).ok());
  // A tree expression whose sc carries an explicit forward: the emitted
  // tree keeps only the sc (results went to p2).
  TreePtr t = Parse(
      p0_, StrCat("<r><sc><peer>p1</peer><service>echo</service>"
                  "<param1><m/></param1><forw>",
                  NodeLocation{mailbox->id(), p2_}.ToString(),
                  "</forw></sc></r>"));
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Tree(t, p0_));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 1u);
  EXPECT_EQ(out->results[0]->child_count(), 1u);  // just the sc
  EXPECT_EQ(mailbox->child_count(), 1u);          // response landed here
}

// --- Expression shipping fidelity ---

TEST_F(EvalExtraTest, DelegatedExpressionSurvivesXmlRoundTrip) {
  // What EvalAt ships is the XML form; check the round trip of a
  // realistic delegated plan is lossless.
  ASSERT_TRUE(sys_.InstallDocumentXml(p1_, "d", "<r><i/></r>").ok());
  Query q = Query::Parse(
                "for $x in input(0)//i where $x/v < 3 return $x")
                .value();
  ExprPtr plan = Expr::EvalAt(
      p1_, Expr::Apply(q, p1_, {Expr::Doc("d", p1_)}));
  NodeIdGen gen;
  std::string xml = SerializeCompactExpr(*plan, &gen);
  auto back = ParseExprXml(xml, &gen);
  ASSERT_TRUE(back.ok()) << back.status();
  Evaluator ev(&sys_);
  auto direct = ev.Eval(p0_, plan);
  auto shipped = ev.Eval(p0_, back.value());
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(shipped.ok());
  EXPECT_TRUE(
      testing::ResultsEqual(direct->results, shipped->results));
}

}  // namespace
}  // namespace axml
