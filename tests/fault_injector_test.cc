// Tests for the deterministic fault injector and the network's fault
// paths: drops, retransmission, partitions, and peer crash gating.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/event_loop.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "net/topology.h"

namespace axml {
namespace {

// --- FaultInjector unit tests ---

TEST(FaultInjectorTest, ZeroConfigDeliversAndDrawsNoRandomness) {
  Rng rng(42);
  Rng control(42);
  FaultInjector inj(&rng);
  for (int i = 0; i < 100; ++i) {
    FaultInjector::Verdict v = inj.Judge(PeerId(0), PeerId(1), i * 0.1);
    EXPECT_FALSE(v.drop);
    EXPECT_DOUBLE_EQ(v.extra_delay, 0.0);
  }
  // The byte-identical-when-idle contract: an all-zero config consumed
  // nothing from the injected stream.
  EXPECT_EQ(rng.Next(), control.Next());
  EXPECT_EQ(inj.stats().judged, 100u);
  EXPECT_EQ(inj.stats().delivered, 100u);
  EXPECT_EQ(inj.stats().dropped, 0u);
}

TEST(FaultInjectorTest, LoopbackIsNeverJudged) {
  Rng rng(7);
  FaultInjector inj(&rng);
  FaultConfig cfg;
  cfg.loss_prob = 1.0;
  inj.set_config(cfg);
  FaultInjector::Verdict v = inj.Judge(PeerId(3), PeerId(3), 1.0);
  EXPECT_FALSE(v.drop);
  EXPECT_EQ(inj.stats().judged, 0u);
}

TEST(FaultInjectorTest, CertainLossDropsEverything) {
  Rng rng(7);
  FaultInjector inj(&rng);
  FaultConfig cfg;
  cfg.loss_prob = 1.0;
  inj.set_config(cfg);
  for (int i = 0; i < 10; ++i) {
    FaultInjector::Verdict v = inj.Judge(PeerId(0), PeerId(1), 0.0);
    EXPECT_TRUE(v.drop);
    EXPECT_FALSE(v.partitioned);
  }
  EXPECT_EQ(inj.stats().dropped, 10u);
  EXPECT_EQ(inj.stats().delivered, 0u);
}

TEST(FaultInjectorTest, SameSeedReplaysTheSameVerdicts) {
  FaultConfig cfg;
  cfg.loss_prob = 0.3;
  cfg.spike_prob = 0.2;
  cfg.spike_delay_s = 0.5;
  cfg.reorder_prob = 0.1;
  cfg.reorder_delay_s = 0.05;

  auto run = [&cfg](uint64_t seed) {
    Rng rng(seed);
    FaultInjector inj(&rng);
    inj.set_config(cfg);
    std::vector<std::pair<bool, SimTime>> verdicts;
    for (int i = 0; i < 200; ++i) {
      FaultInjector::Verdict v = inj.Judge(PeerId(i % 4), PeerId(5), 0.0);
      verdicts.push_back({v.drop, v.extra_delay});
    }
    return verdicts;
  };

  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(run(123), run(124));
}

TEST(FaultInjectorTest, SpikeAndReorderDelaysAccumulate) {
  Rng rng(1);
  FaultInjector inj(&rng);
  FaultConfig cfg;
  cfg.spike_prob = 1.0;
  cfg.spike_delay_s = 0.5;
  cfg.reorder_prob = 1.0;
  cfg.reorder_delay_s = 0.05;
  inj.set_config(cfg);
  FaultInjector::Verdict v = inj.Judge(PeerId(0), PeerId(1), 0.0);
  EXPECT_FALSE(v.drop);
  EXPECT_DOUBLE_EQ(v.extra_delay, 0.55);
  EXPECT_EQ(inj.stats().delayed, 1u);
}

TEST(FaultInjectorTest, PartitionWindowDropsCrossingTrafficWithoutRandomness) {
  Rng rng(9);
  Rng control(9);
  FaultInjector inj(&rng);
  PartitionWindow w;
  w.start_s = 1.0;
  w.end_s = 2.0;
  w.island = {PeerId(0), PeerId(1)};
  inj.AddPartition(w);

  // Crossing the island boundary inside the window: dropped, marked as
  // a partition loss, and no Rng draw happened.
  FaultInjector::Verdict v = inj.Judge(PeerId(0), PeerId(2), 1.5);
  EXPECT_TRUE(v.drop);
  EXPECT_TRUE(v.partitioned);
  // Both endpoints inside the island talk freely.
  EXPECT_FALSE(inj.Judge(PeerId(0), PeerId(1), 1.5).drop);
  // Both outside too.
  EXPECT_FALSE(inj.Judge(PeerId(2), PeerId(3), 1.5).drop);
  // Outside the window the link heals; end is exclusive.
  EXPECT_FALSE(inj.Judge(PeerId(0), PeerId(2), 0.5).drop);
  EXPECT_FALSE(inj.Judge(PeerId(0), PeerId(2), 2.0).drop);
  EXPECT_EQ(rng.Next(), control.Next());
  EXPECT_EQ(inj.stats().partition_dropped, 1u);
}

TEST(FaultInjectorTest, PerLinkOverrideBeatsTheGlobalConfig) {
  Rng rng(5);
  FaultInjector inj(&rng);
  FaultConfig lossy;
  lossy.loss_prob = 1.0;
  inj.set_config(lossy);
  inj.SetLinkConfig(PeerId(0), PeerId(1), FaultConfig{});  // perfect link
  EXPECT_FALSE(inj.Judge(PeerId(0), PeerId(1), 0.0).drop);
  // The override is directed: the reverse link keeps the global config.
  EXPECT_TRUE(inj.Judge(PeerId(1), PeerId(0), 0.0).drop);
}

TEST(FaultInjectorTest, StatsToStringAndExportStayInLockstep) {
  Rng rng(3);
  FaultInjector inj(&rng);
  FaultConfig cfg;
  cfg.loss_prob = 0.5;
  inj.set_config(cfg);
  for (int i = 0; i < 50; ++i) inj.Judge(PeerId(0), PeerId(1), 0.0);

  const FaultStats& s = inj.stats();
  const std::string str = s.ToString();
  std::map<std::string, uint64_t> exported;
  MetricSink sink("fault", &exported);
  s.ExportMetrics(sink);
  ASSERT_EQ(exported.size(), 5u);
  EXPECT_EQ(exported.at("fault/judged"), s.judged);
  EXPECT_EQ(exported.at("fault/delivered"), s.delivered);
  EXPECT_EQ(exported.at("fault/dropped"), s.dropped);
  EXPECT_EQ(exported.at("fault/partition_dropped"), s.partition_dropped);
  EXPECT_EQ(exported.at("fault/delayed"), s.delayed);
  for (const auto& [name, value] : exported) {
    EXPECT_NE(str.find(name.substr(6)), std::string::npos)
        << "ToString is missing " << name;
  }
  EXPECT_EQ(s.judged, s.delivered + s.dropped + s.partition_dropped);
}

// --- Network integration: drops, retransmission, partitions, crashes ---

TEST(NetworkFaultTest, DroppedSendIsCountedAndNeverDelivered) {
  EventLoop loop;
  Network net(&loop, Topology(LinkParams{0.01, 1e6}));
  Rng rng(11);
  FaultInjector inj(&rng);
  FaultConfig cfg;
  cfg.loss_prob = 1.0;
  inj.set_config(cfg);
  net.set_fault_injector(&inj);

  bool delivered = false;
  net.Send(PeerId(0), PeerId(1), 100, [&] { delivered = true; });
  loop.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.stats().dropped_messages(), 1u);
  EXPECT_EQ(net.stats().dropped_bytes(), 100u);
  // Send-level accounting still charged the attempt: the bytes hit the
  // wire even though they evaporated.
  EXPECT_EQ(net.stats().total_messages(), 1u);
}

TEST(NetworkFaultTest, SendReliableRetransmitsThroughLoss) {
  EventLoop loop;
  Network net(&loop, Topology(LinkParams{0.01, 1e6}));
  Rng rng(13);
  FaultInjector inj(&rng);
  FaultConfig cfg;
  cfg.loss_prob = 0.8;  // heavy loss: several retransmissions expected
  inj.set_config(cfg);
  net.set_fault_injector(&inj);

  bool delivered = false;
  net.SendReliable(PeerId(0), PeerId(1), 500, [&] { delivered = true; });
  loop.Run();
  EXPECT_TRUE(delivered);
  EXPECT_GT(net.stats().dropped_messages(), 0u);
  // Every retransmission is real traffic.
  EXPECT_EQ(net.stats().total_messages(),
            net.stats().dropped_messages() + 1);
}

TEST(NetworkFaultTest, SendReliableOutlivesAPartitionWindow) {
  EventLoop loop;
  Network net(&loop, Topology(LinkParams{0.01, 1e6}));
  Rng rng(17);
  FaultInjector inj(&rng);
  PartitionWindow w;
  w.start_s = 0.0;
  w.end_s = 1.0;
  w.island = {PeerId(0)};
  inj.AddPartition(w);
  net.set_fault_injector(&inj);

  bool delivered = false;
  net.SendReliable(PeerId(0), PeerId(1), 100, [&] { delivered = true; });
  loop.Run();
  EXPECT_TRUE(delivered);
  // The retransmission loop carried virtual time past the window's end
  // before the copy could cross.
  EXPECT_GE(loop.now(), 1.0);
  EXPECT_GT(inj.stats().partition_dropped, 0u);
}

TEST(NetworkFaultTest, ControlRoundtripRetriesThroughLoss) {
  EventLoop loop;
  Network net(&loop, Topology(LinkParams{0.01, 1e6}));
  Rng rng(19);
  FaultInjector inj(&rng);
  FaultConfig cfg;
  cfg.loss_prob = 0.7;
  inj.set_config(cfg);
  net.set_fault_injector(&inj);

  bool done = false;
  net.ControlRoundtrip(PeerId(0), PeerId(1), 2, 128, 0.05,
                       [&] { done = true; });
  loop.Run();
  EXPECT_TRUE(done);
  // Each retry after the initial 2-message exchange charges one fresh
  // control message.
  EXPECT_GE(net.stats().control_messages(), 2u);
}

TEST(NetworkFaultTest, SendToDownPeerDropsAndCrashInFlightDropsOnArrival) {
  EventLoop loop;
  Network net(&loop, Topology(LinkParams{0.01, 1e6}));

  net.SetPeerUp(PeerId(1), false);
  bool to_down = false;
  net.Send(PeerId(0), PeerId(1), 50, [&] { to_down = true; });
  loop.Run();
  EXPECT_FALSE(to_down);
  EXPECT_EQ(net.stats().dropped_messages(), 1u);

  // A crash while the message is in flight: committed at send time,
  // evaporates on arrival.
  bool in_flight = false;
  net.Send(PeerId(0), PeerId(2), 50, [&] { in_flight = true; });
  net.SetPeerUp(PeerId(2), false);
  loop.Run();
  EXPECT_FALSE(in_flight);
  EXPECT_EQ(net.stats().dropped_messages(), 2u);

  // Rejoin restores delivery.
  net.SetPeerUp(PeerId(1), true);
  bool after_rejoin = false;
  net.Send(PeerId(0), PeerId(1), 50, [&] { after_rejoin = true; });
  loop.Run();
  EXPECT_TRUE(after_rejoin);
}

TEST(NetworkFaultTest, SendReliableAbandonsACrashedDestination) {
  EventLoop loop;
  Network net(&loop, Topology(LinkParams{0.01, 1e6}));
  net.SetPeerUp(PeerId(1), false);
  bool delivered = false;
  net.SendReliable(PeerId(0), PeerId(1), 100, [&] { delivered = true; });
  // Terminates: retrying into a down peer forever would hang the loop.
  loop.Run();
  EXPECT_FALSE(delivered);
}

TEST(NetworkFaultTest, IdleInjectorIsByteIdenticalToNoInjector) {
  auto run = [](bool attach_injector) {
    EventLoop loop;
    Network net(&loop, Topology(LinkParams{0.02, 1e5}));
    Rng rng(23);
    FaultInjector inj(&rng);
    if (attach_injector) net.set_fault_injector(&inj);  // all-zero config
    std::vector<SimTime> arrivals;
    for (int i = 0; i < 5; ++i) {
      net.Send(PeerId(i % 2), PeerId(2), 100 * (i + 1),
               [&arrivals, &loop] { arrivals.push_back(loop.now()); });
    }
    net.SendReliable(PeerId(0), PeerId(1), 700,
                     [&arrivals, &loop] { arrivals.push_back(loop.now()); });
    net.ControlRoundtrip(PeerId(1), PeerId(0), 2, 128, 0.05,
                         [&arrivals, &loop] {
                           arrivals.push_back(loop.now());
                         });
    loop.Run();
    return std::make_tuple(arrivals, loop.now(), net.stats().ToString());
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace axml
