// Tests for the optimizer layer: cost model sanity, per-rule proposal
// shapes, and end-to-end optimization decisions.

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "common/rng.h"
#include "opt/optimizer.h"
#include "opt/rewrite.h"
#include "test_util.h"
#include "xml/xml_parser.h"
#include "xml/xml_serializer.h"

namespace axml {
namespace {

class OptTest : public ::testing::Test {
 protected:
  OptTest() : sys_(Topology(LinkParams{0.010, 1e6})) {
    p0_ = sys_.AddPeer("p0");
    p1_ = sys_.AddPeer("p1");
    p2_ = sys_.AddPeer("p2");
    Rng rng(7);
    TreePtr cat = testing::MakeCatalog(200, sys_.peer(p1_)->gen(), &rng);
    EXPECT_TRUE(sys_.InstallDocument(p1_, "cat", cat).ok());
  }

  AxmlSystem sys_;
  PeerId p0_, p1_, p2_;
};

// --- Cost model ---

TEST_F(OptTest, RemoteDocCostsMoreThanLocal) {
  CostModel cm(&sys_);
  CostEstimate remote = cm.Estimate(p0_, Expr::Doc("cat", p1_));
  CostEstimate local = cm.Estimate(p1_, Expr::Doc("cat", p1_));
  EXPECT_GT(remote.time_s, local.time_s);
  EXPECT_GT(remote.remote_bytes, 0.0);
  EXPECT_DOUBLE_EQ(local.remote_bytes, 0.0);
}

TEST_F(OptTest, FlowUsesDocStats) {
  CostModel cm(&sys_);
  Flow f = cm.EstimateFlow(p1_, Expr::Doc("cat", p1_));
  const TreeStats* st = cm.DocStats(p1_, "cat");
  ASSERT_NE(st, nullptr);
  EXPECT_DOUBLE_EQ(f.bytes, static_cast<double>(st->serialized_bytes));
  EXPECT_EQ(cm.DocStats(p1_, "missing"), nullptr);
  EXPECT_EQ(cm.DocStats(PeerId(77), "cat"), nullptr);
}

TEST_F(OptTest, SelectiveQueryShrinksFlow) {
  CostModel cm(&sys_);
  Query narrow = Query::Parse(
                     "for $p in input(0)/catalog/product "
                     "where $p/price < 100 return $p")
                     .value();
  Query wide = Query::Parse(
                   "for $p in input(0)/catalog/product return $p")
                   .value();
  Flow in = cm.EstimateFlow(p1_, Expr::Doc("cat", p1_));
  Flow fn = cm.EstimateFlow(
      p1_, Expr::Apply(narrow, p1_, {Expr::Doc("cat", p1_)}));
  Flow fw = cm.EstimateFlow(
      p1_, Expr::Apply(wide, p1_, {Expr::Doc("cat", p1_)}));
  EXPECT_LT(fn.bytes, fw.bytes);
  EXPECT_LT(fw.bytes, in.bytes + 1);
}

TEST_F(OptTest, StatsBasedSelectivityTracksBound) {
  CostModel cm(&sys_);
  const TreeStats* st = cm.DocStats(p1_, "cat");
  Query q10 = Query::Parse(
                  "for $p in input(0)/catalog/product "
                  "where $p/price < 10 return $p")
                  .value();
  Query q900 = Query::Parse(
                   "for $p in input(0)/catalog/product "
                   "where $p/price < 900 return $p")
                   .value();
  EXPECT_LT(cm.EstimateQuerySelectivity(q10, st),
            cm.EstimateQuerySelectivity(q900, st));
}

TEST_F(OptTest, EvalAtAddsShippingBothWays) {
  CostModel cm(&sys_);
  ExprPtr body = Expr::Doc("cat", p1_);
  CostEstimate direct = cm.Estimate(p0_, body);
  CostEstimate via_p2 = cm.Estimate(p0_, Expr::EvalAt(p2_, body));
  EXPECT_GT(via_p2.time_s, direct.time_s);
  EXPECT_GT(via_p2.remote_bytes, direct.remote_bytes);
}

TEST_F(OptTest, SeqCostsAreAdditive) {
  CostModel cm(&sys_);
  ExprPtr a = Expr::Doc("cat", p1_);
  CostEstimate single = cm.Estimate(p0_, a);
  CostEstimate both = cm.Estimate(p0_, Expr::Seq(a, a));
  EXPECT_NEAR(both.time_s, 2 * single.time_s, 1e-9);
}

TEST_F(OptTest, ForwardedCallSkipsReturnTransfer) {
  Query q = Query::Parse("for $x in input(0) return $x").value();
  ASSERT_TRUE(
      sys_.InstallService(p1_, Service::Declarative("echo", q)).ok());
  NodeIdGen tmp(p2_);
  CostModel cm(&sys_);
  TreePtr param = ParseXml("<m>x</m>", sys_.peer(p0_)->gen()).value();
  ExprPtr back = Expr::Call(p1_, "echo", {Expr::Tree(param, p0_)});
  ExprPtr fwd = Expr::Call(p1_, "echo", {Expr::Tree(param, p0_)},
                           {NodeLocation{tmp.Next(), p1_}});
  // Forwarding to a node on the provider itself avoids the return hop.
  EXPECT_LT(cm.Estimate(p0_, fwd).time_s, cm.Estimate(p0_, back).time_s);
}

// --- Rule proposal shapes ---

RewriteContext MakeCtx(AxmlSystem* sys, CostModel* cm, uint64_t* counter) {
  RewriteContext ctx;
  ctx.sys = sys;
  ctx.cost = cm;
  ctx.name_counter = counter;
  return ctx;
}

TEST_F(OptTest, DelegationProposesAllOtherPeers) {
  CostModel cm(&sys_);
  uint64_t counter = 0;
  RewriteContext ctx = MakeCtx(&sys_, &cm, &counter);
  Query q = Query::Parse("for $x in input(0) return $x").value();
  ExprPtr e = Expr::Apply(q, p0_, {Expr::Doc("cat", p1_)});
  std::vector<ExprPtr> alts;
  MakeDelegationRule()->Propose(p0_, e, &ctx, &alts);
  ASSERT_EQ(alts.size(), 2u);  // p1 and p2
  for (const auto& a : alts) {
    EXPECT_EQ(a->kind(), Expr::Kind::kEvalAt);
    EXPECT_EQ(a->body(), e);
  }
}

TEST_F(OptTest, DelegationIgnoresPlainData) {
  CostModel cm(&sys_);
  uint64_t counter = 0;
  RewriteContext ctx = MakeCtx(&sys_, &cm, &counter);
  std::vector<ExprPtr> alts;
  MakeDelegationRule()->Propose(p0_, Expr::Doc("cat", p1_), &ctx, &alts);
  EXPECT_TRUE(alts.empty());
}

TEST_F(OptTest, PushdownSplitsSelectionTowardData) {
  CostModel cm(&sys_);
  uint64_t counter = 0;
  RewriteContext ctx = MakeCtx(&sys_, &cm, &counter);
  Query q = Query::Parse(
                "for $p in input(0)/catalog/product "
                "where $p/price < 100 return <r>{ $p/name }</r>")
                .value();
  ExprPtr e = Expr::Apply(q, p0_, {Expr::Doc("cat", p1_)});
  std::vector<ExprPtr> alts;
  MakeSelectionPushdownRule()->Propose(p0_, e, &ctx, &alts);
  ASSERT_EQ(alts.size(), 1u);
  const ExprPtr& alt = alts[0];
  ASSERT_EQ(alt->kind(), Expr::Kind::kApply);
  // The argument became a delegated filter at the data peer.
  ASSERT_EQ(alt->args().size(), 1u);
  EXPECT_EQ(alt->args()[0]->kind(), Expr::Kind::kEvalAt);
  EXPECT_EQ(alt->args()[0]->eval_where(), p1_);
}

TEST_F(OptTest, PushdownSkipsGenericAndComputedArgs) {
  CostModel cm(&sys_);
  uint64_t counter = 0;
  RewriteContext ctx = MakeCtx(&sys_, &cm, &counter);
  Query q = Query::Parse(
                "for $p in input(0)//x where $p/v < 1 return $p")
                .value();
  std::vector<ExprPtr> alts;
  MakeSelectionPushdownRule()->Propose(
      p0_, Expr::Apply(q, p0_, {Expr::GenericDoc("ecat")}), &ctx, &alts);
  EXPECT_TRUE(alts.empty());
}

TEST_F(OptTest, IntermediaryRuleProposesBothDirections) {
  CostModel cm(&sys_);
  uint64_t counter = 0;
  RewriteContext ctx = MakeCtx(&sys_, &cm, &counter);
  // Insertion: doc@p1 consumed at p0 may stop at p2.
  std::vector<ExprPtr> ins;
  MakeIntermediaryStopRule()->Propose(p0_, Expr::Doc("cat", p1_), &ctx,
                                      &ins);
  ASSERT_EQ(ins.size(), 1u);
  EXPECT_EQ(ins[0]->kind(), Expr::Kind::kEvalAt);
  EXPECT_EQ(ins[0]->eval_where(), p2_);
  // Removal: the wrapped form proposes the unwrapped one.
  std::vector<ExprPtr> rem;
  MakeIntermediaryStopRule()->Propose(p0_, ins[0], &ctx, &rem);
  ASSERT_EQ(rem.size(), 1u);
  EXPECT_EQ(rem[0]->ToString(), Expr::Doc("cat", p1_)->ToString());
}

TEST_F(OptTest, TransferCacheDetectsSharedRemoteArg) {
  CostModel cm(&sys_);
  uint64_t counter = 0;
  RewriteContext ctx = MakeCtx(&sys_, &cm, &counter);
  Query q2 = Query::Parse(
                 "for $a in input(0)//product for $b in input(1)//product "
                 "where $a/name = $b/name return <m/>")
                 .value();
  ExprPtr shared = Expr::Doc("cat", p1_);
  ExprPtr e = Expr::Apply(q2, p0_, {shared, shared});
  std::vector<ExprPtr> alts;
  MakeTransferCacheRule()->Propose(p0_, e, &ctx, &alts);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(alts[0]->kind(), Expr::Kind::kSeq);
  // Both uses now read the cache document.
  const ExprPtr& rewritten = alts[0]->then();
  EXPECT_EQ(rewritten->args()[0]->kind(), Expr::Kind::kDoc);
  EXPECT_EQ(rewritten->args()[0]->doc_peer(), p0_);
  EXPECT_EQ(rewritten->args()[0]->doc_name(),
            rewritten->args()[1]->doc_name());
  // Distinct args: no proposal.
  std::vector<ExprPtr> none;
  MakeTransferCacheRule()->Propose(
      p0_,
      Expr::Apply(q2, p0_, {Expr::Doc("cat", p1_), Expr::Doc("x", p2_)}),
      &ctx, &none);
  EXPECT_TRUE(none.empty());
}

TEST_F(OptTest, PushQueryOverCallComposesAtProvider) {
  Query body = Query::Parse("for $x in input(0)//product return $x").value();
  ASSERT_TRUE(
      sys_.InstallService(p1_, Service::Declarative("feed", body)).ok());
  CostModel cm(&sys_);
  uint64_t counter = 0;
  RewriteContext ctx = MakeCtx(&sys_, &cm, &counter);
  Query outer = Query::Parse(
                    "for $p in input(0) where $p/price < 10 return $p")
                    .value();
  NodeIdGen tmp(p0_);
  TreePtr param = ParseXml("<since>1</since>", &tmp).value();
  ExprPtr call = Expr::Call(p1_, "feed", {Expr::Tree(param, p0_)});
  ExprPtr e = Expr::Apply(outer, p0_, {call});
  std::vector<ExprPtr> alts;
  MakePushQueryOverCallRule()->Propose(p0_, e, &ctx, &alts);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(alts[0]->kind(), Expr::Kind::kEvalAt);
  EXPECT_EQ(alts[0]->eval_where(), p1_);
  // Native services are opaque: no rewrite through them.
  Service native = Service::Native(
      "opaque", 0,
      [](const std::vector<TreePtr>&, Peer*)
          -> Result<std::vector<TreePtr>> {
        return std::vector<TreePtr>{};
      });
  ASSERT_TRUE(sys_.InstallService(p2_, native).ok());
  std::vector<ExprPtr> none;
  MakePushQueryOverCallRule()->Propose(
      p0_, Expr::Apply(outer, p0_, {Expr::Call(p2_, "opaque", {})}), &ctx,
      &none);
  EXPECT_TRUE(none.empty());
}

// --- Optimizer end-to-end ---

TEST_F(OptTest, OptimizerPushesSelectionToData) {
  Query q = Query::Parse(
                "for $p in input(0)/catalog/product "
                "where $p/price < 50 return <r>{ $p/name }</r>")
                .value();
  ExprPtr naive = Expr::Apply(q, p0_, {Expr::Doc("cat", p1_)});
  Optimizer opt(&sys_);
  OptimizedPlan plan = opt.Optimize(p0_, naive);
  ASSERT_NE(plan.expr, nullptr);
  CostModel cm(&sys_);
  EXPECT_LT(plan.cost.Scalar({}), cm.Estimate(p0_, naive).Scalar({}));
  EXPECT_FALSE(plan.rules_applied.empty());
  EXPECT_GT(opt.candidates_explored(), 0u);
  // The winning plan mentions pushdown.
  bool used_pushdown = false;
  for (const auto& r : plan.rules_applied) {
    used_pushdown = used_pushdown || r.find("pushdown") == 0;
  }
  EXPECT_TRUE(used_pushdown) << plan.ToString();
}

TEST_F(OptTest, OptimizerKeepsDirectPlanWhenNothingHelps) {
  // A local query over a local doc: no rewrite should beat it.
  Query q = Query::Parse("for $x in input(0)//product return $x").value();
  ExprPtr direct = Expr::Apply(q, p1_, {Expr::Doc("cat", p1_)});
  Optimizer opt(&sys_);
  OptimizedPlan plan = opt.Optimize(p1_, direct);
  CostModel cm(&sys_);
  EXPECT_LE(plan.cost.Scalar({}),
            cm.Estimate(p1_, direct).Scalar({}) + 1e-12);
}

TEST_F(OptTest, OptimizedPlanEvaluatesEquivalently) {
  Query q = Query::Parse(
                "for $p in input(0)/catalog/product "
                "where $p/price < 200 return <hit>{ $p/name }</hit>")
                .value();
  ExprPtr naive = Expr::Apply(q, p0_, {Expr::Doc("cat", p1_)});
  Optimizer opt(&sys_);
  OptimizedPlan plan = opt.Optimize(p0_, naive);
  Evaluator ev(&sys_);
  auto direct = ev.Eval(p0_, naive);
  ASSERT_TRUE(direct.ok()) << direct.status();
  auto optimized = ev.Eval(p0_, plan.expr);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  EXPECT_TRUE(
      testing::ResultsEqual(direct->results, optimized->results))
      << plan.ToString();
}

TEST_F(OptTest, ByteWeightChangesPreferences) {
  // With a huge per-byte penalty the optimizer must avoid strategies
  // that move more bytes even if marginally faster.
  Query q = Query::Parse(
                "for $p in input(0)/catalog/product "
                "where $p/price < 50 return $p")
                .value();
  ExprPtr naive = Expr::Apply(q, p0_, {Expr::Doc("cat", p1_)});
  OptimizerOptions heavy;
  heavy.weights.byte_weight = 1.0;
  Optimizer opt(&sys_, heavy);
  OptimizedPlan plan = opt.Optimize(p0_, naive);
  CostModel cm(&sys_);
  EXPECT_LT(plan.cost.remote_bytes,
            cm.Estimate(p0_, naive).remote_bytes);
}

TEST_F(OptTest, DocSourceBytesCountsServiceBodies) {
  CostModel cm(&sys_);
  Query body = Query::Parse(
                   "for $p in doc(\"cat\")/catalog/product "
                   "for $k in input(0) where $p/price < $k/max return $p")
                   .value();
  // Read on the hosting peer: the catalog's bytes are charged.
  EXPECT_GT(cm.DocSourceBytes(body, p1_), 0.0);
  // Read elsewhere (no such document): nothing is charged.
  EXPECT_DOUBLE_EQ(cm.DocSourceBytes(body, p2_), 0.0);
  Query no_docs = Query::Parse("for $x in input(0) return $x").value();
  EXPECT_DOUBLE_EQ(cm.DocSourceBytes(no_docs, p1_), 0.0);
}

TEST_F(OptTest, CallOutputFlowIncludesProviderDocs) {
  Query body = Query::Parse(
                   "for $p in doc(\"cat\")/catalog/product "
                   "for $k in input(0) where $p/price < $k/max return $p")
                   .value();
  ASSERT_TRUE(
      sys_.InstallService(p1_, Service::Declarative("feed", body)).ok());
  NodeIdGen tmp(p0_);
  TreePtr k = ParseXml("<k><max>900</max></k>", &tmp).value();
  CostModel cm(&sys_);
  Flow f = cm.EstimateFlow(
      p0_, Expr::Call(p1_, "feed", {Expr::Tree(k, p0_)}));
  // The feed's volume is driven by the provider-side catalog, which is
  // far larger than the tiny parameter.
  EXPECT_GT(f.bytes, 1000.0);
}

TEST_F(OptTest, CustomRuleSetRestrictsSearch) {
  Query q = Query::Parse(
                "for $p in input(0)/catalog/product "
                "where $p/price < 50 return $p")
                .value();
  ExprPtr naive = Expr::Apply(q, p0_, {Expr::Doc("cat", p1_)});
  // With an empty rule set, the optimizer can only return the direct
  // strategy.
  Optimizer empty(&sys_, OptimizerOptions{}, {});
  OptimizedPlan plan = empty.Optimize(p0_, naive);
  EXPECT_EQ(plan.expr->ToString(), naive->ToString());
  EXPECT_TRUE(plan.rules_applied.empty());
  EXPECT_EQ(empty.candidates_explored(), 0u);
  // With only the pushdown rule it still finds the Example-1 plan.
  std::vector<std::unique_ptr<RewriteRule>> only_pushdown;
  only_pushdown.push_back(MakeSelectionPushdownRule());
  Optimizer restricted(&sys_, OptimizerOptions{},
                       std::move(only_pushdown));
  OptimizedPlan p2 = restricted.Optimize(p0_, naive);
  ASSERT_EQ(p2.rules_applied.size(), 1u);
  EXPECT_EQ(p2.rules_applied[0], "pushdown(11/Ex.1)");
}

TEST_F(OptTest, PlanToStringIsInformative) {
  Query q = Query::Parse("for $x in input(0) return $x").value();
  Optimizer opt(&sys_);
  OptimizedPlan plan =
      opt.Optimize(p0_, Expr::Apply(q, p0_, {Expr::Doc("cat", p1_)}));
  std::string s = plan.ToString();
  EXPECT_NE(s.find("plan:"), std::string::npos);
  EXPECT_NE(s.find("cost:"), std::string::npos);
}

}  // namespace
}  // namespace axml
