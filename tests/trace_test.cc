// Tests for the evaluation trace (EvalOptions::trace): the
// observability surface a user debugs distributed plans with.

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "xml/xml_parser.h"

namespace axml {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : sys_(Topology(LinkParams{0.010, 1.0e6})) {
    p0_ = sys_.AddPeer("p0");
    p1_ = sys_.AddPeer("p1");
  }
  AxmlSystem sys_;
  PeerId p0_, p1_;
};

TEST_F(TraceTest, DisabledByDefault) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p1_, "d", "<r/>").ok());
  Evaluator ev(&sys_);
  ASSERT_TRUE(ev.Eval(p0_, Expr::Doc("d", p1_)).ok());
  EXPECT_TRUE(ev.trace().empty());
  EXPECT_TRUE(ev.FormatTrace().empty());
}

TEST_F(TraceTest, RecordsShipsWithTimesAndSizes) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p1_, "d", "<r><i/></r>").ok());
  EvalOptions opts;
  opts.trace = true;
  Evaluator ev(&sys_, opts);
  ASSERT_TRUE(ev.Eval(p0_, Expr::Doc("d", p1_)).ok());
  ASSERT_GE(ev.trace().size(), 2u);  // eval@ + ship
  EXPECT_NE(ev.trace()[0].what.find("eval@p0"), std::string::npos);
  bool saw_ship = false;
  for (const TraceEvent& e : ev.trace()) {
    if (e.what.find("ship p1->p0") != std::string::npos) {
      saw_ship = true;
      EXPECT_NE(e.what.find("B <r>"), std::string::npos);
    }
    EXPECT_GE(e.time, 0.0);
  }
  EXPECT_TRUE(saw_ship);
  // Times are non-decreasing.
  for (size_t i = 1; i < ev.trace().size(); ++i) {
    EXPECT_GE(ev.trace()[i].time, ev.trace()[i - 1].time);
  }
}

TEST_F(TraceTest, RecordsServiceInvocationAndPick) {
  Query echo = Query::Parse("for $x in input(0) return $x").value();
  ASSERT_TRUE(
      sys_.InstallService(p1_, Service::Declarative("echo", echo)).ok());
  NodeIdGen tmp;
  TreePtr content = ParseXml("<d/>", &tmp).value();
  ASSERT_TRUE(sys_.InstallReplicatedDocument("ed", "d", content,
                                             {p1_}).ok());
  EvalOptions opts;
  opts.trace = true;
  Evaluator ev(&sys_, opts);
  TreePtr param = ParseXml("<m/>", sys_.peer(p0_)->gen()).value();
  ASSERT_TRUE(
      ev.Eval(p0_, Expr::Call(p1_, "echo", {Expr::Tree(param, p0_)}))
          .ok());
  std::string trace = ev.FormatTrace();
  EXPECT_NE(trace.find("invoke echo@p1"), std::string::npos);

  ASSERT_TRUE(ev.Eval(p0_, Expr::GenericDoc("ed")).ok());
  EXPECT_NE(ev.FormatTrace().find("pickDoc ed@any -> d@p1"),
            std::string::npos);
}

TEST_F(TraceTest, RecordsDelegationAndInstalls) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p1_, "d", "<r/>").ok());
  EvalOptions opts;
  opts.trace = true;
  Evaluator ev(&sys_, opts);
  ASSERT_TRUE(
      ev.Eval(p0_, Expr::EvalAt(p1_, Expr::Doc("d", p1_))).ok());
  EXPECT_NE(ev.FormatTrace().find("delegate expr p0->p1"),
            std::string::npos);

  Query q = Query::Parse("for $x in input(0) return $x").value();
  ASSERT_TRUE(ev.Eval(p0_, Expr::ShipQuery(p1_, q, p0_, "svc")).ok());
  EXPECT_NE(ev.FormatTrace().find("installed service svc@p1"),
            std::string::npos);
}

TEST_F(TraceTest, ClearedBetweenEvals) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p1_, "d", "<r/>").ok());
  EvalOptions opts;
  opts.trace = true;
  Evaluator ev(&sys_, opts);
  ASSERT_TRUE(ev.Eval(p0_, Expr::Doc("d", p1_)).ok());
  size_t first = ev.trace().size();
  ASSERT_TRUE(ev.Eval(p0_, Expr::Doc("d", p1_)).ok());
  EXPECT_EQ(ev.trace().size(), first);  // not accumulated across evals
}

TEST_F(TraceTest, FormatIsOneLinePerEvent) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p1_, "d", "<r/>").ok());
  EvalOptions opts;
  opts.trace = true;
  Evaluator ev(&sys_, opts);
  ASSERT_TRUE(ev.Eval(p0_, Expr::Doc("d", p1_)).ok());
  std::string formatted = ev.FormatTrace();
  size_t lines = static_cast<size_t>(
      std::count(formatted.begin(), formatted.end(), '\n'));
  EXPECT_EQ(lines, ev.trace().size());
  EXPECT_NE(formatted.find("s] "), std::string::npos);
}

}  // namespace
}  // namespace axml
