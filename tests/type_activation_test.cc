// Tests for type-driven call activation (the §4 "ongoing work"
// extension; see type_activation.h).

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "peer/type_activation.h"
#include "xml/xml_parser.h"

namespace axml {
namespace {

class TypeActivationTest : public ::testing::Test {
 protected:
  TypeActivationTest() : sys_(Topology(LinkParams{0.010, 1.0e6})) {
    host_ = sys_.AddPeer("host");
    provider_ = sys_.AddPeer("provider");

    // A typed service producing <price>number</price> responses.
    Signature price_sig;
    price_sig.in = {SchemaType::Any()};
    price_sig.out = PriceType();
    Query body = Query::Parse(
                     "for $x in input(0) return <price>{ \"42\" }</price>")
                     .value();
    EXPECT_TRUE(sys_.InstallService(
                        provider_,
                        Service::Declarative("getPrice", body, price_sig))
                    .ok());
    // A typed service producing <review> elements.
    Signature review_sig;
    review_sig.in = {SchemaType::Any()};
    review_sig.out = ReviewType();
    Query rbody = Query::Parse(
                      "for $x in input(0) return <review>{ \"ok\" }"
                      "</review>")
                      .value();
    EXPECT_TRUE(
        sys_.InstallService(
                provider_,
                Service::Declarative("getReview", rbody, review_sig))
            .ok());
    // An untyped service (output type unknown -> optimistic Any).
    EXPECT_TRUE(sys_.InstallService(
                        provider_,
                        Service::Declarative("mystery", Query::Identity()))
                    .ok());
  }

  static SchemaTypePtr PriceType() {
    return SchemaType::Element("price", {One(SchemaType::Number())});
  }
  static SchemaTypePtr ReviewType() {
    return SchemaType::Element("review", {One(SchemaType::Text())});
  }
  static SchemaTypePtr TitleType() {
    return SchemaType::Element("title", {One(SchemaType::Text())});
  }

  TreePtr Parse(const std::string& xml) {
    return ParseXml(xml, sys_.peer(host_)->gen()).value();
  }

  AxmlSystem sys_;
  PeerId host_, provider_;
};

constexpr const char* kScPrice =
    "<sc><peer>provider</peer><service>getPrice</service>"
    "<param1><q/></param1></sc>";
constexpr const char* kScReview =
    "<sc><peer>provider</peer><service>getReview</service>"
    "<param1><q/></param1></sc>";

TEST_F(TypeActivationTest, RequiredCallIsPlanned) {
  // Target: book{title, price}. The price is missing; the sc provides it.
  TreePtr doc = Parse(std::string("<book><title>t</title>") + kScPrice +
                      "</book>");
  auto target = SchemaType::Element(
      "book", {One(TitleType()), One(PriceType())});
  auto plan = PlanActivationsForType(doc, target, sys_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->achievable);
  ASSERT_EQ(plan->activate.size(), 1u);
  EXPECT_TRUE(plan->forbid.empty());
  EXPECT_TRUE(plan->optional.empty());
}

TEST_F(TypeActivationTest, SatisfiedTypeNeedsNoActivation) {
  TreePtr doc = Parse(std::string("<book><title>t</title>"
                                  "<price>3</price>") +
                      kScPrice + "</book>");
  // price already present with max_occurs 1: the call must NOT fire.
  auto target = SchemaType::Element(
      "book", {One(TitleType()), One(PriceType())});
  auto plan = PlanActivationsForType(doc, target, sys_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->achievable);
  EXPECT_TRUE(plan->activate.empty());
  ASSERT_EQ(plan->forbid.size(), 1u);
}

TEST_F(TypeActivationTest, OptionalWhenParticleHasRoom) {
  TreePtr doc = Parse(std::string("<book><title>t</title>") + kScReview +
                      "</book>");
  // review is 0..*: fits but is not required.
  auto target = SchemaType::Element(
      "book", {One(TitleType()), Star(ReviewType())});
  auto plan = PlanActivationsForType(doc, target, sys_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->activate.empty());
  EXPECT_TRUE(plan->forbid.empty());
  ASSERT_EQ(plan->optional.size(), 1u);
}

TEST_F(TypeActivationTest, WrongServiceOutputIsForbidden) {
  TreePtr doc = Parse(std::string("<book><title>t</title>"
                                  "<price>3</price>") +
                      kScReview + "</book>");
  // Target has no review particle at all.
  auto target = SchemaType::Element(
      "book", {One(TitleType()), One(PriceType())});
  auto plan = PlanActivationsForType(doc, target, sys_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->forbid.size(), 1u);
  EXPECT_TRUE(plan->activate.empty());
}

TEST_F(TypeActivationTest, UnfillableDeficitIsUnachievable) {
  // Needs a price, but only a review service is embedded.
  TreePtr doc = Parse(std::string("<book><title>t</title>") + kScReview +
                      "</book>");
  auto target = SchemaType::Element(
      "book", {One(TitleType()), One(PriceType())});
  auto plan = PlanActivationsForType(doc, target, sys_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan->achievable);
}

TEST_F(TypeActivationTest, WrongRootShapeFails) {
  TreePtr doc = Parse("<magazine/>");
  auto target = SchemaType::Element("book", {});
  auto plan = PlanActivationsForType(doc, target, sys_);
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  // Stray concrete children are equally fatal.
  TreePtr stray = Parse("<book><zz/></book>");
  EXPECT_FALSE(PlanActivationsForType(stray, target, sys_).ok());
}

TEST_F(TypeActivationTest, UntypedServiceIsOptimisticallyUsable) {
  TreePtr doc = Parse(
      "<book><title>t</title><sc><peer>provider</peer>"
      "<service>mystery</service><param1><q/></param1></sc></book>");
  auto target = SchemaType::Element(
      "book", {One(TitleType()), One(PriceType())});
  auto plan = PlanActivationsForType(doc, target, sys_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->achievable);
  EXPECT_EQ(plan->activate.size(), 1u);  // Any-typed output may fill it
}

TEST_F(TypeActivationTest, NestedCallsArePlannedRecursively) {
  TreePtr doc = Parse(std::string("<shelf><book><title>t</title>") +
                      kScPrice + "</book></shelf>");
  auto book = SchemaType::Element(
      "book", {One(TitleType()), One(PriceType())});
  auto shelf = SchemaType::Element("shelf", {Plus(book)});
  auto plan = PlanActivationsForType(doc, shelf, sys_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->achievable);
  EXPECT_EQ(plan->activate.size(), 1u);
}

TEST_F(TypeActivationTest, ExecutingThePlanReachesTheType) {
  // The end-to-end story: plan, activate exactly the planned calls,
  // run to quiescence, check the document now matches the target.
  TreePtr doc = Parse(std::string("<book><title>t</title>") + kScPrice +
                      "</book>");
  auto target = SchemaType::Element(
      "book",
      {One(TitleType()), One(PriceType()),
       // The activated sc element itself stays in the document; admit it.
       Star(SchemaType::Element("sc", {Star(SchemaType::Any())}))});
  Evaluator ev(&sys_);
  ASSERT_TRUE(ev.InstallAxmlDocument(host_, "book", doc).ok());
  auto plan = PlanActivationsForType(doc, target, sys_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(target->Matches(*doc));  // not yet
  for (NodeId call : plan->activate) {
    ASSERT_TRUE(ev.ActivateCall(host_, call).ok());
  }
  ev.RunToQuiescence();
  EXPECT_TRUE(target->Matches(*doc)) << "plan execution missed the type";
}

TEST_F(TypeActivationTest, NullArgumentsRejected) {
  EXPECT_FALSE(
      PlanActivationsForType(nullptr, SchemaType::Any(), sys_).ok());
  TreePtr doc = Parse("<x/>");
  EXPECT_FALSE(PlanActivationsForType(doc, nullptr, sys_).ok());
}

}  // namespace
}  // namespace axml
