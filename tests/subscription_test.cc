// Unit tests for the push-refresh subscription table plus the
// correctness fixes riding along with it: the Version() base contract,
// the no-allocation LookupFresh miss path, and the TransferCache stats
// invariants (immediate-eviction Put, dedup alias erase on promotion,
// TotalStats arithmetic across peers).

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "common/rng.h"
#include "xml/digest.h"
#include "replica/replica_manager.h"
#include "replica/subscription.h"
#include "xml/wire.h"
#include "test_util.h"

namespace axml {
namespace {

using testing::MakeCatalog;

// --- SubscriptionTable ---

TEST(SubscriptionTableTest, SubscribeIsIdempotentPerHolder) {
  SubscriptionTable table;
  const ReplicaKey key{PeerId(0), "d"};
  table.Subscribe(key, PeerId(1));
  table.Subscribe(key, PeerId(1));
  table.Subscribe(key, PeerId(2));
  EXPECT_EQ(table.HoldersOf(key).size(), 2u);
  EXPECT_EQ(table.subscription_count(), 2u);
  EXPECT_TRUE(table.IsSubscribed(key, PeerId(1)));
  EXPECT_FALSE(table.IsSubscribed(key, PeerId(3)));
}

TEST(SubscriptionTableTest, UnsubscribeRemovesOnlyThatHolder) {
  SubscriptionTable table;
  const ReplicaKey key{PeerId(0), "d"};
  table.Subscribe(key, PeerId(1));
  table.Subscribe(key, PeerId(2));
  table.Unsubscribe(key, PeerId(1));
  EXPECT_FALSE(table.IsSubscribed(key, PeerId(1)));
  EXPECT_TRUE(table.IsSubscribed(key, PeerId(2)));
  // Unknown key / holder: no-ops.
  table.Unsubscribe(ReplicaKey{PeerId(9), "x"}, PeerId(1));
  table.Unsubscribe(key, PeerId(7));
  EXPECT_EQ(table.subscription_count(), 1u);
}

TEST(SubscriptionTableTest, HoldersOfReturnsADetachedSnapshot) {
  SubscriptionTable table;
  const ReplicaKey key{PeerId(0), "d"};
  table.Subscribe(key, PeerId(1));
  table.Subscribe(key, PeerId(2));
  // The fan-out pattern: unsubscribe while iterating the snapshot.
  std::vector<PeerId> snapshot = table.HoldersOf(key);
  for (PeerId holder : snapshot) {
    table.Unsubscribe(key, holder);
  }
  EXPECT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(table.subscription_count(), 0u);
  EXPECT_TRUE(table.HoldersOf(key).empty());
}

TEST(SubscriptionTableTest, PolicyNamesAreStable) {
  EXPECT_STREQ(RefreshPolicyName(RefreshPolicy::kLazy), "lazy");
  EXPECT_STREQ(RefreshPolicyName(RefreshPolicy::kDrop), "drop");
  EXPECT_STREQ(RefreshPolicyName(RefreshPolicy::kEagerRefresh),
               "eager_refresh");
}

// --- Version() base contract (regression) ---

TEST(VersionContractTest, NeverSeenNamesSitAtOneAndInstallBumps) {
  AxmlSystem sys;
  PeerId p = sys.AddPeer("p");
  // Never seen: exactly 1 — the documented floor.
  EXPECT_EQ(sys.replicas().Version(p, "d"), 1u);
  // The installing write is a mutation-listener event: 2.
  NodeIdGen* gen = sys.peer(p)->gen();
  ASSERT_TRUE(
      sys.InstallDocument(p, "d", MakeTextElement("r", "x", gen)).ok());
  EXPECT_EQ(sys.replicas().Version(p, "d"), 2u);
  // Each further mutation increments by one.
  sys.peer(p)->PutDocument("d", MakeTextElement("r", "y", sys.peer(p)->gen()));
  EXPECT_EQ(sys.replicas().Version(p, "d"), 3u);
}

TEST(VersionContractTest, FirstEverMutationInvalidatesPreexistingCopies) {
  // The seed's 0-base made the first-ever listener event land on the
  // same value the never-seen default reported, so a copy snapshotted
  // against the default could never be told apart from a fresh one.
  AxmlSystem sys;
  // kLazy isolates the version comparison from push-drop: the copy must
  // go stale by versioning alone, not because a push already removed it.
  sys.replicas().set_refresh_policy(RefreshPolicy::kLazy);
  PeerId owner = sys.AddPeer("owner");
  PeerId reader = sys.AddPeer("reader");
  NodeIdGen gen;
  TreePtr t = MakeTextElement("r", "x", &gen);
  // Snapshot taken at the never-seen version (no install event fired
  // for this name yet — e.g. state seeded outside the listener).
  const uint64_t snap = sys.replicas().Version(owner, "d");
  ASSERT_TRUE(sys.replicas().InsertCopy(reader, owner, "d",
                                        t->Clone(sys.peer(reader)->gen()),
                                        snap));
  ASSERT_TRUE(sys.replicas().HasFresh(reader, owner, "d"));
  // The first-ever mutation event must strand that copy.
  sys.replicas().NoteMutation(owner, "d");
  EXPECT_FALSE(sys.replicas().HasFresh(reader, owner, "d"));
}

// --- LookupFresh allocation fix (regression) ---

TEST(LookupFreshTest, MissDoesNotAllocateACacheForTheReader) {
  AxmlSystem sys;
  PeerId owner = sys.AddPeer("owner");
  PeerId reader = sys.AddPeer("reader");
  EXPECT_EQ(sys.replicas().LookupFresh(reader, owner, "d"), nullptr);
  EXPECT_EQ(sys.replicas().LookupFresh(reader, owner, "d"), nullptr);
  // No TransferCache (plus evict listener) sprang into existence for a
  // peer that only ever read.
  EXPECT_EQ(sys.replicas().FindCache(reader), nullptr);
  // The misses still count, manager-side.
  EXPECT_EQ(sys.replicas().TotalStats().misses, 2u);
  sys.replicas().ResetStats();
  EXPECT_EQ(sys.replicas().TotalStats().misses, 0u);
}

// --- TransferCache stats invariants ---

TEST(CacheStatsTest, RefusedOverBudgetPutCountsNothing) {
  NodeIdGen gen;
  Rng rng(7);
  TreePtr big = MakeCatalog(64, &gen, &rng);
  TransferCache cache(wire::EncodedTreeSize(*big) - 1);
  EXPECT_FALSE(
      cache.Put(ReplicaKey{PeerId(0), "big"}, big, DigestOf(*big), 1));
  EXPECT_EQ(cache.stats().inserts, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  EXPECT_EQ(cache.blob_count(), 0u);
}

TEST(CacheStatsTest, OverwriteReleasesTheOldBlobBeforeCharging) {
  NodeIdGen gen;
  Rng rng(7);
  TreePtr v1 = MakeCatalog(8, &gen, &rng);
  TreePtr v2 = MakeCatalog(8, &gen, &rng);
  TransferCache cache(1 << 20);
  const ReplicaKey key{PeerId(1), "d"};
  ASSERT_TRUE(cache.Put(key, v1, DigestOf(*v1), 1));
  ASSERT_TRUE(cache.Put(key, v2, DigestOf(*v2), 2));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.blob_count(), 1u);
  EXPECT_EQ(cache.resident_bytes(), wire::EncodedTreeSize(*v2));
  EXPECT_EQ(cache.stats().inserts, 2u);
  // The overwrite is neither a budget eviction nor an invalidation.
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().invalidations, 0u);
}

TEST(CacheStatsTest, PromotionErasesEveryDedupAliasOfTheBlob) {
  // Two origins serve identical content; the reader caches both, which
  // share one blob. A durable write onto one slot must erase *both*
  // aliases (the mutated tree may alias the shared blob), releasing it.
  AxmlSystem sys;
  PeerId reader = sys.AddPeer("reader");
  PeerId o1 = sys.AddPeer("o1");
  PeerId o2 = sys.AddPeer("o2");
  Rng r1(42), r2(42);  // same seed -> identical content
  NodeIdGen g1, g2;
  TreePtr a = MakeCatalog(8, &g1, &r1);
  TreePtr b = MakeCatalog(8, &g2, &r2);
  ASSERT_TRUE(sys.replicas().InsertCopy(
      reader, o1, "d", a, sys.replicas().Version(o1, "d")));
  // The second origin publishes the same content under another name, so
  // both cache entries live in the reader's cache and share the blob.
  ASSERT_TRUE(sys.replicas().InsertCopy(
      reader, o2, "mirror", b, sys.replicas().Version(o2, "mirror")));
  const TransferCache* cache = sys.replicas().FindCache(reader);
  ASSERT_NE(cache, nullptr);
  ASSERT_EQ(cache->entry_count(), 2u);
  ASSERT_EQ(cache->blob_count(), 1u);

  // Durable write onto the first copy's slot: the slot is promoted and
  // every alias of the (possibly aliased) blob goes with it.
  Peer* host = sys.peer(reader);
  host->PutDocument("d", MakeTextElement("mine", "1", host->gen()));
  EXPECT_EQ(cache->entry_count(), 0u);
  EXPECT_EQ(cache->blob_count(), 0u);
  EXPECT_EQ(cache->resident_bytes(), 0u);
  EXPECT_TRUE(host->HasDocument("d"));  // the promoted document stays
  EXPECT_FALSE(sys.replicas().IsCachedCopy(reader, "d"));
}

TEST(CacheStatsTest, BudgetEvictionCountsFreedBytesAndPolicyVictims) {
  NodeIdGen gen;
  Rng rng(7);
  TreePtr a = MakeCatalog(8, &gen, &rng);
  TreePtr b = MakeCatalog(8, &gen, &rng);
  TreePtr c = MakeCatalog(8, &gen, &rng);
  TransferCache cache(1 << 20);
  ASSERT_TRUE(cache.Put(ReplicaKey{PeerId(0), "a"}, a, DigestOf(*a), 1));
  ASSERT_TRUE(cache.Put(ReplicaKey{PeerId(0), "b"}, b, DigestOf(*b), 1));
  ASSERT_TRUE(cache.Put(ReplicaKey{PeerId(0), "c"}, c, DigestOf(*c), 1));
  const uint64_t resident_before = cache.resident_bytes();
  // Shrink to hold only the newest entry: two LRU victims depart and
  // their blob bytes are the reported churn.
  cache.set_byte_budget(wire::EncodedTreeSize(*c));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().bytes_evicted,
            resident_before - cache.resident_bytes());
  EXPECT_EQ(cache.stats().victims_by_policy[static_cast<size_t>(
                EvictionPolicy::kLru)],
            2u);
  // Invalidations and erases are not churn.
  EXPECT_TRUE(cache.Erase(ReplicaKey{PeerId(0), "c"},
                          /*invalidation=*/true));
  EXPECT_EQ(cache.stats().bytes_evicted,
            resident_before - wire::EncodedTreeSize(*c));
  // The counter is part of the printable stats line.
  EXPECT_NE(cache.stats().ToString().find("bytes_evicted="),
            std::string::npos);
}

TEST(CacheStatsTest, DedupAliasEvictionFreesBlobBytesOnlyOnce) {
  // Two keys alias one blob; evicting the first alias frees nothing
  // (the blob stays resident), evicting the second frees the blob. The
  // churn counter must reflect bytes actually released, not entries.
  NodeIdGen g1, g2;
  Rng r1(42), r2(42);  // same seed -> identical content
  TreePtr a = MakeCatalog(8, &g1, &r1);
  TreePtr b = MakeCatalog(8, &g2, &r2);
  const uint64_t blob_bytes = wire::EncodedTreeSize(*a);
  TransferCache cache(1 << 20);
  ASSERT_TRUE(cache.Put(ReplicaKey{PeerId(1), "d"}, a, DigestOf(*a), 1));
  ASSERT_TRUE(
      cache.Put(ReplicaKey{PeerId(2), "mirror"}, b, DigestOf(*b), 1));
  ASSERT_EQ(cache.blob_count(), 1u);
  ASSERT_EQ(cache.resident_bytes(), blob_bytes);
  // Force both aliases out.
  cache.set_byte_budget(0);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().bytes_evicted, blob_bytes);
}

TEST(CacheStatsTest, VictimCountsSplitByPolicyAcrossASwitch) {
  NodeIdGen gen;
  Rng rng(7);
  TransferCache cache(1 << 20);
  auto fill = [&](const char* prefix) {
    for (int i = 0; i < 3; ++i) {
      TreePtr t = MakeCatalog(4 + i, &gen, &rng);
      ASSERT_TRUE(cache.Put(ReplicaKey{PeerId(0), StrCat(prefix, i)}, t,
                            DigestOf(*t), 1));
    }
  };
  fill("a");
  cache.set_byte_budget(1);  // evict everything under LRU
  const uint64_t lru_victims = cache.stats().evictions;
  ASSERT_GT(lru_victims, 0u);
  cache.set_byte_budget(1 << 20);
  cache.set_eviction_policy(EvictionPolicy::kLfu);
  fill("b");
  cache.set_byte_budget(1);  // evict everything under LFU
  const TransferCacheStats& s = cache.stats();
  EXPECT_EQ(s.victims_by_policy[static_cast<size_t>(EvictionPolicy::kLru)],
            lru_victims);
  EXPECT_EQ(s.victims_by_policy[static_cast<size_t>(EvictionPolicy::kLfu)],
            s.evictions - lru_victims);
  EXPECT_GT(s.evictions, lru_victims);
}

TEST(CacheStatsTest, CostAwareProtectsTheExpensiveDistantCopy) {
  // Deterministic policy behavior: under kCostAware a small nearby-origin
  // copy is the victim even when the distant copy is older — under kLru
  // the distant (least recently inserted) copy would die. The manager
  // wires CostModel::RefetchCost, so the topology is the price list.
  AxmlSystem sys;
  PeerId reader = sys.AddPeer("reader");
  PeerId far = sys.AddPeer("far");
  PeerId near = sys.AddPeer("near");
  sys.network().mutable_topology()->SetLinkSymmetric(
      reader, far, LinkParams{0.500, 1.0e5});
  sys.network().mutable_topology()->SetLinkSymmetric(
      reader, near, LinkParams{0.001, 1.0e7});
  sys.replicas().set_default_eviction_policy(EvictionPolicy::kCostAware);
  Rng rng(7);
  NodeIdGen gen;
  TreePtr big = MakeCatalog(32, &gen, &rng);
  TreePtr small = MakeCatalog(8, &gen, &rng);
  TreePtr extra = MakeCatalog(8, &gen, &rng);
  // Slack for the few-byte size jitter between the two small catalogs.
  sys.replicas().set_default_byte_budget(wire::EncodedTreeSize(*big) +
                                         wire::EncodedTreeSize(*small) + 64);
  ASSERT_TRUE(sys.replicas().InsertCopy(
      reader, far, "hot", big, sys.replicas().Version(far, "hot")));
  ASSERT_TRUE(sys.replicas().InsertCopy(
      reader, near, "c0", small, sys.replicas().Version(near, "c0")));
  // Over budget now: someone must go — the cheap nearby copy, not the
  // expensive distant one, even though the distant one is older.
  ASSERT_TRUE(sys.replicas().InsertCopy(
      reader, near, "c1", extra, sys.replicas().Version(near, "c1")));
  EXPECT_TRUE(sys.replicas().HasFresh(reader, far, "hot"));
  EXPECT_FALSE(sys.replicas().HasFresh(reader, near, "c0"));
  EXPECT_GT(sys.replicas().TotalStats().bytes_evicted, 0u);
}

TEST(CacheStatsTest, TotalStatsSumsAcrossPeersAndUncachedMisses) {
  AxmlSystem sys;
  PeerId owner = sys.AddPeer("owner");
  PeerId r1 = sys.AddPeer("r1");
  PeerId r2 = sys.AddPeer("r2");
  Rng rng(7);
  NodeIdGen gen;
  TreePtr t = MakeCatalog(8, &gen, &rng);

  ASSERT_TRUE(sys.replicas().InsertCopy(
      r1, owner, "d", t->Clone(sys.peer(r1)->gen()),
      sys.replicas().Version(owner, "d")));
  ASSERT_TRUE(sys.replicas().InsertCopy(
      r2, owner, "d", t->Clone(sys.peer(r2)->gen()),
      sys.replicas().Version(owner, "d")));
  // r1: one hit. r2: one hit, one (stale-free) hit. A third peer that
  // never cached: one manager-side miss.
  EXPECT_NE(sys.replicas().LookupFresh(r1, owner, "d"), nullptr);
  EXPECT_NE(sys.replicas().LookupFresh(r2, owner, "d"), nullptr);
  EXPECT_NE(sys.replicas().LookupFresh(r2, owner, "d"), nullptr);
  PeerId r3 = sys.AddPeer("r3");
  EXPECT_EQ(sys.replicas().LookupFresh(r3, owner, "d"), nullptr);

  const TransferCacheStats total = sys.replicas().TotalStats();
  EXPECT_EQ(total.inserts, 2u);
  EXPECT_EQ(total.hits, 3u);
  EXPECT_EQ(total.misses, 1u);
  EXPECT_EQ(total.bytes_saved,
            sys.replicas().FindCache(r1)->stats().bytes_saved +
                sys.replicas().FindCache(r2)->stats().bytes_saved);

  sys.replicas().ResetStats();
  const TransferCacheStats zero = sys.replicas().TotalStats();
  EXPECT_EQ(zero.hits + zero.misses + zero.inserts, 0u);
}

}  // namespace
}  // namespace axml
