// Model-based property test for the TransferCache under every eviction
// policy.
//
// Hand-written example tests stop scaling once the cache's state space
// is policies × budgets × dedup aliasing × versioned staleness. This
// harness drives ~10k seeded-random Put/Get/Erase/set_byte_budget ops
// per policy against a plain-map reference oracle — over *shard-granular*
// keys (whole-document, manifest and data-shard entries of one document
// coexist as independent entries) — and asserts the invariants after
// every single op:
//
//   - resident_bytes <= byte_budget, blob_count <= entry_count,
//   - blob refcounts match alias counts and the resident-byte sum
//     (recomputed externally from Keys()+Peek, plus the cache's own
//     IntegrityError cross-check),
//   - hits + misses == Gets issued,
//   - a hit is *sound*: the returned tree is exactly the content the
//     oracle recorded at the expected version — never stale bytes,
//   - the evict listener fired exactly once per departing entry,
//   - a subscription table driven by the manager's shard-granular rule
//     (subscribe each surviving insert, unsubscribe each departure)
//     tracks exactly the resident key set.
//
// The seed comes from AXML_TEST_SEED (tests/test_util.h); CI runs a
// 5-seed matrix, so a failure reproduces as a pinned one-liner.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "xml/digest.h"
#include "replica/eviction_policy.h"
#include "replica/transfer_cache.h"
#include "test_util.h"
#include "xml/tree_equal.h"
#include "xml/wire.h"

namespace axml {
namespace {

using testing::MakeCatalog;
using testing::TestSeed;

constexpr size_t kOps = 10000;
constexpr size_t kOrigins = 4;
constexpr size_t kNames = 6;

struct OracleDoc {
  size_t content = 0;   ///< index into the content pool
  uint64_t version = 1; ///< current origin version
};

class CacheModelHarness {
 public:
  CacheModelHarness(EvictionPolicy policy, uint64_t seed)
      : rng_(seed), cache_(/*byte_budget=*/4096, policy) {
    // A synthetic refetch-cost surface so kCostAware actually ranks
    // origins differently (origin 0 cheapest, origin 3 dearest).
    cache_.set_refetch_cost([](const ReplicaKey& key, uint64_t bytes) {
      return (key.origin.index() + 1) * 0.02 +
             static_cast<double>(bytes) * 1e-6;
    });
    cache_.set_evict_listener(
        [this](const ReplicaKey& key, const TransferCache::Entry&) {
          departures_.push_back(key);
          // Mirror of the ReplicaManager's shard-granular subscription
          // rule: every departing entry — whole-document, manifest or
          // data shard — ends its own subscription.
          subscribed_.erase(key);
        });
    // Content pool: distinct sizes exercise budget pressure; two entries
    // share identical content to exercise dedup aliasing under eviction.
    Rng content_rng(0xC0FFEE);
    for (size_t n : {2, 4, 4, 8, 12, 16, 24, 32}) {
      contents_.push_back(MakeCatalog(n, &gen_, &content_rng));
    }
    Rng twin_rng(0xC0FFEE);  // same seed -> contents_[8] == contents_[0]
    contents_.push_back(MakeCatalog(2, &gen_, &twin_rng));
    for (const TreePtr& t : contents_) {
      canonical_.push_back(CanonicalForm(*t));
    }
    // Registry cross-check rig: the same retrofit mount the system uses,
    // re-verified against the typed accessors after every op.
    registry_.RegisterSource("cache", [this](MetricSink& sink) {
      cache_.stats().ExportMetrics(sink);
      sink.Value("resident_bytes", cache_.resident_bytes());
      sink.Value("entry_count", cache_.entry_count());
    });
  }

  void Run(size_t ops) {
    for (size_t i = 0; i < ops; ++i) {
      Step();
      if (::testing::Test::HasFailure()) {
        FAIL() << "invariant broken at op " << i << " (policy "
               << EvictionPolicyName(cache_.eviction_policy())
               << "); rerun with AXML_TEST_SEED pinned";
      }
    }
    // The workload must have actually exercised the interesting paths.
    EXPECT_GT(cache_.stats().evictions, 0u);
    EXPECT_GT(cache_.stats().hits, 0u);
    EXPECT_GT(cache_.stats().misses, 0u);
    EXPECT_GT(cache_.stats().bytes_deduped, 0u);
  }

 private:
  ReplicaKey RandomKey() {
    ReplicaKey key{PeerId(static_cast<uint32_t>(rng_.Index(kOrigins))),
                   StrCat("d", rng_.Index(kNames))};
    // Shard-granular keys: the cache treats the shard dimension as
    // opaque, so whole-document keys, manifests and data shards of one
    // document must coexist as independent entries under every policy.
    const uint64_t kind = rng_.Uniform(4);
    if (kind == 1) {
      key.shard = kManifestShardId;
    } else if (kind >= 2) {
      key.shard = StrCat("shard", rng_.Index(3));
    }
    return key;
  }

  OracleDoc& OracleFor(const ReplicaKey& key) { return oracle_[key]; }

  void Step() {
    const std::vector<ReplicaKey> before_keys = cache_.Keys();
    const size_t departures_before = departures_.size();
    const uint64_t inserts_before = cache_.stats().inserts;
    const ReplicaKey key = RandomKey();
    bool did_put = false;

    const uint64_t op = rng_.Uniform(100);
    if (op < 40) {
      DoPut(key);
      did_put = true;
    } else if (op < 65) {
      DoGet(key);
    } else if (op < 75) {
      cache_.Erase(key, /*invalidation=*/rng_.Bernoulli(0.5));
    } else if (op < 85) {
      // Origin-side mutation: the oracle's version moves on; the copy
      // (if any) is now stale and must die on its next lookup.
      ++OracleFor(key).version;
    } else if (op < 95) {
      static constexpr uint64_t kBudgets[] = {600, 1500, 4096, 12000,
                                              1u << 20};
      cache_.set_byte_budget(kBudgets[rng_.Index(5)]);
    } else {
      cache_.Clear();
    }

    CheckInvariants(before_keys, departures_before, inserts_before, key,
                    did_put);
  }

  void DoPut(const ReplicaKey& key) {
    OracleDoc& doc = OracleFor(key);
    const size_t content = rng_.Index(contents_.size());
    const TreePtr& proto = contents_[content];
    const uint64_t bytes = wire::EncodedTreeSize(*proto);
    const bool fits = bytes <= cache_.byte_budget();
    const bool accepted = cache_.Put(key, proto->Clone(&gen_),
                                     DigestOf(*proto), doc.version);
    if (!fits) {
      // A refused over-budget Put caches nothing and leaves any resident
      // copy for this key untouched — the oracle must not move either.
      EXPECT_FALSE(accepted) << "over-budget Put must refuse";
      return;
    }
    // The Put proceeded: the old copy (if any) is gone; the new content
    // is resident unless the policy self-evicted it immediately.
    doc.content = content;
    if (accepted) {
      const TransferCache::Entry* e = cache_.Peek(key);
      ASSERT_NE(e, nullptr);
      EXPECT_EQ(e->origin_version, doc.version);
      EXPECT_EQ(CanonicalForm(*e->tree), canonical_[doc.content]);
    }
    // Subscribe exactly the entries that survived the insert — the
    // manager's rule (it re-checks residency with Peek after Put, since
    // a Put can self-evict its own key under budget pressure).
    if (accepted && cache_.Peek(key) != nullptr) {
      subscribed_.insert(key);
    }
  }

  void DoGet(const ReplicaKey& key) {
    const OracleDoc& doc = OracleFor(key);
    // Mostly ask at the current version; sometimes at a future one,
    // which must always miss (and invalidate a resident copy).
    const bool future = rng_.Bernoulli(0.2);
    const uint64_t expected = doc.version + (future ? 1 : 0);
    ++gets_issued_;
    TreePtr got = cache_.Get(key, expected);
    if (future) {
      EXPECT_EQ(got, nullptr) << "no copy can exist at a future version";
    }
    if (got != nullptr) {
      // Soundness: a hit serves exactly the content the oracle recorded
      // for this key — a stale tree here is the bug class this whole
      // subsystem exists to prevent.
      EXPECT_EQ(CanonicalForm(*got), canonical_[doc.content]);
    }
  }

  void CheckInvariants(const std::vector<ReplicaKey>& before_keys,
                       size_t departures_before, uint64_t inserts_before,
                       const ReplicaKey& op_key, bool did_put) {
    // The cache's own full cross-check: blob refcounts vs alias counts,
    // resident-byte accounting, strategy bookkeeping, budget compliance.
    EXPECT_EQ(cache_.IntegrityError(), "");
    EXPECT_LE(cache_.resident_bytes(), cache_.byte_budget());
    EXPECT_LE(cache_.blob_count(), cache_.entry_count());

    // External recomputation (not trusting the cache's self-report):
    // distinct digests and their byte sum must match the blob table.
    std::map<std::string, uint64_t> digest_bytes;
    for (const ReplicaKey& k : cache_.Keys()) {
      const TransferCache::Entry* e = cache_.Peek(k);
      ASSERT_NE(e, nullptr);
      digest_bytes[e->digest.ToString()] = e->bytes;
      // Wire-format oracle: the resident blob is exactly what the
      // encoder produces for the entry's tree, and the entry's priced
      // bytes are that blob's length — the cache never charges an
      // estimate that drifts from the bytes it would actually ship.
      const std::string* blob = cache_.PeekEncoded(k);
      ASSERT_NE(blob, nullptr);
      EXPECT_EQ(*blob, wire::EncodeTree(*e->tree));
      EXPECT_EQ(blob->size(), e->bytes);
      // Every resident entry is something the oracle once put — at a
      // version the oracle has not passed.
      auto it = oracle_.find(k);
      ASSERT_NE(it, oracle_.end());
      EXPECT_LE(e->origin_version, it->second.version);
    }
    EXPECT_EQ(digest_bytes.size(), cache_.blob_count());
    uint64_t total = 0;
    for (const auto& [digest, bytes] : digest_bytes) total += bytes;
    EXPECT_EQ(total, cache_.resident_bytes());

    // hits + misses arithmetic.
    EXPECT_EQ(cache_.stats().hits + cache_.stats().misses, gets_issued_);

    // Registry retrofit drift check: the snapshot equals the typed
    // accessors, field for field, after every single op.
    const MetricsSnapshot snap = registry_.Snapshot();
    const TransferCacheStats& st = cache_.stats();
    EXPECT_EQ(snap.ValueOr("cache/hits"), st.hits);
    EXPECT_EQ(snap.ValueOr("cache/misses"), st.misses);
    EXPECT_EQ(snap.ValueOr("cache/inserts"), st.inserts);
    EXPECT_EQ(snap.ValueOr("cache/evictions"), st.evictions);
    EXPECT_EQ(snap.ValueOr("cache/invalidations"), st.invalidations);
    EXPECT_EQ(snap.ValueOr("cache/bytes_evicted"), st.bytes_evicted);
    EXPECT_EQ(snap.ValueOr("cache/bytes_saved"), st.bytes_saved);
    EXPECT_EQ(snap.ValueOr("cache/bytes_deduped"), st.bytes_deduped);
    EXPECT_EQ(snap.ValueOr("cache/resident_bytes"), cache_.resident_bytes());
    EXPECT_EQ(snap.ValueOr("cache/entry_count"), cache_.entry_count());
    uint64_t victims = 0;
    for (size_t i = 0; i < kEvictionPolicyCount; ++i) {
      victims += snap.ValueOr(StrCat(
          "cache/victims_",
          EvictionPolicyName(static_cast<EvictionPolicy>(i))));
    }
    EXPECT_EQ(victims, st.evictions);

    // Shard-granular subscription invariant: a holder driven by the
    // subscribe-on-insert / unsubscribe-on-evict rule is subscribed to
    // exactly the keys it has resident — whole-document, manifest and
    // data-shard entries alike. This is what lets mutation fan-out skip
    // holders of untouched shards without ever leaking a subscription.
    const std::vector<ReplicaKey> resident = cache_.Keys();
    EXPECT_EQ(subscribed_,
              std::set<ReplicaKey>(resident.begin(), resident.end()));

    // Evict-listener contract: exactly one event per departing entry.
    // Departures this op = entries before + entries inserted - entries
    // after (the only ways in and out).
    const uint64_t inserted = cache_.stats().inserts - inserts_before;
    const size_t expected_departures =
        before_keys.size() + inserted - cache_.entry_count();
    const size_t fired = departures_.size() - departures_before;
    EXPECT_EQ(fired, expected_departures);
    // Each event names an entry that was resident at op start, or (at
    // most once more, for insert-then-self-evict / overwrite) the op's
    // own Put key.
    std::set<ReplicaKey> before_set(before_keys.begin(), before_keys.end());
    std::map<ReplicaKey, int> fired_counts;
    for (size_t i = departures_before; i < departures_.size(); ++i) {
      ++fired_counts[departures_[i]];
    }
    for (const auto& [k, count] : fired_counts) {
      const bool was_resident = before_set.count(k) > 0;
      const bool is_put_key = did_put && k == op_key;
      EXPECT_TRUE(was_resident || is_put_key)
          << "listener fired for never-resident " << k.ToString();
      EXPECT_LE(count, (was_resident ? 1 : 0) + (is_put_key ? 1 : 0))
          << "listener fired twice for " << k.ToString();
    }
  }

  Rng rng_;
  NodeIdGen gen_;
  TransferCache cache_;
  std::vector<TreePtr> contents_;
  std::vector<std::string> canonical_;
  std::map<ReplicaKey, OracleDoc> oracle_;
  std::vector<ReplicaKey> departures_;
  std::set<ReplicaKey> subscribed_;  ///< mirror of resident keys
  MetricRegistry registry_;
  uint64_t gets_issued_ = 0;
};

class CacheModelTest
    : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(CacheModelTest, TenThousandRandomOpsHoldEveryInvariant) {
  CacheModelHarness harness(GetParam(), TestSeed(0xABCD1234));
  harness.Run(kOps);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CacheModelTest,
    ::testing::Values(EvictionPolicy::kLru, EvictionPolicy::kLfu,
                      EvictionPolicy::kCostAware),
    [](const ::testing::TestParamInfo<EvictionPolicy>& info) {
      return EvictionPolicyName(info.param);
    });

}  // namespace
}  // namespace axml
