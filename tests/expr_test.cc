// Tests for the algebra expression type and its XML serialization.

#include <gtest/gtest.h>

#include "algebra/expr.h"
#include "algebra/expr_xml.h"
#include "test_util.h"
#include "xml/xml_parser.h"

namespace axml {
namespace {

ExprPtr SampleTree(NodeIdGen* gen) {
  TreePtr t = ParseXml("<q><k>v</k></q>", gen).value();
  return Expr::Tree(t, PeerId(0));
}

TEST(ExprTest, FactoriesAndAccessors) {
  NodeIdGen gen(PeerId(0));
  ExprPtr t = SampleTree(&gen);
  EXPECT_EQ(t->kind(), Expr::Kind::kTree);
  EXPECT_EQ(t->tree_owner(), PeerId(0));

  ExprPtr d = Expr::Doc("catalog", PeerId(1));
  EXPECT_EQ(d->kind(), Expr::Kind::kDoc);
  EXPECT_FALSE(d->is_generic_doc());

  ExprPtr g = Expr::GenericDoc("ecatalog");
  EXPECT_TRUE(g->is_generic_doc());
  EXPECT_EQ(g->doc_name(), "ecatalog");

  Query q = Query::Parse("for $x in input(0) return $x").value();
  ExprPtr a = Expr::Apply(q, PeerId(0), {d});
  EXPECT_EQ(a->kind(), Expr::Kind::kApply);
  EXPECT_EQ(a->args().size(), 1u);

  ExprPtr c = Expr::Call(PeerId(2), "svc", {t});
  EXPECT_EQ(c->provider(), PeerId(2));
  EXPECT_FALSE(c->is_generic_service());
  ExprPtr cg = Expr::CallGeneric("esvc", {t});
  EXPECT_TRUE(cg->is_generic_service());

  ExprPtr s = Expr::SendToPeer(PeerId(1), t);
  EXPECT_EQ(s->dest().kind, Expr::SendDest::Kind::kPeer);
  EXPECT_EQ(s->payload(), t);

  ExprPtr e = Expr::EvalAt(PeerId(1), a);
  EXPECT_EQ(e->eval_where(), PeerId(1));
  EXPECT_EQ(e->body(), a);

  ExprPtr seq = Expr::Seq(s, e);
  EXPECT_EQ(seq->first(), s);
  EXPECT_EQ(seq->then(), e);
}

TEST(ExprTest, WithChildrenRebuilds) {
  NodeIdGen gen(PeerId(0));
  Query q = Query::Parse(
                "for $x in input(0) for $y in input(1) return $x")
                .value();
  ExprPtr a = Expr::Apply(q, PeerId(0),
                          {Expr::Doc("d1", PeerId(1)),
                           Expr::Doc("d2", PeerId(2))});
  std::vector<ExprPtr> kids = a->children();
  kids[1] = Expr::Doc("d2cache", PeerId(0));
  ExprPtr b = a->WithChildren(std::move(kids));
  EXPECT_EQ(b->kind(), Expr::Kind::kApply);
  EXPECT_EQ(b->args()[0]->doc_name(), "d1");
  EXPECT_EQ(b->args()[1]->doc_name(), "d2cache");
  // Query carried over.
  EXPECT_EQ(b->query().text(), q.text());
}

TEST(ExprTest, ToStringMentionsStructure) {
  ExprPtr e = Expr::EvalAt(
      PeerId(2),
      Expr::SendToPeer(PeerId(1), Expr::Doc("d", PeerId(0))));
  std::string s = e->ToString();
  EXPECT_NE(s.find("evalAt(p2"), std::string::npos);
  EXPECT_NE(s.find("send(p1"), std::string::npos);
  EXPECT_NE(s.find("doc(d)@p0"), std::string::npos);
}

TEST(ExprTest, NodeCount) {
  NodeIdGen gen(PeerId(0));
  ExprPtr e = Expr::Seq(SampleTree(&gen),
                        Expr::SendToPeer(PeerId(1), SampleTree(&gen)));
  EXPECT_EQ(e->NodeCount(), 4u);
}

// --- XML round trips (§3.1: expressions are XML trees) ---

class ExprXmlRoundTrip : public ::testing::Test {
 protected:
  void Check(const ExprPtr& e) {
    NodeIdGen gen(PeerId(5));
    std::string xml = SerializeCompactExpr(*e, &gen);
    auto back = ParseExprXml(xml, &gen);
    ASSERT_TRUE(back.ok()) << back.status() << "\nxml: " << xml;
    EXPECT_EQ(back.value()->ToString(), e->ToString()) << xml;
    // Stable second round.
    NodeIdGen gen2;
    EXPECT_EQ(SerializeCompactExpr(*back.value(), &gen2), xml);
  }
};

TEST_F(ExprXmlRoundTrip, Tree) {
  NodeIdGen gen(PeerId(0));
  Check(SampleTree(&gen));
}

TEST_F(ExprXmlRoundTrip, DocAndGenericDoc) {
  Check(Expr::Doc("catalog", PeerId(3)));
  Check(Expr::GenericDoc("ecatalog"));
}

TEST_F(ExprXmlRoundTrip, Apply) {
  Query q = Query::Parse(
                "for $x in input(0)//a where $x/p < 3 return $x")
                .value();
  Check(Expr::Apply(q, PeerId(1), {Expr::Doc("d", PeerId(0))}));
}

TEST_F(ExprXmlRoundTrip, CallWithForwards) {
  NodeIdGen gen(PeerId(0));
  Check(Expr::Call(PeerId(2), "svc", {SampleTree(&gen)},
                   {NodeLocation{NodeId(PeerId(1), 9), PeerId(1)},
                    NodeLocation{NodeId(PeerId(3), 4), PeerId(3)}}));
  Check(Expr::CallGeneric("esvc", {SampleTree(&gen)}));
}

TEST_F(ExprXmlRoundTrip, Sends) {
  NodeIdGen gen(PeerId(0));
  Check(Expr::SendToPeer(PeerId(1), SampleTree(&gen)));
  Check(Expr::SendToNodes({NodeLocation{NodeId(PeerId(1), 3), PeerId(1)}},
                          SampleTree(&gen)));
  Check(Expr::SendAsDoc("newdoc", PeerId(2), SampleTree(&gen)));
}

TEST_F(ExprXmlRoundTrip, ShipQuery) {
  Query q = Query::Parse("for $x in input(0) return $x").value();
  Check(Expr::ShipQuery(PeerId(2), q, PeerId(0), "installed"));
}

TEST_F(ExprXmlRoundTrip, EvalAtAndSeq) {
  NodeIdGen gen(PeerId(0));
  Check(Expr::EvalAt(PeerId(1), SampleTree(&gen)));
  Check(Expr::Seq(Expr::SendToPeer(PeerId(1), SampleTree(&gen)),
                  Expr::Doc("d", PeerId(0))));
}

TEST_F(ExprXmlRoundTrip, DeeplyNested) {
  NodeIdGen gen(PeerId(0));
  Query q = Query::Parse("for $x in input(0) return $x").value();
  ExprPtr e = Expr::EvalAt(
      PeerId(1),
      Expr::Apply(q, PeerId(0),
                  {Expr::Apply(q, PeerId(1),
                               {Expr::Call(PeerId(2), "s",
                                           {SampleTree(&gen)})})}));
  Check(e);
}

TEST(ExprXmlTest, RejectsUnknownElements) {
  NodeIdGen gen;
  EXPECT_FALSE(ParseExprXml("<x:mystery/>", &gen).ok());
  EXPECT_FALSE(ParseExprXml("<x:tree peer=\"0\"/>", &gen).ok());
  EXPECT_FALSE(ParseExprXml("<x:apply peer=\"0\"/>", &gen).ok());
  EXPECT_FALSE(ParseExprXml("<x:send peer=\"zz\"><x:doc name=\"d\" "
                            "peer=\"0\"/></x:send>",
                            &gen)
                   .ok());
  EXPECT_FALSE(ParseExprXml("not xml", &gen).ok());
}

TEST(ExprXmlTest, SerializedSizeTracksPayload) {
  NodeIdGen gen(PeerId(0));
  TreePtr small = ParseXml("<a/>", &gen).value();
  TreePtr big = ParseXml(
      "<a><b>payload payload payload payload</b><c>more</c></a>", &gen)
                    .value();
  EXPECT_LT(Expr::Tree(small, PeerId(0))->SerializedSize(),
            Expr::Tree(big, PeerId(0))->SerializedSize());
}

}  // namespace
}  // namespace axml
