// Tests for the algebra evaluator: one or more tests per definition of
// §3.2 (see evaluator.h for the mapping), plus the AXML document
// runtime (activation modes of §2.2) and failure injection for the
// undefined cases.

#include <gtest/gtest.h>

#include "algebra/evaluator.h"
#include "algebra/expr.h"
#include "test_util.h"
#include "xml/tree_equal.h"
#include "xml/wire.h"
#include "xml/xml_parser.h"
#include "xml/xml_serializer.h"

namespace axml {
namespace {

constexpr double kLat = 0.010;
constexpr double kBw = 1.0e6;

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : sys_(Topology(LinkParams{kLat, kBw})) {
    p0_ = sys_.AddPeer("p0");
    p1_ = sys_.AddPeer("p1");
    p2_ = sys_.AddPeer("p2");
  }

  TreePtr Parse(PeerId p, const std::string& xml) {
    return ParseXml(xml, sys_.peer(p)->gen()).value();
  }

  void InstallEcho(PeerId p, const std::string& name = "echo") {
    Query q = Query::Parse("for $x in input(0) return $x").value();
    ASSERT_TRUE(sys_.InstallService(p, Service::Declarative(name, q)).ok());
  }

  AxmlSystem sys_;
  PeerId p0_, p1_, p2_;
};

// --- Definition (1): tree evaluation ---

TEST_F(EvaluatorTest, LocalPlainTreeEvaluatesToItself) {
  TreePtr t = Parse(p0_, "<a><b>x</b></a>");
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Tree(t, p0_));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 1u);
  EXPECT_TRUE(TreesEqualUnordered(*t, *out->results[0]));
  // No network traffic for a purely local value.
  EXPECT_EQ(sys_.network().stats().remote_bytes(), 0u);
}

// --- Definition (5): remote data evaluates at its owner, ships home ---

TEST_F(EvaluatorTest, RemoteTreeShipsToEvaluator) {
  TreePtr t = Parse(p1_, "<a><b>x</b></a>");
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Tree(t, p1_));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 1u);
  EXPECT_TRUE(TreesEqualUnordered(*t, *out->results[0]));
  // The copy landed with fresh ids minted by p0, and the transfer was
  // priced at exactly the encoded payload's size.
  EXPECT_EQ(out->results[0]->id().minted_by(), p0_);
  const uint64_t size = wire::EncodedTreeSize(*t);
  EXPECT_EQ(sys_.network().stats().Pair(p1_, p0_).bytes, size);
  EXPECT_NEAR(out->Duration(), kLat + size / kBw, 1e-9);
}

TEST_F(EvaluatorTest, LocalDocumentEvaluatesToItsTree) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p0_, "d", "<r><i/></r>").ok());
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Doc("d", p0_));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 1u);
  EXPECT_EQ(out->results[0]->label_text(), "r");
}

TEST_F(EvaluatorTest, MissingDocumentFails) {
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Doc("nope", p0_));
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(EvaluatorTest, UnknownPeerFails) {
  Evaluator ev(&sys_);
  EXPECT_EQ(ev.Eval(PeerId(99), Expr::Doc("d", p0_)).status().code(),
            StatusCode::kNotFound);
  auto out = ev.Eval(p0_, Expr::Doc("d", PeerId(99)));
  EXPECT_FALSE(out.ok());
}

// --- Definition (2): local query application ---

TEST_F(EvaluatorTest, LocalQueryOverLocalDoc) {
  ASSERT_TRUE(sys_.InstallDocumentXml(
      p0_, "cat",
      "<catalog><product><price>5</price></product>"
      "<product><price>50</price></product></catalog>").ok());
  Query q = Query::Parse(
                "for $p in input(0)/catalog/product "
                "where $p/price < 10 return $p")
                .value();
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Apply(q, p0_, {Expr::Doc("cat", p0_)}));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->results.size(), 1u);
  // Compute time charged at p0.
  EXPECT_GT(out->Duration(), 0.0);
}

// --- Definition (7): remote query ships to the evaluator ---

TEST_F(EvaluatorTest, RemoteQueryTextIsShipped) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p0_, "d", "<r><i/></r>").ok());
  Query q = Query::Parse("for $x in input(0)//i return $x").value();
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Apply(q, p1_, {Expr::Doc("d", p0_)}));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->results.size(), 1u);
  EXPECT_EQ(sys_.network().stats().Pair(p1_, p0_).bytes,
            wire::EncodedTextSize(q.text()));
}

// --- Definition (6): service calls ---

TEST_F(EvaluatorTest, ServiceCallRoundTrip) {
  InstallEcho(p1_);
  TreePtr param = Parse(p0_, "<msg>hi</msg>");
  Evaluator ev(&sys_);
  auto out = ev.Eval(
      p0_, Expr::Call(p1_, "echo", {Expr::Tree(param, p0_)}));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 1u);
  EXPECT_TRUE(TreesEqualUnordered(*param, *out->results[0]));
  // Parameters went caller->provider, the response came back.
  EXPECT_GT(sys_.network().stats().Pair(p0_, p1_).bytes, 0u);
  EXPECT_GT(sys_.network().stats().Pair(p1_, p0_).bytes, 0u);
}

TEST_F(EvaluatorTest, ContinuousServiceStreamsManyResults) {
  Query q = Query::Parse("for $x in input(0)//i return $x").value();
  ASSERT_TRUE(
      sys_.InstallService(p1_, Service::Declarative("explode", q)).ok());
  TreePtr param = Parse(p0_, "<r><i>1</i><i>2</i><i>3</i></r>");
  Evaluator ev(&sys_);
  auto out = ev.Eval(
      p0_, Expr::Call(p1_, "explode", {Expr::Tree(param, p0_)}));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->results.size(), 3u);
}

TEST_F(EvaluatorTest, ServiceCallWithForwardList) {
  InstallEcho(p1_);
  // A mailbox document on p2 receives the responses directly.
  TreePtr mailbox = Parse(p2_, "<mailbox/>");
  ASSERT_TRUE(sys_.InstallDocument(p2_, "mbox", mailbox).ok());
  TreePtr param = Parse(p0_, "<msg>direct</msg>");
  Evaluator ev(&sys_);
  auto out = ev.Eval(
      p0_, Expr::Call(p1_, "echo", {Expr::Tree(param, p0_)},
                      {NodeLocation{mailbox->id(), p2_}}));
  ASSERT_TRUE(out.ok()) << out.status();
  // ∅ at the caller; the response landed on p2.
  EXPECT_TRUE(out->results.empty());
  ASSERT_EQ(mailbox->child_count(), 1u);
  EXPECT_EQ(mailbox->child(0)->StringValue(), "direct");
  // Rule (15)'s observation: nothing shipped provider->caller.
  EXPECT_EQ(sys_.network().stats().Pair(p1_, p0_).bytes, 0u);
  EXPECT_GT(sys_.network().stats().Pair(p1_, p2_).bytes, 0u);
}

TEST_F(EvaluatorTest, ForwardListFansOutCopies) {
  InstallEcho(p1_);
  TreePtr box1 = Parse(p0_, "<box1/>");
  TreePtr box2 = Parse(p2_, "<box2/>");
  ASSERT_TRUE(sys_.InstallDocument(p0_, "b1", box1).ok());
  ASSERT_TRUE(sys_.InstallDocument(p2_, "b2", box2).ok());
  TreePtr param = Parse(p0_, "<m>fanout</m>");
  Evaluator ev(&sys_);
  auto out = ev.Eval(
      p0_, Expr::Call(p1_, "echo", {Expr::Tree(param, p0_)},
                      {NodeLocation{box1->id(), p0_},
                       NodeLocation{box2->id(), p2_}}));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(box1->child_count(), 1u);
  EXPECT_EQ(box2->child_count(), 1u);
}

TEST_F(EvaluatorTest, UnknownServiceFails) {
  Evaluator ev(&sys_);
  auto out = ev.Eval(
      p0_, Expr::Call(p1_, "missing", {}));
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(EvaluatorTest, ArityMismatchFails) {
  InstallEcho(p1_);
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Call(p1_, "echo", {}));
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EvaluatorTest, NativeServiceInvoked) {
  Service s = Service::Native(
      "stamp", 1,
      [this](const std::vector<TreePtr>& params,
             Peer* self) -> Result<std::vector<TreePtr>> {
        TreePtr out = TreeNode::Element("stamped", self->gen());
        out->AddChild(params[0]->Clone(self->gen()));
        return std::vector<TreePtr>{out};
      });
  ASSERT_TRUE(sys_.InstallService(p1_, s).ok());
  Evaluator ev(&sys_);
  auto out = ev.Eval(
      p0_, Expr::Call(p1_, "stamp",
                      {Expr::Tree(Parse(p0_, "<x/>"), p0_)}));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 1u);
  EXPECT_EQ(out->results[0]->label_text(), "stamped");
}

TEST_F(EvaluatorTest, SignatureTypeCheckRejectsBadParameter) {
  Signature sig;
  sig.in = {SchemaType::Element("n", {One(SchemaType::Number())})};
  sig.out = nullptr;
  Query q = Query::Parse("for $x in input(0) return $x").value();
  ASSERT_TRUE(
      sys_.InstallService(p1_, Service::Declarative("typed", q, sig)).ok());
  Evaluator ev(&sys_);
  auto bad = ev.Eval(
      p0_, Expr::Call(p1_, "typed",
                      {Expr::Tree(Parse(p0_, "<n>abc</n>"), p0_)}));
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
  auto good = ev.Eval(
      p0_, Expr::Call(p1_, "typed",
                      {Expr::Tree(Parse(p0_, "<n>42</n>"), p0_)}));
  EXPECT_TRUE(good.ok()) << good.status();
}

// --- Definitions (3)/(4): sends ---

TEST_F(EvaluatorTest, SendToPeerReturnsNothingLocally) {
  TreePtr t = Parse(p0_, "<gift/>");
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::SendToPeer(p1_, Expr::Tree(t, p0_)));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->results.empty());
  // The copy landed in p1's inbox.
  TreePtr inbox = sys_.peer(p1_)->GetDocument("axml:inbox");
  ASSERT_NE(inbox, nullptr);
  ASSERT_EQ(inbox->child_count(), 1u);
  EXPECT_EQ(inbox->child(0)->label_text(), "gift");
}

TEST_F(EvaluatorTest, SendToNodesAppendsUnderEachTarget) {
  TreePtr spot1 = Parse(p1_, "<spot1/>");
  TreePtr spot2 = Parse(p2_, "<spot2/>");
  ASSERT_TRUE(sys_.InstallDocument(p1_, "s1", spot1).ok());
  ASSERT_TRUE(sys_.InstallDocument(p2_, "s2", spot2).ok());
  TreePtr t = Parse(p0_, "<payload>v</payload>");
  Evaluator ev(&sys_);
  auto out = ev.Eval(
      p0_, Expr::SendToNodes({NodeLocation{spot1->id(), p1_},
                              NodeLocation{spot2->id(), p2_}},
                             Expr::Tree(t, p0_)));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->results.empty());
  ASSERT_EQ(spot1->child_count(), 1u);
  ASSERT_EQ(spot2->child_count(), 1u);
  // Distinct copies, each minted by its destination.
  EXPECT_EQ(spot1->child(0)->id().minted_by(), p1_);
  EXPECT_EQ(spot2->child(0)->id().minted_by(), p2_);
}

TEST_F(EvaluatorTest, SendOfRemoteTreeIsUndefined) {
  TreePtr t = Parse(p1_, "<theirs/>");
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::SendToPeer(p2_, Expr::Tree(t, p1_)));
  EXPECT_EQ(out.status().code(), StatusCode::kUndefined);
  auto out2 = ev.Eval(p0_, Expr::SendToPeer(p2_, Expr::Doc("d", p1_)));
  EXPECT_EQ(out2.status().code(), StatusCode::kUndefined);
}

TEST_F(EvaluatorTest, SendToMissingNodeFails) {
  TreePtr t = Parse(p0_, "<x/>");
  Evaluator ev(&sys_);
  NodeIdGen foreign(p1_);
  auto out = ev.Eval(
      p0_, Expr::SendToNodes({NodeLocation{foreign.Next(), p1_}},
                             Expr::Tree(t, p0_)));
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(EvaluatorTest, SendAsDocInstallsAndAccumulates) {
  ASSERT_TRUE(sys_.InstallDocumentXml(
      p0_, "src", "<r><i>1</i><i>2</i></r>").ok());
  Query q = Query::Parse("for $x in input(0)//i return $x").value();
  Evaluator ev(&sys_);
  auto out = ev.Eval(
      p0_, Expr::SendAsDoc("copy", p1_,
                           Expr::Apply(q, p0_, {Expr::Doc("src", p0_)})));
  ASSERT_TRUE(out.ok()) << out.status();
  TreePtr copy = sys_.peer(p1_)->GetDocument("copy");
  ASSERT_NE(copy, nullptr);
  // First result became the document; the second accumulated under it.
  EXPECT_EQ(copy->label_text(), "i");
  EXPECT_EQ(copy->child_count(), 2u);  // its own text + appended tree
  // The new document is discoverable.
  LookupResult found = sys_.catalog()->LookupNow(
      ResourceKind::kDocument, "copy", p0_, sys_.network());
  ASSERT_EQ(found.holders.size(), 1u);
  EXPECT_EQ(found.holders[0], p1_);
}

// --- Definition (8): query shipping ---

TEST_F(EvaluatorTest, ShipQueryInstallsService) {
  Query q = Query::Parse("for $x in input(0)//i return $x").value();
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::ShipQuery(p1_, q, p0_, "unnest"));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->results.empty());
  const Service* s = sys_.peer(p1_)->GetService("unnest");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->is_declarative());
  EXPECT_EQ(s->query().text(), q.text());
  // Now callable like any service.
  auto call = ev.Eval(
      p2_, Expr::Call(p1_, "unnest",
                      {Expr::Tree(Parse(p2_, "<r><i/><i/></r>"), p2_)}));
  ASSERT_TRUE(call.ok()) << call.status();
  EXPECT_EQ(call->results.size(), 2u);
}

TEST_F(EvaluatorTest, ShipQueryOfForeignQueryIsUndefined) {
  Query q = Query::Parse("for $x in input(0) return $x").value();
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::ShipQuery(p2_, q, p1_, "x"));
  EXPECT_EQ(out.status().code(), StatusCode::kUndefined);
}

// --- Rules (14)/(15) carrier: EvalAt ---

TEST_F(EvaluatorTest, EvalAtProducesSameResultsAsLocal) {
  ASSERT_TRUE(sys_.InstallDocumentXml(
      p1_, "d", "<r><i>1</i><i>2</i></r>").ok());
  Query q = Query::Parse("for $x in input(0)//i return $x").value();
  ExprPtr direct = Expr::Apply(q, p0_, {Expr::Doc("d", p1_)});
  Evaluator ev1(&sys_);
  auto local = ev1.Eval(p0_, direct);
  ASSERT_TRUE(local.ok());
  Evaluator ev2(&sys_);
  auto delegated = ev2.Eval(p0_, Expr::EvalAt(p1_, direct));
  ASSERT_TRUE(delegated.ok()) << delegated.status();
  EXPECT_TRUE(testing::ResultsEqual(local->results, delegated->results));
}

TEST_F(EvaluatorTest, EvalAtChargesExpressionShipping) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p1_, "d", "<r/>").ok());
  Evaluator ev(&sys_);
  sys_.network().mutable_stats()->Reset();
  auto out = ev.Eval(p0_, Expr::EvalAt(p1_, Expr::Doc("d", p1_)));
  ASSERT_TRUE(out.ok()) << out.status();
  // The expression traveled p0->p1; the doc result traveled p1->p0.
  EXPECT_GT(sys_.network().stats().Pair(p0_, p1_).bytes, 0u);
  EXPECT_GT(sys_.network().stats().Pair(p1_, p0_).bytes, 0u);
}

// --- Rule (13) carrier: Seq ---

TEST_F(EvaluatorTest, SeqRunsSideEffectsBeforeSecondPart) {
  ASSERT_TRUE(sys_.InstallDocumentXml(
      p1_, "big", "<r><i>1</i><i>2</i></r>").ok());
  Query unnest = Query::Parse("for $x in input(0)//i return $x").value();
  // First: cache big@p1 as copy@p0 (evaluated at p1: send(d@p0, big)).
  // Then: query the local copy.
  ExprPtr install = Expr::EvalAt(
      p1_, Expr::SendAsDoc("copy", p0_, Expr::Doc("big", p1_)));
  ExprPtr use = Expr::Apply(unnest, p0_, {Expr::Doc("copy", p0_)});
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Seq(install, use));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->results.size(), 2u);
  EXPECT_TRUE(sys_.peer(p0_)->HasDocument("copy"));
}

// --- Definition (9): generic documents and services ---

TEST_F(EvaluatorTest, GenericDocPicksNearestReplica) {
  // Replicas on p1 and p2; p2 is much closer to p0.
  sys_.network().mutable_topology()->SetLinkSymmetric(
      p0_, p2_, LinkParams{0.0001, 1e8});
  NodeIdGen tmp;
  TreePtr content = ParseXml("<cat><p>1</p></cat>", &tmp).value();
  ASSERT_TRUE(sys_.InstallReplicatedDocument("ecat", "cat", content,
                                             {p1_, p2_}).ok());
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::GenericDoc("ecat"));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 1u);
  // Content came from p2 (the near replica), not p1.
  EXPECT_GT(sys_.network().stats().Pair(p2_, p0_).bytes, 0u);
  EXPECT_EQ(sys_.network().stats().Pair(p1_, p0_).bytes, 0u);
  // Discovery was charged.
  EXPECT_GT(sys_.network().stats().control_messages(), 0u);
}

TEST_F(EvaluatorTest, GenericDocWithoutDiscoveryCharge) {
  NodeIdGen tmp;
  TreePtr content = ParseXml("<cat/>", &tmp).value();
  ASSERT_TRUE(sys_.InstallReplicatedDocument("ecat", "cat", content,
                                             {p1_}).ok());
  EvalOptions opts;
  opts.charge_discovery = false;
  Evaluator ev(&sys_, opts);
  auto out = ev.Eval(p0_, Expr::GenericDoc("ecat"));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(sys_.network().stats().control_messages(), 0u);
}

TEST_F(EvaluatorTest, GenericDocNoMembersFails) {
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::GenericDoc("nothing"));
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(EvaluatorTest, GenericServicePick) {
  InstallEcho(p1_, "echo");
  InstallEcho(p2_, "echo");
  sys_.generics().AddServiceMember("eecho", ClassMember{"echo", p1_});
  sys_.generics().AddServiceMember("eecho", ClassMember{"echo", p2_});
  sys_.network().mutable_topology()->SetLinkSymmetric(
      p0_, p2_, LinkParams{0.0001, 1e8});
  Evaluator ev(&sys_);
  auto out = ev.Eval(
      p0_, Expr::CallGeneric("eecho",
                             {Expr::Tree(Parse(p0_, "<m>g</m>"), p0_)}));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 1u);
  // The near provider (p2) served the call.
  EXPECT_GT(sys_.network().stats().Pair(p0_, p2_).bytes, 0u);
  EXPECT_EQ(sys_.network().stats().Pair(p0_, p1_).bytes, 0u);
}

// --- Trees with embedded service calls (§2.2) ---

TEST_F(EvaluatorTest, TreeWithScActivatesAndAccumulates) {
  InstallEcho(p1_);
  TreePtr t = Parse(p0_,
                    "<report><sc><peer>p1</peer><service>echo</service>"
                    "<param1><ask>v</ask></param1></sc></report>");
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Tree(t, p0_));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->results.size(), 1u);
  const TreePtr& r = out->results[0];
  // The response was inserted as a sibling of the sc node.
  ASSERT_EQ(r->child_count(), 2u);
  EXPECT_EQ(r->child(0)->label_text(), "sc");
  EXPECT_EQ(r->child(1)->label_text(), "ask");
  // The original expression tree was not mutated.
  EXPECT_EQ(t->child_count(), 1u);
}

TEST_F(EvaluatorTest, TreeWithUnknownProviderFails) {
  TreePtr t = Parse(p0_,
                    "<r><sc><peer>ghost</peer><service>s</service>"
                    "</sc></r>");
  Evaluator ev(&sys_);
  auto out = ev.Eval(p0_, Expr::Tree(t, p0_));
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

// --- AXML document runtime: activation modes ---

TEST_F(EvaluatorTest, ImmediateCallActivatesOnInstall) {
  InstallEcho(p1_);
  TreePtr doc = Parse(p0_,
                      "<news><sc mode=\"immediate\"><peer>p1</peer>"
                      "<service>echo</service>"
                      "<param1><item>n1</item></param1></sc></news>");
  Evaluator ev(&sys_);
  ASSERT_TRUE(ev.InstallAxmlDocument(p0_, "news", doc).ok());
  ev.RunToQuiescence();
  ASSERT_TRUE(ev.async_status().ok()) << ev.async_status();
  // The response accumulated in the document, sibling of the sc.
  ASSERT_EQ(doc->child_count(), 2u);
  EXPECT_EQ(doc->child(1)->label_text(), "item");
}

TEST_F(EvaluatorTest, ManualCallDoesNotAutoActivate) {
  InstallEcho(p1_);
  TreePtr doc = Parse(p0_,
                      "<d><sc><peer>p1</peer><service>echo</service>"
                      "<param1><x/></param1></sc></d>");
  Evaluator ev(&sys_);
  ASSERT_TRUE(ev.InstallAxmlDocument(p0_, "d", doc).ok());
  ev.RunToQuiescence();
  EXPECT_EQ(doc->child_count(), 1u);  // untouched
  // Explicit activation works and is idempotent.
  std::vector<TreePtr> calls;
  FindServiceCalls(doc, &calls);
  ASSERT_EQ(calls.size(), 1u);
  ASSERT_TRUE(ev.ActivateCall(p0_, calls[0]->id()).ok());
  ASSERT_TRUE(ev.ActivateCall(p0_, calls[0]->id()).ok());
  ev.RunToQuiescence();
  EXPECT_EQ(doc->child_count(), 2u);  // exactly one response
}

TEST_F(EvaluatorTest, LazyCallActivatesWhenDocIsQueried) {
  InstallEcho(p1_);
  TreePtr doc = Parse(p0_,
                      "<d><sc mode=\"lazy\"><peer>p1</peer>"
                      "<service>echo</service>"
                      "<param1><lazyval/></param1></sc></d>");
  Evaluator ev(&sys_);
  ASSERT_TRUE(ev.InstallAxmlDocument(p0_, "d", doc).ok());
  ev.RunToQuiescence();
  EXPECT_EQ(doc->child_count(), 1u);  // not yet
  // A query over the document triggers activation (§2.2 "activated only
  // when the call result is needed to evaluate some query").
  // Child path: matches the response (sibling of the sc) but not the
  // parameter copy nested inside the sc element.
  Query q = Query::Parse("for $x in input(0)/d/lazyval return $x").value();
  auto out = ev.Eval(p0_, Expr::Apply(q, p0_, {Expr::Doc("d", p0_)}));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->results.size(), 1u);
  EXPECT_EQ(doc->child_count(), 2u);
}

TEST_F(EvaluatorTest, AfterCallChainsActivation) {
  InstallEcho(p1_);
  TreePtr doc = Parse(p0_,
                      "<d><sc mode=\"immediate\"><peer>p1</peer>"
                      "<service>echo</service>"
                      "<param1><first/></param1></sc>"
                      "<sc><peer>p1</peer><service>echo</service>"
                      "<param1><second/></param1></sc></d>");
  // Wire the second call to follow the first.
  std::vector<TreePtr> calls;
  FindServiceCalls(doc, &calls);
  ASSERT_EQ(calls.size(), 2u);
  calls[1]->AddChild(MakeTextElement(
      "@after", std::to_string(calls[0]->id().bits()),
      sys_.peer(p0_)->gen()));
  Evaluator ev(&sys_);
  ASSERT_TRUE(ev.InstallAxmlDocument(p0_, "d", doc).ok());
  ev.RunToQuiescence();
  ASSERT_TRUE(ev.async_status().ok()) << ev.async_status();
  // Both responses arrived (chained activation).
  EXPECT_EQ(doc->child_count(), 4u);
}

// --- Async deployment surface ---

TEST_F(EvaluatorTest, DeployStreamsResultsIncrementally) {
  ASSERT_TRUE(sys_.InstallDocumentXml(
      p0_, "d", "<r><i>1</i><i>2</i><i>3</i></r>").ok());
  Query q = Query::Parse("for $x in input(0)//i return $x").value();
  Evaluator ev(&sys_);
  std::vector<TreePtr> seen;
  ASSERT_TRUE(ev.Deploy(p0_, Expr::Apply(q, p0_, {Expr::Doc("d", p0_)}),
                        [&](TreePtr t) { seen.push_back(t); })
                  .ok());
  EXPECT_TRUE(seen.empty());  // nothing before the loop runs
  ev.RunToQuiescence();
  EXPECT_EQ(seen.size(), 3u);
}

TEST_F(EvaluatorTest, CompletionTimeAdvancesWithTopology) {
  ASSERT_TRUE(sys_.InstallDocumentXml(p1_, "d", "<r><i/></r>").ok());
  Evaluator ev(&sys_);
  auto near = ev.Eval(p0_, Expr::Doc("d", p1_));
  ASSERT_TRUE(near.ok());
  // Make the link 10x slower; duration grows accordingly.
  sys_.network().mutable_topology()->SetLinkSymmetric(
      p0_, p1_, LinkParams{10 * kLat, kBw / 10});
  auto far = ev.Eval(p0_, Expr::Doc("d", p1_));
  ASSERT_TRUE(far.ok());
  EXPECT_GT(far->Duration(), near->Duration());
}

}  // namespace
}  // namespace axml
