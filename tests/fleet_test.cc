// Fleet-scale smoke: the scenario harness (src/scenario/fleet.h) at CI
// size — a 200-peer, 2-region fleet under Zipf reads and mutations with
// the per-op stale-read check ON — comparing the central and Chord-DHT
// catalog backends:
//
//   - Freshness: zero stale reads on either backend.
//   - Cost shape: central answers every lookup in exactly 2 messages
//     but pins ~all catalog load on its server; the DHT pays ~log2(P)
//     messages per lookup and spreads the load (max single-node share
//     drops well below central's).
//   - Scaling: messages-per-lookup grows ~log P (64 -> 256 peers adds
//     ~2 hops, not 4x).
//
// The full 1000-peer soak is guarded behind AXML_FLEET_SOAK so CI time
// stays bounded; seeds come from AXML_TEST_SEED (CI runs a 5-seed
// matrix).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "net/catalog.h"
#include "scenario/fleet.h"
#include "test_util.h"

namespace axml {
namespace {

using testing::TestSeed;

FleetConfig SmokeConfig(FleetBackend backend, uint64_t seed) {
  FleetConfig cfg;
  cfg.topo.regions = 2;
  cfg.topo.racks_per_region = 4;
  cfg.topo.peers_per_rack = 25;  // 200 peers
  cfg.backend = backend;
  cfg.ops = 400;
  cfg.seed = seed;
  return cfg;
}

TEST(FleetSmokeTest, CentralBackendStaysFreshAndConcentratesLoad) {
  FleetHarness fleet(SmokeConfig(FleetBackend::kCentral, TestSeed(1)));
  const FleetReport r = fleet.Run();
  EXPECT_EQ(r.stale_reads, 0u) << r.ToString();
  EXPECT_GT(r.lookups, 0u);
  // One request + one response, always.
  EXPECT_DOUBLE_EQ(r.msgs_per_lookup, 2.0);
  // The server handles every catalog message.
  EXPECT_GT(r.max_node_share, 0.9) << r.ToString();
}

TEST(FleetSmokeTest, DhtSpreadsLoadAtLogCostAndStaysFresh) {
  const uint64_t seed = TestSeed(1);
  FleetHarness central_fleet(SmokeConfig(FleetBackend::kCentral, seed));
  const FleetReport central = central_fleet.Run();
  FleetHarness dht_fleet(SmokeConfig(FleetBackend::kChordDht, seed));
  const FleetReport dht = dht_fleet.Run();

  EXPECT_EQ(dht.stale_reads, 0u) << dht.ToString();
  EXPECT_GT(dht.lookups, 0u);
  // Routed lookups cost more than central's single round trip but stay
  // within the Chord bound (~log2 P hops + the response).
  EXPECT_GT(dht.msgs_per_lookup, central.msgs_per_lookup);
  EXPECT_LE(dht.msgs_per_lookup, 2.0 * std::log2(200.0) + 2.0);
  // The headline: the hot-node share drops versus the central server.
  EXPECT_LT(dht.max_node_share, central.max_node_share) << dht.ToString();
  EXPECT_LT(dht.max_node_share, 0.5) << dht.ToString();
}

TEST(FleetSmokeTest, DhtLookupCostGrowsLogarithmically) {
  const uint64_t seed = TestSeed(1);
  FleetConfig small = SmokeConfig(FleetBackend::kChordDht, seed);
  small.topo.peers_per_rack = 8;  // 64 peers
  FleetConfig large = SmokeConfig(FleetBackend::kChordDht, seed);
  large.topo.peers_per_rack = 32;  // 256 peers
  FleetHarness small_fleet(small);
  const FleetReport r64 = small_fleet.Run();
  FleetHarness large_fleet(large);
  const FleetReport r256 = large_fleet.Run();

  // 4x the peers: messages-per-lookup moves by ~log2(4) = 2 hops, far
  // from the 4x a linear structure would pay.
  EXPECT_GT(r256.msgs_per_lookup, r64.msgs_per_lookup)
      << r64.ToString() << "\n" << r256.ToString();
  EXPECT_LT(r256.msgs_per_lookup, r64.msgs_per_lookup + 4.0)
      << r64.ToString() << "\n" << r256.ToString();
}

TEST(FleetSmokeTest, AdvertisementBatchingPaysPerDelta) {
  // Bring-up installs 32 documents from 8 origins inside one batch
  // window: the DHT pays at most one digest per (origin, responsible)
  // pair — strictly fewer messages than deltas — and a re-advertisement
  // of an installed doc is a counted no-op.
  FleetConfig cfg = SmokeConfig(FleetBackend::kChordDht, TestSeed(1));
  FleetHarness fleet(cfg);
  Catalog* catalog = fleet.system().catalog();
  const CatalogStats after_bringup = catalog->stats();
  EXPECT_GE(after_bringup.advertise_deltas,
            uint64_t{cfg.origins} * cfg.docs_per_origin);
  EXPECT_LT(after_bringup.advertise_messages,
            after_bringup.advertise_deltas);

  const uint64_t noops_before = after_bringup.advertise_noops;
  catalog->Register(ResourceKind::kDocument, "d0_0", PeerId(0));
  EXPECT_EQ(catalog->stats().advertise_noops, noops_before + 1);
  EXPECT_EQ(catalog->stats().advertise_messages,
            after_bringup.advertise_messages);
}

TEST(FleetFaultTest, ChordBackendSurvivesChurnWithZeroStaleReads) {
  // The faulted soak on the routed DHT backend: six non-origin peers
  // crash a third of the way in (mixed cache-losing and durable-cache
  // crashes) and rejoin at two thirds. The ring keeps the crashed
  // peers as members; successor resolution walks past them, so routed
  // lookups keep completing — and every read stays fresh throughout.
  FleetConfig cfg = SmokeConfig(FleetBackend::kChordDht, TestSeed(1));
  cfg.churn = true;
  cfg.churn_peers = 6;
  FleetHarness fleet(cfg);
  const FleetReport r = fleet.Run();
  EXPECT_EQ(r.crashes, 6u) << r.ToString();
  EXPECT_EQ(r.rejoins, 6u) << r.ToString();
  EXPECT_EQ(r.stale_reads, 0u) << r.ToString();
  EXPECT_GT(r.lookups, 0u);
  EXPECT_LE(r.msgs_per_lookup, 2.0 * std::log2(200.0) + 2.0)
      << r.ToString();
}

TEST(FleetFaultTest, CentralBackendSurvivesChurnWithZeroStaleReads) {
  // Same schedule against the central backend: the churn contract is
  // backend-independent (SetPeerLive is a no-op for central, whose
  // server — peer 0 — never crashes).
  FleetConfig cfg = SmokeConfig(FleetBackend::kCentral, TestSeed(1));
  cfg.churn = true;
  cfg.churn_peers = 6;
  FleetHarness fleet(cfg);
  const FleetReport r = fleet.Run();
  EXPECT_EQ(r.crashes, 6u) << r.ToString();
  EXPECT_EQ(r.stale_reads, 0u) << r.ToString();
}

TEST(FleetSoakTest, ThousandPeerDhtFleetIsFresh) {
  if (std::getenv("AXML_FLEET_SOAK") == nullptr) {
    GTEST_SKIP() << "set AXML_FLEET_SOAK=1 to run the 1000-peer soak";
  }
  FleetConfig cfg;
  cfg.topo.regions = 4;
  cfg.topo.racks_per_region = 5;
  cfg.topo.peers_per_rack = 50;  // 1000 peers
  cfg.backend = FleetBackend::kChordDht;
  cfg.origins = 16;
  cfg.ops = 2000;
  cfg.seed = TestSeed(1);
  FleetHarness fleet(cfg);
  const FleetReport r = fleet.Run();
  EXPECT_EQ(r.stale_reads, 0u) << r.ToString();
  EXPECT_GT(r.lookups, 0u);
  EXPECT_LE(r.msgs_per_lookup, 2.0 * std::log2(1000.0) + 2.0);
  EXPECT_LT(r.max_node_share, 0.2) << r.ToString();
}

TEST(FleetSoakTest, ThousandPeerDhtFleetSurvivesChurn) {
  if (std::getenv("AXML_FLEET_SOAK") == nullptr) {
    GTEST_SKIP() << "set AXML_FLEET_SOAK=1 to run the 1000-peer soak";
  }
  FleetConfig cfg;
  cfg.topo.regions = 4;
  cfg.topo.racks_per_region = 5;
  cfg.topo.peers_per_rack = 50;  // 1000 peers
  cfg.backend = FleetBackend::kChordDht;
  cfg.origins = 16;
  cfg.ops = 2000;
  cfg.seed = TestSeed(1);
  cfg.churn = true;
  cfg.churn_peers = 20;
  FleetHarness fleet(cfg);
  const FleetReport r = fleet.Run();
  EXPECT_EQ(r.crashes, 20u) << r.ToString();
  EXPECT_EQ(r.stale_reads, 0u) << r.ToString();
  EXPECT_GT(r.lookups, 0u);
}

}  // namespace
}  // namespace axml
