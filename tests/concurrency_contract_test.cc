// The machine-checked concurrency contracts, exercised from both sides:
// the legal patterns must run clean, and every contract violation must
// abort (death tests) — proof the SequenceChecker / ReentrancyGuard /
// per-key mutation-cycle machinery is load-bearing, not decorative.
// docs/architecture.md ("Threading & determinism contract") is the
// canonical statement of what is enforced here.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/reentrancy_guard.h"
#include "common/sequence_checker.h"
#include "peer/system.h"
#include "replica/transfer_cache.h"
#include "test_util.h"
#include "xml/digest.h"
#include "xml/label_interner.h"
#include "xml/wire.h"

namespace axml {
namespace {

// Death tests below spawn threads; the default "fast" style forks from
// a potentially multi-threaded process, which gtest warns about.
class ThreadedDeathTest : public ::testing::Test {
 protected:
  ThreadedDeathTest() {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

using SequenceCheckerDeathTest = ThreadedDeathTest;
using TransferCacheDeathTest = ThreadedDeathTest;
using ReplicaManagerDeathTest = ThreadedDeathTest;

// --- SequenceChecker ---

TEST(SequenceCheckerTest, BindsOnFirstUseAndAcceptsItsOwnThread) {
  SequenceChecker checker;
  checker.Check();
  checker.Check();  // same thread: fine, forever
}

TEST(SequenceCheckerTest, DetachAllowsDeliberateHandOff) {
  SequenceChecker checker;
  checker.Check();  // bind to the main thread
  checker.DetachFromSequence();
  std::thread other([&checker] {
    checker.Check();  // re-binds to the new owner
    checker.Check();
  });
  other.join();
}

TEST_F(SequenceCheckerDeathTest, CrossThreadUseAborts) {
  EXPECT_DEATH(
      {
        SequenceChecker checker;
        checker.Check();  // bound to this (child-process main) thread
        std::thread trespasser([&checker] { checker.Check(); });
        trespasser.join();
      },
      "sequence affinity violated");
}

// --- ReentrancyGuard ---

TEST(ReentrancyGuardTest, SequentialScopesAreFine) {
  ReentrancyGuard guard;
  for (int i = 0; i < 3; ++i) {
    AXML_REENTRANCY_GUARD(guard, "ReentrancyGuardTest::sequential");
  }
}

TEST_F(ThreadedDeathTest, NestedReentrancyAborts) {
  EXPECT_DEATH(
      {
        ReentrancyGuard guard;
        ScopedReentrancyCheck outer(guard, "outer region");
        ScopedReentrancyCheck inner(guard, "inner region");
      },
      "reentrancy: inner region entered while outer region");
}

// --- TransferCache: sequence affinity + evict-listener reentrancy ---

TEST_F(TransferCacheDeathTest, CrossThreadUseAborts) {
  EXPECT_DEATH(
      {
        TransferCache cache;
        NodeIdGen gen;
        TreePtr t = MakeTextElement("r", "x", &gen);
        cache.Put(ReplicaKey{PeerId(0), "d"}, t, DigestOf(*t), 1);
        std::thread trespasser(
            [&cache] { cache.Get(ReplicaKey{PeerId(0), "d"}, 1); });
        trespasser.join();
      },
      "sequence affinity violated");
}

TEST_F(TransferCacheDeathTest, EvictListenerCallingBackAborts) {
  EXPECT_DEATH(
      {
        NodeIdGen gen;
        TreePtr first = MakeTextElement("r", std::string(60, 'a'), &gen);
        TreePtr second = MakeTextElement("r", std::string(60, 'b'), &gen);
        // A budget that admits either tree alone but not both, so the
        // second Put must evict the first.
        TransferCache cache(wire::EncodedTreeSize(*first) +
                            wire::EncodedTreeSize(*second) - 1);
        cache.set_evict_listener(
            [&cache](const ReplicaKey& key, const TransferCache::Entry&) {
              // The contract forbids exactly this: the listener fires
              // while the entry map is mid-mutation.
              cache.Erase(key);
            });
        cache.Put(ReplicaKey{PeerId(0), "a"}, first, DigestOf(*first), 1);
        // Over budget: evicts "a", firing the listener inside Put.
        cache.Put(ReplicaKey{PeerId(0), "b"}, second, DigestOf(*second), 1);
      },
      "reentrancy: TransferCache::Erase entered while TransferCache::Put");
}

TEST(TransferCacheContractTest, EvictListenerMayReadTheCache) {
  // The legal side of the same contract: const readers stay open to the
  // listener (the ReplicaManager's retraction path peeks at siblings).
  NodeIdGen gen;
  TreePtr first = MakeTextElement("r", std::string(60, 'a'), &gen);
  TreePtr second = MakeTextElement("r", std::string(60, 'b'), &gen);
  TransferCache cache(wire::EncodedTreeSize(*first) +
                      wire::EncodedTreeSize(*second) - 1);
  size_t keys_seen_during_evict = 0;
  cache.set_evict_listener(
      [&cache, &keys_seen_during_evict](const ReplicaKey&,
                                        const TransferCache::Entry&) {
        keys_seen_during_evict = cache.Keys().size();
      });
  cache.Put(ReplicaKey{PeerId(0), "a"}, first, DigestOf(*first), 1);
  cache.Put(ReplicaKey{PeerId(0), "b"}, second, DigestOf(*second), 1);
  // The listener fires before the victim is unlinked, so it sees both
  // "a" (mid-drop) and the incoming "b".
  EXPECT_EQ(keys_seen_during_evict, 2u);
  EXPECT_EQ(cache.IntegrityError(), "");
  EXPECT_EQ(cache.Keys().size(), 1u);  // only "b" survived
}

// --- ReplicaManager: same-key mutation cycles ---

TEST(ReplicaManagerContractTest, DistinctKeyMutationsLegallyNest) {
  // The nesting the per-key guard must NOT flag: push-drop removes the
  // holder's installed copy, RemoveDocument fires the holder's mutation
  // listener, and the system listener re-enters NoteMutation for the
  // *holder's* key while the origin's fan-out is still on the stack.
  AxmlSystem sys;
  PeerId owner = sys.AddPeer("owner");
  PeerId reader = sys.AddPeer("reader");
  NodeIdGen gen;
  TreePtr t = MakeTextElement("r", "x", &gen);
  ASSERT_TRUE(sys.InstallDocument(owner, "d", t->CloneSameIds()).ok());
  ASSERT_TRUE(sys.replicas().InsertCopy(reader, owner, "d",
                                        t->Clone(sys.peer(reader)->gen()),
                                        sys.replicas().Version(owner, "d")));
  ASSERT_TRUE(sys.replicas().HasFresh(reader, owner, "d"));
  sys.replicas().NoteMutation(owner, "d");  // nests; must not abort
  EXPECT_FALSE(sys.replicas().HasFresh(reader, owner, "d"));
}

TEST_F(ReplicaManagerDeathTest, SameKeyMutationCycleAborts) {
  EXPECT_DEATH(
      {
        AxmlSystem sys;
        PeerId owner = sys.AddPeer("owner");
        PeerId reader = sys.AddPeer("reader");
        NodeIdGen gen;
        TreePtr t = MakeTextElement("r", "x", &gen);
        ASSERT_TRUE(sys.InstallDocument(owner, "d", t->CloneSameIds()).ok());
        ASSERT_TRUE(
            sys.replicas().InsertCopy(reader, owner, "d",
                                      t->Clone(sys.peer(reader)->gen()),
                                      sys.replicas().Version(owner, "d")));
        // A buggy listener: when the push-drop removes reader's copy,
        // re-enter NoteMutation for the key whose fan-out is running.
        sys.peer(reader)->add_mutation_listener(
            [&sys, owner](const DocName&) {
              sys.replicas().NoteMutation(owner, "d");
            });
        sys.replicas().NoteMutation(owner, "d");
      },
      "same-key mutation cycle");
}

TEST(ReplicaManagerContractTest, CrashRejoinChurnNestsLegally) {
  // Churn drives the same nesting the guards must keep legal: the
  // crash-time retraction removes the holder's installed copy, firing
  // the holder's mutation listener inside OnPeerCrash; rejoin-time
  // reconciliation re-installs and re-advertises inside OnPeerRejoin;
  // and a notification committed to the wire before the crash lands
  // after the rejoin, at a holder whose state has moved on — a
  // tolerated no-op, never an abort.
  AxmlSystem sys;
  PeerId owner = sys.AddPeer("owner");
  PeerId reader = sys.AddPeer("reader");
  NodeIdGen gen;
  TreePtr t = MakeTextElement("r", "x", &gen);
  ASSERT_TRUE(sys.InstallDocument(owner, "d", t->CloneSameIds()).ok());
  ASSERT_TRUE(sys.replicas().InsertCopy(reader, owner, "d",
                                        t->Clone(sys.peer(reader)->gen()),
                                        sys.replicas().Version(owner, "d")));
  // The notify is committed to the wire here; the synchronous push-drop
  // already removed reader's copy.
  sys.peer(owner)->PutDocument("d",
                               MakeTextElement("r", "y", sys.peer(owner)->gen()));
  sys.CrashPeer(reader, CrashMode::kDurableCache);
  sys.RejoinPeer(reader);
  sys.RunToQuiescence();  // the late notify lands post-rejoin: no-op

  // Round two: the holder crashes with a copy resident, the origin
  // moves on while it is down (the fan-out skips it), and the rejoin
  // reconciliation must drop the stale survivor before it can serve.
  ASSERT_TRUE(sys.replicas().InsertCopy(reader, owner, "d",
                                        sys.peer(owner)
                                            ->GetDocument("d")
                                            ->Clone(sys.peer(reader)->gen()),
                                        sys.replicas().Version(owner, "d")));
  sys.CrashPeer(reader, CrashMode::kDurableCache);
  sys.peer(owner)->PutDocument("d",
                               MakeTextElement("r", "z", sys.peer(owner)->gen()));
  sys.RunToQuiescence();
  EXPECT_GT(sys.replicas().subscription_stats().down_skips, 0u);
  sys.RejoinPeer(reader);
  sys.RunToQuiescence();
  EXPECT_FALSE(sys.replicas().HasFresh(reader, owner, "d"));
  EXPECT_GT(sys.replicas().subscription_stats().sweep_repairs, 0u);
}

// --- LabelInterner: genuinely shared process-wide state ---

TEST(LabelInternerConcurrencyTest, ConcurrentInterningIsConsistent) {
  constexpr int kThreads = 4;
  constexpr int kLabels = 64;
  std::vector<std::vector<LabelId>> ids(kThreads,
                                        std::vector<LabelId>(kLabels));
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w, &ids] {
      for (int i = 0; i < kLabels; ++i) {
        ids[w][i] = InternLabel("concurrent_label_" + std::to_string(i));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int w = 1; w < kThreads; ++w) {
    EXPECT_EQ(ids[w], ids[0]);  // same text -> same id, every thread
  }
  for (int i = 0; i < kLabels; ++i) {
    EXPECT_EQ(LabelText(ids[0][i]), "concurrent_label_" + std::to_string(i));
  }
}

TEST(LabelInternerConcurrencyTest, TextReferencesSurviveConcurrentGrowth) {
  const std::string& anchor = LabelText(InternLabel("growth_anchor"));
  std::thread grower([] {
    for (int i = 0; i < 512; ++i) {
      InternLabel("growth_filler_" + std::to_string(i));
    }
  });
  grower.join();
  EXPECT_EQ(anchor, "growth_anchor");  // deque storage: no reallocation
}

// --- Process-wide mutable state: documented reset hooks ---

TEST(ProcessWideStateTest, InternerResetReseedsWellKnownIds) {
  const LabelId custom = InternLabel("reset_me");
  LabelInterner::Global().ResetForTesting();
  // The deterministic seed ids survive a reset bit-for-bit...
  const WellKnownLabels& wk = WellKnownLabels::Get();
  EXPECT_EQ(InternLabel(""), LabelId{0});
  EXPECT_EQ(InternLabel("sc"), wk.sc);
  EXPECT_EQ(InternLabel("peer"), wk.peer);
  // ...and the custom label re-interns past the reserved seed range.
  const LabelId again = InternLabel("reset_me");
  EXPECT_GE(again, LabelId{6});
  EXPECT_LE(again, custom);  // reset discarded the old dictionary
  EXPECT_EQ(LabelText(again), "reset_me");
}

TEST(ProcessWideStateTest, LogLevelResetRestoresTheEnvDefault) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  ASSERT_EQ(GetLogLevel(), LogLevel::kDebug);
  ResetLogLevelForTesting();  // re-parses AXML_LOG_LEVEL (or default)
  EXPECT_EQ(GetLogLevel(), before);
}

// --- Mutex smoke: the annotated lock actually excludes ---

TEST(MutexTest, ExcludesConcurrentIncrements) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

}  // namespace
}  // namespace axml
